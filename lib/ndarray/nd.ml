(* Dense n-dimensional array: a shape plus a flat OCaml array.  Kernels
   keep hot loops on the flat [data] with hand-written index math; this
   wrapper provides the safe general-purpose view used by the analyzer,
   the checkpoint library and the visualizer.

   Each array carries a process-unique [id] so the write-set sanitizer
   can attribute stores to objects; [set]/[set_flat]/[fill] report their
   spans.  [Sanitize.record] is a domain-local read and a return unless
   the store happens inside a sanitized pool shard, so the safe view
   stays cheap — and the raw [data] escape hatch the kernels use is
   exactly the boundary the sanitizer does not see (DESIGN.md §17). *)

module Sanitize = Scvad_sanitize.Sanitize

type 'a t = { id : int; shape : Shape.t; data : 'a array }

let wrap shape data = { id = Sanitize.fresh_id (); shape; data }
let create shape x = wrap shape (Array.make (Shape.size shape) x)

let init shape f =
  let idx_of = Shape.index_of_offset shape in
  wrap shape (Array.init (Shape.size shape) (fun off -> f (idx_of off)))

let of_array shape data =
  if Array.length data <> Shape.size shape then
    invalid_arg "Nd.of_array: data length does not match shape";
  wrap shape data

let shape t = t.shape
let data t = t.data
let size t = Shape.size t.shape
let get t idx = t.data.(Shape.offset t.shape idx)

let set t idx x =
  let off = Shape.offset t.shape idx in
  t.data.(off) <- x;
  Sanitize.record ~obj:t.id ~lo:off ~hi:(off + 1) ~tag:"nd.set"

let get_flat t off = t.data.(off)

let set_flat t off x =
  t.data.(off) <- x;
  Sanitize.record ~obj:t.id ~lo:off ~hi:(off + 1) ~tag:"nd.set_flat"

let fill t x =
  Array.fill t.data 0 (Array.length t.data) x;
  Sanitize.record ~obj:t.id ~lo:0 ~hi:(Array.length t.data) ~tag:"nd.fill"

let map f t = wrap t.shape (Array.map f t.data)
let copy t = wrap t.shape (Array.copy t.data)

let iteri f t =
  let idx_of = Shape.index_of_offset t.shape in
  Array.iteri (fun off x -> f (idx_of off) x) t.data

(* Extract the 2-D slice with dimension [axis] pinned to [at] from a 3-D
   array; used by the cube visualizer (paper Figs. 3, 7, 8). *)
let slice3 t ~axis ~at =
  if Shape.rank t.shape <> 3 then invalid_arg "Nd.slice3: rank must be 3";
  let d = Shape.dims t.shape in
  let keep = List.filteri (fun i _ -> i <> axis) (Array.to_list d) in
  let out_shape = Shape.create keep in
  init out_shape (fun idx ->
      let full =
        match axis with
        | 0 -> [| at; idx.(0); idx.(1) |]
        | 1 -> [| idx.(0); at; idx.(1) |]
        | 2 -> [| idx.(0); idx.(1); at |]
        | _ -> invalid_arg "Nd.slice3: axis must be 0..2"
      in
      get t full)
