(** Reverse-mode automatic differentiation (the Enzyme substitute).

    Usage pattern, mirroring the paper's analysis:

    {[
      let tape = Tape.create () in
      let module S = Reverse.Scalar_of (struct let tape = tape end) in
      (* run the program; lift checkpointed elements with [var] *)
      let x = Reverse.var tape 3.0 in
      let y = S.(x *. x) in
      let g = Reverse.backward tape y in
      Reverse.grad g x (* = 6.0 *)
    ]}

    Constants fold: arithmetic on values never lifted with {!var} records
    no tape nodes, so the pre-checkpoint phase of a kernel is free. *)

type t = { id : int; v : float }

(** A constant (derivative-transparent) value. *)
val const : float -> t

(** Primal value. *)
val value : t -> float

(** Tape node id; [-1] for constants. *)
val node_id : t -> int

val is_const : t -> bool

(** [var tape v] introduces an independent variable — one element under
    scrutiny. *)
val var : Tape.t -> float -> t

(** [lift tape x] is [x] if already a variable, else a fresh variable with
    the same value.  Used to seed checkpoint variables in place. *)
val lift : Tape.t -> t -> t

(** Scalar structure recording onto the given tape. *)
module Scalar_of (_ : sig
  val tape : Tape.t
end) : Scalar.S with type t = t

type gradients

(** One reverse sweep from [output]; cost is proportional to the
    touched (active) subgraph, not the tape length — see
    {!Tape_intf.TAPE.backward}.  [?fan] lets independent tape segments
    be swept in parallel; the result is bitwise identical at any
    parallelism. *)
val backward : ?fan:Tape_intf.fan -> Tape.t -> t -> gradients

(** [grad g x] is [d output / d x]; 0 if [x] is a constant or was recorded
    after the output. *)
val grad : gradients -> t -> float

(** The same front end over any {!Tape_intf.TAPE} backend.  The node
    type is shared with the dense path, so values, captures, and
    Variable plumbing are backend-agnostic; only recording and the
    backward sweep go through [T].  (The dense path above is kept
    direct rather than [Make (Tape)] to avoid functor indirection on
    the push hot path.) *)
module Make (T : Tape_intf.TAPE) : sig
  (** [var tape v] introduces an independent variable on [tape]. *)
  val var : T.t -> float -> t

  val lift : T.t -> t -> t

  (** Scalar structure recording onto the given tape. *)
  module Scalar_of (_ : sig
    val tape : T.t
  end) : Scalar.S with type t = t

  type gradients

  val backward : ?fan:Tape_intf.fan -> T.t -> t -> gradients
  val grad : gradients -> t -> float
end

(** Front end over {!Tape.Segmented} (memory-budgeted recording). *)
module Segmented : module type of Make (Tape.Segmented)
