(* Forward-mode AD: dual numbers (v, d) with d the tangent.

   One run propagates the sensitivity of every intermediate to a single
   seeded input.  The analyzer's "forward probe" mode uses this to
   scrutinize one element per run — the naive reading of the paper's
   "inspect every single element" — and serves as an independent oracle
   for the reverse engine. *)

type t = { v : float; d : float }

let const v = { v; d = 0. }
let var v = { v; d = 1. }
let value x = x.v
let tangent x = x.d

module Scalar : Scalar.S with type t = t = struct
  type nonrec t = t

  let zero = const 0.
  let one = const 1.
  let of_float = const
  let of_int i = const (float_of_int i)
  let to_float x = x.v

  let[@inline] ( +. ) a b = { v = a.v +. b.v; d = a.d +. b.d }
  let[@inline] ( -. ) a b = { v = a.v -. b.v; d = a.d -. b.d }
  let[@inline] ( *. ) a b = Stdlib.{ v = a.v *. b.v; d = (a.d *. b.v) +. (a.v *. b.d) }

  let[@inline] ( /. ) a b =
    let v = Stdlib.(a.v /. b.v) in
    { v; d = Stdlib.((a.d -. (v *. b.d)) /. b.v) }

  let[@inline] ( ~-. ) a = { v = -.a.v; d = -.a.d }

  let sqrt a =
    let v = Stdlib.sqrt a.v in
    { v; d = Stdlib.(a.d *. 0.5 /. v) }

  let exp a =
    let v = Stdlib.exp a.v in
    { v; d = Stdlib.(a.d *. v) }

  let log a = { v = Stdlib.log a.v; d = Stdlib.(a.d /. a.v) }
  let sin a = { v = Stdlib.sin a.v; d = Stdlib.(a.d *. cos a.v) }
  let cos a = { v = Stdlib.cos a.v; d = Stdlib.(-.a.d *. sin a.v) }

  let abs a =
    {
      v = Stdlib.abs_float a.v;
      d = (if a.v >= 0. then a.d else Stdlib.( ~-. ) a.d);
    }

  let max a b = if a.v >= b.v then a else b
  let min a b = if a.v <= b.v then a else b
  let compare a b = Stdlib.compare a.v b.v
  let equal a b = a.v = b.v
  let ( < ) a b = a.v < b.v
  let ( <= ) a b = a.v <= b.v
  let ( > ) a b = a.v > b.v
  let ( >= ) a b = a.v >= b.v
end
