(* Central finite differences: the derivative oracle used by the test
   suite to validate both AD engines against a method with no shared
   code, and by the guard falsifier to cross-check promoted elements. *)

let default_step = 1e-6

(* The effective step is relative for large-magnitude coordinates:
   |x| >> 1 with an absolute step loses the perturbation to rounding
   (x +. h = x once h < ulp x), which on BT/SP-sized values drowns the
   difference quotient in cancellation.  For |x| <= 1 this degrades to
   the absolute step, so small and zero coordinates keep their exact
   historical behavior. *)
let step ?(h = default_step) x = h *. Float.max 1.0 (Float.abs x)

(* d f / d x.(i) by central difference; [x] is restored afterwards. *)
let derivative ?h (f : float array -> float) (x : float array) (i : int) =
  let saved = x.(i) in
  let h = step ?h saved in
  x.(i) <- saved +. h;
  let fp = f x in
  x.(i) <- saved -. h;
  let fm = f x in
  x.(i) <- saved;
  (fp -. fm) /. (2. *. h)

(* Full gradient, one central difference per coordinate. *)
let gradient ?h f x = Array.init (Array.length x) (fun i -> derivative ?h f x i)
