(** Compact reverse-mode tape.

    The tape is an append-only record of the data-flow graph of a program
    execution: one node per arithmetic operation, each with at most two
    parent nodes and the local partial derivatives towards them.  Storage
    is Bigarray-backed (24 bytes per node) and chunked into equally sized
    slabs, so large kernels — tens of millions of nodes — stay off the
    OCaml heap and growth never copies recorded nodes.

    {!Reverse} provides the operator-overloading front end; most users
    never call [push1]/[push2] directly. *)

type t

(** [create ?capacity_hint ()] makes an empty tape whose slabs each hold
    [max capacity_hint 16] nodes.  A hint covering the whole recording
    (e.g. [App.S.tape_nodes_hint]) means exactly one slab is ever
    allocated; an underestimate only adds further slabs of the same size
    — recorded nodes are never copied. *)
val create : ?capacity_hint:int -> unit -> t

(** Number of nodes currently recorded. *)
val length : t -> int

(** Nodes per storage slab (the granularity of growth). *)
val slab_nodes : t -> int

(** Currently reserved node slots (a multiple of [slab_nodes t]). *)
val capacity : t -> int

(** Bytes of off-heap storage currently reserved (diagnostic). *)
val reserved_bytes : t -> int

(** Drop all nodes (slab storage is retained for reuse). *)
val clear : t -> unit

(** New independent (input) variable node; returns its id. *)
val fresh_var : t -> int

(** [push1 t p dp] appends a unary node with parent [p] and local partial
    [dp]; returns the node id. *)
val push1 : t -> int -> float -> int

(** [push2 t l dl r dr] appends a binary node. *)
val push2 : t -> int -> float -> int -> float -> int

(** Result of a backward sweep. *)
type adjoints

(** [backward t ~output] runs one reverse sweep seeded with
    [d output / d output = 1] and returns the adjoint of every node at or
    below [output].  Cost is one linear pass over the tape. *)
val backward : t -> output:int -> adjoints

(** [adjoint g id] is [d output / d node]; 0 for constants ([id < 0]) and
    for nodes recorded after the output. *)
val adjoint : adjoints -> int -> float
