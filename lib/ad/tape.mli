(** Compact reverse-mode tape.

    The tape is an append-only record of the data-flow graph of a program
    execution: one node per arithmetic operation, each with at most two
    parent nodes and the local partial derivatives towards them.  Storage
    is Bigarray-backed (24 bytes per node) and chunked into equally sized
    slabs, so large kernels — tens of millions of nodes — stay off the
    OCaml heap and growth never copies recorded nodes.

    Both the dense tape here and {!Segmented} satisfy
    {!Tape_intf.TAPE}, so {!Reverse} and the analyzer treat them
    interchangeably.

    {!Reverse} provides the operator-overloading front end; most users
    never call [push1]/[push2] directly. *)

type t

(** [create ?capacity_hint ()] makes an empty tape whose slabs each hold
    [max capacity_hint 16] nodes — hints below 16 are explicitly clamped
    up to 16, the smallest slab worth allocating.  Negative hints raise
    [Invalid_argument].  A hint covering the whole recording (e.g.
    [App.S.tape_nodes_hint]) means exactly one slab is ever allocated;
    an underestimate only adds further slabs of the same size — recorded
    nodes are never copied. *)
val create : ?capacity_hint:int -> unit -> t

include Tape_intf.TAPE with type t := t

(** Nodes per storage slab (the granularity of growth). *)
val slab_nodes : t -> int

(** Bytes of off-heap storage currently reserved (diagnostic). *)
val reserved_bytes : t -> int

(** Segmented tape: the dense node layout under a memory budget.

    Recording materializes at most [budget_nodes] worth of trailing
    slabs; older slabs are discarded once a primal snapshot can rebuild
    them.  The program registers two hooks with {!Segmented.set_program}
    and marks each step boundary with {!Segmented.start_segment}; the
    backward sweep then proceeds over slab windows top-down, replaying
    the program from the nearest snapshot to rematerialize each
    discarded window (Siskind–Pearlmutter binomial checkpointing
    applied to the scrutiny tape).

    Replay must be deterministic — re-pushed nodes must land on their
    recorded ids.  Watermark checks at every segment boundary raise
    [Failure] on divergence rather than produce wrong adjoints.

    Nodes pushed before the first [start_segment] form the prelude
    (input lifting): they are never replayed, so they must be
    parentless; a non-constant prelude push raises [Invalid_argument].

    The budget bounds tape node storage (24 bytes per slot, rounded to
    whole slabs).  The adjoint accumulator of a backward sweep is dense
    regardless — adjoint edges cross segment boundaries — and costs 8
    bytes per node up to the output. *)
module Segmented : sig
  (** Recompute-vs-store schedule.

      - [All_store]: never discard — degenerates to the dense tape
        (zero replays, budget ignored).
      - [Log_stride]: keep boundary snapshots at a stride that doubles
        whenever the slots fill; replay from the retained snapshots
        only.
      - [Binomial] (default): [Log_stride] retention while recording,
        plus re-snapshotting at binomial-optimal split points during
        each backward replay pass.
      - [Planned bs]: snapshot exactly at the precomputed boundary
        indices [bs] (strictly increasing, starting at 0) — the output
        of a static cost model that knew the per-segment node counts
        before recording began.  Recording-time snapshots are never
        evicted; replay passes still re-capture binomially into any
        free slots.  [create] raises [Invalid_argument] on an empty,
        unsorted, or non-zero-based plan. *)
  type schedule =
    | All_store
    | Log_stride
    | Binomial
    | Planned of int list

  val schedule_to_string : schedule -> string

  (** Parses the closed-form schedules only; [Planned] carries a
      payload no string supplies. *)
  val schedule_of_string : string -> schedule option

  type t

  (** [create ~budget_nodes ()] makes an empty segmented tape that
      materializes at most [budget_nodes] node slots (rounded down to
      whole slabs, at least one slab).  [slab_nodes] defaults to
      [max 16 (min 65536 (budget_nodes / 8))]; explicit values below 16
      raise [Invalid_argument], as do non-positive [budget_nodes] or
      [snapshot_slots]. *)
  val create :
    ?slab_nodes:int ->
    ?snapshot_slots:int ->
    ?schedule:schedule ->
    budget_nodes:int ->
    unit ->
    t

  include Tape_intf.TAPE with type t := t

  (** Nodes per storage slab. *)
  val slab_nodes : t -> int

  (** Bytes of off-heap tape storage currently reserved (diagnostic). *)
  val reserved_bytes : t -> int

  (** Register the replay hooks; must be called before any push.
      [capture ()] snapshots restart state at the current boundary and
      returns the thunk that restores it; [replay_step s] re-executes
      segment [s] (the program between boundaries [s] and [s+1],
      re-pushing the same nodes). *)
  val set_program :
    t -> capture:(unit -> unit -> unit) -> replay_step:(int -> unit) -> unit

  (** Mark a program-step boundary.  The first call ends the prelude;
      snapshots are taken here per the schedule. *)
  val start_segment : t -> unit

  type stats = {
    s_schedule : schedule;
    s_budget_nodes : int;  (** as requested at [create] *)
    s_slab_nodes : int;
    s_total_nodes : int;  (** recording length *)
    s_segments : int;  (** [start_segment] boundaries *)
    s_snapshots : int;  (** snapshots taken, including replay-time *)
    s_replays : int;  (** replay passes during [backward] *)
    s_replayed_nodes : int;  (** nodes re-pushed by those passes *)
    s_peak_live_nodes : int;  (** peak materialized node slots *)
  }

  val stats : t -> stats
end
