(** Edges-only dependence tape (no partial derivatives; 8 bytes/node).

    Shared substrate of {!Activity} and {!Itaint}; satisfies
    {!Tape_intf.DEP}, so alternative dependence backends are drop-in.
    A backward sweep computes the set of nodes the output {e depends
    on} (reverse reachability), without distinguishing zero-valued
    partials. *)

type t

(** [create ?capacity ()] makes an empty dependence tape; [capacity] is
    a node-count growth hint. *)
val create : ?capacity:int -> unit -> t

include Tape_intf.DEP with type t := t
