(** Tape backend signatures.

    Two families of reverse tapes share one storage contract:

    - {!TAPE}: full reverse-mode tapes carrying local partial
      derivatives (24 bytes per node).  {!Tape} (dense, every node
      retained) and {!Tape.Segmented} (bounded live storage, discarded
      segments replayed on demand) both satisfy it, so {!Reverse} and
      the analyzer can swap backends without touching the kernels.
    - {!DEP}: edges-only dependence tapes (8 bytes per node, no
      partials) — the substrate of {!Activity} and {!Itaint}.

    Future backends (e.g. a disk-spilling tape) are drop-in: satisfy
    the signature and instantiate {!Reverse.Make}.

    {2 Invariants every implementation must keep}

    - {b Node ids are dense}: ids are consecutive ints starting at 0 in
      push order, and a parent id always names a node pushed {e before}
      its child.  This is what makes a single reverse sweep linear.
    - {b Unsafe access after one up-front bounds check}: [backward]
      validates [output] once ([0 <= output < length t], descriptive
      [Invalid_argument] otherwise); the sweep itself may then use
      [unsafe_get]/[unsafe_set], because parent ids are bounded by the
      push-order invariant and node offsets stay inside their slab by
      the uniform-slab-size layout.  New backends inherit this
      obligation: one check at the API boundary, none on the hot path.
    - {b Clear reuses storage}: [clear] drops all recorded nodes but
      retains the allocated storage, so a cleared tape re-records
      without reallocating.  [length] is 0 after [clear]; [capacity]
      is unchanged (or larger, never smaller).
    - {b Constants are id -1}: pushes accept parent id [-1] to mean "no
      parent / constant"; [adjoint] (resp. [reachable]) returns 0
      (resp. [false]) for negative ids. *)

(** Statistics of the most recent backward sweep.

    [visited_nodes] counts the nodes whose adjoint (resp. reach mark)
    was nonzero when the sweep inspected them — the nodes that actually
    propagated.  [swept_nodes] is the size of the sweep range
    ([output + 1]); the gap between the two is the work a
    sparsity-aware sweep avoids.  Both counts are determined by the
    recorded values alone, so they are identical across sequential and
    parallel sweeps of the same tape. *)
type sweep_stats = { visited_nodes : int; swept_nodes : int }

(** Parallel fan-out capability, injected by the caller.

    [fan_run f xs] maps [f] over [xs], possibly concurrently, and
    returns the results in input order.  A record with a polymorphic
    field rather than a functor argument so that tape backends need no
    compile-time dependency on any particular pool implementation. *)
type fan = { fan_run : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

(** Shared storage and lifecycle contract. *)
module type STORE = sig
  type t

  (** Number of nodes currently recorded. *)
  val length : t -> int

  (** Currently reserved node slots (storage, not recording length). *)
  val capacity : t -> int

  (** Drop all nodes; allocated storage is retained for reuse. *)
  val clear : t -> unit

  (** New independent (input) variable: a parentless node; returns its
      id. *)
  val fresh_var : t -> int
end

(** Full reverse-mode tape: nodes carry local partial derivatives and a
    backward sweep yields adjoints. *)
module type TAPE = sig
  include STORE

  (** [push1 t p dp] appends a unary node with parent [p] and local
      partial [dp]; returns the node id. *)
  val push1 : t -> int -> float -> int

  (** [push2 t l dl r dr] appends a binary node. *)
  val push2 : t -> int -> float -> int -> float -> int

  (** Result of a backward sweep. *)
  type adjoints

  (** [backward t ~output] runs one reverse sweep seeded with
      [d output / d output = 1] and returns the adjoint of every node
      at or below [output].  Raises a descriptive [Invalid_argument]
      when [output] is not a recorded node — the one bounds check that
      licenses the unsafe sweep.

      The sweep is sparsity-aware: only nodes whose adjoint became
      nonzero are visited, and the result is bitwise identical to a
      dense descending scan (same nodes inspected in the same order,
      so the same floating-point additions in the same order).  When
      [?fan] is given, a backend may fan independent portions of the
      sweep out through it; results remain bitwise identical to the
      sequential sweep at any parallelism.

      The accumulator is cached on the tape across sweeps (cleared
      frontier-wise, not re-zeroed wholesale), so a later [backward]
      invalidates previously returned [adjoints]: read gradients before
      sweeping again. *)
  val backward : ?fan:fan -> t -> output:int -> adjoints

  (** [adjoint g id] is [d output / d node]; 0 for constants
      ([id < 0]) and for nodes recorded after the output. *)
  val adjoint : adjoints -> int -> float

  (** Statistics of the most recent [backward] on this tape; [None]
      before the first sweep. *)
  val last_sweep : t -> sweep_stats option
end

(** Edges-only dependence tape: no partials; a backward sweep computes
    reverse reachability (a zero-valued partial still counts as a
    dependence). *)
module type DEP = sig
  include STORE

  (** Unary dependence node. *)
  val push1 : t -> int -> int

  (** Binary dependence node. *)
  val push2 : t -> int -> int -> int

  type reach

  (** Reverse reachability from [output], one linear pass.  Raises a
      descriptive [Invalid_argument] when [output] is not on the
      tape. *)
  val backward : t -> output:int -> reach

  (** Is the node in the output's dependence cone? *)
  val reachable : reach -> int -> bool

  (** Statistics of the most recent [backward]; [None] before the
      first sweep.  [visited_nodes] counts marked (propagating)
      nodes. *)
  val last_sweep : t -> sweep_stats option
end
