(* Reverse-mode AD scalar (the Enzyme substitute).

   A value is (tape node id, primal).  Constants carry id = -1 and fold:
   arithmetic between constants records nothing, so running a kernel
   "before" the checkpoint boundary — when no variable has been lifted
   yet — costs no tape space at all. *)

type t = { id : int; v : float }

let const v = { id = -1; v }
let value x = x.v
let node_id x = x.id
let is_const x = x.id < 0
let var tape v = { id = Tape.fresh_var tape; v }

let lift tape x = if is_const x then var tape x.v else x

module Scalar_of (T : sig
  val tape : Tape.t
end) : Scalar.S with type t = t = struct
  type nonrec t = t

  let tape = T.tape
  let zero = const 0.
  let one = const 1.
  let of_float v = const v
  let of_int i = const (float_of_int i)
  let to_float x = x.v

  let[@inline] node1 v p dp = { id = Tape.push1 tape p.id dp; v }

  let[@inline] node2 v a da b db =
    { id = Tape.push2 tape a.id da b.id db; v }

  let[@inline] ( +. ) a b =
    let v = a.v +. b.v in
    if a.id < 0 && b.id < 0 then const v else node2 v a 1. b 1.

  let[@inline] ( -. ) a b =
    let v = a.v -. b.v in
    if a.id < 0 && b.id < 0 then const v else node2 v a 1. b (-1.)

  let[@inline] ( *. ) a b =
    let v = a.v *. b.v in
    if a.id < 0 && b.id < 0 then const v else node2 v a b.v b a.v

  let[@inline] ( /. ) a b =
    let v = a.v /. b.v in
    if a.id < 0 && b.id < 0 then const v
    else node2 v a Stdlib.(1. /. b.v) b Stdlib.(-.a.v /. (b.v *. b.v))

  let[@inline] ( ~-. ) a =
    let v = -.a.v in
    if a.id < 0 then const v else node1 v a (-1.)

  let sqrt a =
    let v = Stdlib.sqrt a.v in
    if a.id < 0 then const v else node1 v a Stdlib.(0.5 /. v)

  let exp a =
    let v = Stdlib.exp a.v in
    if a.id < 0 then const v else node1 v a v

  let log a =
    let v = Stdlib.log a.v in
    if a.id < 0 then const v else node1 v a Stdlib.(1. /. a.v)

  let sin a =
    let v = Stdlib.sin a.v in
    if a.id < 0 then const v else node1 v a (Stdlib.cos a.v)

  let cos a =
    let v = Stdlib.cos a.v in
    if a.id < 0 then const v else node1 v a Stdlib.(-.sin a.v)

  (* d|x|/dx = sign x; at 0 we keep the dependence with subgradient 1 so
     that an element read through [abs] at exactly 0 is not misclassified
     as uncritical. *)
  let abs a =
    let v = Stdlib.abs_float a.v in
    if a.id < 0 then const v
    else node1 v a (if a.v >= 0. then 1. else -1.)

  (* max/min select by primal; the derivative follows the winner. *)
  let max a b =
    if a.id < 0 && b.id < 0 then const (Stdlib.Float.max a.v b.v)
    else if a.v >= b.v then node2 a.v a 1. b 0.
    else node2 b.v a 0. b 1.

  let min a b =
    if a.id < 0 && b.id < 0 then const (Stdlib.Float.min a.v b.v)
    else if a.v <= b.v then node2 a.v a 1. b 0.
    else node2 b.v a 0. b 1.

  let compare a b = Stdlib.compare a.v b.v
  let equal a b = a.v = b.v
  let ( < ) a b = a.v < b.v
  let ( <= ) a b = a.v <= b.v
  let ( > ) a b = a.v > b.v
  let ( >= ) a b = a.v >= b.v
end

(* Generic front end over any TAPE backend.  The dense path above stays
   direct (no functor indirection on the 7.6 ns/node hot path); backends
   that already pay replay bookkeeping per push — Tape.Segmented — go
   through here.  The node type is shared, so Variable plumbing and
   capture snapshots work identically for every backend. *)
module Make (T : Tape_intf.TAPE) = struct
  let var tape v = { id = T.fresh_var tape; v }
  let lift tape x = if is_const x then var tape x.v else x

  module Scalar_of (Tp : sig
    val tape : T.t
  end) : Scalar.S with type t = t = struct
    type nonrec t = t

    let tape = Tp.tape
    let zero = const 0.
    let one = const 1.
    let of_float v = const v
    let of_int i = const (float_of_int i)
    let to_float x = x.v

    let[@inline] node1 v p dp = { id = T.push1 tape p.id dp; v }

    let[@inline] node2 v a da b db =
      { id = T.push2 tape a.id da b.id db; v }

    let[@inline] ( +. ) a b =
      let v = a.v +. b.v in
      if a.id < 0 && b.id < 0 then const v else node2 v a 1. b 1.

    let[@inline] ( -. ) a b =
      let v = a.v -. b.v in
      if a.id < 0 && b.id < 0 then const v else node2 v a 1. b (-1.)

    let[@inline] ( *. ) a b =
      let v = a.v *. b.v in
      if a.id < 0 && b.id < 0 then const v else node2 v a b.v b a.v

    let[@inline] ( /. ) a b =
      let v = a.v /. b.v in
      if a.id < 0 && b.id < 0 then const v
      else node2 v a Stdlib.(1. /. b.v) b Stdlib.(-.a.v /. (b.v *. b.v))

    let[@inline] ( ~-. ) a =
      let v = -.a.v in
      if a.id < 0 then const v else node1 v a (-1.)

    let sqrt a =
      let v = Stdlib.sqrt a.v in
      if a.id < 0 then const v else node1 v a Stdlib.(0.5 /. v)

    let exp a =
      let v = Stdlib.exp a.v in
      if a.id < 0 then const v else node1 v a v

    let log a =
      let v = Stdlib.log a.v in
      if a.id < 0 then const v else node1 v a Stdlib.(1. /. a.v)

    let sin a =
      let v = Stdlib.sin a.v in
      if a.id < 0 then const v else node1 v a (Stdlib.cos a.v)

    let cos a =
      let v = Stdlib.cos a.v in
      if a.id < 0 then const v else node1 v a Stdlib.(-.sin a.v)

    (* Same subgradient convention as the dense scalar: keep the
       dependence at 0 so reads through [abs] are never misclassified. *)
    let abs a =
      let v = Stdlib.abs_float a.v in
      if a.id < 0 then const v
      else node1 v a (if a.v >= 0. then 1. else -1.)

    let max a b =
      if a.id < 0 && b.id < 0 then const (Stdlib.Float.max a.v b.v)
      else if a.v >= b.v then node2 a.v a 1. b 0.
      else node2 b.v a 0. b 1.

    let min a b =
      if a.id < 0 && b.id < 0 then const (Stdlib.Float.min a.v b.v)
      else if a.v <= b.v then node2 a.v a 1. b 0.
      else node2 b.v a 0. b 1.

    let compare a b = Stdlib.compare a.v b.v
    let equal a b = a.v = b.v
    let ( < ) a b = a.v < b.v
    let ( <= ) a b = a.v <= b.v
    let ( > ) a b = a.v > b.v
    let ( >= ) a b = a.v >= b.v
  end

  type gradients = T.adjoints option

  let backward ?fan tape (output : t) =
    if is_const output then None
    else Some (T.backward ?fan tape ~output:output.id)

  let grad g x =
    match g with None -> 0. | Some adj -> T.adjoint adj x.id
end

module Segmented = Make (Tape.Segmented)

(* Gradients of a backward sweep; [None] when the output never touched a
   lifted variable (all derivatives are then 0). *)
type gradients = Tape.adjoints option

let backward ?fan tape (output : t) =
  if is_const output then None
  else Some (Tape.backward ?fan tape ~output:output.id)

let grad g x =
  match g with None -> 0. | Some adj -> Tape.adjoint adj x.id
