(** Central-difference numerical derivatives.

    Independent oracle for the AD engines: shares no code with the tapes,
    so agreement (within truncation error) is strong evidence of
    correctness. *)

val default_step : float

(** [step ?h x] is the effective step at coordinate value [x]:
    [h *. max 1.0 (abs x)] — absolute for small coordinates, relative
    for large ones, so the difference quotient never drowns in
    cancellation ([h] defaults to {!default_step}). *)
val step : ?h:float -> float -> float

(** [derivative ?h f x i] ≈ ∂f/∂x{_i} at [x] by central difference with
    the relative step [step ?h x.(i)].  [x] is mutated during evaluation
    and restored before returning. *)
val derivative : ?h:float -> (float array -> float) -> float array -> int -> float

(** Full gradient, one {!derivative} call per coordinate. *)
val gradient : ?h:float -> (float array -> float) -> float array -> float array
