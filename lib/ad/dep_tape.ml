(* Edges-only dependence tape: like {!Tape} but without partial
   derivatives (8 bytes per node).  Backed by {!Activity} (float
   dependence analysis) and {!Itaint} (integer dependence analysis);
   criticality is reverse reachability from the output node. *)

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable n : int; mutable lhs : i32; mutable rhs : i32 }

let alloc n : i32 = Bigarray.(Array1.create int32 c_layout n)

let create ?(capacity = 1024) () =
  let capacity = Stdlib.max capacity 16 in
  { n = 0; lhs = alloc capacity; rhs = alloc capacity }

let length t = t.n
let capacity t = Bigarray.Array1.dim t.lhs
let clear t = t.n <- 0

let grow t =
  let old = capacity t in
  let lhs = alloc (old * 2) and rhs = alloc (old * 2) in
  Bigarray.Array1.(blit t.lhs (sub lhs 0 old));
  Bigarray.Array1.(blit t.rhs (sub rhs 0 old));
  t.lhs <- lhs;
  t.rhs <- rhs

let push t l r =
  if t.n = capacity t then grow t;
  let i = t.n in
  t.lhs.{i} <- Int32.of_int l;
  t.rhs.{i} <- Int32.of_int r;
  t.n <- i + 1;
  i

let fresh_var t = push t (-1) (-1)
let push1 t p = push t p (-1)
let push2 t l r = push t l r

(* Set of nodes the output depends on, as a bitset. *)
type reach = { bits : Bytes.t; upto : int }

let mark bits i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set bits byte
    (Char.chr (Char.code (Bytes.unsafe_get bits byte) lor (1 lsl bit)))

let marked bits i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get bits byte) land (1 lsl bit) <> 0

let backward t ~output =
  if output < 0 || output >= t.n then
    invalid_arg
      (Printf.sprintf
         "Dep_tape.backward: output node %d is not on the tape (%d node%s \
          recorded)"
         output t.n
         (if t.n = 1 then "" else "s"));
  let bits = Bytes.make ((output / 8) + 1) '\000' in
  mark bits output;
  for i = output downto 0 do
    if marked bits i then begin
      let l = Int32.to_int t.lhs.{i} in
      if l >= 0 then mark bits l;
      let r = Int32.to_int t.rhs.{i} in
      if r >= 0 then mark bits r
    end
  done;
  { bits; upto = output }

let reachable g id = id >= 0 && id <= g.upto && marked g.bits id
