(* Edges-only dependence tape: like {!Tape} but without partial
   derivatives (8 bytes per node).  Backed by {!Activity} (float
   dependence analysis) and {!Itaint} (integer dependence analysis);
   criticality is reverse reachability from the output node. *)

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable n : int;
  mutable lhs : i32;
  mutable rhs : i32;
  mutable last : Tape_intf.sweep_stats option;
}

let alloc n : i32 = Bigarray.(Array1.create int32 c_layout n)

let create ?(capacity = 1024) () =
  let capacity = Stdlib.max capacity 16 in
  { n = 0; lhs = alloc capacity; rhs = alloc capacity; last = None }

let length t = t.n
let capacity t = Bigarray.Array1.dim t.lhs

let clear t =
  t.n <- 0;
  t.last <- None

let grow t =
  let old = capacity t in
  let lhs = alloc (old * 2) and rhs = alloc (old * 2) in
  Bigarray.Array1.(blit t.lhs (sub lhs 0 old));
  Bigarray.Array1.(blit t.rhs (sub rhs 0 old));
  t.lhs <- lhs;
  t.rhs <- rhs

let push t l r =
  if t.n = capacity t then grow t;
  let i = t.n in
  t.lhs.{i} <- Int32.of_int l;
  t.rhs.{i} <- Int32.of_int r;
  t.n <- i + 1;
  i

let fresh_var t = push t (-1) (-1)
let push1 t p = push t p (-1)
let push2 t l r = push t l r

(* Set of nodes the output depends on, as a bitset. *)
type reach = { bits : Bytes.t; upto : int }

let mark bits i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set bits byte
    (Char.chr (Char.code (Bytes.unsafe_get bits byte) lor (1 lsl bit)))

let marked bits i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get bits byte) land (1 lsl bit) <> 0

let backward t ~output =
  if output < 0 || output >= t.n then
    invalid_arg
      (Printf.sprintf
         "Dep_tape.backward: output node %d is not on the tape (%d node%s \
          recorded)"
         output t.n
         (if t.n = 1 then "" else "s"));
  let bits = Bytes.make ((output / 8) + 1) '\000' in
  mark bits output;
  (* Frontier scan: unmarked nodes are outside the dependence cone and
     are skipped 8 or 64 at a time without being read.  Sound because a
     mark only ever lands at an id strictly below the node being
     processed (parents precede children), so a skipped range can never
     gain a mark after the scan has passed it. *)
  let visited = ref 0 in
  let i = ref output in
  while !i >= 0 do
    let ip = !i in
    let byte = ip lsr 3 in
    if ip land 7 = 7 && Bytes.unsafe_get bits byte = '\000' then
      if
        ip land 63 = 63 && byte >= 7
        && Bytes.get_int64_ne bits (byte - 7) = 0L
      then i := ip - 64
      else i := ip - 8
    else begin
      if marked bits ip then begin
        incr visited;
        let l = Int32.to_int t.lhs.{ip} in
        if l >= 0 then mark bits l;
        let r = Int32.to_int t.rhs.{ip} in
        if r >= 0 then mark bits r
      end;
      i := ip - 1
    end
  done;
  t.last <-
    Some { Tape_intf.visited_nodes = !visited; swept_nodes = output + 1 };
  { bits; upto = output }

let last_sweep t = t.last

let reachable g id = id >= 0 && id <= g.upto && marked g.bits id
