(* Reverse-mode tape: a compact, append-only record of the data-flow graph.

   Each node has at most two parents.  Parents and local partial
   derivatives are stored in Bigarrays (24 bytes per node) so that tapes
   with tens of millions of nodes — e.g. an FT class-S inverse 3-D FFT —
   fit comfortably in memory and put no pressure on the OCaml GC.

   Storage is chunked: a tape is a sequence of equally sized Bigarray
   slabs.  Growing appends one slab (a few Bigarray allocations) instead
   of reallocating and copying the whole tape — with tens of millions of
   nodes the doubling-and-blitting scheme this replaces copied hundreds
   of megabytes per analysis.  A [capacity_hint] sized from the
   application (App.S.tape_nodes_hint) makes the common case a single
   slab allocated exactly once.

   Node ids are global indices; because every slab holds [slab_nodes]
   nodes, id [i] lives in slab [i / slab_nodes] at offset
   [i mod slab_nodes].  The hot paths (push, backward) use
   [Array1.unsafe_get]/[unsafe_set]: push stays inside the current slab
   by construction, and backward's indices are bounded by the one
   up-front check on [output] plus the tape invariant that parents are
   recorded before their children. *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type slab = {
  lhs : i32; (* parent index, or -1 for none *)
  rhs : i32;
  dlhs : f64; (* d node / d lhs *)
  drhs : f64;
  base : int; (* global id of this slab's first node *)
}

(* Cached backward-sweep state: the adjoint accumulator plus the
   frontier bitmap (one bit per node, set the moment the node's adjoint
   receives any contribution).  Both survive across sweeps on the same
   tape so that a later sweep clears only the entries the previous one
   touched instead of zero-filling the whole accumulator (~8 bytes per
   node — ~196 MB for a class-S FT tape, per probed output).
   Invariant between sweeps: every nonzero entry of [f_adj] has its bit
   set in [f_bits]. *)
type frontier = { f_adj : f64; f_bits : Bytes.t }

type t = {
  slab_nodes : int; (* nodes per slab; identical for every slab *)
  mutable n : int; (* total nodes recorded *)
  mutable slabs : slab array; (* allocated slabs, in id order *)
  mutable nslabs : int; (* slabs allocated (>= slabs in use) *)
  mutable cur : slab; (* slab containing node id [n] *)
  mutable cur_end : int; (* [cur.base + slab_nodes] *)
  mutable fr : frontier option; (* sweep state cached across backwards *)
  mutable last : Tape_intf.sweep_stats option;
}

let alloc_i32 n : i32 = Bigarray.(Array1.create int32 c_layout n)
let alloc_f64 n : f64 = Bigarray.(Array1.create float64 c_layout n)

let alloc_slab ~nodes ~base =
  {
    lhs = alloc_i32 nodes;
    rhs = alloc_i32 nodes;
    dlhs = alloc_f64 nodes;
    drhs = alloc_f64 nodes;
    base;
  }

let default_capacity_hint = 1 lsl 16

let create ?(capacity_hint = default_capacity_hint) () =
  if capacity_hint < 0 then
    invalid_arg
      (Printf.sprintf "Tape.create: capacity_hint must be >= 0 (got %d)"
         capacity_hint);
  let slab_nodes = Stdlib.max capacity_hint 16 in
  let first = alloc_slab ~nodes:slab_nodes ~base:0 in
  {
    slab_nodes;
    n = 0;
    slabs = [| first |];
    nslabs = 1;
    cur = first;
    cur_end = slab_nodes;
    fr = None;
    last = None;
  }

let length t = t.n
let slab_nodes t = t.slab_nodes
let capacity t = t.nslabs * t.slab_nodes

(* Bytes of tape storage currently reserved (diagnostic). *)
let reserved_bytes t = capacity t * 24

(* Storage is retained for reuse: subsequent pushes walk the already
   allocated slabs again. *)
let clear t =
  t.n <- 0;
  t.cur <- t.slabs.(0);
  t.cur_end <- t.slab_nodes;
  (* The frontier cache is storage, not recording state: keep it. *)
  t.last <- None

(* Make [cur] the slab containing node id [t.n]; never copies node data. *)
let grow t =
  let k = t.n / t.slab_nodes in
  if k >= t.nslabs then begin
    if t.nslabs = Array.length t.slabs then begin
      (* Amortize: double the slab *directory* (cheap, shallow). *)
      let bigger = Array.make (2 * t.nslabs) t.slabs.(0) in
      Array.blit t.slabs 0 bigger 0 t.nslabs;
      t.slabs <- bigger
    end;
    t.slabs.(t.nslabs) <-
      alloc_slab ~nodes:t.slab_nodes ~base:(t.nslabs * t.slab_nodes);
    t.nslabs <- t.nslabs + 1
  end;
  t.cur <- t.slabs.(k);
  t.cur_end <- t.cur.base + t.slab_nodes

(* Raw node append; returns the new node id. *)
let push t l dl r dr =
  let i = t.n in
  if i = t.cur_end then grow t;
  let s = t.cur in
  let j = i - s.base in
  Bigarray.Array1.unsafe_set s.lhs j (Int32.of_int l);
  Bigarray.Array1.unsafe_set s.rhs j (Int32.of_int r);
  Bigarray.Array1.unsafe_set s.dlhs j dl;
  Bigarray.Array1.unsafe_set s.drhs j dr;
  t.n <- i + 1;
  i

(* An input (independent) variable: a parentless node. *)
let fresh_var t = push t (-1) 0. (-1) 0.

let push1 t parent partial = push t parent partial (-1) 0.
let push2 t l dl r dr = push t l dl r dr

(* ------------------------------------------------------------------ *)
(* Sparsity-aware frontier sweep engine, shared by the dense tape and
   Segmented windows.

   The dense sweep's only skip was the per-node [a <> 0.] test — it
   still read every adjoint of a 24.5M-node FT tape even though the
   zeroness of most of them IS the paper's uncriticality signal.  Here
   a bitmap tracks which nodes have received any adjoint contribution;
   the descending scan skips untouched nodes 8 or 64 at a time without
   reading the accumulator.  Skipping is loss-free and order-preserving
   because a contribution only ever lands at an id strictly below the
   node being processed (parents precede children), so a skipped range
   can never gain a bit after the scan has passed it.  The nodes that
   are inspected and found nonzero — and the order they are inspected
   in — are exactly those of the dense scan, so every floating-point
   addition happens in the same order and the result is bitwise
   identical. *)

let[@inline] set_bit bits i =
  let byte = i lsr 3 in
  Bytes.unsafe_set bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get bits byte) lor (1 lsl (i land 7))))

let[@inline] bit_set bits i =
  Char.code (Bytes.unsafe_get bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* Restore the invariant "accumulator is all zero, bitmap is all
   clear" by walking the bitmap: only previously-touched entries are
   written, so the cost is O(touched + bits/64), not O(nodes). *)
let reset_frontier fr =
  let bits = fr.f_bits and adj = fr.f_adj in
  let adim = Bigarray.Array1.dim adj in
  let nbytes = Bytes.length bits in
  let b = ref 0 in
  while !b < nbytes do
    if !b + 8 <= nbytes && Bytes.get_int64_ne bits !b = 0L then b := !b + 8
    else begin
      if Bytes.unsafe_get bits !b <> '\000' then begin
        (* Zero all 8 slots unconditionally: re-zeroing an untouched
           neighbor is free, and the branchless run vectorizes. *)
        let base = !b lsl 3 in
        let last = Stdlib.min (base + 7) (adim - 1) in
        for i = base to last do
          Bigarray.Array1.unsafe_set adj i 0.
        done
      end;
      incr b
    end
  done;
  Bytes.fill bits 0 nbytes '\000'

(* A zeroed accumulator + clear bitmap covering ids [0, dim): reuse the
   cached one when large enough (clearing only what the previous sweep
   touched), else allocate fresh. *)
let obtain_frontier cached ~dim =
  match cached with
  | Some fr when Bigarray.Array1.dim fr.f_adj >= dim ->
      reset_frontier fr;
      fr
  | _ ->
      let adj = alloc_f64 dim in
      Bigarray.Array1.fill adj 0.;
      { f_adj = adj; f_bits = Bytes.make ((dim + 7) lsr 3) '\000' }

(* Any touched node in id range [lo, hi]?  Byte-granular, so shared
   boundary bytes make it conservative (may answer [true] for a range
   whose own nodes are untouched) — a false positive only costs a sweep
   that visits nothing. *)
let range_live bits ~lo ~hi =
  let b_hi = hi lsr 3 in
  let b = ref (lo lsr 3) and live = ref false in
  while (not !live) && !b <= b_hi do
    if !b + 8 <= b_hi + 1 then
      if Bytes.get_int64_ne bits !b = 0L then b := !b + 8 else live := true
    else if Bytes.unsafe_get bits !b <> '\000' then live := true
    else incr b
  done;
  !live

(* Sequential frontier scan of ids [hi] downto [lo]: inspect only
   touched nodes, propagate only nonzero ones.  [get_slab k] must
   return the materialized slab holding ids [k*sn, (k+1)*sn).  Returns
   the number of propagating (visited) nodes. *)
let frontier_scan ~get_slab ~sn ~(adj : f64) ~bits ~hi ~lo =
  let visited = ref 0 in
  if hi >= lo then begin
    let k = ref (hi / sn) in
    let s = ref (get_slab !k) in
    let i = ref hi in
    while !i >= lo do
      let ip = !i in
      let byte = ip lsr 3 in
      if ip land 7 = 7 && Bytes.unsafe_get bits byte = '\000' then
        (* Ids (ip-7, ip] untouched; widen to 64 on word alignment. *)
        if
          ip land 63 = 63 && byte >= 7
          && Bytes.get_int64_ne bits (byte - 7) = 0L
        then i := ip - 64
        else i := ip - 8
      else begin
        if bit_set bits ip then begin
          let a = Bigarray.Array1.unsafe_get adj ip in
          (* lint: allow float-equality — exact-zero adjoint skip: a
             zero contributes exactly nothing, so propagation is
             loss-free *)
          if a <> 0. then begin
            incr visited;
            while ip < (!s).base do
              decr k;
              s := get_slab !k
            done;
            let sl = !s in
            let j = ip - sl.base in
            let l = Int32.to_int (Bigarray.Array1.unsafe_get sl.lhs j) in
            if l >= 0 then begin
              Bigarray.Array1.unsafe_set adj l
                (Bigarray.Array1.unsafe_get adj l
                +. (a *. Bigarray.Array1.unsafe_get sl.dlhs j));
              set_bit bits l
            end;
            let r = Int32.to_int (Bigarray.Array1.unsafe_get sl.rhs j) in
            if r >= 0 then begin
              Bigarray.Array1.unsafe_set adj r
                (Bigarray.Array1.unsafe_get adj r
                +. (a *. Bigarray.Array1.unsafe_get sl.drhs j));
              set_bit bits r
            end
          end
        end;
        i := ip - 1
      end
    done
  end;
  !visited

(* --- Segment-parallel sweep: speculative waves over slabs ---------- *)

(* One slab's local sweep, run speculatively against a frozen global
   accumulator.  Within-slab contributions land in a private scratch
   copy; contributions crossing below the slab are queued in scan
   order.  The speculation is valid iff no slab above it in the same
   wave emits into its range — checked at commit time. *)
type spec = {
  sp_k : int;
  sp_base : int; (* global id of scratch.{0} *)
  sp_len : int;
  sp_scratch : f64;
  sp_emits : (int * float) list; (* cross-slab contributions, scan order *)
  sp_touched : int list; (* within-slab ids that received contributions *)
  sp_visited : int;
}

let speculate ~get_slab ~sn ~(adj : f64) ~adj_id ~hi ~lo k =
  let sl = get_slab k in
  let base = sl.base in
  let lo_j = Stdlib.max 0 (lo - base) in
  let hi_j = Stdlib.min (sn - 1) (hi - base) in
  let len = hi_j + 1 in
  let scratch = alloc_f64 len in
  Bigarray.Array1.blit (Bigarray.Array1.sub adj base len) scratch;
  (* The write-set sanitizer sees each speculation as one span of the
     adjoint space, [base, base + len): the scratch mirrors exactly that
     slice, and cross-slab contributions are queued, not written.  Two
     concurrent speculations overlapping here would mean slab ranges
     overlap — the invariant the scratch-then-commit protocol rests on. *)
  Scvad_sanitize.Sanitize.record ~obj:adj_id ~lo:base ~hi:(base + len)
    ~tag:"tape.speculate";
  let emits = ref [] and touched = ref [] and visited = ref 0 in
  for j = hi_j downto lo_j do
    let a = Bigarray.Array1.unsafe_get scratch j in
    (* lint: allow float-equality — exact-zero adjoint skip, as in the
       sequential sweep *)
    if a <> 0. then begin
      incr visited;
      let l = Int32.to_int (Bigarray.Array1.unsafe_get sl.lhs j) in
      if l >= 0 then begin
        let c = a *. Bigarray.Array1.unsafe_get sl.dlhs j in
        if l >= base then begin
          let x = l - base in
          Bigarray.Array1.unsafe_set scratch x
            (Bigarray.Array1.unsafe_get scratch x +. c);
          touched := l :: !touched
        end
        else emits := (l, c) :: !emits
      end;
      let r = Int32.to_int (Bigarray.Array1.unsafe_get sl.rhs j) in
      if r >= 0 then begin
        let c = a *. Bigarray.Array1.unsafe_get sl.drhs j in
        if r >= base then begin
          let x = r - base in
          Bigarray.Array1.unsafe_set scratch x
            (Bigarray.Array1.unsafe_get scratch x +. c);
          touched := r :: !touched
        end
        else emits := (r, c) :: !emits
      end
    end
  done;
  {
    sp_k = k;
    sp_base = base;
    sp_len = len;
    sp_scratch = scratch;
    sp_emits = List.rev !emits;
    sp_touched = !touched;
    sp_visited = !visited;
  }

(* Sequential fallback for a slab whose speculation was invalidated:
   sweep it directly against the global accumulator (which by commit
   order now holds its final seeds), dirtying lower wave slabs its
   contributions land in. *)
let commit_sweep_slab ~sn ~(adj : f64) ~bits ~hi ~lo ~w_lo ~dirty sl visited =
  let base = sl.base in
  let lo_j = Stdlib.max 0 (lo - base) in
  let hi_j = Stdlib.min (sn - 1) (hi - base) in
  for j = hi_j downto lo_j do
    let i = base + j in
    let a = Bigarray.Array1.unsafe_get adj i in
    (* lint: allow float-equality — exact-zero adjoint skip, as in the
       sequential sweep *)
    if a <> 0. then begin
      incr visited;
      let l = Int32.to_int (Bigarray.Array1.unsafe_get sl.lhs j) in
      if l >= 0 then begin
        Bigarray.Array1.unsafe_set adj l
          (Bigarray.Array1.unsafe_get adj l
          +. (a *. Bigarray.Array1.unsafe_get sl.dlhs j));
        set_bit bits l;
        if l < base then begin
          let tk = l / sn in
          if tk >= w_lo then dirty.(tk - w_lo) <- true
        end
      end;
      let r = Int32.to_int (Bigarray.Array1.unsafe_get sl.rhs j) in
      if r >= 0 then begin
        Bigarray.Array1.unsafe_set adj r
          (Bigarray.Array1.unsafe_get adj r
          +. (a *. Bigarray.Array1.unsafe_get sl.drhs j));
        set_bit bits r;
        if r < base then begin
          let tk = r / sn in
          if tk >= w_lo then dirty.(tk - w_lo) <- true
        end
      end
    end
  done

(* Slabs speculated per wave.  With one domain this only bounds scratch
   memory; with many it bounds how much speculation a conflict can
   discard. *)
let wave_cap = 16

(* Sweep ids [hi] downto [lo].  Without [fan]: the sequential frontier
   scan.  With [fan]: waves of slabs are swept speculatively in
   parallel and committed sequentially in descending slab order —
   scratch blit + queued contributions for valid speculations, a
   sequential re-sweep for invalidated ones — so every addition lands
   in the same order as the sequential scan and the result is bitwise
   identical at any parallelism.  Visited counts are taken only from
   final-seed sweeps, hence also identical. *)
let sweep_range ?fan ~get_slab ~sn ~(adj : f64) ~bits ~hi ~lo () =
  if hi < lo then 0
  else
    match fan with
    | None -> frontier_scan ~get_slab ~sn ~adj ~bits ~hi ~lo
    | Some f ->
        let visited = ref 0 in
        (* One sanitizer identity per sweep stands for the adjoint
           space: every speculation of every wave records against it. *)
        let adj_id = Scvad_sanitize.Sanitize.fresh_id () in
        let k_lo = lo / sn in
        let slab_live k =
          range_live bits
            ~lo:(Stdlib.max lo (k * sn))
            ~hi:(Stdlib.min hi (((k + 1) * sn) - 1))
        in
        let pos = ref (hi / sn) in
        while !pos >= k_lo do
          (* Everything above [pos] is committed, so liveness here is
             final: untouched head slabs can never gain a bit. *)
          while !pos >= k_lo && not (slab_live !pos) do
            decr pos
          done;
          if !pos >= k_lo then begin
            let w_hi = !pos in
            let w_lo = Stdlib.max k_lo (w_hi - wave_cap + 1) in
            let dirty = Array.make (w_hi - w_lo + 1) false in
            let live = ref [] in
            for k = w_lo to w_hi do
              if slab_live k then live := k :: !live
            done;
            let specs =
              f.Tape_intf.fan_run
                (fun k -> speculate ~get_slab ~sn ~adj ~adj_id ~hi ~lo k)
                !live
            in
            let by_k = Hashtbl.create 16 in
            List.iter (fun sp -> Hashtbl.replace by_k sp.sp_k sp) specs;
            for k0 = w_lo to w_hi do
              let k = w_hi - (k0 - w_lo) in
              let was_dirty = dirty.(k - w_lo) in
              match Hashtbl.find_opt by_k k with
              | Some sp when not was_dirty ->
                  Bigarray.Array1.blit sp.sp_scratch
                    (Bigarray.Array1.sub adj sp.sp_base sp.sp_len);
                  List.iter (fun id -> set_bit bits id) sp.sp_touched;
                  visited := !visited + sp.sp_visited;
                  List.iter
                    (fun (id, c) ->
                      Bigarray.Array1.unsafe_set adj id
                        (Bigarray.Array1.unsafe_get adj id +. c);
                      set_bit bits id;
                      let tk = id / sn in
                      if tk >= w_lo then dirty.(tk - w_lo) <- true)
                    sp.sp_emits
              | Some _ ->
                  commit_sweep_slab ~sn ~adj ~bits ~hi ~lo ~w_lo ~dirty
                    (get_slab k) visited
              | None ->
                  if was_dirty then
                    commit_sweep_slab ~sn ~adj ~bits ~hi ~lo ~w_lo ~dirty
                      (get_slab k) visited
            done;
            pos := w_lo - 1
          end
        done;
        !visited

(* Adjoint accumulator produced by a backward sweep. *)
type adjoints = { adj : f64; upto : int }

(* Reverse sweep from [output].  One pass computes d output / d node for
   every node at or below [output] — this is what lets the analysis
   scrutinize every element of every checkpoint variable at once.  The
   sweep is frontier-driven (see the engine above): cost is
   proportional to the touched subgraph, not the tape, and the result
   is bitwise identical to the dense descending scan it replaced.

   The accumulator and bitmap are cached on the tape across sweeps, so
   a later [backward] on the same tape invalidates previously returned
   [adjoints] — consistent with the documented one-backward-per-
   recording contract.

   Safety of the unsafe accesses: [output < t.n] is checked once, node
   offsets stay inside their slab by the uniform-slab-size layout, and a
   parent id is always a node id recorded before its child, so
   [l, r < i <= output < dim adj]. *)
let backward ?fan t ~output =
  if output < 0 || output >= t.n then
    invalid_arg "Tape.backward: output is not a tape node";
  let fr = obtain_frontier t.fr ~dim:(output + 1) in
  t.fr <- Some fr;
  let adj = fr.f_adj and bits = fr.f_bits in
  Bigarray.Array1.unsafe_set adj output 1.;
  set_bit bits output;
  let get_slab k = Array.unsafe_get t.slabs k in
  let visited =
    sweep_range ?fan ~get_slab ~sn:t.slab_nodes ~adj ~bits ~hi:output ~lo:0 ()
  in
  t.last <-
    Some { Tape_intf.visited_nodes = visited; swept_nodes = output + 1 };
  { adj; upto = output }

let last_sweep t = t.last

(* Adjoint of a node; nodes above the output (or constants, id = -1)
   cannot influence it, so their adjoint is 0. *)
let adjoint g id = if id < 0 || id > g.upto then 0. else g.adj.{id}

(* Segmented tape: same node layout, bounded live storage.

   Recording keeps only a trailing window of at most [budget_slabs]
   materialized slabs; older slabs are released to a freelist as soon as
   replay can rebuild them (a primal snapshot at or below them exists).
   [start_segment] marks program-step boundaries; the registered
   [capture] hook snapshots restart state there — the paper's premise
   that checkpoint variables are a complete restart state is exactly
   what makes those snapshots sufficient.  [backward] sweeps slab
   windows top-down, replaying the program from the nearest snapshot to
   rematerialize each discarded window.  Replay is deterministic, so
   re-pushed nodes get the ids they had during recording; watermark
   checks at every boundary turn any divergence into an error instead
   of a silent wrong adjoint.

   Nodes pushed before the first [start_segment] (the prelude — input
   lifting) are never replayed and must be parentless: the sweep skips
   them (a leaf receives adjoint but propagates nothing), which is
   enforced at push time.

   The adjoint accumulator itself stays dense (8 bytes per node up to
   the output): adjoint edges cross segment boundaries, so it cannot be
   windowed without a second level of checkpointing.  The memory budget
   bounds tape *node storage* (24 bytes per slot); callers size budgets
   accordingly. *)
module Segmented = struct
  type schedule =
    | All_store
    | Log_stride
    | Binomial
    | Planned of int list
        (* precomputed snapshot boundaries, strictly increasing from 0 *)

  let schedule_to_string = function
    | All_store -> "all-store"
    | Log_stride -> "log-stride"
    | Binomial -> "binomial"
    | Planned bs -> Printf.sprintf "planned[%d]" (List.length bs)

  (* [Planned] carries a payload a string cannot supply; parsing stays
     over the closed-form schedules only. *)
  let schedule_of_string = function
    | "all-store" -> Some All_store
    | "log-stride" -> Some Log_stride
    | "binomial" -> Some Binomial
    | _ -> None

  let validate_plan bs =
    let ok =
      match bs with
      | [] -> false
      | b0 :: _ ->
          b0 = 0
          && fst
               (List.fold_left
                  (fun (ok, prev) b -> (ok && b > prev, b))
                  (true, -1) bs)
    in
    if not ok then
      invalid_arg
        "Tape.Segmented: a Planned schedule must list strictly increasing \
         boundary indices starting at 0"

  type mode = Recording | Replaying

  type t = {
    sn : int; (* nodes per slab *)
    budget_slabs : int; (* max materialized slabs *)
    budget_nodes : int; (* as requested by the caller *)
    schedule : schedule;
    snapshot_slots : int;
    mutable n : int; (* nodes recorded (or replayed) so far *)
    mutable total : int; (* frozen recording length at backward *)
    mutable dir : slab option array; (* slab index -> live storage *)
    mutable free : slab list; (* detached storage for reuse *)
    mutable live_cnt : int; (* materialized slabs *)
    mutable live_lo : int; (* oldest materialized slab (recording) *)
    mutable cur : slab; (* slab for node [n] when materialized *)
    mutable cur_end : int; (* first id beyond [cur] (or a seek mark) *)
    mutable skip : bool; (* replay outside the target window *)
    mutable mode : mode;
    mutable win_lo : int; (* replay target window, in slabs *)
    mutable win_hi : int;
    mutable capture : (unit -> unit -> unit) option;
    mutable replay_step : (int -> unit) option;
    mutable marks : int array; (* marks.(s) = n at boundary s *)
    mutable nseg : int;
    mutable snaps : (unit -> unit) option array; (* restore thunks *)
    mutable snap_cnt : int;
    mutable stride : int; (* log-stride retention stride *)
    mutable plan : int list; (* binomial re-capture boundaries *)
    mutable replays : int;
    mutable replayed_nodes : int;
    mutable peak_live : int; (* in slabs *)
    mutable snapshots_taken : int;
    mutable fr : frontier option; (* sweep state cached across backwards *)
    mutable last : Tape_intf.sweep_stats option;
  }

  (* Raised by a replay push that crosses above the target window: the
     window is fully rematerialized, so the rest of the program step
     need not run.  The aborted step leaves kernel state mid-update,
     which is fine — the next replay restores a snapshot first, and the
     sweep touches only tape storage. *)
  exception Window_filled

  let create ?slab_nodes ?(snapshot_slots = 32) ?(schedule = Binomial)
      ~budget_nodes () =
    if budget_nodes < 1 then
      invalid_arg
        (Printf.sprintf
           "Tape.Segmented.create: budget_nodes must be >= 1 (got %d)"
           budget_nodes);
    if snapshot_slots < 1 then
      invalid_arg
        (Printf.sprintf
           "Tape.Segmented.create: snapshot_slots must be >= 1 (got %d)"
           snapshot_slots);
    (match schedule with Planned bs -> validate_plan bs | _ -> ());
    let sn =
      match slab_nodes with
      | Some s ->
          if s < 16 then
            invalid_arg
              (Printf.sprintf
                 "Tape.Segmented.create: slab_nodes must be >= 16 (got %d)" s)
          else s
      | None ->
          (* Eight-or-more slabs per budget keeps replay windows coarse
             enough to amortize a replay pass over many swept nodes. *)
          Stdlib.max 16 (Stdlib.min default_capacity_hint (budget_nodes / 8))
    in
    let budget_slabs = Stdlib.max 1 (budget_nodes / sn) in
    let first = alloc_slab ~nodes:sn ~base:0 in
    let dir = Array.make 8 None in
    dir.(0) <- Some first;
    {
      sn;
      budget_slabs;
      budget_nodes;
      schedule;
      snapshot_slots;
      n = 0;
      total = 0;
      dir;
      free = [];
      live_cnt = 1;
      live_lo = 0;
      cur = first;
      cur_end = sn;
      skip = false;
      mode = Recording;
      win_lo = 0;
      win_hi = max_int;
      capture = None;
      replay_step = None;
      marks = Array.make 8 0;
      nseg = 0;
      snaps = Array.make 8 None;
      snap_cnt = 0;
      stride = 1;
      plan = [];
      replays = 0;
      replayed_nodes = 0;
      peak_live = 1;
      snapshots_taken = 0;
      fr = None;
      last = None;
    }

  let length t = t.n
  let slab_nodes t = t.sn

  let capacity t =
    (t.live_cnt + List.length t.free) * t.sn

  let reserved_bytes t = capacity t * 24

  (* Materialize slab [k] (idempotent): reuse freelist storage, else
     allocate; the slab directory doubles like the dense tape's. *)
  let materialize t k =
    if k >= Array.length t.dir then begin
      let cap = ref (2 * Array.length t.dir) in
      while k >= !cap do
        cap := 2 * !cap
      done;
      let d = Array.make !cap None in
      Array.blit t.dir 0 d 0 (Array.length t.dir);
      t.dir <- d
    end;
    match t.dir.(k) with
    | Some s -> s
    | None ->
        let base = k * t.sn in
        let s =
          match t.free with
          | s :: rest ->
              t.free <- rest;
              { s with base }
          | [] -> alloc_slab ~nodes:t.sn ~base
        in
        t.dir.(k) <- Some s;
        t.live_cnt <- t.live_cnt + 1;
        if t.live_cnt > t.peak_live then t.peak_live <- t.live_cnt;
        s

  let release t k =
    if k < Array.length t.dir then
      match t.dir.(k) with
      | None -> ()
      | Some s ->
          t.dir.(k) <- None;
          t.free <- s :: t.free;
          t.live_cnt <- t.live_cnt - 1

  (* Discarding recorded slabs is only sound once replay can rebuild
     them: a program is registered, the schedule allows recompute, and
     the boundary-0 snapshot exists. *)
  let can_discard t =
    t.schedule <> All_store && t.replay_step <> None && t.nseg > 0
    && t.snap_cnt > 0

  let advance_recording t =
    let k = t.n / t.sn in
    (* Make room first so the materialized count never exceeds the
       budget, even transiently. *)
    while t.live_cnt >= t.budget_slabs && can_discard t && t.live_lo < k do
      release t t.live_lo;
      t.live_lo <- t.live_lo + 1
    done;
    let s = materialize t k in
    t.cur <- s;
    t.cur_end <- s.base + t.sn;
    t.skip <- false

  let advance_replaying t =
    let k = t.n / t.sn in
    if k > t.win_hi then raise Window_filled
    else if k >= t.win_lo then begin
      let s = materialize t k in
      t.cur <- s;
      t.cur_end <- s.base + t.sn;
      t.skip <- false
    end
    else begin
      t.skip <- true;
      t.cur_end <- (k + 1) * t.sn
    end

  let push t l dl r dr =
    let i = t.n in
    if
      t.mode = Recording && t.nseg = 0 && t.replay_step <> None
      && (l >= 0 || r >= 0)
    then
      invalid_arg
        "Tape.Segmented.push: non-constant node before the first \
         start_segment (the prelude is never replayed, so it may only \
         hold inputs and constants)";
    if i = t.cur_end then begin
      match t.mode with
      | Recording -> advance_recording t
      | Replaying -> advance_replaying t
    end;
    if not t.skip then begin
      let s = t.cur in
      let j = i - s.base in
      Bigarray.Array1.unsafe_set s.lhs j (Int32.of_int l);
      Bigarray.Array1.unsafe_set s.rhs j (Int32.of_int r);
      Bigarray.Array1.unsafe_set s.dlhs j dl;
      Bigarray.Array1.unsafe_set s.drhs j dr
    end;
    t.n <- i + 1;
    i

  let fresh_var t = push t (-1) 0. (-1) 0.
  let push1 t parent partial = push t parent partial (-1) 0.
  let push2 t l dl r dr = push t l dl r dr

  let set_program t ~capture ~replay_step =
    if t.n > 0 then
      invalid_arg "Tape.Segmented.set_program: tape already holds nodes";
    t.capture <- Some capture;
    t.replay_step <- Some replay_step

  let ensure_boundary_capacity t s =
    if s >= Array.length t.marks then begin
      let cap = 2 * Array.length t.marks in
      let m = Array.make cap 0 in
      Array.blit t.marks 0 m 0 (Array.length t.marks);
      t.marks <- m;
      let sn = Array.make cap None in
      Array.blit t.snaps 0 sn 0 (Array.length t.snaps);
      t.snaps <- sn
    end

  let take_snapshot t s =
    match t.capture with
    | None -> ()
    | Some cap ->
        if t.snaps.(s) = None then begin
          t.snaps.(s) <- Some (cap ());
          t.snap_cnt <- t.snap_cnt + 1;
          t.snapshots_taken <- t.snapshots_taken + 1
        end

  let start_segment t =
    if t.mode <> Recording then
      invalid_arg "Tape.Segmented.start_segment: tape is replaying";
    let s = t.nseg in
    ensure_boundary_capacity t s;
    t.marks.(s) <- t.n;
    t.nseg <- s + 1;
    match t.schedule with
    | All_store -> ()
    | Planned bs ->
        (* The plan was sized to the slots up front: no stride doubling,
           no eviction — just take what the planner asked for. *)
        if List.mem s bs && t.snap_cnt < t.snapshot_slots then
          take_snapshot t s
    | Log_stride | Binomial ->
        if s mod t.stride = 0 then begin
          if t.snap_cnt >= t.snapshot_slots then begin
            (* Out of slots: double the retention stride and evict the
               retained snapshots that fall off it (boundary 0 stays). *)
            t.stride <- 2 * t.stride;
            for b = 1 to s - 1 do
              if b mod t.stride <> 0 then
                match t.snaps.(b) with
                | None -> ()
                | Some _ ->
                    t.snaps.(b) <- None;
                    t.snap_cnt <- t.snap_cnt - 1
            done
          end;
          if s mod t.stride = 0 && t.snap_cnt < t.snapshot_slots then
            take_snapshot t s
        end

  (* Binomial forward plan: absolute boundary indices at which one
     replay pass from [base] over [len] segments should drop snapshots,
     with [slots] free.  Splits follow the classic recompute-vs-store
     recurrence cost(l,c) = min_d d + cost(l-d, c-1) + cost(d, c); with
     no slots the pass restarts from [base] every time, cost l(l-1)/2.
     The memo is local to the call — boundary counts are tiny. *)
  let binomial_plan ~base ~len ~slots =
    if len <= 1 || slots <= 0 then []
    else begin
      let memo = Hashtbl.create 64 in
      let rec cost l c =
        if l <= 1 then 0
        else if c <= 0 then l * (l - 1) / 2
        else
          match Hashtbl.find_opt memo (l, c) with
          | Some (v, _) -> v
          | None ->
              let best = ref max_int and best_d = ref 1 in
              for d = 1 to l - 1 do
                let v = d + cost (l - d) (c - 1) + cost d c in
                if v < !best then begin
                  best := v;
                  best_d := d
                end
              done;
              Hashtbl.add memo (l, c) (!best, !best_d);
              !best
      in
      let split l c =
        ignore (cost l c);
        match Hashtbl.find_opt memo (l, c) with
        | Some (_, d) -> d
        | None -> 1
      in
      let rec go pos l c acc =
        if l <= 1 || c <= 0 then List.rev acc
        else
          let d = split l c in
          go (pos + d) (l - d) (c - 1) ((pos + d) :: acc)
      in
      go base len slots []
    end

  let diverged () =
    failwith
      "Tape.Segmented: replay diverged from the recording (the program \
       is not deterministic, or restart state is incomplete)"

  (* Rematerialize every slab in [win_lo, win_hi]: restore the nearest
     snapshot at or below the window, then re-run program steps with
     pushes landing back on their recorded ids; pushes below the window
     skip storage, pushes above it abort the pass. *)
  let ensure_window t ~lo_node ~stop_node =
    let all_live = ref true in
    for k = t.win_lo to t.win_hi do
      if k >= Array.length t.dir || t.dir.(k) = None then all_live := false
    done;
    if not !all_live then begin
      let start_node = Stdlib.max (t.win_lo * t.sn) lo_node in
      let b = ref (-1) in
      for s = t.nseg - 1 downto 0 do
        if !b < 0 && t.snaps.(s) <> None && t.marks.(s) <= start_node then
          b := s
      done;
      if !b < 0 then
        failwith
          "Tape.Segmented.backward: no snapshot covers a discarded \
           segment (set_program was not called before recording)";
      let base = !b in
      let restore =
        match t.snaps.(base) with Some r -> r | None -> assert false
      in
      restore ();
      t.replays <- t.replays + 1;
      t.mode <- Replaying;
      t.n <- t.marks.(base);
      t.skip <- true;
      t.cur_end <- t.n;
      let n_start = t.n in
      (* Segment index of the window top, for the capture plan. *)
      let s_stop = ref base in
      for s = base + 1 to t.nseg - 1 do
        if t.marks.(s) <= stop_node then s_stop := s
      done;
      t.plan <-
        (match t.schedule with
        | Binomial | Planned _ ->
            (* Planned keeps every recording-time snapshot (no stride
               eviction), so any still-free slots go to the same
               binomial-optimal replay-time re-captures. *)
            binomial_plan ~base ~len:(!s_stop - base)
              ~slots:(t.snapshot_slots - t.snap_cnt)
        | All_store | Log_stride -> []);
      let replay = match t.replay_step with Some r -> r | None -> assert false in
      (try
         let s = ref base in
         while t.n <= stop_node && !s < t.nseg do
           if t.n <> t.marks.(!s) then diverged ();
           (match t.plan with
           | p :: rest when p = !s ->
               t.plan <- rest;
               if t.snap_cnt < t.snapshot_slots then take_snapshot t !s
           | _ -> ());
           replay !s;
           if !s + 1 < t.nseg && t.n <> t.marks.(!s + 1) then diverged ();
           incr s
         done
       with Window_filled -> ());
      t.replayed_nodes <- t.replayed_nodes + (t.n - n_start);
      for k = t.win_lo to t.win_hi do
        if k >= Array.length t.dir || t.dir.(k) = None then
          failwith
            "Tape.Segmented.backward: replay did not rematerialize the \
             window (replay produced fewer nodes than the recording)"
      done
    end

  type nonrec adjoints = adjoints

  let adjoint = adjoint

  let backward ?fan t ~output =
    if output < 0 || output >= t.n then
      invalid_arg "Tape.Segmented.backward: output is not a tape node";
    let total = t.n in
    t.total <- total;
    (* Nodes below the first boundary are the parentless prelude: they
       receive adjoints but propagate nothing, so the sweep stops at the
       first watermark and their storage is never consulted. *)
    let lo_node = if t.nseg > 0 then t.marks.(0) else 0 in
    let fr = obtain_frontier t.fr ~dim:(output + 1) in
    t.fr <- Some fr;
    let adj = fr.f_adj and bits = fr.f_bits in
    Bigarray.Array1.unsafe_set adj output 1.;
    set_bit bits output;
    let visited = ref 0 in
    if output >= lo_node then begin
      let k_hi = output / t.sn and k_lo = lo_node / t.sn in
      let get_slab k =
        match t.dir.(k) with Some s -> s | None -> assert false
      in
      let pos = ref k_hi in
      while !pos >= k_lo do
        t.win_hi <- !pos;
        t.win_lo <- Stdlib.max k_lo (!pos - t.budget_slabs + 1);
        let w_hi_node = Stdlib.min output (((t.win_hi + 1) * t.sn) - 1) in
        let w_lo_node = Stdlib.max lo_node (t.win_lo * t.sn) in
        (* Frontier window skip: if no node in the window has received
           any adjoint contribution, the dense sweep would visit
           nothing here — skip the replay AND the sweep.  This is where
           sparsity pays the most: discarded windows of uncritical
           segments are never rematerialized at all.  Liveness is final
           because all windows above were already swept and
           contributions only ever land at lower ids. *)
        if range_live bits ~lo:w_lo_node ~hi:w_hi_node then begin
          ensure_window t ~lo_node ~stop_node:w_hi_node;
          visited :=
            !visited
            + sweep_range ?fan ~get_slab ~sn:t.sn ~adj ~bits ~hi:w_hi_node
                ~lo:w_lo_node ()
        end;
        for k = t.win_lo to t.win_hi do
          release t k
        done;
        pos := t.win_lo - 1
      done
    end;
    (* Leave the tape recordable again: length restored, next push
       rematerializes its slab. *)
    t.n <- total;
    t.mode <- Recording;
    t.skip <- true;
    t.cur_end <- total;
    t.live_lo <- total / t.sn;
    t.win_lo <- 0;
    t.win_hi <- max_int;
    t.last <-
      Some { Tape_intf.visited_nodes = !visited; swept_nodes = output + 1 };
    { adj; upto = output }

  let last_sweep t = t.last

  let clear t =
    for k = 0 to Array.length t.dir - 1 do
      release t k
    done;
    Array.fill t.snaps 0 (Array.length t.snaps) None;
    t.n <- 0;
    t.total <- 0;
    t.nseg <- 0;
    t.snap_cnt <- 0;
    t.stride <- 1;
    t.plan <- [];
    t.mode <- Recording;
    t.skip <- true;
    t.cur_end <- 0;
    t.live_lo <- 0;
    t.win_lo <- 0;
    t.win_hi <- max_int;
    t.replays <- 0;
    t.replayed_nodes <- 0;
    t.snapshots_taken <- 0;
    t.peak_live <- t.live_cnt;
    (* The frontier cache is storage, not recording state: keep it. *)
    t.last <- None

  type stats = {
    s_schedule : schedule;
    s_budget_nodes : int;
    s_slab_nodes : int;
    s_total_nodes : int;
    s_segments : int;
    s_snapshots : int;
    s_replays : int;
    s_replayed_nodes : int;
    s_peak_live_nodes : int;
  }

  let stats t =
    {
      s_schedule = t.schedule;
      s_budget_nodes = t.budget_nodes;
      s_slab_nodes = t.sn;
      s_total_nodes = Stdlib.max t.total t.n;
      s_segments = t.nseg;
      s_snapshots = t.snapshots_taken;
      s_replays = t.replays;
      s_replayed_nodes = t.replayed_nodes;
      s_peak_live_nodes = t.peak_live * t.sn;
    }
end
