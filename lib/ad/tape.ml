(* Reverse-mode tape: a compact, append-only record of the data-flow graph.

   Each node has at most two parents.  Parents and local partial
   derivatives are stored in Bigarrays (24 bytes per node) so that tapes
   with tens of millions of nodes — e.g. an FT class-S inverse 3-D FFT —
   fit comfortably in memory and put no pressure on the OCaml GC.

   Storage is chunked: a tape is a sequence of equally sized Bigarray
   slabs.  Growing appends one slab (a few Bigarray allocations) instead
   of reallocating and copying the whole tape — with tens of millions of
   nodes the doubling-and-blitting scheme this replaces copied hundreds
   of megabytes per analysis.  A [capacity_hint] sized from the
   application (App.S.tape_nodes_hint) makes the common case a single
   slab allocated exactly once.

   Node ids are global indices; because every slab holds [slab_nodes]
   nodes, id [i] lives in slab [i / slab_nodes] at offset
   [i mod slab_nodes].  The hot paths (push, backward) use
   [Array1.unsafe_get]/[unsafe_set]: push stays inside the current slab
   by construction, and backward's indices are bounded by the one
   up-front check on [output] plus the tape invariant that parents are
   recorded before their children. *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type slab = {
  lhs : i32; (* parent index, or -1 for none *)
  rhs : i32;
  dlhs : f64; (* d node / d lhs *)
  drhs : f64;
  base : int; (* global id of this slab's first node *)
}

type t = {
  slab_nodes : int; (* nodes per slab; identical for every slab *)
  mutable n : int; (* total nodes recorded *)
  mutable slabs : slab array; (* allocated slabs, in id order *)
  mutable nslabs : int; (* slabs allocated (>= slabs in use) *)
  mutable cur : slab; (* slab containing node id [n] *)
  mutable cur_end : int; (* [cur.base + slab_nodes] *)
}

let alloc_i32 n : i32 = Bigarray.(Array1.create int32 c_layout n)
let alloc_f64 n : f64 = Bigarray.(Array1.create float64 c_layout n)

let alloc_slab ~nodes ~base =
  {
    lhs = alloc_i32 nodes;
    rhs = alloc_i32 nodes;
    dlhs = alloc_f64 nodes;
    drhs = alloc_f64 nodes;
    base;
  }

let default_capacity_hint = 1 lsl 16

let create ?(capacity_hint = default_capacity_hint) () =
  let slab_nodes = Stdlib.max capacity_hint 16 in
  let first = alloc_slab ~nodes:slab_nodes ~base:0 in
  {
    slab_nodes;
    n = 0;
    slabs = [| first |];
    nslabs = 1;
    cur = first;
    cur_end = slab_nodes;
  }

let length t = t.n
let slab_nodes t = t.slab_nodes
let capacity t = t.nslabs * t.slab_nodes

(* Bytes of tape storage currently reserved (diagnostic). *)
let reserved_bytes t = capacity t * 24

(* Storage is retained for reuse: subsequent pushes walk the already
   allocated slabs again. *)
let clear t =
  t.n <- 0;
  t.cur <- t.slabs.(0);
  t.cur_end <- t.slab_nodes

(* Make [cur] the slab containing node id [t.n]; never copies node data. *)
let grow t =
  let k = t.n / t.slab_nodes in
  if k >= t.nslabs then begin
    if t.nslabs = Array.length t.slabs then begin
      (* Amortize: double the slab *directory* (cheap, shallow). *)
      let bigger = Array.make (2 * t.nslabs) t.slabs.(0) in
      Array.blit t.slabs 0 bigger 0 t.nslabs;
      t.slabs <- bigger
    end;
    t.slabs.(t.nslabs) <-
      alloc_slab ~nodes:t.slab_nodes ~base:(t.nslabs * t.slab_nodes);
    t.nslabs <- t.nslabs + 1
  end;
  t.cur <- t.slabs.(k);
  t.cur_end <- t.cur.base + t.slab_nodes

(* Raw node append; returns the new node id. *)
let push t l dl r dr =
  let i = t.n in
  if i = t.cur_end then grow t;
  let s = t.cur in
  let j = i - s.base in
  Bigarray.Array1.unsafe_set s.lhs j (Int32.of_int l);
  Bigarray.Array1.unsafe_set s.rhs j (Int32.of_int r);
  Bigarray.Array1.unsafe_set s.dlhs j dl;
  Bigarray.Array1.unsafe_set s.drhs j dr;
  t.n <- i + 1;
  i

(* An input (independent) variable: a parentless node. *)
let fresh_var t = push t (-1) 0. (-1) 0.

let push1 t parent partial = push t parent partial (-1) 0.
let push2 t l dl r dr = push t l dl r dr

(* Adjoint accumulator produced by a backward sweep. *)
type adjoints = { adj : f64; upto : int }

(* Reverse sweep from [output].  One pass computes d output / d node for
   every node at or below [output] — this is what lets the analysis
   scrutinize every element of every checkpoint variable at once.

   Safety of the unsafe accesses: [output < t.n] is checked once, node
   offsets stay inside their slab by the uniform-slab-size layout, and a
   parent id is always a node id recorded before its child, so
   [l, r < i <= output < dim adj]. *)
let backward t ~output =
  if output < 0 || output >= t.n then
    invalid_arg "Tape.backward: output is not a tape node";
  let adj = alloc_f64 (output + 1) in
  Bigarray.Array1.fill adj 0.;
  Bigarray.Array1.unsafe_set adj output 1.;
  let sn = t.slab_nodes in
  let k_hi = output / sn in
  for k = k_hi downto 0 do
    let s = Array.unsafe_get t.slabs k in
    let lo = s.base in
    let hi = if k = k_hi then output - lo else sn - 1 in
    for j = hi downto 0 do
      let a = Bigarray.Array1.unsafe_get adj (lo + j) in
      (* lint: allow float-equality — exact-zero adjoint skip: a zero
         contributes exactly nothing, so propagation is loss-free *)
      if a <> 0. then begin
        let l = Int32.to_int (Bigarray.Array1.unsafe_get s.lhs j) in
        if l >= 0 then
          Bigarray.Array1.unsafe_set adj l
            (Bigarray.Array1.unsafe_get adj l
            +. (a *. Bigarray.Array1.unsafe_get s.dlhs j));
        let r = Int32.to_int (Bigarray.Array1.unsafe_get s.rhs j) in
        if r >= 0 then
          Bigarray.Array1.unsafe_set adj r
            (Bigarray.Array1.unsafe_get adj r
            +. (a *. Bigarray.Array1.unsafe_get s.drhs j))
      end
    done
  done;
  { adj; upto = output }

(* Adjoint of a node; nodes above the output (or constants, id = -1)
   cannot influence it, so their adjoint is 0. *)
let adjoint g id = if id < 0 || id > g.upto then 0. else g.adj.{id}
