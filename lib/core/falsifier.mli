(** Dynamic perturbation falsifier.

    Attacks the paper's criterion empirically: restore to a checkpoint
    boundary, perturb one element the reverse analysis called
    uncritical, finish the run, compare bitwise against an unperturbed
    continuation.  A divergence is a concrete unsoundness witness (the
    element acts through a channel the derivative cannot see) and is
    promoted to critical by {!harden}. *)

type target = {
  t_var : string;
  t_kind : Criticality.kind;
  t_candidates : int array;  (** element indices claimed uncritical *)
}

type witness = {
  w_var : string;
  w_kind : Criticality.kind;
  w_element : int;
  w_boundary : int;
  w_delta : float;
  w_fd : float option;
      (** central-difference diagnostic (float witnesses only) *)
  w_golden : float;
  w_perturbed : float;
      (** NaN when the perturbed continuation crashed outright (e.g. a
          perturbed integer driving an index out of range) — the
          starkest control escape, still a witness *)
}

type var_tally = { y_var : string; y_trials : int; y_witnesses : int }

type outcome = {
  f_app : string;
  f_boundary : int;
  f_niter : int;
  f_trials : int;
  f_stable : bool;
      (** two unperturbed continuations agreed bitwise; when false no
          trials ran (witnesses would be junk) *)
  f_witnesses : witness list;
  f_tested : var_tally list;
}

(** What the naive AD verdict calls uncritical: false-mask float
    elements, plus (when [ints], the default) every element of every
    integer variable in the report. *)
val targets_of_report : ?ints:bool -> Criticality.report -> target list

(** [run ~trials ~seed ~targets app] perturbs uniformly-sampled
    candidate elements at [boundary] (default 0) and reruns to [niter]
    (default [App.default_niter]; [boundary] may equal [niter] for
    output-only continuations).  [h] overrides the relative
    perturbation step.  Raises [Invalid_argument] on a boundary outside
    [0, niter]. *)
val run :
  ?boundary:int ->
  ?niter:int ->
  ?h:float ->
  trials:int ->
  seed:int ->
  targets:target list ->
  (module App.S) ->
  outcome

(** Promote witness elements to critical; pure (fresh masks). *)
val harden : Criticality.report -> witness list -> Criticality.report
