(** Application interface.

    Every benchmark is packaged as an {!S}: a functor over the scalar
    type plus metadata.  The same kernel source therefore runs in float
    mode (execution, checkpointing) and in AD mode (criticality
    analysis), which is the linchpin of the reproduction: the analysis
    sees exactly the data flow the real run performs. *)

(** One instantiation of a benchmark at a concrete scalar type. *)
module type INSTANCE = sig
  type scalar
  type state

  val create : unit -> state

  (** [run state ~from ~until] executes main-loop iterations
      [from .. until-1].  Resumable: after a restore, call with
      [from = iterations_done state]. *)
  val run : state -> from:int -> until:int -> unit

  (** Completed main-loop iterations. *)
  val iterations_done : state -> int

  (** The scalar output the paper differentiates: the benchmark's final
      verification reduction.  Meaningful once the run finished. *)
  val output : state -> scalar

  (** Floating-point variables necessary for checkpointing (Table I). *)
  val float_vars : state -> scalar Variable.t list

  (** Integer variables necessary for checkpointing. *)
  val int_vars : state -> Variable.int_t list
end

(** A benchmark: metadata plus the scalar-generic kernel. *)
module type S = sig
  val name : string
  val description : string

  (** Full production iteration count (NPB class S). *)
  val default_niter : int

  (** Iterations sufficient for the criticality pattern to stabilize
      (access patterns are iteration-invariant in all eight benchmarks,
      so this is small — what keeps reverse tapes affordable). *)
  val analysis_niter : int

  (** Expected reverse-tape size (nodes) of one [analysis_niter]-window
      recording; the analyzer passes it as the tape's [capacity_hint] so
      the common case allocates exactly one slab.  A slight overestimate
      of the measured node count is ideal; an underestimate only costs
      extra slab allocations, never a copy. *)
  val tape_nodes_hint : int

  module Make (S : Scvad_ad.Scalar.S) : INSTANCE with type scalar = S.t

  (** Mechanized integer-dependence analysis (IS): returns criticality
      masks keyed by integer-variable name for the [By_taint] variables.
      [None] for benchmarks whose integer variables carry declared
      criticality. *)
  val int_taint_masks : (unit -> (string * bool array) list) option
end
