(* Impact analysis: the paper's future-work direction (§VII) made
   concrete.

   Where criticality asks "is d output / d element zero?", impact keeps
   the magnitude |d output / d element|.  Elements split into three
   classes relative to a threshold tau:

     Uncritical  (magnitude = 0)        -> dropped from checkpoints
     Low_impact  (0 < magnitude < tau)  -> stored in single precision
     High_impact (magnitude >= tau)     -> stored in double precision

   The first-order model predicts the output perturbation of the
   mixed-precision checkpoint: |delta out| <= sum_i |g_i| * |x_i -
   fl32(x_i)| — validated against the measured restart error by the
   {!Mixed} experiment. *)

type var_impact = {
  name : string;
  shape : Scvad_nd.Shape.t;
  spe : int;
  magnitude : float array; (* per element: max |d out / d slot| *)
}

type report = {
  app : string;
  at_iteration : int;
  analyzed_until : int;
  vars : var_impact list;
}

let of_magnitudes ~name ~shape ~spe magnitude =
  if Array.length magnitude <> Scvad_nd.Shape.size shape then
    invalid_arg "Impact.of_magnitudes: length does not match shape";
  { name; shape; spe; magnitude }

let find r name = List.find (fun v -> v.name = name) r.vars
let find_opt r name = List.find_opt (fun v -> v.name = name) r.vars

(* The zero-derivative criterion: impact generalizes criticality. *)
(* lint: allow float-equality — exact-zero magnitude is the criticality
   spec; a tolerance would misclassify tiny-but-real derivatives *)
let to_criticality_mask v = Array.map (fun m -> m <> 0.) v.magnitude

let max_magnitude v = Array.fold_left Float.max 0. v.magnitude

let min_nonzero v =
  Array.fold_left
    (fun acc m -> if m > 0. && m < acc then m else acc)
    infinity v.magnitude

(* p-th percentile (0..100) of the nonzero magnitudes. *)
let percentile v ~p =
  let nz = Array.of_list (List.filter (fun m -> m > 0.) (Array.to_list v.magnitude)) in
  if Array.length nz = 0 then 0.
  else begin
    Array.sort Float.compare nz;
    let rank =
      int_of_float (Float.of_int (Array.length nz - 1) *. p /. 100.)
    in
    nz.(max 0 (min (Array.length nz - 1) rank))
  end

type clazz = Uncritical | Low_impact | High_impact

let classify v ~threshold =
  Array.map
    (fun m ->
      (* lint: allow float-equality — class boundary IS the exact-zero
         criticality criterion; magnitudes are |d|, never -0. *)
      if m = 0. then Uncritical
      else if m < threshold then Low_impact
      else High_impact)
    v.magnitude

let class_counts classes =
  Array.fold_left
    (fun (u, l, h) -> function
      | Uncritical -> (u + 1, l, h)
      | Low_impact -> (u, l + 1, h)
      | High_impact -> (u, l, h + 1))
    (0, 0, 0) classes

(* Log-scale histogram of the nonzero magnitudes: (decade, count). *)
let log_histogram v =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun m ->
      if m > 0. then begin
        let d = int_of_float (Float.floor (Float.log10 m)) in
        Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
      end)
    v.magnitude;
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])
