(** End-to-end checkpoint/restart harness (paper §IV-C).

    Golden run → protected run with periodic (optionally pruned)
    checkpoints and an injected crash → restart (trusting the newest
    checkpoint, or resiliently walking back over corrupt ones) with
    poisoned uncritical elements → bitwise output verification. *)

type run_result = { output : float; iterations : int }

(** Outcome of one perturbation experiment: the reference run, the
    perturbed (restarted or corrupted) run, and whether their outputs
    match bit for bit. *)
type experiment_result = {
  golden : run_result;
  restarted : run_result;
  verified : bool;
}

(** Uninterrupted reference run. *)
val golden_run : ?niter:int -> (module App.S) -> run_result

(** Run with a checkpoint every [every] iterations saved into [store]
    (pruned when [report] is given).  If [crash_at] is inside a
    segment, that segment raises {!Scvad_checkpoint.Failure.Crash}
    before its checkpoint is taken. *)
val run_with_checkpoints :
  ?report:Criticality.report ->
  ?crash_at:int ->
  ?niter:int ->
  store:Scvad_checkpoint.Store.t ->
  every:int ->
  (module App.S) ->
  run_result

(** Restore the newest checkpoint and finish the run.  Trusts the file:
    raises {!Scvad_checkpoint.Ckpt_format.Corrupt} if it is invalid
    (use {!restart_resilient} to degrade gracefully) and
    [Invalid_argument] on an empty store. *)
val restart_from_latest :
  ?poison:Scvad_checkpoint.Failure.poison ->
  ?niter:int ->
  store:Scvad_checkpoint.Store.t ->
  (module App.S) ->
  run_result

(** What a resilient restart did: the finished run, the iteration it
    resumed from ([0] = cold restart, nothing survived), and every
    rejected checkpoint with the reason, newest first. *)
type restart_report = {
  run : run_result;
  restored_iteration : int;
  skipped : (int * string) list;
}

(** Graceful-degradation restart: walk backward from the newest
    checkpoint, skipping any that fail CRC, decode, or restore; restore
    the newest valid one and replay the extra iterations.  Falls back
    to a cold start from iteration 0 when no checkpoint survives —
    strictly slower, never wrong. *)
val restart_resilient :
  ?poison:Scvad_checkpoint.Failure.poison ->
  ?niter:int ->
  store:Scvad_checkpoint.Store.t ->
  (module App.S) ->
  restart_report

(** Bitwise equality of outputs — the verification oracle (a correct
    restart replays the identical instruction stream on the critical
    data). *)
val verified : golden:run_result -> restarted:run_result -> bool

(** Silent-data-corruption probe: flip bit [bit] (default 30) of one
    element of variable [var] at boundary [at_iter] and finish the run.
    The executable form of the paper's criterion: corrupting an
    uncritical element must keep [verified = true]; corrupting a
    critical one generally must not. *)
val corrupt_element_experiment :
  ?niter:int ->
  ?bit:int ->
  at_iter:int ->
  var:string ->
  element:int ->
  (module App.S) ->
  experiment_result

(** The full §IV-C experiment.  Wipes [store] first; fails if the run
    did not crash. *)
val crash_restart_experiment :
  ?report:Criticality.report ->
  ?poison:Scvad_checkpoint.Failure.poison ->
  ?niter:int ->
  store:Scvad_checkpoint.Store.t ->
  every:int ->
  crash_at:int ->
  (module App.S) ->
  experiment_result

(** One-call pruned-restart verification of [report] (the
    [@guard-check] gate): {!crash_restart_experiment} with a throwaway
    store in the system temp directory, [every = max 1 (niter / 4)],
    and the crash just after the first checkpoint.  Wipes the store
    afterwards.  Raises [Invalid_argument] when [niter < 2]. *)
val verify_report :
  ?niter:int ->
  report:Criticality.report ->
  (module App.S) ->
  experiment_result

(** {!crash_restart_experiment} outcome plus what the resilient restart
    had to do to get there. *)
type resilient_result = {
  experiment : experiment_result;
  restored_iteration : int;
  skipped : (int * string) list;
}

(** The §IV-C experiment under storage failures: crash as usual, let
    [sabotage] damage the store (on top of the store's own fault plan,
    if any), then {!restart_resilient} and verify.  Wipes [store]
    first; fails if the run did not crash. *)
val crash_restart_resilient_experiment :
  ?report:Criticality.report ->
  ?poison:Scvad_checkpoint.Failure.poison ->
  ?niter:int ->
  ?sabotage:(Scvad_checkpoint.Store.t -> unit) ->
  store:Scvad_checkpoint.Store.t ->
  every:int ->
  crash_at:int ->
  (module App.S) ->
  resilient_result
