(* End-to-end checkpoint/restart harness (paper §IV-C).

   Protocol:
   1. golden run — uninterrupted, records the reference output;
   2. protected run — checkpoints every [every] iterations (pruned by a
      criticality report, or full) and crashes at a chosen iteration;
   3. restart — restores a checkpoint, poisons uncritical elements,
      finishes the run.  [restart_from_latest] trusts the newest file;
      [restart_resilient] walks backward over corrupt or unreadable
      checkpoints to the newest valid one (or all the way to a cold
      start), replaying the extra iterations;
   4. verification — the restarted output must equal the golden output
      bit for bit (floats are compared exactly: a correct restart replays
      the identical instruction stream on the critical data).           *)

open Scvad_ad
module Failure_ = Scvad_checkpoint.Failure
module Store = Scvad_checkpoint.Store

type run_result = { output : float; iterations : int }

(* Every experiment answers the same question — did the perturbed run
   reproduce the golden output bit for bit? *)
type experiment_result = {
  golden : run_result;
  restarted : run_result;
  verified : bool;
}

let golden_run ?niter (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  let module I = A.Make (Float_scalar) in
  let state = I.create () in
  I.run state ~from:0 ~until:niter;
  { output = I.output state; iterations = niter }

(* Run with periodic checkpoints into [store]; raise
   [Failure_.Crash] at iteration [crash_at] if given.  Checkpoints are
   taken after each [every]-th iteration completes (and never for the
   final iteration, where the run is already done). *)
let run_with_checkpoints ?report ?crash_at ?niter ~store ~every
    (module A : App.S) =
  if every <= 0 then invalid_arg "Harness.run_with_checkpoints: every <= 0";
  let niter = Option.value niter ~default:A.default_niter in
  let module I = A.Make (Float_scalar) in
  let state = I.create () in
  let checkpoint iteration =
    let file =
      Pruned.snapshot ?report ~app:A.name ~iteration
        ~float_vars:(I.float_vars state) ~int_vars:(I.int_vars state) ()
    in
    ignore (Store.save ~sidecar_aux:true store file)
  in
  let rec go from =
    if from >= niter then { output = I.output state; iterations = niter }
    else begin
      let until = min niter (from + every) in
      (* The failure strikes while the segment containing [crash_at] is
         executing, i.e. before its checkpoint is taken. *)
      (match crash_at with
      | Some at when from <= at && at < until ->
          raise (Failure_.Crash { iteration = at })
      | Some _ | None -> ());
      I.run state ~from ~until;
      if until < niter then checkpoint until;
      go until
    end
  in
  go 0

(* Restore the newest checkpoint and finish the run. *)
let restart_from_latest ?(poison = Failure_.Nan) ?niter ~store
    (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  let module I = A.Make (Float_scalar) in
  match Store.latest store with
  | None -> invalid_arg "Harness.restart_from_latest: empty store"
  | Some file ->
      let state = I.create () in
      let from =
        Pruned.restore ~poison file ~float_vars:(I.float_vars state)
          ~int_vars:(I.int_vars state)
      in
      I.run state ~from ~until:niter;
      { output = I.output state; iterations = niter }

(* ------------------------------------------------------------------ *)
(* Graceful-degradation restart                                        *)
(* ------------------------------------------------------------------ *)

type restart_report = {
  run : run_result;
  restored_iteration : int; (* 0 = cold restart, no checkpoint survived *)
  skipped : (int * string) list; (* rejected checkpoints, newest first *)
}

(* Walk backward from the newest checkpoint, skipping any that fail the
   CRC, decode, or restore; restore the newest valid one and replay the
   extra iterations.  If no checkpoint survives, restart cold from
   iteration 0 — strictly slower, never wrong. *)
let restart_resilient ?(poison = Failure_.Nan) ?niter ~store
    (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  let module I = A.Make (Float_scalar) in
  let rec walk skipped = function
    | [] ->
        let state = I.create () in
        I.run state ~from:0 ~until:niter;
        {
          run = { output = I.output state; iterations = niter };
          restored_iteration = 0;
          skipped = List.rev skipped;
        }
    | it :: older -> (
        match Store.load store it with
        | Error e -> walk ((it, Store.describe_error e) :: skipped) older
        | Ok file -> (
            (* A decodable checkpoint can still fail to restore (wrong
               app, shape drift): a fresh state per attempt keeps a
               failed restore from tainting the next candidate. *)
            let state = I.create () in
            match
              Pruned.restore ~poison file ~float_vars:(I.float_vars state)
                ~int_vars:(I.int_vars state)
            with
            | from ->
                I.run state ~from ~until:niter;
                {
                  run = { output = I.output state; iterations = niter };
                  restored_iteration = from;
                  skipped = List.rev skipped;
                }
            | exception Invalid_argument reason ->
                walk ((it, "restore failed: " ^ reason) :: skipped) older))
  in
  walk [] (List.rev (Store.list_iterations store))

(* Bitwise output equality — the verification oracle. *)
let verified ~golden ~restarted =
  Int64.bits_of_float golden.output = Int64.bits_of_float restarted.output

(* Silent-data-corruption probe: flip one bit of one element of one
   checkpoint variable at a checkpoint boundary and finish the run.
   The paper's criterion in executable form: an uncritical element must
   leave the output bit-identical ([verified]); a critical one
   generally must not. *)
let corrupt_element_experiment ?niter ?(bit = 30) ~at_iter ~var ~element
    (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  if at_iter < 0 || at_iter >= niter then
    invalid_arg "Harness.corrupt_element_experiment: bad boundary";
  let golden = golden_run ~niter (module A : App.S) in
  let module I = A.Make (Float_scalar) in
  let state = I.create () in
  I.run state ~from:0 ~until:at_iter;
  let v =
    match
      List.find_opt
        (fun (v : Float_scalar.t Variable.t) -> v.Variable.name = var)
        (I.float_vars state)
    with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Harness.corrupt_element_experiment: no variable %S" var)
  in
  if element < 0 || element >= Variable.elements v then
    invalid_arg "Harness.corrupt_element_experiment: element out of range";
  v.Variable.set element 0 (Failure_.flip_bit (v.Variable.get element 0) ~bit);
  I.run state ~from:at_iter ~until:niter;
  let corrupted = { output = I.output state; iterations = niter } in
  { golden; restarted = corrupted; verified = verified ~golden ~restarted:corrupted }

(* The full §IV-C experiment: golden run, crash halfway, pruned restart,
   verify. *)
let crash_restart_experiment ?report ?(poison = Failure_.Nan) ?niter ~store
    ~every ~crash_at (module A : App.S) =
  Store.wipe store;
  let golden = golden_run ?niter (module A : App.S) in
  (match
     run_with_checkpoints ?report ~crash_at ?niter ~store ~every
       (module A : App.S)
   with
  | _ -> failwith "crash_restart_experiment: the run did not crash"
  | exception Failure_.Crash _ -> ());
  let restarted = restart_from_latest ~poison ?niter ~store (module A : App.S) in
  { golden; restarted; verified = verified ~golden ~restarted }

(* One-call pruned-restart verification of a report, used by the
   @guard-check gate: run the full §IV-C experiment with this report's
   masks in a throwaway store under the system temp directory.  [every]
   is a quarter of the run (at least 1) and the crash lands just after
   the first checkpoint, so the restart genuinely exercises the pruned
   state.  The store is wiped afterwards. *)
let verify_report ?niter ~report (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  if niter < 2 then invalid_arg "Harness.verify_report: need niter >= 2";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("scvad-verify-" ^ A.name)
  in
  let store = Store.create dir in
  let every = max 1 (niter / 4) in
  let crash_at = if every + 1 < niter then every + 1 else niter - 1 in
  Fun.protect
    ~finally:(fun () -> Store.wipe store)
    (fun () ->
      crash_restart_experiment ~report ~niter ~store ~every ~crash_at
        (module A : App.S))

(* ------------------------------------------------------------------ *)
(* Resilient experiment                                                *)
(* ------------------------------------------------------------------ *)

type resilient_result = {
  experiment : experiment_result;
  restored_iteration : int;
  skipped : (int * string) list;
}

(* §IV-C under storage failures: crash as above, let [sabotage] damage
   the store (or rely on the store's own fault plan), then restart
   resiliently.  The experiment must still verify bit for bit — from an
   older checkpoint, or from a cold start if nothing survived. *)
let crash_restart_resilient_experiment ?report ?(poison = Failure_.Nan) ?niter
    ?(sabotage = fun (_ : Store.t) -> ()) ~store ~every ~crash_at
    (module A : App.S) =
  Store.wipe store;
  let golden = golden_run ?niter (module A : App.S) in
  (match
     run_with_checkpoints ?report ~crash_at ?niter ~store ~every
       (module A : App.S)
   with
  | _ -> failwith "crash_restart_resilient_experiment: the run did not crash"
  | exception Failure_.Crash _ -> ());
  sabotage store;
  let r = restart_resilient ~poison ?niter ~store (module A : App.S) in
  {
    experiment =
      { golden; restarted = r.run; verified = verified ~golden ~restarted:r.run };
    restored_iteration = r.restored_iteration;
    skipped = r.skipped;
  }
