(* Dynamic perturbation falsifier for guard certificates.

   The guard's static pass claims, per checkpoint variable, whether the
   paper's criterion ("derivative = 0 means uncritical") is sound.  The
   falsifier attacks that claim empirically: restore the program to a
   checkpoint boundary, perturb one element the reverse analysis called
   uncritical, finish the run, and compare the output bit for bit
   against an unperturbed continuation from the same boundary.  A
   divergence is a concrete unsoundness witness — the element influences
   the output through a channel the derivative cannot see (a branch, an
   integer, a kink) — and is promoted to critical.

   The boundary snapshot/restore is in-memory (every scalar of every
   checkpoint variable), not a file: perturbation trials must be cheap
   enough to run thousands of times.  That this restore is sufficient to
   reproduce the continuation is the checkpointing premise itself; it is
   verified per run by the control-stability check (two unperturbed
   continuations must agree bitwise) — when they do not, trials are
   skipped and [f_stable] is false rather than reporting junk witnesses. *)

type target = {
  t_var : string;
  t_kind : Criticality.kind;
  t_candidates : int array;  (** element indices claimed uncritical *)
}

type witness = {
  w_var : string;
  w_kind : Criticality.kind;
  w_element : int;
  w_boundary : int;
  w_delta : float;  (** perturbation applied (signed; int deltas exact) *)
  w_fd : float option;
      (** central-difference diagnostic for float witnesses: a large or
          NaN value means a kink, a near-zero value with a bitwise
          divergence means a control-flow escape AD cannot see *)
  w_golden : float;
  w_perturbed : float;
}

type var_tally = { y_var : string; y_trials : int; y_witnesses : int }

type outcome = {
  f_app : string;
  f_boundary : int;
  f_niter : int;
  f_trials : int;  (** trials actually executed *)
  f_stable : bool;  (** control continuation reproduced bitwise *)
  f_witnesses : witness list;
  f_tested : var_tally list;
}

(* ------------------------------------------------------------------ *)

let bits = Int64.bits_of_float

(* [targets_of_report report ~ints] lists what the naive AD verdict
   calls uncritical: float elements whose mask is false, and — when
   [ints] — every element of every [By_taint]-style integer variable in
   the report (integers never get a derivative, so the naive criterion
   has nothing to say about them; all are candidates). *)
let targets_of_report ?(ints = true) (report : Criticality.report) =
  List.filter_map
    (fun (v : Criticality.var_report) ->
      let candidates =
        match v.Criticality.kind with
        | Criticality.Float_var ->
            let acc = ref [] in
            Array.iteri
              (fun i critical -> if not critical then acc := i :: !acc)
              v.Criticality.mask;
            Array.of_list (List.rev !acc)
        | Criticality.Int_var ->
            if ints then Array.init (Array.length v.Criticality.mask) Fun.id
            else [||]
      in
      if Array.length candidates = 0 then None
      else
        Some
          {
            t_var = v.Criticality.name;
            t_kind = v.Criticality.kind;
            t_candidates = candidates;
          })
    report.Criticality.vars

let run ?boundary ?niter ?h ~trials ~seed ~targets (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  let boundary = Option.value boundary ~default:0 in
  if boundary < 0 || boundary > niter then
    invalid_arg
      (Printf.sprintf "Falsifier.run: boundary %d outside [0, %d]" boundary
         niter);
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let state = I.create () in
  I.run state ~from:0 ~until:boundary;
  let fvars = I.float_vars state and ivars = I.int_vars state in
  (* Boundary snapshot: every scalar of every checkpoint variable. *)
  let fsnap = List.map (fun v -> (v, Variable.snapshot v)) fvars in
  let isnap = List.map (fun v -> (v, Variable.int_snapshot v)) ivars in
  let restore () =
    List.iter (fun (v, snap) -> Variable.restore v snap) fsnap;
    List.iter (fun (v, snap) -> Variable.int_restore v snap) isnap
  in
  let continuation () =
    I.run state ~from:boundary ~until:niter;
    Scvad_ad.Float_scalar.to_float (I.output state)
  in
  (* A perturbed continuation may crash outright (a perturbed integer
     driving an index out of range is the starkest possible control
     escape).  That is a divergence, not an analysis error. *)
  let continuation_opt () =
    match continuation () with
    | v -> Some v
    | exception (Invalid_argument _ | Failure _ | Division_by_zero) -> None
  in
  restore ();
  let control = continuation () in
  restore ();
  let control' = continuation () in
  let stable = bits control = bits control' in
  if not stable then
    {
      f_app = A.name;
      f_boundary = boundary;
      f_niter = niter;
      f_trials = 0;
      f_stable = false;
      f_witnesses = [];
      f_tested = [];
    }
  else begin
    let find_fvar name =
      List.find_opt (fun (v : float Variable.t) -> v.Variable.name = name) fvars
    in
    let find_ivar name =
      List.find_opt (fun (v : Variable.int_t) -> v.Variable.iname = name) ivars
    in
    (* Flatten targets to a sampling space of (target, element) pairs,
       dropping any whose variable the instance does not expose. *)
    let live =
      List.filter
        (fun t ->
          Array.length t.t_candidates > 0
          &&
          match t.t_kind with
          | Criticality.Float_var -> find_fvar t.t_var <> None
          | Criticality.Int_var -> find_ivar t.t_var <> None)
        targets
    in
    let total_candidates =
      List.fold_left (fun acc t -> acc + Array.length t.t_candidates) 0 live
    in
    if total_candidates = 0 then
      {
        f_app = A.name;
        f_boundary = boundary;
        f_niter = niter;
        f_trials = 0;
        f_stable = true;
        f_witnesses = [];
        f_tested = [];
      }
    else begin
      let rng = Random.State.make [| seed; boundary; Hashtbl.hash A.name |] in
      let pick k =
        (* k uniform in [0, total_candidates): walk the targets. *)
        let rec go k = function
          | [] -> assert false
          | t :: rest ->
              let n = Array.length t.t_candidates in
              if k < n then (t, t.t_candidates.(k)) else go (k - n) rest
        in
        go k live
      in
      let tallies = Hashtbl.create 8 in
      let bump name witness =
        let t, w = try Hashtbl.find tallies name with Not_found -> (0, 0) in
        Hashtbl.replace tallies name (t + 1, if witness then w + 1 else w)
      in
      let witnesses = ref [] in
      let perturb_float (v : float Variable.t) element =
        (* Perturb every scalar slot of the element with a relative
           step, so spe = 2 (FT's dcomplex) moves the whole element. *)
        let delta = ref 0.0 in
        for s = 0 to v.Variable.spe - 1 do
          let x = v.Variable.get element s in
          let d = Scvad_ad.Finite_diff.step ?h x in
          if s = 0 then delta := d;
          v.Variable.set element s (x +. d)
        done;
        !delta
      in
      let fd_diagnostic (v : float Variable.t) element =
        (* Central difference of the output along this element's
           direction — two more restore+continuation runs. *)
        let shift sign =
          restore ();
          let d = ref 0.0 in
          for s = 0 to v.Variable.spe - 1 do
            let x = v.Variable.get element s in
            let step = Scvad_ad.Finite_diff.step ?h x in
            if s = 0 then d := step;
            v.Variable.set element s (x +. (sign *. step))
          done;
          (continuation_opt (), !d)
        in
        match (shift 1.0, shift (-1.0)) with
        (* lint: allow float-equality — exact-zero step guard: the
           quotient below divides by d, and Finite_diff.step returns an
           exact 0.0 only when h itself is 0.0 *)
        | (Some plus, d), (Some minus, _) when d <> 0.0 ->
            Some ((plus -. minus) /. (2.0 *. d))
        | _ -> None
      in
      for _ = 1 to trials do
        let t, element = pick (Random.State.int rng total_candidates) in
        restore ();
        let delta =
          match t.t_kind with
          | Criticality.Float_var ->
              let v = Option.get (find_fvar t.t_var) in
              perturb_float v element
          | Criticality.Int_var ->
              let v = Option.get (find_ivar t.t_var) in
              let d = 1 + Random.State.int rng 7 in
              let d = if Random.State.bool rng then d else -d in
              v.Variable.iset element (v.Variable.iget element + d);
              float_of_int d
        in
        let out = continuation_opt () in
        let diverged =
          match out with Some o -> bits o <> bits control | None -> true
        in
        bump t.t_var diverged;
        if diverged then begin
          let fd =
            match t.t_kind with
            | Criticality.Float_var ->
                let v = Option.get (find_fvar t.t_var) in
                fd_diagnostic v element
            | Criticality.Int_var -> None
          in
          witnesses :=
            {
              w_var = t.t_var;
              w_kind = t.t_kind;
              w_element = element;
              w_boundary = boundary;
              w_delta = delta;
              w_fd = fd;
              w_golden = control;
              w_perturbed = Option.value out ~default:Float.nan;
            }
            :: !witnesses
        end
      done;
      let tested =
        Hashtbl.fold
          (fun name (t, w) acc ->
            { y_var = name; y_trials = t; y_witnesses = w } :: acc)
          tallies []
        |> List.sort (fun a b -> String.compare a.y_var b.y_var)
      in
      {
        f_app = A.name;
        f_boundary = boundary;
        f_niter = niter;
        f_trials = trials;
        f_stable = true;
        f_witnesses = List.rev !witnesses;
        f_tested = tested;
      }
    end
  end

(* Promote witness elements to critical in a report's masks.  The
   returned report shares nothing mutable with the input. *)
let harden (report : Criticality.report) (witnesses : witness list) =
  let promoted =
    List.map
      (fun (v : Criticality.var_report) ->
        let mask = Array.copy v.Criticality.mask in
        List.iter
          (fun w ->
            if
              w.w_var = v.Criticality.name
              && w.w_element >= 0
              && w.w_element < Array.length mask
            then mask.(w.w_element) <- true)
          witnesses;
        Criticality.of_mask ~name:v.Criticality.name ~shape:v.Criticality.shape
          ~spe:v.Criticality.spe ~kind:v.Criticality.kind mask)
      report.Criticality.vars
  in
  { report with Criticality.vars = promoted }
