(* The scrutiny engine (paper §III-A).

   Checkpoint semantics drive the setup: a checkpoint taken at main-loop
   iteration [at_iter] only matters through what a restarted run computes
   afterwards.  So the analysis runs the kernel to [at_iter] (free: all
   values are AD constants), lifts every element of every checkpoint
   variable into an independent AD variable — the checkpointed state —
   runs the remaining iterations plus the output reduction, and asks for
   d output / d element.  Zero derivative ⇒ uncritical.

   Three interchangeable modes:
   - [Reverse_gradient]: one taped run + one backward sweep for all
     elements at once (what Enzyme does for the authors);
   - [Forward_probe]: one dual-number run per element — the naive
     reading of "inspect every single element", kept as an oracle and an
     ablation;
   - [Activity_dependence]: edges-only dependence reachability, cheaper
     but ignoring zero-valued partials.

   Parallelism: every analysis accepts an optional {!Scvad_par.Pool} and
   fans its independent parts across it — per-variable mask/region
   extraction (reverse, activity), per-element dual probes (forward),
   and {!run_suite} runs whole per-benchmark analyses side by side.
   Each analysis owns its tape and each forward probe its state, so
   nothing is shared and results are bitwise identical at any [jobs]. *)

open Scvad_ad
module Pool = Scvad_par.Pool

(* Fan [f] over [xs]: on the pool when one is given, sequentially
   otherwise.  Pool.map preserves input order, so both paths agree. *)
let fan pool f xs =
  match pool with None -> List.map f xs | Some p -> Pool.map p f xs

let fan_init pool n f =
  match pool with None -> Array.init n f | Some p -> Pool.init p n f

(* The same pool, as the backend-agnostic fan-out capability the tape
   layer accepts: with it, the backward sweep runs independent tape
   segments in parallel (bitwise identical to the sequential sweep at
   any [jobs] — see {!Scvad_ad.Tape_intf.TAPE.backward}). *)
let fan_of pool =
  Option.map
    (fun p -> { Tape_intf.fan_run = (fun f xs -> Pool.map p f xs) })
    pool

(* Lower tape sweep stats into the report's sweep profile. *)
let sweep_profile_of (last : Tape_intf.sweep_stats option) =
  Option.map
    (fun (s : Tape_intf.sweep_stats) ->
      {
        Criticality.w_visited_nodes = s.Tape_intf.visited_nodes;
        w_swept_nodes = s.Tape_intf.swept_nodes;
        w_active_fraction =
          (if s.Tape_intf.swept_nodes = 0 then 0.
           else
             float_of_int s.Tape_intf.visited_nodes
             /. float_of_int s.Tape_intf.swept_nodes);
      })
    last

(* Static pre-resolution (the paper's "scrutinize before you run"
   carried to its limit): float variables the static activity pass
   proved [Statically_inactive] are never lifted onto the tape — their
   masks are all-false and their impact magnitudes all-zero by
   construction.  The @activity-check gate keeps this honest: it fails
   if the unfiltered dynamic analysis ever finds a critical element
   inside a statically-inactive claim. *)
let static_skips = function
  | None -> []
  | Some av -> Scvad_activity.Verdict.skippable_float_vars av

let all_false_reports ~name ~shape ~spe =
  let n = Scvad_nd.Shape.size shape in
  ( Criticality.of_mask ~name ~shape ~spe ~kind:Criticality.Float_var
      (Array.make n false),
    Impact.of_magnitudes ~name ~shape ~spe (Array.make n 0.) )

(* What one analysis pass produced.  [impact_reports] is non-empty only
   in reverse mode — the one mode whose backward sweep yields magnitudes
   as well as masks. *)
type analysis = {
  float_reports : Criticality.var_report list;
  impact_reports : Impact.var_impact list;
  int_reports : Criticality.var_report list;
  tape_nodes : int;
  tape_profile : Criticality.tape_profile option;
  sweep_profile : Criticality.sweep_profile option;
}

let int_reports (module A : App.S) (int_vars : Variable.int_t list) =
  let taint_masks =
    match A.int_taint_masks with Some f -> f () | None -> []
  in
  List.map
    (fun (iv : Variable.int_t) ->
      let n = Variable.int_elements iv in
      let mask =
        match iv.Variable.icrit with
        | Variable.Always_critical _ -> Array.make n true
        | Variable.By_taint -> (
            match List.assoc_opt iv.Variable.iname taint_masks with
            | Some m when Array.length m = n -> m
            | Some _ | None ->
                (* No analysis answer: stay conservative (critical). *)
                Array.make n true)
      in
      Criticality.of_mask ~name:iv.Variable.iname ~shape:iv.Variable.ishape
        ~spe:1 ~kind:Criticality.Int_var mask)
    int_vars

(* One reverse pass yields both products: criticality masks (derivative
   is zero / nonzero) and impact magnitudes (|derivative| per element),
   which power the mixed-precision extension.  Extraction — one scan of
   every snapshot plus the region encoding — fans out per variable. *)
let reverse_analysis ?pool ?static ?(pruned = []) ?capacity_hint
    (module A : App.S) ~at_iter ~niter =
  let skips = static_skips static @ pruned in
  let capacity_hint =
    (* A caller-supplied hint (e.g. the static cost model's exact
       prediction) overrides the app's hand-maintained ballpark. *)
    Option.value capacity_hint ~default:A.tape_nodes_hint
  in
  let tape = Tape.create ~capacity_hint () in
  let module RS = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let module I = A.Make (RS) in
  let state = I.create () in
  I.run state ~from:0 ~until:at_iter;
  let fvars = I.float_vars state in
  (* Capture the lifted nodes: they are the checkpointed values, even if
     the run overwrites the variable afterwards.  Statically-inactive
     variables are pre-resolved: no lifting, no tape nodes. *)
  let snapshots =
    List.map
      (fun (v : RS.t Variable.t) ->
        if List.mem v.Variable.name skips then (v, None)
        else (v, Some (Variable.lift_capture v (Reverse.lift tape))))
      fvars
  in
  I.run state ~from:at_iter ~until:niter;
  let g = Reverse.backward ?fan:(fan_of pool) tape (I.output state) in
  let per_var =
    fan pool
      (fun ((v : RS.t Variable.t), snapshot) ->
        match snapshot with
        | None ->
            all_false_reports ~name:v.Variable.name ~shape:v.Variable.shape
              ~spe:v.Variable.spe
        | Some snapshot ->
            let mask, magnitudes =
              Variable.mask_and_magnitudes_of_snapshot v snapshot
                (Reverse.grad g)
            in
            ( Criticality.of_mask ~name:v.Variable.name ~shape:v.Variable.shape
                ~spe:v.Variable.spe ~kind:Criticality.Float_var mask,
              Impact.of_magnitudes ~name:v.Variable.name ~shape:v.Variable.shape
                ~spe:v.Variable.spe magnitudes ))
      snapshots
  in
  {
    float_reports = List.map fst per_var;
    impact_reports = List.map snd per_var;
    int_reports = int_reports (module A) (I.int_vars state);
    tape_nodes = Tape.length tape;
    tape_profile = None;
    sweep_profile = sweep_profile_of (Tape.last_sweep tape);
  }

(* Reverse analysis under a node budget: the same lift / run / backward
   protocol, recorded on {!Tape.Segmented}.  Each main-loop iteration of
   the analyzed window is one tape segment; the registered capture hook
   snapshots the checkpoint variables (floats and ints) at every
   boundary, and the replay hook re-runs one iteration from a restored
   boundary — the checkpointing premise ("restore + run reproduces the
   continuation", verified bitwise by the falsifier's stability check)
   is exactly what makes the replay deterministic.  The final segment
   also recomputes the output reduction, so its nodes replay too. *)
let segmented_reverse_analysis ?pool ?static ?(pruned = []) ~budget_nodes
    ~schedule (module A : App.S) ~at_iter ~niter =
  let skips = static_skips static @ pruned in
  let module T = Tape.Segmented in
  let tape = T.create ~schedule ~budget_nodes () in
  let module RS = Reverse.Segmented.Scalar_of (struct
    let tape = tape
  end) in
  let module I = A.Make (RS) in
  let state = I.create () in
  let nsteps = niter - at_iter in
  let out = ref (Reverse.const 0.) in
  let step s =
    I.run state ~from:(at_iter + s) ~until:(at_iter + s + 1);
    if s = nsteps - 1 then out := I.output state
  in
  let capture () =
    let fs =
      List.map (fun v -> (v, Variable.snapshot v)) (I.float_vars state)
    in
    let is =
      List.map (fun v -> (v, Variable.int_snapshot v)) (I.int_vars state)
    in
    fun () ->
      List.iter (fun (v, s) -> Variable.restore v s) fs;
      List.iter (fun (v, s) -> Variable.int_restore v s) is
  in
  T.set_program tape ~capture ~replay_step:step;
  (* Prelude: constants fold, lifts are parentless — nothing here is
     ever replayed. *)
  I.run state ~from:0 ~until:at_iter;
  let fvars = I.float_vars state in
  let snapshots =
    List.map
      (fun (v : RS.t Variable.t) ->
        if List.mem v.Variable.name skips then (v, None)
        else (v, Some (Variable.lift_capture v (Reverse.Segmented.lift tape))))
      fvars
  in
  for s = 0 to nsteps - 1 do
    T.start_segment tape;
    step s
  done;
  (* [backward] replays segments, which rewinds live state to interior
     boundaries; resolve integer criticality now, from the completed
     run, before any replay can disturb it. *)
  let ints = int_reports (module A) (I.int_vars state) in
  let g = Reverse.Segmented.backward ?fan:(fan_of pool) tape !out in
  let per_var =
    fan pool
      (fun ((v : RS.t Variable.t), snapshot) ->
        match snapshot with
        | None ->
            all_false_reports ~name:v.Variable.name ~shape:v.Variable.shape
              ~spe:v.Variable.spe
        | Some snapshot ->
            let mask, magnitudes =
              Variable.mask_and_magnitudes_of_snapshot v snapshot
                (Reverse.Segmented.grad g)
            in
            ( Criticality.of_mask ~name:v.Variable.name ~shape:v.Variable.shape
                ~spe:v.Variable.spe ~kind:Criticality.Float_var mask,
              Impact.of_magnitudes ~name:v.Variable.name ~shape:v.Variable.shape
                ~spe:v.Variable.spe magnitudes ))
      snapshots
  in
  let st = T.stats tape in
  {
    float_reports = List.map fst per_var;
    impact_reports = List.map snd per_var;
    int_reports = ints;
    tape_nodes = st.T.s_total_nodes;
    tape_profile =
      Some
        {
          Criticality.t_schedule = T.schedule_to_string st.T.s_schedule;
          t_budget_nodes = st.T.s_budget_nodes;
          t_segments = st.T.s_segments;
          t_snapshots = st.T.s_snapshots;
          t_replays = st.T.s_replays;
          t_replayed_nodes = st.T.s_replayed_nodes;
          t_peak_live_nodes = st.T.s_peak_live_nodes;
        };
    sweep_profile = sweep_profile_of (T.last_sweep tape);
  }

let activity_analysis ?pool ?static ?(pruned = []) (module A : App.S)
    ~at_iter ~niter =
  let skips = static_skips static @ pruned in
  let tape = Dep_tape.create ~capacity:(1 lsl 16) () in
  let module AS = Activity.Scalar_of (struct
    let tape = tape
  end) in
  let module I = A.Make (AS) in
  let state = I.create () in
  I.run state ~from:0 ~until:at_iter;
  let fvars = I.float_vars state in
  let snapshots =
    List.map
      (fun (v : AS.t Variable.t) ->
        if List.mem v.Variable.name skips then (v, None)
        else (v, Some (Variable.lift_capture v (Activity.lift tape))))
      fvars
  in
  I.run state ~from:at_iter ~until:niter;
  let r = Activity.backward tape (I.output state) in
  let vars =
    fan pool
      (fun ((v : AS.t Variable.t), snapshot) ->
        match snapshot with
        | None ->
            fst
              (all_false_reports ~name:v.Variable.name ~shape:v.Variable.shape
                 ~spe:v.Variable.spe)
        | Some snapshot ->
            let mask =
              Variable.element_mask_of_snapshot v snapshot (Activity.active r)
            in
            Criticality.of_mask ~name:v.Variable.name ~shape:v.Variable.shape
              ~spe:v.Variable.spe ~kind:Criticality.Float_var mask)
      snapshots
  in
  {
    float_reports = vars;
    impact_reports = [];
    int_reports = int_reports (module A) (I.int_vars state);
    tape_nodes = Dep_tape.length tape;
    tape_profile = None;
    sweep_profile = sweep_profile_of (Dep_tape.last_sweep tape);
  }

let forward_analysis ?pool ?static ?(pruned = []) (module A : App.S)
    ~at_iter ~niter =
  let skips = static_skips static @ pruned in
  let module I = A.Make (Dual.Scalar) in
  (* Structure discovery run (no seeding). *)
  let skeleton = I.create () in
  I.run skeleton ~from:0 ~until:at_iter;
  let shapes =
    List.map
      (fun (v : Dual.t Variable.t) ->
        (v.Variable.name, v.Variable.shape, v.Variable.spe))
      (I.float_vars skeleton)
  in
  (* One full re-run per scrutinized element; every probe owns its
     state, so the element loop shards freely across the pool. *)
  let probe vindex e =
    let state = I.create () in
    I.run state ~from:0 ~until:at_iter;
    let v = List.nth (I.float_vars state) vindex in
    for k = 0 to v.Variable.spe - 1 do
      v.Variable.set e k (Dual.var (Dual.value (v.Variable.get e k)))
    done;
    I.run state ~from:at_iter ~until:niter;
    (* lint: allow float-equality — exact-zero tangent is the paper's
       criticality criterion (§III-A), not an approximate comparison *)
    Dual.tangent (I.output state) <> 0.
  in
  let vars =
    List.mapi
      (fun vindex (name, shape, spe) ->
        if List.mem name skips then
          fst (all_false_reports ~name ~shape ~spe)
        else
          let mask =
            fan_init pool (Scvad_nd.Shape.size shape) (fun e -> probe vindex e)
          in
          Criticality.of_mask ~name ~shape ~spe ~kind:Criticality.Float_var
            mask)
      shapes
  in
  {
    float_reports = vars;
    impact_reports = [];
    int_reports = int_reports (module A) (I.int_vars skeleton);
    tape_nodes = 0;
    tape_profile = None;
    sweep_profile = None;
  }

let analyze_with ~mode ~at_iter ?niter ?pool ?static ?discovered
    ?memory_budget ~schedule ?capacity_hint (module A : App.S) =
  let niter = Option.value niter ~default:A.analysis_niter in
  if at_iter < 0 || at_iter >= niter then
    invalid_arg "Analyzer.run: need 0 <= at_iter < niter";
  let static =
    Option.bind static (fun vs ->
        Scvad_activity.Verdict.find_app vs ~app:A.name)
  in
  (* Discovered mode: scrutinize the statically-proposed checkpoint set
     instead of (only) the declared one.  Float variables whose backing
     field the discovery pass ranked prunable are pre-resolved exactly
     like statically-inactive ones — never lifted, all-false masks —
     and the @discover-check gate holds the ranking to the same
     standard as @activity-check holds the verdict table. *)
  let pruned =
    match
      Option.bind discovered (fun ps ->
          Scvad_discover.Rank.find_app ps ~app:A.name)
    with
    | Some ranks -> Scvad_discover.Rank.pruned_float_vars ranks
    | None -> []
  in
  (* A memory budget routes reverse mode through the segmented tape.
     The other modes ignore it: forward probing records no tape at all,
     and the activity tape stores edges only — orders of magnitude
     below the reverse tape that motivates the budget. *)
  let a =
    match (mode, memory_budget) with
    | Criticality.Reverse_gradient, Some budget_nodes ->
        segmented_reverse_analysis ?pool ?static ~pruned ~budget_nodes
          ~schedule
          (module A)
          ~at_iter ~niter
    | Criticality.Reverse_gradient, None ->
        reverse_analysis ?pool ?static ~pruned ?capacity_hint
          (module A)
          ~at_iter ~niter
    | Criticality.Activity_dependence, _ ->
        activity_analysis ?pool ?static ~pruned (module A) ~at_iter ~niter
    | Criticality.Forward_probe, _ ->
        forward_analysis ?pool ?static ~pruned (module A) ~at_iter ~niter
  in
  {
    Criticality.app = A.name;
    at_iteration = at_iter;
    analyzed_until = niter;
    mode;
    tape_nodes = a.tape_nodes;
    tape_profile = a.tape_profile;
    sweep_profile = a.sweep_profile;
    vars = a.float_reports @ a.int_reports;
  }

(* Guarded scrutiny: harden a report against the static guard pass's
   [Control_tainted] certificates.  Variables whose dataflow escapes
   into discrete consumers (branches, conversions, kinks) can have
   elements the derivative calls uncritical but the output nonetheless
   depends on; the perturbation falsifier hunts such elements over the
   report's own analysis window and promotes every witness to critical.
   Smooth / Unknown variables are left alone — the AD verdict is the
   paper's criterion and the guard only overrides it where the
   criterion is provably inapplicable. *)
type guard_spec = {
  g_certs : Scvad_guard.Cert.certificates;
  g_trials : int;
  g_seed : int;
}

let guard_harden spec (module A : App.S) (report : Criticality.report) =
  match Scvad_guard.Cert.find_app spec.g_certs ~app:A.name with
  | None -> report
  | Some ac ->
      let tainted = Scvad_guard.Cert.tainted_vars ac in
      let targets =
        List.filter_map
          (fun (v : Criticality.var_report) ->
            if not (List.mem v.Criticality.name tainted) then None
            else begin
              let acc = ref [] in
              Array.iteri
                (fun i critical -> if not critical then acc := i :: !acc)
                v.Criticality.mask;
              match !acc with
              | [] -> None
              | rev ->
                  Some
                    {
                      Falsifier.t_var = v.Criticality.name;
                      t_kind = v.Criticality.kind;
                      t_candidates = Array.of_list (List.rev rev);
                    }
            end)
          report.Criticality.vars
      in
      if targets = [] || spec.g_trials <= 0 then report
      else
        let o =
          Falsifier.run ~boundary:report.Criticality.at_iteration
            ~niter:report.Criticality.analyzed_until ~trials:spec.g_trials
            ~seed:spec.g_seed ~targets
            (module A : App.S)
        in
        Falsifier.harden report o.Falsifier.f_witnesses

let maybe_guard guard (module A : App.S) report =
  match guard with
  | None -> report
  | Some spec -> guard_harden spec (module A : App.S) report

(* ------------------------------------------------------------------ *)
(* Configuration record                                                 *)
(* ------------------------------------------------------------------ *)

(* Every knob the entry points accreted over time, in one value.  The
   optional-argument spellings survive as deprecated wrappers below. *)
module Config = struct
  type t = {
    mode : Criticality.mode;
    at_iter : int;
    niter : int option; (* None: the app's analysis_niter *)
    jobs : int option; (* None: 1 for run, default_jobs for run_suite *)
    static : Scvad_activity.Verdict.verdicts option;
    discovered : Scvad_discover.Rank.proposals option;
        (* scrutinize the discovered checkpoint set: prunable-ranked
           float fields are pre-resolved like statically-inactive ones *)
    guard : guard_spec option;
    memory_budget : int option; (* tape node slots; None: dense tape *)
    schedule : Tape.Segmented.schedule;
    capacity_hint : int option;
        (* dense-tape preallocation, overriding the app's
           [tape_nodes_hint] — e.g. the cost model's exact prediction *)
  }

  let default =
    {
      mode = Criticality.Reverse_gradient;
      at_iter = 0;
      niter = None;
      jobs = None;
      static = None;
      discovered = None;
      guard = None;
      memory_budget = None;
      schedule = Tape.Segmented.Binomial;
      capacity_hint = None;
    }

  let with_mode mode c = { c with mode }
  let with_at_iter at_iter c = { c with at_iter }
  let with_niter n c = { c with niter = Some n }
  let with_jobs j c = { c with jobs = Some j }
  let with_static s c = { c with static = Some s }
  let with_discovered ps c = { c with discovered = Some ps }
  let with_guard g c = { c with guard = Some g }
  let with_memory_budget b c = { c with memory_budget = Some b }
  let with_schedule schedule c = { c with schedule }
  let with_capacity_hint h c = { c with capacity_hint = Some h }
end

let run ?(config = Config.default) (module A : App.S) =
  let {
    Config.mode;
    at_iter;
    niter;
    jobs;
    static;
    discovered;
    guard;
    memory_budget;
    schedule;
    capacity_hint;
  } =
    config
  in
  let jobs = Option.value jobs ~default:1 in
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf "Analyzer.run: jobs must be >= 1 (got %d)" jobs);
  let report =
    if jobs = 1 then
      analyze_with ~mode ~at_iter ?niter ?static ?discovered ?memory_budget
        ~schedule ?capacity_hint (module A)
    else
      Pool.with_pool ~jobs (fun pool ->
          analyze_with ~mode ~at_iter ?niter ~pool ?static ?discovered
            ?memory_budget ~schedule ?capacity_hint (module A))
  in
  maybe_guard guard (module A) report

(* Suite-level parallelism: each benchmark's analysis builds its own
   tape and state, so the eight analyses share nothing and run whole on
   separate domains.  The same pool also serves the per-analysis
   fan-outs: a nested Pool.map from inside a worker degrades to the
   sequential path, so the pool never deadlocks on itself. *)
let run_suite ?(config = Config.default) apps =
  let {
    Config.mode;
    at_iter;
    niter;
    jobs;
    static;
    discovered;
    guard;
    memory_budget;
    schedule;
    capacity_hint;
  } =
    config
  in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf "Analyzer.run_suite: jobs must be >= 1 (got %d)" jobs);
  let one pool app =
    maybe_guard guard app
      (analyze_with ~mode ~at_iter ?niter ?pool ?static ?discovered
         ?memory_budget ~schedule ?capacity_hint app)
  in
  if jobs = 1 then List.map (one None) apps
  else
    Pool.with_pool ~jobs (fun pool -> Pool.map pool (one (Some pool)) apps)

(* Union over several checkpoint boundaries: an element is critical if
   SOME checkpoint needs it.  This is the right notion for a checkpoint
   policy that prunes with one mask at every interval (cf. IS, whose
   key_array matters mid-run while bucket_ptrs matters just before the
   final verification). *)
let run_boundaries ?(config = Config.default) ~boundaries (module A : App.S) =
  match boundaries with
  | [] -> invalid_arg "Analyzer.run_boundaries: no boundaries"
  | first :: _ ->
      let reports =
        List.map
          (fun at_iter ->
            run ~config:{ config with Config.at_iter } (module A))
          boundaries
      in
      let union_var (a : Criticality.var_report) (b : Criticality.var_report) =
        Criticality.of_mask ~name:a.Criticality.name ~shape:a.Criticality.shape
          ~spe:a.Criticality.spe ~kind:a.Criticality.kind
          (Array.map2 ( || ) a.Criticality.mask b.Criticality.mask)
      in
      let base = List.hd reports in
      let vars =
        List.map
          (fun (v : Criticality.var_report) ->
            List.fold_left
              (fun acc r -> union_var acc (Criticality.find r v.Criticality.name))
              v (List.tl reports))
          base.Criticality.vars
      in
      {
        base with
        Criticality.at_iteration = first;
        vars;
        tape_nodes =
          List.fold_left (fun acc r -> acc + r.Criticality.tape_nodes) 0 reports;
        sweep_profile =
          (match
             List.filter_map (fun r -> r.Criticality.sweep_profile) reports
           with
          | [] -> None
          | profs ->
              let v =
                List.fold_left
                  (fun a p -> a + p.Criticality.w_visited_nodes)
                  0 profs
              and s =
                List.fold_left
                  (fun a p -> a + p.Criticality.w_swept_nodes)
                  0 profs
              in
              Some
                {
                  Criticality.w_visited_nodes = v;
                  w_swept_nodes = s;
                  w_active_fraction =
                    (if s = 0 then 0. else float_of_int v /. float_of_int s);
                });
      }

(* Impact magnitudes (reverse mode only): the input of the
   mixed-precision checkpoint planner. *)
let analyze_impact ?(at_iter = 0) ?niter (module A : App.S) =
  let niter = Option.value niter ~default:A.analysis_niter in
  if at_iter < 0 || at_iter >= niter then
    invalid_arg "Analyzer.analyze_impact: need 0 <= at_iter < niter";
  let a = reverse_analysis (module A) ~at_iter ~niter in
  { Impact.app = A.name; at_iteration = at_iter; analyzed_until = niter;
    vars = a.impact_reports }
