(* Criticality reports: the per-variable element masks the analysis
   produces, with the counts the paper reports in Table II. *)

type kind = Float_var | Int_var

type var_report = {
  name : string;
  shape : Scvad_nd.Shape.t;
  spe : int;
  kind : kind;
  mask : bool array; (* per logical element: critical? *)
  regions : Scvad_checkpoint.Regions.t; (* critical spans (aux file) *)
}

let of_mask ~name ~shape ~spe ~kind mask =
  if Array.length mask <> Scvad_nd.Shape.size shape then
    invalid_arg "Criticality.of_mask: mask length does not match shape";
  { name; shape; spe; kind; mask; regions = Scvad_checkpoint.Regions.of_mask mask }

let total v = Array.length v.mask
let critical v = Scvad_checkpoint.Regions.cardinal v.regions
let uncritical v = total v - critical v
let uncritical_rate v = float_of_int (uncritical v) /. float_of_int (total v)

type mode = Reverse_gradient | Forward_probe | Activity_dependence

let mode_name = function
  | Reverse_gradient -> "reverse-gradient"
  | Forward_probe -> "forward-probe"
  | Activity_dependence -> "activity-dependence"

(* How the recording was held in memory.  [None] means the dense tape
   (everything stored); [Some p] means the segmented tape ran under a
   node budget and [p] accounts for the recompute-vs-store trade the
   schedule made. *)
type tape_profile = {
  t_schedule : string; (* "binomial" | "log-stride" | "all-store" *)
  t_budget_nodes : int;
  t_segments : int;
  t_snapshots : int;
  t_replays : int;
  t_replayed_nodes : int;
  t_peak_live_nodes : int;
}

(* What the backward sweep actually did.  [w_visited_nodes] counts the
   nodes whose adjoint was nonzero when inspected — the active subgraph
   the frontier sweep is proportional to; the zero-adjoint rest IS the
   uncriticality signal, never walked.  Absent for forward-probe runs
   (no tape, no sweep). *)
type sweep_profile = {
  w_visited_nodes : int;
  w_swept_nodes : int; (* sweep range: output + 1 *)
  w_active_fraction : float; (* visited / swept; 0 on an empty sweep *)
}

type report = {
  app : string;
  at_iteration : int; (* checkpoint boundary the analysis models *)
  analyzed_until : int; (* main-loop iterations covered *)
  mode : mode;
  tape_nodes : int; (* size of the recorded data-flow graph *)
  tape_profile : tape_profile option; (* memory-budgeted recording? *)
  sweep_profile : sweep_profile option; (* what backward visited *)
  vars : var_report list;
}

let find report name =
  match List.find_opt (fun v -> v.name = name) report.vars with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf
           "Criticality.find: report for %S has no variable %S (it has: %s)"
           report.app name
           (String.concat ", " (List.map (fun v -> v.name) report.vars)))

let find_opt report name =
  List.find_opt (fun v -> v.name = name) report.vars

(* Aggregate uncritical rate over the float variables, weighted by
   element count — the per-benchmark number behind Table III's savings. *)
let aggregate_uncritical_rate report =
  let tot, unc =
    List.fold_left
      (fun (t, u) v -> (t + total v, u + uncritical v))
      (0, 0) report.vars
  in
  if tot = 0 then 0. else float_of_int unc /. float_of_int tot
