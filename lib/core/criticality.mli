(** Criticality reports: per-variable element masks plus the counts of
    the paper's Table II. *)

type kind = Float_var | Int_var

type var_report = {
  name : string;
  shape : Scvad_nd.Shape.t;
  spe : int;
  kind : kind;
  mask : bool array;  (** per logical element: critical? *)
  regions : Scvad_checkpoint.Regions.t;  (** critical spans (aux file) *)
}

(** Build a report from a mask; raises if mask length and shape
    disagree. *)
val of_mask :
  name:string ->
  shape:Scvad_nd.Shape.t ->
  spe:int ->
  kind:kind ->
  bool array ->
  var_report

val total : var_report -> int
val critical : var_report -> int
val uncritical : var_report -> int
val uncritical_rate : var_report -> float

type mode = Reverse_gradient | Forward_probe | Activity_dependence

val mode_name : mode -> string

(** How the recording was held in memory.  [None] on {!report} means
    the dense tape stored every node; [Some p] means the segmented tape
    ran under [p.t_budget_nodes] and the fields account for the
    recompute-vs-store trade: [t_peak_live_nodes] never exceeds the
    budget (rounded to whole slabs) and [t_replayed_nodes] is the extra
    recomputation the backward sweep paid for it. *)
type tape_profile = {
  t_schedule : string;  (** ["binomial"] | ["log-stride"] | ["all-store"] *)
  t_budget_nodes : int;
  t_segments : int;
  t_snapshots : int;
  t_replays : int;
  t_replayed_nodes : int;
  t_peak_live_nodes : int;
}

(** What the backward sweep actually did.  [w_visited_nodes] counts the
    nodes whose adjoint (or dependence mark) was nonzero when inspected
    — the active subgraph the frontier sweep's cost is proportional to.
    The zero-adjoint rest is the paper's uncriticality signal and is
    never walked.  [None] for forward-probe runs (no tape, no
    sweep). *)
type sweep_profile = {
  w_visited_nodes : int;
  w_swept_nodes : int;  (** sweep range: output node + 1 *)
  w_active_fraction : float;  (** visited / swept; 0 on an empty sweep *)
}

type report = {
  app : string;
  at_iteration : int;  (** checkpoint boundary the analysis models *)
  analyzed_until : int;  (** main-loop iterations covered *)
  mode : mode;
  tape_nodes : int;  (** recorded data-flow graph size *)
  tape_profile : tape_profile option;  (** memory-budgeted recording? *)
  sweep_profile : sweep_profile option;  (** what backward visited *)
  vars : var_report list;
}

(** Find a variable; raises [Invalid_argument] naming the missing
    variable and listing the report's variables. *)
val find : report -> string -> var_report

val find_opt : report -> string -> var_report option

(** Element-weighted uncritical rate over every variable. *)
val aggregate_uncritical_rate : report -> float
