(** Criticality reports: per-variable element masks plus the counts of
    the paper's Table II. *)

type kind = Float_var | Int_var

type var_report = {
  name : string;
  shape : Scvad_nd.Shape.t;
  spe : int;
  kind : kind;
  mask : bool array;  (** per logical element: critical? *)
  regions : Scvad_checkpoint.Regions.t;  (** critical spans (aux file) *)
}

(** Build a report from a mask; raises if mask length and shape
    disagree. *)
val of_mask :
  name:string ->
  shape:Scvad_nd.Shape.t ->
  spe:int ->
  kind:kind ->
  bool array ->
  var_report

val total : var_report -> int
val critical : var_report -> int
val uncritical : var_report -> int
val uncritical_rate : var_report -> float

type mode = Reverse_gradient | Forward_probe | Activity_dependence

val mode_name : mode -> string

type report = {
  app : string;
  at_iteration : int;  (** checkpoint boundary the analysis models *)
  analyzed_until : int;  (** main-loop iterations covered *)
  mode : mode;
  tape_nodes : int;  (** recorded data-flow graph size *)
  vars : var_report list;
}

(** Find a variable; raises [Invalid_argument] naming the missing
    variable and listing the report's variables. *)
val find : report -> string -> var_report

val find_opt : report -> string -> var_report option

(** Element-weighted uncritical rate over every variable. *)
val aggregate_uncritical_rate : report -> float
