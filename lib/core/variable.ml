(* Checkpoint variable views.

   A variable is "a memory location paired with an associated symbolic
   name" (paper §III-A); here it is an accessor view over live kernel
   state, generic in the scalar type so the same view works in float mode
   (checkpoint writing) and AD mode (lifting elements onto the tape).

   A variable has [elements] logical elements, each made of [spe]
   scalars ([spe] = 2 for FT's dcomplex cells); criticality is judged per
   logical element, exactly how the paper counts Table II. *)

type 'a t = {
  name : string;
  shape : Scvad_nd.Shape.t;
  spe : int;
  get : int -> int -> 'a; (* element index, scalar slot *)
  set : int -> int -> 'a -> unit;
  doc : string; (* why the variable must be checkpointed (Table I) *)
}

let elements v = Scvad_nd.Shape.size v.shape
let scalars v = elements v * v.spe

(* Every constructed view carries a sanitizer identity and reports its
   stores, scalar-granular: slot [e * spe + k].  The record is a
   domain-local read and a return outside sanitized pool shards, so
   restores and lifts stay cheap in normal runs (DESIGN.md §17). *)
let observed_set ~spe set =
  let id = Scvad_sanitize.Sanitize.fresh_id () in
  fun e k x ->
    set e k x;
    let off = (e * spe) + k in
    Scvad_sanitize.Sanitize.record ~obj:id ~lo:off ~hi:(off + 1)
      ~tag:"variable.set"

let observed_int_set set =
  let id = Scvad_sanitize.Sanitize.fresh_id () in
  fun e x ->
    set e x;
    Scvad_sanitize.Sanitize.record ~obj:id ~lo:e ~hi:(e + 1)
      ~tag:"variable.int_set"

(* Paper-style storage cost of the full variable: 8 bytes per scalar. *)
let payload_bytes v = 8 * scalars v

(* Flat array of scalars, one element per scalar. *)
let of_array ~name ?(doc = "") shape (data : 'a array) =
  if Array.length data <> Scvad_nd.Shape.size shape then
    invalid_arg "Variable.of_array: array length does not match shape";
  {
    name;
    shape;
    spe = 1;
    get = (fun e _ -> data.(e));
    set = observed_set ~spe:1 (fun e _ x -> data.(e) <- x);
    doc;
  }

(* A lone scalar (EP's sx/sy), viewed as one element. *)
let of_ref ~name ?(doc = "") (r : 'a ref) =
  {
    name;
    shape = Scvad_nd.Shape.scalar;
    spe = 1;
    get = (fun _ _ -> !r);
    set = observed_set ~spe:1 (fun _ _ x -> r := x);
    doc;
  }

(* General accessor view (used for dcomplex arrays). *)
let make ~name ?(doc = "") ~shape ~spe ~get ~set () =
  if spe <= 0 then invalid_arg "Variable.make: spe must be positive";
  { name; shape; spe; get; set = observed_set ~spe set; doc }

(* Lift every scalar in place and return the lifted values (element-major,
   [spe] slots per element).  The returned snapshot is essential: the run
   that follows may overwrite the variable, but criticality is a property
   of the values that were {e checkpointed}, i.e. the ones lifted here. *)
let lift_capture v f =
  let n = elements v in
  Array.init (n * v.spe) (fun i ->
      let e = i / v.spe and k = i mod v.spe in
      let x = f (v.get e k) in
      v.set e k x;
      x)

(* Boundary snapshot/restore: every scalar of the variable, element-major
   ([spe] slots per element).  This is the in-memory checkpoint the
   falsifier and the segmented tape's replay both rely on: restoring the
   snapshot and re-running from the boundary must reproduce the
   continuation (the checkpointing premise itself). *)
let snapshot v =
  Array.init (scalars v) (fun k -> v.get (k / v.spe) (k mod v.spe))

let restore v snap =
  if Array.length snap <> scalars v then
    invalid_arg "Variable.restore: snapshot length does not match variable";
  Array.iteri (fun k x -> v.set (k / v.spe) (k mod v.spe) x) snap

(* Criticality mask over a {!lift_capture} snapshot: an element is
   critical as soon as any of its scalar slots matters. *)
let element_mask_of_snapshot v snapshot judge =
  Array.init (elements v) (fun e ->
      let rec any k = k < v.spe && (judge snapshot.((e * v.spe) + k) || any (k + 1)) in
      any 0)

(* Mask and per-element |derivative| magnitude in one scan of the
   snapshot (reverse mode reads both from the same adjoints; scanning
   once halves the gradient lookups).  An element's magnitude is the max
   over its scalar slots; criticality is magnitude <> 0, which agrees
   with judging each slot's derivative against 0 (NaN stays critical:
   NaN <> 0.). *)
let mask_and_magnitudes_of_snapshot v snapshot magnitude_of =
  let n = elements v in
  let mask = Array.make n false in
  let magnitudes = Array.make n 0. in
  for e = 0 to n - 1 do
    let m = ref 0. in
    for k = 0 to v.spe - 1 do
      m := Float.max !m (Float.abs (magnitude_of snapshot.((e * v.spe) + k)))
    done;
    magnitudes.(e) <- !m;
    (* lint: allow float-equality — the paper's exact derivative-is-zero
       criterion; NaN magnitudes stay critical because NaN <> 0. *)
    mask.(e) <- !m <> 0.
  done;
  (mask, magnitudes)

(* ------------------------------------------------------------------ *)
(* Integer variables                                                   *)
(* ------------------------------------------------------------------ *)

(* AD does not apply to integers; the paper argues their criticality by
   inspection ("its impact is obvious as the index variable of a
   for-loop").  Each integer variable carries either that declared
   argument or a request for mechanized taint analysis. *)
type int_criticality =
  | Always_critical of string (* justification, e.g. "main loop index" *)
  | By_taint (* resolved by the app's integer-dependence analysis *)

type int_t = {
  iname : string;
  ishape : Scvad_nd.Shape.t;
  iget : int -> int;
  iset : int -> int -> unit;
  icrit : int_criticality;
  idoc : string;
}

let int_elements v = Scvad_nd.Shape.size v.ishape
let int_payload_bytes v = 8 * int_elements v
let int_snapshot v = Array.init (int_elements v) v.iget

let int_restore v snap =
  if Array.length snap <> int_elements v then
    invalid_arg "Variable.int_restore: snapshot length does not match variable";
  Array.iteri v.iset snap

let int_of_ref ~name ?(doc = "") ~crit (r : int ref) =
  {
    iname = name;
    ishape = Scvad_nd.Shape.scalar;
    iget = (fun _ -> !r);
    iset = observed_int_set (fun _ x -> r := x);
    icrit = crit;
    idoc = doc;
  }

let int_of_array ~name ?(doc = "") ~crit shape (data : int array) =
  if Array.length data <> Scvad_nd.Shape.size shape then
    invalid_arg "Variable.int_of_array: array length does not match shape";
  {
    iname = name;
    ishape = shape;
    iget = (fun e -> data.(e));
    iset = observed_int_set (fun e x -> data.(e) <- x);
    icrit = crit;
    idoc = doc;
  }

(* C-like declaration for Table I, e.g. "double u[12][13][13][5]" or
   "dcomplex y[64][64][65]" or "int step". *)
let declaration_of ~ctype ~name ~shape =
  let dims = Scvad_nd.Shape.dims shape in
  if Array.length dims = 1 && dims.(0) = 1 then Printf.sprintf "%s %s" ctype name
  else
    Printf.sprintf "%s %s%s" ctype name
      (String.concat ""
         (List.map (Printf.sprintf "[%d]") (Array.to_list dims)))

let declaration v =
  declaration_of
    ~ctype:(if v.spe = 2 then "dcomplex" else "double")
    ~name:v.name ~shape:v.shape

let int_declaration v =
  declaration_of ~ctype:"int" ~name:v.iname ~shape:v.ishape
