(** Checkpoint variable views.

    A variable (paper §III-A: "a memory location paired with an
    associated symbolic name") is exposed to the analyzer and the
    checkpoint library as an accessor view over live kernel state,
    generic in the scalar type.  A variable has logical {e elements},
    each made of [spe] scalars ([spe] = 2 for FT's dcomplex cells);
    criticality is judged per element, as in the paper's Table II. *)

type 'a t = {
  name : string;
  shape : Scvad_nd.Shape.t;
  spe : int;  (** scalars per logical element *)
  get : int -> int -> 'a;  (** [get element slot] *)
  set : int -> int -> 'a -> unit;
  doc : string;  (** why the variable must be checkpointed (Table I) *)
}

val elements : 'a t -> int

(** [elements * spe]. *)
val scalars : 'a t -> int

(** Full-variable storage cost: 8 bytes per scalar. *)
val payload_bytes : 'a t -> int

(** View over a flat array, one scalar per element. *)
val of_array : name:string -> ?doc:string -> Scvad_nd.Shape.t -> 'a array -> 'a t

(** View over a lone scalar held in a ref (e.g. EP's sx). *)
val of_ref : name:string -> ?doc:string -> 'a ref -> 'a t

(** General accessor view; raises on [spe <= 0]. *)
val make :
  name:string ->
  ?doc:string ->
  shape:Scvad_nd.Shape.t ->
  spe:int ->
  get:(int -> int -> 'a) ->
  set:(int -> int -> 'a -> unit) ->
  unit ->
  'a t

(** Lift every scalar in place and return the lifted values
    (element-major).  The snapshot matters: the run may overwrite the
    variable, but criticality is a property of the values that were
    checkpointed — the ones lifted here. *)
val lift_capture : 'a t -> ('a -> 'a) -> 'a array

(** Boundary snapshot: every scalar, element-major ([spe] slots per
    element).  Together with {!restore} this is the in-memory checkpoint
    used by the falsifier's trials and the segmented tape's replay. *)
val snapshot : 'a t -> 'a array

(** Write a {!snapshot} back; raises [Invalid_argument] on a length
    mismatch. *)
val restore : 'a t -> 'a array -> unit

(** Per-element criticality over a {!lift_capture} snapshot: an element
    is critical as soon as any of its scalar slots satisfies [judge]. *)
val element_mask_of_snapshot : 'a t -> 'a array -> ('a -> bool) -> bool array

(** [mask_and_magnitudes_of_snapshot v snapshot magnitude_of] computes,
    in one scan, the per-element criticality mask and the per-element
    derivative magnitude (max of [abs (magnitude_of slot)] over the
    element's scalar slots).  An element is critical iff its magnitude
    is nonzero (NaN counts as critical), which agrees with
    {!element_mask_of_snapshot} over [fun s -> magnitude_of s <> 0.]. *)
val mask_and_magnitudes_of_snapshot :
  'a t -> 'a array -> ('a -> float) -> bool array * float array

(** {1 Integer variables}

    AD does not apply to integers; criticality is either declared (the
    paper's "its impact is obvious as the index variable of a
    for-loop") or delegated to the integer dependence tracer. *)

type int_criticality =
  | Always_critical of string  (** justification *)
  | By_taint  (** resolved by the app's integer-dependence analysis *)

type int_t = {
  iname : string;
  ishape : Scvad_nd.Shape.t;
  iget : int -> int;
  iset : int -> int -> unit;
  icrit : int_criticality;
  idoc : string;
}

val int_elements : int_t -> int
val int_payload_bytes : int_t -> int

(** Integer analogue of {!snapshot} / {!restore}. *)
val int_snapshot : int_t -> int array

val int_restore : int_t -> int array -> unit

val int_of_ref :
  name:string -> ?doc:string -> crit:int_criticality -> int ref -> int_t

val int_of_array :
  name:string ->
  ?doc:string ->
  crit:int_criticality ->
  Scvad_nd.Shape.t ->
  int array ->
  int_t

(** C-like declaration, e.g. ["double u[12][13][13][5]"]. *)
val declaration_of : ctype:string -> name:string -> shape:Scvad_nd.Shape.t -> string

(** Declaration of a float variable ("double"/"dcomplex" by [spe]). *)
val declaration : 'a t -> string

val int_declaration : int_t -> string
