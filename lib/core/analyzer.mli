(** The scrutiny engine (paper §III-A).

    [analyze app] models a checkpoint taken at main-loop iteration
    [at_iter]: the kernel runs to the boundary as AD constants (free —
    constants fold), every element of every checkpoint variable is
    lifted onto the tape (that is the checkpointed state), the
    remaining window runs, and d output / d element decides
    criticality: zero derivative ⇒ uncritical.

    Integer variables are resolved from their declared criticality or,
    for [By_taint] variables, from the application's integer-dependence
    analysis hook.

    Every analysis can fan its independent parts out over a
    {!Scvad_par.Pool}: per-variable mask/region extraction (reverse and
    activity modes), per-element dual-number probes (forward mode), and
    whole per-benchmark analyses ({!run_suite}).  Nothing is shared
    between the fanned-out parts — each analysis owns its tape, each
    probe its state — so results are bitwise identical for any job
    count. *)

(** What one analysis pass produced, by kind.  [impact_reports] is
    non-empty only for {!reverse_analysis} — the one mode whose
    backward sweep yields derivative magnitudes as well as masks. *)
type analysis = {
  float_reports : Criticality.var_report list;
  impact_reports : Impact.var_impact list;
  int_reports : Criticality.var_report list;
  tape_nodes : int;
  tape_profile : Criticality.tape_profile option;
      (** set only by {!segmented_reverse_analysis} *)
  sweep_profile : Criticality.sweep_profile option;
      (** what the backward sweep visited; [None] for forward probing *)
}

(** One taped run + one backward sweep for all elements (what Enzyme
    does for the paper's authors); also yields impact magnitudes.  The
    tape is sized from [capacity_hint] when given (e.g. the static cost
    model's exact prediction), else [App.S.tape_nodes_hint], so the
    common case allocates its storage exactly once.

    [static] pre-resolves the variables the static activity pass
    ({!Scvad_activity}) proved [Statically_inactive] for this app:
    they are never lifted onto the tape — fewer tape nodes, less
    backward-sweep work — and their reports are all-false masks /
    all-zero magnitudes by construction.  The [@activity-check] gate
    asserts the static claims against the unfiltered dynamic analysis,
    so passing a gate-checked verdict table never changes a mask.

    [pruned] extends the skip set with explicit variable names — the
    discovery pass's prunable-ranked fields ({!Config.discovered}); the
    same pre-resolution, the same all-false reports, the same dynamic
    gate obligation (@discover-check). *)
val reverse_analysis :
  ?pool:Scvad_par.Pool.t ->
  ?static:Scvad_activity.Verdict.app_verdicts ->
  ?pruned:string list ->
  ?capacity_hint:int ->
  (module App.S) ->
  at_iter:int ->
  niter:int ->
  analysis

(** {!reverse_analysis} under a node budget, recorded on
    {!Scvad_ad.Tape.Segmented}: at most [budget_nodes] tape slots are
    materialized at any moment.  Each main-loop iteration of the
    analyzed window becomes one tape segment; checkpoint variables
    (floats and ints) are snapshotted at segment boundaries per the
    schedule, and the backward sweep replays iterations from restored
    boundaries to rebuild discarded tape windows.  Masks and impact
    magnitudes are bitwise identical to the dense analysis; the
    returned [tape_profile] accounts for the recompute-vs-store trade
    (segments, snapshots, replays, peak live nodes). *)
val segmented_reverse_analysis :
  ?pool:Scvad_par.Pool.t ->
  ?static:Scvad_activity.Verdict.app_verdicts ->
  ?pruned:string list ->
  budget_nodes:int ->
  schedule:Scvad_ad.Tape.Segmented.schedule ->
  (module App.S) ->
  at_iter:int ->
  niter:int ->
  analysis

(** Edges-only dependence reachability — cheaper, but a zero-valued
    partial still counts as a dependence.  [static] as in
    {!reverse_analysis}. *)
val activity_analysis :
  ?pool:Scvad_par.Pool.t ->
  ?static:Scvad_activity.Verdict.app_verdicts ->
  ?pruned:string list ->
  (module App.S) ->
  at_iter:int ->
  niter:int ->
  analysis

(** One dual-number re-run per element — the naive reading of "inspect
    every single element"; oracle and ablation.  The element loop
    shards across the pool (each probe owns its state).  [static]
    skips every probe of a statically-inactive variable. *)
val forward_analysis :
  ?pool:Scvad_par.Pool.t ->
  ?static:Scvad_activity.Verdict.app_verdicts ->
  ?pruned:string list ->
  (module App.S) ->
  at_iter:int ->
  niter:int ->
  analysis

(** Guarded scrutiny: after the AD pass, harden the report against the
    static guard certificates.  For every variable the guard classified
    [Control_tainted] (its dataflow escapes into branches, integer
    conversions, or kinks — places where "derivative = 0" does not
    imply "uncritical"), the perturbation falsifier ({!Falsifier}) runs
    [g_trials] seeded trials over the report's analysis window on the
    elements the masks call uncritical; every witness is promoted to
    critical.  [Smooth] and [Unknown] variables keep their AD verdict
    untouched. *)
type guard_spec = {
  g_certs : Scvad_guard.Cert.certificates;
  g_trials : int;
  g_seed : int;
}

(** Analysis configuration: every knob of the engine in one value.

    Build one by overriding {!Config.default}, either with a record
    update or the [with_*] combinators:

    {[
      Analyzer.Config.(
        default |> with_at_iter 1 |> with_jobs 4
        |> with_memory_budget 1_000_000)
    ]} *)
module Config : sig
  type t = {
    mode : Criticality.mode;
        (** [Reverse_gradient] (default): one taped run + one backward
            sweep for all elements.  [Forward_probe] re-runs the
            application once per element with a dual-number seed
            (oracle and ablation).  [Activity_dependence] tracks
            reachability only — cheaper, but a zero-valued partial
            still counts as a dependence. *)
    at_iter : int;  (** checkpoint boundary (default 0) *)
    niter : int option;
        (** end of the analyzed window (default the app's
            [analysis_niter]); must satisfy [0 <= at_iter < niter].  A
            window shorter than the true remaining run is conservative
            for elements the unanalyzed iterations would overwrite, and
            all eight NPB kernels have iteration-invariant access
            patterns, so the short default windows reproduce the
            full-run answer (asserted by the test suite). *)
    jobs : int option;
        (** width of the transient domain pool the analysis fans out
            on; 1 means fully sequential.  Default 1 for {!run},
            [Scvad_par.Pool.default_jobs ()] for {!run_suite}.  The
            produced report is bitwise identical for every [jobs]. *)
    static : Scvad_activity.Verdict.verdicts option;
        (** verdict table from the static activity pass; the entry
            matching the app (if any) pre-resolves its
            statically-inactive variables without lifting them *)
    discovered : Scvad_discover.Rank.proposals option;
        (** proposals from the static discovery pass ([bin/discover]):
            the analysis scrutinizes the {e discovered} checkpoint set
            — declared float variables whose backing field is ranked
            prunable are pre-resolved like statically-inactive ones
            (never lifted, all-false masks).  The [@discover-check]
            gate asserts the ranking against the unfiltered dynamic
            analysis, so a gate-checked proposal never changes a
            mask. *)
    guard : guard_spec option;
        (** harden the produced report — see {!guard_spec} *)
    memory_budget : int option;
        (** cap on materialized tape node slots (24 bytes each).  Set:
            reverse-mode analyses record on {!Scvad_ad.Tape.Segmented}
            — discarded tape windows are rebuilt by replaying
            iterations during the backward sweep — and the report
            carries a [tape_profile].  Unset (default): the dense tape
            stores every node.  Ignored by the forward and activity
            modes, whose memory use does not motivate a budget. *)
    schedule : Scvad_ad.Tape.Segmented.schedule;
        (** recompute-vs-store schedule under [memory_budget]
            (default [Binomial]).  [Planned] boundaries typically come
            from the static cost model ([Scvad_cost.Plan]), computed
            before any recording. *)
    capacity_hint : int option;
        (** dense-tape preallocation in nodes, overriding the app's
            hand-maintained [tape_nodes_hint] — pass the static cost
            model's exact prediction to allocate the tape right-sized
            up front.  Ignored under [memory_budget] (the budget sizes
            the segmented tape) and by the forward / activity modes. *)
  }

  val default : t
  val with_mode : Criticality.mode -> t -> t
  val with_at_iter : int -> t -> t
  val with_niter : int -> t -> t
  val with_jobs : int -> t -> t
  val with_static : Scvad_activity.Verdict.verdicts -> t -> t
  val with_discovered : Scvad_discover.Rank.proposals -> t -> t
  val with_guard : guard_spec -> t -> t
  val with_memory_budget : int -> t -> t
  val with_schedule : Scvad_ad.Tape.Segmented.schedule -> t -> t
  val with_capacity_hint : int -> t -> t
end

(** [run ?config app] analyzes one benchmark under [config] (default
    {!Config.default}). *)
val run : ?config:Config.t -> (module App.S) -> Criticality.report

(** [run_suite ?config apps] analyzes every benchmark of [apps] and
    returns the reports in input order.  Each analysis builds its own
    tape and state, so whole analyses run in parallel on a pool of
    [config.jobs] domains (default [Scvad_par.Pool.default_jobs ()] —
    the recommended domain count clamped to the container's CPU quota);
    the same pool serves the per-analysis fan-outs.  Reports are
    bitwise identical for every [jobs]. *)
val run_suite :
  ?config:Config.t -> (module App.S) list -> Criticality.report list

(** Union over several checkpoint boundaries: an element is critical if
    {e some} checkpoint needs it — the right mask for a policy that
    prunes with a single region set at every interval.  [config.at_iter]
    is ignored; the result's [at_iteration] is the first boundary and
    [tape_nodes] is the total. *)
val run_boundaries :
  ?config:Config.t ->
  boundaries:int list ->
  (module App.S) ->
  Criticality.report

(** Impact magnitudes |d output / d element| from the same reverse
    pass — the input of the mixed-precision checkpoint planner
    ({!Mixed}). *)
val analyze_impact :
  ?at_iter:int -> ?niter:int -> (module App.S) -> Impact.report
