(** The scrutiny engine (paper §III-A).

    [analyze app] models a checkpoint taken at main-loop iteration
    [at_iter]: the kernel runs to the boundary as AD constants (free —
    constants fold), every element of every checkpoint variable is
    lifted onto the tape (that is the checkpointed state), the
    remaining window runs, and d output / d element decides
    criticality: zero derivative ⇒ uncritical.

    Integer variables are resolved from their declared criticality or,
    for [By_taint] variables, from the application's integer-dependence
    analysis hook.

    Every analysis can fan its independent parts out over a
    {!Scvad_par.Pool}: per-variable mask/region extraction (reverse and
    activity modes), per-element dual-number probes (forward mode), and
    whole per-benchmark analyses ({!analyze_suite}).  Nothing is shared
    between the fanned-out parts — each analysis owns its tape, each
    probe its state — so results are bitwise identical for any job
    count. *)

(** What one analysis pass produced, by kind.  [impact_reports] is
    non-empty only for {!reverse_analysis} — the one mode whose
    backward sweep yields derivative magnitudes as well as masks. *)
type analysis = {
  float_reports : Criticality.var_report list;
  impact_reports : Impact.var_impact list;
  int_reports : Criticality.var_report list;
  tape_nodes : int;
}

(** One taped run + one backward sweep for all elements (what Enzyme
    does for the paper's authors); also yields impact magnitudes.  The
    tape is sized from [App.S.tape_nodes_hint], so the common case
    allocates its storage exactly once.

    [static] pre-resolves the variables the static activity pass
    ({!Scvad_activity}) proved [Statically_inactive] for this app:
    they are never lifted onto the tape — fewer tape nodes, less
    backward-sweep work — and their reports are all-false masks /
    all-zero magnitudes by construction.  The [@activity-check] gate
    asserts the static claims against the unfiltered dynamic analysis,
    so passing a gate-checked verdict table never changes a mask. *)
val reverse_analysis :
  ?pool:Scvad_par.Pool.t ->
  ?static:Scvad_activity.Verdict.app_verdicts ->
  (module App.S) ->
  at_iter:int ->
  niter:int ->
  analysis

(** Edges-only dependence reachability — cheaper, but a zero-valued
    partial still counts as a dependence.  [static] as in
    {!reverse_analysis}. *)
val activity_analysis :
  ?pool:Scvad_par.Pool.t ->
  ?static:Scvad_activity.Verdict.app_verdicts ->
  (module App.S) ->
  at_iter:int ->
  niter:int ->
  analysis

(** One dual-number re-run per element — the naive reading of "inspect
    every single element"; oracle and ablation.  The element loop
    shards across the pool (each probe owns its state).  [static]
    skips every probe of a statically-inactive variable. *)
val forward_analysis :
  ?pool:Scvad_par.Pool.t ->
  ?static:Scvad_activity.Verdict.app_verdicts ->
  (module App.S) ->
  at_iter:int ->
  niter:int ->
  analysis

(** Guarded scrutiny: after the AD pass, harden the report against the
    static guard certificates.  For every variable the guard classified
    [Control_tainted] (its dataflow escapes into branches, integer
    conversions, or kinks — places where "derivative = 0" does not
    imply "uncritical"), the perturbation falsifier ({!Falsifier}) runs
    [g_trials] seeded trials over the report's analysis window on the
    elements the masks call uncritical; every witness is promoted to
    critical.  [Smooth] and [Unknown] variables keep their AD verdict
    untouched. *)
type guard_spec = {
  g_certs : Scvad_guard.Cert.certificates;
  g_trials : int;
  g_seed : int;
}

(** [analyze ?mode ?at_iter ?niter ?jobs app].

    - [mode] (default [Reverse_gradient]): one taped run + one backward
      sweep for all elements.  [Forward_probe] re-runs the application
      once per element with a dual-number seed (the naive reading of
      "inspect every single element"; oracle and ablation).
      [Activity_dependence] tracks reachability only — cheaper, but a
      zero-valued partial still counts as a dependence.
    - [at_iter] (default 0): the checkpoint boundary.
    - [niter] (default the app's [analysis_niter]): end of the analyzed
      window.  Must satisfy [0 <= at_iter < niter].
    - [jobs] (default 1): width of the transient domain pool the
      analysis fans out on; 1 means fully sequential.  The produced
      report is identical for every [jobs].

    A window shorter than the true remaining run is conservative for
    elements that the unanalyzed iterations would overwrite, and all
    eight NPB kernels have iteration-invariant access patterns, so the
    short default windows reproduce the full-run answer (asserted by
    the test suite).

    [static] (default none) is a verdict table from the static
    activity pass; the entry matching the app (if any) pre-resolves
    its statically-inactive variables without lifting them.

    [guard] (default none) hardens the produced report — see
    {!guard_spec}. *)
val analyze :
  ?mode:Criticality.mode ->
  ?at_iter:int ->
  ?niter:int ->
  ?jobs:int ->
  ?static:Scvad_activity.Verdict.verdicts ->
  ?guard:guard_spec ->
  (module App.S) ->
  Criticality.report

(** [analyze_suite ?mode ?at_iter ?niter ?jobs apps] analyzes every
    benchmark of [apps] and returns the reports in input order.  Each
    analysis builds its own tape and state, so whole analyses run in
    parallel on a pool of [jobs] domains (default
    [Scvad_par.Pool.default_jobs ()] — the recommended domain count
    clamped to the container's CPU quota); the same pool serves the
    per-analysis fan-outs.
    Reports are bitwise identical for every [jobs]. *)
val analyze_suite :
  ?mode:Criticality.mode ->
  ?at_iter:int ->
  ?niter:int ->
  ?jobs:int ->
  ?static:Scvad_activity.Verdict.verdicts ->
  ?guard:guard_spec ->
  (module App.S) list ->
  Criticality.report list

(** Union over several checkpoint boundaries: an element is critical if
    {e some} checkpoint needs it — the right mask for a policy that
    prunes with a single region set at every interval.  The result's
    [at_iteration] is the first boundary; [tape_nodes] is the total. *)
val analyze_boundaries :
  ?mode:Criticality.mode ->
  boundaries:int list ->
  ?niter:int ->
  ?jobs:int ->
  ?static:Scvad_activity.Verdict.verdicts ->
  (module App.S) ->
  Criticality.report

(** Impact magnitudes |d output / d element| from the same reverse
    pass — the input of the mixed-precision checkpoint planner
    ({!Mixed}). *)
val analyze_impact :
  ?at_iter:int -> ?niter:int -> (module App.S) -> Impact.report
