(* The interprocedural escape/effect analysis: an abstract interpreter
   that inlines the scanned tree from its fan-out entry points.

   Instead of summarizing functions bottom-up (which loses the binding
   between a closure and the environment it captured), the pass
   {e evaluates} every top-level binding of the files that mention the
   pool, inlining resolvable calls as it goes.  Values carry provenance
   roots ({!Effects.root}); whenever evaluation passes a [Pool.map] /
   [Pool.init] application, a hook captures the concrete closure value —
   environment included — that flowed there.  Each captured closure is
   then re-analyzed as a {e shard}: captured state is re-rooted as
   external ([Ext]), its argument becomes the shard datum ([Shard]) or
   the shard index (affine [Idx]), and its evaluation yields the
   mutable-state footprint the verdicts are computed from.

   Everything the interpreter cannot establish becomes an obligation,
   never a guess: unresolved calls, exhausted budgets, recursion with
   widening provenance.  Resolution it {e can} trust but not see is
   recorded as a named premise (module contract, accessor contract,
   trusted runtime) and surfaced with the proof. *)

module Effects = Effects
module Verdict = Verdict

(* ------------------------------------------------------------------ *)
(* Abstract values                                                     *)
(* ------------------------------------------------------------------ *)

type roots = Effects.root list

type value =
  | Pure  (** immediate value with no provenance *)
  | Idx of { scale : int; offset : int }
      (** integer affine in the shard index (and plain int constants,
          with [scale = 0]) *)
  | Obj of { o_roots : roots; o_app : bool }
      (** opaque value; [o_app] marks values read off a rooted object,
          applicable under the accessor contract *)
  | Rec of { r_roots : roots; r_fields : (string * value) list }
  | Coll of { c_roots : roots; c_elem : value }
  | Tup of value list
  | Constr of string * value list
  | Clo of closure
  | Fnref of string * string  (** file path, binding name *)
  | Prim of string * Contracts.t
  | Poolfn of string  (** Pool primitive, by member name *)
  | Mod of roots  (** module value: roots are its creation captures *)
  | ModAlias of string list
  | VRef of value ref  (** knot for recursive local bindings *)

and closure = {
  cl_file : string;
  cl_ctx : string;  (** enclosing binding, for reporting *)
  cl_env : (string * value) list;
  cl_expr : Parsetree.expression;
  cl_pending : (Asttypes.arg_label * value) list;
}

let obj r = Obj { o_roots = r; o_app = false }
let unknown = obj []

let union_roots a b =
  List.sort_uniq Effects.compare_root (List.rev_append a b)

(* Names occurring in an expression, as head segments of identifier
   paths.  Over-approximate (pattern bindings are not subtracted, which
   only keeps more environment entries alive); memoized by definition
   site.  Restricting a closure's provenance to the captures its body
   actually names is what keeps an unrelated in-scope binding — the
   pool in scope at [let capture () = …] — out of its footprint. *)
let free_names_memo : (string * int, (string, unit) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 256

let free_names (e : Parsetree.expression) =
  let key =
    ( e.pexp_loc.loc_start.Lexing.pos_fname,
      e.pexp_loc.loc_start.Lexing.pos_cnum )
  in
  match Hashtbl.find_opt free_names_memo key with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it ex ->
              (match ex.Parsetree.pexp_desc with
              | Pexp_ident lid -> (
                  match Longident.flatten lid.Location.txt with
                  | head :: _ -> Hashtbl.replace s head ()
                  | [] -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it ex);
        }
      in
      it.expr it e;
      Hashtbl.replace free_names_memo key s;
      s

(* Does the env entry [n] matter to a body whose names are [free]?
   [module:P] entries answer for their parameter name; [#]-sentinels
   carry no roots either way. *)
let env_entry_live free n =
  String.length n > 0 && n.[0] = '#'
  ||
  match String.index_opt n ':' with
  | Some i when String.sub n 0 i = "module" ->
      Hashtbl.mem free (String.sub n (i + 1) (String.length n - i - 1))
  | _ -> Hashtbl.mem free n

let rec roots_of = function
  | Pure | Idx _ | Fnref _ | Prim _ | Poolfn _ | ModAlias _ -> []
  | Obj o -> o.o_roots
  | Mod r -> r
  | Rec r ->
      List.fold_left
        (fun acc (_, v) -> union_roots acc (roots_of v))
        r.r_roots r.r_fields
  | Coll c -> union_roots c.c_roots (roots_of c.c_elem)
  | Tup vs | Constr (_, vs) ->
      List.fold_left (fun acc v -> union_roots acc (roots_of v)) [] vs
  | Clo c ->
      let free = free_names c.cl_expr in
      let acc =
        List.fold_left
          (fun acc (n, v) ->
            if env_entry_live free n then union_roots acc (roots_of v)
            else acc)
          [] c.cl_env
      in
      List.fold_left
        (fun acc (_, v) -> union_roots acc (roots_of v))
        acc c.cl_pending
  | VRef r -> ( match !r with VRef _ -> [] | v -> roots_of v)

let rec force = function VRef r -> force' !r | v -> v
and force' = function VRef _ -> unknown | v -> force v

(* Structural join.  Mismatched shapes degrade to an opaque value that
   keeps every root; matched shapes join pointwise so record fields
   (e.g. a [fan_run] closure) survive a branch merge. *)
let rec join a b =
  match (force a, force b) with
  | Pure, v | v, Pure -> v
  | Idx a, Idx b when a.scale = b.scale && a.offset = b.offset -> Idx a
  | (Obj { o_roots = r; o_app } as o), v | v, (Obj { o_roots = r; o_app } as o)
    -> (
      match v with
      | Rec rc -> Rec { rc with r_roots = union_roots rc.r_roots r }
      | Coll c -> Coll { c with c_roots = union_roots c.c_roots r }
      | Clo _ when r = [] -> v
      | Obj b -> Obj { o_roots = union_roots r b.o_roots;
                       o_app = o_app || b.o_app }
      | _ ->
          ignore o;
          Obj { o_roots = union_roots r (roots_of v); o_app })
  | Constr (_, []), (Constr (_, _ :: _) as v)
  | (Constr (_, _ :: _) as v), Constr (_, []) ->
      (* Nullary vs payload constructor (None vs Some f): the payload
         side carries everything the nullary side could — and a match
         evaluates both branches anyway. *)
      v
  | Rec a, Rec b ->
      let fields =
        List.fold_left
          (fun acc (n, v) ->
            match List.assoc_opt n acc with
            | Some v' -> (n, join v v') :: List.remove_assoc n acc
            | None -> (n, v) :: acc)
          a.r_fields b.r_fields
      in
      Rec { r_roots = union_roots a.r_roots b.r_roots; r_fields = fields }
  | Coll a, Coll b ->
      Coll
        {
          c_roots = union_roots a.c_roots b.c_roots;
          c_elem = join a.c_elem b.c_elem;
        }
  | Tup a, Tup b when List.length a = List.length b ->
      Tup (List.map2 join a b)
  | Constr (n, a), Constr (m, b) when n = m && List.length a = List.length b
    ->
      Constr (n, List.map2 join a b)
  | (Clo _ as a), Clo _ -> a
  | Mod a, Mod b -> Mod (union_roots a b)
  | a, b ->
      let r = union_roots (roots_of a) (roots_of b) in
      if r = [] then Pure else obj r

let join_all = function [] -> Pure | v :: vs -> List.fold_left join v vs

(* The element view of a container-ish value: what a [Pool.map] shard
   or a HOF callback receives. *)
let elem_of v =
  match force v with
  | Coll c -> join c.c_elem (obj c.c_roots)
  | Tup vs | Constr (_, vs) -> join_all vs
  | Obj _ as o -> o
  | v -> ( match roots_of v with [] -> Pure | r -> obj r)

(* Re-rooting for shard analysis: enclosing-evaluation [Fresh]/[Shard]
   provenance is shared state from the shard's point of view, and a
   captured affine index is just some integer, not the shard's own. *)
let rec reroot ~who v =
  match v with
  | Pure -> Pure
  | Idx _ -> Pure
  | Obj o ->
      Obj { o with o_roots = List.map (reroot_root ~who) o.o_roots }
  | Mod r -> Mod (List.map (reroot_root ~who) r)
  | Rec r ->
      Rec
        {
          r_roots = List.map (reroot_root ~who) r.r_roots;
          r_fields = List.map (fun (n, v) -> (n, reroot ~who:n v)) r.r_fields;
        }
  | Coll c ->
      Coll
        {
          c_roots = List.map (reroot_root ~who) c.c_roots;
          c_elem = reroot ~who c.c_elem;
        }
  | Tup vs -> Tup (List.map (reroot ~who) vs)
  | Constr (n, vs) -> Constr (n, List.map (reroot ~who) vs)
  | Clo c -> Clo (reroot_closure c)
  | Fnref _ | Prim _ | Poolfn _ | ModAlias _ -> v
  | VRef r -> ( match !r with VRef _ -> Pure | v -> reroot ~who v)

and reroot_root ~who = function
  | Effects.Fresh | Effects.Shard -> Effects.Ext ("captured:" ^ who)
  | r -> r

and reroot_closure c =
  {
    c with
    cl_env = List.map (fun (n, v) -> (n, reroot ~who:n v)) c.cl_env;
    cl_pending =
      List.map (fun (l, v) -> (l, reroot ~who:"applied arg" v)) c.cl_pending;
  }

(* ------------------------------------------------------------------ *)
(* Evaluation context                                                  *)
(* ------------------------------------------------------------------ *)

type flow_item = {
  q_site : Verdict.site;
  q_kind : Verdict.site_kind;
  q_clo : closure;
  q_via : string;
}

type ctx = {
  model : Rmodel.t;
  sites : (string, Verdict.site) Hashtbl.t;
  mutable site_order : string list;  (** site keys, discovery order *)
  mutable queue : flow_item list;
  seen_flows : (string, unit) Hashtbl.t;
  mutable fuel : int;
  mutable writes : Effects.write list;
  mutable obligations : string list;
  mutable premises : string list;
  mutable visiting : (string * roots) list;
  mutable via : string;
  heap : (string * string, value) Hashtbl.t;
      (** weak field heap, keyed by (root, field name): abstract values
          are immutable, so mutable-field stores land here and field
          reads join the entry back in — how [set_program]'s closures
          reach the backward sweep that applies them.  Reset per
          summary (entry or flow), like the write/obligation lists. *)
}

let entry_fuel = 400_000

let obligation ctx msg =
  if not (List.mem msg ctx.obligations) then
    ctx.obligations <- msg :: ctx.obligations

let premise ctx msg =
  if not (List.mem msg ctx.premises) then ctx.premises <- msg :: ctx.premises

(* Weak update: join [v] into the heap entry of every root of [target]
   under [field] (["!elem"] for container elements).  Values that carry
   nothing are not worth storing. *)
let heap_store ctx target ~field v =
  match force v with
  | Pure | Idx _ -> ()
  | v ->
      List.iter
        (fun root ->
          let key = (Effects.root_name root, field) in
          match Hashtbl.find_opt ctx.heap key with
          | Some old -> Hashtbl.replace ctx.heap key (join old v)
          | None -> Hashtbl.replace ctx.heap key v)
        (roots_of target)

let heap_read ctx target ~field base =
  List.fold_left
    (fun acc root ->
      match Hashtbl.find_opt ctx.heap (Effects.root_name root, field) with
      | Some v -> join acc v
      | None -> acc)
    base (roots_of target)

let line_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_lnum
let file_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_fname

let record_write ctx ~loc ~region ~what target =
  match roots_of target with
  | [] ->
      (* Provenance-free target: under the lint-certified absence of
         top-level mutable state in lib/, a value the tracker lost can
         only have passed through immutable bindings. *)
      premise ctx
        "writes to provenance-free values are immutable-binding reads \
         (no-top-level-mutable-state, @lint gate)"
  | rs ->
      List.iter
        (fun root ->
          ctx.writes <-
            {
              Effects.wr_root = root;
              wr_region = region;
              wr_file = file_of_loc loc;
              wr_line = line_of_loc loc;
              wr_what = what;
            }
            :: ctx.writes)
        rs

(* Shallow rendering of a written target for witnesses. *)
let rec expr_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> String.concat "." (Rmodel.flatten lid.txt)
  | Pexp_field (b, lid) ->
      expr_name b ^ "." ^ Rmodel.last_segment lid.txt
  | Pexp_apply (f, _) -> expr_name f ^ " …"
  | Pexp_constraint (e, _) -> expr_name e
  | _ -> "…"

let pat_name (p : Parsetree.pattern) =
  match Rmodel.binding_name_of p with Some n -> n | None -> "_"

(* ------------------------------------------------------------------ *)
(* Environments and paths                                              *)
(* ------------------------------------------------------------------ *)

let env_find env n = Option.map force (List.assoc_opt n env)
let env_module env n = env_find env ("module:" ^ n)

type target =
  | T_local of value
  | T_binding of string * string  (** file path, binding name *)
  | T_contract of string * Contracts.t
  | T_pool of string
  | T_trusted of string
  | T_modcall of roots
  | T_unknown of string

let starts_with_scvad s =
  String.length s > 6 && String.sub s 0 6 = "Scvad_"

(* Resolve a dotted path against: local env (values and modules), the
   file's aliases, the global stem index, contracts, and the trusted
   runtime — in that order.  [Pool] is intercepted structurally. *)
let rec resolve_path ctx (file : Rmodel.file) env segs =
  match segs with
  | [] -> T_unknown "<empty path>"
  | [ s ] -> (
      match env_find env s with
      | Some v -> T_local v
      | None -> (
          (* Inside a nested module's binding, bare names resolve to
             siblings first: [take_snapshot] inside [Segmented] means
             [Segmented.take_snapshot]. *)
          let prefixed =
            match env_find env "#prefix" with
            | Some (Prim (p, _)) when Rmodel.lookup_binding file (p ^ s) <> None
              ->
                Some (p ^ s)
            | _ -> None
          in
          match prefixed with
          | Some name -> T_binding (file.f_path, name)
          | None -> (
              match Rmodel.lookup_binding file s with
              | Some _ -> T_binding (file.f_path, s)
              | None -> (
                  match Contracts.find [ s ] with
                  | Some ct -> T_contract (s, ct)
                  | None -> T_unknown s))))
  | "Stdlib" :: rest -> resolve_path ctx file env rest
  | [ "Scvad_par"; "Pool"; fn ] | [ "Pool"; fn ] -> T_pool fn
  | head :: rest -> (
      match env_module env head with
      | Some (Mod r) -> T_modcall r
      | Some (ModAlias p) -> resolve_path ctx file env (p @ rest)
      | Some _ -> T_unknown (String.concat "." segs)
      | None -> (
          match Hashtbl.find_opt file.f_aliases head with
          | Some p -> resolve_path ctx file env (p @ rest)
          | None ->
              if Contracts.trusted_module head then
                T_trusted (String.concat "." segs)
              else
                let hint_lib, segs' =
                  if starts_with_scvad head && rest <> [] then
                    (Some head, rest)
                  else (None, segs)
                in
                resolve_in_tree ctx file env ?hint_lib segs'))

and resolve_in_tree ctx file env ?hint_lib segs =
  match segs with
  | [] -> T_unknown "<empty path>"
  | [ "Pool"; fn ] -> T_pool fn
  | head :: rest -> (
      let near = Filename.dirname file.f_path in
      match Rmodel.resolve_stem ctx.model ?hint_lib ~near head with
      | Some path -> (
          match Rmodel.file ctx.model path with
          | None -> T_unknown (String.concat "." segs)
          | Some f -> (
              if rest = [] then T_unknown head
              else
                let name = String.concat "." rest in
                match Rmodel.lookup_binding f name with
                | Some _ -> T_binding (path, name)
                | None -> (
                    (* A re-exported alias inside that file, e.g.
                       [Tape.Segmented] as [module Segmented = …]. *)
                    match (Hashtbl.find_opt f.f_aliases (List.hd rest), rest)
                    with
                    | Some p, _ :: more ->
                        resolve_path ctx f env (p @ more)
                    | _ -> T_unknown (String.concat "." segs))))
      | None -> (
          match Contracts.find segs with
          | Some ct -> T_contract (String.concat "." segs, ct)
          | None ->
              if segs <> [] && Contracts.trusted_module head then
                T_trusted (String.concat "." segs)
              else T_unknown (String.concat "." segs)))

(* Resolution under [open]s: an unresolved path retries under every
   open in scope — expression-level [let open M in …] (as ["#open"]
   sentinels, innermost first), then the file's top-level opens, later
   ones first. *)
let resolve ctx file env segs =
  match resolve_path ctx file env segs with
  | T_unknown _ as base ->
      let opens =
        List.filter_map
          (fun (n, v) ->
            if n = "#open" then
              match v with ModAlias p -> Some p | _ -> None
            else None)
          env
        @ List.rev file.Rmodel.f_opens
      in
      let rec try_opens = function
        | [] -> base
        | p :: rest -> (
            match resolve_path ctx file env (p @ segs) with
            | T_unknown _ -> try_opens rest
            | t -> t)
      in
      try_opens opens
  | t -> t

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)
(* ------------------------------------------------------------------ *)

let pure_contract = { Contracts.c_args = []; c_result = Contracts.R_pure }

(* Names whose result is the element of their first argument, not just
   its roots — keeps structure flowing through option/list plumbing. *)
let elem_results =
  [ "Array.get"; "Array.unsafe_get"; "List.hd"; "List.nth"; "Option.get";
    "Option.value"; "!"; "List.find_opt"; "Hashtbl.find";
    "Hashtbl.find_opt"; "Queue.pop"; "Queue.take" ]

let max_via_depth = 4

let rec eval ctx (file : Rmodel.file) env (e : Parsetree.expression) : value =
  if ctx.fuel <= 0 then unknown
  else begin
    ctx.fuel <- ctx.fuel - 1;
    if ctx.fuel = 0 then
      obligation ctx
        (Printf.sprintf "analysis budget exhausted inside %s" ctx.via);
    match e.pexp_desc with
    | Pexp_ident lid -> eval_ident ctx file env (Rmodel.flatten lid.txt)
    | Pexp_constant (Pconst_integer (s, _)) -> (
        match int_of_string_opt s with
        | Some n -> Idx { scale = 0; offset = n }
        | None -> Pure)
    | Pexp_constant _ -> Pure
    | Pexp_let (rf, vbs, body) ->
        let env = eval_bindings ctx file env rf vbs in
        eval ctx file env body
    | Pexp_fun _ | Pexp_function _ ->
        Clo
          {
            cl_file = file.f_path;
            cl_ctx = ctx.via;
            cl_env = env;
            cl_expr = e;
            cl_pending = [];
          }
    | Pexp_apply (fe, args) ->
        let vargs = List.map (fun (l, a) -> (l, eval ctx file env a)) args in
        eval_call ctx file env fe args vargs e.pexp_loc
    | Pexp_match (scrut, cases) ->
        let v = eval ctx file env scrut in
        eval_cases ctx file env v cases
    | Pexp_try (body, cases) ->
        let v = eval ctx file env body in
        join v (eval_cases ctx file env unknown cases)
    | Pexp_tuple es -> Tup (List.map (eval ctx file env) es)
    | Pexp_construct (lid, arg) ->
        let args =
          match arg with None -> [] | Some a -> [ eval ctx file env a ]
        in
        Constr (Rmodel.last_segment lid.txt, args)
    | Pexp_variant (_, arg) ->
        let args =
          match arg with None -> [] | Some a -> [ eval ctx file env a ]
        in
        Constr ("`variant", args)
    | Pexp_record (fields, base) ->
        let base_roots, base_fields =
          match base with
          | None -> ([], [])
          | Some b -> (
              match force (eval ctx file env b) with
              | Rec r -> (r.r_roots, r.r_fields)
              | v -> (roots_of v, []))
        in
        let fields =
          List.map
            (fun (lid, fe) ->
              ( Rmodel.last_segment lid.Location.txt,
                eval ctx file env fe ))
            fields
        in
        let fields =
          List.fold_left
            (fun acc (n, v) ->
              if List.mem_assoc n acc then acc else (n, v) :: acc)
            fields base_fields
        in
        Rec { r_roots = union_roots [ Effects.Fresh ] base_roots;
              r_fields = fields }
    | Pexp_field (be, lid) ->
        let v = force (eval ctx file env be) in
        let fname = Rmodel.last_segment lid.txt in
        let base =
          match v with
          | Rec r -> (
              match List.assoc_opt fname r.r_fields with
              | Some fv -> force fv
              | None -> Obj { o_roots = roots_of v; o_app = true })
          | v -> Obj { o_roots = roots_of v; o_app = true }
        in
        heap_read ctx v ~field:fname base
    | Pexp_setfield (be, lid, ve) ->
        let target = eval ctx file env be in
        let fname = Rmodel.last_segment lid.txt in
        let stored = eval ctx file env ve in
        record_write ctx ~loc:e.pexp_loc ~region:Effects.All
          ~what:(expr_name be ^ "." ^ fname)
          target;
        heap_store ctx target ~field:fname stored;
        Pure
    | Pexp_array es ->
        Coll
          {
            c_roots = [ Effects.Fresh ];
            c_elem = join_all (List.map (eval ctx file env) es);
          }
    | Pexp_ifthenelse (c, t, eo) ->
        let _ = eval ctx file env c in
        let tv = eval ctx file env t in
        let ev =
          match eo with None -> Pure | Some e' -> eval ctx file env e'
        in
        join tv ev
    | Pexp_sequence (a, b) ->
        let _ = eval ctx file env a in
        eval ctx file env b
    | Pexp_while (c, b) ->
        (* One abstract pass covers the loop's write-roots: iteration
           count never changes which roots a body can reach. *)
        let _ = eval ctx file env c in
        let _ = eval ctx file env b in
        Pure
    | Pexp_for (pat, lo, hi, _, b) ->
        let _ = eval ctx file env lo in
        let _ = eval ctx file env hi in
        let env = (pat_name pat, Pure) :: env in
        let _ = eval ctx file env b in
        Pure
    | Pexp_constraint (e', _) -> eval ctx file env e'
    | Pexp_coerce (e', _, _) -> eval ctx file env e'
    | Pexp_assert e' ->
        let _ = eval ctx file env e' in
        Pure
    | Pexp_lazy e' -> eval ctx file env e'
    | Pexp_letmodule (name, mexpr, body) ->
        let mv = eval_module ctx file env mexpr in
        let env =
          match name.txt with
          | Some n -> (("module:" ^ n), mv) :: env
          | None -> env
        in
        eval ctx file env body
    | Pexp_letexception (_, body) -> eval ctx file env body
    | Pexp_open (od, body) ->
        let env =
          match od.popen_expr.pmod_desc with
          | Pmod_ident lid ->
              ("#open", ModAlias (Rmodel.flatten lid.txt)) :: env
          | _ -> env
        in
        eval ctx file env body
    | Pexp_newtype (_, body) -> eval ctx file env body
    | Pexp_pack mexpr ->
        premise ctx
          "module contract: packed modules carry no top-level mutable \
           state (@lint gate)";
        Mod (roots_of (eval_module ctx file env mexpr))
    | Pexp_extension _ | Pexp_unreachable -> Pure
    | Pexp_send (e', _) | Pexp_setinstvar (_, e') ->
        let _ = eval ctx file env e' in
        obligation ctx "object-oriented construct outside the modeled subset";
        unknown
    | Pexp_letop _ ->
        obligation ctx "binding operator outside the modeled subset";
        unknown
    | Pexp_new _ | Pexp_override _ | Pexp_object _ | Pexp_poly _ ->
        obligation ctx "object-oriented construct outside the modeled subset";
        unknown
  end

and eval_bindings ctx file env rf vbs =
  match rf with
  | Asttypes.Nonrecursive ->
      List.fold_left
        (fun env' (vb : Parsetree.value_binding) ->
          let v = eval ctx file env vb.pvb_expr in
          bind_pat ctx file env' vb.pvb_pat v)
        env vbs
  | Asttypes.Recursive ->
      (* Tie the knot with refs so local recursive helpers resolve;
         the reentry guard in [apply_closure] bounds the recursion. *)
      let cells =
        List.map
          (fun (vb : Parsetree.value_binding) ->
            (vb, Rmodel.binding_name_of vb.pvb_pat, ref Pure))
          vbs
      in
      let env' =
        List.fold_left
          (fun env' (_, n, cell) ->
            match n with Some n -> (n, VRef cell) :: env' | None -> env')
          env cells
      in
      List.iter
        (fun ((vb : Parsetree.value_binding), _, cell) ->
          cell := eval ctx file env' vb.pvb_expr)
        cells;
      env'

(* Lenient pattern binding: when the scrutinee's shape does not match
   the pattern (an abstract [Obj] against [Some x], say), every
   variable the pattern binds receives the scrutinee itself, so
   provenance is never dropped on a destructuring the interpreter
   could not follow precisely. *)
and bind_pat ctx file env (p : Parsetree.pattern) v =
  match p.ppat_desc with
  | Ppat_any | Ppat_constant _ | Ppat_interval _ | Ppat_type _ -> env
  | Ppat_var n -> (n.txt, v) :: env
  | Ppat_alias (p', n) -> (n.txt, v) :: bind_pat ctx file env p' v
  | Ppat_constraint (p', _) -> bind_pat ctx file env p' v
  | Ppat_lazy p' | Ppat_exception p' | Ppat_open (_, p') ->
      bind_pat ctx file env p' v
  | Ppat_tuple ps -> (
      match force v with
      | Tup vs when List.length vs = List.length ps ->
          List.fold_left2 (bind_pat ctx file) env ps vs
      | _ -> List.fold_left (fun env p' -> bind_pat ctx file env p' v) env ps)
  | Ppat_construct (_, None) -> env
  | Ppat_construct (_, Some (_, p')) -> (
      match force v with
      | Constr (_, [ a ]) -> bind_pat ctx file env p' a
      | Constr (_, (_ :: _ as vs)) -> bind_pat ctx file env p' (Tup vs)
      | _ -> bind_pat ctx file env p' v)
  | Ppat_variant (_, None) -> env
  | Ppat_variant (_, Some p') -> (
      match force v with
      | Constr (_, [ a ]) -> bind_pat ctx file env p' a
      | _ -> bind_pat ctx file env p' v)
  | Ppat_record (fields, _) ->
      List.fold_left
        (fun env (lid, p') ->
          let fname = Rmodel.last_segment lid.Location.txt in
          let fv =
            match force v with
            | Rec r -> (
                match List.assoc_opt fname r.r_fields with
                | Some fv -> force fv
                | None -> Obj { o_roots = roots_of v; o_app = true })
            | _ -> Obj { o_roots = roots_of v; o_app = true }
          in
          bind_pat ctx file env p' fv)
        env fields
  | Ppat_array ps ->
      let ev = elem_of v in
      List.fold_left (fun env p' -> bind_pat ctx file env p' ev) env ps
  | Ppat_or (a, b) ->
      bind_pat ctx file (bind_pat ctx file env a v) b v
  | Ppat_unpack n -> (
      premise ctx
        "module contract: packed modules carry no top-level mutable \
         state (@lint gate)";
      match n.txt with
      | Some m -> (("module:" ^ m), Mod []) :: env
      | None -> env)
  | Ppat_extension _ -> env

and eval_cases ctx file env v cases =
  join_all
    (List.map
       (fun (c : Parsetree.case) ->
         let env' = bind_pat ctx file env c.pc_lhs v in
         (match c.pc_guard with
         | Some g -> ignore (eval ctx file env' g)
         | None -> ());
         eval ctx file env' c.pc_rhs)
       cases)

and eval_ident ctx file env segs =
  match resolve ctx file env segs with
  | T_local v -> v
  | T_binding (path, name) -> (
      match Rmodel.file ctx.model path with
      | None -> unknown
      | Some f -> (
          match Rmodel.lookup_binding f name with
          | Some (Rmodel.Direct e)
            when match e.pexp_desc with
                 | Pexp_fun _ | Pexp_function _ -> true
                 | _ -> false ->
              Fnref (path, name)
          | Some _ -> force_binding ctx path name
          | None -> unknown))
  | T_contract (name, ct) -> Prim (name, ct)
  | T_pool fn -> Poolfn fn
  | T_trusted _ -> Prim ("trusted", pure_contract)
  | T_modcall r -> Obj { o_roots = r; o_app = true }
  | T_unknown _ ->
      (* An unresolved read: immutable under the lint-certified absence
         of top-level mutable state, so it carries no roots.  Only an
         unresolved {e call} becomes an obligation. *)
      unknown

(* Evaluate a non-function top-level binding on demand. *)
and force_binding ctx path name =
  match Rmodel.file ctx.model path with
  | None -> unknown
  | Some f -> (
      match Rmodel.lookup_binding f name with
      | None -> unknown
      | Some b ->
          let key = path ^ "#" ^ name in
          if List.mem_assoc key ctx.visiting then unknown
          else begin
            ctx.visiting <- (key, []) :: ctx.visiting;
            let prefix_env =
              match String.rindex_opt name '.' with
              | Some i ->
                  [ ("#prefix",
                     Prim (String.sub name 0 (i + 1), pure_contract)) ]
              | None -> []
            in
            let v =
              match b with
              | Rmodel.Direct e -> eval ctx f prefix_env e
              | Rmodel.Instanced (e, param, argpath) ->
                  eval ctx f
                    (("module:" ^ param, ModAlias argpath) :: prefix_env)
                    e
            in
            ctx.visiting <- List.remove_assoc key ctx.visiting;
            v
          end)

and eval_module ctx file env (m : Parsetree.module_expr) : value =
  match m.pmod_desc with
  | Pmod_ident lid -> (
      let segs = Rmodel.flatten lid.txt in
      match segs with
      | [ s ] -> (
          match env_module env s with
          | Some v -> v
          | None -> (
              match Hashtbl.find_opt file.f_aliases s with
              | Some p -> ModAlias p
              | None -> ModAlias segs))
      | head :: rest -> (
          match env_module env head with
          | Some (ModAlias p) -> ModAlias (p @ rest)
          | Some (Mod r) -> Mod r
          | _ -> (
              match Hashtbl.find_opt file.f_aliases head with
              | Some p -> ModAlias (p @ rest)
              | None -> ModAlias segs))
      | [] -> Mod [])
  | Pmod_structure items ->
      let roots = ref [] in
      List.iter
        (fun (it : Parsetree.structure_item) ->
          match it.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  roots :=
                    union_roots !roots
                      (roots_of (eval ctx file env vb.pvb_expr)))
                vbs
          | _ -> ())
        items;
      Mod !roots
  | Pmod_apply (fe, ae) ->
      premise ctx
        "module contract: a functor instance's mutable state is its \
         argument captures (@lint gate)";
      let fr = roots_of (eval_module ctx file env fe) in
      let ar = roots_of (eval_module ctx file env ae) in
      Mod (union_roots fr ar)
  | Pmod_constraint (m', _) -> eval_module ctx file env m'
  | Pmod_unpack e ->
      premise ctx
        "module contract: packed modules carry no top-level mutable \
         state (@lint gate)";
      ignore (eval ctx file env e);
      Mod []
  | Pmod_functor _ -> Mod []
  | Pmod_apply_unit m' -> eval_module ctx file env m'
  | Pmod_extension _ -> Mod []

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

and eval_call ctx file env fe syn_args vargs loc =
  match fe.Parsetree.pexp_desc with
  | Pexp_ident lid -> (
      let segs = Rmodel.flatten lid.txt in
      match resolve ctx file env segs with
      | T_local v -> apply_value ~loc ctx file env v vargs
      | T_binding (path, name) -> apply_fnref ctx path name vargs
      | T_contract (name, ct) ->
          contract_call ctx file env name ct syn_args vargs loc
      | T_pool fn -> pool_call ctx file env fn vargs loc
      | T_trusted p ->
          premise ctx
            (Printf.sprintf
               "trusted runtime: %s mutates only its own internal state"
               p);
          Pure
      | T_modcall r -> module_call ctx ~path:(String.concat "." segs) r vargs
      | T_unknown p ->
          obligation ctx (Printf.sprintf "unresolved call to %s" p);
          obj
            (List.fold_left
               (fun acc (_, v) -> union_roots acc (roots_of v))
               [] vargs))
  | _ ->
      let f = eval ctx file env fe in
      apply_value ~loc ctx file env f vargs

and apply_value ?(loc = Location.none) ctx file env f args =
  match force f with
  | Clo c -> apply_closure ctx c args
  | Fnref (path, name) -> apply_fnref ctx path name args
  | Prim ("trusted", _) ->
      premise ctx "trusted runtime: mutates only its own internal state";
      Pure
  | Prim (name, ct) ->
      contract_call ctx file env name ct [] args Location.none
  | Poolfn fn -> pool_call ctx file env fn args Location.none
  | Obj { o_roots = r; o_app = _ } ->
      (* Accessor contract: a function value whose provenance is rooted
         in [r] captures at most [r], so a call writes at most [r] plus
         its arguments and fresh allocations — there is no top-level
         mutable state for it to reach (@lint gate). *)
      premise ctx
        "accessor contract: functions read from a value write only that \
         value's state and fresh allocations";
      List.iter
        (fun (_, a) ->
          match force a with
          | Clo _ | Fnref _ ->
              ignore (apply_value ctx file env a [ (Asttypes.Nolabel, obj r) ])
          | _ -> ())
        args;
      if r <> [] then
        record_write ctx ~loc ~region:Effects.All
          ~what:"accessor application" (obj r);
      Obj { o_roots = r; o_app = true }
  | Mod _ ->
      obligation ctx "application of a module value outside the modeled subset";
      unknown
  | v ->
      let shape =
        match v with
        | Constr (n, _) -> "constructor " ^ n
        | Tup _ -> "tuple"
        | Coll _ -> "collection"
        | Rec _ -> "record"
        | Pure -> "immediate"
        | Idx _ -> "integer"
        | _ -> "opaque"
      in
      let where =
        if loc = Location.none then ctx.via
        else Printf.sprintf "%s (%s:%d)" ctx.via (file_of_loc loc)
            (line_of_loc loc)
      in
      obligation ctx
        (Printf.sprintf "call through an untracked %s value in %s" shape
           where);
      obj
        (List.fold_left
           (fun acc (_, a) -> union_roots acc (roots_of a))
           (roots_of v) args)

and apply_fnref ctx path name args =
  match Rmodel.file ctx.model path with
  | None -> unknown
  | Some f -> (
      match Rmodel.lookup_binding f name with
      | None -> unknown
      | Some b -> (
          let prefix_env =
            match String.rindex_opt name '.' with
            | Some i ->
                [ ("#prefix",
                   Prim (String.sub name 0 (i + 1), pure_contract)) ]
            | None -> []
          in
          let expr, base_env =
            match b with
            | Rmodel.Direct e -> (e, prefix_env)
            | Rmodel.Instanced (e, param, argpath) ->
                (e, ("module:" ^ param, ModAlias argpath) :: prefix_env)
          in
          match expr.pexp_desc with
          | Pexp_fun _ | Pexp_function _ ->
              let key = path ^ "#" ^ name in
              let arg_roots =
                List.fold_left
                  (fun acc (_, v) -> union_roots acc (roots_of v))
                  [] args
              in
              (match List.assoc_opt key ctx.visiting with
              | Some seen ->
                  if
                    List.for_all
                      (fun r -> List.mem r seen)
                      arg_roots
                  then obj arg_roots
                  else begin
                    obligation ctx
                      (Printf.sprintf
                         "recursive call to %s with widening provenance"
                         name);
                    obj arg_roots
                  end
              | None ->
                  ctx.visiting <- (key, arg_roots) :: ctx.visiting;
                  let v =
                    apply_closure ctx
                      {
                        cl_file = path;
                        cl_ctx = name;
                        cl_env = base_env;
                        cl_expr = expr;
                        cl_pending = [];
                      }
                      args
                  in
                  ctx.visiting <- List.remove_assoc key ctx.visiting;
                  v)
          | _ ->
              let v = force_binding ctx path name in
              if args = [] then v
              else
                let file' =
                  Option.value (Rmodel.file ctx.model path) ~default:f
                in
                apply_value ctx file' [] v args))

and apply_closure ctx (c : closure) args =
  let file =
    match Rmodel.file ctx.model c.cl_file with
    | Some f -> f
    | None ->
        (* Closures always come from a scanned file; a miss means the
           model was rebuilt underneath us. *)
        raise Not_found
  in
  let key =
    Printf.sprintf "%s@%d:%d" c.cl_file
      c.cl_expr.pexp_loc.loc_start.Lexing.pos_lnum
      c.cl_expr.pexp_loc.loc_start.Lexing.pos_cnum
  in
  if List.mem_assoc key ctx.visiting then
    (* Reentrant application of the same closure: the outer activation
       already collects the body's writes. *)
    obj
      (List.fold_left
         (fun acc (_, v) -> union_roots acc (roots_of v))
         [] args)
  else begin
    ctx.visiting <- (key, []) :: ctx.visiting;
    let v = consume ctx file c.cl_env c.cl_expr (c.cl_pending @ args) c in
    ctx.visiting <- List.remove_assoc key ctx.visiting;
    v
  end

(* Walk the parameter spine, consuming pending arguments by label.
   Unsupplied optional parameters take their defaults; exhausted
   arguments yield a partial-application closure. *)
and consume ctx file env (e : Parsetree.expression) pending (orig : closure) =
  match e.pexp_desc with
  | Pexp_newtype (_, body) -> consume ctx file env body pending orig
  | Pexp_fun (lbl, default, pat, body) -> (
      let take_label name =
        let rec go acc = function
          | [] -> None
          | (l, v) :: rest
            when l = Asttypes.Labelled name || l = Asttypes.Optional name ->
              Some (v, List.rev_append acc rest)
          | x :: rest -> go (x :: acc) rest
        in
        go [] pending
      in
      let take_positional () =
        let rec go acc = function
          | [] -> None
          | (Asttypes.Nolabel, v) :: rest ->
              Some (v, List.rev_append acc rest)
          | x :: rest -> go (x :: acc) rest
        in
        go [] pending
      in
      match lbl with
      | Asttypes.Optional name -> (
          match take_label name with
          | Some (v, rest) ->
              (* A [?l:expr] argument passes the option itself; a [~l]
                 argument the payload — lenient matching absorbs both. *)
              consume ctx file (bind_pat ctx file env pat v) body rest orig
          | None ->
              if pending = [] then
                Clo { orig with cl_env = env; cl_expr = e; cl_pending = [] }
              else
                let dv =
                  match default with
                  | Some d -> eval ctx file env d
                  | None -> Constr ("None", [])
                in
                consume ctx file (bind_pat ctx file env pat dv) body pending
                  orig)
      | Asttypes.Labelled name -> (
          match take_label name with
          | Some (v, rest) ->
              consume ctx file (bind_pat ctx file env pat v) body rest orig
          | None -> (
              match take_positional () with
              | Some (v, rest) ->
                  consume ctx file (bind_pat ctx file env pat v) body rest
                    orig
              | None ->
                  Clo { orig with cl_env = env; cl_expr = e; cl_pending = [] }
              ))
      | Asttypes.Nolabel -> (
          match take_positional () with
          | Some (v, rest) ->
              consume ctx file (bind_pat ctx file env pat v) body rest orig
          | None ->
              Clo
                { orig with cl_env = env; cl_expr = e; cl_pending = pending }
          ))
  | Pexp_function cases -> (
      let rec take acc = function
        | [] -> None
        | (Asttypes.Nolabel, v) :: rest -> Some (v, List.rev_append acc rest)
        | x :: rest -> take (x :: acc) rest
      in
      match take [] pending with
      | None -> Clo { orig with cl_env = env; cl_expr = e; cl_pending = pending }
      | Some (v, rest) ->
          let r = eval_cases ctx file env v cases in
          if rest = [] then r else apply_value ctx file env r rest)
  | _ ->
      let r = eval ctx file env e in
      if pending = [] then r else apply_value ctx file env r pending

(* Contract-mediated call: record writes at [Written] positions (with
   an affine region when the index argument is index-affine), re-enter
   [Applied] closures, and shape the result. *)
and contract_call ctx file env name (ct : Contracts.t) syn_args vargs loc =
  (* Index-affine arithmetic keeps [Idx] flowing through address
     computations like [2 * i + 1]. *)
  let arith () =
    match (name, List.map (fun (_, v) -> force v) vargs) with
    | "+", [ Idx a; Idx b ] ->
        Some (Idx { scale = a.scale + b.scale; offset = a.offset + b.offset })
    | "-", [ Idx a; Idx b ] ->
        Some (Idx { scale = a.scale - b.scale; offset = a.offset - b.offset })
    | "*", [ Idx { scale = 0; offset = k }; Idx b ] ->
        Some (Idx { scale = k * b.scale; offset = k * b.offset })
    | "*", [ Idx a; Idx { scale = 0; offset = k } ] ->
        Some (Idx { scale = k * a.scale; offset = k * a.offset })
    | "succ", [ Idx a ] -> Some (Idx { a with offset = a.offset + 1 })
    | "pred", [ Idx a ] -> Some (Idx { a with offset = a.offset - 1 })
    | _ -> None
  in
  match arith () with
  | Some v -> v
  | None ->
      let nth_value i =
        match List.nth_opt vargs i with
        | Some (_, v) -> Some v
        | None -> None
      in
      let nth_syn i =
        match List.nth_opt syn_args i with
        | Some (_, e) -> expr_name e
        | None -> "…"
      in
      List.iteri
        (fun i (_, v) ->
          match Contracts.arg_use ct i with
          | Contracts.Read | Contracts.Applied -> ()
          | Contracts.Written ->
              record_write ctx ~loc ~region:Effects.All
                ~what:(name ^ " " ^ nth_syn i) v
          | Contracts.Written_at j ->
              let region =
                match Option.map force (nth_value j) with
                | Some (Idx { scale; offset }) ->
                    Effects.Affine { scale; offset }
                | _ -> Effects.All
              in
              record_write ctx ~loc ~region ~what:(name ^ " " ^ nth_syn i) v)
        vargs;
      (* Element stores: a value deposited into a written container
         ([Array.set snaps s (Some cap)]) must reach later element
         reads, so it goes to the heap under the target's roots. *)
      List.iteri
        (fun i (_, target) ->
          match Contracts.arg_use ct i with
          | Contracts.Written | Contracts.Written_at _ ->
              List.iteri
                (fun j (_, v) ->
                  match Contracts.arg_use ct j with
                  | Contracts.Read when j <> i ->
                      heap_store ctx target ~field:"!elem" v
                  | _ -> ())
                vargs
          | _ -> ())
        vargs;
      (* Opaque element the callee feeds its callbacks. *)
      let op_arg =
        join_all
          (List.filter_map
             (fun (i, (_, v)) ->
               match Contracts.arg_use ct i with
               | Contracts.Applied -> None
               | _ -> Some (elem_of v))
             (List.mapi (fun i a -> (i, a)) vargs))
      in
      let applied =
        List.filter_map
          (fun (i, (_, v)) ->
            match (Contracts.arg_use ct i, force v) with
            | Contracts.Applied, (Clo _ | Fnref _ | Prim _) ->
                let r =
                  ref (apply_value ctx file env v [ (Asttypes.Nolabel, op_arg) ])
                in
                let budget = ref 2 in
                let continue_ = ref true in
                while !continue_ && !budget > 0 do
                  match force !r with
                  | Clo { cl_expr = { pexp_desc = Pexp_fun _ | Pexp_function _;
                                      _ };
                          _ } ->
                      r :=
                        apply_value ctx file env !r
                          [ (Asttypes.Nolabel, op_arg) ];
                      decr budget
                  | _ -> continue_ := false
                done;
                Some !r
            | _ -> None)
          (List.mapi (fun i a -> (i, a)) vargs)
      in
      let arg_roots =
        List.fold_left
          (fun acc (_, v) -> union_roots acc (roots_of v))
          [] vargs
      in
      let base =
        match ct.Contracts.c_result with
        | Contracts.R_pure -> Pure
        | Contracts.R_view ->
            if List.mem name elem_results then
              match vargs with
              | (_, v) :: _ ->
                  (* Element reads join the heap: a closure stored by
                     [Array.set snaps s (Some cap)] resurfaces here. *)
                  heap_read ctx v ~field:"!elem" (elem_of v)
              | [] -> Pure
            else if arg_roots = [] then Pure
            else obj arg_roots
        | Contracts.R_alloc ->
            (* Elements of a fresh container come from the data
               arguments; an [Applied] closure contributes its results
               (joined below), not itself. *)
            Coll
              {
                c_roots = [ Effects.Fresh ];
                c_elem =
                  join_all
                    (List.filteri
                       (fun i _ -> Contracts.arg_use ct i <> Contracts.Applied)
                       vargs
                    |> List.map (fun (_, v) -> elem_of v));
              }
      in
      join_all (base :: applied)

(* The module contract, for calls through module values the scanned
   tree cannot resolve (functor instances over first-class modules):
   such a call may write its arguments and the module's creation
   captures, and returns a value rooted in all of them plus fresh
   allocations.  Justified by the lint-certified absence of top-level
   mutable state: a module function has nothing else to reach. *)
and module_call ctx ~path r vargs =
  premise ctx
    "module contract: module functions write state reachable from their \
     positional arguments and creation captures; labelled arguments are \
     control scalars (@lint gate, sanitizer-falsified)";
  let arg_roots =
    List.fold_left
      (fun acc (l, v) ->
        match l with
        | Asttypes.Nolabel -> union_roots acc (roots_of v)
        | Asttypes.Labelled _ | Asttypes.Optional _ -> acc)
      [] vargs
  in
  let touched = union_roots r arg_roots in
  if touched <> [] then
    record_write ctx ~loc:Location.none ~region:Effects.All
      ~what:("call " ^ path) (obj touched);
  List.iter
    (fun (_, v) ->
      match force v with
      | Clo _ | Fnref _ ->
          ignore
            (apply_value ctx
               (match Rmodel.file ctx.model "" with
               | Some f -> f
               | None -> Obj.magic ())
               [] v
               [ (Asttypes.Nolabel, obj touched) ])
      | _ -> ())
    vargs;
  Obj { o_roots = union_roots [ Effects.Fresh ] touched; o_app = true }

(* ------------------------------------------------------------------ *)
(* Pool primitives and the site hook                                   *)
(* ------------------------------------------------------------------ *)

and pool_call ctx file env fn vargs loc =
  let nolabels = List.filter_map
      (fun (l, v) -> if l = Asttypes.Nolabel then Some v else None)
      vargs
  in
  let record_flow kind f =
    match force f with
    | Clo c -> add_flow ctx ~loc ~kind c
    | Fnref (path, name) -> (
        match
          Option.bind (Rmodel.file ctx.model path) (fun fl ->
              Rmodel.lookup_binding fl name)
        with
        | Some (Rmodel.Direct e) ->
            add_flow ctx ~loc ~kind
              { cl_file = path; cl_ctx = name; cl_env = []; cl_expr = e;
                cl_pending = [] }
        | _ -> ())
    | _ ->
        (* An abstract closure (an opaque parameter): this evaluation is
           a generic helper context; concrete flows reach the same site
           from the helper's callers. *)
        ()
  in
  match fn with
  | "map" -> (
      match nolabels with
      | _pool :: f :: rest ->
          record_flow Verdict.Map f;
          let elem =
            match rest with x :: _ -> elem_of x | [] -> Pure
          in
          let r = apply_value ctx file env f [ (Asttypes.Nolabel, elem) ] in
          Coll { c_roots = [ Effects.Fresh ]; c_elem = r }
      | _ -> unknown)
  | "init" -> (
      match nolabels with
      | _pool :: _n :: f :: _ ->
          record_flow Verdict.Init f;
          let r = apply_value ctx file env f [ (Asttypes.Nolabel, Pure) ] in
          Coll { c_roots = [ Effects.Fresh ]; c_elem = r }
      | _ -> unknown)
  | "with_pool" -> (
      let f =
        List.find_opt
          (fun v -> match force v with Clo _ | Fnref _ -> true | _ -> false)
          nolabels
      in
      match f with
      | Some f ->
          apply_value ctx file env f
            [ (Asttypes.Nolabel, obj [ Effects.Ext "pool" ]) ]
      | None -> Pure)
  | _ -> Pure

and add_flow ctx ~loc ~kind (c : closure) =
  let sfile = file_of_loc loc and sline = line_of_loc loc in
  let key = Printf.sprintf "%s:%d" sfile sline in
  let site =
    match Hashtbl.find_opt ctx.sites key with
    | Some s -> s
    | None ->
        let s =
          { Verdict.st_file = sfile; st_line = sline; st_kind = kind;
            st_context = ctx.via }
        in
        Hashtbl.replace ctx.sites key s;
        ctx.site_order <- ctx.site_order @ [ key ];
        s
  in
  let def_line = c.cl_expr.pexp_loc.loc_start.Lexing.pos_lnum in
  let fkey =
    Printf.sprintf "%s|%s:%d|%s" (Verdict.site_key site) c.cl_file def_line
      ctx.via
  in
  let depth =
    List.length (String.split_on_char '>' ctx.via) - 1
  in
  if (not (Hashtbl.mem ctx.seen_flows fkey)) && depth <= max_via_depth then begin
    Hashtbl.replace ctx.seen_flows fkey ();
    ctx.queue <-
      ctx.queue @ [ { q_site = site; q_kind = kind; q_clo = c; q_via = ctx.via } ]
  end

(* ------------------------------------------------------------------ *)
(* Syntactic site discovery                                            *)
(* ------------------------------------------------------------------ *)

(* Every textual [Pool.map]/[Pool.init] application in the scanned
   tree, independent of whether any evaluation reaches it: the gate
   requires all of them classified, so an unreachable or unreached site
   must surface as [Unknown], not vanish. *)
let scan_sites model ctx =
  Hashtbl.iter
    (fun _ (f : Rmodel.file) ->
      let context = ref "" in
      let expr_iter (it : Ast_iterator.iterator) (e : Parsetree.expression) =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _) -> (
            let segs = Rmodel.flatten lid.txt in
            let segs =
              match segs with
              | head :: rest -> (
                  match Hashtbl.find_opt f.f_aliases head with
                  | Some p -> p @ rest
                  | None -> segs)
              | [] -> segs
            in
            match segs with
            | [ "Scvad_par"; "Pool"; ("map" | "init") ]
            | [ "Pool"; ("map" | "init") ] ->
                let kind =
                  if List.exists (( = ) "init") segs then Verdict.Init
                  else Verdict.Map
                in
                let key =
                  Printf.sprintf "%s:%d" (file_of_loc e.pexp_loc)
                    (line_of_loc e.pexp_loc)
                in
                if not (Hashtbl.mem ctx.sites key) then begin
                  Hashtbl.replace ctx.sites key
                    {
                      Verdict.st_file = file_of_loc e.pexp_loc;
                      st_line = line_of_loc e.pexp_loc;
                      st_kind = kind;
                      st_context = !context;
                    };
                  ctx.site_order <- ctx.site_order @ [ key ]
                end
            | _ -> ())
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
      in
      let iter = { Ast_iterator.default_iterator with expr = expr_iter } in
      List.iter
        (fun name ->
          context := name;
          match Hashtbl.find_opt f.f_bindings name with
          | Some e -> iter.expr iter e
          | None -> ())
        f.f_order)
    model.Rmodel.files

(* ------------------------------------------------------------------ *)
(* Driving: entries, then the flow queue                               *)
(* ------------------------------------------------------------------ *)

type analyzed_flow = {
  a_site : Verdict.site;
  a_kind : Verdict.site_kind;
  a_flow : Verdict.flow;
}

type result = {
  sites : Verdict.site list;  (** discovery order *)
  flows : analyzed_flow list;
}

let entry_files model =
  Hashtbl.fold
    (fun path (f : Rmodel.file) acc ->
      let src = try Rmodel.read_file path with Sys_error _ -> "" in
      let mentions needle =
        let nl = String.length needle and sl = String.length src in
        let rec go i =
          i + nl <= sl && (String.sub src i nl = needle || go (i + 1))
        in
        go 0
      in
      if mentions "Pool." || mentions "fan_run" then f :: acc else acc)
    model.Rmodel.files []
  |> List.sort (fun (a : Rmodel.file) b -> compare a.f_path b.f_path)

(* Apply an entry function to opaque, externally-rooted arguments. *)
let entry_args (e : Parsetree.expression) =
  let rec go acc (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_newtype (_, body) -> go acc body
    | Pexp_fun (Asttypes.Optional _, _, _, body) -> go acc body
    | Pexp_fun (lbl, _, pat, body) ->
        let name = pat_name pat in
        go ((lbl, obj [ Effects.Ext ("param:" ^ name) ]) :: acc) body
    | Pexp_function _ ->
        (Asttypes.Nolabel, obj [ Effects.Ext "param:arg" ]) :: acc
    | _ -> acc
  in
  List.rev (go [] e)

let reset_summary ctx =
  ctx.fuel <- entry_fuel;
  ctx.writes <- [];
  ctx.obligations <- [];
  ctx.premises <- [];
  ctx.visiting <- [];
  Hashtbl.reset ctx.heap

let summary_of ctx =
  {
    Effects.sm_writes = Effects.dedup_writes ctx.writes;
    sm_obligations = Effects.dedup_strings ctx.obligations;
    sm_premises = Effects.dedup_strings ctx.premises;
  }

let analyze_flow ctx (fl : flow_item) =
  reset_summary ctx;
  ctx.via <- fl.q_via ^ ">" ^ fl.q_site.Verdict.st_context;
  let c = reroot_closure fl.q_clo in
  let arg =
    match fl.q_kind with
    | Verdict.Map -> Obj { o_roots = [ Effects.Shard ]; o_app = false }
    | Verdict.Init -> Idx { scale = 1; offset = 0 }
  in
  (try ignore (apply_closure ctx c [ (Asttypes.Nolabel, arg) ])
   with Not_found | Stack_overflow ->
     obligation ctx "shard closure evaluation failed");
  {
    a_site = fl.q_site;
    a_kind = fl.q_kind;
    a_flow =
      {
        Verdict.fl_def_file = fl.q_clo.cl_file;
        fl_def_line = fl.q_clo.cl_expr.pexp_loc.loc_start.Lexing.pos_lnum;
        fl_via = fl.q_via;
        fl_summary = summary_of ctx;
      };
  }

let run model =
  let ctx =
    {
      model;
      sites = Hashtbl.create 16;
      site_order = [];
      queue = [];
      seen_flows = Hashtbl.create 64;
      heap = Hashtbl.create 64;
      fuel = entry_fuel;
      writes = [];
      obligations = [];
      premises = [];
      visiting = [];
      via = "";
    }
  in
  scan_sites model ctx;
  List.iter
    (fun (f : Rmodel.file) ->
      List.iter
        (fun name ->
          match Hashtbl.find_opt f.f_bindings name with
          | Some e -> (
              reset_summary ctx;
              ctx.via <- name;
              try
                match e.pexp_desc with
                | Pexp_fun _ | Pexp_function _ ->
                    ignore (apply_fnref ctx f.f_path name (entry_args e))
                | _ -> ignore (eval ctx f [] e)
              with Not_found | Stack_overflow -> ())
          | None -> ())
        f.f_order)
    (entry_files model);
  let flows = ref [] in
  let guard = ref 0 in
  let rec drain () =
    match ctx.queue with
    | [] -> ()
    | fl :: rest when !guard < 256 ->
        incr guard;
        ctx.queue <- rest;
        flows := analyze_flow ctx fl :: !flows;
        drain ()
    | _ -> ()
  in
  drain ();
  {
    sites =
      List.filter_map (Hashtbl.find_opt ctx.sites) ctx.site_order;
    flows = List.rev !flows;
  }
