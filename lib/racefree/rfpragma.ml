(* [(* racefree: assume disjoint <context> — <reason> *)] pragmas on
   the shared assume-pragma functor: the escape hatch for fan-out sites
   the static pass cannot classify.  The tag names the site's enclosing
   top-level binding (its pragma subject — stable across line drift),
   so one pragma covers exactly one fan-out context in its file.  The
   usual family semantics apply: a justification is mandatory, a stale
   pragma is a warning, and the @race-check gate re-reports every
   assumption so they cannot silently accumulate. *)

module Pragma = Scvad_lint.Pragma

module Grammar = struct
  type tag = string (* enclosing-binding name the assumption covers *)

  let keyword = "racefree"

  let parse_words = function
    | [ "disjoint"; context ] -> Ok context
    | [] -> Error "racefree pragma: missing tag (expected: disjoint <context>)"
    | ws ->
        Error
          (Printf.sprintf
             "racefree pragma: unknown tag %S (expected: disjoint <context>)"
             (String.concat " " ws))

  let subject_of t = t
end

module A = Pragma.Assume (Grammar)

type t = A.t

let scan = A.scan
let unused = A.unused

(* An assumption covers a site when its subject names the site's
   context; anchored to the site line like every assume pragma, with
   the file-wide fallback for contexts whose Pool call moved. *)
let assume t ~context ~line =
  match A.assume t ~subject:context ~line with
  | Some _ as r -> r
  | None -> A.assume_anywhere t ~subject:context
