(* The write-effect domain of the race-freedom pass.

   A fan-out closure's behaviour is abstracted to the set of mutable
   roots it may write through.  Roots are relative to the closure
   boundary: [Fresh] is state the closure itself allocated (each shard
   gets its own), [Shard] is the closure's own argument (the datum of a
   [Pool.map] shard or the index-selected slot of a [Pool.init] shard),
   and [Ext] is anything captured from the enclosing scope — the only
   kind two shards can genuinely share.

   Writes carry an element region so index-disjoint sharding is
   provable: a [Pool.init] closure writing [shared.(2*i + 1)] for shard
   index [i] has an affine region with scale 2, and {!Disjoint} decides
   whether a family of affine writes can collide across shards. *)

type root =
  | Fresh  (** allocated inside the closure: private to the shard *)
  | Shard  (** the shard's own datum / index slot *)
  | Ext of string  (** captured from outside the closure: shared *)

let root_name = function
  | Fresh -> "fresh"
  | Shard -> "shard"
  | Ext s -> "ext:" ^ s

let compare_root (a : root) (b : root) = compare a b

(* Element region of one write, in terms of the shard index [i] (only
   [Pool.init] closures have one; [Pool.map] writes are [All]). *)
type region =
  | All  (** unknown extent: may touch any element *)
  | Affine of { scale : int; offset : int }
      (** exactly element [scale * i + offset] *)

let region_name = function
  | All -> "all"
  | Affine { scale; offset } -> Printf.sprintf "%d*i%+d" scale offset

type write = {
  wr_root : root;
  wr_region : region;
  wr_file : string;
  wr_line : int;
  wr_what : string;  (** rendered target, e.g. ["Array.set out"] *)
}

let write_site w = Printf.sprintf "%s:%d" w.wr_file w.wr_line

let write_to_text w =
  Printf.sprintf "%s:%d: %s -> %s [%s]" w.wr_file w.wr_line w.wr_what
    (root_name w.wr_root) (region_name w.wr_region)

(* What one closure does, as far as the interpreter could see.  An
   obligation is a fact the analysis needed and could not establish —
   an unresolvable call, an exhausted budget, a value it lost track
   of.  Obligations force the [Unknown] verdict: the pass reports what
   it failed to prove, it never guesses. *)
type summary = {
  sm_writes : write list;
  sm_obligations : string list;
  sm_premises : string list;
      (** documented contracts the proof leans on (module contract,
          accessor contract, trusted pool/sanitizer primitives) *)
}

let empty = { sm_writes = []; sm_obligations = []; sm_premises = [] }

let dedup_strings l = List.sort_uniq String.compare l

let dedup_writes ws =
  List.sort_uniq
    (fun a b ->
      compare
        (a.wr_root, a.wr_region, a.wr_file, a.wr_line, a.wr_what)
        (b.wr_root, b.wr_region, b.wr_file, b.wr_line, b.wr_what))
    ws

let merge a b =
  {
    sm_writes = dedup_writes (a.sm_writes @ b.sm_writes);
    sm_obligations = dedup_strings (a.sm_obligations @ b.sm_obligations);
    sm_premises = dedup_strings (a.sm_premises @ b.sm_premises);
  }

let ext_writes s =
  List.filter (fun w -> match w.wr_root with Ext _ -> true | _ -> false)
    s.sm_writes

let shard_writes s = List.filter (fun w -> w.wr_root = Shard) s.sm_writes
let fresh_writes s = List.filter (fun w -> w.wr_root = Fresh) s.sm_writes
