(* Whole-tree source model for the race-freedom pass.

   Unlike the per-kernel {!Scvad_activity.Model} (one NPB file at a
   time), the race pass is interprocedural across libraries: a closure
   passed to [Pool.map] in [lib/core] may be defined from values built
   in [lib/ad].  So the model here is the parsed forest of every [.ml]
   under the scanned roots, with a per-file table of top-level bindings
   (nested [module M = struct … end] bindings included, dotted), module
   aliases, and a global stem index for resolving [Tape.create]-style
   cross-file references.  [lib/par] and [lib/sanitize] are excluded by
   construction: the pool and the sanitizer are the trusted runtime the
   certification is {e about}, modeled as primitives by the
   interpreter.  The analysis passes themselves ([lib/lint],
   [lib/racefree]) are excluded too — dev-time tooling that never runs
   under the pool, and whose prose happens to name [Pool.map].  Longident helpers are shared with the activity pass
   ({!Scvad_activity.Model.flatten} etc). *)

module AModel = Scvad_activity.Model
module Finding = Scvad_lint.Finding

let flatten = AModel.flatten
let last_segment = AModel.last_segment
let line_of = AModel.line_of
let binding_name_of = AModel.binding_name_of

type file = {
  f_path : string;
  f_stem : string;  (** module stem, capitalized, e.g. ["Tape"] *)
  f_lib : string option;  (** dune library name owning the file *)
  f_bindings : (string, Parsetree.expression) Hashtbl.t;
      (** top-level (and dotted nested-module) bindings *)
  mutable f_order : string list;  (** binding names in source order *)
  f_aliases : (string, string list) Hashtbl.t;
      (** [module P = Long.Path] aliases *)
  f_functors : (string, string) Hashtbl.t;
      (** functor name -> first named parameter, for bindings collected
          under the functor's prefix *)
  f_instances : (string, string * string list) Hashtbl.t;
      (** [module S = F (Arg)] instances: name -> (functor, arg path) *)
  mutable f_opens : string list list;
      (** top-level [open M] paths, in source order *)
  f_structure : Parsetree.structure;
}

type t = {
  files : (string, file) Hashtbl.t;  (** keyed by path *)
  stems : (string, string list) Hashtbl.t;  (** stem -> paths *)
  libs : (string, string) Hashtbl.t;  (** dune library name -> dir *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error _ ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum;
          message = "syntax error: the file does not parse";
          severity = Finding.Error;
        }
  | exception Lexer.Error (_, loc) ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = loc.Location.loc_start.Lexing.pos_lnum;
          message = "lexing error: the file does not parse";
          severity = Finding.Error;
        }

let capitalize_stem path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Collect a structure's bindings into [f], prefixing names bound
   inside [module M = struct … end] with ["M."] so cross-file paths
   like [Tape.Segmented.backward] resolve to ["Segmented.backward"]
   within tape.ml. *)
let rec collect_structure f ~prefix (items : Parsetree.structure) =
  List.iter
    (fun (it : Parsetree.structure_item) ->
      match it.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match binding_name_of vb.pvb_pat with
              | Some name ->
                  let name = prefix ^ name in
                  if not (Hashtbl.mem f.f_bindings name) then begin
                    Hashtbl.replace f.f_bindings name vb.pvb_expr;
                    f.f_order <- name :: f.f_order
                  end
              | None -> ())
            vbs
      | Pstr_module mb -> (
          match mb.pmb_name.Location.txt with
          | None -> ()
          | Some m -> (
              (* [module X : SIG = struct … end] and functor-result
                 constraints both wrap the interesting expression. *)
              let rec unwrap (me : Parsetree.module_expr) =
                match me.pmod_desc with
                | Pmod_constraint (inner, _) -> unwrap inner
                | d -> d
              in
              match unwrap mb.pmb_expr with
              | Pmod_ident lid ->
                  Hashtbl.replace f.f_aliases (prefix ^ m)
                    (flatten lid.Location.txt)
              | Pmod_structure items ->
                  collect_structure f ~prefix:(prefix ^ m ^ ".") items
              | Pmod_functor (Named ({ txt = Some p; _ }, _), body) -> (
                  match unwrap body with
                  | Pmod_structure items ->
                      Hashtbl.replace f.f_functors (prefix ^ m) p;
                      collect_structure f ~prefix:(prefix ^ m ^ ".") items
                  | _ -> ())
              | Pmod_apply (fe, ae) -> (
                  match (unwrap fe, unwrap ae) with
                  | Pmod_ident flid, Pmod_ident alid ->
                      Hashtbl.replace f.f_instances (prefix ^ m)
                        ( String.concat "." (flatten flid.Location.txt),
                          flatten alid.Location.txt )
                  | _ -> ())
              | _ -> ()))
      | Pstr_open od -> (
          match od.popen_expr.pmod_desc with
          | Pmod_ident lid ->
              f.f_opens <- f.f_opens @ [ flatten lid.Location.txt ]
          | _ -> ())
      | Pstr_recmodule _ | Pstr_modtype _ | Pstr_type _ | Pstr_typext _
      | Pstr_exception _ | Pstr_primitive _ | Pstr_class _
      | Pstr_class_type _ | Pstr_include _ | Pstr_attribute _
      | Pstr_extension _ | Pstr_eval _ ->
          ())
    items

let library_of_dune dir =
  let dune = Filename.concat dir "dune" in
  if not (Sys.file_exists dune) then None
  else
    let s = read_file dune in
    (* First "(name <x>)" wins — every lib dir here has one library. *)
    let rec find i =
      match String.index_from_opt s i '(' with
      | None -> None
      | Some j ->
          let rest = String.sub s (j + 1) (String.length s - j - 1) in
          if
            String.length rest > 5
            && String.sub rest 0 5 = "name "
          then
            let k = ref 5 in
            while
              !k < String.length rest
              && not (List.mem rest.[!k] [ ')'; ' '; '\n' ])
            do
              incr k
            done;
            Some (String.trim (String.sub rest 5 (!k - 5)))
          else find (j + 1)
    in
    find 0

let excluded_dirs = [ "par"; "sanitize"; "lint"; "racefree" ]

let ml_files_under root =
  (* lib/<dir>/*.ml, skipping the trusted runtime and the analysis
     passes. *)
  if not (Sys.file_exists root && Sys.is_directory root) then []
  else
    Sys.readdir root |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun d ->
           let dir = Filename.concat root d in
           if
             (not (Sys.is_directory dir))
             || List.mem d excluded_dirs
             || String.length d > 0
                && (d.[0] = '_' || d.[0] = '.')
           then []
           else
             Sys.readdir dir |> Array.to_list |> List.sort String.compare
             |> List.filter_map (fun fn ->
                    if Filename.check_suffix fn ".ml" then
                      Some (Filename.concat dir fn)
                    else None))

let load ~root =
  let t =
    { files = Hashtbl.create 64; stems = Hashtbl.create 64;
      libs = Hashtbl.create 16 }
  in
  let findings = ref [] in
  List.iter
    (fun path ->
      match parse ~file:path (read_file path) with
      | Error f -> findings := f :: !findings
      | Ok ast ->
          let dir = Filename.dirname path in
          (match library_of_dune dir with
          | Some lib when not (Hashtbl.mem t.libs lib) ->
              Hashtbl.replace t.libs lib dir
          | _ -> ());
          let f =
            {
              f_path = path;
              f_stem = capitalize_stem path;
              f_lib = library_of_dune dir;
              f_bindings = Hashtbl.create 32;
              f_order = [];
              f_aliases = Hashtbl.create 8;
              f_functors = Hashtbl.create 4;
              f_instances = Hashtbl.create 4;
              f_opens = [];
              f_structure = ast;
            }
          in
          collect_structure f ~prefix:"" ast;
          f.f_order <- List.rev f.f_order;
          Hashtbl.replace t.files path f;
          let prev =
            Option.value (Hashtbl.find_opt t.stems f.f_stem) ~default:[]
          in
          Hashtbl.replace t.stems f.f_stem (prev @ [ path ]))
    (ml_files_under root);
  (t, List.rev !findings)

let file t path = Hashtbl.find_opt t.files path

(* A binding looked up by (possibly dotted) name.  [Instanced] routes
   [Segmented.backward] through [module Segmented = Make (Tape.Segmented)]:
   the body is [Make.backward] with the functor parameter standing for
   the instance's argument module. *)
type binding =
  | Direct of Parsetree.expression
  | Instanced of Parsetree.expression * string * string list
      (** body, functor parameter name, argument module path *)

let lookup_binding f name =
  match Hashtbl.find_opt f.f_bindings name with
  | Some e -> Some (Direct e)
  | None -> (
      match String.index_opt name '.' with
      | None -> None
      | Some i -> (
          let inst = String.sub name 0 i in
          let rest = String.sub name (i + 1) (String.length name - i - 1) in
          match Hashtbl.find_opt f.f_instances inst with
          | None -> None
          | Some (fctor, argpath) -> (
              match
                ( Hashtbl.find_opt f.f_bindings (fctor ^ "." ^ rest),
                  Hashtbl.find_opt f.f_functors fctor )
              with
              | Some e, Some p -> Some (Instanced (e, p, argpath))
              | Some e, None -> Some (Direct e)
              | None, _ -> None)))

(* Resolve a module segment to a file.  Ambiguous stems (several
   [driver.ml]s) are disambiguated by [hint_lib] (a [Scvad_*] leading
   path segment) or [near] (prefer the referencing file's directory);
   still-ambiguous resolution fails — the interpreter turns that into
   an obligation rather than guessing. *)
let resolve_stem t ?hint_lib ?near stem =
  match Hashtbl.find_opt t.stems stem with
  | None | Some [] -> None
  | Some [ p ] -> Some p
  | Some paths -> (
      let by_lib =
        match hint_lib with
        | Some lib -> (
            match Hashtbl.find_opt t.libs (String.lowercase_ascii lib) with
            | Some dir ->
                List.filter (fun p -> Filename.dirname p = dir) paths
            | None -> [])
        | None -> []
      in
      match by_lib with
      | [ p ] -> Some p
      | _ -> (
          match near with
          | Some dir -> (
              match List.filter (fun p -> Filename.dirname p = dir) paths with
              | [ p ] -> Some p
              | _ -> None)
          | None -> None))
