(* Footprint-interval disjointness for shard-indexed writes.

   A [Pool.init] closure that writes a captured array only at affine
   positions [scale * i + offset] of its shard index [i] is race-free
   when no two distinct shards can produce the same element.  For a
   family of affine writes sharing one target, that holds exactly when
   every pair has the same nonzero scale and offsets too close together
   to wrap into a neighbouring shard's lane:

     s*i + o1 = s*j + o2  with  i <> j   =>   |o1 - o2| >= |s|

   so requiring a common scale [s <> 0] and [max_offset - min_offset <
   |s|] makes collisions impossible.  This is the same interval
   complement machinery PR 4 uses for inactive spans, specialized to
   the one question the race pass asks. *)

type outcome =
  | Disjoint of { scale : int; lo_offset : int; hi_offset : int }
      (** every shard's footprint is the lane
          [{scale*i + o | lo_offset <= o <= hi_offset}], and lanes of
          distinct shards cannot intersect *)
  | May_collide of string  (** why two shards can hit the same element *)

let explain = function
  | Disjoint { scale; lo_offset; hi_offset } ->
      Printf.sprintf "affine lane %d*i+[%d..%d], stride covers extent" scale
        lo_offset hi_offset
  | May_collide why -> why

(* Decide one target's affine write family.  [regions] must be the
   regions of every write reaching that target; any [All] region
   defeats the proof. *)
let decide (regions : Effects.region list) : outcome =
  let rec go acc = function
    | [] -> Ok acc
    | Effects.All :: _ -> Error "a write with unbounded extent reaches it"
    | Effects.Affine { scale; offset } :: rest -> go ((scale, offset) :: acc) rest
  in
  match go [] regions with
  | Error why -> May_collide why
  | Ok [] -> May_collide "no writes to decide"
  | Ok ((s0, o0) :: rest) ->
      if s0 = 0 then
        May_collide "scale 0: every shard writes the same element"
      else if List.exists (fun (s, _) -> s <> s0) rest then
        May_collide "writes with different strides may interleave"
      else
        let lo = List.fold_left (fun a (_, o) -> min a o) o0 rest in
        let hi = List.fold_left (fun a (_, o) -> max a o) o0 rest in
        if hi - lo < abs s0 then
          Disjoint { scale = s0; lo_offset = lo; hi_offset = hi }
        else
          May_collide
            (Printf.sprintf
               "offsets span %d >= stride %d: lanes of adjacent shards overlap"
               (hi - lo) (abs s0))

(* Half-open interval overlap — the dynamic sanitizer's question, kept
   here so both halves of the certification share one definition. *)
let intervals_overlap ~a_lo ~a_hi ~b_lo ~b_hi = a_lo < b_hi && b_lo < a_hi
