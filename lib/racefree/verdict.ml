(* Per-fan-out-site verdicts: the product of the race-freedom pass.

   The three-valued verdict follows the repo's certification idiom
   (activity: inactive / active / unknown; guard: smooth / tainted /
   unknown): prove it, show the counterexample, or say [Unknown] and
   list exactly what could not be established — never guess.  A fourth
   state, [Assumed], marks sites a [(* racefree: assume disjoint … *)]
   pragma justifies; the @race-check gate treats it as classified but
   the report keeps the assumption visible. *)

type site_kind =
  | Map  (** [Pool.map] — shards are list elements *)
  | Init  (** [Pool.init] — shards are indices [0 .. n-1] *)

let site_kind_name = function Map -> "map" | Init -> "init"

let site_kind_of_name = function
  | "map" -> Some Map
  | "init" -> Some Init
  | _ -> None

(* One syntactic fan-out point: a [Pool.map]/[Pool.init] application in
   the scanned tree, keyed by position, named by its enclosing
   top-level binding (the pragma subject, stable across line drift). *)
type site = {
  st_file : string;
  st_line : int;
  st_kind : site_kind;
  st_context : string;  (** enclosing top-level binding, e.g. ["fan"] *)
}

let site_key s = Printf.sprintf "%s:%d" s.st_file s.st_line

let site_to_text s =
  Printf.sprintf "%s:%d Pool.%s in %s" s.st_file s.st_line
    (site_kind_name s.st_kind) s.st_context

(* One closure that flows into a site, with where it is defined and
   which entry point drove it there. *)
type flow = {
  fl_def_file : string;
  fl_def_line : int;
  fl_via : string;  (** entry chain, e.g. ["reverse_analysis"] *)
  fl_summary : Effects.summary;
}

let flow_origin f = Printf.sprintf "%s:%d" f.fl_def_file f.fl_def_line

type proof = {
  p_fresh : int;  (** write sites that land in per-shard allocations *)
  p_shard : int;  (** write sites on the shard's own datum *)
  p_affine : (string * Disjoint.outcome) list;
      (** captured targets proven lane-disjoint, by target *)
  p_premises : string list;
}

(* A definite write to captured state, racing with its counterpart in
   every other shard. *)
type shared = { sh_site : string; sh_what : string }

type verdict =
  | Race_free of proof
  | Assumed of string  (** pragma justification *)
  | Shared_write of shared list
  | Unknown of string list  (** unmet obligations *)

let verdict_name = function
  | Race_free _ -> "race-free"
  | Assumed _ -> "assumed"
  | Shared_write _ -> "shared-write"
  | Unknown _ -> "unknown"

(* Severity order for folding multiple closure flows into one site
   verdict: a single bad flow taints the site. *)
let rank = function
  | Shared_write _ -> 3
  | Unknown _ -> 2
  | Assumed _ -> 1
  | Race_free _ -> 0

let worse a b = if rank a >= rank b then a else b

type classified = { c_site : site; c_flows : flow list; c_verdict : verdict }

let gate_ok (c : classified) =
  match c.c_verdict with
  | Race_free _ | Assumed _ -> true
  | Shared_write _ | Unknown _ -> false
