(* The racefree driver: load the scanned tree, run the interprocedural
   escape/effect interpreter, and classify every [Pool.map]/[Pool.init]
   fan-out site.

   Classification of one closure flow:
   - any unmet obligation forces [Unknown] — the pass never guesses;
   - writes to [Ext] (captured) roots are grouped per target; a group
     whose every write is index-affine goes to {!Disjoint.decide}
     (proving the per-element sharding pattern), anything else is a
     [Shared_write] with concrete file:line witnesses;
   - otherwise the flow is race-free, and the proof records how many
     writes landed in per-shard allocations ([Fresh]), how many on the
     shard's own datum ([Shard]), the affine-lane facts, and the named
     premises (module / accessor contracts, trusted runtime) the
     evaluation leaned on.

   Site verdicts fold over their flows with {!Verdict.worse} — one bad
   closure taints the site.  [(* racefree: assume disjoint <context> *)]
   pragmas then downgrade [Unknown]/[Shared_write] to [Assumed],
   keeping the assumption visible in the report. *)

module Finding = Scvad_lint.Finding
module Ljson = Scvad_util.Ljson

type report = {
  r_sites : Verdict.classified list;  (** discovery order *)
  r_findings : Finding.t list;
}

(* ------------------------------------------------------------------ *)
(* Location                                                            *)
(* ------------------------------------------------------------------ *)

(* Walk up from [cwd] to the dune-project root and return its lib/
   directory, so the tool works from any build or sandbox directory
   (same contract as {!Scvad_activity.Driver.locate_npb_dir}). *)
let locate_lib_dir ?cwd () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then
      let lib = Filename.concat dir "lib" in
      if Sys.file_exists lib && Sys.is_directory lib then Some lib else None
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (match cwd with Some d -> d | None -> Sys.getcwd ())

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let classify_flow (fl : Verdict.flow) : Verdict.verdict =
  let s = fl.Verdict.fl_summary in
  match s.Effects.sm_obligations with
  | _ :: _ -> Verdict.Unknown s.Effects.sm_obligations
  | [] ->
      let ext = Effects.ext_writes s in
      (* Group captured-target writes by root. *)
      let groups =
        List.fold_left
          (fun acc (w : Effects.write) ->
            let name = Effects.root_name w.Effects.wr_root in
            match List.assoc_opt name acc with
            | Some ws -> (name, w :: ws) :: List.remove_assoc name acc
            | None -> (name, [ w ]) :: acc)
          [] ext
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let affine, shared =
        List.fold_left
          (fun (affine, shared) (name, ws) ->
            let regions =
              List.map (fun (w : Effects.write) -> w.Effects.wr_region) ws
            in
            match Disjoint.decide regions with
            | Disjoint.Disjoint _ as d -> ((name, d) :: affine, shared)
            | Disjoint.May_collide _ ->
                ( affine,
                  List.map
                    (fun (w : Effects.write) ->
                      {
                        Verdict.sh_site = Effects.write_site w;
                        sh_what =
                          Printf.sprintf "%s -> %s [%s]" w.Effects.wr_what
                            name
                            (Effects.region_name w.Effects.wr_region);
                      })
                    ws
                  @ shared ))
          ([], []) groups
      in
      if shared <> [] then Verdict.Shared_write (List.rev shared)
      else
        Verdict.Race_free
          {
            Verdict.p_fresh = List.length (Effects.fresh_writes s);
            p_shard = List.length (Effects.shard_writes s);
            p_affine = List.rev affine;
            p_premises = s.Effects.sm_premises;
          }

let classify_site (site : Verdict.site) (flows : Verdict.flow list) :
    Verdict.classified =
  let verdict =
    match flows with
    | [] ->
        Verdict.Unknown
          [ "no closure flow reached this site from any entry point" ]
    | fs ->
        List.fold_left
          (fun acc fl -> Verdict.worse acc (classify_flow fl))
          (classify_flow (List.hd fs))
          (List.tl fs)
  in
  { Verdict.c_site = site; c_flows = flows; c_verdict = verdict }

(* ------------------------------------------------------------------ *)
(* Pragmas                                                             *)
(* ------------------------------------------------------------------ *)

let apply_pragma pragmas (c : Verdict.classified) =
  match c.Verdict.c_verdict with
  | Verdict.Race_free _ | Verdict.Assumed _ -> c
  | Verdict.Shared_write _ | Verdict.Unknown _ -> (
      match
        Rfpragma.assume pragmas ~context:c.Verdict.c_site.Verdict.st_context
          ~line:c.Verdict.c_site.Verdict.st_line
      with
      | Some (_, why) -> { c with Verdict.c_verdict = Verdict.Assumed why }
      | None -> c)

(* ------------------------------------------------------------------ *)
(* Certification                                                       *)
(* ------------------------------------------------------------------ *)

let certify ~root =
  let model, findings = Rmodel.load ~root in
  let result = Interp.run model in
  let flows_of site =
    List.filter_map
      (fun (a : Interp.analyzed_flow) ->
        if Verdict.site_key a.Interp.a_site = Verdict.site_key site then
          Some a.Interp.a_flow
        else None)
      result.Interp.flows
  in
  let classified =
    List.map (fun site -> classify_site site (flows_of site)) result.Interp.sites
  in
  (* One pragma table per site file; unused-pragma warnings come from
     every scanned file so stale assumptions surface even when their
     site disappeared. *)
  let tables = Hashtbl.create 8 in
  let pragma_findings = ref [] in
  let table_for file =
    match Hashtbl.find_opt tables file with
    | Some t -> t
    | None ->
        let t, errs =
          try Rfpragma.scan ~file (Rmodel.read_file file)
          with Sys_error _ -> Rfpragma.scan ~file ""
        in
        pragma_findings := !pragma_findings @ errs;
        Hashtbl.replace tables file t;
        t
  in
  let classified =
    List.map
      (fun (c : Verdict.classified) ->
        apply_pragma (table_for c.Verdict.c_site.Verdict.st_file) c)
      classified
  in
  let unused =
    Hashtbl.fold (fun _ t acc -> acc @ Rfpragma.unused t) tables []
  in
  {
    r_sites = classified;
    r_findings = findings @ !pragma_findings @ unused;
  }

let count report name =
  List.length
    (List.filter
       (fun (c : Verdict.classified) ->
         Verdict.verdict_name c.Verdict.c_verdict = name)
       report.r_sites)

let gate_violations report =
  List.filter
    (fun c -> not (Verdict.gate_ok c))
    report.r_sites

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_text (report : report) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (c : Verdict.classified) ->
      let s = c.Verdict.c_site in
      Buffer.add_string b
        (Printf.sprintf "%s: %s\n" (Verdict.site_to_text s)
           (Verdict.verdict_name c.Verdict.c_verdict));
      List.iter
        (fun (fl : Verdict.flow) ->
          Buffer.add_string b
            (Printf.sprintf "  flow %s via %s\n" (Verdict.flow_origin fl)
               fl.Verdict.fl_via))
        c.Verdict.c_flows;
      (match c.Verdict.c_verdict with
      | Verdict.Race_free p ->
          Buffer.add_string b
            (Printf.sprintf
               "  proof: %d fresh write(s), %d shard write(s)\n"
               p.Verdict.p_fresh p.Verdict.p_shard);
          List.iter
            (fun (target, o) ->
              Buffer.add_string b
                (Printf.sprintf "  lane %s: %s\n" target (Disjoint.explain o)))
            p.Verdict.p_affine;
          List.iter
            (fun pr ->
              Buffer.add_string b (Printf.sprintf "  premise: %s\n" pr))
            p.Verdict.p_premises
      | Verdict.Assumed why ->
          Buffer.add_string b (Printf.sprintf "  assumed: %s\n" why)
      | Verdict.Shared_write ws ->
          List.iter
            (fun (w : Verdict.shared) ->
              Buffer.add_string b
                (Printf.sprintf "  write %s: %s\n" w.Verdict.sh_site
                   w.Verdict.sh_what))
            ws
      | Verdict.Unknown obs ->
          List.iter
            (fun o ->
              Buffer.add_string b (Printf.sprintf "  obligation: %s\n" o))
            obs))
    report.r_sites;
  List.iter
    (fun f -> Buffer.add_string b (Finding.to_text f ^ "\n"))
    report.r_findings;
  Buffer.add_string b
    (Printf.sprintf
       "%d fan-out site(s): %d race-free, %d assumed, %d shared-write, %d \
        unknown.\n"
       (List.length report.r_sites)
       (count report "race-free") (count report "assumed")
       (count report "shared-write")
       (count report "unknown"));
  Buffer.contents b

let json_of_site (c : Verdict.classified) =
  let s = c.Verdict.c_site in
  let verdict_fields =
    match c.Verdict.c_verdict with
    | Verdict.Race_free p ->
        [
          ("fresh_writes", Ljson.Int p.Verdict.p_fresh);
          ("shard_writes", Ljson.Int p.Verdict.p_shard);
          ( "lanes",
            Ljson.Arr
              (List.map
                 (fun (target, o) ->
                   Ljson.Obj
                     [
                       ("target", Ljson.Str target);
                       ("outcome", Ljson.Str (Disjoint.explain o));
                     ])
                 p.Verdict.p_affine) );
          ( "premises",
            Ljson.Arr
              (List.map (fun p -> Ljson.Str p) p.Verdict.p_premises) );
        ]
    | Verdict.Assumed why -> [ ("justification", Ljson.Str why) ]
    | Verdict.Shared_write ws ->
        [
          ( "writes",
            Ljson.Arr
              (List.map
                 (fun (w : Verdict.shared) ->
                   Ljson.Obj
                     [
                       ("site", Ljson.Str w.Verdict.sh_site);
                       ("what", Ljson.Str w.Verdict.sh_what);
                     ])
                 ws) );
        ]
    | Verdict.Unknown obs ->
        [
          ( "obligations",
            Ljson.Arr (List.map (fun o -> Ljson.Str o) obs) );
        ]
  in
  Ljson.Obj
    ([
       ("file", Ljson.Str s.Verdict.st_file);
       ("line", Ljson.Int s.Verdict.st_line);
       ("kind", Ljson.Str (Verdict.site_kind_name s.Verdict.st_kind));
       ("context", Ljson.Str s.Verdict.st_context);
       ("verdict", Ljson.Str (Verdict.verdict_name c.Verdict.c_verdict));
       ( "flows",
         Ljson.Arr
           (List.map
              (fun (fl : Verdict.flow) ->
                Ljson.Obj
                  [
                    ("def", Ljson.Str (Verdict.flow_origin fl));
                    ("via", Ljson.Str fl.Verdict.fl_via);
                  ])
              c.Verdict.c_flows) );
     ]
    @ verdict_fields)

let json_of_finding (f : Finding.t) =
  Ljson.Obj
    [
      ("rule", Ljson.Str (Finding.rule_name f.Finding.rule));
      ("file", Ljson.Str f.Finding.file);
      ("line", Ljson.Int f.Finding.line);
      ("severity", Ljson.Str (Finding.severity_name f.Finding.severity));
      ("message", Ljson.Str f.Finding.message);
    ]

let render_json (report : report) =
  Ljson.to_string
    (Ljson.Obj
       [
         ("version", Ljson.Int 1);
         ("sites", Ljson.Arr (List.map json_of_site report.r_sites));
         ("race_free", Ljson.Int (count report "race-free"));
         ("assumed", Ljson.Int (count report "assumed"));
         ("shared_write", Ljson.Int (count report "shared-write"));
         ("unknown", Ljson.Int (count report "unknown"));
         ( "findings",
           Ljson.Arr (List.map json_of_finding report.r_findings) );
       ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* JSON parse-back (fixture round-trip, report archaeology)            *)
(* ------------------------------------------------------------------ *)

type site_row = {
  j_file : string;
  j_line : int;
  j_kind : Verdict.site_kind;
  j_context : string;
  j_verdict : string;
}

let jstr key j =
  match Ljson.member key j with
  | Some (Ljson.Str s) -> s
  | _ -> failwith (Printf.sprintf "sites_of_json: missing string %S" key)

let jint key j =
  match Ljson.member key j with
  | Some (Ljson.Int n) -> n
  | _ -> failwith (Printf.sprintf "sites_of_json: missing int %S" key)

let sites_of_json s =
  let j = Ljson.of_string s in
  match Ljson.member "sites" j with
  | Some (Ljson.Arr rows) ->
      List.map
        (fun row ->
          {
            j_file = jstr "file" row;
            j_line = jint "line" row;
            j_kind =
              (match Verdict.site_kind_of_name (jstr "kind" row) with
              | Some k -> k
              | None -> failwith "sites_of_json: unknown site kind");
            j_context = jstr "context" row;
            j_verdict = jstr "verdict" row;
          })
        rows
  | _ -> failwith "sites_of_json: missing array \"sites\""
