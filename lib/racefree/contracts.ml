(* Effect contracts for calls the interpreter does not inline.

   The abstract interpreter inlines every call it can resolve inside
   the scanned tree; everything else must be covered by a contract or
   it becomes an obligation (and the site's verdict degrades to
   [Unknown]).  Three layers of contracts exist:

   - the pervasives table below: per-function argument effects for the
     stdlib surface the engine actually uses.  [Written] / [Written_at]
     mark mutating positions; [Applied] marks higher-order positions
     whose closure the interpreter must re-enter;
   - trusted runtime modules ([Sanitize], [Mutex], [Atomic] on state it
     allocated): their internal mutation is the mechanism under
     certification, not a shard write — see {!trusted_module};
   - the module contract the interpreter applies to unresolvable
     [I.f]-style calls through first-class modules, documented there.

   The table is deny-by-default: an absent name yields no contract and
   the caller records an obligation. *)

type arg_use =
  | Read  (** read-only: contributes roots to the result, never written *)
  | Written  (** may be mutated at any element *)
  | Written_at of int
      (** mutated exactly at the element the argument at this position
          selects (enables the affine-lane proof) *)
  | Applied  (** a closure the callee applies; re-entered by the interp *)

type result_shape =
  | R_pure  (** immediate value: carries no roots *)
  | R_view  (** aliases its arguments: roots = union of arg roots *)
  | R_alloc  (** fresh container that may hold args: Fresh + arg roots *)

type t = { c_args : arg_use list; c_result : result_shape }

let pure n = (n, { c_args = []; c_result = R_pure })
let view n = (n, { c_args = []; c_result = R_view })
let alloc n = (n, { c_args = []; c_result = R_alloc })
let c n args result = (n, { c_args = args; c_result = result })

(* Argument positions not listed in [c_args] default to [Read]. *)
let arg_use t i =
  match List.nth_opt t.c_args i with Some u -> u | None -> Read

let table : (string, t) Hashtbl.t = Hashtbl.create 256

let register prefix entries =
  List.iter
    (fun (n, ct) ->
      Hashtbl.replace table (if prefix = "" then n else prefix ^ "." ^ n) ct)
    entries

let () =
  register "Array"
    [
      c "make" [ Read; Read ] R_alloc;
      c "create_float" [ Read ] R_alloc;
      c "init" [ Read; Applied ] R_alloc;
      pure "length";
      view "get"; view "unsafe_get";
      c "set" [ Written_at 1; Read; Read ] R_pure;
      c "unsafe_set" [ Written_at 1; Read; Read ] R_pure;
      c "fill" [ Written; Read; Read; Read ] R_pure;
      c "blit" [ Read; Read; Written; Read; Read ] R_pure;
      alloc "copy"; alloc "append"; alloc "sub"; alloc "concat";
      c "map" [ Applied; Read ] R_alloc;
      c "mapi" [ Applied; Read ] R_alloc;
      c "iter" [ Applied; Read ] R_pure;
      c "iteri" [ Applied; Read ] R_pure;
      c "fold_left" [ Applied; Read; Read ] R_view;
      c "exists" [ Applied; Read ] R_pure;
      c "for_all" [ Applied; Read ] R_pure;
      pure "mem"; alloc "to_list"; alloc "of_list";
      c "sort" [ Applied; Written ] R_pure;
    ];
  register "Float.Array"
    [
      alloc "make"; alloc "create"; pure "length";
      pure "get"; pure "unsafe_get";
      c "set" [ Written_at 1; Read; Read ] R_pure;
      c "unsafe_set" [ Written_at 1; Read; Read ] R_pure;
      c "fill" [ Written; Read; Read; Read ] R_pure;
      c "blit" [ Read; Read; Written; Read; Read ] R_pure;
    ];
  register "List"
    [
      c "map" [ Applied; Read ] R_alloc;
      c "mapi" [ Applied; Read ] R_alloc;
      c "rev_map" [ Applied; Read ] R_alloc;
      c "concat_map" [ Applied; Read ] R_alloc;
      c "iter" [ Applied; Read ] R_pure;
      c "iteri" [ Applied; Read ] R_pure;
      c "filter" [ Applied; Read ] R_view;
      c "filter_map" [ Applied; Read ] R_alloc;
      c "fold_left" [ Applied; Read; Read ] R_view;
      c "fold_left2" [ Applied; Read; Read; Read ] R_view;
      c "exists" [ Applied; Read ] R_pure;
      c "for_all" [ Applied; Read ] R_pure;
      c "find_opt" [ Applied; Read ] R_view;
      c "partition" [ Applied; Read ] R_view;
      c "sort" [ Applied; Read ] R_view;
      c "sort_uniq" [ Applied; Read ] R_view;
      c "init" [ Read; Applied ] R_alloc;
      c "iter2" [ Applied; Read; Read ] R_pure;
      c "map2" [ Applied; Read; Read ] R_alloc;
      pure "length"; pure "mem"; pure "mem_assoc";
      view "rev"; view "append"; view "concat"; view "flatten";
      view "hd"; view "tl"; view "nth"; view "nth_opt"; view "assoc";
      view "assoc_opt"; view "combine"; view "split"; view "rev_append";
      view "to_seq"; alloc "of_seq";
    ];
  register "Hashtbl"
    [
      alloc "create";
      c "add" [ Written; Read; Read ] R_pure;
      c "replace" [ Written; Read; Read ] R_pure;
      c "remove" [ Written; Read ] R_pure;
      c "reset" [ Written ] R_pure;
      c "clear" [ Written ] R_pure;
      view "find"; view "find_opt"; view "find_all";
      pure "mem"; pure "length"; pure "hash";
      c "iter" [ Applied; Read ] R_pure;
      c "fold" [ Applied; Read; Read ] R_view;
      view "to_seq"; view "to_seq_keys"; view "to_seq_values";
    ];
  register "Buffer"
    [
      alloc "create";
      c "add_string" [ Written; Read ] R_pure;
      c "add_char" [ Written; Read ] R_pure;
      c "add_buffer" [ Written; Read ] R_pure;
      c "clear" [ Written ] R_pure;
      c "reset" [ Written ] R_pure;
      alloc "contents"; pure "length";
    ];
  register "Queue"
    [
      alloc "create";
      c "push" [ Read; Written ] R_pure;
      c "add" [ Read; Written ] R_pure;
      c "pop" [ Written ] R_view;
      c "take" [ Written ] R_view;
      c "clear" [ Written ] R_pure;
      pure "is_empty"; pure "length";
    ];
  register "Option"
    [
      view "value"; view "get"; view "join";
      c "map" [ Applied; Read ] R_view;
      c "iter" [ Applied; Read ] R_pure;
      c "bind" [ Read; Applied ] R_view;
      c "fold" [ Read; Applied; Read ] R_view;
      pure "is_some"; pure "is_none"; view "to_list";
      alloc "some";
    ];
  register "Result"
    [ view "get_ok"; c "map" [ Applied; Read ] R_view; pure "is_ok";
      pure "is_error" ];
  register "Seq"
    [ c "map" [ Applied; Read ] R_view; c "iter" [ Applied; Read ] R_pure;
      c "filter" [ Applied; Read ] R_view; view "to_list"; view "of_list" ];
  register "Fun"
    [ c "protect" [ Applied; Applied ] R_view; view "id";
      c "flip" [ Applied ] R_view ];
  register "Atomic"
    [
      alloc "make"; view "get";
      c "set" [ Written; Read ] R_pure;
      c "exchange" [ Written; Read ] R_view;
      c "compare_and_set" [ Written; Read; Read ] R_pure;
      c "fetch_and_add" [ Written; Read ] R_pure;
      c "incr" [ Written ] R_pure;
      c "decr" [ Written ] R_pure;
    ];
  register "String"
    [
      pure "length"; pure "get"; pure "unsafe_get"; pure "compare";
      pure "equal"; pure "contains"; pure "sub"; pure "concat";
      pure "uppercase_ascii"; pure "lowercase_ascii";
      pure "capitalize_ascii"; pure "trim"; pure "make"; pure "index_opt";
      pure "split_on_char"; pure "index_from_opt"; pure "starts_with";
      c "iter" [ Applied; Read ] R_pure;
      c "map" [ Applied; Read ] R_pure;
    ];
  register "Bytes"
    [
      alloc "create"; alloc "make"; pure "length"; pure "get";
      c "set" [ Written_at 1; Read; Read ] R_pure;
      c "blit" [ Read; Read; Written; Read; Read ] R_pure;
      alloc "to_string"; alloc "of_string"; alloc "sub_string";
    ];
  register "Printf"
    [ pure "printf"; pure "eprintf"; pure "sprintf"; pure "fprintf";
      pure "ifprintf"; pure "ksprintf" ];
  register "Format"
    [ pure "printf"; pure "eprintf"; pure "sprintf"; pure "asprintf";
      pure "fprintf" ];
  register "Printexc"
    [ pure "to_string"; pure "get_raw_backtrace"; pure "get_backtrace";
      pure "raise_with_backtrace"; pure "record_backtrace";
      pure "print_raw_backtrace"; pure "raw_backtrace_to_string" ];
  register "Float"
    [ pure "abs"; pure "max"; pure "min"; pure "of_int"; pure "to_int";
      pure "compare"; pure "equal"; pure "is_nan"; pure "classify_float";
      pure "infinity"; pure "nan"; pure "max_float"; pure "pi" ];
  register "Int"
    [ pure "abs"; pure "max"; pure "min"; pure "compare"; pure "equal";
      pure "to_float"; pure "max_int"; pure "min_int" ];
  register "Char"
    [ pure "code"; pure "chr"; pure "unsafe_chr"; pure "lowercase_ascii" ];
  register "Bytes"
    [
      c "make" [ Read; Read ] R_alloc;
      c "create" [ Read ] R_alloc;
      pure "length";
      pure "get"; pure "unsafe_get"; pure "get_int64_ne";
      c "set" [ Written_at 1; Read; Read ] R_pure;
      c "unsafe_set" [ Written_at 1; Read; Read ] R_pure;
      c "fill" [ Written; Read; Read; Read ] R_pure;
      c "blit" [ Read; Read; Written; Read; Read ] R_pure;
      alloc "copy"; alloc "sub"; pure "to_string"; alloc "of_string";
    ];
  register "Int32"
    [ pure "of_int"; pure "to_int"; pure "add"; pure "sub"; pure "mul";
      pure "logand"; pure "logor"; pure "logxor"; pure "shift_left";
      pure "shift_right"; pure "shift_right_logical"; pure "of_float";
      pure "to_float"; pure "compare"; pure "equal" ];
  register "Int64"
    [ pure "of_int"; pure "to_int"; pure "add"; pure "sub"; pure "mul";
      pure "logand"; pure "logor"; pure "logxor"; pure "shift_left";
      pure "shift_right"; pure "shift_right_logical"; pure "of_float";
      pure "to_float"; pure "compare"; pure "equal" ];
  (* [Random.State] draws mutate the generator they are given — fresh
     per probe in this tree, and a captured one would surface as an
     [Ext] write exactly as it should. *)
  register "Random.State"
    [
      alloc "make"; alloc "make_self_init"; alloc "copy";
      c "int" [ Written; Read ] R_pure;
      c "bool" [ Written ] R_pure;
      c "float" [ Written; Read ] R_pure;
      c "bits" [ Written ] R_pure;
    ];
  register "Sys"
    [ pure "file_exists"; pure "is_directory"; pure "getenv_opt";
      pure "readdir"; pure "getcwd"; pure "time"; pure "word_size" ];
  register "Filename"
    [ pure "concat"; pure "basename"; pure "dirname"; pure "check_suffix";
      pure "remove_extension"; pure "extension"; pure "current_dir_name";
      pure "parent_dir_name" ];
  register "Random"
    [ pure "int"; pure "float"; pure "bool"; pure "self_init"; pure "init" ];
  (* Bigarray slabs (the tape's storage).  [Array1.*] is also
     registered unqualified: tape.ml opens [Bigarray] locally. *)
  List.iter
    (fun prefix ->
      register prefix
        [
          c "create" [ Read; Read; Read ] R_alloc;
          pure "dim";
          pure "get"; pure "unsafe_get";
          c "set" [ Written_at 1; Read; Read ] R_pure;
          c "unsafe_set" [ Written_at 1; Read; Read ] R_pure;
          view "sub";
          c "blit" [ Read; Written ] R_pure;
          c "fill" [ Written; Read ] R_pure;
        ])
    [ "Bigarray.Array1"; "Array1" ];
  register "Stdlib" [];
  (* Unqualified pervasives: operators, conversions, refs. *)
  register ""
    [
      pure "+"; pure "-"; pure "*"; pure "/"; pure "mod"; pure "abs";
      pure "+."; pure "-."; pure "*."; pure "/."; pure "**"; pure "~-.";
      pure "~-"; pure "="; pure "<>"; pure "=="; pure "!="; pure "<";
      pure ">"; pure "<="; pure ">="; pure "&&"; pure "||"; pure "not";
      pure "land"; pure "lor"; pure "lxor"; pure "lsl"; pure "lsr";
      pure "asr"; pure "^"; pure "compare"; pure "min"; pure "max";
      pure "succ"; pure "pred"; pure "ignore"; pure "float_of_int";
      pure "int_of_float"; pure "string_of_int"; pure "string_of_float";
      pure "int_of_string"; pure "float_of_string"; pure "truncate";
      pure "sqrt"; pure "exp"; pure "log"; pure "log10"; pure "sin";
      pure "cos"; pure "tan"; pure "atan"; pure "atan2"; pure "cosh";
      pure "sinh"; pure "tanh"; pure "ceil"; pure "floor"; pure "mod_float";
      pure "infinity"; pure "neg_infinity"; pure "nan"; pure "max_float";
      pure "min_float"; pure "epsilon_float"; pure "max_int"; pure "min_int";
      pure "print_string"; pure "print_endline"; pure "print_newline";
      pure "prerr_endline"; pure "print_int"; pure "print_float";
      pure "failwith"; pure "invalid_arg"; pure "raise"; pure "raise_notrace";
      pure "exit"; pure "at_exit";
      view "fst"; view "snd";
      alloc "ref";
      view "!";
      c ":=" [ Written; Read ] R_pure;
      c "incr" [ Written ] R_pure;
      c "decr" [ Written ] R_pure;
      c "@@" [ Applied; Read ] R_view;
      c "|>" [ Read; Applied ] R_view;
      view "@";
      pure "assert";
      pure "__LOC__"; pure "__FILE__"; pure "__LINE__";
    ]

(* Lookup by flattened path.  Qualified names try the full dotted path
   first (so ["Float"; "Array"; "set"] finds "Float.Array.set"), then
   the [Stdlib]-stripped variant. *)
let find (path : string list) : t option =
  let path =
    match path with "Stdlib" :: rest when rest <> [] -> rest | p -> p
  in
  Hashtbl.find_opt table (String.concat "." path)

(* Modules whose internal mutation is the trusted mechanism the
   certification rests on, not a shard write: the sanitizer's own
   recording, and the locks/atomics it and the pool use.  Calls into
   them are treated as [Pure] with an explicit premise recorded by the
   caller.  The pool itself ([Pool.map]/[Pool.init]) is not here — the
   interpreter intercepts it structurally to fire the site hook. *)
let trusted_module = function
  | "Sanitize" | "Scvad_sanitize" | "Mutex" | "Condition" | "Semaphore"
  | "Gc" ->
      true
  | _ -> false
