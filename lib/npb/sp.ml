(* SP — Scalar Penta-diagonal solver (NPB kernel).

   Structurally BT's sibling (same grid, same ADI sweep pattern, same
   error_norm — the paper finds the identical Fig. 3 pattern in u): the
   implicit line systems factor into five independent scalar
   pentadiagonal solves per line instead of one 5x5 block-tridiagonal
   system.

   Checkpoint variables (Table I): double u[12][13][13][5], int step. *)

module Make_sized (G : Adi_common.GRID) (S : Scvad_ad.Scalar.S) = struct
  module A = Adi_common.Dims (G)
  type scalar = S.t

  module C = Adi_common.Make_sized (G) (S)
  module P = Scvad_solvers.Pentadiag.Make (S)

  let dt = 0.015 (* class-S time step *)

  type state = {
    u : S.t array; (* checkpoint variable *)
    rhs : S.t array;
    mutable iter_done : int;
  }

  let create () =
    let u = Array.make A.total S.zero in
    C.initialize u;
    { u; rhs = Array.make A.total S.zero; iter_done = 0 }

  (* Solve the five scalar pentadiagonal systems of one line.  Band
     coefficients depend on the local solution value (the nonlinear
     "scalar" factorization SP is named for). *)
  let line_solve st ~off_at =
    let n = A.grid in
    let dv = dt *. 0.5 in
    let base = S.of_float (1. +. (2.5 *. dv)) in
    let cdiag = S.of_float (dv *. 0.01) in
    let coff = S.of_float (dv *. 0.005) in
    let band = S.of_float (-.dv) in
    let wing = S.of_float (-.dv /. 8.) in
    for m = 0 to 4 do
      let e = Array.make n wing in
      let f = Array.make n wing in
      let a = Array.init n (fun p -> S.(band -. (coff *. st.u.(off_at p + m)))) in
      let c = Array.init n (fun p -> S.(band +. (coff *. st.u.(off_at p + m)))) in
      let d = Array.init n (fun p -> S.(base +. (cdiag *. st.u.(off_at p + m)))) in
      let r = Array.init n (fun p -> st.rhs.(off_at p + m)) in
      P.solve ~e ~a ~d ~c ~f ~r;
      for p = 0 to n - 1 do
        st.rhs.(off_at p + m) <- r.(p)
      done
    done

  let x_solve st =
    for k = 1 to A.grid - 2 do
      for j = 1 to A.grid - 2 do
        line_solve st ~off_at:(fun i -> A.idx k j i 0)
      done
    done

  let y_solve st =
    for k = 1 to A.grid - 2 do
      for i = 1 to A.grid - 2 do
        line_solve st ~off_at:(fun j -> A.idx k j i 0)
      done
    done

  let z_solve st =
    for j = 1 to A.grid - 2 do
      for i = 1 to A.grid - 2 do
        line_solve st ~off_at:(fun k -> A.idx k j i 0)
      done
    done

  let add st =
    for k = 1 to A.grid - 2 do
      for j = 1 to A.grid - 2 do
        for i = 1 to A.grid - 2 do
          for m = 0 to 4 do
            let o = A.idx k j i m in
            st.u.(o) <- S.(st.u.(o) +. st.rhs.(o))
          done
        done
      done
    done

  let step st =
    C.compute_rhs ~dt st.u st.rhs;
    x_solve st;
    y_solve st;
    z_solve st;
    add st

  let run st ~from ~until =
    for _ = from to until - 1 do
      step st;
      st.iter_done <- st.iter_done + 1
    done

  let iterations_done st = st.iter_done

  let output st =
    let err = C.error_norm st.u in
    C.compute_rhs ~dt st.u st.rhs;
    let rhs = C.rhs_norm st.rhs in
    S.(C.sum err +. C.sum rhs)

  let float_vars st =
    [ (* guard: assume smooth u — the Pentadiag solver module is
         straight-line Scalar.S arithmetic: fixed index ranges, no
         data-dependent branching, so the leaked flow is smooth *)
      Scvad_core.Variable.of_array ~name:"u"
        ~doc:"solution of the nonlinear PDE system (padded to 13 in j and i)"
        (Lazy.force A.shape4) st.u ]

  let int_vars st =
    [ {
        Scvad_core.Variable.iname = "step";
        ishape = Scvad_nd.Shape.scalar;
        iget = (fun _ -> st.iter_done);
        iset = (fun _ v -> st.iter_done <- v);
        icrit = Scvad_core.Variable.Always_critical "main loop index";
        idoc = "main loop index";
      } ]
end

module Make_generic (S : Scvad_ad.Scalar.S) = Make_sized (Adi_common.Class_s_grid) (S)

module App : Scvad_core.App.S = struct
  let name = "sp"
  let description = "Scalar Penta-diagonal ADI solver (class S)"
  let default_niter = 100
  let analysis_niter = 1
  let tape_nodes_hint = 650_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_generic (S)
end

(* NPB class-W problem size: the scaling study. *)
module App_w : Scvad_core.App.S = struct
  let name = "sp-w"
  let description = "Scalar Penta-diagonal ADI solver (class W, 36^3)"
  let default_niter = 400
  let analysis_niter = 1
  let tape_nodes_hint = 22_300_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_sized (Adi_common.Sp_w_grid) (S)
end
