(* MG — V-cycle MultiGrid solver for the 3-D discrete Poisson equation
   (NPB kernel, class S: 32^3 grid, 4 iterations).

   The solution [u] and residual [r] live in flat 46480-element arrays
   holding every grid level back to back, finest first — NPB's layout
   and the reason the paper's Fig. 4 shows "39304 continuous critical
   elements followed by 7176 continuous uncritical ones":

     level 5 (34^3 = 39304) | level 4 (18^3) | level 3 (10^3)
       | level 2 (6^3) | level 1 (4^3) | 64 slack words

   Criticality mechanics reproduced here:
   - coarse-level u is zeroed by [zero3] at the start of every V-cycle
     before any read, so only the finest 34^3 of u is critical;
   - the first consumer of the checkpointed finest r is the restriction
     [rprj3], whose full-weighting stencil reads exactly fine indices
     1..33 per dimension: 33^3 = 35937 critical elements (Fig. 5's
     repetitive pattern is this read set seen as a flat strip);
   - the right-hand side v is reconstructed deterministically at create
     time (NPB's zran3), so it is not a checkpoint variable.

   Checkpoint variables (Table I): double u[46480], double r[46480],
   int it. *)

module type CONFIG = sig
  (** finest level: grid 2^lt *)
  val lt : int

  (** flat element count of u and r (>= the sum of level volumes;
      class S pads to the paper's 46480 with 64 slack words) *)
  val nv : int

  val niter : int
end

(* The paper's configuration. *)
module Class_s : CONFIG = struct
  let lt = 5 (* 32^3 finest grid *)
  let nv = 46480
  let niter = 4
end

(* Scaled-up configuration (NPB class W: 64^3 finest grid), used to
   show the criticality pattern generalizes across problem sizes. *)
module Class_w : CONFIG = struct
  let lt = 6

  (* Exact sum of level volumes 66^3 + 34^3 + ... + 4^3, no slack. *)
  let nv = 334_408
  let niter = 4
end

(* Extent of one level including the two border planes. *)
let extent l = (1 lsl l) + 2

(* Stencil coefficients (NPB class S). *)
let a0 = -8. /. 3.

let a2 = 1. /. 6.
let a3 = 1. /. 12.
let c0 = -3. /. 8.
let c1 = 1. /. 32.
let c2 = -1. /. 64.

module Make_sized (C : CONFIG) (S : Scvad_ad.Scalar.S) = struct
  type scalar = S.t

  let lt = C.lt
  let nv = C.nv

  (* Flat offset of each level, finest first. *)
  let offsets =
    (* lint: allow domain-safety — write-once offset table, frozen before
       any read; each Make_sized instantiation (one per analysis, inside
       its own domain) builds its own copy *)
    let off = Array.make (lt + 1) 0 in
    let rec fill l pos =
      if l >= 1 then begin
        off.(l) <- pos;
        let n = extent l in
        fill (l - 1) (pos + (n * n * n))
      end
      else pos
    in
    assert (fill lt 0 <= nv);
    off

  type state = {
    u : S.t array; (* all levels; checkpoint variable *)
    r : S.t array; (* all levels; checkpoint variable *)
    v : float array; (* finest-level right-hand side (constant data) *)
    mutable iter_done : int;
  }

  let idx l i3 i2 i1 =
    let n = extent l in
    offsets.(l) + (((i3 * n) + i2) * n) + i1

  (* NPB zran3 surrogate: +1 at ten pseudo-random interior points, -1 at
     ten others, drawn from the NPB random stream. *)
  let make_v () =
    let n = extent lt in
    let v = Array.make (n * n * n) 0. in
    let rng = Scvad_nprand.Nprand.create Scvad_nprand.Nprand.cg_seed in
    let interior () =
      1 + int_of_float (Scvad_nprand.Nprand.next rng *. float_of_int (n - 2))
    in
    for s = 0 to 19 do
      let i3 = interior () and i2 = interior () and i1 = interior () in
      v.((((i3 * n) + i2) * n) + i1) <- (if s < 10 then 1. else -1.)
    done;
    v

  let zero3 (arr : S.t array) l =
    let n = extent l in
    Array.fill arr offsets.(l) (n * n * n) S.zero

  (* Periodic border exchange (NPB comm3): each border plane is
     rewritten from the opposite interior plane.  Runs after every
     producer, so coarse-level borders are always written before read —
     which is why only the finest level of the checkpointed r stays
     critical. *)
  let comm3 st (arr : S.t array) l =
    ignore st;
    let n = extent l in
    for i3 = 1 to n - 2 do
      for i2 = 1 to n - 2 do
        arr.(idx l i3 i2 0) <- arr.(idx l i3 i2 (n - 2));
        arr.(idx l i3 i2 (n - 1)) <- arr.(idx l i3 i2 1)
      done
    done;
    for i3 = 1 to n - 2 do
      for i1 = 0 to n - 1 do
        arr.(idx l i3 0 i1) <- arr.(idx l i3 (n - 2) i1);
        arr.(idx l i3 (n - 1) i1) <- arr.(idx l i3 1 i1)
      done
    done;
    for i2 = 0 to n - 1 do
      for i1 = 0 to n - 1 do
        arr.(idx l 0 i2 i1) <- arr.(idx l (n - 2) i2 i1);
        arr.(idx l (n - 1) i2 i1) <- arr.(idx l 1 i2 i1)
      done
    done

  (* r_l <- src - A u_l over the interior, where [src] reads either the
     constant v (finest) or the current r_l (coarse error equations).
     The u1/u2 helper pattern is NPB's: it reads every element of the
     level's (n)^3 box. *)
  let resid st l ~(src : int -> S.t) =
    let n = extent l in
    let u = st.u and r = st.r in
    let out = Array.make (n * n * n) S.zero in
    let ca0 = S.of_float a0 and ca2 = S.of_float a2 and ca3 = S.of_float a3 in
    let u1 = Array.make n S.zero and u2 = Array.make n S.zero in
    for i3 = 1 to n - 2 do
      for i2 = 1 to n - 2 do
        for i1 = 0 to n - 1 do
          u1.(i1) <-
            S.(
              u.(idx l i3 (i2 - 1) i1)
              +. u.(idx l i3 (i2 + 1) i1)
              +. u.(idx l (i3 - 1) i2 i1)
              +. u.(idx l (i3 + 1) i2 i1));
          u2.(i1) <-
            S.(
              u.(idx l (i3 - 1) (i2 - 1) i1)
              +. u.(idx l (i3 - 1) (i2 + 1) i1)
              +. u.(idx l (i3 + 1) (i2 - 1) i1)
              +. u.(idx l (i3 + 1) (i2 + 1) i1))
        done;
        for i1 = 1 to n - 2 do
          out.((((i3 * n) + i2) * n) + i1) <-
            S.(
              src ((((i3 * n) + i2) * n) + i1)
              -. (ca0 *. u.(idx l i3 i2 i1))
              -. (ca2 *. (u2.(i1) +. u1.(i1 - 1) +. u1.(i1 + 1)))
              -. (ca3 *. (u2.(i1 - 1) +. u2.(i1 + 1))))
        done
      done
    done;
    (* Interior write-back; borders of r_l keep their previous values. *)
    for i3 = 1 to n - 2 do
      for i2 = 1 to n - 2 do
        for i1 = 1 to n - 2 do
          r.(idx l i3 i2 i1) <- out.((((i3 * n) + i2) * n) + i1)
        done
      done
    done;
    comm3 st st.r l

  let resid_finest st =
    resid st lt ~src:(fun flat -> S.of_float st.v.(flat))

  let resid_coarse st l =
    (* Error equation: rhs is the restricted residual already in r_l.
       Snapshot it first (the stencil writes r_l in place). *)
    let n = extent l in
    let snap = Array.sub st.r offsets.(l) (n * n * n) in
    resid st l ~src:(fun flat -> snap.(flat))

  (* Smoother: u_l += S(r_l) over the interior (NPB psinv). *)
  let psinv st l =
    let n = extent l in
    let u = st.u and r = st.r in
    let cc0 = S.of_float c0 and cc1 = S.of_float c1 and cc2 = S.of_float c2 in
    let r1 = Array.make n S.zero and r2 = Array.make n S.zero in
    for i3 = 1 to n - 2 do
      for i2 = 1 to n - 2 do
        for i1 = 0 to n - 1 do
          r1.(i1) <-
            S.(
              r.(idx l i3 (i2 - 1) i1)
              +. r.(idx l i3 (i2 + 1) i1)
              +. r.(idx l (i3 - 1) i2 i1)
              +. r.(idx l (i3 + 1) i2 i1));
          r2.(i1) <-
            S.(
              r.(idx l (i3 - 1) (i2 - 1) i1)
              +. r.(idx l (i3 - 1) (i2 + 1) i1)
              +. r.(idx l (i3 + 1) (i2 - 1) i1)
              +. r.(idx l (i3 + 1) (i2 + 1) i1))
        done;
        for i1 = 1 to n - 2 do
          let o = idx l i3 i2 i1 in
          u.(o) <-
            S.(
              u.(o)
              +. (cc0 *. r.(o))
              +. (cc1 *. (r.(idx l i3 i2 (i1 - 1)) +. r.(idx l i3 i2 (i1 + 1)) +. r1.(i1)))
              +. (cc2 *. (r2.(i1) +. r1.(i1 - 1) +. r1.(i1 + 1))))
        done
      done
    done;
    comm3 st st.u l

  (* Full-weighting restriction of r from level l to level l-1 (NPB
     rprj3).  For coarse interior 1..mc-2 the fine read set is exactly
     indices 1..33 per dimension at the finest level — the paper's 33^3
     critical elements of r. *)
  let rprj3 st l =
    let lc = l - 1 in
    let mc = extent lc in
    let r = st.r in
    let w d = match abs d with 0 -> 0.125 | 1 -> 0.0625 | _ -> assert false in
    for j3 = 1 to mc - 2 do
      for j2 = 1 to mc - 2 do
        for j1 = 1 to mc - 2 do
          let acc = ref S.zero in
          for d3 = -1 to 1 do
            for d2 = -1 to 1 do
              for d1 = -1 to 1 do
                let weight = w d3 *. w d2 *. w d1 *. 8. in
                acc :=
                  S.(
                    !acc
                    +. (of_float weight
                       *. r.(idx l ((2 * j3) + d3) ((2 * j2) + d2) ((2 * j1) + d1))))
              done
            done
          done;
          r.(idx lc j3 j2 j1) <- !acc
        done
      done
    done;
    comm3 st st.r lc

  (* Trilinear prolongation: u_l += P u_{l-1} (NPB interp). *)
  let interp st l =
    let lc = l - 1 in
    let mc = extent lc in
    let u = st.u in
    for j3 = 0 to mc - 2 do
      for j2 = 0 to mc - 2 do
        for j1 = 0 to mc - 2 do
          for d3 = 0 to 1 do
            for d2 = 0 to 1 do
              for d1 = 0 to 1 do
                (* Corner average of the 2^(d3+d2+d1) coarse cells
                   bracketing the fine point. *)
                let acc = ref S.zero in
                let cnt = (1 lsl d3) * (1 lsl d2) * (1 lsl d1) in
                for e3 = 0 to d3 do
                  for e2 = 0 to d2 do
                    for e1 = 0 to d1 do
                      acc := S.(!acc +. u.(idx lc (j3 + e3) (j2 + e2) (j1 + e1)))
                    done
                  done
                done;
                let fo = idx l ((2 * j3) + d3) ((2 * j2) + d2) ((2 * j1) + d1) in
                u.(fo) <- S.(u.(fo) +. (!acc /. of_int cnt))
              done
            done
          done
        done
      done
    done

  (* One V-cycle (NPB mg3P) followed by the fresh finest residual. *)
  let step st =
    for l = lt downto 2 do
      rprj3 st l
    done;
    zero3 st.u 1;
    psinv st 1;
    for l = 2 to lt - 1 do
      zero3 st.u l;
      interp st l;
      resid_coarse st l;
      psinv st l
    done;
    interp st lt;
    resid_finest st;
    psinv st lt;
    resid_finest st

  let create () =
    let st =
      {
        u = Array.make nv S.zero;
        r = Array.make nv S.zero;
        v = make_v ();
        iter_done = 0;
      }
    in
    resid_finest st;
    st

  let run st ~from ~until =
    for _ = from to until - 1 do
      step st;
      st.iter_done <- st.iter_done + 1
    done

  let iterations_done st = st.iter_done

  (* Verification output: L2 norm of the finest residual (NPB
     norm2u3). *)
  let output st =
    let n = extent lt in
    let acc = ref S.zero in
    for i3 = 1 to n - 2 do
      for i2 = 1 to n - 2 do
        for i1 = 1 to n - 2 do
          let x = st.r.(idx lt i3 i2 i1) in
          acc := S.(!acc +. (x *. x))
        done
      done
    done;
    S.(sqrt (!acc /. of_int (n * n * n)))

  let float_vars st =
    let open Scvad_core.Variable in
    let shape = Scvad_nd.Shape.create [ nv ] in
    [ of_array ~name:"u" ~doc:"multi-level solution, finest level first" shape
        st.u;
      of_array ~name:"r" ~doc:"multi-level residual, finest level first" shape
        st.r ]

  let int_vars st =
    [ {
        Scvad_core.Variable.iname = "it";
        ishape = Scvad_nd.Shape.scalar;
        iget = (fun _ -> st.iter_done);
        iset = (fun _ v -> st.iter_done <- v);
        icrit = Scvad_core.Variable.Always_critical "main loop index";
        idoc = "main loop index";
      } ]
end

module Make_generic (S : Scvad_ad.Scalar.S) = Make_sized (Class_s) (S)

module App : Scvad_core.App.S = struct
  let name = "mg"
  let description = "V-cycle MultiGrid Poisson solver (class S)"
  let default_niter = Class_s.niter
  let analysis_niter = 1
  let tape_nodes_hint = 2_450_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_sized (Class_s) (S)
end

module App_w : Scvad_core.App.S = struct
  let name = "mg-w"
  let description = "V-cycle MultiGrid Poisson solver (class W, 64^3)"
  let default_niter = Class_w.niter
  let analysis_niter = 1
  let tape_nodes_hint = 18_700_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_sized (Class_w) (S)
end
