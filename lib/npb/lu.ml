(* LU — Lower-Upper symmetric Gauss-Seidel solver (NPB kernel).

   SSOR-style time stepping on the class-S 12x12x12 grid.  Each
   iteration:

   1. builds a new residual [rsd] from the previous residual (7-point
      stencil, all five components), the coefficient fields [rho_i] and
      [qs] (center + neighbours), the first four solution components
      (7-point stencils), and the energy component u[.][4] through
      {e directional flux sweeps only} — x-differences at k,j in 1..10,
      y-differences at k,i in 1..10, z-differences at j,i in 1..10.
      That last read set is the union the paper visualizes in Fig. 7:
      1600 critical elements, 428 uncritical;
   2. applies the under-relaxed update u += tsor * rsd on the interior;
   3. re-derives the coefficient fields with under-relaxation (rho_i is
      "the relaxation factor" in the paper's wording):
      rho_i <- (1-w) rho_i + w / u0 and qs <- (1-w) qs + w q(u), reading
      every active element of both fields;
   4. final verification: rhs_norm over all five rsd components plus
      error_norm over u components 0..3 only (the energy component is
      verified through the residual, not the error norm — this is what
      distinguishes u[.][4]'s pattern from u[.][0..3]'s).

   Checkpoint variables (Table I): u[12][13][13][5],
   rho_i[12][13][13], qs[12][13][13], rsd[12][13][13][5], int istep. *)

module Make_sized (G : Adi_common.GRID) (S : Scvad_ad.Scalar.S) = struct
  module A = Adi_common.Dims (G)
  type scalar = S.t

  module C = Adi_common.Make_sized (G) (S)

  let dt = 0.5 (* SSOR pseudo-time step *)
  let omega = 0.8 (* relaxation factor of the coefficient updates *)

  type state = {
    u : S.t array; (* [12][13][13][5] *)
    rho_i : S.t array; (* [12][13][13] *)
    qs : S.t array; (* [12][13][13] *)
    rsd : S.t array; (* [12][13][13][5] *)
    tmp : S.t array; (* work array for the new residual *)
    mutable iter_done : int;
  }

  let derive_rho st k j i = S.(one /. st.u.(A.idx k j i 0))

  let derive_qs st k j i =
    let u1 = st.u.(A.idx k j i 1)
    and u2 = st.u.(A.idx k j i 2)
    and u3 = st.u.(A.idx k j i 3) in
    S.(
      of_float 0.5
      *. ((u1 *. u1) +. (u2 *. u2) +. (u3 *. u3))
      *. (one /. st.u.(A.idx k j i 0)))

  let create () =
    let u = Array.make A.total S.zero in
    C.initialize u;
    let st =
      {
        u;
        rho_i = Array.make A.total3 S.zero;
        qs = Array.make A.total3 S.zero;
        rsd = Array.make A.total S.zero;
        tmp = Array.make A.total S.zero;
        iter_done = 0;
      }
    in
    for k = 0 to A.grid - 1 do
      for j = 0 to A.grid - 1 do
        for i = 0 to A.grid - 1 do
          st.rho_i.(A.idx3 k j i) <- derive_rho st k j i;
          st.qs.(A.idx3 k j i) <- derive_qs st k j i
        done
      done
    done;
    (* Initial residual: interior from the rhs stencil; the boundary
       shell carries small nonzero entries (as a converged run's
       residual would) so the final norm has nonzero slope there. *)
    C.compute_rhs ~dt st.u st.rsd;
    for k = 0 to A.grid - 1 do
      for j = 0 to A.grid - 1 do
        for i = 0 to A.grid - 1 do
          if k = 0 || k = A.grid - 1 || j = 0 || j = A.grid - 1 || i = 0 || i = A.grid - 1
          then
            for m = 0 to A.ncomp - 1 do
              let o = A.idx k j i m in
              st.rsd.(o) <- S.of_float (1e-6 *. (1.5 +. Stdlib.sin (float_of_int o)))
            done
        done
      done
    done;
    st

  (* New residual at the interior (writes st.tmp). *)
  let build_residual st =
    let d = S.of_float (dt *. 0.2) in
    let cpl = S.of_float (dt *. 0.02) in
    let fx = S.of_float (dt *. 0.05) in
    Array.fill st.tmp 0 (Array.length st.tmp) S.zero;
    for k = 1 to A.grid - 2 do
      for j = 1 to A.grid - 2 do
        for i = 1 to A.grid - 2 do
          (* coefficient fields: center + the six face neighbours *)
          let coeff =
            S.(
              st.rho_i.(A.idx3 k j i)
              +. (of_float 0.1
                  *. (st.rho_i.(A.idx3 k j (i - 1))
                     +. st.rho_i.(A.idx3 k j (i + 1))
                     +. st.rho_i.(A.idx3 k (j - 1) i)
                     +. st.rho_i.(A.idx3 k (j + 1) i)
                     +. st.rho_i.(A.idx3 (k - 1) j i)
                     +. st.rho_i.(A.idx3 (k + 1) j i))))
          in
          let pressure =
            S.(
              st.qs.(A.idx3 k j i)
              +. (of_float 0.1
                  *. (st.qs.(A.idx3 k j (i - 1))
                     +. st.qs.(A.idx3 k j (i + 1))
                     +. st.qs.(A.idx3 k (j - 1) i)
                     +. st.qs.(A.idx3 k (j + 1) i)
                     +. st.qs.(A.idx3 (k - 1) j i)
                     +. st.qs.(A.idx3 (k + 1) j i))))
          in
          for m = 0 to A.ncomp - 1 do
            (* previous residual: 7-point stencil, every component *)
            let rlap =
              S.(
                st.rsd.(A.idx k j (i - 1) m)
                +. st.rsd.(A.idx k j (i + 1) m)
                +. st.rsd.(A.idx k (j - 1) i m)
                +. st.rsd.(A.idx k (j + 1) i m)
                +. st.rsd.(A.idx (k - 1) j i m)
                +. st.rsd.(A.idx (k + 1) j i m)
                -. (of_float 6. *. st.rsd.(A.idx k j i m)))
            in
            let solution_term =
              if m < 4 then
                (* components 0..3: full 7-point stencil on u[m] *)
                S.(
                  st.u.(A.idx k j (i - 1) m)
                  +. st.u.(A.idx k j (i + 1) m)
                  +. st.u.(A.idx k (j - 1) i m)
                  +. st.u.(A.idx k (j + 1) i m)
                  +. st.u.(A.idx (k - 1) j i m)
                  +. st.u.(A.idx (k + 1) j i m)
                  -. (of_float 6. *. st.u.(A.idx k j i m)))
              else
                (* the energy component is touched only through the
                   three directional flux differences (Fig. 7's union
                   of sweep ranges) *)
                S.(
                  fx
                  *. ((st.u.(A.idx k j (i + 1) 4) -. st.u.(A.idx k j (i - 1) 4))
                     +. (st.u.(A.idx k (j + 1) i 4) -. st.u.(A.idx k (j - 1) i 4))
                     +. (st.u.(A.idx (k + 1) j i 4) -. st.u.(A.idx (k - 1) j i 4))
                     +. st.u.(A.idx k j i 4)))
            in
            let coupling = S.(cpl *. st.u.(A.idx k j i ((m + 1) mod 4))) in
            (* The 1/16 gain keeps the residual recurrence contractive
               (spectral radius < 1), so the SSOR iteration converges
               instead of blowing up over the 50 production steps. *)
            st.tmp.(A.idx k j i m) <-
              S.(
                (of_float 0.0625 *. rlap)
                +. (d *. solution_term *. coeff)
                +. (cpl *. pressure)
                +. coupling)
          done
        done
      done
    done

  let step st =
    build_residual st;
    (* SSOR update on the interior. *)
    let tsor = S.of_float (dt *. omega) in
    for k = 1 to A.grid - 2 do
      for j = 1 to A.grid - 2 do
        for i = 1 to A.grid - 2 do
          for m = 0 to A.ncomp - 1 do
            let o = A.idx k j i m in
            st.u.(o) <- S.(st.u.(o) +. (tsor *. st.tmp.(o)));
            st.rsd.(o) <- st.tmp.(o)
          done
        done
      done
    done;
    (* Under-relaxed, spatially smoothed refresh of the coefficient
       fields over the whole active range: every active rho_i / qs
       element is read both as a center and as a neighbour, so boundary
       values diffuse towards the interior where the residual consumes
       them. *)
    let w = S.of_float omega and w1 = S.of_float (1. -. omega) in
    let sigma = S.of_float 0.05 in
    let smooth (field : S.t array) k j i =
      (* Average of the in-range neighbours minus the center. *)
      let acc = ref S.zero and n = ref 0 in
      let look k' j' i' =
        if
          k' >= 0 && k' < A.grid && j' >= 0 && j' < A.grid && i' >= 0
          && i' < A.grid
        then begin
          acc := S.(!acc +. field.(A.idx3 k' j' i'));
          incr n
        end
      in
      look (k - 1) j i;
      look (k + 1) j i;
      look k (j - 1) i;
      look k (j + 1) i;
      look k j (i - 1);
      look k j (i + 1);
      S.((!acc /. of_int !n) -. field.(A.idx3 k j i))
    in
    let new_rho = Array.make A.total3 S.zero in
    let new_qs = Array.make A.total3 S.zero in
    for k = 0 to A.grid - 1 do
      for j = 0 to A.grid - 1 do
        for i = 0 to A.grid - 1 do
          let o3 = A.idx3 k j i in
          new_rho.(o3) <-
            S.(
              (w1 *. st.rho_i.(o3))
              +. (w *. derive_rho st k j i)
              +. (sigma *. smooth st.rho_i k j i));
          new_qs.(o3) <-
            S.(
              (w1 *. st.qs.(o3))
              +. (w *. derive_qs st k j i)
              +. (sigma *. smooth st.qs k j i))
        done
      done
    done;
    Array.blit new_rho 0 st.rho_i 0 A.total3;
    Array.blit new_qs 0 st.qs 0 A.total3

  let run st ~from ~until =
    for _ = from to until - 1 do
      step st;
      st.iter_done <- st.iter_done + 1
    done

  let iterations_done st = st.iter_done

  (* Verification: residual norms (all five components) + error norms of
     the first four solution components. *)
  let output st =
    let rn = C.rhs_norm st.rsd in
    let en = C.error_norm ~mmax:4 st.u in
    S.(C.sum rn +. C.sum en)

  let float_vars st =
    let open Scvad_core.Variable in
    [ (* guard: assume smooth u — the Block5 lower/upper sweeps are
         straight-line Scalar.S arithmetic with fixed index ranges *)
      of_array ~name:"u" ~doc:"solution of the nonlinear PDE system"
        (Lazy.force A.shape4) st.u;
      (* guard: assume smooth rho_i — consumed only by smooth flux
         arithmetic and the leaked straight-line solver sweeps *)
      of_array ~name:"rho_i" ~doc:"relaxation factor of the SSOR method"
        (Lazy.force A.shape3) st.rho_i;
      (* guard: assume smooth qs — consumed only by smooth flux
         arithmetic and the leaked straight-line solver sweeps *)
      of_array ~name:"qs" ~doc:"flux-difference (dynamic pressure) field"
        (Lazy.force A.shape3) st.qs;
      (* guard: assume smooth rsd — the SSOR residual update and the
         leaked Block5 sweeps are data-oblivious Scalar.S arithmetic *)
      of_array ~name:"rsd" ~doc:"running residual of the SSOR iteration"
        (Lazy.force A.shape4) st.rsd ]

  let int_vars st =
    [ {
        Scvad_core.Variable.iname = "istep";
        ishape = Scvad_nd.Shape.scalar;
        iget = (fun _ -> st.iter_done);
        iset = (fun _ v -> st.iter_done <- v);
        icrit = Scvad_core.Variable.Always_critical "main loop index";
        idoc = "main loop index";
      } ]
end

module Make_generic (S : Scvad_ad.Scalar.S) = Make_sized (Adi_common.Class_s_grid) (S)

module App : Scvad_core.App.S = struct
  let name = "lu"
  let description = "Lower-Upper symmetric Gauss-Seidel solver (class S)"
  let default_niter = 50

  (* Three iterations: a corner value of the coefficient fields needs
     two smoothing hops (corner -> edge -> face) before the residual of
     the following iteration consumes it. *)
  let analysis_niter = 3
  let tape_nodes_hint = 700_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_generic (S)
end

(* NPB class-W problem size: the scaling study. *)
module App_w : Scvad_core.App.S = struct
  let name = "lu-w"
  let description = "Lower-Upper symmetric Gauss-Seidel solver (class W, 33^3)"
  let default_niter = 300
  let analysis_niter = 3
  let tape_nodes_hint = 17_200_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_sized (Adi_common.Lu_w_grid) (S)
end
