(* IS — Integer Sort (NPB kernel, class S: 2^16 keys, 2^11 key range,
   512 buckets, 10 iterations).

   Bucket sort: each rank() iteration plants two iteration-dependent
   keys, counts keys per bucket, builds the bucket pointers by prefix
   sum, distributes the keys, and runs a partial verification; after the
   last iteration full_verify checks the distribution using the bucket
   pointers left by the final rank.

   This is an all-integer benchmark, so criticality comes from the
   integer dependence tracer ({!Scvad_ad.Itaint}) instead of
   derivatives.  The kernel is written once, as a functor over INT_OPS,
   and instantiated twice: plain ints for execution/checkpointing, and
   traced ints for the analysis.  The analysis covers two checkpoint
   boundaries and takes the union (an element is critical if some
   checkpoint needs it):
   - mid-run (before the last rank): rank reads every key_array element
     — key_array is critical;
   - pre-verification (after the last rank): full_verify reads every
     bucket_ptrs element — bucket_ptrs is critical.
   This mechanizes the paper's manual claim that both arrays plus
   passed_verification and iteration are fully critical. *)

let total_keys = 1 lsl 16
let max_key = 1 lsl 11
let num_buckets = 1 lsl 9
let bucket_shift = 2 (* log2 (max_key / num_buckets) *)
let iterations = 10
let test_values = [ 17; 129; 511; 1025; 2001 ]

(* Integer operations abstracted so the same kernel runs plain or
   traced. *)
module type INT_OPS = sig
  type t

  val const : int -> t
  val value : t -> int
  val add : t -> t -> t
  val sub : t -> t -> t
  val shift_right : t -> int -> t

  (** 0/1 result carrying dependence on both operands. *)
  val le : t -> t -> t

  val eq : t -> t -> t

  (** Array access through a possibly-traced subscript. *)
  val get : t array -> t -> t

  val set : t array -> t -> t -> unit
end

module Plain_ops : INT_OPS with type t = int = struct
  type t = int

  let const v = v
  let value v = v
  let add = ( + )
  let sub = ( - )
  let shift_right v k = v asr k
  let le a b = if a <= b then 1 else 0
  let eq a b = if a = b then 1 else 0
  let get (a : int array) i = a.(i)
  let set (a : int array) i x = a.(i) <- x
end

module Traced_ops (T : sig
  val tape : Scvad_ad.Dep_tape.t
end) : INT_OPS with type t = Scvad_ad.Itaint.t = struct
  open Scvad_ad

  type t = Itaint.t

  let const = Itaint.const
  let value = Itaint.value
  let add = Itaint.add T.tape
  let sub = Itaint.sub T.tape
  let shift_right = Itaint.shift_right T.tape
  let le = Itaint.le T.tape
  let eq = Itaint.eq T.tape
  let get = Itaint.get T.tape
  let set = Itaint.set T.tape
end

module Kernel (O : INT_OPS) = struct
  type state = {
    key_array : O.t array; (* checkpoint variable *)
    bucket_ptrs : O.t array; (* checkpoint variable *)
    mutable passed_verification : O.t; (* checkpoint variable *)
    key_buff2 : O.t array; (* distributed keys (work array) *)
    mutable iter_done : int;
  }

  (* NPB create_seq: keys from four summed randlc deviates. *)
  let create () =
    let rng = Scvad_nprand.Nprand.create Scvad_nprand.Nprand.cg_seed in
    let key_array =
      Array.init total_keys (fun _ ->
          let x =
            Scvad_nprand.Nprand.next rng
            +. Scvad_nprand.Nprand.next rng
            +. Scvad_nprand.Nprand.next rng
            +. Scvad_nprand.Nprand.next rng
          in
          O.const (int_of_float (float_of_int (max_key / 4) *. x)))
    in
    {
      key_array;
      bucket_ptrs = Array.make num_buckets (O.const 0);
      passed_verification = O.const 0;
      key_buff2 = Array.make total_keys (O.const 0);
      iter_done = 0;
    }

  (* One NPB rank() call (1-based iteration number). *)
  let rank st ~iteration =
    (* Plant the two iteration-dependent keys. *)
    st.key_array.(iteration) <- O.const iteration;
    st.key_array.(iteration + iterations) <- O.const (max_key - iteration);
    (* Bucket counting. *)
    let bucket_size = Array.make num_buckets (O.const 0) in
    Array.iter
      (fun key ->
        let b = O.shift_right key bucket_shift in
        O.set bucket_size b (O.add (O.get bucket_size b) (O.const 1)))
      st.key_array;
    (* Prefix sums into the bucket pointers. *)
    st.bucket_ptrs.(0) <- O.const 0;
    for b = 1 to num_buckets - 1 do
      st.bucket_ptrs.(b) <- O.add st.bucket_ptrs.(b - 1) bucket_size.(b - 1)
    done;
    (* Distribution (advances the pointers to the bucket ends). *)
    Array.iter
      (fun key ->
        let b = O.shift_right key bucket_shift in
        let p = O.get st.bucket_ptrs b in
        O.set st.key_buff2 p key;
        O.set st.bucket_ptrs b (O.add p (O.const 1)))
      st.key_array;
    (* Partial verification: the rank of each test value must be
       monotone in the value — checked through the bucket pointers. *)
    List.iter
      (fun v ->
        let b1 = v asr bucket_shift and b2 = (v + 2) asr bucket_shift in
        let ok =
          O.le
            (O.get st.bucket_ptrs (O.const b1))
            (O.get st.bucket_ptrs (O.const b2))
        in
        st.passed_verification <- O.add st.passed_verification ok)
      test_values

  (* NPB full_verify: every distributed key must live in the bucket its
     value selects, delimited by the pointers the last rank left. *)
  let full_verify st =
    (* Walk buckets through the pointer array. *)
    let prev_end = ref (O.const 0) in
    for b = 0 to num_buckets - 1 do
      let stop = st.bucket_ptrs.(b) in
      (* Slice well-formedness: pointers must be monotone.  This also
         verifies the pointers of empty buckets. *)
      st.passed_verification <-
        O.add st.passed_verification (O.le !prev_end stop);
      let j = ref (O.value !prev_end) in
      while !j < O.value stop do
        let key = O.get st.key_buff2 (O.const !j) in
        let ok = O.eq (O.shift_right key bucket_shift) (O.const b) in
        (* Tie the slice bounds in as well: they located the key. *)
        let ok = O.add ok (O.sub (O.le !prev_end stop) (O.const 1)) in
        st.passed_verification <- O.add st.passed_verification ok;
        incr j
      done;
      prev_end := stop
    done

  let run st ~from ~until =
    for it = from to until - 1 do
      rank st ~iteration:(it + 1);
      st.iter_done <- st.iter_done + 1
    done;
    if until >= iterations && st.iter_done = iterations then full_verify st

  let output st = st.passed_verification
end

module Plain = Kernel (Plain_ops)

(* Criticality masks from the integer dependence tracer: union of the
   mid-run boundary (before the last rank) and the pre-verification
   boundary (after it). *)
let taint_masks () =
  let analyze_at boundary =
    let tape = Scvad_ad.Dep_tape.create ~capacity:(1 lsl 16) () in
    let module O = Traced_ops (struct
      let tape = tape
    end) in
    let module K = Kernel (O) in
    let st = K.create () in
    K.run st ~from:0 ~until:boundary;
    (* Lift the checkpoint variables. *)
    let lift = Scvad_ad.Itaint.lift tape in
    Array.iteri (fun i x -> st.K.key_array.(i) <- lift x) st.K.key_array;
    Array.iteri (fun i x -> st.K.bucket_ptrs.(i) <- lift x) st.K.bucket_ptrs;
    st.K.passed_verification <- lift st.K.passed_verification;
    let keys_snapshot = Array.copy st.K.key_array in
    let ptrs_snapshot = Array.copy st.K.bucket_ptrs in
    let passed_snapshot = st.K.passed_verification in
    K.run st ~from:boundary ~until:iterations;
    let r = Scvad_ad.Itaint.backward tape (K.output st) in
    let crit = Scvad_ad.Itaint.critical r in
    ( Array.map crit keys_snapshot,
      Array.map crit ptrs_snapshot,
      crit passed_snapshot )
  in
  (* t = 0 covers the keys the later ranks plant; t = last-1 covers a
     mid-run restart; t = last covers a pre-verification restart. *)
  let k0, p0, v0 = analyze_at 0 in
  let k1, p1, v1 = analyze_at (iterations - 1) in
  let k2, p2, v2 = analyze_at iterations in
  let union3 a b c = Array.map2 ( || ) a (Array.map2 ( || ) b c) in
  [ ("key_array", union3 k0 k1 k2);
    ("bucket_ptrs", union3 p0 p1 p2);
    ("passed_verification", [| v0 || v1 || v2 |]) ]

module App : Scvad_core.App.S = struct
  let name = "is"
  let description = "Integer bucket Sort (class S)"
  let default_niter = iterations
  let analysis_niter = iterations
  let tape_nodes_hint = 4_096
  let int_taint_masks = Some taint_masks

  module Make (S : Scvad_ad.Scalar.S) = struct
    type scalar = S.t
    type state = Plain.state

    let create = Plain.create
    let run = Plain.run
    let iterations_done (st : state) = st.Plain.iter_done
    let output st = S.of_int (Plain.output st)
    let float_vars (_ : state) : S.t Scvad_core.Variable.t list = []

    let int_vars (st : state) =
      let open Scvad_core.Variable in
      [ {
          iname = "passed_verification";
          ishape = Scvad_nd.Shape.scalar;
          iget = (fun _ -> st.Plain.passed_verification);
          iset = (fun _ v -> st.Plain.passed_verification <- v);
          icrit = By_taint;
          idoc = "verification counter (write-after-read)";
        };
        int_of_array ~name:"key_array" ~crit:By_taint
          ~doc:"keys of the bucket sort"
          (Scvad_nd.Shape.create [ total_keys ])
          st.Plain.key_array;
        int_of_array ~name:"bucket_ptrs" ~crit:By_taint
          ~doc:"bucket pointers of the bucket sort"
          (Scvad_nd.Shape.create [ num_buckets ])
          st.Plain.bucket_ptrs;
        {
          iname = "iteration";
          ishape = Scvad_nd.Shape.scalar;
          iget = (fun _ -> st.Plain.iter_done);
          iset = (fun _ v -> st.Plain.iter_done <- v);
          icrit = Always_critical "main loop index";
          idoc = "main loop index";
        } ]
  end
end
