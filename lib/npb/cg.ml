(* CG — Conjugate Gradient (NPB kernel).

   Estimates the largest eigenvalue of a sparse symmetric matrix with a
   random pattern via inverse power iteration: each main-loop iteration
   solves A z = x with 25 steps of conjugate gradient, computes
   zeta = shift + 1/(x·z) and normalizes x = z/||z||.

   The matrix is generated exactly as NPB's [makea]: for each row a
   sparse random vector from the randlc stream ([sprnvc]), the geometric
   weight ladder (ratio = rcond^(1/n)), the outer-product accumulation,
   and the (rcond - shift) diagonal regularization.  The matrix is data
   of the program, not checkpointed state, so it lives in plain floats
   and enters AD mode as constants.

   Checkpoint variables (paper Table I): [x] of NA+2 doubles, [it].
   Arrays are 1-based like the Fortran-heritage C version — x[0] and
   x[NA+1] exist but never participate, which is exactly why the paper
   finds 2 uncritical elements (Fig. 6). *)

module type CONFIG = sig
  val na : int
  val nonzer : int
  val shift : float
  val rcond : float
  val niter : int
  val cgitmax : int
end

(* NPB class S. *)
module Class_s : CONFIG = struct
  let na = 1400
  let nonzer = 7
  let shift = 10.
  let rcond = 0.1
  let niter = 15
  let cgitmax = 25
end

(* The sparse matrix in CSR form, 1-based rows and columns. *)
type matrix = {
  n : int;
  rowstr : int array; (* length n+2; row j spans rowstr.(j) .. rowstr.(j+1)-1 *)
  colidx : int array;
  values : float array;
}

(* Smallest power of two >= n (NPB's nn1). *)
let pow2_ge n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* Sparse random vector with [nz] distinct nonzero locations (NPB
   sprnvc): values and locations both drawn from the randlc stream. *)
let sprnvc rng ~n ~nz =
  let nn1 = pow2_ge n in
  let v = Array.make nz 0. and iv = Array.make nz 0 in
  let mark = Hashtbl.create (2 * nz) in
  let nzv = ref 0 in
  while !nzv < nz do
    let vecelt = Scvad_nprand.Nprand.next rng in
    let vecloc = Scvad_nprand.Nprand.next rng in
    let i = int_of_float (float_of_int nn1 *. vecloc) + 1 in
    if i <= n && not (Hashtbl.mem mark i) then begin
      Hashtbl.add mark i ();
      v.(!nzv) <- vecelt;
      iv.(!nzv) <- i;
      incr nzv
    end
  done;
  (v, iv)

(* Overwrite (or append) the entry at location [i] with 0.5 (NPB
   vecset): guarantees a diagonal contribution for every row. *)
let vecset v iv ~i =
  let n = Array.length iv in
  let rec find k = if k >= n then None else if iv.(k) = i then Some k else find (k + 1) in
  match find 0 with
  | Some k ->
      v.(k) <- 0.5;
      (v, iv)
  | None ->
      (Array.append v [| 0.5 |], Array.append iv [| i |])

let makea (module C : CONFIG) rng =
  let n = C.na in
  let ratio = C.rcond ** (1. /. float_of_int n) in
  (* Accumulate outer-product triples row-major in a hashtable keyed by
     (row, col); duplicates sum, as NPB's sparse() does. *)
  let acc = Hashtbl.create (n * 16) in
  let add irow jcol x =
    let key = (irow, jcol) in
    Hashtbl.replace acc key
      (x +. try Hashtbl.find acc key with Not_found -> 0.)
  in
  let size = ref 1. in
  for i = 1 to n do
    let v, iv = sprnvc rng ~n ~nz:C.nonzer in
    let v, iv = vecset v iv ~i in
    Array.iteri
      (fun ivelt jcol ->
        let scale = !size *. v.(ivelt) in
        Array.iteri (fun ivelt1 irow -> add irow jcol (v.(ivelt1) *. scale)) iv)
      iv;
    size := !size *. ratio
  done;
  (* Diagonal regularization: A + (rcond - shift) I. *)
  for i = 1 to n do
    add i i (C.rcond -. C.shift)
  done;
  (* Assemble CSR (1-based). *)
  let per_row = Array.make (n + 2) 0 in
  Hashtbl.iter (fun (r, _) _ -> per_row.(r) <- per_row.(r) + 1) acc;
  let rowstr = Array.make (n + 2) 0 in
  rowstr.(1) <- 0;
  for r = 1 to n do
    rowstr.(r + 1) <- rowstr.(r) + per_row.(r)
  done;
  let nnz = rowstr.(n + 1) in
  let colidx = Array.make nnz 0 and values = Array.make nnz 0. in
  let cursor = Array.copy rowstr in
  Hashtbl.iter
    (fun (r, c) x ->
      let k = cursor.(r) in
      cursor.(r) <- k + 1;
      colidx.(k) <- c;
      values.(k) <- x)
    acc;
  (* Sort each row by column for deterministic traversal. *)
  for r = 1 to n do
    let lo = rowstr.(r) and hi = rowstr.(r + 1) in
    let row = Array.init (hi - lo) (fun k -> (colidx.(lo + k), values.(lo + k))) in
    Array.sort compare row;
    Array.iteri
      (fun k (c, x) ->
        colidx.(lo + k) <- c;
        values.(lo + k) <- x)
      row
  done;
  { n; rowstr; colidx; values }

module Make_generic (C : CONFIG) (S : Scvad_ad.Scalar.S) = struct
  type scalar = S.t

  type state = {
    matrix : matrix;
    x : S.t array; (* NA+2, 1-based; checkpoint variable *)
    z : S.t array;
    p : S.t array;
    q : S.t array;
    r : S.t array;
    mutable zeta : S.t;
    mutable rnorm : S.t;
    mutable iter_done : int;
  }

  let create () =
    let rng = Scvad_nprand.Nprand.create Scvad_nprand.Nprand.cg_seed in
    (* NPB burns one deviate before makea. *)
    ignore (Scvad_nprand.Nprand.next rng);
    let matrix = makea (module C) rng in
    let len = C.na + 2 in
    {
      matrix;
      x = Array.init len (fun j -> if j >= 1 && j <= C.na then S.one else S.zero);
      z = Array.make len S.zero;
      p = Array.make len S.zero;
      q = Array.make len S.zero;
      r = Array.make len S.zero;
      zeta = S.zero;
      rnorm = S.zero;
      iter_done = 0;
    }

  (* q <- A p over rows 1..NA; matrix entries are AD constants. *)
  let spmv st (dst : S.t array) (src : S.t array) =
    let m = st.matrix in
    for j = 1 to m.n do
      let acc = ref S.zero in
      for k = m.rowstr.(j) to m.rowstr.(j + 1) - 1 do
        acc := S.(!acc +. (of_float m.values.(k) *. src.(m.colidx.(k))))
      done;
      dst.(j) <- !acc
    done

  let dot (a : S.t array) (b : S.t array) ~n =
    let acc = ref S.zero in
    for j = 1 to n do
      acc := S.(!acc +. (a.(j) *. b.(j)))
    done;
    !acc

  (* One NPB conj_grad call: 25 CG steps on A z = x, then the residual
     norm ||x - A z||. *)
  let conj_grad st =
    let n = st.matrix.n in
    for j = 1 to n do
      st.q.(j) <- S.zero;
      st.z.(j) <- S.zero;
      st.r.(j) <- st.x.(j);
      st.p.(j) <- st.x.(j)
    done;
    let rho = ref (dot st.r st.r ~n) in
    for _cgit = 1 to C.cgitmax do
      spmv st st.q st.p;
      let d = dot st.p st.q ~n in
      let alpha = S.(!rho /. d) in
      for j = 1 to n do
        st.z.(j) <- S.(st.z.(j) +. (alpha *. st.p.(j)));
        st.r.(j) <- S.(st.r.(j) -. (alpha *. st.q.(j)))
      done;
      let rho0 = !rho in
      rho := dot st.r st.r ~n;
      let beta = S.(!rho /. rho0) in
      for j = 1 to n do
        st.p.(j) <- S.(st.r.(j) +. (beta *. st.p.(j)))
      done
    done;
    spmv st st.r st.z;
    let sum = ref S.zero in
    for j = 1 to n do
      let d = S.(st.x.(j) -. st.r.(j)) in
      sum := S.(!sum +. (d *. d))
    done;
    st.rnorm <- S.sqrt !sum

  let step st =
    let n = st.matrix.n in
    conj_grad st;
    let norm_temp1 = dot st.x st.z ~n in
    let norm_temp2 = S.(one /. sqrt (dot st.z st.z ~n)) in
    st.zeta <- S.(of_float C.shift +. (one /. norm_temp1));
    for j = 1 to n do
      st.x.(j) <- S.(norm_temp2 *. st.z.(j))
    done

  let run st ~from ~until =
    for _ = from to until - 1 do
      step st;
      st.iter_done <- st.iter_done + 1
    done

  let iterations_done st = st.iter_done

  (* The verification quantity: final zeta (plus the residual norm so
     the CG solve itself is observed). *)
  let output st = S.(st.zeta +. st.rnorm)

  let float_vars st =
    [ Scvad_core.Variable.of_array ~name:"x"
        ~doc:"input vector of the linear system (1-based, x[0] and x[NA+1] unused)"
        (Scvad_nd.Shape.create [ C.na + 2 ])
        st.x ]

  let int_vars st =
    [ {
        Scvad_core.Variable.iname = "it";
        ishape = Scvad_nd.Shape.scalar;
        iget = (fun _ -> st.iter_done);
        iset = (fun _ v -> st.iter_done <- v);
        icrit = Scvad_core.Variable.Always_critical "main loop index";
        idoc = "main loop index";
      } ]
end

(* Class-S application (the paper's configuration). *)
module App : Scvad_core.App.S = struct
  let name = "cg"
  let description = "Conjugate Gradient, irregular memory access (class S)"
  let default_niter = Class_s.niter
  let analysis_niter = 1
  let tape_nodes_hint = 4_500_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_generic (Class_s) (S)
end

(* NPB class W (the scaling study). *)
module Class_w : CONFIG = struct
  let na = 7000
  let nonzer = 8
  let shift = 12.
  let rcond = 0.1
  let niter = 15
  let cgitmax = 25
end

module App_w : Scvad_core.App.S = struct
  let name = "cg-w"
  let description = "Conjugate Gradient (class W, NA = 7000)"
  let default_niter = Class_w.niter
  let analysis_niter = 1
  let tape_nodes_hint = 28_600_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_generic (Class_w) (S)
end

(* Reduced-size configuration for expensive ablations (forward probe). *)
module Tiny_config : CONFIG = struct
  let na = 60
  let nonzer = 3
  let shift = 10.
  let rcond = 0.1
  let niter = 4
  let cgitmax = 10
end

module Tiny_app : Scvad_core.App.S = struct
  let name = "cg-tiny"
  let description = "Conjugate Gradient, reduced size for ablations"
  let default_niter = Tiny_config.niter
  let analysis_niter = 1

  (* The static cost model predicts exactly 21,648 nodes (and the
     dynamic tape confirms it); a round 22k replaces the old 32,768
     guess, which over-allocated by half. *)
  let tape_nodes_hint = 22_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_generic (Tiny_config) (S)
end
