(* BT — Block Tri-diagonal solver (NPB kernel).

   Alternating-direction implicit time stepping: each step computes the
   right-hand side from the current solution and performs three implicit
   line sweeps (x, y, z), each solving a block-tridiagonal system with
   5x5 blocks per interior line, then adds the update to u.  After the
   last step, error_norm and rhs_norm (paper Fig. 2) reduce the state to
   the verification output.

   Checkpoint variables (paper Table I): double u[12][13][13][5] and
   int step.  The analysis finds the Fig. 3 pattern: 1500 uncritical
   elements on the padded planes j = 12 and i = 12. *)

module Make_sized (G : Adi_common.GRID) (S : Scvad_ad.Scalar.S) = struct
  module A = Adi_common.Dims (G)
  type scalar = S.t

  module C = Adi_common.Make_sized (G) (S)
  module B5 = Scvad_solvers.Block5.Make (S)
  module BT = Scvad_solvers.Btridiag.Make (S)

  let dt = 0.01 (* class-S time step *)

  type state = {
    u : S.t array; (* [12][13][13][5]; checkpoint variable *)
    rhs : S.t array; (* work array *)
    mutable iter_done : int;
  }

  let create () =
    let u = Array.make A.total S.zero in
    C.initialize u;
    { u; rhs = Array.make A.total S.zero; iter_done = 0 }

  (* The u-dependent off-diagonal coupling of the line Jacobian: a small
     5x5 matrix built from the five components at one grid point. *)
  let coupling_block (u : S.t array) off =
    let eps = S.of_float (dt *. 0.02) in
    let m = B5.zero () in
    for r = 0 to 4 do
      for c = 0 to 4 do
        B5.set m r c S.(eps *. u.(off + ((r + c) mod 5)))
      done
    done;
    m

  let diag_add m x =
    for r = 0 to 4 do
      B5.set m r r S.(B5.get m r r +. x)
    done

  (* Solve one implicit line of [A.grid] points along direction [dir]
     (0 = i, 1 = j, 2 = k) at fixed transverse coordinates (t1, t2);
     line offsets are produced by [off_at].  The solved correction
     overwrites the rhs line. *)
  let line_solve st ~off_at =
    let n = A.grid in
    let d = S.of_float (dt *. 0.5) in
    let a = Array.init n (fun p -> coupling_block st.u (off_at p)) in
    let b = Array.init n (fun p -> coupling_block st.u (off_at p)) in
    let c = Array.init n (fun p -> coupling_block st.u (off_at p)) in
    let r =
      Array.init n (fun p ->
          Array.init 5 (fun m -> st.rhs.(off_at p + m)))
    in
    for p = 0 to n - 1 do
      diag_add b.(p) S.(one +. (of_float 2. *. d));
      diag_add a.(p) S.(~-.d);
      diag_add c.(p) S.(~-.d)
    done;
    BT.solve ~a ~b ~c ~r;
    for p = 0 to n - 1 do
      for m = 0 to 4 do
        st.rhs.(off_at p + m) <- r.(p).(m)
      done
    done

  let x_solve st =
    for k = 1 to A.grid - 2 do
      for j = 1 to A.grid - 2 do
        line_solve st ~off_at:(fun i -> A.idx k j i 0)
      done
    done

  let y_solve st =
    for k = 1 to A.grid - 2 do
      for i = 1 to A.grid - 2 do
        line_solve st ~off_at:(fun j -> A.idx k j i 0)
      done
    done

  let z_solve st =
    for j = 1 to A.grid - 2 do
      for i = 1 to A.grid - 2 do
        line_solve st ~off_at:(fun k -> A.idx k j i 0)
      done
    done

  (* u += correction over the interior (NPB's add.c). *)
  let add st =
    for k = 1 to A.grid - 2 do
      for j = 1 to A.grid - 2 do
        for i = 1 to A.grid - 2 do
          for m = 0 to 4 do
            let o = A.idx k j i m in
            st.u.(o) <- S.(st.u.(o) +. st.rhs.(o))
          done
        done
      done
    done

  let step st =
    C.compute_rhs ~dt st.u st.rhs;
    x_solve st;
    y_solve st;
    z_solve st;
    add st

  let run st ~from ~until =
    for _ = from to until - 1 do
      step st;
      st.iter_done <- st.iter_done + 1
    done

  let iterations_done st = st.iter_done

  (* Verification output: error norms against the exact solution plus
     the norms of a freshly computed residual. *)
  let output st =
    let err = C.error_norm st.u in
    C.compute_rhs ~dt st.u st.rhs;
    let rhs = C.rhs_norm st.rhs in
    S.(C.sum err +. C.sum rhs)

  let float_vars st =
    [ (* guard: assume smooth u — the Block5/Btridiag solver modules are
         straight-line Scalar.S arithmetic: fixed index ranges, no
         data-dependent branching, so the leaked flow is smooth *)
      Scvad_core.Variable.of_array ~name:"u"
        ~doc:"solution of the nonlinear PDE system (padded to 13 in j and i)"
        (Lazy.force A.shape4) st.u ]

  let int_vars st =
    [ {
        Scvad_core.Variable.iname = "step";
        ishape = Scvad_nd.Shape.scalar;
        iget = (fun _ -> st.iter_done);
        iset = (fun _ v -> st.iter_done <- v);
        icrit = Scvad_core.Variable.Always_critical "main loop index";
        idoc = "main loop index";
      } ]
end

module Make_generic (S : Scvad_ad.Scalar.S) = Make_sized (Adi_common.Class_s_grid) (S)

module App : Scvad_core.App.S = struct
  let name = "bt"
  let description = "Block Tri-diagonal ADI solver (class S)"
  let default_niter = 60
  let analysis_niter = 1
  let tape_nodes_hint = 3_700_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_generic (S)
end

(* NPB class-W problem size: the scaling study. *)
module App_w : Scvad_core.App.S = struct
  let name = "bt-w"
  let description = "Block Tri-diagonal ADI solver (class W, 24^3)"
  let default_niter = 200
  let analysis_niter = 1
  let tape_nodes_hint = 35_500_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_sized (Adi_common.Bt_w_grid) (S)
end
