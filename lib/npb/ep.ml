(* EP — Embarrassingly Parallel (NPB kernel, class S: 2^24 Gaussian
   pairs).

   Generates pairs of uniform deviates in batches of 2^17, converts
   accepted pairs to independent Gaussian deviates by Marsaglia's polar
   method, and accumulates the sums [sx], [sy] and the annulus counts
   [q].  Each batch jumps to its own position in the randlc stream
   (NPB's ipow46 seed arithmetic), so a restarted run regenerates the
   identical stream from any batch boundary.

   Checkpoint variables (Table I): double sx, double sy, double q[10],
   double buffer[2*nk], int k.  sx/sy/q are read-modify-write
   accumulators whose checkpointed value flows straight into the final
   verification sums (paper §IV-B), so every element is critical.
   [buffer] is the per-batch scratch of uniform deviates: each batch
   regenerates it in full with [vranlc] before reading it, so its
   checkpointed value is dead on restart — the static activity pass
   proves this (kill-before-read) and the analyzer's fast path skips
   lifting it. *)

let m = 24 (* class S: 2^m random pairs *)
let mk = 16 (* batch exponent: 2^mk pairs per batch *)
let nn = 1 lsl (m - mk) (* 256 batches — the main loop *)
let nk = 1 lsl mk
let nq = 10

module Make_generic (S : Scvad_ad.Scalar.S) = struct
  type scalar = S.t

  type state = {
    mutable sx : S.t;
    mutable sy : S.t;
    q : S.t array;
    buffer : float array; (* uniform deviates of the current batch *)
    mutable iter_done : int;
  }

  let create () =
    {
      sx = S.zero;
      sy = S.zero;
      q = Array.make nq S.zero;
      buffer = Array.make (2 * nk) 0.;
      iter_done = 0;
    }

  (* One batch: jump the stream, then consume 2^mk candidate pairs. *)
  let batch st k =
    let rng = Scvad_nprand.Nprand.create Scvad_nprand.Nprand.ep_seed in
    (* Advance to this batch's segment: seed * a^(2*nk*k) mod 2^46. *)
    if k > 0 then begin
      let jump = Scvad_nprand.Nprand.ipow46 Scvad_nprand.Nprand.default_mult (2 * nk * k) in
      ignore (Scvad_nprand.Nprand.randlc rng ~a:jump)
    end;
    Scvad_nprand.Nprand.vranlc rng ~a:Scvad_nprand.Nprand.default_mult (2 * nk)
      st.buffer 0;
    for i = 0 to nk - 1 do
      let x1 = (2. *. st.buffer.(2 * i)) -. 1. in
      let x2 = (2. *. st.buffer.((2 * i) + 1)) -. 1. in
      let t = (x1 *. x1) +. (x2 *. x2) in
      if t <= 1. then begin
        let t2 = sqrt (-2. *. log t /. t) in
        let g1 = x1 *. t2 and g2 = x2 *. t2 in
        let l = int_of_float (Float.max (Float.abs g1) (Float.abs g2)) in
        st.sx <- S.(st.sx +. of_float g1);
        st.sy <- S.(st.sy +. of_float g2);
        st.q.(l) <- S.(st.q.(l) +. one)
      end
    done

  let run st ~from ~until =
    for k = from to until - 1 do
      batch st k;
      st.iter_done <- st.iter_done + 1
    done

  let iterations_done st = st.iter_done

  (* Verification output: the Gaussian sums plus the annulus counts. *)
  let output st =
    let acc = ref S.(st.sx +. st.sy) in
    Array.iter (fun c -> acc := S.(!acc +. c)) st.q;
    !acc

  let float_vars st =
    let open Scvad_core.Variable in
    [ make ~name:"sx" ~doc:"sum of Gaussian deviates, X dimension"
        ~shape:Scvad_nd.Shape.scalar ~spe:1
        ~get:(fun _ _ -> st.sx)
        ~set:(fun _ _ v -> st.sx <- v)
        ();
      make ~name:"sy" ~doc:"sum of Gaussian deviates, Y dimension"
        ~shape:Scvad_nd.Shape.scalar ~spe:1
        ~get:(fun _ _ -> st.sy)
        ~set:(fun _ _ v -> st.sy <- v)
        ();
      of_array ~name:"q" ~doc:"annulus counts of the accepted pairs"
        (Scvad_nd.Shape.create [ nq ])
        st.q;
      make ~name:"buffer" ~doc:"uniform deviates of the current batch"
        ~shape:(Scvad_nd.Shape.create [ 2 * nk ])
        ~spe:1
        ~get:(fun e _ -> S.of_float st.buffer.(e))
        ~set:(fun e _ v -> st.buffer.(e) <- S.to_float v)
        () ]

  let int_vars st =
    [ {
        Scvad_core.Variable.iname = "k";
        ishape = Scvad_nd.Shape.scalar;
        iget = (fun _ -> st.iter_done);
        iset = (fun _ v -> st.iter_done <- v);
        icrit = Scvad_core.Variable.Always_critical "main loop index";
        idoc = "main loop index (batch counter)";
      } ]
end

module App : Scvad_core.App.S = struct
  let name = "ep"
  let description = "Embarrassingly Parallel Gaussian deviates (class S)"
  let default_niter = nn
  let analysis_niter = 1
  let tape_nodes_hint = 310_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_generic (S)
end
