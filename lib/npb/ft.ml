(* FT — 3-D Fast Fourier Transform PDE solver (NPB kernel, class S:
   64^3 grid, 6 iterations).

   The frequency-domain signal [y] (NPB's u0) is evolved each iteration
   by the exponential factors, inverse-transformed into a work grid, and
   reduced to a complex checksum that is appended to [sums].

   Storage is NPB's padded layout: a [64][64][65] array of dcomplex
   cells with the x-dimension padded by one — 266240 elements of which
   the 4096 cells of the padding plane never participate (the paper's
   Fig. 8; "due to imperfect coding").

   Checkpoint variables (Table I): dcomplex y[64][64][65],
   dcomplex sums[6], int kt.  The random initial state and the twiddle
   factors are reconstructed deterministically at create time and enter
   AD mode as constants, exactly like CG's matrix. *)

let n1 = 64 (* x extent (plus 1 padding) *)
let n2 = 64 (* y extent *)
let n3 = 64 (* z extent *)
let xpad = n1 + 1
let ntotal = n1 * n2 * n3
let cells = n3 * n2 * xpad (* 266240 stored cells *)
let niter = 6
let alpha = 1e-6

let idx z y x = (((z * n2) + y) * xpad) + x

(* Signed frequency of index i on an n-point axis. *)
let freq n i = if i < n / 2 then i else i - n

module Make_generic (S : Scvad_ad.Scalar.S) = struct
  type scalar = S.t

  module C = Scvad_solvers.Dcomplex.Make (S)
  module F = Scvad_solvers.Fft.Make (S)
  module Cf = Scvad_solvers.Dcomplex.Make (Scvad_ad.Float_scalar)
  module Ff = Scvad_solvers.Fft.Make (Scvad_ad.Float_scalar)

  type state = {
    y : C.t array; (* [64][64][65] frequency-domain signal *)
    sums : C.t array; (* per-iteration checksums *)
    twiddle : float array; (* evolution factors, constant data *)
    w : C.t array; (* work grid for the inverse transform *)
    pencil : C.t array; (* gather buffer for strided FFT pencils *)
    mutable iter_done : int;
  }

  (* Initial condition: NPB's compute_initial_conditions (a vranlc
     random field) followed by a forward 3-D FFT — all in plain floats,
     entering the state as constants. *)
  let initial_frequency_field () =
    let grid = Array.make cells Cf.zero in
    let rng = Scvad_nprand.Nprand.create Scvad_nprand.Nprand.cg_seed in
    for z = 0 to n3 - 1 do
      for y = 0 to n2 - 1 do
        for x = 0 to n1 - 1 do
          let re = Scvad_nprand.Nprand.next rng in
          let im = Scvad_nprand.Nprand.next rng in
          grid.(idx z y x) <- Cf.of_floats re im
        done
      done
    done;
    (* Forward 3-D FFT, dimension by dimension (gather strided
       pencils). *)
    let tmp = Array.make n1 Cf.zero in
    let do_dim ~count ~base_of ~stride ~n =
      for p = 0 to count - 1 do
        let base = base_of p in
        for q = 0 to n - 1 do
          tmp.(q) <- grid.(base + (q * stride))
        done;
        Ff.forward tmp ~off:0 ~n;
        for q = 0 to n - 1 do
          grid.(base + (q * stride)) <- tmp.(q)
        done
      done
    in
    do_dim ~count:(n3 * n2) ~base_of:(fun p -> p * xpad) ~stride:1 ~n:n1;
    do_dim ~count:(n3 * n1)
      ~base_of:(fun p -> ((p / n1) * n2 * xpad) + (p mod n1))
      ~stride:xpad ~n:n2;
    do_dim ~count:(n2 * n1)
      ~base_of:(fun p -> p)
      ~stride:(n2 * xpad) ~n:n3;
    grid

  let make_twiddle () =
    let t = Array.make cells 1. in
    let ap = -4. *. alpha *. Float.pi *. Float.pi in
    for z = 0 to n3 - 1 do
      for y = 0 to n2 - 1 do
        for x = 0 to n1 - 1 do
          let kx = float_of_int (freq n1 x)
          and ky = float_of_int (freq n2 y)
          and kz = float_of_int (freq n3 z) in
          t.(idx z y x) <- exp (ap *. ((kx *. kx) +. (ky *. ky) +. (kz *. kz)))
        done
      done
    done;
    t

  let create () =
    let init = initial_frequency_field () in
    let y =
      Array.map
        (fun c ->
          let re, im = Cf.to_floats c in
          C.of_floats re im)
        init
    in
    {
      y;
      sums = Array.make niter C.zero;
      twiddle = make_twiddle ();
      w = Array.make cells C.zero;
      pencil = Array.make (max n1 (max n2 n3)) C.zero;
      iter_done = 0;
    }

  (* Inverse 3-D FFT of the work grid (unnormalized, like NPB's
     fft(-1); the checksum divides by NTOTAL). *)
  let inverse_fft3 st =
    let do_dim ~count ~base_of ~stride ~n =
      for p = 0 to count - 1 do
        let base = base_of p in
        for q = 0 to n - 1 do
          st.pencil.(q) <- st.w.(base + (q * stride))
        done;
        F.transform ~sign:1. st.pencil ~off:0 ~n;
        for q = 0 to n - 1 do
          st.w.(base + (q * stride)) <- st.pencil.(q)
        done
      done
    in
    do_dim ~count:(n3 * n2) ~base_of:(fun p -> p * xpad) ~stride:1 ~n:n1;
    do_dim ~count:(n3 * n1)
      ~base_of:(fun p -> ((p / n1) * n2 * xpad) + (p mod n1))
      ~stride:xpad ~n:n2;
    do_dim ~count:(n2 * n1)
      ~base_of:(fun p -> p)
      ~stride:(n2 * xpad) ~n:n3

  let step st =
    (* evolve: y *= twiddle, and the work grid takes a copy. *)
    for z = 0 to n3 - 1 do
      for yy = 0 to n2 - 1 do
        for x = 0 to n1 - 1 do
          let o = idx z yy x in
          let evolved = C.scale (S.of_float st.twiddle.(o)) st.y.(o) in
          st.y.(o) <- evolved;
          st.w.(o) <- evolved
        done
      done
    done;
    inverse_fft3 st;
    (* checksum over 1024 scrambled cells (NPB checksum). *)
    let acc = ref C.zero in
    for j = 1 to 1024 do
      let q = j mod n1 and r = 3 * j mod n2 and s = 5 * j mod n3 in
      acc := C.add !acc st.w.(idx s r q)
    done;
    let chk = C.scale (S.of_float (1. /. float_of_int ntotal)) !acc in
    (* NPB accumulates (each MPI rank adds its partial sum), so sums[i]
       is read-modify-write — which is exactly why every element of the
       checkpointed sums is critical at every checkpoint boundary. *)
    if st.iter_done < niter then
      st.sums.(st.iter_done) <- C.add st.sums.(st.iter_done) chk

  let run st ~from ~until =
    for _ = from to until - 1 do
      step st;
      st.iter_done <- st.iter_done + 1
    done

  let iterations_done st = st.iter_done

  (* Verification output: the aggregate of all per-iteration checksums
     (NPB prints and verifies each). *)
  let output st =
    Array.fold_left
      (fun acc c -> S.(acc +. C.re c +. C.im c))
      S.zero st.sums

  let float_vars st =
    let open Scvad_core.Variable in
    [ (* guard: assume smooth y — the Fft/Dcomplex modules do fixed-shape
         butterflies whose twiddle indices are iteration constants: no
         value-dependent control flow in the leaked calls *)
      make ~name:"y"
        ~doc:"frequency-domain signal (x padded to 65; dcomplex cells)"
        ~shape:(Scvad_nd.Shape.create [ n3; n2; xpad ])
        ~spe:2
        ~get:(fun e k -> if k = 0 then C.re st.y.(e) else C.im st.y.(e))
        ~set:(fun e k v ->
          let c = st.y.(e) in
          st.y.(e) <- (if k = 0 then C.make v (C.im c) else C.make (C.re c) v))
        ();
      (* guard: assume smooth sums — checksum accumulation is a plain
         dcomplex sum; only Dcomplex arithmetic is leaked *)
      make ~name:"sums" ~doc:"per-iteration checksums (dcomplex)"
        ~shape:(Scvad_nd.Shape.create [ niter ])
        ~spe:2
        ~get:(fun e k -> if k = 0 then C.re st.sums.(e) else C.im st.sums.(e))
        ~set:(fun e k v ->
          let c = st.sums.(e) in
          st.sums.(e) <-
            (if k = 0 then C.make v (C.im c) else C.make (C.re c) v))
        () ]

  let int_vars st =
    [ {
        Scvad_core.Variable.iname = "kt";
        ishape = Scvad_nd.Shape.scalar;
        iget = (fun _ -> st.iter_done);
        iset = (fun _ v -> st.iter_done <- v);
        icrit = Scvad_core.Variable.Always_critical "main loop index";
        idoc = "main loop index";
      } ]
end

module App : Scvad_core.App.S = struct
  let name = "ft"
  let description = "3-D FFT PDE solver (class S)"
  let default_niter = niter
  let analysis_niter = 1
  let tape_nodes_hint = 24_800_000
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = Make_generic (S)
end
