(* Univariate node-count polynomials in the problem-class grid size.

   The ADI kernels' loop nests are affine in [grid], so their node
   counts are exact integer-valued polynomials of small degree; Newton
   divided differences over a handful of interpreter samples recover
   the coefficients, and evaluation at class-W/A sizes extrapolates to
   tapes the repository has never been able to record.  All arithmetic
   stays well inside the 2^53 exact-integer range of doubles. *)

type t = float array  (* monomial coefficients, degree ascending *)

let degree (p : t) = Array.length p - 1

(* Newton interpolation through (x, y) points, expanded to monomial
   coefficients.  Points must have distinct x. *)
let fit (points : (int * int) list) : t =
  let n = List.length points in
  if n = 0 then invalid_arg "Poly.fit: no points";
  let xs = Array.of_list (List.map (fun (x, _) -> float_of_int x) points) in
  let dd = Array.of_list (List.map (fun (_, y) -> float_of_int y) points) in
  (* divided differences in place: dd.(i) becomes f[x0..xi] *)
  for level = 1 to n - 1 do
    for i = n - 1 downto level do
      dd.(i) <- (dd.(i) -. dd.(i - 1)) /. (xs.(i) -. xs.(i - level))
    done
  done;
  (* expand the Newton form by Horner: c <- c * (x - x_i) + dd_i *)
  let coeffs = Array.make n 0. in
  coeffs.(0) <- dd.(n - 1);
  let deg = ref 0 in
  for i = n - 2 downto 0 do
    (* multiply by (x - xs.(i)) *)
    for j = !deg + 1 downto 1 do
      coeffs.(j) <- coeffs.(j - 1) -. (xs.(i) *. coeffs.(j))
    done;
    coeffs.(0) <- (-.xs.(i) *. coeffs.(0)) +. dd.(i);
    incr deg
  done;
  (* trim numerically-zero leading coefficients *)
  let last = ref (n - 1) in
  while !last > 0 && Float.abs coeffs.(!last) < 1e-6 do
    decr last
  done;
  Array.sub coeffs 0 (!last + 1)

let eval (p : t) (x : float) =
  let acc = ref 0. in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_int (p : t) (x : int) =
  int_of_float (Float.round (eval p (float_of_int x)))

let to_string ?(var = "g") (p : t) =
  let term i c =
    let c =
      let r = Float.round c in
      if Float.abs (c -. r) < 1e-6 then Printf.sprintf "%.0f" r
      else Printf.sprintf "%g" c
    in
    match i with
    | 0 -> c
    | 1 -> Printf.sprintf "%s*%s" c var
    | _ -> Printf.sprintf "%s*%s^%d" c var i
  in
  let terms = ref [] in
  Array.iteri
    (fun i c -> if Float.abs c > 1e-9 then terms := term i c :: !terms)
    p;
  if !terms = [] then "0" else String.concat " + " !terms
