(* Snapshot-placement planning from predicted segment costs.

   The segmented tape normally decides where to snapshot on the fly
   (log-stride retention, binomial replay-time re-captures) because it
   cannot know the future: segment node counts only exist once the
   segments have run.  The static cost model removes that ignorance —
   {!Predict} hands us every segment's node count before any recording
   — so snapshot placement becomes an offline optimization:

   - [place] picks boundaries by a weighted partition DP: the backward
     sweep proceeds top-down over storage windows of [W] nodes, and a
     snapshot chunk holding [C] nodes costs about [C^2 / 2W] replayed
     nodes (each of its ~C/W windows replays from the chunk head, on
     average half the chunk away).  Minimizing the sum over at most
     [snapshot_slots] chunks is a classic 1-D partition DP.

   - [simulate] then predicts what `Tape.Segmented` will actually do
     with those boundaries: it mirrors the recording-time slab
     retention, the top-down window sweep, nearest-snapshot replay,
     mid-segment window-filled aborts, and binomial replay-time
     re-captures, at slab granularity.  The one thing it cannot know
     is adjoint sparsity — the real sweep skips windows no adjoint
     reaches — so replay predictions are exact for a dense sweep and
     upper bounds otherwise.  Peak-live predictions are exact either
     way (the budget caps materialization, sparsity only lowers
     traffic). *)

type t = {
  boundaries : int list;  (** snapshot boundaries, ascending from 0 *)
  slab_nodes : int;
  budget_slabs : int;
  total_nodes : int;  (** prelude + segments *)
  peak_live_nodes : int;  (** predicted peak materialized slots *)
  replays : int;  (** predicted replay passes (dense sweep) *)
  replayed_nodes : int;  (** predicted re-pushed nodes (dense sweep) *)
}

(* Mirrors Tape.Segmented.create's slab sizing (tape.mli documents the
   formula); the planner must agree with the tape it plans for, which
   the segmented-tape property tests assert. *)
let default_slab_nodes ~budget_nodes =
  Stdlib.max 16 (Stdlib.min 65536 (budget_nodes / 8))

(* Same recurrence as Tape.Segmented.binomial_plan: absolute boundary
   indices where a replay pass from [base] over [len] segments should
   drop snapshots, with [slots] free. *)
let binomial_plan ~base ~len ~slots =
  if len <= 1 || slots <= 0 then []
  else begin
    let memo = Hashtbl.create 64 in
    let rec cost l c =
      if l <= 1 then 0
      else if c <= 0 then l * (l - 1) / 2
      else
        match Hashtbl.find_opt memo (l, c) with
        | Some (v, _) -> v
        | None ->
            let best = ref max_int and best_d = ref 1 in
            for d = 1 to l - 1 do
              let v = d + cost (l - d) (c - 1) + cost d c in
              if v < !best then begin
                best := v;
                best_d := d
              end
            done;
            Hashtbl.add memo (l, c) (!best, !best_d);
            !best
    in
    let split l c =
      ignore (cost l c);
      match Hashtbl.find_opt memo (l, c) with Some (_, d) -> d | None -> 1
    in
    let rec go pos l c acc =
      if l <= 1 || c <= 0 then List.rev acc
      else
        let d = split l c in
        go (pos + d) (l - d) (c - 1) ((pos + d) :: acc)
    in
    go base len slots []
  end

(* Partition the segments into at most [chunks] contiguous chunks
   (snapshot at each chunk head) minimizing the summed quadratic replay
   cost.  O(nseg^2 * chunks) with prefix sums — boundary counts are a
   few hundred at most. *)
let place ~segments ~window_nodes ~chunks =
  let n = Array.length segments in
  if n = 0 then [ 0 ]
  else begin
    let chunks = Stdlib.max 1 (Stdlib.min chunks n) in
    let prefix = Array.make (n + 1) 0. in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) +. float_of_int segments.(i)
    done;
    let w = float_of_int (Stdlib.max 1 window_nodes) in
    let chunk_cost i j =
      (* replay cost of one chunk covering segments [i, j) *)
      let c = prefix.(j) -. prefix.(i) in
      c *. c /. (2. *. w)
    in
    (* best.(c).(j) = min cost of covering segments [0, j) with c chunks *)
    let inf = Float.max_float in
    let best = Array.make_matrix (chunks + 1) (n + 1) inf in
    let cut = Array.make_matrix (chunks + 1) (n + 1) 0 in
    best.(0).(0) <- 0.;
    for c = 1 to chunks do
      best.(c).(0) <- 0.;
      for j = 1 to n do
        for i = c - 1 to j - 1 do
          if best.(c - 1).(i) < inf then begin
            let v = best.(c - 1).(i) +. chunk_cost i j in
            if v < best.(c).(j) then begin
              best.(c).(j) <- v;
              cut.(c).(j) <- i
            end
          end
        done
      done
    done;
    (* fewer chunks can never beat more (empty chunks are free), so read
       the full-slot row back *)
    let rec walk c j acc =
      if j = 0 then acc
      else
        let i = cut.(c).(j) in
        walk (c - 1) i (i :: acc)
    in
    let bs = walk chunks n [] in
    (* dedup (empty chunks repeat a boundary) and anchor at 0 *)
    let bs = List.sort_uniq Stdlib.compare (0 :: bs) in
    List.filter (fun b -> b < n) bs
  end

(* Predict the stats of a dense backward sweep over a Planned recording:
   a slab-granular re-enactment of Tape.Segmented's recording retention
   and window replay logic. *)
let simulate ~prelude ~segments ~boundaries ~slab_nodes ~budget_slabs
    ~snapshot_slots =
  let nseg = Array.length segments in
  let sn = slab_nodes in
  let marks = Array.make (nseg + 1) prelude in
  for s = 0 to nseg - 1 do
    marks.(s + 1) <- marks.(s) + segments.(s)
  done;
  let total = marks.(nseg) in
  (* snapshots taken while recording: the planned boundaries, first
     [snapshot_slots] of them *)
  let snaps = Hashtbl.create 16 in
  List.iteri
    (fun i b -> if i < snapshot_slots && b < nseg then Hashtbl.replace snaps b ())
    boundaries;
  let snap_cnt = ref (Hashtbl.length snaps) in
  (* --- recording: trailing-window retention ----------------------- *)
  let live = Hashtbl.create 64 in
  let live_cnt = ref 0 and live_lo = ref 0 and peak = ref 0 in
  let materialize k =
    if not (Hashtbl.mem live k) then begin
      Hashtbl.replace live k ();
      incr live_cnt;
      if !live_cnt > !peak then peak := !live_cnt
    end
  in
  let release k =
    if Hashtbl.mem live k then begin
      Hashtbl.remove live k;
      decr live_cnt
    end
  in
  materialize 0;
  let k_max = if total = 0 then 0 else (total - 1) / sn in
  (* discarding needs a boundary and the boundary-0 snapshot, exactly
     like Tape.Segmented.can_discard; both exist once the first segment
     with a planned 0-snapshot has started, i.e. for any node at or
     beyond marks.(0) *)
  for k = 1 to k_max do
    let can_discard = nseg > 0 && !snap_cnt > 0 && k * sn >= marks.(0) in
    while !live_cnt >= budget_slabs && can_discard && !live_lo < k do
      release !live_lo;
      incr live_lo
    done;
    materialize k
  done;
  (* --- backward: top-down windows, replay on miss ------------------ *)
  let replays = ref 0 and replayed = ref 0 in
  if total > 0 && nseg > 0 then begin
    let output = total - 1 in
    let lo_node = marks.(0) in
    if output >= lo_node then begin
      let k_hi = output / sn and k_lo = lo_node / sn in
      let pos = ref k_hi in
      while !pos >= k_lo do
        let win_hi = !pos in
        let win_lo = Stdlib.max k_lo (win_hi - budget_slabs + 1) in
        let w_hi_node = Stdlib.min output (((win_hi + 1) * sn) - 1) in
        let all_live = ref true in
        for k = win_lo to win_hi do
          if not (Hashtbl.mem live k) then all_live := false
        done;
        if not !all_live then begin
          let start_node = Stdlib.max (win_lo * sn) lo_node in
          let base = ref (-1) in
          for s = nseg - 1 downto 0 do
            if !base < 0 && Hashtbl.mem snaps s && marks.(s) <= start_node
            then base := s
          done;
          let base = if !base < 0 then 0 else !base in
          incr replays;
          let stop_node = w_hi_node in
          let s_stop = ref base in
          for s = base + 1 to nseg - 1 do
            if marks.(s) <= stop_node then s_stop := s
          done;
          let recapture =
            binomial_plan ~base ~len:(!s_stop - base)
              ~slots:(snapshot_slots - !snap_cnt)
          in
          let plan = ref recapture in
          let n = ref marks.(base) and s = ref base in
          let filled = (win_hi + 1) * sn in
          (try
             while !n <= stop_node && !s < nseg do
               (match !plan with
               | p :: rest when p = !s ->
                   plan := rest;
                   if !snap_cnt < snapshot_slots && not (Hashtbl.mem snaps !s)
                   then begin
                     Hashtbl.replace snaps !s ();
                     incr snap_cnt
                   end
               | _ -> ());
               let seg_end = marks.(!s + 1) in
               (* pushes materialize window slabs as they cross them *)
               let from_k = Stdlib.max win_lo (!n / sn) in
               let to_k =
                 Stdlib.min win_hi ((Stdlib.min seg_end filled - 1) / sn)
               in
               for k = from_k to to_k do
                 materialize k
               done;
               if seg_end > filled then begin
                 (* the push at [filled] would cross above the window:
                    Window_filled aborts the pass mid-segment *)
                 n := filled;
                 raise Exit
               end;
               n := seg_end;
               incr s
             done
           with Exit -> ());
          replayed := !replayed + (!n - marks.(base))
        end;
        for k = win_lo to win_hi do
          release k
        done;
        pos := win_lo - 1
      done
    end
  end;
  (!peak, !replays, !replayed)

(* [make ~prelude ~segments ~budget_nodes ()] plans snapshot placement
   for a recording of [prelude] parentless lift nodes followed by the
   given per-segment node counts, under the same budget and slot
   parameters `Tape.Segmented.create` would receive. *)
let make ?slab_nodes ?(snapshot_slots = 32) ~prelude ~segments ~budget_nodes
    () =
  if budget_nodes < 1 then invalid_arg "Plan.make: budget_nodes must be >= 1";
  if snapshot_slots < 1 then
    invalid_arg "Plan.make: snapshot_slots must be >= 1";
  let sn =
    match slab_nodes with
    | Some s when s < 16 -> invalid_arg "Plan.make: slab_nodes must be >= 16"
    | Some s -> s
    | None -> default_slab_nodes ~budget_nodes
  in
  let budget_slabs = Stdlib.max 1 (budget_nodes / sn) in
  let boundaries =
    place ~segments ~window_nodes:(budget_slabs * sn) ~chunks:snapshot_slots
  in
  let peak, replays, replayed =
    simulate ~prelude ~segments ~boundaries ~slab_nodes:sn ~budget_slabs
      ~snapshot_slots
  in
  {
    boundaries;
    slab_nodes = sn;
    budget_slabs;
    total_nodes = prelude + Array.fold_left ( + ) 0 segments;
    peak_live_nodes = peak * sn;
    replays;
    replayed_nodes = replayed;
  }

(* Plan directly from a prediction: the analyzer's segmented protocol
   computes the output reduction inside the last analyzed iteration, so
   the output nodes belong to the final segment. *)
let of_prediction ?slab_nodes ?snapshot_slots (p : Predict.t) ~budget_nodes =
  let segments = Array.copy p.Predict.p_segments in
  let n = Array.length segments in
  if n > 0 then segments.(n - 1) <- segments.(n - 1) + p.Predict.p_output;
  make ?slab_nodes ?snapshot_slots ~prelude:p.Predict.p_lift ~segments
    ~budget_nodes ()
