(* Per-app node-count prediction: drive an interpreted kernel through
   exactly the protocol `Analyzer.reverse_analysis` uses (run to the
   checkpoint boundary, lift every element of every checkpoint
   variable, run the analyzed window, evaluate the output) and read the
   counting scalar instead of a tape.

   The per-iteration split mirrors the segmented tape: segment costs
   come out for free, and summing them reproduces the dense total
   because every kernel's [run ~from ~until] is literally a loop over
   iterations. *)

open Value

type var_lift = {
  lv_name : string;
  lv_scalars : int;  (** elements × slots *)
  lv_lifted : int;  (** fresh constants pushed by the lift *)
}

type t = {
  p_app : string;
  p_hint : int;  (** committed [tape_nodes_hint] *)
  p_analysis_niter : int;
  p_at_iter : int;
  p_lift : int;
  p_vars : var_lift list;
  p_segments : int array;  (** nodes per analyzed iteration *)
  p_output : int;
  p_total : int;
}

let member m n =
  match Hashtbl.find_opt m n with
  | Some c -> !c
  | None -> err "missing module member %s" n

(* Reverse.lift pushes one fresh node per still-constant scalar and
   leaves already-active ones alone; either way the element is active
   afterwards with its primal preserved. *)
let lift_var counter var =
  match var with
  | Vrec fields ->
      let name = as_str !(rec_field fields "name") in
      let elements = as_int !(rec_field fields "elements") in
      let spe = as_int !(rec_field fields "spe") in
      let get = !(rec_field fields "get") in
      let set = !(rec_field fields "set") in
      let lifted = ref 0 in
      for e = 0 to elements - 1 do
        for k = 0 to spe - 1 do
          let s = as_sc (apply2 get (Vint e) (Vint k)) in
          if not s.act then begin
            incr counter;
            incr lifted
          end;
          ignore
            (apply set
               [
                 (Asttypes.Nolabel, Vint e);
                 (Asttypes.Nolabel, Vint k);
                 (Asttypes.Nolabel, Vsc { act = true; v = s.v });
               ])
        done
      done;
      { lv_name = name; lv_scalars = elements * spe; lv_lifted = !lifted }
  | v -> err "float_vars entry is %s, not a variable" (type_name v)

(* The analyzer protocol against an instantiated kernel module. *)
let run_protocol ~counter ~(inst : modl) ~at_iter ~niter =
  let m n = member inst n in
  let st = apply1 (m "create") Vunit in
  let run_fn = m "run" in
  let run a b =
    ignore
      (apply run_fn
         [
           (Asttypes.Nolabel, st);
           (Asttypes.Labelled "from", Vint a);
           (Asttypes.Labelled "until", Vint b);
         ])
  in
  run 0 at_iter;
  let c0 = !counter in
  let vars = as_list (apply1 (m "float_vars") st) in
  let lifts = List.map (lift_var counter) vars in
  let lift = !counter - c0 in
  let segments =
    Array.init (niter - at_iter) (fun i ->
        let s = at_iter + i in
        let c = !counter in
        run s (s + 1);
        !counter - c)
  in
  let c = !counter in
  ignore (apply1 (m "output") st);
  let output = !counter - c in
  (lift, lifts, segments, output)

let predict ?(at_iter = 0) ?niter (world : World.t) (app : modl) : t =
  let counter = world.prims.Prims.pushes in
  let name = as_str (member app "name") in
  let hint = as_int (member app "tape_nodes_hint") in
  let niter =
    match niter with
    | Some n -> n
    | None -> as_int (member app "analysis_niter")
  in
  let inst =
    as_mod (Interp.apply_functor (member app "Make") [ world.prims.Prims.scalar ])
  in
  let lift, vars, segments, output =
    run_protocol ~counter ~inst ~at_iter ~niter
  in
  {
    p_app = name;
    p_hint = hint;
    p_analysis_niter = niter;
    p_at_iter = at_iter;
    p_lift = lift;
    p_vars = vars;
    p_segments = segments;
    p_output = output;
    p_total = lift + Array.fold_left ( + ) 0 segments + output;
  }

(* Instantiate an ADI-family kernel (`Make_sized (G) (S)`) at an
   arbitrary grid size — including sizes the repository never compiled
   — and measure its node counts.  This is what the polynomial fit
   samples. *)
let predict_sized (world : World.t) ~file ~grid ~niter : int =
  match List.assoc_opt file world.npb_mods with
  | None -> err "no such kernel file %s" file
  | Some file_mod ->
      let counter = world.prims.Prims.pushes in
      let g : modl = Hashtbl.create 1 in
      Hashtbl.replace g "grid" (ref (Vint grid));
      let inst =
        as_mod
          (Interp.apply_functor
             (member file_mod "Make_sized")
             [ Vmod g; world.prims.Prims.scalar ])
      in
      let lift, _, segments, output =
        run_protocol ~counter ~inst ~at_iter:0 ~niter
      in
      lift + Array.fold_left ( + ) 0 segments + output
