(* Loads the kernel sources into one interpreter universe.

   The NPB kernels live in three dune libraries — `scvad_nprand`,
   `scvad_solvers`, `scvad_npb` — whose wrapped names appear in the
   sources both qualified (`Scvad_nprand.Nprand.create`) and, within a
   library, bare (`Adi_common.Dims`).  Both spellings are registered:
   each file module under its bare name and under a per-library
   namespace module. *)

open Value

type t = {
  prims : Prims.t;
  globals : (string, Value.t ref) Hashtbl.t;
  npb_mods : (string * Value.modl) list;  (* file name (no ext), module *)
  npb_dir : string;
}

let parse_file path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

(* load order within each library: dependencies first *)
let solver_files = [ "dcomplex"; "block5"; "btridiag"; "pentadiag"; "fft" ]
let npb_files = [ "adi_common"; "bt"; "cg"; "ep"; "ft"; "is"; "lu"; "mg"; "sp" ]

let load ?npb_dir () =
  let npb_dir =
    match npb_dir with
    | Some d -> d
    | None -> (
        match Scvad_activity.Driver.locate_npb_dir () with
        | Some d -> d
        | None -> err "cannot locate lib/npb (no dune-project upwards)")
  in
  let lib_dir = Filename.dirname npb_dir in
  let prims = Prims.make () in
  let globals = Hashtbl.create 64 in
  let resolve n =
    match Hashtbl.find_opt globals n with
    | Some c -> Some c
    | None -> Hashtbl.find_opt prims.Prims.env n
  in
  let load_file path =
    try Interp.eval_structure resolve (parse_file path)
    with Error msg -> err "%s: %s" (Filename.basename path) msg
  in
  let load_library ~dir ~lib_name files =
    let members = Hashtbl.create 16 in
    let mods =
      List.filter_map
        (fun base ->
          let path = Filename.concat dir (base ^ ".ml") in
          if not (Sys.file_exists path) then None
          else begin
            let m = load_file path in
            let mname = String.capitalize_ascii base in
            let cell = ref (Vmod m) in
            Hashtbl.replace globals mname cell;
            Hashtbl.replace members mname cell;
            Some (base, m)
          end)
        files
    in
    Hashtbl.replace globals lib_name (ref (Vmod members));
    mods
  in
  ignore
    (load_library
       ~dir:(Filename.concat lib_dir "nprand")
       ~lib_name:"Scvad_nprand" [ "nprand" ]);
  ignore
    (load_library
       ~dir:(Filename.concat lib_dir "solvers")
       ~lib_name:"Scvad_solvers" solver_files);
  let npb_mods =
    load_library ~dir:npb_dir ~lib_name:"Scvad_npb" npb_files
  in
  { prims; globals; npb_mods; npb_dir }

(* Every App-shaped submodule of the loaded kernel files: a structure
   with [name], [analysis_niter], [tape_nodes_hint] and [Make]. *)
let apps world : (string * Value.modl) list =
  List.concat_map
    (fun (_file, m) ->
      Hashtbl.fold
        (fun _member cell acc ->
          match !cell with
          | Vmod sub
            when Hashtbl.mem sub "name"
                 && Hashtbl.mem sub "analysis_niter"
                 && Hashtbl.mem sub "tape_nodes_hint"
                 && Hashtbl.mem sub "Make" -> (
              match !(Hashtbl.find sub "name") with
              | Vstr name -> (name, sub) :: acc
              | _ -> acc)
          | _ -> acc)
        m [])
    world.npb_mods

let find_app world name =
  List.assoc_opt name (apps world)
