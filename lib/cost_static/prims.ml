(* Builtin environment of the shadow interpreter: the slice of the
   stdlib the kernels use, plus concrete models of the repository
   libraries the cost pass must not execute for real ([Scvad_nd.Shape],
   [Scvad_core.Variable]) and the counting scalar that stands in for
   both the analysis scalar and [Scvad_ad.Float_scalar].

   Everything here is CONCRETE: float arithmetic calls the same stdlib
   primitives the compiled kernels call, in the same order, so PRNG
   streams, branch decisions and data-dependent loop trip counts match
   the real execution bit for bit. *)

open Value

type t = {
  env : (string, Value.t ref) Hashtbl.t;
      (** bare names and stdlib/repository module names *)
  pushes : int ref;
      (** tape nodes the counting scalar has recorded so far *)
  scalar : Value.t;
      (** the counting scalar module — the value passed as the [S]
          functor argument, and what [Scvad_ad.Float_scalar] resolves
          to (that one only ever sees constants, which never count) *)
}

let cell v = ref v

let vmod bindings =
  let t = Hashtbl.create (List.length bindings * 2) in
  List.iter (fun (n, v) -> Hashtbl.replace t n (cell v)) bindings;
  Vmod t

let prim1 name f = Vprim1 (name, f)
let prim2 name f = Vprim2 (name, f)
let prim name f = Vprim (name, f)

let positional name args =
  List.map
    (fun (lab, v) ->
      match lab with
      | Asttypes.Nolabel -> v
      | _ -> err "%s: unexpected labelled argument" name)
    args

(* labelled-argument helpers for the Variable builtins *)
let find_lab label args =
  List.find_map
    (fun (lab, v) ->
      match lab with
      | Asttypes.Labelled l when String.equal l label -> Some v
      | _ -> None)
    args

let req_lab name label args =
  match find_lab label args with
  | Some v -> v
  | None -> err "%s: missing ~%s" name label

let positional_only args =
  List.filter_map
    (fun (lab, v) ->
      match lab with Asttypes.Nolabel -> Some v | _ -> None)
    args

let int1 name f = prim1 name (fun x -> Vint (f (as_int x)))
let int2 name f = prim2 name (fun a b -> Vint (f (as_int a) (as_int b)))
let float2 name f = prim2 name (fun a b -> Vfloat (f (as_float a) (as_float b)))
let float1 name f = prim1 name (fun x -> Vfloat (f (as_float x)))
let cmp2 name f = prim2 name (fun a b -> Vbool (f (compare_val a b) 0))

let bounds_check name a i =
  if i < 0 || i >= Array.length a then
    invalid_argument (name ^ ": index out of bounds")

(* --- The counting scalar (models lib/ad/reverse.ml's push rules) --- *)

(* One arithmetic result is one tape node iff any operand is active;
   results of counted ops are active, constant folds stay constant —
   exactly [Reverse]'s [if a.id >= 0 || b.id >= 0 then node2 ...]. *)
let scalar_module pushes =
  let mk act v = Vsc { act; v } in
  let bin name f =
    prim2 name (fun a b ->
        let a = as_sc a and b = as_sc b in
        let act = a.act || b.act in
        if act then incr pushes;
        mk act (f a.v b.v))
  in
  let un name f =
    prim1 name (fun x ->
        let x = as_sc x in
        if x.act then incr pushes;
        mk x.act (f x.v))
  in
  let fcmp name f =
    prim2 name (fun a b -> Vbool (f (as_sc a).v (as_sc b).v))
  in
  vmod
    [
      ("zero", mk false 0.);
      ("one", mk false 1.);
      ("of_float", prim1 "of_float" (fun v -> mk false (as_float v)));
      ("of_int", prim1 "of_int" (fun v -> mk false (float_of_int (as_int v))));
      (* [to_float] returns the primal — activity is dropped on purpose,
         mirroring the kill-before-read round trip EP's buffer does *)
      ("to_float", prim1 "to_float" (fun v -> Vfloat (as_sc v).v));
      ("+.", bin "+." ( +. ));
      ("-.", bin "-." ( -. ));
      ("*.", bin "*." ( *. ));
      ("/.", bin "/." ( /. ));
      ("~-.", un "~-." (fun v -> -.v));
      ("sqrt", un "sqrt" sqrt);
      ("exp", un "exp" exp);
      ("log", un "log" log);
      ("sin", un "sin" sin);
      ("cos", un "cos" cos);
      ("abs", un "abs" Float.abs);
      ( "max",
        prim2 "max" (fun a b ->
            let a = as_sc a and b = as_sc b in
            let act = a.act || b.act in
            if act then incr pushes;
            mk act (Stdlib.max a.v b.v)) );
      ( "min",
        prim2 "min" (fun a b ->
            let a = as_sc a and b = as_sc b in
            let act = a.act || b.act in
            if act then incr pushes;
            mk act (Stdlib.min a.v b.v)) );
      ( "compare",
        prim2 "compare" (fun a b -> Vint (Float.compare (as_sc a).v (as_sc b).v))
      );
      ("equal", fcmp "equal" (fun a b -> Float.equal a b));
      ("<", fcmp "<" ( < ));
      ("<=", fcmp "<=" ( <= ));
      (">", fcmp ">" ( > ));
      (">=", fcmp ">=" ( >= ));
    ]

(* --- Repository library models --- *)

(* A shape is only ever asked for its element count here. *)
let shape_module =
  vmod
    [
      ( "create",
        prim1 "Shape.create" (fun dims ->
            Vint
              (List.fold_left (fun acc d -> acc * as_int d) 1 (as_list dims)))
      );
      ("scalar", Vint 1);
    ]

(* Checkpoint variables surface as records the cost driver reads
   directly; [get]/[set] keep whatever closure convention the app's own
   [float_vars] used. *)
let variable_value ~name ~elements ~spe ~get ~set =
  Vrec
    [|
      ("name", cell (Vstr name));
      ("elements", cell (Vint elements));
      ("spe", cell (Vint spe));
      ("get", cell get);
      ("set", cell set);
    |]

let variable_module =
  let of_array =
    prim "Variable.of_array" (fun args ->
        let name = as_str (req_lab "of_array" "name" args) in
        match positional_only args with
        | [ shape; arr ] ->
            let a = as_arr arr in
            variable_value ~name ~elements:(as_int shape) ~spe:1
              ~get:
                (prim2 "get" (fun e _k ->
                     let i = as_int e in
                     bounds_check "of_array.get" a i;
                     a.(i)))
              ~set:
                (prim "set" (fun args ->
                     match positional "set" args with
                     | [ e; _k; v ] ->
                         let i = as_int e in
                         bounds_check "of_array.set" a i;
                         a.(i) <- v;
                         Vunit
                     | _ -> err "of_array.set arity"))
        | _ -> err "of_array: expected shape and array")
  in
  let of_ref =
    prim "Variable.of_ref" (fun args ->
        let name = as_str (req_lab "of_ref" "name" args) in
        match positional_only args with
        | [ r ] ->
            let r = as_ref r in
            variable_value ~name ~elements:1 ~spe:1
              ~get:(prim2 "get" (fun _ _ -> !r))
              ~set:
                (prim "set" (fun args ->
                     match positional "set" args with
                     | [ _; _; v ] ->
                         r := v;
                         Vunit
                     | _ -> err "of_ref.set arity"))
        | _ -> err "of_ref: expected one ref")
  in
  let make =
    prim "Variable.make" (fun args ->
        let name = as_str (req_lab "make" "name" args) in
        let shape = as_int (req_lab "make" "shape" args) in
        let spe = as_int (req_lab "make" "spe" args) in
        let get = req_lab "make" "get" args in
        let set = req_lab "make" "set" args in
        variable_value ~name ~elements:shape ~spe ~get ~set)
  in
  vmod [ ("of_array", of_array); ("of_ref", of_ref); ("make", make) ]

(* --- Assembling the environment --- *)

let make () =
  let pushes = ref 0 in
  let env = Hashtbl.create 256 in
  let def n v = Hashtbl.replace env n (cell v) in
  (* ints *)
  def "+" (int2 "+" ( + ));
  def "-" (int2 "-" ( - ));
  def "*" (int2 "*" ( * ));
  def "/"
    (prim2 "/" (fun a b ->
         let b = as_int b in
         if b = 0 then raise (exc "Division_by_zero" None);
         Vint (as_int a / b)));
  def "mod"
    (prim2 "mod" (fun a b ->
         let b = as_int b in
         if b = 0 then raise (exc "Division_by_zero" None);
         Vint (as_int a mod b)));
  def "land" (int2 "land" ( land ));
  def "lor" (int2 "lor" ( lor ));
  def "lxor" (int2 "lxor" ( lxor ));
  def "lsl" (int2 "lsl" ( lsl ));
  def "lsr" (int2 "lsr" ( lsr ));
  def "asr" (int2 "asr" ( asr ));
  def "abs" (int1 "abs" Stdlib.abs);
  def "succ" (int1 "succ" succ);
  def "pred" (int1 "pred" pred);
  def "~-" (int1 "~-" (fun n -> -n));
  def "~+" (prim1 "~+" (fun v -> v));
  (* floats *)
  def "+." (float2 "+." ( +. ));
  def "-." (float2 "-." ( -. ));
  def "*." (float2 "*." ( *. ));
  def "/." (float2 "/." ( /. ));
  def "**" (float2 "**" ( ** ));
  def "~-." (float1 "~-." (fun v -> -.v));
  def "sqrt" (float1 "sqrt" sqrt);
  def "exp" (float1 "exp" exp);
  def "log" (float1 "log" log);
  def "sin" (float1 "sin" sin);
  def "cos" (float1 "cos" cos);
  def "tan" (float1 "tan" tan);
  def "atan" (float1 "atan" atan);
  def "atan2" (float2 "atan2" atan2);
  def "floor" (float1 "floor" floor);
  def "ceil" (float1 "ceil" ceil);
  def "abs_float" (float1 "abs_float" Float.abs);
  def "float_of_int" (prim1 "float_of_int" (fun v -> Vfloat (float_of_int (as_int v))));
  def "int_of_float" (prim1 "int_of_float" (fun v -> Vint (int_of_float (as_float v))));
  def "truncate" (prim1 "truncate" (fun v -> Vint (truncate (as_float v))));
  def "infinity" (Vfloat infinity);
  def "neg_infinity" (Vfloat neg_infinity);
  def "epsilon_float" (Vfloat epsilon_float);
  def "max_float" (Vfloat max_float);
  def "min_float" (Vfloat min_float);
  def "max_int" (Vint max_int);
  def "min_int" (Vint min_int);
  (* polymorphic comparison / misc *)
  def "=" (cmp2 "=" ( = ));
  def "<>" (cmp2 "<>" ( <> ));
  def "<" (cmp2 "<" ( < ));
  def "<=" (cmp2 "<=" ( <= ));
  def ">" (cmp2 ">" ( > ));
  def ">=" (cmp2 ">=" ( >= ));
  def "==" (cmp2 "==" ( = ));
  def "!=" (cmp2 "!=" ( <> ));
  def "compare" (prim2 "compare" (fun a b -> Vint (compare_val a b)));
  def "min" (prim2 "min" (fun a b -> if compare_val a b <= 0 then a else b));
  def "max" (prim2 "max" (fun a b -> if compare_val a b >= 0 then a else b));
  def "not" (prim1 "not" (fun v -> Vbool (not (as_bool v))));
  def "&&" (prim2 "&&" (fun a b -> Vbool (as_bool a && as_bool b)));
  def "||" (prim2 "||" (fun a b -> Vbool (as_bool a || as_bool b)));
  def "ignore" (prim1 "ignore" (fun _ -> Vunit));
  def "fst" (prim1 "fst" (function Vtup [| a; _ |] -> a | v -> err "fst %s" (type_name v)));
  def "snd" (prim1 "snd" (function Vtup [| _; b |] -> b | v -> err "snd %s" (type_name v)));
  def "ref" (prim1 "ref" (fun v -> Vref (ref v)));
  def "!" (prim1 "!" (fun v -> !(as_ref v)));
  def ":="
    (prim2 ":=" (fun r v ->
         as_ref r := v;
         Vunit));
  def "incr"
    (prim1 "incr" (fun r ->
         let r = as_ref r in
         r := Vint (as_int !r + 1);
         Vunit));
  def "decr"
    (prim1 "decr" (fun r ->
         let r = as_ref r in
         r := Vint (as_int !r - 1);
         Vunit));
  def "^" (prim2 "^" (fun a b -> Vstr (as_str a ^ as_str b)));
  def "@" (prim2 "@" (fun a b -> Vlist (as_list a @ as_list b)));
  def "string_of_int" (prim1 "string_of_int" (fun v -> Vstr (string_of_int (as_int v))));
  def "raise" (prim1 "raise" (fun v -> raise (Exc v)));
  def "raise_notrace" (prim1 "raise_notrace" (fun v -> raise (Exc v)));
  def "invalid_arg" (prim1 "invalid_arg" (fun v -> invalid_argument (as_str v)));
  def "failwith" (prim1 "failwith" (fun v -> failure (as_str v)));
  (* Array *)
  let array_get =
    prim2 "Array.get" (fun a i ->
        let a = as_arr a and i = as_int i in
        bounds_check "Array.get" a i;
        a.(i))
  in
  let array_set =
    prim "Array.set" (fun args ->
        match positional "Array.set" args with
        | [ a; i; v ] ->
            let a = as_arr a and i = as_int i in
            bounds_check "Array.set" a i;
            a.(i) <- v;
            Vunit
        | _ -> err "Array.set arity")
  in
  def "Array"
    (vmod
       [
         ("make", prim2 "Array.make" (fun n v -> Varr (Array.make (as_int n) v)));
         ("create_float", prim1 "Array.create_float" (fun n -> Varr (Array.make (as_int n) (Vfloat 0.))));
         ( "init",
           prim2 "Array.init" (fun n f ->
               Varr (Array.init (as_int n) (fun i -> apply1 f (Vint i)))) );
         ("length", prim1 "Array.length" (fun a -> Vint (Array.length (as_arr a))));
         ("get", array_get);
         ("set", array_set);
         ("unsafe_get", array_get);
         ("unsafe_set", array_set);
         ("copy", prim1 "Array.copy" (fun a -> Varr (Array.copy (as_arr a))));
         ( "fill",
           prim "Array.fill" (fun args ->
               match positional "Array.fill" args with
               | [ a; pos; len; v ] ->
                   Array.fill (as_arr a) (as_int pos) (as_int len) v;
                   Vunit
               | _ -> err "Array.fill arity") );
         ( "blit",
           prim "Array.blit" (fun args ->
               match positional "Array.blit" args with
               | [ src; srcoff; dst; dstoff; len ] ->
                   Array.blit (as_arr src) (as_int srcoff) (as_arr dst)
                     (as_int dstoff) (as_int len);
                   Vunit
               | _ -> err "Array.blit arity") );
         ( "sub",
           prim "Array.sub" (fun args ->
               match positional "Array.sub" args with
               | [ a; pos; len ] ->
                   Varr (Array.sub (as_arr a) (as_int pos) (as_int len))
               | _ -> err "Array.sub arity") );
         ( "append",
           prim2 "Array.append" (fun a b ->
               Varr (Array.append (as_arr a) (as_arr b))) );
         ( "concat",
           prim1 "Array.concat" (fun l ->
               Varr (Array.concat (List.map as_arr (as_list l)))) );
         ("to_list", prim1 "Array.to_list" (fun a -> Vlist (Array.to_list (as_arr a))));
         ("of_list", prim1 "Array.of_list" (fun l -> Varr (Array.of_list (as_list l))));
         ( "iter",
           prim2 "Array.iter" (fun f a ->
               Array.iter (fun v -> ignore (apply1 f v)) (as_arr a);
               Vunit) );
         ( "iteri",
           prim2 "Array.iteri" (fun f a ->
               Array.iteri (fun i v -> ignore (apply2 f (Vint i) v)) (as_arr a);
               Vunit) );
         ( "map",
           prim2 "Array.map" (fun f a -> Varr (Array.map (apply1 f) (as_arr a)))
         );
         ( "mapi",
           prim2 "Array.mapi" (fun f a ->
               Varr (Array.mapi (fun i v -> apply2 f (Vint i) v) (as_arr a))) );
         ( "map2",
           prim "Array.map2" (fun args ->
               match positional "Array.map2" args with
               | [ f; a; b ] ->
                   Varr (Array.map2 (apply2 f) (as_arr a) (as_arr b))
               | _ -> err "Array.map2 arity") );
         ( "fold_left",
           prim "Array.fold_left" (fun args ->
               match positional "Array.fold_left" args with
               | [ f; init; a ] ->
                   Array.fold_left (fun acc v -> apply2 f acc v) init (as_arr a)
               | _ -> err "Array.fold_left arity") );
         ( "exists",
           prim2 "Array.exists" (fun f a ->
               Vbool (Array.exists (fun v -> as_bool (apply1 f v)) (as_arr a)))
         );
         ( "sort",
           prim2 "Array.sort" (fun cmp a ->
               Array.sort (fun x y -> as_int (apply2 cmp x y)) (as_arr a);
               Vunit) );
       ]);
  (* List *)
  def "List"
    (vmod
       [
         ("length", prim1 "List.length" (fun l -> Vint (List.length (as_list l))));
         ("rev", prim1 "List.rev" (fun l -> Vlist (List.rev (as_list l))));
         ( "iter",
           prim2 "List.iter" (fun f l ->
               List.iter (fun v -> ignore (apply1 f v)) (as_list l);
               Vunit) );
         ( "iteri",
           prim2 "List.iteri" (fun f l ->
               List.iteri (fun i v -> ignore (apply2 f (Vint i) v)) (as_list l);
               Vunit) );
         ("map", prim2 "List.map" (fun f l -> Vlist (List.map (apply1 f) (as_list l))));
         ( "filter",
           prim2 "List.filter" (fun f l ->
               Vlist (List.filter (fun v -> as_bool (apply1 f v)) (as_list l)))
         );
         ( "mem",
           prim2 "List.mem" (fun x l ->
               Vbool (List.exists (fun v -> equal_val x v) (as_list l))) );
         ( "exists",
           prim2 "List.exists" (fun f l ->
               Vbool (List.exists (fun v -> as_bool (apply1 f v)) (as_list l)))
         );
         ( "find_opt",
           prim2 "List.find_opt" (fun f l ->
               match List.find_opt (fun v -> as_bool (apply1 f v)) (as_list l) with
               | Some v -> Vcon ("Some", Some v)
               | None -> Vcon ("None", None)) );
         ( "fold_left",
           prim "List.fold_left" (fun args ->
               match positional "List.fold_left" args with
               | [ f; init; l ] ->
                   List.fold_left (fun acc v -> apply2 f acc v) init (as_list l)
               | _ -> err "List.fold_left arity") );
       ]);
  (* Hashtbl *)
  let as_h = function
    | Vhashtbl h -> h
    | v -> err "expected hashtbl, got %s" (type_name v)
  in
  def "Hashtbl"
    (vmod
       [
         ("create", prim1 "Hashtbl.create" (fun n -> Vhashtbl (Hashtbl.create (Stdlib.max 16 (as_int n)))));
         ( "add",
           prim "Hashtbl.add" (fun args ->
               match positional "Hashtbl.add" args with
               | [ h; k; v ] ->
                   Hashtbl.add (as_h h) k v;
                   Vunit
               | _ -> err "Hashtbl.add arity") );
         ( "replace",
           prim "Hashtbl.replace" (fun args ->
               match positional "Hashtbl.replace" args with
               | [ h; k; v ] ->
                   Hashtbl.replace (as_h h) k v;
                   Vunit
               | _ -> err "Hashtbl.replace arity") );
         ( "find",
           prim2 "Hashtbl.find" (fun h k ->
               match Hashtbl.find_opt (as_h h) k with
               | Some v -> v
               | None -> not_found ()) );
         ( "find_opt",
           prim2 "Hashtbl.find_opt" (fun h k ->
               match Hashtbl.find_opt (as_h h) k with
               | Some v -> Vcon ("Some", Some v)
               | None -> Vcon ("None", None)) );
         ("mem", prim2 "Hashtbl.mem" (fun h k -> Vbool (Hashtbl.mem (as_h h) k)));
         ( "remove",
           prim2 "Hashtbl.remove" (fun h k ->
               Hashtbl.remove (as_h h) k;
               Vunit) );
         ("length", prim1 "Hashtbl.length" (fun h -> Vint (Hashtbl.length (as_h h))));
         ( "iter",
           prim2 "Hashtbl.iter" (fun f h ->
               Hashtbl.iter (fun k v -> ignore (apply2 f k v)) (as_h h);
               Vunit) );
         ( "fold",
           prim "Hashtbl.fold" (fun args ->
               match positional "Hashtbl.fold" args with
               | [ f; h; init ] ->
                   Hashtbl.fold
                     (fun k v acc -> apply f [ (Nolabel, k); (Nolabel, v); (Nolabel, acc) ])
                     (as_h h) init
               | _ -> err "Hashtbl.fold arity") );
       ]);
  (* Float / Lazy / String *)
  def "Float"
    (vmod
       [
         ("pi", Vfloat Float.pi);
         ("of_int", prim1 "Float.of_int" (fun v -> Vfloat (float_of_int (as_int v))));
         ("to_int", prim1 "Float.to_int" (fun v -> Vint (int_of_float (as_float v))));
         ("abs", float1 "Float.abs" Float.abs);
         ("max", float2 "Float.max" Float.max);
         ("min", float2 "Float.min" Float.min);
         ("equal", prim2 "Float.equal" (fun a b -> Vbool (Float.equal (as_float a) (as_float b))));
         ("compare", prim2 "Float.compare" (fun a b -> Vint (Float.compare (as_float a) (as_float b))));
       ]);
  (* [lazy e] is evaluated eagerly by the compiler (the kernels only use
     it for pure shape values), so forcing is the identity. *)
  def "Lazy" (vmod [ ("force", prim1 "Lazy.force" (fun v -> v)) ]);
  def "String"
    (vmod
       [
         ("length", prim1 "String.length" (fun s -> Vint (String.length (as_str s))));
         ("equal", prim2 "String.equal" (fun a b -> Vbool (String.equal (as_str a) (as_str b))));
         ("concat", prim2 "String.concat" (fun sep l ->
              Vstr (String.concat (as_str sep) (List.map as_str (as_list l)))));
       ]);
  (* Repository modules *)
  def "Scvad_nd" (vmod [ ("Shape", shape_module) ]);
  def "Scvad_core" (vmod [ ("Variable", variable_module) ]);
  let scalar = scalar_module pushes in
  def "Scvad_ad" (vmod [ ("Float_scalar", scalar) ]);
  (* Stdlib.f aliases resolve to the same primitives *)
  let stdlib =
    let t = Hashtbl.create 64 in
    Hashtbl.iter (fun n c -> Hashtbl.replace t n c) env;
    Vmod t
  in
  def "Stdlib" stdlib;
  { env; pushes; scalar }
