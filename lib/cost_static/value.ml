(* Value domain of the shadow interpreter (DESIGN.md §16).

   The cost pass executes the kernels' own sources under a counting
   scalar: every value the compiled program would hold has a concrete
   mirror here.  Plain [float]s stay plain ([Vfloat]); values of the
   abstract scalar type [S.t] become [Vsc] — the concrete primal plus
   one activity bit, exactly the information [Reverse.t] carries
   ({v id >= 0} collapses to [act]).  Because primals are concrete and
   evaluated in source order with the same double arithmetic the
   compiled code uses, every branch, loop bound and PRNG-dependent
   count resolves to the same trace the real tape sees. *)

type t =
  | Vunit
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstr of string
  | Vchar of char
  | Vsc of sc  (** abstract-scalar value: primal + activity *)
  | Varr of t array
  | Vtup of t array
  | Vlist of t list
  | Vcon of string * t option  (** datatype / exception constructor *)
  | Vrec of (string * t ref) array  (** record; refs give mutable fields *)
  | Vref of t ref
  | Vclo of clo
  | Vprim of string * ((Asttypes.arg_label * t) list -> t)
  | Vprim1 of string * (t -> t)
  | Vprim2 of string * (t -> t -> t)
  | Vmod of modl
  | Vfunctor of string * (t -> t)
  | Vhashtbl of (t, t) Hashtbl.t
      (** keys are ground values, so the stdlib's structural hash and
          equality agree with [compare_val] *)

and sc = { act : bool; v : float }

and modl = (string, t ref) Hashtbl.t
(** modules are tables of member cells; members are written once *)

and clo = {
  c_name : string;  (** binding name, for diagnostics *)
  c_params : param list;
  c_nslots : int;  (** frame size *)
  c_cap : t array;  (** captured values, copied into slots 0.. *)
  c_body : t array -> t;
}

and param = {
  p_lab : Asttypes.arg_label;
  p_bind : t array -> t -> unit;
  p_default : (t array -> t) option;
      (** for [?(x = e)]; evaluated in the callee frame *)
}

(* Interpreter failure: a genuine gap in the model (unsupported syntax,
   unknown identifier actually reached at runtime, type confusion).
   Predictions must never be emitted from a run that raised this. *)
exception Error of string

(* An exception of the interpreted program (Not_found, Invalid_argument,
   ...), catchable by interpreted [try ... with]. *)
exception Exc of t

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Forward reference to [Interp.apply]; prims that call user closures
   (Array.init, Hashtbl.iter, ...) go through this. *)
let apply_ref : (t -> (Asttypes.arg_label * t) list -> t) ref =
  ref (fun _ _ -> err "apply not initialised")

let apply f args = !apply_ref f args
let apply1 f x = apply f [ (Asttypes.Nolabel, x) ]
let apply2 f x y = apply f [ (Asttypes.Nolabel, x); (Asttypes.Nolabel, y) ]

let type_name = function
  | Vunit -> "unit"
  | Vbool _ -> "bool"
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Vstr _ -> "string"
  | Vchar _ -> "char"
  | Vsc _ -> "scalar"
  | Varr _ -> "array"
  | Vtup _ -> "tuple"
  | Vlist _ -> "list"
  | Vcon (c, _) -> "constructor " ^ c
  | Vrec _ -> "record"
  | Vref _ -> "ref"
  | Vclo _ -> "closure"
  | Vprim _ | Vprim1 _ | Vprim2 _ -> "primitive"
  | Vmod _ -> "module"
  | Vfunctor _ -> "functor"
  | Vhashtbl _ -> "hashtbl"

let as_int = function
  | Vint n -> n
  | v -> err "expected int, got %s" (type_name v)

let as_bool = function
  | Vbool b -> b
  | v -> err "expected bool, got %s" (type_name v)

(* [S.t] and [float] are the same runtime type in the compiled program
   when S = Float_scalar, so kernels can (and do) mix them; coerce in
   both directions, refusing only to silently drop activity. *)
let as_float = function
  | Vfloat f -> f
  | Vsc { act = false; v } -> v
  | Vsc { act = true; _ } ->
      err "active scalar used as plain float (would lose a tape node)"
  | v -> err "expected float, got %s" (type_name v)

let as_sc = function
  | Vsc s -> s
  | Vfloat v -> { act = false; v }
  | v -> err "expected scalar, got %s" (type_name v)

let as_arr = function
  | Varr a -> a
  | v -> err "expected array, got %s" (type_name v)

let as_str = function
  | Vstr s -> s
  | v -> err "expected string, got %s" (type_name v)

let as_ref = function
  | Vref r -> r
  | v -> err "expected ref, got %s" (type_name v)

let as_list = function
  | Vlist l -> l
  | v -> err "expected list, got %s" (type_name v)

let as_mod = function
  | Vmod m -> m
  | v -> err "expected module, got %s" (type_name v)

let rec_field r name =
  match Array.find_opt (fun (n, _) -> String.equal n name) r with
  | Some (_, cell) -> cell
  | None -> err "record has no field %s" name

(* Structural comparison — the interpreted programs use polymorphic
   [compare]/[=] only on ground data (ints, floats, strings, tuples,
   lists of those), e.g. CG's per-row [Array.sort compare].  Scalars
   compare by primal so data structures keyed on them behave like the
   compiled program's. *)
let rec compare_val a b =
  match (a, b) with
  | Vunit, Vunit -> 0
  | Vbool a, Vbool b -> Bool.compare a b
  | Vint a, Vint b -> Int.compare a b
  | Vfloat a, Vfloat b -> Float.compare a b
  | Vsc a, Vsc b -> Float.compare a.v b.v
  | Vfloat a, Vsc b -> Float.compare a b.v
  | Vsc a, Vfloat b -> Float.compare a.v b
  | Vstr a, Vstr b -> String.compare a b
  | Vchar a, Vchar b -> Char.compare a b
  | Vtup a, Vtup b | Varr a, Varr b ->
      let n = Array.length a and m = Array.length b in
      if n <> m then Int.compare n m
      else
        let rec go i =
          if i = n then 0
          else
            let c = compare_val a.(i) b.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0
  | Vlist a, Vlist b -> List.compare compare_val a b
  | Vcon (ca, pa), Vcon (cb, pb) ->
      let c = String.compare ca cb in
      if c <> 0 then c else Option.compare compare_val pa pb
  | _ -> err "compare %s with %s" (type_name a) (type_name b)

let equal_val a b = compare_val a b = 0

(* Hashing consistent with [equal_val], for value-keyed hashtables
   (CG's sparse assembly keys on (row, col) int pairs). *)
let rec hash_val = function
  | Vunit -> 17
  | Vbool b -> Hashtbl.hash b
  | Vint n -> Hashtbl.hash n
  | Vfloat f -> Hashtbl.hash f
  | Vsc { v; _ } -> Hashtbl.hash v
  | Vstr s -> Hashtbl.hash s
  | Vchar c -> Hashtbl.hash c
  | Vtup a | Varr a ->
      Array.fold_left (fun h v -> (h * 31) + hash_val v) 19 a
  | Vlist l -> List.fold_left (fun h v -> (h * 31) + hash_val v) 23 l
  | Vcon (c, p) -> (
      let h = Hashtbl.hash c in
      match p with None -> h | Some v -> (h * 31) + hash_val v)
  | v -> err "hash %s" (type_name v)

let exc name payload = Exc (Vcon (name, payload))
let not_found () = raise (exc "Not_found" None)
let invalid_argument s = raise (exc "Invalid_argument" (Some (Vstr s)))
let failure s = raise (exc "Failure" (Some (Vstr s)))
