(* Orchestration: predict every benchmark, fit the grid-parameterized
   families, and render the report (text or JSON, mirroring the other
   static-pass drivers).

   The dynamic gate — predictions vs a real `Analyzer.reverse_analysis`
   tape — lives in `bin/cost.ml`: this library reads kernel *sources*
   and must not link the compiled kernels it scrutinizes. *)

(* Paper order; cg-tiny rides along because its hand-written hint once
   drifted 51% from the truth — exactly the rot this pass exists to
   catch. *)
let s_apps = [ "bt"; "sp"; "mg"; "cg"; "lu"; "ft"; "ep"; "is" ]
let default_apps = s_apps @ [ "cg-tiny" ]

(* The class-W configurations, for hint cross-checks at scaling-study
   size.  Interpreting one costs several seconds, so they are opt-in. *)
let w_apps = [ "bt-w"; "sp-w"; "mg-w"; "cg-w"; "lu-w" ]

type app_cost = {
  c_app : string;
  c_hint : int;  (** committed [tape_nodes_hint] *)
  c_p : Predict.t;
}

type class_point = {
  k_label : string;  (** problem class: S, W, A *)
  k_grid : int;
  k_nodes : int;  (** polynomial evaluation *)
}

type family_fit = {
  y_file : string;
  y_niter : int;
  y_poly : Poly.t;
  y_points : class_point list;
}

(* Interpreter samples for the fit: small enough to stay fast, one more
   point than the highest plausible degree so overfitting shows up as a
   degree bump (the ADI nests are affine => exact cubics in practice). *)
let sample_grids = [ 5; 6; 7; 8; 9; 10; 11; 13 ]

(* The grid-parameterized families ([Make_sized] functors) and their
   NPB problem-class grid sizes.  MG's sizing functor takes a full
   CONFIG rather than a grid, and CG's node count depends on the
   pseudo-random sparsity pattern, so neither reduces to a polynomial
   in one size parameter; FT/EP/IS are fixed-size in this repro. *)
let families =
  [
    ("bt", 1, [ ("S", 12); ("W", 24); ("A", 64) ]);
    ("sp", 1, [ ("S", 12); ("W", 36); ("A", 64) ]);
    ("lu", 3, [ ("S", 12); ("W", 33); ("A", 64) ]);
  ]

let analyze ?(apps = default_apps) world =
  List.map
    (fun name ->
      match World.find_app world name with
      | None -> Value.err "no app named %s in the loaded kernels" name
      | Some app ->
          let p = Predict.predict world app in
          { c_app = name; c_hint = p.Predict.p_hint; c_p = p })
    apps

let fit_families world =
  List.map
    (fun (file, niter, classes) ->
      let points =
        List.map
          (fun g -> (g, Predict.predict_sized world ~file ~grid:g ~niter))
          sample_grids
      in
      let poly = Poly.fit points in
      {
        y_file = file;
        y_niter = niter;
        y_poly = poly;
        y_points =
          List.map
            (fun (label, grid) ->
              { k_label = label; k_grid = grid; k_nodes = Poly.eval_int poly grid })
            classes;
      })
    families

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let segment_sum p = Array.fold_left ( + ) 0 p.Predict.p_segments

let hint_status c =
  if c.c_p.Predict.p_total = 0 then "n/a (zero-node analysis)"
  else
    let drift =
      Float.abs (float_of_int c.c_hint -. float_of_int c.c_p.Predict.p_total)
      /. float_of_int c.c_p.Predict.p_total
    in
    Printf.sprintf "%+.1f%%"
      (100.
      *. (float_of_int c.c_hint -. float_of_int c.c_p.Predict.p_total)
         /. float_of_int c.c_p.Predict.p_total)
    ^ (if drift <= 0.10 then "" else "  DRIFTED")

let render_text costs fits =
  let b = Buffer.create 4096 in
  Buffer.add_string b "static cost model: predicted tape nodes\n\n";
  Buffer.add_string b
    (Printf.sprintf "  %-8s %12s %12s %10s %10s %6s  %s\n" "app" "predicted"
       "hint" "lift" "output" "iters" "hint drift");
  List.iter
    (fun c ->
      let p = c.c_p in
      Buffer.add_string b
        (Printf.sprintf "  %-8s %12d %12d %10d %10d %6d  %s\n" c.c_app
           p.Predict.p_total c.c_hint p.Predict.p_lift p.Predict.p_output
           (Array.length p.Predict.p_segments)
           (hint_status c)))
    costs;
  if fits <> [] then begin
    Buffer.add_string b
      "\ngrid-parameterized families (nodes as a polynomial in grid)\n\n";
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "  %s (niter=%d): nodes(g) = %s\n" f.y_file f.y_niter
             (Poly.to_string f.y_poly));
        List.iter
          (fun k ->
            Buffer.add_string b
              (Printf.sprintf "    class %-2s grid %-3d -> %d nodes (~%s tape)\n"
                 k.k_label k.k_grid k.k_nodes
                 (let bytes = float_of_int k.k_nodes *. 24. in
                  if bytes >= 1e9 then Printf.sprintf "%.1f GB" (bytes /. 1e9)
                  else Printf.sprintf "%.0f MB" (bytes /. 1e6))))
          f.y_points)
      fits
  end;
  Buffer.contents b

let json_of_cost c =
  let p = c.c_p in
  Scvad_util.Ljson.Obj
    [
      ("app", Scvad_util.Ljson.Str c.c_app);
      ("predicted", Scvad_util.Ljson.Int p.Predict.p_total);
      ("hint", Scvad_util.Ljson.Int c.c_hint);
      ("lift", Scvad_util.Ljson.Int p.Predict.p_lift);
      ("segments_total", Scvad_util.Ljson.Int (segment_sum p));
      ("output", Scvad_util.Ljson.Int p.Predict.p_output);
      ("at_iter", Scvad_util.Ljson.Int p.Predict.p_at_iter);
      ("niter", Scvad_util.Ljson.Int p.Predict.p_analysis_niter);
      ( "segments",
        Scvad_util.Ljson.Arr
          (Array.to_list
             (Array.map
                (fun s -> Scvad_util.Ljson.Int s)
                p.Predict.p_segments)) );
      ( "vars",
        Scvad_util.Ljson.Arr
          (List.map
             (fun v ->
               Scvad_util.Ljson.Obj
                 [
                   ("name", Scvad_util.Ljson.Str v.Predict.lv_name);
                   ("scalars", Scvad_util.Ljson.Int v.Predict.lv_scalars);
                   ("lifted", Scvad_util.Ljson.Int v.Predict.lv_lifted);
                 ])
             p.Predict.p_vars) );
    ]

let json_of_fit f =
  Scvad_util.Ljson.Obj
    [
      ("file", Scvad_util.Ljson.Str f.y_file);
      ("niter", Scvad_util.Ljson.Int f.y_niter);
      ("degree", Scvad_util.Ljson.Int (Poly.degree f.y_poly));
      ("poly", Scvad_util.Ljson.Str (Poly.to_string f.y_poly));
      ( "classes",
        Scvad_util.Ljson.Arr
          (List.map
             (fun k ->
               Scvad_util.Ljson.Obj
                 [
                   ("class", Scvad_util.Ljson.Str k.k_label);
                   ("grid", Scvad_util.Ljson.Int k.k_grid);
                   ("nodes", Scvad_util.Ljson.Int k.k_nodes);
                 ])
             f.y_points) );
    ]

let render_json costs fits =
  Scvad_util.Ljson.to_string
    (Scvad_util.Ljson.Obj
       [
         ("apps", Scvad_util.Ljson.Arr (List.map json_of_cost costs));
         ("families", Scvad_util.Ljson.Arr (List.map json_of_fit fits));
       ])
  ^ "\n"
