(* Closure-compiling shadow interpreter over the kernels' own parsetrees.

   The cost pass needs to execute `lib/npb` sources faithfully enough
   that every AD-relevant event (one counting-scalar operation with an
   active operand = one tape node) happens exactly as many times as in
   the compiled program.  The strategy is the classic one: compile each
   expression once to an OCaml closure over a slot-indexed frame
   (`Value.t array`), so the per-step cost is a few loads rather than an
   environment-walking `eval`.  Nested functions are flat-closure
   converted — free variables are copied by value at closure creation,
   which is semantically exact for OCaml (mutation lives in refs,
   fields and arrays, all heap values).

   Module structures are evaluated eagerly in source order; module
   members live in write-once cells that compiled code dereferences at
   run time, so `let rec` and forward references inside functor bodies
   need no special machinery at the module level.  Functors become
   functions from module values to module values and are re-evaluated
   (hence re-compiled) per application — that is what lets the
   prediction driver instantiate `Make_sized` at synthetic grid sizes
   the repository never compiled.

   Unsupported constructs compile to raising thunks instead of failing
   the whole file: the taint-analysis helpers (`let module` over the
   dependence tape) are never executed by the cost driver. *)

open Parsetree
open Asttypes
open Value

type cell = Value.t ref
type code = Value.t array -> Value.t

(* compile-time name resolution *)
type access =
  | Aslot of int  (* ordinary frame slot *)
  | Amodslot of int  (* frame slot holding a first-class module *)
  | Acell of cell  (* module member / builtin *)

type scope = {
  mutable locals : (string * access) list;  (* innermost first *)
  mutable nslots : int;
  resolve : string -> cell option;  (* module scope chain, then builtins *)
}

let alloc scope =
  let s = scope.nslots in
  scope.nslots <- s + 1;
  s

let loc_str (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.Lexing.pos_fname
    loc.loc_start.Lexing.pos_lnum

let unsupported what loc : code =
 fun _ -> err "unsupported at runtime: %s (%s)" what (loc_str loc)

let rec lid_head = function
  | Longident.Lident x -> x
  | Longident.Ldot (p, _) -> lid_head p
  | Longident.Lapply (p, _) -> lid_head p

(* Syntactic over-approximation of the free names of an expression:
   every unqualified identifier plus every head of a qualified path.
   Over-capture of shadowed names only costs a copied slot. *)
let free_names (e : expression) =
  let t = Hashtbl.create 32 in
  let expr (self : Ast_iterator.iterator) ex =
    (match ex.pexp_desc with
    | Pexp_ident { txt; _ } -> Hashtbl.replace t (lid_head txt) ()
    | _ -> ());
    Ast_iterator.default_iterator.expr self ex
  in
  let module_expr (self : Ast_iterator.iterator) me =
    (match me.pmod_desc with
    | Pmod_ident { txt; _ } -> Hashtbl.replace t (lid_head txt) ()
    | _ -> ());
    Ast_iterator.default_iterator.module_expr self me
  in
  let it = { Ast_iterator.default_iterator with expr; module_expr } in
  it.expr it e;
  t

let lookup_local scope name =
  List.find_map
    (fun (n, a) -> if String.equal n name then Some a else None)
    scope.locals

let const_value = function
  | Pconst_integer (s, None) -> Vint (int_of_string s)
  | Pconst_float (s, None) -> Vfloat (float_of_string s)
  | Pconst_string (s, _, _) -> Vstr s
  | Pconst_char c -> Vchar c
  | Pconst_integer (_, Some _) | Pconst_float (_, Some _) ->
      err "unsupported literal suffix"

(* --- application --- *)

let count_pos args =
  List.fold_left
    (fun n (lab, _) -> match lab with Nolabel -> n + 1 | _ -> n)
    0 args

let find_labelled l args =
  List.find_map
    (fun (lab, v) ->
      match lab with
      | Labelled l' when String.equal l l' -> Some v
      | _ -> None)
    args

let rec apply f args =
  if args = [] then f
  else
    match f with
    | Vclo c -> call_clo c args
    | Vprim (_, p) -> p args
    | Vprim1 (n, p) -> (
        match args with
        | (Nolabel, x) :: rest ->
            let r = p x in
            if rest = [] then r else apply r rest
        | _ -> err "%s: labelled argument" n)
    | Vprim2 (n, p) -> (
        match args with
        | (Nolabel, x) :: (Nolabel, y) :: rest ->
            let r = p x y in
            if rest = [] then r else apply r rest
        | [ (Nolabel, x) ] -> Vprim1 (n ^ "/partial", p x)
        | _ -> err "%s: labelled argument" n)
    | v -> err "cannot apply %s" (type_name v)

and call_clo c args =
  let npos_params =
    List.fold_left
      (fun n p -> match p.p_lab with Nolabel -> n + 1 | _ -> n)
      0 c.c_params
  in
  let labelled_satisfied =
    List.for_all
      (fun p ->
        match p.p_lab with
        | Labelled l -> find_labelled l args <> None
        | _ -> true)
      c.c_params
  in
  if count_pos args < npos_params || not labelled_satisfied then
    (* partial application: wait for the rest *)
    Vprim (c.c_name ^ "/partial", fun more -> call_clo c (args @ more))
  else begin
    let fr = Array.make c.c_nslots Vunit in
    Array.blit c.c_cap 0 fr 0 (Array.length c.c_cap);
    let positionals =
      List.filter_map
        (fun (lab, v) -> match lab with Nolabel -> Some v | _ -> None)
        args
    in
    let pos = ref positionals in
    List.iter
      (fun p ->
        match p.p_lab with
        | Nolabel -> (
            match !pos with
            | x :: t ->
                pos := t;
                p.p_bind fr x
            | [] -> err "%s: missing positional argument" c.c_name)
        | Labelled l -> (
            match find_labelled l args with
            | Some v -> p.p_bind fr v
            | None -> err "%s: missing ~%s" c.c_name l)
        | Optional l -> (
            match (find_labelled l args, p.p_default) with
            | Some v, Some _ -> p.p_bind fr v
            | Some v, None -> p.p_bind fr (Vcon ("Some", Some v))
            | None, Some d -> p.p_bind fr (d fr)
            | None, None -> p.p_bind fr (Vcon ("None", None))))
      c.c_params;
    let leftover = !pos in
    let r = c.c_body fr in
    if leftover = [] then r
    else apply r (List.map (fun v -> (Nolabel, v)) leftover)
  end

let () = Value.apply_ref := apply

(* --- patterns --- *)

(* Compiles a pattern to a binder; variable slots are appended to
   [scope.locals] as a side effect, so callers snapshot/restore the
   locals list to delimit binding regions. *)
let rec comp_pat scope (p : pattern) : Value.t array -> Value.t -> bool =
  match p.ppat_desc with
  | Ppat_any -> fun _ _ -> true
  | Ppat_var { txt; _ } ->
      let s = alloc scope in
      scope.locals <- (txt, Aslot s) :: scope.locals;
      fun fr v ->
        fr.(s) <- v;
        true
  | Ppat_alias (inner, { txt; _ }) ->
      let s = alloc scope in
      scope.locals <- (txt, Aslot s) :: scope.locals;
      let b = comp_pat scope inner in
      fun fr v ->
        fr.(s) <- v;
        b fr v
  | Ppat_constant c ->
      let cv = const_value c in
      fun _ v -> equal_val v cv
  | Ppat_tuple ps ->
      let bs = List.map (comp_pat scope) ps in
      let n = List.length bs in
      fun fr v -> (
        match v with
        | Vtup a when Array.length a = n ->
            List.for_all2 (fun b x -> b fr x) bs (Array.to_list a)
        | _ -> err "tuple pattern vs %s" (type_name v))
  | Ppat_construct ({ txt; _ }, None) -> (
      match Longident.last txt with
      | "()" -> fun _ _ -> true
      | "true" -> fun _ v -> as_bool v
      | "false" -> fun _ v -> not (as_bool v)
      | "[]" -> fun _ v -> as_list v = []
      | "None" -> (
          fun _ v ->
            match v with
            | Vcon ("None", _) -> true
            | Vcon _ -> false
            | v -> err "option pattern vs %s" (type_name v))
      | name -> (
          fun _ v ->
            match v with
            | Vcon (n, None) -> String.equal n name
            | Vcon _ -> false
            | v -> err "constructor pattern %s vs %s" name (type_name v)))
  | Ppat_construct ({ txt; _ }, Some (_, payload)) -> (
      match Longident.last txt with
      | "::" -> (
          match payload.ppat_desc with
          | Ppat_tuple [ hd; tl ] ->
              let bh = comp_pat scope hd in
              let bt = comp_pat scope tl in
              fun fr v -> (
                match as_list v with
                | x :: rest -> bh fr x && bt fr (Vlist rest)
                | [] -> false)
          | _ -> err "unsupported cons pattern")
      | name ->
          let b = comp_pat scope payload in
          fun fr v -> (
            match v with
            | Vcon (n, Some x) when String.equal n name -> b fr x
            | Vcon _ -> false
            | v -> err "constructor pattern %s vs %s" name (type_name v)))
  | Ppat_record (fields, _) ->
      let bs =
        List.map
          (fun ({ txt; _ }, fp) -> (Longident.last txt, comp_pat scope fp))
          fields
      in
      fun fr v -> (
        match v with
        | Vrec r -> List.for_all (fun (n, b) -> b fr !(rec_field r n)) bs
        | v -> err "record pattern vs %s" (type_name v))
  | Ppat_or (a, b) ->
      let before = scope.locals in
      let ba = comp_pat scope a in
      if scope.locals != before then err "or-pattern with bindings";
      let bb = comp_pat scope b in
      if scope.locals != before then err "or-pattern with bindings";
      fun fr v -> ba fr v || bb fr v
  | Ppat_constraint (inner, _) -> comp_pat scope inner
  | Ppat_unpack { txt = Some name; _ } ->
      let s = alloc scope in
      scope.locals <- (name, Amodslot s) :: scope.locals;
      fun fr v ->
        fr.(s) <- v;
        true
  | Ppat_unpack { txt = None; _ } -> fun _ _ -> true
  | _ -> err "unsupported pattern (%s)" (loc_str p.ppat_loc)

(* names bound by a pattern, for module-level bindings *)
let pattern_names scope ~before =
  let rec take acc l =
    if l == before then acc
    else
      match l with
      | (n, Aslot s) :: rest -> take ((n, s) :: acc) rest
      | _ :: rest -> take acc rest
      | [] -> acc
  in
  take [] scope.locals

(* --- module paths (compile time) --- *)

type mod_res = Mval of Value.t | Mslot of int

let rec resolve_mod scope lid : mod_res option =
  match lid with
  | Longident.Lident x -> (
      match lookup_local scope x with
      | Some (Amodslot s) -> Some (Mslot s)
      | Some (Acell c) -> Some (Mval !c)
      | Some (Aslot _) -> None
      | None -> (
          match scope.resolve x with Some c -> Some (Mval !c) | None -> None))
  | Longident.Ldot (p, x) -> (
      match resolve_mod scope p with
      | Some (Mval (Vmod m)) -> (
          match Hashtbl.find_opt m x with
          | Some c -> Some (Mval !c)
          | None -> None)
      | _ -> None)
  | Longident.Lapply _ -> None

type ident_res = Islot of int | Icell of cell | Icode of code | Inone

let resolve_ident scope lid : ident_res =
  match lid with
  | Longident.Lident x -> (
      match lookup_local scope x with
      | Some (Aslot s) | Some (Amodslot s) -> Islot s
      | Some (Acell c) -> Icell c
      | None -> (
          match scope.resolve x with Some c -> Icell c | None -> Inone))
  | Longident.Ldot (p, x) -> (
      match resolve_mod scope p with
      | Some (Mval (Vmod m)) -> (
          match Hashtbl.find_opt m x with Some c -> Icell c | None -> Inone)
      | Some (Mslot s) ->
          Icode
            (fun fr ->
              match fr.(s) with
              | Vmod m -> (
                  match Hashtbl.find_opt m x with
                  | Some c -> !c
                  | None -> err "module member %s not found" x)
              | v -> err "expected module, got %s" (type_name v))
      | _ -> Inone)
  | Longident.Lapply _ -> Inone

(* --- expressions --- *)

let rec comp scope (e : expression) : code =
  match e.pexp_desc with
  | Pexp_constant c ->
      let v = const_value c in
      fun _ -> v
  | Pexp_ident { txt; loc } -> (
      match resolve_ident scope txt with
      | Islot s -> fun fr -> fr.(s)
      | Icell c -> fun _ -> !c
      | Icode f -> f
      | Inone ->
          let name = String.concat "." (Longident.flatten txt) in
          fun _ -> err "unbound identifier %s (%s)" name (loc_str loc))
  | Pexp_let (Nonrecursive, vbs, body) ->
      (* all RHSs see the outer scope; patterns bind after *)
      let rhss = List.map (fun vb -> comp scope vb.pvb_expr) vbs in
      let before = scope.locals in
      let binders = List.map (fun vb -> comp_pat scope vb.pvb_pat) vbs in
      let body_code = comp scope body in
      scope.locals <- before;
      fun fr ->
        List.iter2
          (fun rhs binder ->
            let v = rhs fr in
            if not (binder fr v) then raise (exc "Match_failure" None))
          rhss binders;
        body_code fr
  | Pexp_let (Recursive, vbs, body) ->
      comp_letrec scope vbs body
  | Pexp_fun _ | Pexp_function _ ->
      let mk, _capmap = comp_function scope e in
      mk
  | Pexp_apply (callee, args) -> comp_apply scope e.pexp_loc callee args
  | Pexp_match (subject, cases) ->
      let cs = comp scope subject in
      let m = comp_cases scope cases in
      fun fr -> (
        match m fr (cs fr) with
        | Some r -> r
        | None -> raise (exc "Match_failure" None))
  | Pexp_try (body, cases) ->
      let cb = comp scope body in
      let m = comp_cases scope cases in
      fun fr -> (
        try cb fr
        with Exc v as exn -> (
          match m fr v with Some r -> r | None -> raise exn))
  | Pexp_tuple es ->
      let cs = List.map (comp scope) es in
      let n = List.length cs in
      fun fr ->
        let a = Array.make n Vunit in
        List.iteri (fun i c -> a.(i) <- c fr) cs;
        Vtup a
  | Pexp_construct ({ txt; _ }, arg) -> (
      match (Longident.last txt, arg) with
      | "()", None -> fun _ -> Vunit
      | "true", None -> fun _ -> Vbool true
      | "false", None -> fun _ -> Vbool false
      | "[]", None -> fun _ -> Vlist []
      | "::", Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ->
          let ch = comp scope hd and ct = comp scope tl in
          fun fr -> Vlist (ch fr :: as_list (ct fr))
      | name, None -> fun _ -> Vcon (name, None)
      | name, Some payload ->
          let cp = comp scope payload in
          fun fr -> Vcon (name, Some (cp fr)))
  | Pexp_record (fields, base) ->
      let cfields =
        List.map
          (fun ({ txt; _ }, fe) -> (Longident.last txt, comp scope fe))
          fields
      in
      (match base with
      | None ->
          fun fr ->
            Vrec
              (Array.of_list
                 (List.map (fun (n, c) -> (n, ref (c fr))) cfields))
      | Some be ->
          let cb = comp scope be in
          fun fr -> (
            match cb fr with
            | Vrec r ->
                let r' = Array.map (fun (n, cell) -> (n, ref !cell)) r in
                List.iter
                  (fun (n, c) -> rec_field r' n := c fr)
                  cfields;
                Vrec r'
            | v -> err "record update on %s" (type_name v)))
  | Pexp_field (re, { txt; _ }) ->
      let cr = comp scope re in
      let name = Longident.last txt in
      fun fr -> (
        match cr fr with
        | Vrec r -> !(rec_field r name)
        | v -> err "field %s of %s" name (type_name v))
  | Pexp_setfield (re, { txt; _ }, ve) ->
      let cr = comp scope re in
      let cv = comp scope ve in
      let name = Longident.last txt in
      fun fr -> (
        match cr fr with
        | Vrec r ->
            rec_field r name := cv fr;
            Vunit
        | v -> err "setfield %s of %s" name (type_name v))
  | Pexp_array es ->
      let cs = Array.of_list (List.map (comp scope) es) in
      fun fr -> Varr (Array.map (fun c -> c fr) cs)
  | Pexp_ifthenelse (ce, te, fe) -> (
      let cc = comp scope ce in
      let ct = comp scope te in
      match fe with
      | Some fe ->
          let cf = comp scope fe in
          fun fr -> if as_bool (cc fr) then ct fr else cf fr
      | None ->
          fun fr ->
            if as_bool (cc fr) then ignore (ct fr);
            Vunit)
  | Pexp_sequence (a, b) ->
      let ca = comp scope a and cb = comp scope b in
      fun fr ->
        ignore (ca fr);
        cb fr
  | Pexp_while (ce, be) ->
      let cc = comp scope ce and cb = comp scope be in
      fun fr ->
        while as_bool (cc fr) do
          ignore (cb fr)
        done;
        Vunit
  | Pexp_for (pat, lo, hi, dir, body) ->
      let cl = comp scope lo and ch = comp scope hi in
      let before = scope.locals in
      let slot =
        match pat.ppat_desc with
        | Ppat_var { txt; _ } ->
            let s = alloc scope in
            scope.locals <- (txt, Aslot s) :: scope.locals;
            Some s
        | Ppat_any -> None
        | _ -> err "unsupported for-loop pattern"
      in
      let cb = comp scope body in
      scope.locals <- before;
      let set fr i =
        match slot with Some s -> fr.(s) <- Vint i | None -> ()
      in
      fun fr ->
        let a = as_int (cl fr) and b = as_int (ch fr) in
        (match dir with
        | Upto ->
            for i = a to b do
              set fr i;
              ignore (cb fr)
            done
        | Downto ->
            for i = a downto b do
              set fr i;
              ignore (cb fr)
            done);
        Vunit
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) -> comp scope inner
  | Pexp_open (od, body) -> (
      match od.popen_expr.pmod_desc with
      | Pmod_ident { txt; _ } -> (
          match resolve_mod scope txt with
          | Some (Mval (Vmod m)) ->
              let before = scope.locals in
              Hashtbl.iter
                (fun n c -> scope.locals <- (n, Acell c) :: scope.locals)
                m;
              let cb = comp scope body in
              scope.locals <- before;
              cb
          | _ -> unsupported "open of unresolved module" e.pexp_loc)
      | _ -> unsupported "open of non-ident module" e.pexp_loc)
  | Pexp_letmodule _ ->
      (* only the taint-analysis helpers use this; they are never
         executed by the cost driver *)
      unsupported "let module" e.pexp_loc
  | Pexp_lazy inner ->
      (* the kernels only use lazy for pure shape values; evaluate
         eagerly, Lazy.force is the identity *)
      comp scope inner
  | Pexp_assert inner -> (
      match inner.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) ->
          fun _ -> raise (exc "Assert_failure" None)
      | _ ->
          let ci = comp scope inner in
          fun fr ->
            if as_bool (ci fr) then Vunit
            else raise (exc "Assert_failure" None))
  | Pexp_pack me -> (
      match me.pmod_desc with
      | Pmod_ident { txt; _ } -> (
          match resolve_mod scope txt with
          | Some (Mval v) -> fun _ -> v
          | Some (Mslot s) -> fun fr -> fr.(s)
          | None -> unsupported "pack of unresolved module" e.pexp_loc)
      | _ -> unsupported "pack of non-ident module" e.pexp_loc)
  | _ -> unsupported "expression form" e.pexp_loc

and comp_letrec scope vbs body =
  let before = scope.locals in
  (* bind all names first *)
  let slots =
    List.map
      (fun vb ->
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ } ->
            let s = alloc scope in
            scope.locals <- (txt, Aslot s) :: scope.locals;
            (txt, s)
        | _ -> err "let rec: non-variable pattern")
      vbs
  in
  let mks =
    List.map
      (fun vb ->
        match vb.pvb_expr.pexp_desc with
        | Pexp_fun _ | Pexp_function _ -> comp_function scope vb.pvb_expr
        | _ -> err "let rec: non-function binding")
      vbs
  in
  let body_code = comp scope body in
  scope.locals <- before;
  let rec_names = List.map fst slots in
  fun fr ->
    (* create all closures, then backpatch their self/mutual captures *)
    let clos =
      List.map2
        (fun (_, s) (mk, capmap) ->
          let v = mk fr in
          fr.(s) <- v;
          (v, capmap))
        slots mks
    in
    List.iter
      (fun (v, capmap) ->
        match v with
        | Vclo c ->
            List.iter
              (fun (name, idx) ->
                if List.mem name rec_names then
                  let slot = List.assoc name slots in
                  c.c_cap.(idx) <- fr.(slot))
              capmap
        | _ -> ())
      clos;
    body_code fr

(* Compiles a function expression; returns the closure-creation code
   and the capture map (name -> capture index) for letrec patching. *)
and comp_function scope (e : expression) : code * (string * int) list =
  (* collect the parameter chain *)
  let rec collect acc ex =
    match ex.pexp_desc with
    | Pexp_fun (lab, default, pat, body) ->
        collect ((lab, default, pat) :: acc) body
    | _ -> (List.rev acc, ex)
  in
  let params_syn, body_syn = collect [] e in
  let free = free_names e in
  (* innermost-first walk; keep the first (innermost) occurrence only *)
  let seen = Hashtbl.create 16 in
  let caps = ref [] (* (enclosing access, name, inner slot) in order *) in
  let inner =
    { locals = []; nslots = 0; resolve = scope.resolve }
  in
  List.iter
    (fun (n, a) ->
      if Hashtbl.mem free n && not (Hashtbl.mem seen n) then begin
        Hashtbl.replace seen n ();
        match a with
        | Aslot s ->
            let i = alloc inner in
            inner.locals <- inner.locals @ [ (n, Aslot i) ];
            caps := (s, n, i) :: !caps
        | Amodslot s ->
            let i = alloc inner in
            inner.locals <- inner.locals @ [ (n, Amodslot i) ];
            caps := (s, n, i) :: !caps
        | Acell c -> inner.locals <- inner.locals @ [ (n, Acell c) ]
      end)
    scope.locals;
  let caps = List.rev !caps in
  let cap_slots = Array.of_list (List.map (fun (s, _, _) -> s) caps) in
  let capmap = List.map (fun (_, n, i) -> (n, i)) caps in
  (* parameters *)
  let params =
    List.map
      (fun (lab, default, pat) ->
        let bind = comp_pat inner pat in
        let p_default = Option.map (comp inner) default in
        {
          p_lab = lab;
          p_bind =
            (fun fr v ->
              if not (bind fr v) then raise (exc "Match_failure" None));
          p_default;
        })
      params_syn
  in
  (* a final `function` keyword adds one parameter plus a match *)
  let params, body_code =
    match body_syn.pexp_desc with
    | Pexp_function cases ->
        let s = alloc inner in
        let m = comp_cases inner cases in
        ( params
          @ [
              {
                p_lab = Nolabel;
                p_bind = (fun fr v -> fr.(s) <- v);
                p_default = None;
              };
            ],
          fun fr ->
            match m fr fr.(s) with
            | Some r -> r
            | None -> raise (exc "Match_failure" None) )
    | _ -> (params, comp inner body_syn)
  in
  if params = [] then err "function with no parameters";
  let c_name = "fn" in
  let mk fr =
    Vclo
      {
        c_name;
        c_params = params;
        c_nslots = inner.nslots;
        c_cap = Array.map (fun s -> fr.(s)) cap_slots;
        c_body = body_code;
      }
  in
  (mk, capmap)

and comp_cases scope cases : Value.t array -> Value.t -> Value.t option =
  let compiled =
    List.map
      (fun c ->
        let before = scope.locals in
        let binder = comp_pat scope c.pc_lhs in
        let guard = Option.map (comp scope) c.pc_guard in
        let body = comp scope c.pc_rhs in
        scope.locals <- before;
        (binder, guard, body))
      cases
  in
  fun fr v ->
    let rec go = function
      | [] -> None
      | (binder, guard, body) :: rest ->
          if
            binder fr v
            && match guard with None -> true | Some g -> as_bool (g fr)
          then Some (body fr)
          else go rest
    in
    go compiled

and comp_apply scope loc callee args =
  match callee.pexp_desc with
  (* short-circuit operators *)
  | Pexp_ident { txt = Longident.Lident "&&"; _ }
    when count_pos args = 2 && List.length args = 2 ->
      let ca, cb =
        match args with
        | [ (_, a); (_, b) ] -> (comp scope a, comp scope b)
        | _ -> assert false
      in
      fun fr -> Vbool (as_bool (ca fr) && as_bool (cb fr))
  | Pexp_ident { txt = Longident.Lident "||"; _ }
    when count_pos args = 2 && List.length args = 2 ->
      let ca, cb =
        match args with
        | [ (_, a); (_, b) ] -> (comp scope a, comp scope b)
        | _ -> assert false
      in
      fun fr -> Vbool (as_bool (ca fr) || as_bool (cb fr))
  | Pexp_ident { txt; _ } -> (
      let generic cell_code =
        let cargs = List.map (fun (lab, a) -> (lab, comp scope a)) args in
        fun fr ->
          apply (cell_code fr) (List.map (fun (lab, c) -> (lab, c fr)) cargs)
      in
      match resolve_ident scope txt with
      | Icell cell -> (
          (* direct call threading for fixed-arity primitives: module
             member cells are written once before any caller compiles *)
          match (!cell, args) with
          | Vprim2 (_, f), [ (Nolabel, a); (Nolabel, b) ] ->
              let ca = comp scope a and cb = comp scope b in
              fun fr -> f (ca fr) (cb fr)
          | Vprim1 (_, f), [ (Nolabel, a) ] ->
              let ca = comp scope a in
              fun fr -> f (ca fr)
          | _ -> generic (fun _ -> !cell))
      | Islot s -> generic (fun fr -> fr.(s))
      | Icode f -> generic f
      | Inone ->
          let name = String.concat "." (Longident.flatten txt) in
          fun _ -> err "unbound function %s (%s)" name (loc_str loc))
  | _ ->
      let cc = comp scope callee in
      let cargs = List.map (fun (lab, a) -> (lab, comp scope a)) args in
      fun fr -> apply (cc fr) (List.map (fun (lab, c) -> (lab, c fr)) cargs)

(* --- structures and modules --- *)

let run_code scope code binder =
  let fr = Array.make (Stdlib.max scope.nslots 1) Vunit in
  let v = code fr in
  binder fr v;
  fr

let eval_binding resolve (vb : value_binding) : (string * cell) list =
  let scope = { locals = []; nslots = 0; resolve } in
  let code = comp scope vb.pvb_expr in
  let before = scope.locals in
  let binder = comp_pat scope vb.pvb_pat in
  let names = pattern_names scope ~before in
  let fr =
    run_code scope code (fun fr v ->
        if not (binder fr v) then raise (exc "Match_failure" None))
  in
  List.map (fun (n, s) -> (n, ref fr.(s))) names

let rec eval_structure (resolve : string -> cell option) (items : structure) :
    modl =
  let table : modl = Hashtbl.create 32 in
  let opens = ref [] in
  let resolve_cur n =
    match Hashtbl.find_opt table n with
    | Some c -> Some c
    | None -> (
        let rec from_opens = function
          | [] -> resolve n
          | m :: rest -> (
              match Hashtbl.find_opt m n with
              | Some c -> Some c
              | None -> from_opens rest)
        in
        from_opens !opens)
  in
  List.iter
    (fun (item : structure_item) ->
      match item.pstr_desc with
      | Pstr_value (Nonrecursive, vbs) ->
          List.iter
            (fun vb ->
              List.iter
                (fun (n, c) -> Hashtbl.replace table n c)
                (eval_binding resolve_cur vb))
            vbs
      | Pstr_value (Recursive, vbs) ->
          (* pre-create member cells so function bodies can refer to the
             whole group through the resolver *)
          let cells =
            List.map
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } ->
                    let c = ref Vunit in
                    Hashtbl.replace table txt c;
                    (vb, c)
                | _ -> err "module-level let rec: non-variable pattern")
              vbs
          in
          List.iter
            (fun (vb, c) ->
              let scope = { locals = []; nslots = 0; resolve = resolve_cur } in
              let code = comp scope vb.pvb_expr in
              let fr = Array.make (Stdlib.max scope.nslots 1) Vunit in
              c := code fr)
            cells
      | Pstr_module mb -> (
          match mb.pmb_name.txt with
          | Some name ->
              let v = eval_module resolve_cur mb.pmb_expr in
              Hashtbl.replace table name (ref v)
          | None -> ())
      | Pstr_include incl -> (
          match eval_module resolve_cur incl.pincl_mod with
          | Vmod m -> Hashtbl.iter (fun n c -> Hashtbl.replace table n c) m
          | _ -> err "include of non-structure module")
      | Pstr_open od -> (
          match od.popen_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> (
              match
                resolve_mod
                  { locals = []; nslots = 0; resolve = resolve_cur }
                  txt
              with
              | Some (Mval (Vmod m)) -> opens := m :: !opens
              | _ -> err "open of unresolved module")
          | _ -> err "open of non-ident module at structure level")
      | Pstr_eval (e, _) ->
          let scope = { locals = []; nslots = 0; resolve = resolve_cur } in
          let code = comp scope e in
          let fr = Array.make (Stdlib.max scope.nslots 1) Vunit in
          ignore (code fr)
      | Pstr_type _ | Pstr_typext _ | Pstr_exception _ | Pstr_modtype _
      | Pstr_attribute _ | Pstr_extension _ | Pstr_primitive _ ->
          ()
      | _ -> err "unsupported structure item")
    items;
  table

and eval_module resolve (me : module_expr) : Value.t =
  match me.pmod_desc with
  | Pmod_ident { txt; _ } -> (
      match
        resolve_mod { locals = []; nslots = 0; resolve } txt
      with
      | Some (Mval v) -> v
      | _ ->
          err "unresolved module %s" (String.concat "." (Longident.flatten txt)))
  | Pmod_structure s -> Vmod (eval_structure resolve s)
  | Pmod_functor (param, body) -> (
      match param with
      | Named ({ txt = Some name; _ }, _) ->
          Vfunctor
            ( name,
              fun arg ->
                let c = ref arg in
                eval_module
                  (fun n -> if String.equal n name then Some c else resolve n)
                  body )
      | Named ({ txt = None; _ }, _) | Unit ->
          Vfunctor ("_", fun _ -> eval_module resolve body))
  | Pmod_apply (f, a) -> (
      let vf = eval_module resolve f in
      let va = eval_module resolve a in
      match vf with
      | Vfunctor (_, fn) -> fn va
      | v -> err "application of non-functor %s" (type_name v))
  | Pmod_constraint (m, _) -> eval_module resolve m
  | _ -> err "unsupported module expression"

(* Applies an already-evaluated functor value (possibly curried, e.g.
   [Make_sized (G) (S)]) to module arguments. *)
let apply_functor f args =
  List.fold_left
    (fun f arg ->
      match f with
      | Vfunctor (_, fn) -> fn arg
      | v -> err "application of non-functor %s" (type_name v))
    f args
