type entry = {
  p_first : int; (* line the pragma comment starts on *)
  p_last : int; (* line after the comment closes — the annotated code *)
  p_rule : Finding.rule;
  p_reason : string;
  mutable p_used : bool;
}

type t = { file : string; entries : entry list }

(* Concatenated so the scanner never matches its own source. *)
let marker = "lint: " ^ "allow"

(* Strip leading separator punctuation between the rule name and the
   justification: spaces, ASCII dashes/colons, and the UTF-8 em dash
   (0xE2 0x80 0x94). *)
let strip_separator s =
  let n = String.length s in
  let i = ref 0 in
  let scanning = ref true in
  while !scanning && !i < n do
    match s.[!i] with
    | ' ' | '\t' | '-' | ':' -> incr i
    | '\xe2' when !i + 2 < n && s.[!i + 1] = '\x80' && s.[!i + 2] = '\x94' ->
        i := !i + 3
    | _ -> scanning := false
  done;
  String.sub s !i (n - !i)

let is_rule_char = function 'a' .. 'z' | '-' -> true | _ -> false

(* Index of the first occurrence of [sub] in [s] at or after [from],
   or -1. *)
let find_sub s sub from =
  let ns = String.length s and nb = String.length sub in
  let last = ns - nb in
  let rec go i =
    if i > last then -1
    else if String.sub s i nb = sub then i
    else go (i + 1)
  in
  if nb = 0 then -1 else go (max 0 from)

(* Parse the pragma body (everything after [marker], comment closer
   stripped). *)
let parse_one ~file ~first ~last body =
  let body =
    match find_sub body "*)" 0 with
    | -1 -> body
    | stop -> String.sub body 0 stop
  in
  let body = String.trim body in
  let rule_len =
    let n = String.length body in
    let rec go i = if i < n && is_rule_char body.[i] then go (i + 1) else i in
    go 0
  in
  let rule_name = String.sub body 0 rule_len in
  let reason =
    String.trim
      (strip_separator (String.sub body rule_len (String.length body - rule_len)))
  in
  match Finding.rule_of_name rule_name with
  | None ->
      Error
        {
          Finding.rule = Finding.Pragma;
          file;
          line = first;
          message =
            Printf.sprintf
              "unknown rule %S in lint pragma (rules: domain-safety, \
               unsafe-access, float-equality, swallowed-exception)"
              rule_name;
          severity = Finding.Error;
        }
  | Some rule ->
      if reason = "" then
        Error
          {
            Finding.rule = Finding.Pragma;
            file;
            line = first;
            message =
              Printf.sprintf
                "pragma for %s needs a justification after the rule name \
                 (separated by \xe2\x80\x94, -- or :)"
                rule_name;
            severity = Finding.Error;
          }
      else
        Ok
          {
            p_first = first;
            p_last = last;
            p_rule = rule;
            p_reason = reason;
            p_used = false;
          }

let scan ~file source =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let n = Array.length lines in
  let entries = ref [] and errors = ref [] in
  let i = ref 0 in
  while !i < n do
    (match find_sub lines.(!i) marker 0 with
    | -1 -> ()
    | at ->
        let first = !i + 1 in
        let body = Buffer.create 64 in
        let start = at + String.length marker in
        Buffer.add_string body
          (String.sub lines.(!i) start (String.length lines.(!i) - start));
        (* Absorb continuation lines until the comment closes, so a
           multi-line justification still anchors to the code line that
           follows the closing "*)". *)
        while find_sub (Buffer.contents body) "*)" 0 = -1 && !i + 1 < n do
          incr i;
          Buffer.add_char body ' ';
          Buffer.add_string body (String.trim lines.(!i))
        done;
        let last = !i + 2 in
        (* the line after the comment closes *)
        match parse_one ~file ~first ~last (Buffer.contents body) with
        | Ok e -> entries := e :: !entries
        | Error f -> errors := f :: !errors);
    incr i
  done;
  ({ file; entries = List.rev !entries }, List.rev !errors)

let allows t rule ~line =
  match
    List.find_opt
      (fun e -> e.p_rule = rule && e.p_first <= line && line <= e.p_last)
      t.entries
  with
  | Some e ->
      e.p_used <- true;
      true
  | None -> false

let unused t =
  List.filter_map
    (fun e ->
      if e.p_used then None
      else
        Some
          {
            Finding.rule = Finding.Pragma;
            file = t.file;
            line = e.p_first;
            message =
              Printf.sprintf
                "unused lint pragma: no %s finding on lines %d-%d (reason \
                 given: %s)"
                (Finding.rule_name e.p_rule) e.p_first e.p_last e.p_reason;
            severity = Finding.Warning;
          })
    t.entries
