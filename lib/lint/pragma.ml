(* Generic per-file pragma scanner.  Two layers of reuse: [Generic] is
   the raw marker-and-tag scanner (the lint allow-pragmas below build on
   it directly), and [Assume] packages the assume-pragma family shared
   by the activity, guard and discover passes — same marker shape
   ("<keyword>: assume"), same tag alphabet, same unused-warning
   phrasing — so a new keyword is one functor application, not a fourth
   hand-rolled copy. *)

(* Strip leading separator punctuation between the tag and the
   justification: spaces, ASCII dashes/colons, and the UTF-8 em dash
   (0xE2 0x80 0x94). *)
let strip_separator s =
  let n = String.length s in
  let i = ref 0 in
  let scanning = ref true in
  while !scanning && !i < n do
    match s.[!i] with
    | ' ' | '\t' | '-' | ':' -> incr i
    | '\xe2' when !i + 2 < n && s.[!i + 1] = '\x80' && s.[!i + 2] = '\x94' ->
        i := !i + 3
    | _ -> scanning := false
  done;
  String.sub s !i (n - !i)

(* Index of the first occurrence of [sub] in [s] at or after [from],
   or -1. *)
let find_sub s sub from =
  let ns = String.length s and nb = String.length sub in
  let last = ns - nb in
  let rec go i =
    if i > last then -1
    else if String.sub s i nb = sub then i
    else go (i + 1)
  in
  if nb = 0 then -1 else go (max 0 from)

module Generic = struct
  type 'tag entry = {
    g_first : int; (* line the pragma comment starts on *)
    g_last : int; (* line after the comment closes — the annotated code *)
    g_tag : 'tag;
    g_reason : string;
    mutable g_used : bool;
  }

  type 'tag t = { g_file : string; g_entries : 'tag entry list }

  (* Parse the pragma body (everything after the marker, comment closer
     stripped): a run of [tag_char] characters naming the tag, then the
     mandatory justification after the separator. *)
  let parse_one ~file ~tag_char ~parse_tag ~first ~last body =
    let body =
      match find_sub body "*)" 0 with
      | -1 -> body
      | stop -> String.sub body 0 stop
    in
    let body = String.trim body in
    let tag_len =
      let n = String.length body in
      let rec go i = if i < n && tag_char body.[i] then go (i + 1) else i in
      go 0
    in
    let tag_text = String.trim (String.sub body 0 tag_len) in
    let reason =
      String.trim
        (strip_separator
           (String.sub body tag_len (String.length body - tag_len)))
    in
    match parse_tag tag_text with
    | Error message ->
        Error
          {
            Finding.rule = Finding.Pragma;
            file;
            line = first;
            message;
            severity = Finding.Error;
          }
    | Ok tag ->
        if reason = "" then
          Error
            {
              Finding.rule = Finding.Pragma;
              file;
              line = first;
              message =
                Printf.sprintf
                  "pragma %S needs a justification after the tag (separated \
                   by \xe2\x80\x94, -- or :)"
                  tag_text;
              severity = Finding.Error;
            }
        else
          Ok
            {
              g_first = first;
              g_last = last;
              g_tag = tag;
              g_reason = reason;
              g_used = false;
            }

  let scan ~marker ~tag_char ~parse_tag ~file source =
    let lines = Array.of_list (String.split_on_char '\n' source) in
    let n = Array.length lines in
    let entries = ref [] and errors = ref [] in
    let i = ref 0 in
    while !i < n do
      (match find_sub lines.(!i) marker 0 with
      | -1 -> ()
      | at ->
          let first = !i + 1 in
          let body = Buffer.create 64 in
          let start = at + String.length marker in
          Buffer.add_string body
            (String.sub lines.(!i) start (String.length lines.(!i) - start));
          (* Absorb continuation lines until the comment closes, so a
             multi-line justification still anchors to the code line that
             follows the closing "*)". *)
          while find_sub (Buffer.contents body) "*)" 0 = -1 && !i + 1 < n do
            incr i;
            Buffer.add_char body ' ';
            Buffer.add_string body (String.trim lines.(!i))
          done;
          let last = !i + 2 in
          (* the line after the comment closes *)
          match
            parse_one ~file ~tag_char ~parse_tag ~first ~last
              (Buffer.contents body)
          with
          | Ok e -> entries := e :: !entries
          | Error f -> errors := f :: !errors);
      incr i
    done;
    ({ g_file = file; g_entries = List.rev !entries }, List.rev !errors)

  let find t pred =
    match
      List.find_opt (fun e -> pred e.g_tag e.g_first e.g_last) t.g_entries
    with
    | Some e ->
        e.g_used <- true;
        Some e
    | None -> None

  let unused t ~describe =
    List.filter_map
      (fun e ->
        if e.g_used then None
        else
          Some
            {
              Finding.rule = Finding.Pragma;
              file = t.g_file;
              line = e.g_first;
              message = describe e.g_tag e.g_first e.g_last e.g_reason;
              severity = Finding.Warning;
            })
      t.g_entries
end

(* ------------------------------------------------------------------ *)
(* The assume-pragma family: "<keyword>: assume <words> — <reason>"    *)
(* ------------------------------------------------------------------ *)

module type ASSUME_GRAMMAR = sig
  type tag

  val keyword : string
  val parse_words : string list -> (tag, string) result
  val subject_of : tag -> string
end

module Assume (G : ASSUME_GRAMMAR) = struct
  type t = G.tag Generic.t

  (* Concatenated so no scanner ever matches its own source (or the
     functor's). *)
  let marker = G.keyword ^ ": " ^ "assume"

  let is_tag_char = function
    | 'a' .. 'z' | '0' .. '9' | '_' | '\'' | ' ' -> true
    | _ -> false

  let parse_tag text =
    G.parse_words
      (List.filter (fun w -> w <> "") (String.split_on_char ' ' text))

  let scan ~file source =
    Generic.scan ~marker ~tag_char:is_tag_char ~parse_tag ~file source

  let payload (e : G.tag Generic.entry) = (e.Generic.g_tag, e.Generic.g_reason)

  let assume t ~subject ~line =
    Option.map payload
      (Generic.find t (fun tag first last ->
           G.subject_of tag = subject && first <= line && line <= last))

  let assume_anywhere t ~subject =
    Option.map payload
      (Generic.find t (fun tag _ _ -> G.subject_of tag = subject))

  let unused t =
    Generic.unused t ~describe:(fun tag first last reason ->
        Printf.sprintf
          "unused %s pragma: no declaration of %S on lines %d-%d (reason \
           given: %s)"
          G.keyword (G.subject_of tag) first last reason)
end

(* ------------------------------------------------------------------ *)
(* The lint instantiation: the allow-pragma with a rule-name tag       *)
(* ------------------------------------------------------------------ *)

type t = Finding.rule Generic.t

(* Concatenated so the scanner never matches its own source. *)
let marker = "lint: " ^ "allow"

let is_rule_char = function 'a' .. 'z' | '-' -> true | _ -> false

let parse_rule name =
  match Finding.rule_of_name name with
  | Some r -> Ok r
  | None ->
      Error
        (Printf.sprintf
           "unknown rule %S in lint pragma (rules: domain-safety, \
            domain-spawn-outside-pool, unsafe-access, float-equality, \
            swallowed-exception, deprecated-entrypoint, \
            bigarray-generic-access)"
           name)

let scan ~file source =
  Generic.scan ~marker ~tag_char:is_rule_char ~parse_tag:parse_rule ~file
    source

let allows t rule ~line =
  Option.is_some
    (Generic.find t (fun r first last ->
         r = rule && first <= line && line <= last))

let unused t =
  Generic.unused t ~describe:(fun rule first last reason ->
      Printf.sprintf
        "unused lint pragma: no %s finding on lines %d-%d (reason given: %s)"
        (Finding.rule_name rule) first last reason)
