(** The seven analysis rules over a parsed [Parsetree.structure]
    (DESIGN.md §10).

    - {b domain-safety} (only when [domain_scope] is true for the file):
      mutable state allocated at module-init position — [ref],
      [Hashtbl.create], [Buffer.create], [Array.make], Bigarray
      allocation, array literals, records with [mutable] fields declared
      in the same file.  Module-init position means outside any function
      body, including inside submodules and functor bodies (a functor
      application at module level would freeze such state into shared
      top-level values).
    - {b domain-spawn-outside-pool} (skipped when [pool_scope] is true,
      i.e. for the pool runtime itself): any [Domain.spawn] or
      [Domain.join] mention.  Raw domains bypass the pool's exception
      re-raise order, nested-map degradation, the write-set sanitizer,
      and the race certifier's fan-out site discovery (racecheck only
      classifies [Pool.map]/[Pool.init] sites).  [Domain.self] and the
      other non-spawning operations do not fire.
    - {b unsafe-access}: any [unsafe_get]/[unsafe_set] (and the sibling
      [unsafe_fill]/[unsafe_blit]) mention.
    - {b float-equality}: structural [=], [<>] or polymorphic [compare]
      with a float-literal or [(_ : float)]-annotated operand.
      [Float.compare]/[Float.equal] are the sanctioned spellings and do
      not fire.
    - {b swallowed-exception}: unguarded [try … with] catch-all cases
      ([_], [_e], a bare variable, or aliases/or-patterns thereof)
      whose handler neither re-raises nor so much as mentions the
      caught exception — such a handler eats [Pool.map]'s re-raised
      worker failures and [Store.Write_failed] silently.  Binding and
      using the exception (wrapping, logging, storing for later
      re-raise) is deliberate and does not fire.
    - {b deprecated-entrypoint}: any reference to the deprecated
      [Analyzer.analyze]/[analyze_suite]/[analyze_boundaries]
      optional-argument wrappers (the Config-based [run]/[run_suite]/
      [run_boundaries] replaced them).  Purely syntactic — it matches
      the qualified path, so it also covers code the build graph never
      typechecks.  [Analyzer.analyze_impact] is not deprecated and does
      not fire.
    - {b bigarray-generic-access}: a function parameter indexed via
      [Array1.get]/[set]/[unsafe_get]/[unsafe_set] (the [.{...}] sugar
      desugars to these) inside a [for]/[while] loop while bare of any
      type annotation, or annotated with an [Array1.t] that leaves the
      kind/layout polymorphic.  Such access compiles to the generic
      boxing path (~6x slower in the tape's push loop).  A parameter
      annotated with any other named type (e.g. a concrete alias such
      as tape.ml's [f64]) is trusted.  The finding points at the first
      in-loop access.

    All findings are raw (severity [Error]); allowlists and pragmas are
    applied downstream by {!Driver}. *)

val check :
  domain_scope:bool ->
  pool_scope:bool ->
  file:string ->
  Parsetree.structure ->
  Finding.t list
