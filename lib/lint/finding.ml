type rule =
  | Domain_safety
  | Domain_spawn_outside_pool
  | Unsafe_access
  | Float_equality
  | Swallowed_exception
  | Deprecated_entrypoint
  | Bigarray_generic_access
  | Pragma
  | Syntax

type severity = Error | Warning

type t = {
  rule : rule;
  file : string;
  line : int;
  message : string;
  severity : severity;
}

let rule_name = function
  | Domain_safety -> "domain-safety"
  | Domain_spawn_outside_pool -> "domain-spawn-outside-pool"
  | Unsafe_access -> "unsafe-access"
  | Float_equality -> "float-equality"
  | Swallowed_exception -> "swallowed-exception"
  | Deprecated_entrypoint -> "deprecated-entrypoint"
  | Bigarray_generic_access -> "bigarray-generic-access"
  | Pragma -> "pragma"
  | Syntax -> "syntax"

let rule_of_name = function
  | "domain-safety" -> Some Domain_safety
  | "domain-spawn-outside-pool" -> Some Domain_spawn_outside_pool
  | "unsafe-access" -> Some Unsafe_access
  | "float-equality" -> Some Float_equality
  | "swallowed-exception" -> Some Swallowed_exception
  | "deprecated-entrypoint" -> Some Deprecated_entrypoint
  | "bigarray-generic-access" -> Some Bigarray_generic_access
  | "pragma" -> Some Pragma
  | "syntax" -> Some Syntax
  | _ -> None

let severity_name = function Error -> "error" | Warning -> "warning"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare (rule_name a.rule) (rule_name b.rule) in
      if c <> 0 then c
      else
        let c = String.compare a.message b.message in
        if c <> 0 then c
        else String.compare (severity_name a.severity) (severity_name b.severity)

let to_text f =
  Printf.sprintf "%s:%d: [%s] %s: %s" f.file f.line
    (severity_name f.severity) (rule_name f.rule) f.message
