(** Per-file [(* lint: allow <rule> — <reason> *)] pragmas.

    A pragma suppresses findings of the named rule on any line the
    comment itself spans {e and} the line directly below its closing
    delimiter, so trailing-comment, own-line, and multi-line
    justification placements all work:

    {[
      let x = probe () = 0.0 (* lint: allow float-equality — sentinel *)

      (* lint: allow swallowed-exception — probe: failure means "absent" *)
      let ok = try check (); true with _ -> false
    ]}

    The justification after the separator ([—], [--] or [:]) is
    mandatory: a pragma without one is itself an error finding, and a
    pragma that suppressed nothing is a warning ([Pragma] rule), so
    stale annotations cannot accumulate.

    {!Generic} is the underlying scanner, parameterized over the marker
    string and the tag grammar.  {!Assume} builds the shared
    assume-pragma family on top of it: the activity, guard and discover
    passes each instantiate it with their keyword and tag grammar, so
    every [(* <keyword>: assume … *)] pragma has identical comment
    absorption, justification and staleness semantics. *)

(** Marker-and-tag pragma scanner, generic in the tag type. *)
module Generic : sig
  type 'tag entry = {
    g_first : int;  (** line the pragma comment starts on *)
    g_last : int;  (** line after the comment closes — the annotated code *)
    g_tag : 'tag;
    g_reason : string;
    mutable g_used : bool;
  }

  type 'tag t = { g_file : string; g_entries : 'tag entry list }

  (** [scan ~marker ~tag_char ~parse_tag ~file source] extracts every
      pragma whose comment contains [marker].  The tag is the maximal
      run of [tag_char] characters after the marker; [parse_tag]
      validates it ([Error message] becomes an error finding), and a
      missing justification is an error finding too. *)
  val scan :
    marker:string ->
    tag_char:(char -> bool) ->
    parse_tag:(string -> ('tag, string) result) ->
    file:string ->
    string ->
    'tag t * Finding.t list

  (** First entry whose [(tag, first_line, last_line)] satisfies the
      predicate; marks it used. *)
  val find : 'tag t -> ('tag -> int -> int -> bool) -> 'tag entry option

  (** Warning findings for entries {!find} never consumed, rendered by
      [describe tag first last reason]. *)
  val unused :
    'tag t -> describe:('tag -> int -> int -> string -> string) -> Finding.t list
end

(** Grammar of one assume-pragma keyword: how the whitespace-separated
    words after ["<keyword>: assume"] parse into a tag, and which
    variable/field name the tag targets (for matching and for the
    unused-pragma warning). *)
module type ASSUME_GRAMMAR = sig
  type tag

  val keyword : string

  (** Parse the tag words (already split, empties dropped); the error
      string becomes an error finding at the pragma's line. *)
  val parse_words : string list -> (tag, string) result

  val subject_of : tag -> string
end

(** The assume-pragma family [(* <keyword>: assume <words> — <reason> *)]:
    one functor application per analysis pass (activity, guard,
    discover) replaces a hand-rolled scanner.  Tag characters are
    lowercase alphanumerics, [_], ['], and space — dashes would swallow
    the [--] reason separator, which is why tag words use short forms
    ([inactive], [smooth], [recomputable], …). *)
module Assume (G : ASSUME_GRAMMAR) : sig
  type t = G.tag Generic.t

  val scan : file:string -> string -> t * Finding.t list

  (** Entry whose range covers [line] for [subject], if any; marks it
      used and returns the tag with its justification. *)
  val assume : t -> subject:string -> line:int -> (G.tag * string) option

  (** Like {!assume} but anchored file-wide — for passes whose subjects
      (e.g. state fields) have no declaration line to anchor to. *)
  val assume_anywhere : t -> subject:string -> (G.tag * string) option

  (** Warning findings for entries never consumed. *)
  val unused : t -> Finding.t list
end

type t = Finding.rule Generic.t

(** [scan ~file source] extracts the pragma table and any malformed
    pragmas (unknown rule, missing justification) as findings. *)
val scan : file:string -> string -> t * Finding.t list

(** [allows t rule ~line] is true when some pragma's range covers
    [line] for [rule]; marks that pragma as used. *)
val allows : t -> Finding.rule -> line:int -> bool

(** Warning findings for pragmas {!allows} never consumed. *)
val unused : t -> Finding.t list
