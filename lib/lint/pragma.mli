(** Per-file [(* lint: allow <rule> — <reason> *)] pragmas.

    A pragma suppresses findings of the named rule on any line the
    comment itself spans {e and} the line directly below its closing
    delimiter, so trailing-comment, own-line, and multi-line
    justification placements all work:

    {[
      let x = probe () = 0.0 (* lint: allow float-equality — sentinel *)

      (* lint: allow swallowed-exception — probe: failure means "absent" *)
      let ok = try check (); true with _ -> false
    ]}

    The justification after the separator ([—], [--] or [:]) is
    mandatory: a pragma without one is itself an error finding, and a
    pragma that suppressed nothing is a warning ([Pragma] rule), so
    stale annotations cannot accumulate. *)

type t

(** [scan ~file source] extracts the pragma table and any malformed
    pragmas (unknown rule, missing justification) as findings. *)
val scan : file:string -> string -> t * Finding.t list

(** [allows t rule ~line] is true when some pragma's range covers
    [line] for [rule]; marks that pragma as used. *)
val allows : t -> Finding.rule -> line:int -> bool

(** Warning findings for pragmas {!allows} never consumed. *)
val unused : t -> Finding.t list
