open Parsetree

(* Longident path as a string list; Lapply (functor application inside
   a path) never names a flagged primitive, so it maps to []. *)
let rec flatten (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten l @ [ s ]
  | Lapply _ -> []

let last_two path =
  match List.rev path with
  | last :: pen :: _ -> (pen, last)
  | [ last ] -> ("", last)
  | [] -> ("", "")

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

(* ------------------------------------------------------------------ *)
(* Rule 1: domain-safety — top-level mutable state                     *)
(* ------------------------------------------------------------------ *)

(* Allocators whose result is mutable storage: creating one at
   module-init position yields state shared by every domain that touches
   the module. *)
let alloc_message pen last =
  match (pen, last) with
  | _, "ref" -> Some "allocates a ref"
  | "Hashtbl", "create" -> Some "allocates a Hashtbl.t"
  | "Buffer", "create" -> Some "allocates a Buffer.t"
  | "Queue", "create" -> Some "allocates a Queue.t"
  | "Stack", "create" -> Some "allocates a Stack.t"
  | "Atomic", "make" -> Some "allocates an Atomic.t"
  | "Array", ("make" | "create_float" | "init" | "make_matrix" | "copy") ->
      Some (Printf.sprintf "allocates an array via Array.%s" last)
  | "Bytes", ("create" | "make" | "copy" | "of_string") ->
      Some (Printf.sprintf "allocates mutable bytes via Bytes.%s" last)
  | ("Array1" | "Array2" | "Array3" | "Genarray"), ("create" | "init") ->
      Some (Printf.sprintf "allocates a Bigarray via %s.%s" pen last)
  | _ -> None

(* Mutable record labels declared in this compilation unit: a top-level
   record literal mentioning one is top-level mutable state even though
   the allocation has no function call to pattern-match on. *)
let mutable_labels structure =
  let labels = Hashtbl.create 16 in
  let type_declaration _self (td : type_declaration) =
    match td.ptype_kind with
    | Ptype_record fields ->
        List.iter
          (fun (ld : label_declaration) ->
            if ld.pld_mutable = Asttypes.Mutable then
              Hashtbl.replace labels ld.pld_name.Location.txt ())
          fields
    | _ -> ()
  in
  let iter = { Ast_iterator.default_iterator with type_declaration } in
  iter.structure iter structure;
  labels

(* Walk an expression evaluated at module-init time, not descending into
   function bodies (whose allocations are per-call, not module state) or
   lazy thunks. *)
let scan_init ~on ~labels expr =
  let check e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _ :: _) -> (
        let pen, last = last_two (flatten txt) in
        match alloc_message pen last with
        | Some what ->
            on (line_of e.pexp_loc)
              (Printf.sprintf
                 "%s at module-init position: top-level mutable state is \
                  shared by every domain (DESIGN.md \xc2\xa79)"
                 what)
        | None -> ())
    | Pexp_record (fields, _) ->
        let mut =
          List.filter_map
            (fun (({ Location.txt; _ } : Longident.t Location.loc), _) ->
              match List.rev (flatten txt) with
              | name :: _ when Hashtbl.mem labels name -> Some name
              | _ -> None)
            fields
        in
        if mut <> [] then
          on (line_of e.pexp_loc)
            (Printf.sprintf
               "builds a record with mutable field%s %s at module-init \
                position"
               (if List.length mut > 1 then "s" else "")
               (String.concat ", " mut))
    | Pexp_array (_ :: _) ->
        on (line_of e.pexp_loc)
          "array literal at module-init position: arrays are mutable, \
           top-level ones are shared by every domain"
    | _ -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ | Pexp_newtype _ -> ()
          | _ ->
              check e;
              Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter expr

(* Module-init positions: top-level bindings and evals, recursively
   through submodules.  Functor bodies are included deliberately — a
   module-level functor application would freeze any state they allocate
   into a shared top-level module. *)
let rec scan_structure ~on ~labels items =
  List.iter (scan_structure_item ~on ~labels) items

and scan_structure_item ~on ~labels item =
  match item.pstr_desc with
  | Pstr_value (_, bindings) ->
      List.iter (fun vb -> scan_init ~on ~labels vb.pvb_expr) bindings
  | Pstr_eval (e, _) -> scan_init ~on ~labels e
  | Pstr_module mb -> scan_module_expr ~on ~labels mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.iter (fun mb -> scan_module_expr ~on ~labels mb.pmb_expr) mbs
  | Pstr_include incl -> scan_module_expr ~on ~labels incl.pincl_mod
  | _ -> ()

and scan_module_expr ~on ~labels me =
  match me.pmod_desc with
  | Pmod_structure items -> scan_structure ~on ~labels items
  | Pmod_functor (_, body) -> scan_module_expr ~on ~labels body
  | Pmod_constraint (inner, _) -> scan_module_expr ~on ~labels inner
  | Pmod_apply (f, arg) ->
      scan_module_expr ~on ~labels f;
      scan_module_expr ~on ~labels arg
  | Pmod_apply_unit f -> scan_module_expr ~on ~labels f
  | Pmod_ident _ | Pmod_unpack _ | Pmod_extension _ -> ()

(* ------------------------------------------------------------------ *)
(* Rule: domain-spawn-outside-pool — raw Domain use                    *)
(* ------------------------------------------------------------------ *)

(* Any [Domain.spawn]/[Domain.join] mention outside the pool runtime.
   Raw domains bypass everything the pool guarantees — input-order
   first-exception re-raise, nested-map sequential degradation, the
   armed write-set sanitizer, and the race certifier's site discovery
   (racecheck only classifies [Pool.map]/[Pool.init] fan-outs, so a
   bare spawn is parallelism the certificates say nothing about).
   Purely syntactic on the qualified path; [Domain.self],
   [Domain.cpu_relax] etc. are benign and do not fire. *)
let domain_spawn_names = [ "spawn"; "join" ]

let scan_domain_spawn ~on structure =
  let check e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match List.rev (flatten txt) with
        | last :: "Domain" :: _ when List.mem last domain_spawn_names ->
            on (line_of e.pexp_loc)
              (Printf.sprintf
                 "raw Domain.%s outside lib/par: use Scvad_par.Pool, which \
                  owns exception re-raise order, nested-map degradation, the \
                  write-set sanitizer, and race certification \
                  (DESIGN.md \xc2\xa717)"
                 last)
        | _ -> ())
    | _ -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter structure

(* ------------------------------------------------------------------ *)
(* Rules 2-4: one expression-level pass                                *)
(* ------------------------------------------------------------------ *)

let unsafe_names = [ "unsafe_get"; "unsafe_set"; "unsafe_fill"; "unsafe_blit" ]

(* Operand is float "by syntax": a float literal (possibly negated) or a
   (_ : float) type annotation.  Purely syntactic — the pass runs on the
   Parsetree, before any typing. *)
let rec is_floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) -> (
      match List.rev (flatten txt) with
      | "float" :: _ -> true
      | _ -> false)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("~-." | "~+." | "-." | "+."); _ }; _ },
        [ (_, x) ] ) ->
      is_floatish x
  | _ -> false

(* How a [try … with] case matches every exception: [_], an
   explicitly-ignored [_e]-style binding, or a named binding (possibly
   under aliases, or-patterns or a constraint). *)
type catch_all = Not_catch_all | Ignored | Named of string

let rec catch_all_of p =
  match p.ppat_desc with
  | Ppat_any -> Ignored
  | Ppat_var { txt; _ } ->
      if String.length txt > 0 && txt.[0] = '_' then Ignored else Named txt
  | Ppat_alias (inner, { txt; _ }) -> (
      match catch_all_of inner with
      | Not_catch_all -> Not_catch_all
      | _ -> Named txt)
  | Ppat_constraint (inner, _) -> catch_all_of inner
  | Ppat_or (a, b) -> (
      match (catch_all_of a, catch_all_of b) with
      | Not_catch_all, other | other, Not_catch_all -> other
      | other, _ -> other)
  | _ -> Not_catch_all

(* Does the handler body mention a re-raise, or the bound exception
   itself?  Either way the failure is not silently eaten — it is
   wrapped, logged-and-raised, or stored for later re-raising (the
   pool's capture path). *)
let mentions ~exn_var body =
  let found = ref false in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match List.rev (flatten txt) with
              | ("raise" | "raise_notrace" | "raise_with_backtrace" | "reraise")
                :: _ ->
                  found := true
              | name :: _ when Some name = exn_var -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  !found

(* The Config-based entry points that replace each deprecated wrapper
   (lib/core/analyzer.mli).  The wrappers carry [@@ocaml.deprecated],
   but that alert only fires on typechecked builds of dependent code —
   this syntactic rule catches references anywhere in the tree,
   including code the build graph never links. *)
let deprecated_entrypoints =
  [
    ("analyze", "run");
    ("analyze_suite", "run_suite");
    ("analyze_boundaries", "run_boundaries");
  ]

(* ------------------------------------------------------------------ *)
(* Rule 5: bigarray-generic-access — kind-polymorphic hot loops        *)
(* ------------------------------------------------------------------ *)

(* Bigarray access through a parameter whose (kind, layout) the
   compiler cannot see monomorphically compiles to the generic boxing
   path — measured ~6x slower on the tape's push loop when the slab
   helpers briefly lost their annotations.  The fix is a concrete
   constraint such as
   [(float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t].

   Syntactic approximation: a function parameter indexed via
   [Array1.get]/[set]/[unsafe_get]/[unsafe_set] (the [.{...}] sugar
   desugars to exactly these) inside a [for]/[while] loop must not be
   bare, and must not carry an [Array1.t] annotation with type
   variables or holes in it.  A parameter annotated with some other
   named type (an alias like tape.ml's [f64]) is trusted — the alias
   definition is where the kind is pinned down. *)

let array1_index_names = [ "get"; "set"; "unsafe_get"; "unsafe_set" ]

let rec has_tyvar ty =
  match ty.ptyp_desc with
  | Ptyp_var _ | Ptyp_any -> true
  | Ptyp_constr (_, args) -> List.exists has_tyvar args
  | Ptyp_tuple tys -> List.exists has_tyvar tys
  | Ptyp_alias (inner, _) -> has_tyvar inner
  | _ -> false

(* A parameter pattern's binding name and outermost type constraint. *)
let rec param_of p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some (txt, None)
  | Ppat_constraint (inner, ty) -> (
      match param_of inner with
      | Some (name, None) -> Some (name, Some ty)
      | other -> other)
  | Ppat_alias (inner, { txt; _ }) -> (
      match param_of inner with
      | Some (_, annot) -> Some (txt, annot)
      | None -> Some (txt, None))
  | _ -> None

type bigarray_annot = No_annotation | Polymorphic_array1 | Trusted

let classify_annot = function
  | None -> No_annotation
  | Some ty -> (
      match ty.ptyp_desc with
      | Ptyp_constr ({ txt; _ }, args) -> (
          match List.rev (flatten txt) with
          | "t" :: "Array1" :: _ ->
              if args = [] || List.exists has_tyvar args then
                Polymorphic_array1
              else Trusted
          | _ -> Trusted)
      | _ -> Trusted)

(* Names indexed via Array1 inside a for/while loop of [body], with the
   line of the first such access.  Does not descend into nested [fun]s:
   an inner function's parameters are that function's own concern (and
   may shadow an outer name). *)
let loop_indexed body =
  let hits = Hashtbl.create 4 in
  let note name line =
    if not (Hashtbl.mem hits name) then Hashtbl.replace hits name line
  in
  let depth = ref 0 in
  let expr self e =
    (if !depth > 0 then
       match e.pexp_desc with
       | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
           match last_two (flatten txt) with
           | "Array1", access when List.mem access array1_index_names -> (
               match
                 List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args
               with
               | Some
                   (_, { pexp_desc = Pexp_ident { txt = Lident n; _ }; pexp_loc; _ })
                 ->
                   note n (line_of pexp_loc)
               | _ -> ())
           | _ -> ())
       | _ -> ());
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> ()
    | Pexp_for _ | Pexp_while _ ->
        incr depth;
        Ast_iterator.default_iterator.expr self e;
        decr depth
    | _ -> Ast_iterator.default_iterator.expr self e
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.expr iter body;
  hits

let scan_functions ~on structure =
  let rec chain params e =
    match e.pexp_desc with
    | Pexp_fun (_, _, pat, body) -> chain (pat :: params) body
    | Pexp_newtype (_, body) -> chain params body
    | _ -> (List.rev params, e)
  in
  let expr self e =
    match e.pexp_desc with
    | Pexp_fun _ ->
        let params, body = chain [] e in
        let hits = loop_indexed body in
        List.iter
          (fun pat ->
            match param_of pat with
            | Some (name, annot) -> (
                match Hashtbl.find_opt hits name with
                | Some line -> (
                    match classify_annot annot with
                    | No_annotation ->
                        on line
                          (Printf.sprintf
                             "parameter %s is indexed as a Bigarray inside a \
                              loop but carries no type annotation; the access \
                              compiles to the generic boxing path (~6x \
                              slower) \xe2\x80\x94 constrain it, e.g. \
                              (float, Bigarray.float64_elt, \
                              Bigarray.c_layout) Bigarray.Array1.t"
                             name)
                    | Polymorphic_array1 ->
                        on line
                          (Printf.sprintf
                             "parameter %s is indexed inside a loop under a \
                              kind/layout-polymorphic Array1.t annotation; \
                              the access compiles to the generic boxing path \
                              (~6x slower) \xe2\x80\x94 pin the kind and \
                              layout"
                             name)
                    | Trusted -> ())
                | None -> ())
            | None -> ())
          params;
        self.Ast_iterator.expr self body
    | _ -> Ast_iterator.default_iterator.expr self e
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.structure iter structure

(* ------------------------------------------------------------------ *)

let scan_expressions ~on_unsafe ~on_float_eq ~on_swallow ~on_deprecated
    structure =
  let check e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match List.rev (flatten txt) with
        | last :: _ when List.mem last unsafe_names ->
            on_unsafe (line_of e.pexp_loc)
              (Printf.sprintf
                 "%s bypasses bounds checking; only the allowlisted hot paths \
                  may use it"
                 last)
        | last :: "Analyzer" :: _
          when List.mem_assoc last deprecated_entrypoints ->
            on_deprecated (line_of e.pexp_loc)
              (Printf.sprintf
                 "Analyzer.%s is a deprecated optional-argument wrapper; use \
                  Analyzer.%s with an Analyzer.Config instead"
                 last
                 (List.assoc last deprecated_entrypoints))
        | _ -> ())
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        let path = flatten txt in
        let _, last = last_two path in
        let sanctioned_compare =
          (* Float.compare etc. is the deliberate, typed spelling. *)
          match path with
          | [ m; "compare" ] -> m <> "Stdlib"
          | _ -> false
        in
        match last with
        | ("=" | "<>" | "compare") when not sanctioned_compare ->
            let operands =
              List.filter_map
                (fun (lbl, a) ->
                  match lbl with Asttypes.Nolabel -> Some a | _ -> None)
                args
            in
            if List.exists is_floatish operands then
              on_float_eq (line_of e.pexp_loc)
                (Printf.sprintf
                   "structural %s on float operands (bitwise equality; NaN \
                    breaks it) \xe2\x80\x94 compare against a tolerance or \
                    use Float.compare deliberately"
                   (if last = "compare" then "compare" else last))
        | _ -> ())
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            let swallows =
              c.pc_guard = None
              &&
              match catch_all_of c.pc_lhs with
              | Not_catch_all -> false
              | Ignored -> not (mentions ~exn_var:None c.pc_rhs)
              | Named v -> not (mentions ~exn_var:(Some v) c.pc_rhs)
            in
            if swallows then
              on_swallow (line_of c.pc_lhs.ppat_loc)
                "catch-all exception handler would swallow Pool's re-raised \
                 worker failures and Store.Write_failed; match specific \
                 exceptions, use the exception, or re-raise")
          cases
    | _ -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter structure

(* ------------------------------------------------------------------ *)

let check ~domain_scope ~pool_scope ~file structure =
  let findings = ref [] in
  let add rule line message =
    findings :=
      { Finding.rule; file; line; message; severity = Finding.Error }
      :: !findings
  in
  if domain_scope then begin
    let labels = mutable_labels structure in
    scan_structure
      ~on:(fun line msg -> add Finding.Domain_safety line msg)
      ~labels structure
  end;
  if not pool_scope then
    scan_domain_spawn
      ~on:(fun line msg -> add Finding.Domain_spawn_outside_pool line msg)
      structure;
  scan_expressions
    ~on_unsafe:(fun line msg -> add Finding.Unsafe_access line msg)
    ~on_float_eq:(fun line msg -> add Finding.Float_equality line msg)
    ~on_swallow:(fun line msg -> add Finding.Swallowed_exception line msg)
    ~on_deprecated:(fun line msg ->
      add Finding.Deprecated_entrypoint line msg)
    structure;
  scan_functions
    ~on:(fun line msg -> add Finding.Bigarray_generic_access line msg)
    structure;
  List.rev !findings
