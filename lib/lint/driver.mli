(** The lint driver: walk sources, parse with compiler-libs, run the
    rules, apply the allowlists and pragmas, render the report.

    The repo policy lives in {!default_config}:

    - the {b domain-safety} rule applies to the libraries reachable from
      [Pool.map] workloads ([lib/npb], [lib/solvers], [lib/nprand],
      [lib/ad], [lib/ndarray], [lib/core]) — the mechanized form of the
      DESIGN.md §9 "no top-level mutable state" claim;
    - {b domain-spawn-outside-pool} applies everywhere except the pool
      runtime itself ([lib/par]): raw [Domain.spawn]/[Domain.join]
      bypasses the pool's ordering, sanitization and race-certification
      guarantees (DESIGN.md §17);
    - {b unsafe-access} is an error everywhere except the allowlisted
      hot paths, and every allowlist entry carries a justification that
      is printed in the report;
    - {b float-equality} is sanctioned only in [lib/core/criticality.ml]
      (the paper's exact [derivative = 0.0] criterion is the spec
      there); everything else needs a pragma. *)

type config = {
  domain_dirs : string list;
      (** path prefixes where the domain-safety rule applies *)
  pool_dirs : string list;
      (** path prefixes exempt from domain-spawn-outside-pool (the pool
          runtime that legitimately spawns domains) *)
  unsafe_allow : (string * string) list;  (** file, justification *)
  float_allow : (string * string) list;  (** file, justification *)
}

val default_config : config

(** One allowlist entry as reported: how often it was exercised on this
    run ([a_uses = 0] means the entry is currently dormant). *)
type allow_note = {
  a_rule : Finding.rule;
  a_file : string;
  a_justification : string;
  a_uses : int;
}

type result = {
  findings : Finding.t list;  (** sorted by (file, line, rule, message) *)
  suppressed : int;  (** findings silenced by a justified pragma *)
  allow_notes : allow_note list;
}

(** [lint_paths paths] lints every [.ml] file among [paths]
    (directories are walked recursively; [_*] and dot entries are
    skipped).  Deterministic: files and findings are sorted. *)
val lint_paths : ?config:config -> string list -> result

(** True when the run must fail ([exit 1]): any [Error]-severity
    finding. *)
val has_errors : result -> bool

val render_text : result -> string
val render_json : result -> string

(** Parse the [findings] array out of {!render_json} output — the
    fixture suite asserts this round-trips.  Raises [Failure] on
    malformed input. *)
val findings_of_json : string -> Finding.t list
