(** Typed lint findings.

    Every diagnostic the analysis emits is one {!t}: which rule fired,
    where, why, and how severe.  Findings are value types with a total
    order, so reports are deterministic: the driver sorts by
    (file, line, rule, message) before printing. *)

(** The seven analysis rules (DESIGN.md §10), plus the two
    meta-diagnostics the driver itself can emit. *)
type rule =
  | Domain_safety  (** top-level mutable state in a [Pool.map]-reachable library *)
  | Domain_spawn_outside_pool
      (** raw [Domain.spawn]/[Domain.join] outside the pool runtime *)
  | Unsafe_access  (** [unsafe_get]/[unsafe_set] outside the allowlist *)
  | Float_equality  (** structural [=]/[<>]/[compare] on float operands *)
  | Swallowed_exception  (** [try … with _ ->] catch-alls *)
  | Deprecated_entrypoint
      (** call to a deprecated [Analyzer.analyze*] wrapper *)
  | Bigarray_generic_access
      (** Bigarray parameter indexed in a loop without a concrete
          (kind, layout) [Array1.t] annotation *)
  | Pragma  (** malformed or unused [(* lint: allow … *)] pragma *)
  | Syntax  (** the file did not parse *)

type severity = Error | Warning

type t = {
  rule : rule;
  file : string;
  line : int;
  message : string;
  severity : severity;
}

val rule_name : rule -> string

(** Inverse of {!rule_name}; [None] on unknown names. *)
val rule_of_name : string -> rule option

val severity_name : severity -> string
val severity_of_name : string -> severity option

(** Total order: (file, line, rule name, message, severity). *)
val compare : t -> t -> int

(** ["file:line: [severity] rule: message"]. *)
val to_text : t -> string
