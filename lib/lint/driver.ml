(* The shared minimal JSON module (lib/util): one printer/parser for
   every report writer in the tree. *)
module Ljson = Scvad_util.Ljson

type config = {
  domain_dirs : string list;
  pool_dirs : string list;
  unsafe_allow : (string * string) list;
  float_allow : (string * string) list;
}

let default_config =
  {
    domain_dirs =
      [
        "lib/npb"; "lib/solvers"; "lib/nprand"; "lib/ad"; "lib/ndarray";
        "lib/core";
      ];
    pool_dirs = [ "lib/par" ];
    unsafe_allow =
      [
        ( "lib/ad/tape.ml",
          "hot push/backward loops; one up-front bounds check per slab \
           covers every access (DESIGN.md \xc2\xa79)" );
        ( "lib/ad/dep_tape.ml",
          "bitset get/set inside loops bounded by the dependence-tape length"
        );
        ( "lib/checkpoint/crc32.ml",
          "byte-wise CRC inner loop bounded by Bytes.length" );
      ];
    float_allow =
      [
        ( "lib/core/criticality.ml",
          "the paper's exact derivative = 0.0 criticality criterion \
           (\xc2\xa7III-A): bitwise float equality is the spec here" );
      ];
  }

type allow_note = {
  a_rule : Finding.rule;
  a_file : string;
  a_justification : string;
  a_uses : int;
}

type result = {
  findings : Finding.t list;
  suppressed : int;
  allow_notes : allow_note list;
}

(* ------------------------------------------------------------------ *)
(* Source discovery                                                    *)
(* ------------------------------------------------------------------ *)

let normalize path =
  if String.length path >= 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let rec walk acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name.[0] = '_' then acc
           else walk acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then normalize path :: acc
  else acc

let source_files paths =
  List.sort_uniq String.compare (List.fold_left walk [] paths)

let has_prefix ~prefix path =
  let np = String.length prefix and n = String.length path in
  np <= n && String.sub path 0 np = prefix

let in_dirs dirs path = List.exists (fun d -> has_prefix ~prefix:d path) dirs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Per-file pipeline: parse -> rules -> allowlists -> pragmas          *)
(* ------------------------------------------------------------------ *)

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error _ ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum;
          message = "syntax error: the file does not parse";
          severity = Finding.Error;
        }
  | exception Lexer.Error (_, loc) ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = loc.Location.loc_start.Lexing.pos_lnum;
          message = "lexing error: the file does not parse";
          severity = Finding.Error;
        }

let lint_file config counts file =
  let source = read_file file in
  let pragmas, pragma_errors = Pragma.scan ~file source in
  match parse ~file source with
  | Error f -> (pragma_errors @ [ f ], 0)
  | Ok ast ->
      let raw =
        Rules.check
          ~domain_scope:(in_dirs config.domain_dirs file)
          ~pool_scope:(in_dirs config.pool_dirs file)
          ~file ast
      in
      let allowlisted (f : Finding.t) =
        let table =
          match f.Finding.rule with
          | Finding.Unsafe_access -> config.unsafe_allow
          | Finding.Float_equality -> config.float_allow
          | _ -> []
        in
        match List.assoc_opt f.Finding.file table with
        | Some _ ->
            let key = (f.Finding.rule, f.Finding.file) in
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key));
            true
        | None -> false
      in
      let suppressed = ref 0 in
      let kept =
        List.filter
          (fun (f : Finding.t) ->
            if allowlisted f then false
            else if Pragma.allows pragmas f.Finding.rule ~line:f.Finding.line
            then begin
              incr suppressed;
              false
            end
            else true)
          raw
      in
      (pragma_errors @ kept @ Pragma.unused pragmas, !suppressed)

let lint_paths ?(config = default_config) paths =
  let files = source_files paths in
  let counts = Hashtbl.create 16 in
  let findings, suppressed =
    List.fold_left
      (fun (fs, n) file ->
        let file_findings, file_suppressed = lint_file config counts file in
        (file_findings @ fs, n + file_suppressed))
      ([], 0) files
  in
  let note rule (file, justification) =
    {
      a_rule = rule;
      a_file = file;
      a_justification = justification;
      a_uses =
        Option.value ~default:0 (Hashtbl.find_opt counts (rule, file));
    }
  in
  {
    findings = List.sort Finding.compare findings;
    suppressed;
    allow_notes =
      List.map (note Finding.Unsafe_access) config.unsafe_allow
      @ List.map (note Finding.Float_equality) config.float_allow;
  }

let has_errors r =
  List.exists (fun f -> f.Finding.severity = Finding.Error) r.findings

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_text r =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_text f);
      Buffer.add_char b '\n')
    r.findings;
  if r.allow_notes <> [] then begin
    Buffer.add_string b "Allowlist (every entry must justify itself):\n";
    List.iter
      (fun n ->
        Buffer.add_string b
          (Printf.sprintf "  %s %s (%d use%s) \xe2\x80\x94 %s\n"
             (Finding.rule_name n.a_rule) n.a_file n.a_uses
             (if n.a_uses = 1 then "" else "s")
             n.a_justification))
      r.allow_notes
  end;
  let errors, warnings =
    List.partition (fun f -> f.Finding.severity = Finding.Error) r.findings
  in
  Buffer.add_string b
    (Printf.sprintf
       "%d finding%s (%d error%s, %d warning%s), %d suppressed by pragmas.\n"
       (List.length r.findings)
       (if List.length r.findings = 1 then "" else "s")
       (List.length errors)
       (if List.length errors = 1 then "" else "s")
       (List.length warnings)
       (if List.length warnings = 1 then "" else "s")
       r.suppressed);
  Buffer.contents b

let json_of_finding (f : Finding.t) =
  Ljson.Obj
    [
      ("rule", Ljson.Str (Finding.rule_name f.Finding.rule));
      ("file", Ljson.Str f.Finding.file);
      ("line", Ljson.Int f.Finding.line);
      ("severity", Ljson.Str (Finding.severity_name f.Finding.severity));
      ("message", Ljson.Str f.Finding.message);
    ]

let render_json r =
  Ljson.to_string
    (Ljson.Obj
       [
         ("findings", Ljson.Arr (List.map json_of_finding r.findings));
         ("suppressed", Ljson.Int r.suppressed);
         ( "allowlist",
           Ljson.Arr
             (List.map
                (fun n ->
                  Ljson.Obj
                    [
                      ("rule", Ljson.Str (Finding.rule_name n.a_rule));
                      ("file", Ljson.Str n.a_file);
                      ("justification", Ljson.Str n.a_justification);
                      ("uses", Ljson.Int n.a_uses);
                    ])
                r.allow_notes) );
       ])
  ^ "\n"

let finding_of_json j =
  let str key =
    match Ljson.member key j with
    | Some (Ljson.Str s) -> s
    | _ -> failwith (Printf.sprintf "finding_of_json: missing string %S" key)
  in
  let int key =
    match Ljson.member key j with
    | Some (Ljson.Int n) -> n
    | _ -> failwith (Printf.sprintf "finding_of_json: missing int %S" key)
  in
  let rule =
    match Finding.rule_of_name (str "rule") with
    | Some r -> r
    | None -> failwith "finding_of_json: unknown rule"
  in
  let severity =
    match Finding.severity_of_name (str "severity") with
    | Some s -> s
    | None -> failwith "finding_of_json: unknown severity"
  in
  {
    Finding.rule;
    file = str "file";
    line = int "line";
    message = str "message";
    severity;
  }

let findings_of_json s =
  match Ljson.member "findings" (Ljson.of_string s) with
  | Some (Ljson.Arr items) -> List.map finding_of_json items
  | _ -> failwith "findings_of_json: no findings array"
