(* Re-export of the shared JSON module (lib/util), kept under the lint
   namespace so existing consumers and the fixture round-trip suite are
   untouched: the serialization is byte-identical by construction. *)

include Scvad_util.Ljson
