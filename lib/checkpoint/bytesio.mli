(** Little-endian binary encoding helpers for the checkpoint format.

    [Wr] appends fixed-width little-endian values to a [Buffer.t];
    [Rd] consumes them from an immutable string with an explicit
    cursor, raising {!Rd.Underrun} past the end.  Integers are encoded
    as their 64-bit two's-complement image; floats as IEEE-754 bits. *)

module Wr : sig
  type t = Buffer.t

  val create : unit -> t

  (** Lowest 8 bits of the argument. *)
  val u8 : t -> int -> unit

  (** 4 bytes; raises [Invalid_argument] on a negative argument. *)
  val u32 : t -> int -> unit

  (** 8 bytes. *)
  val i64 : t -> int64 -> unit

  val int_as_i64 : t -> int -> unit

  (** IEEE-754 bits of the double, 8 bytes. *)
  val f64 : t -> float -> unit

  (** [u32] length prefix followed by the raw bytes. *)
  val str : t -> string -> unit

  val contents : t -> string
end

module Rd : sig
  type t

  (** Raised when a read runs past the end of the data. *)
  exception Underrun

  val of_string : string -> t

  (** Bytes left before the cursor hits the end. *)
  val remaining : t -> int

  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int_from_i64 : t -> int
  val f64 : t -> float

  (** [raw r len]: [len] raw bytes without a length prefix. *)
  val raw : t -> int -> string

  (** [u32] length prefix followed by that many raw bytes. *)
  val str : t -> string
end
