(* Resilient versioned checkpoint directory.

   One file per checkpointed iteration.  Three defenses stand between a
   run and a bad restart:

   - verified atomic writes: the encoded file lands in a temp file, is
     read back and CRC-checked, and only then renamed over the final
     name — a torn or bit-flipped write is caught while the previous
     checkpoint is still intact (bounded rewrite attempts);
   - typed loads: [load] never raises on bad data; it returns a
     [load_error] naming the failure so callers can fall back;
   - multi-level retention: [retention] keeps the newest [keep_last]
     checkpoints plus any older iteration divisible by [keep_every] —
     the usual HPC ladder of dense recent + sparse ancient versions.

   All I/O goes through {!Io_fault} so every one of these paths is
   exercisable under deterministic fault injection. *)

type retention = { keep_last : int option; keep_every : int option }

let keep_all = { keep_last = None; keep_every = None }

type t = {
  dir : string;
  retention : retention;
  verify_writes : bool;
  faults : Io_fault.plan option;
}

exception Write_failed of { path : string; attempts : int; reason : string }

let () =
  Printexc.register_printer (function
    | Write_failed { path; attempts; reason } ->
        Some
          (Printf.sprintf "Store.Write_failed(%s after %d attempts: %s)" path
             attempts reason)
    | _ -> None)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(retention = keep_all) ?(verify_writes = true) ?faults dir =
  (match retention.keep_last with
  | Some k when k < 1 -> invalid_arg "Store.create: keep_last must be >= 1"
  | _ -> ());
  (match retention.keep_every with
  | Some m when m < 1 -> invalid_arg "Store.create: keep_every must be >= 1"
  | _ -> ());
  mkdir_p dir;
  { dir; retention; verify_writes; faults }

let dir t = t.dir
let retention t = t.retention
let basename iteration = Printf.sprintf "ckpt_%09d.scvd" iteration
let path_of_iteration t iteration = Filename.concat t.dir (basename iteration)

let iteration_of_basename name =
  let prefix = "ckpt_" and suffix = ".scvd" in
  let plen = String.length prefix and slen = String.length suffix in
  if
    String.length name > plen + slen
    && String.sub name 0 plen = prefix
    && Filename.check_suffix name suffix
  then int_of_string_opt (String.sub name plen (String.length name - plen - slen))
  else None

let list_iterations t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map iteration_of_basename
  |> List.sort compare

let remove_checkpoint t iteration =
  let path = path_of_iteration t iteration in
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".aux") then Sys.remove (path ^ ".aux")

(* Multi-level GC: the newest [keep_last] always survive; older ones
   survive only on the sparse [keep_every] grid. *)
let gc t =
  match t.retention.keep_last with
  | None -> ()
  | Some k ->
      let iters = list_iterations t in
      let total = List.length iters in
      List.iteri
        (fun i it ->
          let recent = i >= total - k in
          let on_grid =
            match t.retention.keep_every with
            | None -> false
            | Some m -> it mod m = 0
          in
          if not (recent || on_grid) then remove_checkpoint t it)
        iters

(* ------------------------------------------------------------------ *)
(* Load                                                                *)
(* ------------------------------------------------------------------ *)

type load_error = Missing | Io_error of string | Corrupt of string

let describe_error = function
  | Missing -> "missing checkpoint file"
  | Io_error m -> "I/O error: " ^ m
  | Corrupt m -> "corrupt checkpoint: " ^ m

let load t iteration =
  let path = path_of_iteration t iteration in
  if not (Sys.file_exists path) then Error Missing
  else
    match Io_fault.read_file ?faults:t.faults path with
    | Error m -> Error (Io_error m)
    | Ok data -> (
        match Ckpt_format.decode data with
        | file -> Ok file
        | exception Ckpt_format.Corrupt m -> Error (Corrupt m))

let load_exn t iteration =
  match load t iteration with
  | Ok file -> file
  | Error e -> raise (Ckpt_format.Corrupt (describe_error e))

(* ------------------------------------------------------------------ *)
(* Save                                                                *)
(* ------------------------------------------------------------------ *)

let max_write_attempts = 3

(* Verification reads the temp file back without fault injection: the
   question is what actually landed on the disk. *)
let landed_ok tmp data =
  match Io_fault.read_file tmp with
  | Error m -> Error m
  | Ok landed ->
      if String.length landed <> String.length data then
        Error
          (Printf.sprintf "short write: %d of %d bytes" (String.length landed)
             (String.length data))
      else (
        match Ckpt_format.decode landed with
        | _ -> Ok ()
        | exception Ckpt_format.Corrupt m -> Error m)

let save ?(sidecar_aux = false) t (file : Ckpt_format.file) =
  let path = path_of_iteration t file.iteration in
  let tmp = path ^ ".tmp" in
  let data = Ckpt_format.encode file in
  let rec attempt n =
    Io_fault.write_file ?faults:t.faults tmp data;
    if not t.verify_writes then ()
    else
      match landed_ok tmp data with
      | Ok () -> ()
      | Error reason ->
          if n >= max_write_attempts then begin
            Sys.remove tmp;
            raise (Write_failed { path; attempts = n; reason })
          end
          else attempt (n + 1)
  in
  attempt 1;
  Sys.rename tmp path;
  if sidecar_aux then begin
    let aux = Ckpt_format.aux_file_string file in
    if aux <> "" then begin
      let aux_path = path ^ ".aux" in
      let tmp_aux = aux_path ^ ".tmp" in
      Io_fault.write_file tmp_aux aux;
      Sys.rename tmp_aux aux_path
    end
  end;
  gc t;
  path

(* ------------------------------------------------------------------ *)
(* Latest / fallback walk                                              *)
(* ------------------------------------------------------------------ *)

let latest t =
  match List.rev (list_iterations t) with
  | [] -> None
  | it :: _ -> Some (load_exn t it)

(* Walk backward from the newest checkpoint, skipping invalid ones —
   the store half of graceful-degradation restart. *)
let latest_valid t =
  let rec go skipped = function
    | [] -> (None, List.rev skipped)
    | it :: older -> (
        match load t it with
        | Ok file -> (Some (it, file), List.rev skipped)
        | Error e -> go ((it, e) :: skipped) older)
  in
  go [] (List.rev (list_iterations t))

(* Bytes on disk of one checkpoint (incl. its sidecar, if present). *)
let disk_bytes t iteration =
  let path = path_of_iteration t iteration in
  let size p = if Sys.file_exists p then (Unix.stat p).Unix.st_size else 0 in
  size path + size (path ^ ".aux")

(* Remove every checkpoint (and sidecar) in the store. *)
let wipe t =
  Array.iter
    (fun name ->
      if String.length name >= 5 && String.sub name 0 5 = "ckpt_" then
        Sys.remove (Filename.concat t.dir name))
    (Sys.readdir t.dir)
