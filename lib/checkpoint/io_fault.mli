(** Deterministic fault injection on the checkpoint I/O path.

    A {!plan} carries a seeded PRNG stream; every write/read routed
    through it may suffer at most one injected fault: a torn write
    (prefix only lands), a truncation (tail lost), a single-bit flip, or
    a transient EINTR-style failure that the wrapper retries with
    bounded exponential backoff.  Same seed + same operation sequence ⇒
    the same faults, so degradation paths are replayable in tests. *)

type kind = Torn_write | Truncation | Bit_flip | Transient

val kind_name : kind -> string

(** One injected fault: which operation (1-based), on which path. *)
type event = { op : int; path : string; kind : kind; detail : string }

type plan

(** [plan ~seed ()] builds an injection plan.  Rates are per-operation
    probabilities in [0,1]; their sum is the total fault probability
    (at most one fault per operation).  Transient faults fail
    1..[max_transient_failures] attempts (default 2) before succeeding,
    staying below the internal retry bound of {!max_retries}.
    Raises [Invalid_argument] on rates outside [0,1]. *)
val plan :
  ?torn_write_rate:float ->
  ?truncation_rate:float ->
  ?bit_flip_rate:float ->
  ?transient_rate:float ->
  ?max_transient_failures:int ->
  seed:int ->
  unit ->
  plan

(** Injected faults so far, oldest first. *)
val events : plan -> event list

(** Attempts (including the first) before a transient failure is
    declared permanent. *)
val max_retries : int

(** [write_file ?faults path data] writes [data] to [path], routing
    through the fault plan when given: the landed bytes may be torn,
    truncated, or bit-flipped, and transient failures are retried with
    bounded backoff. *)
val write_file : ?faults:plan -> string -> string -> unit

(** [read_file ?faults path] reads the whole file; transient injected
    failures are retried with bounded backoff.  [Error] carries the
    OS or retry-exhaustion message. *)
val read_file : ?faults:plan -> string -> (string, string) result
