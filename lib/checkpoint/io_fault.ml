(* Deterministic fault injection on the checkpoint I/O path.

   Fault tolerance that is never exercised is a theory; this module makes
   the checkpoint store's degradation paths testable.  A [plan] carries a
   seeded splitmix64 stream, and every write/read routed through it may
   suffer exactly one injected fault drawn from that stream:

   - torn write: only a prefix of the data reaches the disk (a crash in
     the middle of [write]);
   - truncation: the tail of the data is lost (a crash between [write]
     and [fsync], or a filesystem that lies about durability);
   - bit flip: one random bit of the landed data is inverted (silent
     media corruption);
   - transient: the operation fails 1..[max_transient_failures] times
     with an EINTR-style error before succeeding — the wrapper retries
     with bounded exponential backoff, so a well-behaved caller never
     observes these at all.

   The stream is advanced once per operation, so the same seed and the
   same operation sequence replay the same faults bit for bit — the
   property the resilience tests pin down. *)

type kind = Torn_write | Truncation | Bit_flip | Transient

let kind_name = function
  | Torn_write -> "torn-write"
  | Truncation -> "truncation"
  | Bit_flip -> "bit-flip"
  | Transient -> "transient"

type event = { op : int; path : string; kind : kind; detail : string }

type plan = {
  torn_write_rate : float;
  truncation_rate : float;
  bit_flip_rate : float;
  transient_rate : float;
  max_transient_failures : int;
  mutable state : int64; (* splitmix64 *)
  mutable op : int;
  mutable events : event list; (* newest first *)
}

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Io_fault.plan: %s not in [0,1]" name)

let plan ?(torn_write_rate = 0.) ?(truncation_rate = 0.) ?(bit_flip_rate = 0.)
    ?(transient_rate = 0.) ?(max_transient_failures = 2) ~seed () =
  check_rate "torn_write_rate" torn_write_rate;
  check_rate "truncation_rate" truncation_rate;
  check_rate "bit_flip_rate" bit_flip_rate;
  check_rate "transient_rate" transient_rate;
  if max_transient_failures < 1 then
    invalid_arg "Io_fault.plan: max_transient_failures must be >= 1";
  {
    torn_write_rate;
    truncation_rate;
    bit_flip_rate;
    transient_rate;
    max_transient_failures;
    state = Int64.logxor (Int64.of_int seed) 0x9E3779B97F4A7C15L;
    op = 0;
    events = [];
  }

let events p = List.rev p.events

(* splitmix64 (Steele et al.): tiny, seedable, and good enough to decide
   fault draws — crucially independent of the global [Random] state. *)
let next_u64 p =
  let z = Int64.add p.state 0x9E3779B97F4A7C15L in
  p.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform draw in [0,1) from the top 53 bits. *)
let next_unit p =
  Int64.to_float (Int64.shift_right_logical (next_u64 p) 11) /. 9007199254740992.

(* Uniform int in [0,n). *)
let next_int p n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 p) 1)
                       (Int64.of_int n))

(* At most one fault per operation; one draw decides which. *)
let draw_fault p =
  let r = next_unit p in
  let t0 = p.torn_write_rate in
  let t1 = t0 +. p.truncation_rate in
  let t2 = t1 +. p.bit_flip_rate in
  let t3 = t2 +. p.transient_rate in
  if r < t0 then Some Torn_write
  else if r < t1 then Some Truncation
  else if r < t2 then Some Bit_flip
  else if r < t3 then Some Transient
  else None

let record p path kind detail =
  p.events <- { op = p.op; path; kind; detail } :: p.events

(* Injected transient failure — internal, always caught by the retry
   loops below. *)
exception Transient_failure

let max_retries = 5

(* Bounded exponential backoff: 1 ms, 2 ms, 4 ms, ... capped at 16 ms.
   Real enough to model the pattern, cheap enough for tests. *)
let backoff attempt = Unix.sleepf (min 0.016 (0.001 *. (2. ** float attempt)))

(* Run [f] retrying injected transient failures; [fails] is how many
   attempts the plan decided must fail first. *)
let with_transient_retries ~fails f =
  let rec go attempt =
    if attempt >= max_retries then
      failwith "Io_fault: transient failure persisted past the retry bound";
    match if attempt < fails then raise Transient_failure else f () with
    | v -> v
    | exception Transient_failure ->
        backoff attempt;
        go (attempt + 1)
  in
  go 0

let mangle p path (data : string) = function
  | None | Some Transient -> data
  | Some Torn_write ->
      (* Keep a strict prefix: somewhere in [0, len). *)
      let keep = next_int p (String.length data) in
      record p path Torn_write (Printf.sprintf "kept %d of %d bytes" keep
                                  (String.length data));
      String.sub data 0 keep
  | Some Truncation ->
      let drop = 1 + next_int p (min 64 (String.length data)) in
      record p path Truncation (Printf.sprintf "dropped last %d bytes" drop);
      String.sub data 0 (max 0 (String.length data - drop))
  | Some Bit_flip ->
      if String.length data = 0 then data
      else begin
        let byte = next_int p (String.length data) in
        let bit = next_int p 8 in
        record p path Bit_flip (Printf.sprintf "byte %d bit %d" byte bit);
        let b = Bytes.of_string data in
        Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
        Bytes.to_string b
      end

(* Number of injected consecutive failures for a transient fault. *)
let transient_fails p path =
  let fails = 1 + next_int p p.max_transient_failures in
  record p path Transient (Printf.sprintf "%d injected failure(s)" fails);
  fails

let plain_write path data =
  let oc = open_out_bin path in
  (try output_string oc data
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let plain_read path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

let write_file ?faults path data =
  match faults with
  | None -> plain_write path data
  | Some p ->
      p.op <- p.op + 1;
      let fault = draw_fault p in
      let fails =
        match fault with Some Transient -> transient_fails p path | _ -> 0
      in
      let landed = mangle p path data fault in
      with_transient_retries ~fails (fun () -> plain_write path landed)

let read_file ?faults path =
  match faults with
  | None -> (
      try Ok (plain_read path) with Sys_error m -> Error m)
  | Some p ->
      p.op <- p.op + 1;
      let fails =
        match draw_fault p with
        (* Only transient faults make sense on the read side: the bytes
           on disk are whatever the writes left there. *)
        | Some Transient -> transient_fails p path
        | Some _ | None -> 0
      in
      (try with_transient_retries ~fails (fun () -> Ok (plain_read path))
       with Sys_error m | Failure m -> Error m)
