(** Resilient versioned checkpoint directory.

    Writes are atomic (temp file + rename) and, by default, {e
    verified}: the temp file is read back and CRC-checked before the
    rename, so a torn or bit-flipped write can never displace the
    previous good checkpoint.  Loads return typed errors instead of
    raising.  Retention is multi-level: dense recent versions plus a
    sparse grid of older ones.  All I/O can be routed through an
    {!Io_fault} plan for deterministic fault injection. *)

(** [keep_last = Some k] retains the [k] newest checkpoints;
    additionally any older iteration divisible by [keep_every] survives
    (the sparse level of the ladder).  [keep_last = None] disables GC
    entirely. *)
type retention = { keep_last : int option; keep_every : int option }

(** [{ keep_last = None; keep_every = None }] — retain everything. *)
val keep_all : retention

type t

(** A write that failed verification [attempts] times in a row; the
    temp file is removed and the previous checkpoint is untouched. *)
exception Write_failed of { path : string; attempts : int; reason : string }

(** [create ?retention ?verify_writes ?faults dir] opens (creating if
    needed) a checkpoint directory.  [verify_writes] (default [true])
    re-reads and CRC-checks every write before the atomic rename.
    [faults] routes all checkpoint I/O through a fault-injection plan.
    Raises [Invalid_argument] on a non-positive retention level. *)
val create :
  ?retention:retention ->
  ?verify_writes:bool ->
  ?faults:Io_fault.plan ->
  string ->
  t

val dir : t -> string
val retention : t -> retention
val path_of_iteration : t -> int -> string

(** Iterations present, ascending. *)
val list_iterations : t -> int list

(** Atomic verified save, then retention GC.  With [sidecar_aux], also
    writes the paper-style [.aux] sidecar listing critical spans.
    Returns the checkpoint path.  Raises {!Write_failed} if the data
    never lands intact within the bounded rewrite attempts. *)
val save : ?sidecar_aux:bool -> t -> Ckpt_format.file -> string

(** Why a checkpoint could not be loaded. *)
type load_error = Missing | Io_error of string | Corrupt of string

val describe_error : load_error -> string

(** CRC-verified load; never raises on bad data. *)
val load : t -> int -> (Ckpt_format.file, load_error) result

(** [load] that raises {!Ckpt_format.Corrupt} on any error — for
    callers that treat a bad checkpoint as fatal. *)
val load_exn : t -> int -> Ckpt_format.file

(** Newest checkpoint, if any; raises {!Ckpt_format.Corrupt} if the
    newest file is invalid (use {!latest_valid} to fall back). *)
val latest : t -> Ckpt_format.file option

(** Walk backward from the newest checkpoint, skipping invalid ones.
    Returns the newest valid checkpoint (with its iteration) or [None],
    plus every skipped iteration with the reason, newest first. *)
val latest_valid :
  t -> (int * Ckpt_format.file) option * (int * load_error) list

(** Delete one checkpoint (and its sidecar) if present. *)
val remove_checkpoint : t -> int -> unit

(** On-disk bytes of one checkpoint including its sidecar. *)
val disk_bytes : t -> int -> int

(** Delete every checkpoint in the store. *)
val wipe : t -> unit
