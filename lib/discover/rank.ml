(* The discovery ranking.  Soundness invariant (gated dynamically by
   @discover-check): a field is ranked prunable ONLY when its
   first-effect status is [Untouched] or [Killed] — the checkpointed
   value is provably never consumed by the post-boundary cone, so every
   derivative through it is zero and the dynamic engine can never find
   a critical element inside it.  Everything else stays in the proposed
   set ([Required] when an output path is resolved, [Unknown]
   otherwise).  The recomputability fixpoint below never changes
   membership; it only upgrades a prune's justification from "dead
   store" to "regenerable from kept state". *)

module Model = Scvad_activity.Model
module Absint = Scvad_activity.Absint
module Einterp = Scvad_guard.Einterp
module Verdict = Scvad_activity.Verdict
module SS = Absint.SS

type verdict = Required | Prunable_recomputable | Prunable_dead | Unknown

let verdict_name = function
  | Required -> "required"
  | Prunable_recomputable -> "prunable-recomputable"
  | Prunable_dead -> "prunable-dead"
  | Unknown -> "unknown"

let verdict_of_name = function
  | "required" -> Some Required
  | "prunable-recomputable" | "recomputable" -> Some Prunable_recomputable
  | "prunable-dead" | "dead" -> Some Prunable_dead
  | "unknown" -> Some Unknown
  | _ -> None

let is_prunable = function
  | Prunable_recomputable | Prunable_dead -> true
  | Required | Unknown -> false

let is_discovered = function
  | Required | Unknown -> true
  | Prunable_recomputable | Prunable_dead -> false

type field_rank = {
  f_field : string;
  f_var : string option;
  f_kind : Verdict.kind option;
  f_elements : int option;
  f_live : bool;
  f_reaches : bool;
  f_recomputable : bool;
  f_verdict : verdict;
  f_reason : string;
  f_assumed : bool;
}

type app_ranks = {
  r_app : string;
  r_source : string;
  r_resolved : bool;
  r_fields : field_rank list;
  r_notes : string list;
}

type proposals = app_ranks list

let find_app (ps : proposals) ~app =
  List.find_opt (fun (a : app_ranks) -> a.r_app = app) ps

let find_field (a : app_ranks) ~field =
  List.find_opt (fun (f : field_rank) -> f.f_field = field) a.r_fields

let discovered_fields (a : app_ranks) =
  List.filter_map
    (fun f -> if is_discovered f.f_verdict then Some f.f_field else None)
    a.r_fields

let pruned_vars (a : app_ranks) =
  List.filter
    (fun f -> f.f_var <> None && is_prunable f.f_verdict)
    a.r_fields

let pruned_float_vars (a : app_ranks) =
  List.filter_map
    (fun f ->
      match (f.f_var, f.f_kind) with
      | Some v, Some Verdict.Float_var when is_prunable f.f_verdict -> Some v
      | _ -> None)
    a.r_fields

let added_fields (a : app_ranks) =
  List.filter (fun f -> f.f_var = None && f.f_verdict = Required) a.r_fields

let count_verdict (ps : proposals) v =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc f -> if f.f_verdict = v then acc + 1 else acc)
        acc a.r_fields)
    0 ps

(* ------------------------------------------------------------------ *)
(* Ranking                                                             *)
(* ------------------------------------------------------------------ *)

let state_fields (m : Model.t) =
  Hashtbl.fold (fun f _ acc -> f :: acc) m.Model.fields []
  |> List.sort String.compare

let decl_of (m : Model.t) f =
  List.find_opt (fun (v : Model.var_decl) -> v.Model.v_field = Some f)
    m.Model.vars

let base ~(m : Model.t) f =
  let decl = decl_of m f in
  {
    f_field = f;
    f_var = Option.map (fun (v : Model.var_decl) -> v.Model.v_name) decl;
    f_kind = Option.map (fun (v : Model.var_decl) -> v.Model.v_kind) decl;
    f_elements = Hashtbl.find_opt m.Model.field_elements f;
    f_live = true;
    f_reaches = false;
    f_recomputable = false;
    f_verdict = Unknown;
    f_reason = "";
    f_assumed = false;
  }

(* Recomputability fixpoint over the killed fields: a killed field is
   recomputable when every state-field source of its regeneration
   writes is already kept (checkpointed), itself (post-kill values),
   or another recomputable field — and its taint never leaked into a
   callee the pass cannot see.  Monotone, so plain iteration to a
   fixpoint.  The edge graph is flow-insensitive, which is fine here:
   the conclusion only labels the justification of a prune whose
   soundness rests on the kill, not on this analysis. *)
let recomputable_set ~edges ~leaked ~(m : Model.t) ~keep killed =
  let sources f =
    match List.assoc_opt f edges with
    | Some srcs -> SS.filter (fun s -> Model.is_state_field m s) srcs
    | None -> SS.empty
  in
  let recomputable = Hashtbl.create 8 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if
          (not (Hashtbl.mem recomputable f))
          && (not (SS.mem f leaked))
          && SS.for_all
               (fun s ->
                 s = f || SS.mem s keep || Hashtbl.mem recomputable s)
               (sources f)
        then begin
          Hashtbl.add recomputable f ();
          changed := true
        end)
      killed
  done;
  recomputable

let comma set = String.concat ", " (SS.elements set)

let rank ?absint ?einterp (m : Model.t) =
  let fields = state_fields m in
  match absint with
  | None ->
      List.map
        (fun f ->
          {
            (base ~m f) with
            f_verdict = Unknown;
            f_reason =
              "abstract interpretation incomplete: no effect or dependence \
               facts for this kernel";
          })
        fields
  | Some (o : Absint.outcome) ->
      let status f =
        Option.value
          (List.assoc_opt f o.Absint.o_status)
          ~default:Absint.Mayread
      in
      let leaked =
        match einterp with
        | Some (e : Einterp.outcome) ->
            (* Einterp.SS and Absint.SS are distinct Set instances over
               string; rebuild on this module's SS. *)
            Einterp.SS.fold SS.add e.Einterp.e_leaked SS.empty
        | None -> SS.of_list fields
      in
      let keep =
        SS.of_list
          (List.filter (fun f -> status f = Absint.Mayread) fields)
      in
      let killed =
        List.filter (fun f -> status f = Absint.Killed) fields
      in
      let recomputable =
        recomputable_set ~edges:o.Absint.o_edges ~leaked ~m ~keep killed
      in
      List.map
        (fun f ->
          let b = base ~m f in
          let reaches = SS.mem f o.Absint.o_reaches in
          let live = status f = Absint.Mayread in
          let recomp = Hashtbl.mem recomputable f in
          let decree =
            match decl_of m f with
            | Some v -> v.Model.v_declared_critical
            | None -> None
          in
          let verdict, reason =
            match (decree, status f) with
            | Some why, _ ->
                ( Required,
                  Printf.sprintf
                    "declared Always_critical (%s): kept by decree, the \
                     derivative criterion is never consulted"
                    why )
            | None, Absint.Untouched ->
                ( Prunable_dead,
                  "never read in the post-checkpoint cone: restoring it \
                   cannot change the continuation" )
            | None, Absint.Killed when recomp ->
                ( Prunable_recomputable,
                  "fully overwritten before any read, and the regeneration \
                   draws only on kept state and constants (AutoCheck's \
                   pruning rule)" )
            | None, Absint.Killed ->
                ( Prunable_dead,
                  Printf.sprintf
                    "fully overwritten before any read; regeneration sources \
                     unresolved (%s), so the prune rests on the kill alone"
                    (if SS.mem f leaked then "taint leaked to unknown callees"
                     else
                       "discarded or opaque sources: "
                       ^ comma
                           (match List.assoc_opt f o.Absint.o_edges with
                           | Some s ->
                               SS.filter
                                 (fun s ->
                                   Model.is_state_field m s
                                   && s <> f && not (SS.mem s keep))
                                 s
                           | None -> SS.empty)) )
            | None, Absint.Mayread when reaches ->
                ( Required,
                  "live across the boundary with a may-dependence path to \
                   the output" )
            | None, Absint.Mayread ->
                ( Unknown,
                  "read after the boundary but no resolved path to the \
                   output — a missing edge may be taint lost through an \
                   opaque value, so the field stays in the proposed set" )
          in
          {
            b with
            f_live = live;
            f_reaches = reaches;
            f_recomputable = recomp;
            f_verdict = verdict;
            f_reason = reason;
          })
        fields
