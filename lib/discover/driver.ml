(* The discover driver: parse an NPB kernel with compiler-libs, extract
   the {!Scvad_activity.Model}, run the activity pass's abstract
   interpreter (first effects, dependence edges) and the guard's escape
   interpreter (leak facts for the recomputability check), and rank
   every mutable state field with {!Rank.rank}.  The result is a
   proposed checkpoint set per app — discovery, where the rest of the
   tree only scrutinizes a hand-declared set. *)

module Model = Scvad_activity.Model
module Absint = Scvad_activity.Absint
module Einterp = Scvad_guard.Einterp
module Verdict = Scvad_activity.Verdict
module Finding = Scvad_lint.Finding
module Ljson = Scvad_util.Ljson

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error _ ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum;
          message = "syntax error: the file does not parse";
          severity = Finding.Error;
        }
  | exception Lexer.Error (_, loc) ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = loc.Location.loc_start.Lexing.pos_lnum;
          message = "lexing error: the file does not parse";
          severity = Finding.Error;
        }

(* Pragma overrides: force the named field's verdict, mark it assumed.
   Axes keep their computed values — an assumption replaces the
   conclusion, not the evidence. *)
let apply_pragmas pragmas (f : Rank.field_rank) =
  match Dpragma.assume pragmas ~field:f.Rank.f_field with
  | None -> f
  | Some (verdict, why) ->
      {
        f with
        Rank.f_verdict = verdict;
        f_reason = Printf.sprintf "assumed %s via pragma: %s"
            (Rank.verdict_name verdict) why;
        f_assumed = true;
      }

(* [analyze_source ~file source] is [None] when the file declares no
   NPB app (shared modules); findings carry pragma problems either
   way. *)
let analyze_source ~file source =
  let pragmas, pragma_errors = Dpragma.scan ~file source in
  match parse ~file source with
  | Error f -> (None, [ f ])
  | Ok ast -> (
      let m = Model.of_structure ~file ast in
      match m.Model.app_name with
      | None -> (None, pragma_errors)
      | Some app ->
          let absint, absint_notes =
            match Absint.analyze m with
            | o -> (Some o, [])
            | exception Absint.Incomplete msg ->
                (None, [ Printf.sprintf "activity analysis incomplete: %s" msg ])
          in
          let einterp, einterp_notes =
            match Einterp.analyze m with
            | o -> (Some o, [])
            | exception Einterp.Incomplete msg ->
                (None, [ Printf.sprintf "escape analysis incomplete: %s" msg ])
          in
          let fields =
            List.map (apply_pragmas pragmas)
              (Rank.rank ?absint ?einterp m)
          in
          let ar =
            {
              Rank.r_app = app;
              r_source = file;
              r_resolved = absint <> None;
              r_fields = fields;
              r_notes = List.rev m.Model.notes @ absint_notes @ einterp_notes;
            }
          in
          (Some ar, pragma_errors @ Dpragma.unused pragmas))

let analyze_file file =
  let source = read_file file in
  analyze_source ~file source

let analyze_files files =
  List.fold_left
    (fun (apps, findings) file ->
      let app, fs = analyze_file file in
      let apps = match app with Some a -> apps @ [ a ] | None -> apps in
      (apps, findings @ fs))
    ([], []) files

let analyze_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  analyze_files files

let locate_npb_dir = Scvad_activity.Driver.locate_npb_dir

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let axes (f : Rank.field_rank) =
  Printf.sprintf "%c%c%c"
    (if f.Rank.f_live then 'L' else '-')
    (if f.Rank.f_reaches then 'O' else '-')
    (if f.Rank.f_recomputable then 'R' else '-')

let render_text (ps : Rank.proposals) (findings : Finding.t list) =
  let b = Buffer.create 2048 in
  List.iter
    (fun (a : Rank.app_ranks) ->
      Buffer.add_string b
        (Printf.sprintf "%s (%s)%s\n" a.Rank.r_app a.Rank.r_source
           (if a.Rank.r_resolved then "" else "  [unresolved]"));
      List.iter
        (fun (f : Rank.field_rank) ->
          Buffer.add_string b
            (Printf.sprintf "  %-20s %-10s %s %-22s — %s%s\n" f.Rank.f_field
               (match f.Rank.f_var with
               | Some v -> "var:" ^ v
               | None -> "undeclared")
               (axes f)
               (Rank.verdict_name f.Rank.f_verdict)
               f.Rank.f_reason
               (if f.Rank.f_assumed then " [assumed]" else "")))
        a.Rank.r_fields;
      Buffer.add_string b
        (Printf.sprintf "  proposed checkpoint set: {%s}\n"
           (String.concat ", " (Rank.discovered_fields a)));
      List.iter
        (fun n -> Buffer.add_string b (Printf.sprintf "  note: %s\n" n))
        a.Rank.r_notes)
    ps;
  List.iter
    (fun f -> Buffer.add_string b (Finding.to_text f ^ "\n"))
    findings;
  Buffer.add_string b
    (Printf.sprintf
       "%d app%s ranked: %d required, %d prunable-recomputable, %d \
        prunable-dead, %d unknown field(s).\n"
       (List.length ps)
       (if List.length ps = 1 then "" else "s")
       (Rank.count_verdict ps Rank.Required)
       (Rank.count_verdict ps Rank.Prunable_recomputable)
       (Rank.count_verdict ps Rank.Prunable_dead)
       (Rank.count_verdict ps Rank.Unknown));
  Buffer.contents b

let json_of_field (f : Rank.field_rank) =
  Ljson.Obj
    [
      ("field", Ljson.Str f.Rank.f_field);
      ( "var",
        match f.Rank.f_var with Some v -> Ljson.Str v | None -> Ljson.Null );
      ( "kind",
        match f.Rank.f_kind with
        | Some k -> Ljson.Str (Verdict.kind_name k)
        | None -> Ljson.Null );
      ( "elements",
        match f.Rank.f_elements with
        | Some n -> Ljson.Int n
        | None -> Ljson.Null );
      ("live", Ljson.Bool f.Rank.f_live);
      ("reaches_output", Ljson.Bool f.Rank.f_reaches);
      ("recomputable", Ljson.Bool f.Rank.f_recomputable);
      ("verdict", Ljson.Str (Rank.verdict_name f.Rank.f_verdict));
      ("reason", Ljson.Str f.Rank.f_reason);
      ("assumed", Ljson.Bool f.Rank.f_assumed);
    ]

let json_of_finding (f : Finding.t) =
  Ljson.Obj
    [
      ("rule", Ljson.Str (Finding.rule_name f.Finding.rule));
      ("file", Ljson.Str f.Finding.file);
      ("line", Ljson.Int f.Finding.line);
      ("severity", Ljson.Str (Finding.severity_name f.Finding.severity));
      ("message", Ljson.Str f.Finding.message);
    ]

let json_of_proposals (ps : Rank.proposals) (findings : Finding.t list) =
  Ljson.Obj
    [
      ("version", Ljson.Int 1);
      ( "apps",
        Ljson.Arr
          (List.map
             (fun (a : Rank.app_ranks) ->
               Ljson.Obj
                 [
                   ("app", Ljson.Str a.Rank.r_app);
                   ("source", Ljson.Str a.Rank.r_source);
                   ("resolved", Ljson.Bool a.Rank.r_resolved);
                   ( "fields",
                     Ljson.Arr (List.map json_of_field a.Rank.r_fields) );
                   ( "proposed",
                     Ljson.Arr
                       (List.map
                          (fun f -> Ljson.Str f)
                          (Rank.discovered_fields a)) );
                   ( "notes",
                     Ljson.Arr (List.map (fun n -> Ljson.Str n) a.Rank.r_notes)
                   );
                 ])
             ps) );
      ("required", Ljson.Int (Rank.count_verdict ps Rank.Required));
      ( "prunable_recomputable",
        Ljson.Int (Rank.count_verdict ps Rank.Prunable_recomputable) );
      ("prunable_dead", Ljson.Int (Rank.count_verdict ps Rank.Prunable_dead));
      ("unknown", Ljson.Int (Rank.count_verdict ps Rank.Unknown));
      ("findings", Ljson.Arr (List.map json_of_finding findings));
    ]

let render_json (ps : Rank.proposals) (findings : Finding.t list) =
  Ljson.to_string (json_of_proposals ps findings) ^ "\n"

(* ------------------------------------------------------------------ *)
(* JSON parse-back (fixture round-trip, report archaeology)            *)
(* ------------------------------------------------------------------ *)

let jstr key j =
  match Ljson.member key j with
  | Some (Ljson.Str s) -> s
  | _ -> failwith (Printf.sprintf "proposals_of_json: missing string %S" key)

let jbool key j =
  match Ljson.member key j with
  | Some (Ljson.Bool v) -> v
  | _ -> failwith (Printf.sprintf "proposals_of_json: missing bool %S" key)

let jarr key j =
  match Ljson.member key j with
  | Some (Ljson.Arr items) -> items
  | _ -> failwith (Printf.sprintf "proposals_of_json: missing array %S" key)

let field_of_json j =
  let verdict =
    match Rank.verdict_of_name (jstr "verdict" j) with
    | Some v -> v
    | None -> failwith "proposals_of_json: unknown verdict"
  in
  let kind =
    match Ljson.member "kind" j with
    | Some (Ljson.Str "float") -> Some Verdict.Float_var
    | Some (Ljson.Str "int") -> Some Verdict.Int_var
    | Some Ljson.Null | None -> None
    | Some _ -> failwith "proposals_of_json: unknown kind"
  in
  {
    Rank.f_field = jstr "field" j;
    f_var =
      (match Ljson.member "var" j with
      | Some (Ljson.Str v) -> Some v
      | _ -> None);
    f_kind = kind;
    f_elements =
      (match Ljson.member "elements" j with
      | Some (Ljson.Int n) -> Some n
      | _ -> None);
    f_live = jbool "live" j;
    f_reaches = jbool "reaches_output" j;
    f_recomputable = jbool "recomputable" j;
    f_verdict = verdict;
    f_reason = jstr "reason" j;
    f_assumed = jbool "assumed" j;
  }

let proposals_of_json s =
  let j = Ljson.of_string s in
  List.map
    (fun app ->
      {
        Rank.r_app = jstr "app" app;
        r_source = jstr "source" app;
        r_resolved = jbool "resolved" app;
        r_fields = List.map field_of_json (jarr "fields" app);
        r_notes =
          List.map
            (function
              | Ljson.Str s -> s
              | _ -> failwith "proposals_of_json: malformed note")
            (jarr "notes" app);
      })
    (jarr "apps" j)
