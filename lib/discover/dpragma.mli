(** [(* discover: assume <verdict> <field> — <reason> *)] pragmas.

    Verdict words are the short forms [required] / [recomputable] /
    [dead] / [unknown].  The subject is a state {e field} (not a
    declared variable), and fields have no declaration line in the
    model, so a pragma applies file-wide to the named field.  Forcing
    a prunable verdict does not waive the dynamic obligation: the
    @discover-check gate still fails if the pruned field is
    dynamically critical. *)

type tag = { d_verdict : Rank.verdict; d_field : string }
type t = tag Scvad_lint.Pragma.Generic.t

(** Scan a source for discover pragmas; malformed ones become
    findings. *)
val scan : file:string -> string -> t * Scvad_lint.Finding.t list

(** Assumption for [field], if any (marks it used); returns the forced
    verdict and the stated justification. *)
val assume : t -> field:string -> (Rank.verdict * string) option

(** Warning findings for pragmas that matched no field. *)
val unused : t -> Scvad_lint.Finding.t list
