(** Discover driver: parse NPB kernels, run the activity abstract
    interpreter (first effects, dependence edges) and the escape
    interpreter (leak facts), and assemble per-field {!Rank.field_rank}
    proposals with pragma overlay. *)

(** [analyze_source ~file source] ranks the app declared in [source],
    or [None] for shared modules; findings carry pragma problems and
    parse errors. *)
val analyze_source :
  file:string ->
  string ->
  Rank.app_ranks option * Scvad_lint.Finding.t list

val analyze_file :
  string -> Rank.app_ranks option * Scvad_lint.Finding.t list

val analyze_files :
  string list -> Rank.proposals * Scvad_lint.Finding.t list

(** Rank every [.ml] file in [dir], sorted by name. *)
val analyze_dir : string -> Rank.proposals * Scvad_lint.Finding.t list

(** Walk up from [cwd] looking for [lib/npb]. *)
val locate_npb_dir : ?cwd:string -> unit -> string option

val render_text : Rank.proposals -> Scvad_lint.Finding.t list -> string
val render_json : Rank.proposals -> Scvad_lint.Finding.t list -> string

(** Parse a {!render_json} document back (round-trip tests, report
    archaeology).  Raises [Failure] on malformed input. *)
val proposals_of_json : string -> Rank.proposals
