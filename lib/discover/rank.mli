(** The discovery ranking (AutoCheck's data-dependency criterion, arXiv
    2408.06082, applied to the checkpoint-set {e choice} rather than its
    scrutiny): every mutable state field of a kernel is ranked on three
    axes and folded into one typed verdict.

    The axes:
    - {b live-across-boundary} — the field may be read after the
      checkpoint boundary before any kill ([Mayread] in the §11 effect
      lattice);
    - {b output-reaching} — a may-dependence path from the field to the
      synthetic [@output] sink exists;
    - {b recomputable} — the field's regeneration writes draw only on
      kept (checkpointed) state, its own regenerated values, and
      constants/locals, detected as a fixpoint over the dependence
      graph (AutoCheck's pruning rule).

    The verdict lattice and its soundness asymmetry (DESIGN.md §15):
    only [Killed]/[Untouched] fields — whose checkpointed value is
    {e provably never consumed} by the post-boundary cone, hence has
    zero derivative — may be ranked prunable.  A live field without a
    resolved output path stays [Unknown] and inside the proposed set: a
    missing edge may be taint lost through an opaque value, so absence
    of a path is never evidence of deadness.  The recomputability
    fixpoint only picks the {e justification} of an already-sound prune
    (regenerate vs plain dead store); it never prunes on its own. *)

module Verdict = Scvad_activity.Verdict

(** Per-field verdict.  [Required] and [Unknown] fields form the
    proposed checkpoint set; the two prunable verdicts are the
    discovery dividend. *)
type verdict = Required | Prunable_recomputable | Prunable_dead | Unknown

val verdict_name : verdict -> string
(** ["required"] / ["prunable-recomputable"] / ["prunable-dead"] /
    ["unknown"] *)

val verdict_of_name : string -> verdict option
val is_prunable : verdict -> bool

(** In the proposed checkpoint set: [Required] or [Unknown]. *)
val is_discovered : verdict -> bool

type field_rank = {
  f_field : string;  (** the mutable state field *)
  f_var : string option;
      (** hand-declared checkpoint variable backed by the field, when
          one exists — [None] marks a discovered-but-undeclared field *)
  f_kind : Verdict.kind option;  (** declared kind, when declared *)
  f_elements : int option;
  f_live : bool;  (** axis (a): read after the boundary before any kill *)
  f_reaches : bool;  (** axis (b): may-dependence path to [@output] *)
  f_recomputable : bool;  (** axis (c): regenerable from kept state *)
  f_verdict : verdict;
  f_reason : string;
  f_assumed : bool;  (** forced by a [(* discover: assume … *)] pragma *)
}

type app_ranks = {
  r_app : string;
  r_source : string;
  r_resolved : bool;
      (** false when the abstract interpretation failed and every field
          is [Unknown] *)
  r_fields : field_rank list;  (** sorted by field name *)
  r_notes : string list;
}

type proposals = app_ranks list

val find_app : proposals -> app:string -> app_ranks option
val find_field : app_ranks -> field:string -> field_rank option

(** Fields of the proposed checkpoint set ([Required] or [Unknown]),
    sorted. *)
val discovered_fields : app_ranks -> string list

(** Hand-declared variables whose backing field is ranked prunable —
    candidate dead weight in the declaration, with the ranking as
    evidence. *)
val pruned_vars : app_ranks -> field_rank list

(** Declared float variables ranked prunable: the set the analyzer's
    [discovered] mode skips lifting (mirrors the static fast path). *)
val pruned_float_vars : app_ranks -> string list

(** Discovered-but-undeclared fields the proposal adds ([Required]
    with no backing declaration) — new scenario candidates. *)
val added_fields : app_ranks -> field_rank list

val count_verdict : proposals -> verdict -> int

(** Rank every state field of [model].  [absint] and [einterp] are the
    outcomes of the activity and escape interpreters when they
    resolved; with no [absint] every field is [Unknown] (the
    conservative bottom).  With no [einterp] every field counts as
    leaked, which blocks recomputable justifications but never affects
    prunability itself. *)
val rank :
  ?absint:Scvad_activity.Absint.outcome ->
  ?einterp:Scvad_guard.Einterp.outcome ->
  Scvad_activity.Model.t ->
  field_rank list
