(* [(* discover: assume <verdict> <field> — <reason> *)] pragmas, one
   instantiation of the shared assume-pragma functor
   ({!Scvad_lint.Pragma.Assume}).  Verdict words are the short forms —
   [required], [recomputable], [dead], [unknown] — because the tag
   grammar cannot contain dashes without swallowing the [--] reason
   separator.  Unlike activity/guard pragmas, the subject is a state
   field, which has no single declaration line in the model, so the
   pragma anchors file-wide by field name.  Assumed-prunable claims
   remain subject to the @discover-check dynamic gate: a wrong
   assumption fails the build, it does not corrupt checkpoints. *)

module Pragma = Scvad_lint.Pragma

type tag = { d_verdict : Rank.verdict; d_field : string }

module A = Pragma.Assume (struct
  type nonrec tag = tag

  let keyword = "discover"
  let subject_of t = t.d_field

  let parse_words = function
    | [ word; field ] -> (
        match Rank.verdict_of_name word with
        | Some d_verdict -> Ok { d_verdict; d_field = field }
        | None ->
            Error
              (Printf.sprintf
                 "unknown verdict %S in discover pragma (expected required, \
                  recomputable, dead or unknown)"
                 word))
    | words ->
        Error
          (Printf.sprintf
             "malformed discover pragma tag %S (expected \"<verdict> \
              <field>\")"
             (String.concat " " words))
end)

type t = A.t

let scan = A.scan

(* Assumption for [field], anchored file-wide; marks it used and
   returns the forced verdict with its justification. *)
let assume t ~field =
  Option.map
    (fun (tag, reason) -> (tag.d_verdict, reason))
    (A.assume_anywhere t ~subject:field)

let unused = A.unused
