(** Non-differentiable dataflow certificates.

    A certificate is a claim about the {e paper's criterion}, not about
    criticality itself: it says where "derivative = 0" is allowed to
    mean "uncritical".  [Smooth] permits the criterion (and is gated by
    the perturbation falsifier); [Control_tainted] records concrete
    float-to-discrete escape sites that break it; [Unknown] refuses to
    rule because taint leaked into code the pass cannot see. *)

module Verdict = Scvad_activity.Verdict

type escape_kind =
  | Branch  (** branch predicate, loop condition or bound *)
  | Int_conversion  (** int/float conversion severing the chain *)
  | Subscript  (** data-dependent array index *)
  | Compare  (** comparison or polymorphic compare *)
  | Kink  (** abs / min / max / mod_float / floor / ceil *)

val escape_kind_name : escape_kind -> string
val escape_kind_of_name : string -> escape_kind option

type site = {
  s_file : string;
  s_line : int;
  s_kind : escape_kind;
  s_detail : string;  (** the offending operation, e.g. ["if condition"] *)
}

val site_to_string : site -> string

type class_ = Smooth | Control_tainted | Unknown

val class_name : class_ -> string
val class_of_name : string -> class_ option

type var_cert = {
  var : string;
  kind : Verdict.kind;
  class_ : class_;
  sites : site list;
  reaches_output : bool;
  elements : int option;
  reason : string;
  assumed : bool;
}

type app_certs = {
  app : string;
  source : string;
  resolved : bool;
  certs : var_cert list;
  notes : string list;
}

type certificates = app_certs list

val find_app : certificates -> app:string -> app_certs option
val find_var : app_certs -> var:string -> var_cert option
val find : certificates -> app:string -> var:string -> var_cert option

(** Variables whose AD verdict needs dynamic hardening. *)
val tainted_vars : app_certs -> string list

(** Smooth claims — the falsifier's validation obligations. *)
val smooth_vars : app_certs -> string list

val count_class : certificates -> class_ -> int
