(* Escape interpreter: an abstract taint walk of one kernel's
   post-checkpoint cone ([run] followed by [output]) over the extracted
   {!Scvad_activity.Model}, recording every flow of checkpoint-variable
   data into a discrete consumer.

   The walk mirrors the activity pass's abstract interpreter (same
   value shapes, same closure discipline, same conservatism direction)
   but answers a different question.  Activity asks "can this value
   reach the output at all?"; the guard asks "can this value reach the
   output through NON-SMOOTH dataflow?" — a branch predicate, an
   integer conversion, an array subscript, a comparison, or a kink.
   Each such flow is recorded as a {!Cert.site} with the source
   location and the set of state fields tainting it.

   Two companion facts are computed in the same walk:

   - a write-edge graph between state fields, so a taint that is
     laundered through another field ([g <- f(x); if g > 0 ...]) still
     reaches the escape after backward closure;
   - a leak set: fields whose taint flowed into a callee the pass
     cannot see (an external solver, an unresolvable construct).
     Leaked fields can never be certified [Smooth] — the unseen code
     could compare them — only [Unknown], pending a pragma.

   Everything unrecognized degrades toward more escapes / more leaks,
   never fewer; {!Incomplete} aborts the app to all-Unknown. *)

open Parsetree
module Model = Scvad_activity.Model
module Effects = Scvad_activity.Effects
module SS = Set.Make (String)
module SM = Map.Make (String)

exception Incomplete of string

(* ---- abstract values ------------------------------------------------- *)

type value = { taint : SS.t; sh : shape }

and shape =
  | Scalar_sh
  | Field_arr of string
  | Local_arr of cell
  | State_sh
  | Ref_sh of cell
  | Closure_sh of closure

and cell = { mutable c_val : value }

and closure = {
  cl_params : (Asttypes.arg_label * pattern) list;
  cl_body : expression;
  cl_env : value SM.t;
  cl_rec : string option;
}

let opaque = { taint = SS.empty; sh = Scalar_sh }
let scalar taint = { taint; sh = Scalar_sh }

(* ---- analysis context ------------------------------------------------ *)

type ctx = {
  model : Model.t;
  escapes : (int * Cert.escape_kind * string, SS.t ref) Hashtbl.t;
      (* (line, kind, detail) -> tainting fields; loop passes merge *)
  edges : (string, SS.t ref) Hashtbl.t;  (* dst field -> source fields *)
  mutable leaked : SS.t;
  mutable notes : string list;
  mutable fuel : int;
  mutable depth : int;
}

let note ctx msg =
  if not (List.mem msg ctx.notes) then ctx.notes <- ctx.notes @ [ msg ]

let fields_of ctx =
  Hashtbl.fold (fun f _ acc -> f :: acc) ctx.model.Model.fields []

let add_edge ctx srcs dst =
  if not (SS.is_empty srcs) then
    match Hashtbl.find_opt ctx.edges dst with
    | Some r -> r := SS.union !r srcs
    | None -> Hashtbl.add ctx.edges dst (ref srcs)

let record_escape ctx (loc : Location.t) kind detail taint =
  if not (SS.is_empty taint) then begin
    let key = (loc.loc_start.Lexing.pos_lnum, kind, detail) in
    match Hashtbl.find_opt ctx.escapes key with
    | Some r -> r := SS.union !r taint
    | None -> Hashtbl.add ctx.escapes key (ref taint)
  end

let leak ctx taint = ctx.leaked <- SS.union ctx.leaked taint

(* Taints reachable through a value, descending refs and local
   arrays. *)
let rec deep_taint v =
  match v.sh with
  | Ref_sh c | Local_arr c -> SS.union v.taint (deep_taint c.c_val)
  | Field_arr f -> SS.add f v.taint
  | _ -> v.taint

(* State escaped into code we cannot see: every field is leaked and may
   be rewritten from every other. *)
let state_escape ctx what =
  note ctx (Printf.sprintf "state escaped to %s: all fields leak" what);
  let fields = fields_of ctx in
  let all = SS.of_list fields in
  leak ctx all;
  List.iter (fun f -> add_edge ctx all f) fields;
  all

(* A value flowing into opaque code or structure: its whole taint leaks
   (the unseen consumer could branch on it). *)
let rec use_value ctx v =
  (match v.sh with
  | State_sh -> ignore (state_escape ctx "an opaque context")
  | Ref_sh c -> ignore (use_value ctx c.c_val)
  | Field_arr _ | Local_arr _ | Closure_sh _ | Scalar_sh -> ());
  let t = deep_taint v in
  leak ctx t;
  t

(* A value boxed into a structure we do not track (tuple, record,
   constructor).  Narrower than {!use_value}: scalar taint merges into
   the structure's taint and keeps flowing — only array handles and the
   state record actually leak, because their later element reads happen
   where we cannot see them. *)
let structured ctx v =
  (match v.sh with
  | Field_arr f -> leak ctx (SS.singleton f)
  | State_sh -> ignore (state_escape ctx "a structure")
  | Scalar_sh | Local_arr _ | Ref_sh _ | Closure_sh _ -> ());
  deep_taint v

let rec join_value ctx a b =
  let taint = SS.union a.taint b.taint in
  let sh =
    match (a.sh, b.sh) with
    | Field_arr x, Field_arr y when x = y -> a.sh
    | Local_arr ca, Local_arr cb ->
        if ca != cb then ca.c_val <- join_raw ca.c_val cb.c_val;
        a.sh
    | State_sh, State_sh -> State_sh
    | Ref_sh ca, Ref_sh cb ->
        if ca != cb then ca.c_val <- join_raw ca.c_val cb.c_val;
        a.sh
    | x, y when x == y -> x
    | x, y ->
        if x <> Scalar_sh then ignore (use_value ctx a);
        if y <> Scalar_sh then ignore (use_value ctx b);
        Scalar_sh
  in
  { taint; sh }

and join_raw a b = { a with taint = SS.union a.taint b.taint }

let cell_join ctx c v = c.c_val <- join_value ctx c.c_val v

(* ---- pattern binding ------------------------------------------------- *)

let pattern_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it' (p : pattern) ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it' p);
    }
  in
  it.pat it p;
  List.rev !acc

let rec bind_pattern env (p : pattern) v =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> SM.add txt v env
  | Ppat_constraint (inner, _) -> bind_pattern env inner v
  | Ppat_alias (inner, { txt; _ }) -> bind_pattern (SM.add txt v env) inner v
  | Ppat_any -> env
  | _ ->
      List.fold_left
        (fun env name -> SM.add name (scalar v.taint) env)
        env (pattern_vars p)

(* ---- the interpreter ------------------------------------------------- *)

let direct_children (e : expression) =
  let acc = ref [] in
  let collector =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ ce -> acc := ce :: !acc);
    }
  in
  Ast_iterator.default_iterator.expr collector e;
  List.rev !acc

let loop_passes = 3
let max_depth = 80

let closure_of_fn name (fn : Model.fn) =
  {
    cl_params = fn.Model.fn_params;
    cl_body = fn.Model.fn_body;
    cl_env = SM.empty;
    cl_rec = Some name;
  }

let rec interp ctx env (e : expression) : value =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then raise (Incomplete "interpretation fuel exhausted");
  match e.pexp_desc with
  | Pexp_constant _ -> opaque
  | Pexp_ident { txt; _ } -> eval_ident ctx env txt
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) ->
      interp ctx env inner
  | Pexp_open (_, body) -> interp ctx env body
  | Pexp_sequence (a, b) ->
      ignore (interp ctx env a);
      interp ctx env b
  | Pexp_let (rec_flag, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc vb ->
            let v =
              match split_closure ctx env rec_flag vb with
              | Some c -> { taint = SS.empty; sh = Closure_sh c }
              | None -> interp ctx env vb.pvb_expr
            in
            bind_pattern acc vb.pvb_pat v)
          env vbs
      in
      interp ctx env' body
  | Pexp_fun _ | Pexp_function _ -> (
      match split_closure_expr ctx env e with
      | Some c -> { taint = SS.empty; sh = Closure_sh c }
      | None -> opaque)
  | Pexp_field (base, { txt; _ }) -> eval_field ctx env base txt
  | Pexp_setfield (base, { txt; _ }, rhs) ->
      let bv = interp ctx env base in
      let rv = interp ctx env rhs in
      let f = Model.last_segment txt in
      (match bv.sh with
      | State_sh when Model.is_state_field ctx.model f ->
          add_edge ctx (deep_taint rv) f
      | State_sh -> ignore (state_escape ctx "a set of an unknown field")
      | _ -> ignore (structured ctx rv));
      opaque
  | Pexp_ifthenelse (cond, then_e, else_e) ->
      let cv = interp ctx env cond in
      record_escape ctx cond.pexp_loc Cert.Branch "if condition" cv.taint;
      let tv = interp ctx env then_e in
      let ev =
        match else_e with Some b -> interp ctx env b | None -> opaque
      in
      let v = join_value ctx tv ev in
      { v with taint = SS.union v.taint cv.taint }
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let sv = interp ctx env scrut in
      let discriminates =
        List.length cases > 1
        || List.exists (fun (c : case) -> c.pc_guard <> None) cases
      in
      if discriminates then
        record_escape ctx scrut.pexp_loc Cert.Branch "match scrutinee"
          sv.taint;
      interp_cases ctx env sv cases
  | Pexp_while (cond, body) ->
      interp_loop ctx env ~var:None ~cond:(Some cond) body
  | Pexp_for (pat, lo, hi, _dir, body) ->
      let lov = interp ctx env lo in
      let hiv = interp ctx env hi in
      let bound_taint = SS.union lov.taint hiv.taint in
      record_escape ctx e.pexp_loc Cert.Branch "for-loop bound" bound_taint;
      interp_loop ctx env ~var:(Some (pat, scalar bound_taint)) ~cond:None
        body
  | Pexp_apply (fn, args) -> interp_apply ctx env ~loc:e.pexp_loc fn args
  | Pexp_tuple parts ->
      let taint =
        List.fold_left
          (fun acc p -> SS.union acc (structured ctx (interp ctx env p)))
          SS.empty parts
      in
      scalar taint
  | Pexp_construct (_, None) -> opaque
  | Pexp_construct (_, Some arg) ->
      scalar (structured ctx (interp ctx env arg))
  | Pexp_array parts ->
      let elem =
        List.fold_left
          (fun acc p -> join_value ctx acc (interp ctx env p))
          opaque parts
      in
      { taint = SS.empty; sh = Local_arr { c_val = elem } }
  | Pexp_assert cond ->
      let cv = interp ctx env cond in
      record_escape ctx cond.pexp_loc Cert.Branch "assert condition" cv.taint;
      opaque
  | Pexp_lazy body -> interp ctx env body
  | Pexp_record (fields, base) ->
      let taint =
        List.fold_left
          (fun acc (_, fv) ->
            SS.union acc (structured ctx (interp ctx env fv)))
          SS.empty fields
      in
      let taint =
        match base with
        | Some b -> SS.union taint (deep_taint (interp ctx env b))
        | None -> taint
      in
      scalar taint
  | _ ->
      (* Constructs outside the modeled fragment: interpret every
         direct child; anything non-scalar leaks. *)
      let taint =
        List.fold_left
          (fun acc ce -> SS.union acc (structured ctx (interp ctx env ce)))
          SS.empty (direct_children e)
      in
      scalar taint

and interp_cases ctx env sv cases =
  let v =
    List.fold_left
      (fun av (case : case) ->
        let env' =
          List.fold_left
            (fun env name -> SM.add name (scalar sv.taint) env)
            env
            (pattern_vars case.pc_lhs)
        in
        (match case.pc_guard with
        | Some g ->
            let gv = interp ctx env' g in
            record_escape ctx g.pexp_loc Cert.Branch "match guard" gv.taint
        | None -> ());
        join_value ctx av (interp ctx env' case.pc_rhs))
      sv cases
  in
  { v with taint = SS.union v.taint sv.taint }

(* Loop bodies run a bounded number of passes so taints converge
   through ref cells and the write-edge graph. *)
and interp_loop ctx env ~var ~cond body =
  let env' =
    match var with
    | Some (pat, v) -> bind_pattern env pat v
    | None -> env
  in
  for _pass = 1 to loop_passes do
    (match cond with
    | Some c ->
        let cv = interp ctx env' c in
        record_escape ctx c.pexp_loc Cert.Branch "while condition" cv.taint
    | None -> ());
    ignore (interp ctx env' body)
  done;
  opaque

and split_closure ctx env rec_flag vb =
  match (Model.binding_name_of vb.pvb_pat, vb.pvb_expr.pexp_desc) with
  | Some name, (Pexp_fun _ | Pexp_function _) -> (
      match split_closure_expr ctx env vb.pvb_expr with
      | Some c ->
          Some
            {
              c with
              cl_rec =
                (if rec_flag = Asttypes.Recursive then Some name else None);
            }
      | None -> None)
  | _ -> None

and split_closure_expr _ctx env (e : expression) =
  let rec peel params (e : expression) =
    match e.pexp_desc with
    | Pexp_fun (label, _, pat, body) -> peel ((label, pat) :: params) body
    | Pexp_newtype (_, body) -> peel params body
    | _ -> (List.rev params, e)
  in
  match peel [] e with
  | [], _ -> None
  | params, body ->
      Some { cl_params = params; cl_body = body; cl_env = env; cl_rec = None }

(* A module path resolvable against this file's own function table:
   local modules always; non-Scalar functor parameters too, against the
   first in-file definition of the same name (IS's [O : INT_OPS]
   resolves to [Plain_ops], whose bodies carry the real escape
   sites). *)
and resolvable_module ctx head =
  if Hashtbl.mem ctx.model.Model.local_modules head then true
  else if Hashtbl.mem ctx.model.Model.param_modules head then begin
    note ctx
      (Printf.sprintf
         "calls through functor parameter %s resolved against the first \
          in-file definition of each operation"
         head);
    true
  end
  else false

and eval_ident ctx env (lid : Longident.t) =
  match lid with
  | Longident.Lident name -> (
      match SM.find_opt name env with
      | Some v -> v
      | None -> (
          match Model.find_fn ctx.model name with
          | Some fn ->
              { taint = SS.empty; sh = Closure_sh (closure_of_fn name fn) }
          | None -> opaque))
  | _ -> (
      match Model.flatten lid with
      | head :: _ when resolvable_module ctx head -> (
          let last = Model.last_segment lid in
          match Model.find_fn ctx.model last with
          | Some fn ->
              { taint = SS.empty; sh = Closure_sh (closure_of_fn last fn) }
          | None -> opaque)
      | _ -> opaque)

and eval_field ctx env base (lid : Longident.t) =
  let bv = interp ctx env base in
  let f = Model.last_segment lid in
  match bv.sh with
  | State_sh ->
      if Model.is_state_field ctx.model f then
        if Hashtbl.find ctx.model.Model.fields f then
          { taint = SS.empty; sh = Field_arr f }
        else scalar (SS.singleton f)
      else begin
        ignore (state_escape ctx (Printf.sprintf "unknown field %s" f));
        scalar (SS.singleton f)
      end
  | Ref_sh c when f = "contents" -> c.c_val
  | _ -> scalar bv.taint

and interp_apply ctx env ~loc fn args =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let fnv =
        match txt with
        | Longident.Lident name -> SM.find_opt name env
        | _ -> None
      in
      match fnv with
      | Some v -> apply_value ctx env v args
      | None -> (
          (* A locally-resolvable callee is interpreted, never
             table-matched: its body carries the real escape sites. *)
          match resolve_local_fn ctx txt with
          | Some c ->
              apply_value ctx env
                { taint = SS.empty; sh = Closure_sh c }
                args
          | None -> (
              let path = Model.flatten txt in
              let vals = eval_args ctx env args in
              (* Discrete-consumer interception comes first: most of the
                 vocabulary classifies as Pure, and purity is exactly
                 what hides the escape from the activity pass. *)
              (match Escapes.classify (Model.last_segment txt) with
              | Some kind ->
                  let taint =
                    List.fold_left
                      (fun acc (_, v) -> SS.union acc (deep_taint v))
                      SS.empty vals
                  in
                  record_escape ctx loc kind (Model.last_segment txt) taint
              | None -> ());
              let pure_module m =
                Hashtbl.mem ctx.model.Model.pure_modules m
              in
              match Effects.classify ~pure_module path with
              | Effects.Pure ->
                  scalar
                    (List.fold_left
                       (fun acc (_, v) -> SS.union acc (deep_taint v))
                       SS.empty vals)
              | Effects.Array_length ->
                  (* Length is layout metadata, independent of the
                     checkpointed element values: untainted. *)
                  opaque
              | Effects.Array_get -> apply_array_get ctx ~loc vals
              | Effects.Array_set -> apply_array_set ctx ~loc vals
              | Effects.Array_alloc -> apply_array_alloc ctx vals
              | Effects.Ref_make -> apply_ref_make ctx vals
              | Effects.Array_init -> apply_array_init ctx vals
              | Effects.Array_hof h -> apply_hof ctx h vals
              | Effects.Array_fill -> apply_array_fill ctx ~loc vals
              | Effects.Array_blit -> apply_array_blit ctx vals
              | Effects.Array_sort -> apply_array_sort ctx vals
              | Effects.Deref -> apply_deref ctx vals
              | Effects.Assign -> apply_assign ctx vals
              | Effects.Incr | Effects.Ignore | Effects.Raise -> opaque
              | Effects.Vranlc -> apply_vranlc ctx vals
              | Effects.Unknown_call -> unknown_call ctx vals)))
  | _ ->
      let fnv = interp ctx env fn in
      apply_value ctx env fnv args

and resolve_local_fn ctx (lid : Longident.t) =
  let resolvable =
    match lid with
    | Longident.Lident name -> Model.find_fn ctx.model name <> None
    | _ -> (
        match Model.flatten lid with
        | head :: _ -> resolvable_module ctx head
        | [] -> false)
  in
  if not resolvable then None
  else
    let last = Model.last_segment lid in
    Option.map (closure_of_fn last) (Model.find_fn ctx.model last)

and eval_args ctx env args =
  List.map (fun (label, a) -> (label, interp ctx env a)) args

and positional vals =
  List.filter_map
    (fun (label, v) ->
      match label with Asttypes.Nolabel -> Some v | _ -> None)
    vals

and apply_value ctx env fnv args =
  let vals = eval_args ctx env args in
  match fnv.sh with
  | Closure_sh c -> apply_closure ctx c vals
  | Ref_sh cell -> (
      match cell.c_val.sh with
      | Closure_sh c -> apply_closure ctx c vals
      | _ -> unknown_call ctx vals)
  | _ ->
      ignore env;
      unknown_call ctx vals

and apply_closure ctx c vals =
  if ctx.depth >= max_depth then begin
    note ctx "call depth limit hit: treating a call conservatively";
    unknown_call ctx vals
  end
  else begin
    ctx.depth <- ctx.depth + 1;
    let result = apply_closure_inner ctx c vals in
    ctx.depth <- ctx.depth - 1;
    result
  end

and apply_closure_inner ctx c vals =
  let env =
    match c.cl_rec with
    | Some name ->
        SM.add name { taint = SS.empty; sh = Closure_sh c } c.cl_env
    | None -> c.cl_env
  in
  let labelled_vals =
    List.filter_map
      (fun (label, v) ->
        match label with
        | Asttypes.Labelled l | Asttypes.Optional l -> Some (l, v)
        | Asttypes.Nolabel -> None)
      vals
  in
  let pos_vals = ref (positional vals) in
  let take_pos () =
    match !pos_vals with
    | v :: rest ->
        pos_vals := rest;
        Some v
    | [] -> None
  in
  let rec bind env params =
    match params with
    | [] -> (env, [])
    | (label, pat) :: rest -> (
        let arg =
          match label with
          | Asttypes.Labelled l | Asttypes.Optional l ->
              List.assoc_opt l labelled_vals
          | Asttypes.Nolabel -> take_pos ()
        in
        match arg with
        | Some v -> bind (bind_pattern env pat v) rest
        | None -> (
            match label with
            | Asttypes.Optional _ -> bind (bind_pattern env pat opaque) rest
            | _ -> (env, params)))
  in
  let env, remaining = bind env c.cl_params in
  if remaining <> [] then
    {
      taint = SS.empty;
      sh = Closure_sh { c with cl_params = remaining; cl_env = env };
    }
  else
    let result = interp ctx env c.cl_body in
    match !pos_vals with
    | [] -> result
    | extra -> (
        match result.sh with
        | Closure_sh c' ->
            apply_closure ctx c'
              (List.map (fun v -> (Asttypes.Nolabel, v)) extra)
        | _ ->
            unknown_call ctx
              (List.map (fun v -> (Asttypes.Nolabel, v)) extra))

(* Unknown callee: every argument's taint leaks (the unseen code could
   branch on it), array arguments may be rewritten with cross-argument
   flow, closures may be invoked. *)
and unknown_call ctx vals =
  let taints =
    List.fold_left
      (fun acc (_, v) -> SS.union acc (use_value ctx v))
      SS.empty vals
  in
  let taints =
    List.fold_left
      (fun acc (_, v) ->
        match v.sh with
        | State_sh -> SS.union acc (state_escape ctx "an unknown call")
        | Closure_sh c -> SS.union acc (deep_taint (force_closure ctx c))
        | _ -> acc)
      taints vals
  in
  List.iter
    (fun (_, v) ->
      match v.sh with
      | Field_arr f -> add_edge ctx taints f
      | Local_arr cell | Ref_sh cell -> cell_join ctx cell (scalar taints)
      | _ -> ())
    vals;
  scalar taints

and force_closure ctx c =
  apply_closure ctx c
    (List.map (fun (label, _) -> (label, opaque)) c.cl_params)

and apply_array_get ctx ~loc vals =
  match positional vals with
  | [ arr; idx ] ->
      record_escape ctx loc Cert.Subscript "array read index" idx.taint;
      (match arr.sh with
      | Field_arr f -> scalar (SS.union (SS.add f arr.taint) idx.taint)
      | Local_arr cell ->
          {
            cell.c_val with
            taint =
              SS.union (deep_taint cell.c_val)
                (SS.union arr.taint idx.taint);
          }
      | _ -> scalar (SS.union arr.taint idx.taint))
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_array_set ctx ~loc vals =
  match positional vals with
  | [ arr; idx; v ] ->
      record_escape ctx loc Cert.Subscript "array write index" idx.taint;
      let srcs = SS.union (deep_taint v) idx.taint in
      (match arr.sh with
      | Field_arr f -> add_edge ctx srcs f
      | Local_arr cell -> cell_join ctx cell { v with taint = srcs }
      | _ -> ignore (structured ctx v));
      opaque
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_array_alloc _ctx vals =
  let taint =
    List.fold_left
      (fun acc (_, v) -> SS.union acc (deep_taint v))
      SS.empty vals
  in
  { taint = SS.empty; sh = Local_arr { c_val = scalar taint } }

and apply_ref_make _ctx vals =
  let init =
    match positional vals with [ v ] -> v | _ -> opaque
  in
  { taint = SS.empty; sh = Ref_sh { c_val = init } }

and apply_array_init ctx vals =
  match positional vals with
  | [ n; f ] ->
      let elem =
        match f.sh with
        | Closure_sh c -> apply_closure ctx c [ (Asttypes.Nolabel, opaque) ]
        | _ -> scalar (deep_taint f)
      in
      let elem = { elem with taint = SS.union elem.taint n.taint } in
      { taint = SS.empty; sh = Local_arr { c_val = elem } }
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_hof ctx kind vals =
  let arrays, fns =
    List.partition
      (fun (_, v) ->
        match v.sh with Field_arr _ | Local_arr _ -> true | _ -> false)
      vals
  in
  let elem_taint =
    List.fold_left
      (fun acc (_, v) ->
        match v.sh with
        | Field_arr f -> SS.add f acc
        | Local_arr cell -> SS.union acc (deep_taint cell.c_val)
        | _ -> acc)
      SS.empty arrays
  in
  let closure =
    List.find_map
      (fun (_, v) -> match v.sh with Closure_sh c -> Some c | _ -> None)
      fns
  in
  let other_taint =
    List.fold_left
      (fun acc (_, v) ->
        match v.sh with Closure_sh _ -> acc | _ -> SS.union acc (deep_taint v))
      SS.empty fns
  in
  let elem = scalar (SS.union elem_taint other_taint) in
  let apply_cb args_for_cb =
    match closure with
    | Some c ->
        apply_closure ctx c
          (List.map (fun v -> (Asttypes.Nolabel, v)) args_for_cb)
    | None -> scalar (SS.union elem_taint other_taint)
  in
  match kind with
  | Effects.Iter ->
      ignore (apply_cb [ elem ]);
      ignore (apply_cb [ elem ]);
      opaque
  | Effects.Iteri ->
      ignore (apply_cb [ opaque; elem ]);
      ignore (apply_cb [ opaque; elem ]);
      opaque
  | Effects.Map ->
      let r = apply_cb [ elem ] in
      {
        taint = SS.empty;
        sh =
          Local_arr
            { c_val = scalar (SS.union (deep_taint r) elem.taint) };
      }
  | Effects.Fold ->
      let acc0 = scalar other_taint in
      let acc1 = apply_cb [ acc0; elem ] in
      let acc2 =
        apply_cb [ scalar (SS.union (deep_taint acc1) elem.taint); elem ]
      in
      scalar (SS.union (deep_taint acc2) (SS.union elem_taint other_taint))

and apply_array_fill ctx ~loc vals =
  match positional vals with
  | [ arr; pos; len; v ] ->
      record_escape ctx loc Cert.Subscript "fill bounds"
        (SS.union pos.taint len.taint);
      let srcs = SS.union (deep_taint v) (SS.union pos.taint len.taint) in
      (match arr.sh with
      | Field_arr f -> add_edge ctx srcs f
      | Local_arr cell -> cell_join ctx cell { v with taint = srcs }
      | _ -> ignore (structured ctx v));
      opaque
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_array_blit ctx vals =
  match positional vals with
  | [ src; _spos; dst; _dpos; _len ] ->
      let srcs =
        match src.sh with
        | Field_arr f -> SS.add f src.taint
        | Local_arr cell -> deep_taint cell.c_val
        | _ -> src.taint
      in
      (match dst.sh with
      | Field_arr f -> add_edge ctx srcs f
      | Local_arr cell -> cell_join ctx cell (scalar srcs)
      | _ -> ());
      opaque
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

(* A comparison sort consumes every element discretely. *)
and apply_array_sort ctx vals =
  List.iter
    (fun (_, v) ->
      match v.sh with
      | Field_arr f -> add_edge ctx (SS.singleton f) f
      | _ -> ())
    vals;
  opaque

and apply_deref ctx vals =
  match positional vals with
  | [ r ] -> (
      match r.sh with
      | Ref_sh cell ->
          { cell.c_val with taint = SS.union cell.c_val.taint r.taint }
      | _ -> scalar r.taint)
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_assign ctx vals =
  match positional vals with
  | [ r; v ] ->
      (match r.sh with
      | Ref_sh cell -> cell_join ctx cell v
      | _ -> ignore (structured ctx v));
      opaque
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

(* [Nprand.vranlc]: writes fresh deviates into the array argument; the
   control parameters flow in, nothing escapes discretely. *)
and apply_vranlc ctx vals =
  let srcs =
    List.fold_left
      (fun acc (_, v) -> SS.union acc (deep_taint v))
      SS.empty vals
  in
  (match positional vals with
  | [ _rng; _count; arr; _off ] -> (
      match arr.sh with
      | Field_arr f -> add_edge ctx srcs f
      | Local_arr cell -> cell_join ctx cell (scalar srcs)
      | _ -> ())
  | _ -> ());
  opaque

(* ---- entry ----------------------------------------------------------- *)

type outcome = {
  e_escapes : (Cert.site * SS.t) list;
      (** escape sites with their (closed) tainting field sets *)
  e_leaked : SS.t;  (** fields whose (closed) taint reached unseen code *)
  e_notes : string list;
}

(* Backward closure over the write-edge graph: a field that flows into
   a tainting field is itself tainting (laundering through another
   field does not wash the escape away). *)
let close_taint ctx seed =
  let visited = Hashtbl.create 16 in
  let rec go f =
    if not (Hashtbl.mem visited f) then begin
      Hashtbl.add visited f ();
      match Hashtbl.find_opt ctx.edges f with
      | Some srcs -> SS.iter go !srcs
      | None -> ()
    end
  in
  SS.iter go seed;
  Hashtbl.fold
    (fun f _ acc ->
      if Model.is_state_field ctx.model f then SS.add f acc else acc)
    visited SS.empty

let analyze (model : Model.t) : outcome =
  let run =
    match Model.find_fn model "run" with
    | Some fn -> fn
    | None -> raise (Incomplete "no run function found")
  in
  let output =
    match Model.find_fn model "output" with
    | Some fn -> fn
    | None -> raise (Incomplete "no output function found")
  in
  let ctx =
    {
      model;
      escapes = Hashtbl.create 32;
      edges = Hashtbl.create 32;
      leaked = SS.empty;
      notes = [];
      fuel = 50_000_000;
      depth = 0;
    }
  in
  let bind_params params =
    List.fold_left
      (fun (env, first) (_label, pat) ->
        let v = if first then { taint = SS.empty; sh = State_sh } else opaque in
        (bind_pattern env pat v, false))
      (SM.empty, true) params
    |> fst
  in
  ignore (interp ctx (bind_params run.Model.fn_params) run.Model.fn_body);
  ignore
    (interp ctx (bind_params output.Model.fn_params) output.Model.fn_body);
  let escapes =
    Hashtbl.fold
      (fun (line, kind, detail) taint acc ->
        ( {
            Cert.s_file = model.Model.file;
            s_line = line;
            s_kind = kind;
            s_detail = detail;
          },
          close_taint ctx !taint )
        :: acc)
      ctx.escapes []
    |> List.sort (fun ((a : Cert.site), _) (b, _) ->
           compare (a.Cert.s_line, a.Cert.s_kind, a.Cert.s_detail)
             (b.Cert.s_line, b.Cert.s_kind, b.Cert.s_detail))
  in
  {
    e_escapes = escapes;
    e_leaked = close_taint ctx ctx.leaked;
    e_notes = ctx.notes;
  }
