(** [(* guard: assume smooth <var> — <reason> *)] pragmas.

    The only assumable class is [smooth]; the assumption is a human
    claim that a leaked callee is straight-line scalar arithmetic.  It
    rescues an [Unknown] certificate but does not waive the dynamic
    obligation: assumed-Smooth variables are still falsifier-tested. *)

type tag = { g_var : string }
type t = tag Scvad_lint.Pragma.Generic.t

(** Scan a source for guard pragmas; malformed ones become findings. *)
val scan : file:string -> string -> t * Scvad_lint.Finding.t list

(** Smoothness assumption covering the declaration at [line], if any
    (marks it used); returns the stated justification. *)
val assume : t -> var:string -> line:int -> string option

(** Findings for pragmas that matched no declaration. *)
val unused : t -> Scvad_lint.Finding.t list
