(** Escape interpreter: abstract taint walk of one kernel's
    [run]/[output] cone recording every flow of checkpoint-variable
    data into a discrete consumer (branch, conversion, subscript,
    comparison, kink), plus the set of fields whose taint leaked into
    code the pass cannot see.

    Conservatism direction: everything unrecognized produces {e more}
    escapes or leaks, never fewer, so an empty escape/leak result for a
    field is evidence toward [Smooth]. *)

module SS : Set.S with type elt = string

exception Incomplete of string

type outcome = {
  e_escapes : (Cert.site * SS.t) list;
      (** escape sites with the state fields tainting them, closed over
          the write-edge graph (field-to-field laundering included) *)
  e_leaked : SS.t;
      (** fields whose taint reached an unknown callee (closed) *)
  e_notes : string list;  (** transparency/imprecision notes *)
}

(** Walk [run] then [output].  Raises {!Incomplete} when either is
    missing or fuel runs out. *)
val analyze : Scvad_activity.Model.t -> outcome
