(* The guard driver: parse an NPB kernel with compiler-libs, extract
   the {!Scvad_activity.Model}, run the activity pass's abstract
   interpreter (for kill/reach facts) and the escape interpreter, and
   assemble one {!Cert.var_cert} per checkpoint variable.

   The certificate rule (soundness argument in DESIGN.md §12):

   float variables
   - first-effect [Untouched]/[Killed]  -> Smooth: the checkpointed
     value is provably never consumed in the cone, so no escape can
     involve it (the kill discount trumps recorded escapes — EP's
     buffer is branched on, but only post-overwrite values are);
   - an escape site whose closed taint meets the backing field
                                        -> Control_tainted, sites kept;
   - taint leaked to an unknown callee  -> Unknown (the unseen code
     could compare it; only a pragma — still falsifier-tested — may
     assume smoothness);
   - otherwise                          -> Smooth: every resolved flow
     from the field to the output is smooth scalar arithmetic.

   integer variables
   - declared [Always_critical]         -> Control_tainted by decree
     (the AD criterion is never consulted for them);
   - [Untouched]/[Killed]               -> Smooth;
   - an escape site                     -> Control_tainted;
   - the field reaches the output       -> Control_tainted: integer
     dataflow enters AD as a constant, so a zero derivative is
     structural, not informative (IS's passed_verification flows to
     the output through plain adds and never syntactically escapes —
     this rule is what catches it);
   - leaked                             -> Unknown;
   - otherwise                          -> Smooth. *)

module Model = Scvad_activity.Model
module Absint = Scvad_activity.Absint
module Verdict = Scvad_activity.Verdict
module Finding = Scvad_lint.Finding
module Ljson = Scvad_util.Ljson

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error _ ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum;
          message = "syntax error: the file does not parse";
          severity = Finding.Error;
        }
  | exception Lexer.Error (_, loc) ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = loc.Location.loc_start.Lexing.pos_lnum;
          message = "lexing error: the file does not parse";
          severity = Finding.Error;
        }

(* ------------------------------------------------------------------ *)
(* Certificate assembly                                                *)
(* ------------------------------------------------------------------ *)

type analysis = {
  a_absint : Absint.outcome option;  (* kill/reach facts *)
  a_einterp : Einterp.outcome option;  (* escapes and leaks *)
}

let field_status (a : analysis) f =
  Option.bind a.a_absint (fun o -> List.assoc_opt f o.Absint.o_status)

let field_reaches (a : analysis) f =
  match a.a_absint with
  | Some o -> Absint.SS.mem f o.Absint.o_reaches
  | None -> false

let field_sites (a : analysis) f =
  match a.a_einterp with
  | Some o ->
      List.filter_map
        (fun (site, taint) ->
          if Einterp.SS.mem f taint then Some site else None)
        o.Einterp.e_escapes
  | None -> []

let field_leaked (a : analysis) f =
  match a.a_einterp with
  | Some o -> Einterp.SS.mem f o.Einterp.e_leaked
  | None -> true

(* Base certificate before pragmas. *)
let base_cert (a : analysis) (v : Model.var_decl) =
  let unresolved = a.a_absint = None || a.a_einterp = None in
  let declared = v.Model.v_declared_critical in
  match v.Model.v_field with
  | _ when declared <> None && v.Model.v_kind = Verdict.Int_var ->
      ( Cert.Control_tainted,
        [],
        false,
        Printf.sprintf
          "declared Always_critical (%s): the derivative criterion is never \
           consulted"
          (Option.value declared ~default:"declared") )
  | None ->
      (Cert.Unknown, [], false, "declaration not bound to a unique state field")
  | Some _ when unresolved -> (Cert.Unknown, [], false, "analysis incomplete")
  | Some f -> (
      let reaches = field_reaches a f in
      match field_status a f with
      | Some Absint.Untouched ->
          ( Cert.Smooth,
            [],
            reaches,
            "never read in the post-checkpoint cone: no flow can escape" )
      | Some Absint.Killed ->
          ( Cert.Smooth,
            [],
            reaches,
            "fully overwritten before any read: only post-overwrite values \
             reach discrete consumers" )
      | _ -> (
          match field_sites a f with
          | _ :: _ as sites ->
              ( Cert.Control_tainted,
                sites,
                reaches,
                Printf.sprintf "%d escape site(s) on the run->output cone"
                  (List.length sites) )
          | [] ->
              if v.Model.v_kind = Verdict.Int_var && reaches then
                ( Cert.Control_tainted,
                  [],
                  reaches,
                  "integer dataflow reaches the output: it enters AD as a \
                   constant, so a zero derivative is structural" )
              else if field_leaked a f then
                ( Cert.Unknown,
                  [],
                  reaches,
                  "taint leaked into an external callee the pass cannot see" )
              else
                ( Cert.Smooth,
                  [],
                  reaches,
                  "every resolved flow to the output is smooth scalar \
                   arithmetic" )))

let var_cert ~pragmas (a : analysis) (v : Model.var_decl) =
  let class_, sites, reaches, reason = base_cert a v in
  let class_, reason, assumed =
    match Gpragma.assume pragmas ~var:v.Model.v_name ~line:v.Model.v_line with
    | None -> (class_, reason, false)
    | Some why ->
        (Cert.Smooth, Printf.sprintf "assumed smooth via pragma: %s" why, true)
  in
  {
    Cert.var = v.Model.v_name;
    kind = v.Model.v_kind;
    class_;
    sites;
    reaches_output = reaches;
    elements = v.Model.v_elements;
    reason;
    assumed;
  }

(* [analyze_source ~file source] is [None] when the file declares no
   NPB app (shared modules); findings carry pragma problems either
   way. *)
let analyze_source ~file source =
  let pragmas, pragma_errors = Gpragma.scan ~file source in
  match parse ~file source with
  | Error f -> (None, [ f ])
  | Ok ast -> (
      let m = Model.of_structure ~file ast in
      match m.Model.app_name with
      | None -> (None, pragma_errors)
      | Some app ->
          let a_absint, absint_notes =
            match Absint.analyze m with
            | o -> (Some o, [])
            | exception Absint.Incomplete msg ->
                (None, [ Printf.sprintf "activity analysis incomplete: %s" msg ])
          in
          let a_einterp, einterp_notes =
            match Einterp.analyze m with
            | o -> (Some o, o.Einterp.e_notes)
            | exception Einterp.Incomplete msg ->
                (None, [ Printf.sprintf "escape analysis incomplete: %s" msg ])
          in
          let a = { a_absint; a_einterp } in
          let certs = List.map (var_cert ~pragmas a) m.Model.vars in
          let ac =
            {
              Cert.app;
              source = file;
              resolved = a_absint <> None && a_einterp <> None;
              certs;
              notes = List.rev m.Model.notes @ absint_notes @ einterp_notes;
            }
          in
          (Some ac, pragma_errors @ Gpragma.unused pragmas))

let analyze_file file =
  let source = read_file file in
  analyze_source ~file source

let analyze_files files =
  List.fold_left
    (fun (apps, findings) file ->
      let app, fs = analyze_file file in
      let apps = match app with Some a -> apps @ [ a ] | None -> apps in
      (apps, findings @ fs))
    ([], []) files

let analyze_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  analyze_files files

let locate_npb_dir = Scvad_activity.Driver.locate_npb_dir

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_text (cs : Cert.certificates) (findings : Finding.t list) =
  let b = Buffer.create 2048 in
  List.iter
    (fun (a : Cert.app_certs) ->
      Buffer.add_string b
        (Printf.sprintf "%s (%s)%s\n" a.Cert.app a.Cert.source
           (if a.Cert.resolved then "" else "  [unresolved]"));
      List.iter
        (fun (v : Cert.var_cert) ->
          Buffer.add_string b
            (Printf.sprintf "  %-20s %-5s %-15s — %s%s\n" v.Cert.var
               (Verdict.kind_name v.Cert.kind)
               (Cert.class_name v.Cert.class_)
               v.Cert.reason
               (if v.Cert.assumed then " [assumed]" else ""));
          List.iter
            (fun s ->
              Buffer.add_string b
                (Printf.sprintf "      escape %s\n" (Cert.site_to_string s)))
            v.Cert.sites)
        a.Cert.certs;
      List.iter
        (fun n -> Buffer.add_string b (Printf.sprintf "  note: %s\n" n))
        a.Cert.notes)
    cs;
  List.iter
    (fun f -> Buffer.add_string b (Finding.to_text f ^ "\n"))
    findings;
  Buffer.add_string b
    (Printf.sprintf
       "%d app%s certified: %d smooth, %d control-tainted, %d unknown \
        variable(s).\n"
       (List.length cs)
       (if List.length cs = 1 then "" else "s")
       (Cert.count_class cs Cert.Smooth)
       (Cert.count_class cs Cert.Control_tainted)
       (Cert.count_class cs Cert.Unknown));
  Buffer.contents b

let json_of_site (s : Cert.site) =
  Ljson.Obj
    [
      ("file", Ljson.Str s.Cert.s_file);
      ("line", Ljson.Int s.Cert.s_line);
      ("kind", Ljson.Str (Cert.escape_kind_name s.Cert.s_kind));
      ("detail", Ljson.Str s.Cert.s_detail);
    ]

let json_of_cert (v : Cert.var_cert) =
  Ljson.Obj
    [
      ("var", Ljson.Str v.Cert.var);
      ("kind", Ljson.Str (Verdict.kind_name v.Cert.kind));
      ("class", Ljson.Str (Cert.class_name v.Cert.class_));
      ("sites", Ljson.Arr (List.map json_of_site v.Cert.sites));
      ("reaches_output", Ljson.Bool v.Cert.reaches_output);
      ( "elements",
        match v.Cert.elements with Some n -> Ljson.Int n | None -> Ljson.Null
      );
      ("reason", Ljson.Str v.Cert.reason);
      ("assumed", Ljson.Bool v.Cert.assumed);
    ]

let json_of_finding (f : Finding.t) =
  Ljson.Obj
    [
      ("rule", Ljson.Str (Finding.rule_name f.Finding.rule));
      ("file", Ljson.Str f.Finding.file);
      ("line", Ljson.Int f.Finding.line);
      ("severity", Ljson.Str (Finding.severity_name f.Finding.severity));
      ("message", Ljson.Str f.Finding.message);
    ]

let json_of_certs (cs : Cert.certificates) (findings : Finding.t list) =
  Ljson.Obj
    [
      ("version", Ljson.Int 1);
      ( "apps",
        Ljson.Arr
          (List.map
             (fun (a : Cert.app_certs) ->
               Ljson.Obj
                 [
                   ("app", Ljson.Str a.Cert.app);
                   ("source", Ljson.Str a.Cert.source);
                   ("resolved", Ljson.Bool a.Cert.resolved);
                   ("vars", Ljson.Arr (List.map json_of_cert a.Cert.certs));
                   ( "notes",
                     Ljson.Arr (List.map (fun n -> Ljson.Str n) a.Cert.notes)
                   );
                 ])
             cs) );
      ("smooth", Ljson.Int (Cert.count_class cs Cert.Smooth));
      ( "control_tainted",
        Ljson.Int (Cert.count_class cs Cert.Control_tainted) );
      ("unknown", Ljson.Int (Cert.count_class cs Cert.Unknown));
      ("findings", Ljson.Arr (List.map json_of_finding findings));
    ]

let render_json (cs : Cert.certificates) (findings : Finding.t list) =
  Ljson.to_string (json_of_certs cs findings) ^ "\n"

(* ------------------------------------------------------------------ *)
(* JSON parse-back (fixture round-trip, --baseline regression gate)    *)
(* ------------------------------------------------------------------ *)

let jstr key j =
  match Ljson.member key j with
  | Some (Ljson.Str s) -> s
  | _ -> failwith (Printf.sprintf "certs_of_json: missing string %S" key)

let jint key j =
  match Ljson.member key j with
  | Some (Ljson.Int n) -> n
  | _ -> failwith (Printf.sprintf "certs_of_json: missing int %S" key)

let jbool key j =
  match Ljson.member key j with
  | Some (Ljson.Bool v) -> v
  | _ -> failwith (Printf.sprintf "certs_of_json: missing bool %S" key)

let jarr key j =
  match Ljson.member key j with
  | Some (Ljson.Arr items) -> items
  | _ -> failwith (Printf.sprintf "certs_of_json: missing array %S" key)

let site_of_json j =
  let kind =
    match Cert.escape_kind_of_name (jstr "kind" j) with
    | Some k -> k
    | None -> failwith "certs_of_json: unknown escape kind"
  in
  {
    Cert.s_file = jstr "file" j;
    s_line = jint "line" j;
    s_kind = kind;
    s_detail = jstr "detail" j;
  }

let cert_of_json j =
  let class_ =
    match Cert.class_of_name (jstr "class" j) with
    | Some c -> c
    | None -> failwith "certs_of_json: unknown class"
  in
  let kind =
    match jstr "kind" j with
    | "float" -> Verdict.Float_var
    | "int" -> Verdict.Int_var
    | k -> failwith (Printf.sprintf "certs_of_json: unknown kind %S" k)
  in
  {
    Cert.var = jstr "var" j;
    kind;
    class_;
    sites = List.map site_of_json (jarr "sites" j);
    reaches_output = jbool "reaches_output" j;
    elements =
      (match Ljson.member "elements" j with
      | Some (Ljson.Int n) -> Some n
      | _ -> None);
    reason = jstr "reason" j;
    assumed = jbool "assumed" j;
  }

let certs_of_json s =
  let j = Ljson.of_string s in
  List.map
    (fun app ->
      {
        Cert.app = jstr "app" app;
        source = jstr "source" app;
        resolved = jbool "resolved" app;
        certs = List.map cert_of_json (jarr "vars" app);
        notes =
          List.map
            (function
              | Ljson.Str s -> s
              | _ -> failwith "certs_of_json: malformed note")
            (jarr "notes" app);
      })
    (jarr "apps" j)
