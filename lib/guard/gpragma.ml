(* [(* guard: assume smooth <var> — <reason> *)] pragmas, built on the
   lint scanner (the same [Pragma.Generic] machinery as the activity
   pass).  The only assumable class is [smooth]: a human vouches that
   the leaked callee does straight-line Scalar.S arithmetic, so the
   criterion may be applied.  The assumption does NOT waive the dynamic
   obligation — assumed-Smooth variables are still falsifier-tested by
   the @guard-check gate, which is the point of allowing the pragma at
   all.  It only overrides the certificate when it sits on or directly
   above the variable's declaration line. *)

module Pragma = Scvad_lint.Pragma

type tag = { g_var : string }
type t = tag Pragma.Generic.t

(* Concatenated so the scanner never matches its own source. *)
let marker = "guard: " ^ "assume"

let is_tag_char = function
  | 'a' .. 'z' | '0' .. '9' | '_' | '\'' | ' ' -> true
  | _ -> false

let parse_tag text =
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' text)
  in
  match words with
  | [ "smooth"; var ] -> Ok { g_var = var }
  | [ cls; _ ] ->
      Error
        (Printf.sprintf
           "unknown class %S in guard pragma (only \"smooth\" is assumable)"
           cls)
  | _ ->
      Error
        (Printf.sprintf
           "malformed guard pragma tag %S (expected \"smooth <var>\")" text)

let scan ~file source =
  Pragma.Generic.scan ~marker ~tag_char:is_tag_char ~parse_tag ~file source

(* Smoothness assumption covering the declaration at [line], if any;
   marks it used.  Returns the stated justification. *)
let assume t ~var ~line =
  match
    Pragma.Generic.find t (fun tag first last ->
        tag.g_var = var && first <= line && line <= last)
  with
  | Some e -> Some e.Pragma.Generic.g_reason
  | None -> None

let unused t =
  Pragma.Generic.unused t ~describe:(fun tag first last reason ->
      Printf.sprintf
        "unused guard pragma: no declaration of %S on lines %d-%d (reason \
         given: %s)"
        tag.g_var first last reason)
