(* [(* guard: assume smooth <var> — <reason> *)] pragmas, one
   instantiation of the shared assume-pragma functor
   ({!Scvad_lint.Pragma.Assume}).  The only assumable class is
   [smooth]: a human vouches that the leaked callee does straight-line
   Scalar.S arithmetic, so the criterion may be applied.  The
   assumption does NOT waive the dynamic obligation — assumed-Smooth
   variables are still falsifier-tested by the @guard-check gate, which
   is the point of allowing the pragma at all.  It only overrides the
   certificate when it sits on or directly above the variable's
   declaration line. *)

module Pragma = Scvad_lint.Pragma

type tag = { g_var : string }

module A = Pragma.Assume (struct
  type nonrec tag = tag

  let keyword = "guard"
  let subject_of t = t.g_var

  let parse_words = function
    | [ "smooth"; var ] -> Ok { g_var = var }
    | [ cls; _ ] ->
        Error
          (Printf.sprintf
             "unknown class %S in guard pragma (only \"smooth\" is assumable)"
             cls)
    | words ->
        Error
          (Printf.sprintf
             "malformed guard pragma tag %S (expected \"smooth <var>\")"
             (String.concat " " words))
end)

type t = A.t

let scan = A.scan

(* Smoothness assumption covering the declaration at [line], if any;
   marks it used.  Returns the stated justification. *)
let assume t ~var ~line =
  Option.map (fun (_, reason) -> reason) (A.assume t ~subject:var ~line)

let unused = A.unused
