(* The non-differentiable dataflow certificate (the guard's verdict
   lattice).

   The paper's criterion — derivative zero implies uncritical — is
   sound only while a checkpointed value influences the output through
   *smooth* dataflow.  The moment a value flows into a branch
   predicate, an integer conversion, an array subscript, a comparison,
   or a non-smooth kink, reverse mode sees one locally-constant piece
   of a piecewise function and a zero derivative stops meaning "the
   output does not depend on this element".

   A certificate is therefore a *claim about the criterion*, not about
   criticality itself:

   - [Smooth]: no element of the variable can reach a discrete
     consumer on the run->output cone; "derivative = 0 => uncritical"
     is permitted.  This is the only claim with soundness obligations:
     the perturbation falsifier must never produce a witness against
     it (the @guard-check gate).
   - [Control_tainted]: a concrete escape site exists (file:line and
     kind recorded); AD verdicts over this variable must be hardened
     by the dynamic falsifier before a mask may prune it.
   - [Unknown]: the variable's taint leaked into code the pass cannot
     see (an external solver call, an unresolvable construct); the
     guard refuses to rule, and only an explicit
     [(* guard: assume smooth ... *)] pragma — still falsifier-tested
     — can rescue it. *)

module Verdict = Scvad_activity.Verdict

type escape_kind = Branch | Int_conversion | Subscript | Compare | Kink

let escape_kind_name = function
  | Branch -> "branch"
  | Int_conversion -> "int-conversion"
  | Subscript -> "subscript"
  | Compare -> "compare"
  | Kink -> "kink"

let escape_kind_of_name = function
  | "branch" -> Some Branch
  | "int-conversion" -> Some Int_conversion
  | "subscript" -> Some Subscript
  | "compare" -> Some Compare
  | "kink" -> Some Kink
  | _ -> None

(* One concrete float-to-discrete escape: where (file:line), how
   (kind), and what the expression was (detail, e.g. "if condition" or
   "int_of_float"). *)
type site = {
  s_file : string;
  s_line : int;
  s_kind : escape_kind;
  s_detail : string;
}

let site_to_string s =
  Printf.sprintf "%s:%d %s (%s)" s.s_file s.s_line
    (escape_kind_name s.s_kind) s.s_detail

type class_ = Smooth | Control_tainted | Unknown

let class_name = function
  | Smooth -> "smooth"
  | Control_tainted -> "control-tainted"
  | Unknown -> "unknown"

let class_of_name = function
  | "smooth" -> Some Smooth
  | "control-tainted" | "tainted" -> Some Control_tainted
  | "unknown" -> Some Unknown
  | _ -> None

(* One checkpoint variable's certificate. *)
type var_cert = {
  var : string;
  kind : Verdict.kind;
  class_ : class_;
  sites : site list;  (** escape sites tainted by this variable *)
  reaches_output : bool;
      (** the backing field has a may-dependence path to the output *)
  elements : int option;  (** element count when statically known *)
  reason : string;  (** proof sketch or why the pass gave up *)
  assumed : bool;  (** forced by a [(* guard: assume smooth … *)] pragma *)
}

(* Everything the guard decided about one benchmark. *)
type app_certs = {
  app : string;
  source : string;  (** the kernel file the certificates derive from *)
  resolved : bool;
      (** false when extraction failed and every certificate is Unknown *)
  certs : var_cert list;
  notes : string list;  (** imprecision/transparency notes *)
}

type certificates = app_certs list

let find_app (cs : certificates) ~app =
  List.find_opt (fun (a : app_certs) -> a.app = app) cs

let find_var (a : app_certs) ~var =
  List.find_opt (fun (v : var_cert) -> v.var = var) a.certs

let find (cs : certificates) ~app ~var =
  Option.bind (find_app cs ~app) (fun a -> find_var a ~var)

(* Variables whose AD verdict needs dynamic hardening before a pruned
   checkpoint may trust it. *)
let tainted_vars (a : app_certs) =
  List.filter_map
    (fun v -> if v.class_ = Control_tainted then Some v.var else None)
    a.certs

(* Smooth claims (including pragma-assumed ones) across a suite: the
   falsifier's validation obligations. *)
let smooth_vars (a : app_certs) =
  List.filter_map
    (fun v -> if v.class_ = Smooth then Some v.var else None)
    a.certs

let count_class (cs : certificates) cls =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc v -> if v.class_ = cls then acc + 1 else acc)
        acc a.certs)
    0 cs
