(** Guard driver: parse NPB kernels, run the activity abstract
    interpreter and the escape interpreter, and assemble per-variable
    {!Cert.var_cert} certificates with pragma overlay. *)

(** [analyze_source ~file source] certifies the app declared in
    [source], or [None] for shared modules; findings carry pragma
    problems and parse errors. *)
val analyze_source :
  file:string ->
  string ->
  Cert.app_certs option * Scvad_lint.Finding.t list

val analyze_file :
  string -> Cert.app_certs option * Scvad_lint.Finding.t list

val analyze_files :
  string list -> Cert.certificates * Scvad_lint.Finding.t list

(** Certify every [.ml] file in [dir], sorted by name. *)
val analyze_dir : string -> Cert.certificates * Scvad_lint.Finding.t list

(** Walk up from [cwd] looking for [lib/npb]. *)
val locate_npb_dir : ?cwd:string -> unit -> string option

val render_text : Cert.certificates -> Scvad_lint.Finding.t list -> string
val render_json : Cert.certificates -> Scvad_lint.Finding.t list -> string

(** Parse a {!render_json} document back (baseline regression gate and
    round-trip tests).  Raises [Failure] on malformed input. *)
val certs_of_json : string -> Cert.certificates
