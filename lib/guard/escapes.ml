(* The discrete-consumer vocabulary: unqualified callee names whose
   application is a float-to-discrete escape when a tainted value flows
   in.  Most of these classify as [Pure] in the activity pass — purity
   is exactly the problem: the value's influence survives, but reverse
   mode only sees the locally-selected piece. *)

(* Comparisons: the result is a bool/ordering, so every downstream use
   is control flow or discrete data. *)
let compare_names =
  [ "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare"; "equal" ]

(* Conversions between int and float sever the derivative chain in both
   directions: int_of_float discretizes a float; float_of_int re-enters
   AD as a constant, hiding whatever arithmetic produced the int. *)
let conversion_names =
  [ "int_of_float"; "truncate"; "to_int"; "float_of_int"; "float"; "of_int" ]

(* Kinks: continuous but non-differentiable (or piecewise) primitives.
   Reverse mode differentiates the selected piece, so a zero derivative
   says nothing about the unselected one. *)
let kink_names =
  [
    "abs"; "abs_float"; "min"; "max"; "mod"; "mod_float"; "rem"; "floor";
    "ceil"; "copysign";
  ]

(* [classify name] is the escape kind an application of [name] records
   when a tainted value reaches it, if any. *)
let classify name : Cert.escape_kind option =
  if List.mem name compare_names then Some Cert.Compare
  else if List.mem name conversion_names then Some Cert.Int_conversion
  else if List.mem name kink_names then Some Cert.Kink
  else None
