(** The discrete-consumer vocabulary: callee names whose application
    records an escape when tainted data flows in. *)

val compare_names : string list
val conversion_names : string list
val kink_names : string list

(** Escape kind of an application of [name], if it is in the
    vocabulary. *)
val classify : string -> Cert.escape_kind option
