(** Dynamic write-set sanitizer: the falsifier half of the race-freedom
    certification (DESIGN.md §17).

    The static pass ([lib/racefree]) proves fan-out closures write
    disjoint regions; this module hunts witnesses against those
    certificates at runtime.  While a session is {e armed}, every
    sanitized pool batch records the spans each shard writes through the
    instrumented mutation points (ndarray stores, variable restores,
    tape scratch slabs) and checks cross-shard disjointness when the
    batch joins.  Two shards of one batch touching overlapping spans of
    the same object is a witness: under some schedule those writes race.

    Recording is sampled under a per-shard span budget, so the sanitizer
    is a falsifier, not a verifier — a clean run raises confidence, a
    witness is a hard counterexample.  Everything here is standard
    library only; the pool, the ndarray layer and the tape all depend on
    this module, never the reverse. *)

(** One recorded write: the half-open element range [\[lo, hi)] of the
    object identified by [obj] (a {!fresh_id} identity), tagged with the
    instrumentation point that observed it. *)
type span = { s_obj : int; s_lo : int; s_hi : int; s_tag : string }

(** Two shards of one batch wrote overlapping spans of the same object:
    the overlap is [\[w_lo, w_hi)].  Shards are batch task indices, so a
    witness is deterministic in the inputs, not in the schedule. *)
type witness = {
  w_batch : string;  (** label of the sanitized batch *)
  w_obj : int;
  w_shard_a : int;
  w_tag_a : string;
  w_shard_b : int;
  w_tag_b : string;
  w_lo : int;
  w_hi : int;
}

val witness_to_text : witness -> string

(** Session totals returned by {!disarm}. *)
type stats = {
  batches : int;  (** sanitized batches joined while armed *)
  spans : int;  (** spans recorded across all shards *)
  dropped : int;  (** writes not recorded because a shard hit its budget *)
  witnesses : witness list;
}

(** Process-unique object identity for an instrumented mutable object.
    Thread-safe; never returns the same value twice. *)
val fresh_id : unit -> int

(** [arm ?budget ()] starts a sanitizer session: every subsequent pool
    batch records write sets ([budget] spans per shard, default 512)
    until {!disarm}.  Resets any previous session's findings. *)
val arm : ?budget:int -> unit -> unit

(** True between {!arm} and {!disarm}. *)
val armed : unit -> bool

(** End the session and return its accumulated findings. *)
val disarm : unit -> stats

(** [record ~obj ~lo ~hi ~tag] notes that the current shard wrote
    [\[lo, hi)] of [obj].  A no-op outside a sanitized shard (in
    particular: in sequential code, in un-sanitized batches, and always
    when no session is armed), so instrumentation points may call it
    unconditionally.  Adjacent and overlapping spans of the same object
    and tag coalesce in place, so element-wise loops cost one live span. *)
val record : obj:int -> lo:int -> hi:int -> tag:string -> unit

(** {1 Batch plumbing (used by [Pool]; not part of the public story)} *)

type batch

(** [batch_start ~label n] opens a sanitized batch of [n] shards. *)
val batch_start : label:string -> int -> batch

(** [in_shard b i f] runs [f ()] with writes attributed to shard [i];
    restores the previous attribution on every exit path.  Nested
    sequential work inside [f] keeps the attribution, which is exactly
    right: a nested in-worker map runs in its caller's shard. *)
val in_shard : batch -> int -> (unit -> 'a) -> 'a

(** Check cross-shard disjointness and fold the batch's findings into
    the session.  Call once, after every shard has settled. *)
val batch_join : batch -> unit
