(* Write-set sanitizer.  Design constraints, in order:

   - Zero cost when disarmed: [record] reads one domain-local slot and
     returns.  Instrumentation points stay in release builds.
   - No locking on the hot path: each shard owns its bucket, and only
     the domain running that shard's task appends to it.  The pool's
     batch join happens-after every task settles (it is ordered by the
     pool mutex), so the joining domain reads the buckets race-free.
   - Deterministic findings: shards are batch task indices, not domain
     ids, so a witness depends on the inputs, never on the schedule. *)

type span = { s_obj : int; s_lo : int; s_hi : int; s_tag : string }

type witness = {
  w_batch : string;
  w_obj : int;
  w_shard_a : int;
  w_tag_a : string;
  w_shard_b : int;
  w_tag_b : string;
  w_lo : int;
  w_hi : int;
}

let witness_to_text w =
  Printf.sprintf
    "%s: object #%d elements [%d,%d): shard %d (%s) overlaps shard %d (%s)"
    w.w_batch w.w_obj w.w_lo w.w_hi w.w_shard_a w.w_tag_a w.w_shard_b
    w.w_tag_b

type stats = {
  batches : int;
  spans : int;
  dropped : int;
  witnesses : witness list;
}

let next_id = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add next_id 1

(* ------------------------------------------------------------------ *)
(* Session                                                             *)
(* ------------------------------------------------------------------ *)

let armed_flag = Atomic.make false
let span_budget = Atomic.make 512

(* Accumulated findings; guarded by [session_mu] (touched only at arm /
   disarm / batch join, never on the write path). *)
let session_mu = Mutex.create ()
let acc_witnesses : witness list ref = ref []
let acc_batches = ref 0
let acc_spans = ref 0
let acc_dropped = ref 0

let arm ?(budget = 512) () =
  Mutex.lock session_mu;
  acc_witnesses := [];
  acc_batches := 0;
  acc_spans := 0;
  acc_dropped := 0;
  Mutex.unlock session_mu;
  Atomic.set span_budget budget;
  Atomic.set armed_flag true

let armed () = Atomic.get armed_flag

let disarm () =
  Atomic.set armed_flag false;
  Mutex.lock session_mu;
  let s =
    {
      batches = !acc_batches;
      spans = !acc_spans;
      dropped = !acc_dropped;
      witnesses = List.rev !acc_witnesses;
    }
  in
  acc_witnesses := [];
  acc_batches := 0;
  acc_spans := 0;
  acc_dropped := 0;
  Mutex.unlock session_mu;
  s

(* ------------------------------------------------------------------ *)
(* Buckets and recording                                               *)
(* ------------------------------------------------------------------ *)

type bucket = {
  shard : int;
  cap : int;
  mutable spans : span list; (* newest first *)
  mutable count : int;
  mutable b_dropped : int;
}

type batch = { label : string; buckets : bucket array }

let current : bucket option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let record ~obj ~lo ~hi ~tag =
  if hi > lo then
    match Domain.DLS.get current with
    | None -> ()
    | Some b -> (
        match b.spans with
        | s :: rest
          when s.s_obj = obj && s.s_tag = tag && lo <= s.s_hi && hi >= s.s_lo
          ->
            (* Overlapping or adjacent to the latest span: widen it, so
               element-wise fills stay one span deep. *)
            b.spans <-
              { s with s_lo = min lo s.s_lo; s_hi = max hi s.s_hi } :: rest
        | _ ->
            if b.count >= b.cap then b.b_dropped <- b.b_dropped + 1
            else begin
              b.spans <- { s_obj = obj; s_lo = lo; s_hi = hi; s_tag = tag } :: b.spans;
              b.count <- b.count + 1
            end)

let batch_start ~label n =
  let cap = Atomic.get span_budget in
  {
    label;
    buckets =
      Array.init n (fun shard ->
          { shard; cap; spans = []; count = 0; b_dropped = 0 });
  }

let in_shard batch i f =
  let old = Domain.DLS.get current in
  Domain.DLS.set current (Some batch.buckets.(i));
  Fun.protect ~finally:(fun () -> Domain.DLS.set current old) f

(* ------------------------------------------------------------------ *)
(* Join: cross-shard disjointness                                      *)
(* ------------------------------------------------------------------ *)

(* Spans annotated with their shard, sorted by (object, lo), then swept
   with an active list: a span overlaps a previously opened one iff its
   [lo] is below that span's [hi].  Same-shard overlaps are one task
   writing twice — sequential, not a race — and are skipped. *)

let max_witnesses_per_batch = 16

let batch_join batch =
  let all =
    Array.to_list batch.buckets
    |> List.concat_map (fun b -> List.rev_map (fun s -> (b.shard, s)) b.spans)
    |> List.sort (fun (_, a) (_, b) ->
           if a.s_obj <> b.s_obj then compare a.s_obj b.s_obj
           else compare (a.s_lo, a.s_hi) (b.s_lo, b.s_hi))
  in
  let witnesses = ref [] and n_witnesses = ref 0 in
  let active : (int * span) list ref = ref [] in
  let flush_obj () = active := [] in
  let last_obj = ref min_int in
  List.iter
    (fun (shard, s) ->
      if s.s_obj <> !last_obj then begin
        flush_obj ();
        last_obj := s.s_obj
      end;
      active := List.filter (fun (_, a) -> a.s_hi > s.s_lo) !active;
      List.iter
        (fun (oshard, o) ->
          if oshard <> shard && !n_witnesses < max_witnesses_per_batch then begin
            incr n_witnesses;
            witnesses :=
              {
                w_batch = batch.label;
                w_obj = s.s_obj;
                w_shard_a = min oshard shard;
                w_tag_a = (if oshard < shard then o.s_tag else s.s_tag);
                w_shard_b = max oshard shard;
                w_tag_b = (if oshard < shard then s.s_tag else o.s_tag);
                w_lo = max s.s_lo o.s_lo;
                w_hi = min s.s_hi o.s_hi;
              }
              :: !witnesses
          end)
        !active;
      active := (shard, s) :: !active)
    all;
  let spans = List.length all in
  let dropped =
    Array.fold_left (fun acc b -> acc + b.b_dropped) 0 batch.buckets
  in
  Mutex.lock session_mu;
  incr acc_batches;
  acc_spans := !acc_spans + spans;
  acc_dropped := !acc_dropped + dropped;
  acc_witnesses := List.rev_append !witnesses !acc_witnesses;
  Mutex.unlock session_mu
