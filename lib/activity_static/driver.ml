(* The static activity driver: parse an NPB kernel with compiler-libs,
   extract the {!Model}, run the abstract interpreter, and assemble one
   {!Verdict.var_verdict} per checkpoint variable.

   The verdict rule (the soundness argument lives in DESIGN.md §11):

   - declared [Always_critical]       -> Statically_active (by decree);
   - first-effect status [Untouched]  -> Statically_inactive: the
     checkpointed value is never read in the [run]/[output] cone;
   - first-effect status [Killed]     -> Statically_inactive: every
     element is overwritten before any possible read;
   - [Mayread] and the backing field reaches the output sink
                                      -> Statically_active, with an
     interval refinement when the read footprint is affine;
   - [Mayread] without a resolved path to the output -> Unknown.  (A
     missing edge may be taint lost through an opaque value, so absence
     of a path is never promoted to an inactivity claim.) *)

module Finding = Scvad_lint.Finding
module Ljson = Scvad_util.Ljson
module Regions = Scvad_checkpoint.Regions

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error _ ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum;
          message = "syntax error: the file does not parse";
          severity = Finding.Error;
        }
  | exception Lexer.Error (_, loc) ->
      Error
        {
          Finding.rule = Finding.Syntax;
          file;
          line = loc.Location.loc_start.Lexing.pos_lnum;
          message = "lexing error: the file does not parse";
          severity = Finding.Error;
        }

(* ------------------------------------------------------------------ *)
(* Verdict assembly                                                    *)
(* ------------------------------------------------------------------ *)

let whole_var (v : Model.var_decl) =
  match v.Model.v_elements with
  | Some n when n > 0 -> [ { Regions.start = 0; stop = n } ]
  | _ -> Regions.empty

(* Base verdict before pragmas, from the interpreter outcome (or from
   nothing, when the app could not be interpreted at all). *)
let base_verdict (outcome : Absint.outcome option) (v : Model.var_decl) =
  match v.Model.v_declared_critical with
  | Some why ->
      ( Verdict.Statically_active,
        Printf.sprintf "declared Always_critical (%s)" why,
        Regions.empty )
  | None -> (
      match outcome with
      | None ->
          (Verdict.Unknown, "analysis incomplete", Regions.empty)
      | Some o -> (
          match v.Model.v_field with
          | None ->
              ( Verdict.Unknown,
                "declaration not bound to a unique state field",
                Regions.empty )
          | Some f -> (
              match List.assoc_opt f o.Absint.o_status with
              | None ->
                  ( Verdict.Unknown,
                    Printf.sprintf "state field %s not tracked" f,
                    Regions.empty )
              | Some Absint.Untouched ->
                  ( Verdict.Statically_inactive,
                    "never read in the post-checkpoint cone",
                    whole_var v )
              | Some Absint.Killed ->
                  ( Verdict.Statically_inactive,
                    "fully overwritten before any read (kill-before-read)",
                    whole_var v )
              | Some Absint.Mayread ->
                  if Absint.SS.mem f o.Absint.o_reaches then
                    let refinement =
                      match
                        (v.Model.v_elements, List.assoc_opt f o.Absint.o_footprints)
                      with
                      | Some n, Some fp -> (
                          match Footprint.inactive_spans ~elements:n fp with
                          | Some r -> r
                          | None -> Regions.empty)
                      | _ -> Regions.empty
                    in
                    ( Verdict.Statically_active,
                      "read in the cone and may flow into the output",
                      refinement )
                  else
                    ( Verdict.Unknown,
                      "read in the cone; no resolved dependence path to the \
                       output (a path may exist through an opaque value)",
                      Regions.empty ))))

let var_verdict ~pragmas (outcome : Absint.outcome option)
    (v : Model.var_decl) =
  let class_, reason, inactive = base_verdict outcome v in
  let class_, reason, inactive, assumed =
    match Apragma.assume pragmas ~var:v.Model.v_name ~line:v.Model.v_line with
    | None -> (class_, reason, inactive, false)
    | Some (cls, why) ->
        let inactive =
          if cls = Verdict.Statically_inactive then whole_var v
          else Regions.empty
        in
        (cls, Printf.sprintf "assumed via pragma: %s" why, inactive, true)
  in
  {
    Verdict.var = v.Model.v_name;
    kind = v.Model.v_kind;
    class_;
    elements = v.Model.v_elements;
    inactive;
    reason;
    assumed;
  }

(* [analyze_source ~file source] is [None] when the file declares no
   NPB app (shared modules like adi_common.ml); findings carry pragma
   problems either way. *)
let analyze_source ~file source =
  let pragmas, pragma_errors = Apragma.scan ~file source in
  match parse ~file source with
  | Error f -> (None, [ f ])
  | Ok ast -> (
      let m = Model.of_structure ~file ast in
      match m.Model.app_name with
      | None -> (None, pragma_errors)
      | Some app ->
          let outcome, resolved, extra_notes =
            match Absint.analyze m with
            | o -> (Some o, true, o.Absint.o_notes)
            | exception Absint.Incomplete msg ->
                (None, false, [ Printf.sprintf "analysis incomplete: %s" msg ])
          in
          let vars = List.map (var_verdict ~pragmas outcome) m.Model.vars in
          let av =
            {
              Verdict.app;
              source = file;
              resolved;
              vars;
              notes = List.rev m.Model.notes @ extra_notes;
            }
          in
          (Some av, pragma_errors @ Apragma.unused pragmas))

let analyze_file file =
  let source = read_file file in
  analyze_source ~file source

let analyze_files files =
  List.fold_left
    (fun (apps, findings) file ->
      let app, fs = analyze_file file in
      let apps = match app with Some a -> apps @ [ a ] | None -> apps in
      (apps, findings @ fs))
    ([], []) files

let analyze_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  analyze_files files

(* Walk up from [cwd] (or the current directory) to the dune-project
   root and return its lib/npb directory, so the tool works from any
   build or sandbox directory. *)
let locate_npb_dir ?cwd () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then
      let npb = Filename.concat (Filename.concat dir "lib") "npb" in
      if Sys.file_exists npb && Sys.is_directory npb then Some npb else None
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (match cwd with Some d -> d | None -> Sys.getcwd ())

(* ------------------------------------------------------------------ *)
(* Soundness gate support                                              *)
(* ------------------------------------------------------------------ *)

(* [unsound_claims av ~masks] checks every inactivity claim of one app
   against dynamically-computed criticality masks ([true] = critical;
   one mask per variable, element-indexed).  Returns, per offending
   variable, the critical element indices that the static pass claimed
   inactive (capped at 8 per variable for reporting). *)
let unsound_claims (av : Verdict.app_verdicts) ~masks =
  List.filter_map
    (fun (v : Verdict.var_verdict) ->
      match List.assoc_opt v.Verdict.var masks with
      | None -> None
      | Some mask ->
          let bad = ref [] and nbad = ref 0 in
          let claim idx =
            if idx >= 0 && idx < Array.length mask && mask.(idx) then begin
              incr nbad;
              if !nbad <= 8 then bad := idx :: !bad
            end
          in
          (if v.Verdict.class_ = Verdict.Statically_inactive then
             Array.iteri (fun idx critical -> if critical then claim idx) mask
           else Regions.iter_elements v.Verdict.inactive claim);
          if !nbad = 0 then None
          else Some (v.Verdict.var, (!nbad, List.rev !bad)))
    av.Verdict.vars

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_text (vs : Verdict.verdicts) (findings : Finding.t list) =
  let b = Buffer.create 2048 in
  List.iter
    (fun (a : Verdict.app_verdicts) ->
      Buffer.add_string b
        (Printf.sprintf "%s (%s)%s\n" a.Verdict.app a.Verdict.source
           (if a.Verdict.resolved then "" else "  [unresolved]"));
      List.iter
        (fun (v : Verdict.var_verdict) ->
          let inactive =
            match Verdict.inactive_elements v with
            | 0 -> ""
            | n ->
                let nregions = Regions.count_regions v.Verdict.inactive in
                let shown =
                  if nregions <= 8 then Regions.to_string v.Verdict.inactive
                  else
                    let prefix =
                      List.filteri (fun i _ -> i < 4)
                        (Regions.spans v.Verdict.inactive)
                    in
                    Printf.sprintf "%s,… %d regions"
                      (Regions.to_string prefix) nregions
                in
                Printf.sprintf "  inactive %d%s [%s]" n
                  (match v.Verdict.elements with
                  | Some total -> Printf.sprintf "/%d" total
                  | None -> "")
                  shown
          in
          Buffer.add_string b
            (Printf.sprintf "  %-12s %-5s %-19s%s — %s%s\n" v.Verdict.var
               (Verdict.kind_name v.Verdict.kind)
               (Verdict.class_name v.Verdict.class_)
               inactive v.Verdict.reason
               (if v.Verdict.assumed then " [assumed]" else "")))
        a.Verdict.vars;
      List.iter
        (fun n -> Buffer.add_string b (Printf.sprintf "  note: %s\n" n))
        a.Verdict.notes)
    vs;
  List.iter
    (fun f -> Buffer.add_string b (Finding.to_text f ^ "\n"))
    findings;
  let inactive = Verdict.total_inactive_claims vs in
  Buffer.add_string b
    (Printf.sprintf "%d app%s analyzed, %d element%s proven inactive.\n"
       (List.length vs)
       (if List.length vs = 1 then "" else "s")
       inactive
       (if inactive = 1 then "" else "s"));
  Buffer.contents b

let json_of_spans (r : Regions.t) =
  Ljson.Arr
    (List.map
       (fun (s : Regions.span) -> Ljson.Arr [ Ljson.Int s.start; Ljson.Int s.stop ])
       (Regions.spans r))

let json_of_var (v : Verdict.var_verdict) =
  Ljson.Obj
    [
      ("var", Ljson.Str v.Verdict.var);
      ("kind", Ljson.Str (Verdict.kind_name v.Verdict.kind));
      ("class", Ljson.Str (Verdict.class_name v.Verdict.class_));
      ( "elements",
        match v.Verdict.elements with Some n -> Ljson.Int n | None -> Ljson.Null
      );
      ("inactive", json_of_spans v.Verdict.inactive);
      ("inactive_elements", Ljson.Int (Verdict.inactive_elements v));
      ("reason", Ljson.Str v.Verdict.reason);
      ("assumed", Ljson.Bool v.Verdict.assumed);
    ]

let json_of_finding (f : Finding.t) =
  Ljson.Obj
    [
      ("rule", Ljson.Str (Finding.rule_name f.Finding.rule));
      ("file", Ljson.Str f.Finding.file);
      ("line", Ljson.Int f.Finding.line);
      ("severity", Ljson.Str (Finding.severity_name f.Finding.severity));
      ("message", Ljson.Str f.Finding.message);
    ]

let render_json (vs : Verdict.verdicts) (findings : Finding.t list) =
  Ljson.to_string
    (Ljson.Obj
       [
         ("version", Ljson.Int 1);
         ( "apps",
           Ljson.Arr
             (List.map
                (fun (a : Verdict.app_verdicts) ->
                  Ljson.Obj
                    [
                      ("app", Ljson.Str a.Verdict.app);
                      ("source", Ljson.Str a.Verdict.source);
                      ("resolved", Ljson.Bool a.Verdict.resolved);
                      ("vars", Ljson.Arr (List.map json_of_var a.Verdict.vars));
                      ( "notes",
                        Ljson.Arr
                          (List.map (fun n -> Ljson.Str n) a.Verdict.notes) );
                    ])
                vs) );
         ("inactive_elements", Ljson.Int (Verdict.total_inactive_claims vs));
         ("findings", Ljson.Arr (List.map json_of_finding findings));
       ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* JSON parse-back (fixture round-trip + report consumers)             *)
(* ------------------------------------------------------------------ *)

let jstr key j =
  match Ljson.member key j with
  | Some (Ljson.Str s) -> s
  | _ -> failwith (Printf.sprintf "verdicts_of_json: missing string %S" key)

let jbool key j =
  match Ljson.member key j with
  | Some (Ljson.Bool v) -> v
  | _ -> failwith (Printf.sprintf "verdicts_of_json: missing bool %S" key)

let jarr key j =
  match Ljson.member key j with
  | Some (Ljson.Arr items) -> items
  | _ -> failwith (Printf.sprintf "verdicts_of_json: missing array %S" key)

let var_of_json j =
  let class_ =
    match Verdict.class_of_name (jstr "class" j) with
    | Some c -> c
    | None -> failwith "verdicts_of_json: unknown class"
  in
  let kind =
    match jstr "kind" j with
    | "float" -> Verdict.Float_var
    | "int" -> Verdict.Int_var
    | k -> failwith (Printf.sprintf "verdicts_of_json: unknown kind %S" k)
  in
  let elements =
    match Ljson.member "elements" j with
    | Some (Ljson.Int n) -> Some n
    | _ -> None
  in
  let inactive =
    List.map
      (function
        | Ljson.Arr [ Ljson.Int start; Ljson.Int stop ] ->
            { Regions.start; stop }
        | _ -> failwith "verdicts_of_json: malformed span")
      (jarr "inactive" j)
  in
  {
    Verdict.var = jstr "var" j;
    kind;
    class_;
    elements;
    inactive;
    reason = jstr "reason" j;
    assumed = jbool "assumed" j;
  }

let verdicts_of_json s =
  let j = Ljson.of_string s in
  List.map
    (fun app ->
      {
        Verdict.app = jstr "app" app;
        source = jstr "source" app;
        resolved = jbool "resolved" app;
        vars = List.map var_of_json (jarr "vars" app);
        notes =
          List.map
            (function
              | Ljson.Str s -> s
              | _ -> failwith "verdicts_of_json: malformed note")
            (jarr "notes" app);
      })
    (jarr "apps" j)
