(** Known-call classification for the abstract interpreter.  Anything
    not in the table is an [Unknown_call] and is handled with full
    conservatism (arguments read, array arguments also written, result
    tainted by every argument). *)

type hof = Iter | Iteri | Map | Fold

type t =
  | Pure
  | Array_get
  | Array_set
  | Array_length
  | Array_alloc
  | Array_init
  | Array_hof of hof
  | Array_fill
  | Array_blit
  | Array_sort
  | Deref
  | Assign
  | Incr
  | Ref_make
  | Ignore
  | Raise
  | Vranlc
  | Unknown_call

(** [classify ~pure_module path] classifies a flattened callee path;
    [pure_module m] is true for Scalar.S functor parameters, whose
    operations are pure value computations. *)
val classify : pure_module:(string -> bool) -> string list -> t
