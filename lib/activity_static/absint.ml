(* Conservative abstract interpretation of one kernel's post-checkpoint
   cone — [run] followed by [output] — over the extracted {!Model}.

   Three over-approximations are computed in a single walk:

   - a per-field *first-effect* status (the kill-before-read lattice):
     [Untouched] (never observed), [Killed] (fully overwritten before
     any read — EP's [buffer] under [vranlc]), [Mayread] (a read may
     observe the checkpointed value).  Branches join pessimistically
     and loop bodies are conservative about zero-trip execution, so
     [Killed]/[Untouched] are *proofs* of non-consumption;
   - a flow-insensitive dependence edge graph between state fields and
     the synthetic [@output] sink, whose backward closure is the
     may-influence set;
   - per-field read *footprints*: every array read resolved to an index
     expression affine in constant-range loop counters, or [Top] when
     any read is unresolvable (data-dependent subscripts, unknown
     bounds).

   Everything unrecognized degrades toward [Mayread]/[Top]/more edges,
   never the other way; {!Incomplete} aborts the whole app to Unknown
   when even that is impossible (missing [run]/[output], fuel
   exhaustion). *)

open Parsetree
module SS = Set.Make (String)
module SM = Map.Make (String)

exception Incomplete of string

type feffect = Untouched | Killed | Mayread

let feffect_name = function
  | Untouched -> "untouched"
  | Killed -> "killed"
  | Mayread -> "may-read"

(* A resolved affine read site: base + Σ coeff·v over loop counters
   with inclusive ranges. *)
type site = { s_base : int; s_terms : (int * int * int) list }

type footprint = Sites of site list | Top

(* ---- abstract values ------------------------------------------------- *)

type iexpr =
  | Const of int
  | Affine of int * (int * int) list  (* base, (loop-var id, coeff) *)
  | Iunknown

type value = { taint : SS.t; sh : shape; ie : iexpr }

and shape =
  | Scalar_sh
  | Field_arr of string
  | Local_arr of cell
  | State_sh
  | Ref_sh of cell
  | Closure_sh of closure

and cell = { mutable c_val : value }

and closure = {
  cl_params : (Asttypes.arg_label * pattern) list;
  cl_body : expression;
  cl_env : value SM.t;
  cl_rec : string option;
}

let opaque = { taint = SS.empty; sh = Scalar_sh; ie = Iunknown }
let scalar ?(ie = Iunknown) taint = { taint; sh = Scalar_sh; ie }

(* ---- affine arithmetic ----------------------------------------------- *)

let norm_terms terms =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (id, c) ->
      let prev = match Hashtbl.find_opt tbl id with Some p -> p | None -> 0 in
      Hashtbl.replace tbl id (prev + c))
    terms;
  Hashtbl.fold (fun id c acc -> if c = 0 then acc else (id, c) :: acc) tbl []
  |> List.sort compare

let iadd a b =
  match (a, b) with
  | Const x, Const y -> Const (x + y)
  | Const x, Affine (base, ts) | Affine (base, ts), Const x ->
      Affine (base + x, ts)
  | Affine (b1, t1), Affine (b2, t2) -> (
      match norm_terms (t1 @ t2) with
      | [] -> Const (b1 + b2)
      | ts -> Affine (b1 + b2, ts))
  | _ -> Iunknown

let ineg = function
  | Const x -> Const (-x)
  | Affine (base, ts) -> Affine (-base, List.map (fun (id, c) -> (id, -c)) ts)
  | Iunknown -> Iunknown

let isub a b = iadd a (ineg b)

let imul a b =
  match (a, b) with
  | Const x, Const y -> Const (x * y)
  | Const k, Affine (base, ts) | Affine (base, ts), Const k ->
      if k = 0 then Const 0
      else Affine (base * k, List.map (fun (id, c) -> (id, c * k)) ts)
  | _ -> Iunknown

let ishift a b =
  match (a, b) with
  | _, Const k when k < 0 || k > 30 -> Iunknown
  | _, Const k -> imul a (Const (1 lsl k))
  | _ -> Iunknown

(* ---- analysis context ------------------------------------------------ *)

type ctx = {
  model : Model.t;
  mutable status : feffect SM.t;
  edges : (string, SS.t ref) Hashtbl.t;  (* dst -> sources *)
  ranges : (int, int * int) Hashtbl.t;  (* loop-var id -> inclusive range *)
  sites : (string, site list ref) Hashtbl.t;
  tops : (string, unit) Hashtbl.t;
  mutable notes : string list;
  mutable fuel : int;
  mutable depth : int;
  mutable next_id : int;
}

let note ctx msg =
  if not (List.mem msg ctx.notes) then ctx.notes <- ctx.notes @ [ msg ]

let fields_of ctx =
  Hashtbl.fold (fun f _ acc -> f :: acc) ctx.model.Model.fields []

let read_field ctx f =
  match SM.find_opt f ctx.status with
  | Some Untouched -> ctx.status <- SM.add f Mayread ctx.status
  | _ -> ()

let kill_field ctx f =
  match SM.find_opt f ctx.status with
  | Some Untouched -> ctx.status <- SM.add f Killed ctx.status
  | _ -> ()

let add_edge ctx srcs dst =
  if not (SS.is_empty srcs) then
    match Hashtbl.find_opt ctx.edges dst with
    | Some r -> r := SS.union !r srcs
    | None -> Hashtbl.add ctx.edges dst (ref srcs)

let mark_top ctx f = Hashtbl.replace ctx.tops f ()

let record_site ctx f ie =
  if not (Hashtbl.mem ctx.tops f) then
    let resolved =
      match ie with
      | Const c -> Some { s_base = c; s_terms = [] }
      | Affine (base, terms) ->
          List.fold_left
            (fun acc (id, coeff) ->
              match (acc, Hashtbl.find_opt ctx.ranges id) with
              | Some site, Some (lo, hi) ->
                  Some { site with s_terms = (coeff, lo, hi) :: site.s_terms }
              | _ -> None)
            (Some { s_base = base; s_terms = [] })
            terms
      | Iunknown -> None
    in
    match resolved with
    | Some site -> (
        match Hashtbl.find_opt ctx.sites f with
        | Some r -> r := site :: !r
        | None -> Hashtbl.add ctx.sites f (ref [ site ]))
    | None -> mark_top ctx f

(* An element read of field [f] at abstract index [ie]. *)
let read_elem ctx f ie =
  read_field ctx f;
  record_site ctx f ie

(* A whole-array read (HOF traversal, escape to an unknown callee). *)
let read_all ctx f =
  read_field ctx f;
  mark_top ctx f

(* The state record escaped into code we cannot see: every field may be
   read and written, with arbitrary cross-field flow. *)
let state_escape ctx what =
  note ctx
    (Printf.sprintf "state escaped to %s: all fields conservative" what);
  let fields = fields_of ctx in
  let all = SS.of_list fields in
  List.iter
    (fun f ->
      read_all ctx f;
      add_edge ctx all f)
    fields;
  all

(* Taints reachable through a value, descending refs and local
   arrays. *)
let rec deep_taint v =
  match v.sh with
  | Ref_sh c | Local_arr c -> SS.union v.taint (deep_taint c.c_val)
  | Field_arr f -> SS.add f v.taint
  | _ -> v.taint

(* A value flowing somewhere opaque: arrays are fully read, state
   escapes. *)
let rec use_value ctx v =
  (match v.sh with
  | Field_arr f -> read_all ctx f
  | State_sh -> ignore (state_escape ctx "an opaque context")
  | Ref_sh c -> ignore (use_value ctx c.c_val)
  | Local_arr _ | Closure_sh _ | Scalar_sh -> ());
  deep_taint v

let rec join_value ctx a b =
  let taint = SS.union a.taint b.taint in
  let ie = if a.ie = b.ie then a.ie else Iunknown in
  let sh =
    match (a.sh, b.sh) with
    | Field_arr x, Field_arr y when x = y -> a.sh
    | Local_arr ca, Local_arr cb ->
        if ca != cb then ca.c_val <- join_raw ca.c_val cb.c_val;
        a.sh
    | State_sh, State_sh -> State_sh
    | Ref_sh ca, Ref_sh cb ->
        if ca != cb then ca.c_val <- join_raw ca.c_val cb.c_val;
        a.sh
    | x, y when x == y -> x
    | x, y ->
        (* Shapes disagree: conservatively consume both sides so no
           array identity is silently lost. *)
        if x <> Scalar_sh then ignore (use_value ctx a);
        if y <> Scalar_sh then ignore (use_value ctx b);
        Scalar_sh
  in
  { taint; sh; ie }

and join_raw a b =
  (* Structural join for cell contents where no ctx is at hand: only
     taints merge; shape keeps the first side. *)
  { a with taint = SS.union a.taint b.taint }

let cell_join ctx c v =
  c.c_val <- join_value ctx c.c_val v

(* ---- pattern binding ------------------------------------------------- *)

let pattern_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it' (p : pattern) ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it' p);
    }
  in
  it.pat it p;
  List.rev !acc

let rec bind_pattern env (p : pattern) v =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> SM.add txt v env
  | Ppat_constraint (inner, _) -> bind_pattern env inner v
  | Ppat_alias (inner, { txt; _ }) -> bind_pattern (SM.add txt v env) inner v
  | Ppat_any -> env
  | _ ->
      (* Destructuring loses shape but keeps taint. *)
      List.fold_left
        (fun env name -> SM.add name (scalar v.taint) env)
        env (pattern_vars p)

(* ---- the interpreter ------------------------------------------------- *)

let direct_children (e : expression) =
  let acc = ref [] in
  let collector =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ ce -> acc := ce :: !acc);
    }
  in
  Ast_iterator.default_iterator.expr collector e;
  List.rev !acc

let loop_passes = 3
let max_depth = 80

let rec interp ctx env (e : expression) : value =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then raise (Incomplete "interpretation fuel exhausted");
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (text, None)) -> (
      match int_of_string_opt text with
      | Some v -> { taint = SS.empty; sh = Scalar_sh; ie = Const v }
      | None -> opaque)
  | Pexp_constant _ -> opaque
  | Pexp_ident { txt; _ } -> eval_ident ctx env txt
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) ->
      interp ctx env inner
  | Pexp_open (_, body) -> interp ctx env body
  | Pexp_sequence (a, b) ->
      ignore (interp ctx env a);
      interp ctx env b
  | Pexp_let (rec_flag, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc vb ->
            let v =
              match split_closure ctx env rec_flag vb with
              | Some c -> { taint = SS.empty; sh = Closure_sh c; ie = Iunknown }
              | None -> interp ctx env vb.pvb_expr
            in
            bind_pattern acc vb.pvb_pat v)
          env vbs
      in
      interp ctx env' body
  | Pexp_fun _ | Pexp_function _ -> (
      match split_closure_expr ctx env e with
      | Some c -> { taint = SS.empty; sh = Closure_sh c; ie = Iunknown }
      | None -> opaque)
  | Pexp_field (base, { txt; _ }) -> eval_field ctx env base txt
  | Pexp_setfield (base, { txt; _ }, rhs) ->
      let bv = interp ctx env base in
      let rv = interp ctx env rhs in
      let f = Model.last_segment txt in
      (match bv.sh with
      | State_sh when Model.is_state_field ctx.model f ->
          (* Whole-field overwrite: scalar fields are fully killed. *)
          kill_field ctx f;
          add_edge ctx (deep_taint rv) f
      | State_sh -> ignore (state_escape ctx "a set of an unknown field")
      | _ -> ignore (use_value ctx rv));
      { opaque with taint = SS.empty }
  | Pexp_ifthenelse (cond, then_e, else_e) ->
      let cv = interp ctx env cond in
      let before = ctx.status in
      let tv = interp ctx env then_e in
      let after_then = ctx.status in
      ctx.status <- before;
      let ev =
        match else_e with Some b -> interp ctx env b | None -> opaque
      in
      let after_else = ctx.status in
      ctx.status <- merge_status after_then after_else;
      let v = join_value ctx tv ev in
      { v with taint = SS.union v.taint cv.taint }
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let sv = interp ctx env scrut in
      interp_cases ctx env sv cases
  | Pexp_while (cond, body) ->
      interp_loop ctx env ~var:None ~cond:(Some cond) body
  | Pexp_for (pat, lo, hi, dir, body) ->
      let lov = interp ctx env lo in
      let hiv = interp ctx env hi in
      let var =
        match (lov.ie, hiv.ie) with
        | Const a, Const b ->
            let lo, hi =
              match dir with Asttypes.Upto -> (a, b) | Downto -> (b, a)
            in
            let id = ctx.next_id in
            ctx.next_id <- id + 1;
            Hashtbl.replace ctx.ranges id (lo, hi);
            Some
              ( pat,
                {
                  taint = SS.union lov.taint hiv.taint;
                  sh = Scalar_sh;
                  ie = Affine (0, [ (id, 1) ]);
                } )
        | _ -> Some (pat, scalar (SS.union lov.taint hiv.taint))
      in
      interp_loop ctx env ~var ~cond:None body
  | Pexp_apply (fn, args) -> interp_apply ctx env fn args
  | Pexp_tuple parts ->
      (* Components escape into a structure we do not track: consume
         them, so an array boxed here is still counted as read. *)
      let taint =
        List.fold_left
          (fun acc p -> SS.union acc (use_value ctx (interp ctx env p)))
          SS.empty parts
      in
      scalar taint
  | Pexp_construct (_, None) -> opaque
  | Pexp_construct (_, Some arg) ->
      let v = interp ctx env arg in
      scalar (use_value ctx v)
  | Pexp_array parts ->
      let elem =
        List.fold_left
          (fun acc p -> join_value ctx acc (interp ctx env p))
          opaque parts
      in
      { taint = SS.empty; sh = Local_arr { c_val = elem }; ie = Iunknown }
  | Pexp_assert cond ->
      ignore (interp ctx env cond);
      opaque
  | Pexp_lazy body -> interp ctx env body
  | Pexp_record (fields, base) ->
      let taint =
        List.fold_left
          (fun acc (_, fv) -> SS.union acc (use_value ctx (interp ctx env fv)))
          SS.empty fields
      in
      let taint =
        match base with
        | Some b -> SS.union taint (deep_taint (interp ctx env b))
        | None -> taint
      in
      scalar taint
  | _ ->
      (* Fallback for constructs outside the modeled fragment: interpret
         every direct child and consume the results conservatively. *)
      let taint =
        List.fold_left
          (fun acc ce -> SS.union acc (use_value ctx (interp ctx env ce)))
          SS.empty (direct_children e)
      in
      scalar taint

and merge_status a b =
  SM.merge
    (fun _ sa sb ->
      match (sa, sb) with
      | Some Mayread, _ | _, Some Mayread -> Some Mayread
      | Some Killed, Some Killed -> Some Killed
      | _ -> Some Untouched)
    a b

and interp_cases ctx env sv cases =
  (* Cases are merged against each other AND against the fall-through
     state, so a kill inside a branch never survives the join (the
     branch may not be the one taken — for [try] the body may not even
     raise). *)
  let before = ctx.status in
  let v, status =
    List.fold_left
      (fun (av, astatus) (case : case) ->
        ctx.status <- before;
        let env' =
          List.fold_left
            (fun env name -> SM.add name (scalar sv.taint) env)
            env
            (pattern_vars case.pc_lhs)
        in
        (match case.pc_guard with
        | Some g -> ignore (interp ctx env' g)
        | None -> ());
        let v = interp ctx env' case.pc_rhs in
        (join_value ctx av v, merge_status astatus ctx.status))
      (sv, before) cases
  in
  ctx.status <- status;
  { v with taint = SS.union v.taint sv.taint }

(* Loop bodies run a bounded number of passes (local taints converge
   through ref cells), then the first-effect map is merged against the
   pre-loop state: a kill inside a possibly-zero-trip loop does not
   survive it, a may-read does. *)
and interp_loop ctx env ~var ~cond body =
  let before = ctx.status in
  let env' =
    match var with
    | Some (pat, v) -> bind_pattern env pat v
    | None -> env
  in
  for _pass = 1 to loop_passes do
    (match cond with Some c -> ignore (interp ctx env' c) | None -> ());
    ignore (interp ctx env' body)
  done;
  let after = ctx.status in
  ctx.status <-
    SM.merge
      (fun _ pre post ->
        match post with Some Mayread -> Some Mayread | _ -> pre)
      before after;
  opaque

and split_closure ctx env rec_flag vb =
  match (Model.binding_name_of vb.pvb_pat, vb.pvb_expr.pexp_desc) with
  | Some name, (Pexp_fun _ | Pexp_function _) -> (
      match split_closure_expr ctx env vb.pvb_expr with
      | Some c ->
          Some
            {
              c with
              cl_rec =
                (if rec_flag = Asttypes.Recursive then Some name else None);
            }
      | None -> None)
  | _ -> None

and split_closure_expr _ctx env (e : expression) =
  let rec peel params (e : expression) =
    match e.pexp_desc with
    | Pexp_fun (label, _, pat, body) -> peel ((label, pat) :: params) body
    | Pexp_newtype (_, body) -> peel params body
    | _ -> (List.rev params, e)
  in
  match peel [] e with
  | [], _ -> None
  | params, body ->
      Some { cl_params = params; cl_body = body; cl_env = env; cl_rec = None }

and eval_ident ctx env (lid : Longident.t) =
  match lid with
  | Longident.Lident name -> (
      match SM.find_opt name env with
      | Some v -> v
      | None -> (
          match Model.find_fn ctx.model name with
          | Some fn ->
              {
                taint = SS.empty;
                sh =
                  Closure_sh
                    {
                      cl_params = fn.Model.fn_params;
                      cl_body = fn.Model.fn_body;
                      cl_env = SM.empty;
                      cl_rec = Some name;
                    };
                ie = Iunknown;
              }
          | None -> (
              match Hashtbl.find_opt ctx.model.Model.consts name with
              | Some c -> { taint = SS.empty; sh = Scalar_sh; ie = Const c }
              | None -> opaque)))
  | _ -> (
      let segs = Model.flatten lid in
      match segs with
      | head :: _ when Hashtbl.mem ctx.model.Model.local_modules head -> (
          let last = Model.last_segment lid in
          match Model.find_fn ctx.model last with
          | Some fn ->
              {
                taint = SS.empty;
                sh =
                  Closure_sh
                    {
                      cl_params = fn.Model.fn_params;
                      cl_body = fn.Model.fn_body;
                      cl_env = SM.empty;
                      cl_rec = Some last;
                    };
                ie = Iunknown;
              }
          | None -> (
              match Hashtbl.find_opt ctx.model.Model.consts last with
              | Some c -> { taint = SS.empty; sh = Scalar_sh; ie = Const c }
              | None -> opaque))
      | _ -> opaque)

and eval_field ctx env base (lid : Longident.t) =
  let bv = interp ctx env base in
  let f = Model.last_segment lid in
  match bv.sh with
  | State_sh ->
      if Model.is_state_field ctx.model f then
        if Hashtbl.find ctx.model.Model.fields f then
          (* Array field: a handle, not yet a read. *)
          { taint = SS.empty; sh = Field_arr f; ie = Iunknown }
        else begin
          (* A scalar read consumes the whole (one-element) value. *)
          read_all ctx f;
          scalar (SS.singleton f)
        end
      else begin
        ignore (state_escape ctx (Printf.sprintf "unknown field %s" f));
        scalar (SS.singleton f)
      end
  | Ref_sh c when f = "contents" -> c.c_val
  | _ ->
      (* Field of a non-state record (CG's [st.matrix.n]): taint flows
         through, structure is opaque. *)
      scalar bv.taint

and interp_apply ctx env fn args =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let fnv =
        (* Locals shadow everything (a closure parameter named like a
           builtin must win). *)
        match txt with
        | Longident.Lident name -> SM.find_opt name env
        | _ -> None
      in
      match fnv with
      | Some v -> apply_value ctx env v args
      | None -> (
          let path = Model.flatten txt in
          let pure_module m =
            Hashtbl.mem ctx.model.Model.pure_modules m
          in
          match Effects.classify ~pure_module path with
          | Effects.Pure -> apply_pure ctx env path args
          | Effects.Array_get -> apply_array_get ctx env args
          | Effects.Array_set -> apply_array_set ctx env args
          | Effects.Array_length -> apply_array_length ctx env args
          | Effects.Array_alloc -> apply_array_alloc ctx env args
          | Effects.Array_init -> apply_array_init ctx env args
          | Effects.Array_hof h -> apply_hof ctx env h args
          | Effects.Array_fill -> apply_array_fill ctx env args
          | Effects.Array_blit -> apply_array_blit ctx env args
          | Effects.Array_sort -> apply_array_sort ctx env args
          | Effects.Deref -> apply_deref ctx env args
          | Effects.Assign -> apply_assign ctx env args
          | Effects.Incr -> apply_incr ctx env args
          | Effects.Ref_make -> apply_ref_make ctx env args
          | Effects.Ignore ->
              List.iter (fun (_, a) -> ignore (interp ctx env a)) args;
              opaque
          | Effects.Raise ->
              List.iter (fun (_, a) -> ignore (interp ctx env a)) args;
              opaque
          | Effects.Vranlc -> apply_vranlc ctx env args
          | Effects.Unknown_call -> (
              (* A locally-defined function, or truly unknown code. *)
              match resolve_local_fn ctx txt with
              | Some c ->
                  apply_value ctx env
                    { taint = SS.empty; sh = Closure_sh c; ie = Iunknown }
                    args
              | None -> unknown_call ctx (eval_args ctx env args))))
  | _ ->
      let fnv = interp ctx env fn in
      apply_value ctx env fnv args

and resolve_local_fn ctx (lid : Longident.t) =
  let resolvable =
    match lid with
    | Longident.Lident _ -> true
    | _ -> (
        match Model.flatten lid with
        | head :: _ -> Hashtbl.mem ctx.model.Model.local_modules head
        | [] -> false)
  in
  if not resolvable then None
  else
    let last = Model.last_segment lid in
    match Model.find_fn ctx.model last with
    | Some fn ->
        Some
          {
            cl_params = fn.Model.fn_params;
            cl_body = fn.Model.fn_body;
            cl_env = SM.empty;
            cl_rec = Some last;
          }
    | None -> None

and eval_args ctx env args =
  List.map (fun (label, a) -> (label, interp ctx env a)) args

and positional vals =
  List.filter_map
    (fun (label, v) ->
      match label with Asttypes.Nolabel -> Some v | _ -> None)
    vals

(* Apply a value (closure or opaque) to arguments. *)
and apply_value ctx env fnv args =
  let vals = eval_args ctx env args in
  match fnv.sh with
  | Closure_sh c -> apply_closure ctx c vals
  | Ref_sh cell -> (
      match cell.c_val.sh with
      | Closure_sh c -> apply_closure ctx c vals
      | _ -> unknown_call ctx vals)
  | _ ->
      ignore env;
      unknown_call ctx vals

and apply_closure ctx c vals =
  if ctx.depth >= max_depth then begin
    note ctx "call depth limit hit: treating a call conservatively";
    unknown_call ctx vals
  end
  else begin
    ctx.depth <- ctx.depth + 1;
    let result = apply_closure_inner ctx c vals in
    ctx.depth <- ctx.depth - 1;
    result
  end

and apply_closure_inner ctx c vals =
  let env =
    match c.cl_rec with
    | Some name ->
        SM.add name
          { taint = SS.empty; sh = Closure_sh c; ie = Iunknown }
          c.cl_env
    | None -> c.cl_env
  in
  (* Match labelled arguments to labelled parameters, positionals in
     order. *)
  let labelled_vals =
    List.filter_map
      (fun (label, v) ->
        match label with
        | Asttypes.Labelled l | Asttypes.Optional l -> Some (l, v)
        | Asttypes.Nolabel -> None)
      vals
  in
  let pos_vals = ref (positional vals) in
  let take_pos () =
    match !pos_vals with
    | v :: rest ->
        pos_vals := rest;
        Some v
    | [] -> None
  in
  let rec bind env params =
    match params with
    | [] -> (env, [])
    | (label, pat) :: rest -> (
        let arg =
          match label with
          | Asttypes.Labelled l | Asttypes.Optional l ->
              List.assoc_opt l labelled_vals
          | Asttypes.Nolabel -> take_pos ()
        in
        match arg with
        | Some v -> bind (bind_pattern env pat v) rest
        | None -> (
            match label with
            | Asttypes.Optional _ -> bind (bind_pattern env pat opaque) rest
            | _ ->
                (* Partial application. *)
                (env, params)))
  in
  let env, remaining = bind env c.cl_params in
  if remaining <> [] then
    {
      taint = SS.empty;
      sh = Closure_sh { c with cl_params = remaining; cl_env = env };
      ie = Iunknown;
    }
  else
    let result = interp ctx env c.cl_body in
    match !pos_vals with
    | [] -> result
    | extra -> (
        (* Over-application: the result must itself be a function. *)
        match result.sh with
        | Closure_sh c' -> apply_closure ctx c' (List.map (fun v -> (Asttypes.Nolabel, v)) extra)
        | _ -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) extra))

(* Unknown callee: every argument is consumed, array arguments are also
   written (with cross-argument flow), closures may be invoked by the
   callee (so their bodies run once against opaque arguments), state
   escapes. *)
and unknown_call ctx vals =
  let taints =
    List.fold_left
      (fun acc (_, v) -> SS.union acc (use_value ctx v))
      SS.empty vals
  in
  let taints =
    List.fold_left
      (fun acc (_, v) ->
        match v.sh with
        | State_sh -> SS.union acc (state_escape ctx "an unknown call")
        | Closure_sh c -> SS.union acc (deep_taint (force_closure ctx c))
        | _ -> acc)
      taints vals
  in
  List.iter
    (fun (_, v) ->
      match v.sh with
      | Field_arr f -> add_edge ctx taints f
      | Local_arr cell -> cell_join ctx cell (scalar taints)
      | Ref_sh cell -> cell_join ctx cell (scalar taints)
      | _ -> ())
    vals;
  scalar taints

(* A closure handed to unknown code may be invoked with anything:
   interpret its body once, all parameters opaque, so the reads and
   writes it performs are still observed. *)
and force_closure ctx c =
  apply_closure ctx c
    (List.map (fun (label, _) -> (label, opaque)) c.cl_params)

and apply_pure ctx env path args =
  let vals = eval_args ctx env args in
  let taint =
    List.fold_left (fun acc (_, v) -> SS.union acc (deep_taint v)) SS.empty vals
  in
  let ie =
    let name = match List.rev path with n :: _ -> n | [] -> "" in
    match (name, positional vals) with
    | "+", [ a; b ] -> iadd a.ie b.ie
    | "-", [ a; b ] -> isub a.ie b.ie
    | "*", [ a; b ] -> imul a.ie b.ie
    | "lsl", [ a; b ] -> ishift a.ie b.ie
    | "~-", [ a ] -> ineg a.ie
    | ("min" | "max"), [ a; b ] -> (
        match (a.ie, b.ie) with
        | Const x, Const y -> Const (if name = "min" then min x y else max x y)
        | _ -> Iunknown)
    | _ -> Iunknown
  in
  { taint; sh = Scalar_sh; ie }

and apply_array_get ctx env args =
  match positional (eval_args ctx env args) with
  | [ arr; idx ] -> (
      match arr.sh with
      | Field_arr f ->
          read_elem ctx f idx.ie;
          scalar (SS.union (SS.add f arr.taint) idx.taint)
      | Local_arr cell ->
          {
            cell.c_val with
            taint =
              SS.union (deep_taint cell.c_val)
                (SS.union arr.taint idx.taint);
          }
      | _ -> scalar (SS.union arr.taint idx.taint))
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_array_set ctx env args =
  match positional (eval_args ctx env args) with
  | [ arr; idx; v ] ->
      let srcs = SS.union (deep_taint v) idx.taint in
      (match arr.sh with
      | Field_arr f -> add_edge ctx srcs f
      | Local_arr cell -> cell_join ctx cell { v with taint = srcs }
      | _ -> ignore (use_value ctx v));
      opaque
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_array_length ctx env args =
  match positional (eval_args ctx env args) with
  | [ arr ] -> (
      match arr.sh with
      | Field_arr f -> (
          match Hashtbl.find_opt ctx.model.Model.field_elements f with
          | Some n -> { taint = SS.empty; sh = Scalar_sh; ie = Const n }
          | None -> opaque)
      | _ -> opaque)
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_array_alloc ctx env args =
  let vals = eval_args ctx env args in
  let taint =
    List.fold_left
      (fun acc (_, v) ->
        (match v.sh with Field_arr f -> read_all ctx f | _ -> ());
        SS.union acc (deep_taint v))
      SS.empty vals
  in
  { taint = SS.empty; sh = Local_arr { c_val = scalar taint }; ie = Iunknown }

and apply_array_init ctx env args =
  match positional (eval_args ctx env args) with
  | [ n; f ] ->
      let elem =
        match f.sh with
        | Closure_sh c -> apply_closure ctx c [ (Asttypes.Nolabel, opaque) ]
        | _ -> scalar (deep_taint f)
      in
      let elem = { elem with taint = SS.union elem.taint n.taint } in
      { taint = SS.empty; sh = Local_arr { c_val = elem }; ie = Iunknown }
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_hof ctx env kind args =
  let vals = eval_args ctx env args in
  (* The traversed sequence(s) are whole-array reads; the callback sees
     element values tainted by them. *)
  let arrays, fns =
    List.partition
      (fun (_, v) ->
        match v.sh with
        | Field_arr _ | Local_arr _ -> true
        | _ -> false)
      vals
  in
  let elem_taint =
    List.fold_left
      (fun acc (_, v) ->
        match v.sh with
        | Field_arr f ->
            read_all ctx f;
            SS.add f acc
        | Local_arr cell -> SS.union acc (deep_taint cell.c_val)
        | _ -> acc)
      SS.empty arrays
  in
  let closure =
    List.find_map
      (fun (_, v) ->
        match v.sh with Closure_sh c -> Some c | _ -> None)
      fns
  in
  let other_taint =
    List.fold_left
      (fun acc (_, v) ->
        match v.sh with Closure_sh _ -> acc | _ -> SS.union acc (deep_taint v))
      SS.empty fns
  in
  let elem = scalar (SS.union elem_taint other_taint) in
  let apply_cb args_for_cb =
    match closure with
    | Some c ->
        apply_closure ctx c
          (List.map (fun v -> (Asttypes.Nolabel, v)) args_for_cb)
    | None -> scalar (SS.union elem_taint other_taint)
  in
  let result =
    match kind with
    | Effects.Iter ->
        ignore (apply_cb [ elem ]);
        ignore (apply_cb [ elem ]);
        opaque
    | Effects.Iteri ->
        ignore (apply_cb [ opaque; elem ]);
        ignore (apply_cb [ opaque; elem ]);
        opaque
    | Effects.Map ->
        let r = apply_cb [ elem ] in
        {
          taint = SS.empty;
          sh = Local_arr { c_val = scalar (SS.union (deep_taint r) elem.taint) };
          ie = Iunknown;
        }
    | Effects.Fold ->
        (* fold f init seq / fold_right f seq init: thread the
           accumulator twice so element taint reaches it. *)
        let acc0 = scalar other_taint in
        let acc1 = apply_cb [ acc0; elem ] in
        let acc2 = apply_cb [ scalar (SS.union (deep_taint acc1) elem.taint); elem ] in
        scalar (SS.union (deep_taint acc2) (SS.union elem_taint other_taint))
  in
  (* Writes performed by mutating callbacks went through Array_set /
     field paths inside the closure body; nothing more to do here. *)
  result

and apply_array_fill ctx env args =
  match positional (eval_args ctx env args) with
  | [ arr; pos; len; v ] ->
      (match arr.sh with
      | Field_arr f -> (
          let srcs = SS.union (deep_taint v) (SS.union pos.taint len.taint) in
          add_edge ctx srcs f;
          match (pos.ie, len.ie, Hashtbl.find_opt ctx.model.Model.field_elements f) with
          | Const 0, Const n, Some elems when n >= elems -> kill_field ctx f
          | _ -> ())
      | Local_arr cell -> cell_join ctx cell v
      | _ -> ignore (use_value ctx v));
      opaque
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_array_blit ctx env args =
  match positional (eval_args ctx env args) with
  | [ src; _spos; dst; _dpos; _len ] ->
      let srcs =
        match src.sh with
        | Field_arr f ->
            read_all ctx f;
            SS.add f src.taint
        | Local_arr cell -> deep_taint cell.c_val
        | _ -> src.taint
      in
      (match dst.sh with
      | Field_arr f -> add_edge ctx srcs f
      | Local_arr cell -> cell_join ctx cell (scalar srcs)
      | _ -> ());
      opaque
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_array_sort ctx env args =
  let vals = eval_args ctx env args in
  List.iter
    (fun (_, v) ->
      match v.sh with
      | Field_arr f ->
          read_all ctx f;
          add_edge ctx (SS.singleton f) f
      | _ -> ())
    vals;
  opaque

and apply_deref ctx env args =
  match positional (eval_args ctx env args) with
  | [ r ] -> (
      match r.sh with
      | Ref_sh cell ->
          { cell.c_val with taint = SS.union cell.c_val.taint r.taint }
      | _ -> scalar r.taint)
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_assign ctx env args =
  match positional (eval_args ctx env args) with
  | [ r; v ] ->
      (match r.sh with
      | Ref_sh cell -> cell_join ctx cell v
      | _ -> ignore (use_value ctx v));
      opaque
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

and apply_incr ctx env args =
  List.iter (fun (_, a) -> ignore (interp ctx env a)) args;
  opaque

and apply_ref_make ctx env args =
  match positional (eval_args ctx env args) with
  | [ v ] -> { taint = SS.empty; sh = Ref_sh { c_val = v }; ie = Iunknown }
  | vals -> unknown_call ctx (List.map (fun v -> (Asttypes.Nolabel, v)) vals)

(* [Nprand.vranlc rng ~a count arr off]: writes [count] fresh deviates
   at [arr.(off ...)]; a full-extent write at offset 0 kills the
   array. *)
and apply_vranlc ctx env args =
  let vals = eval_args ctx env args in
  let srcs =
    List.fold_left (fun acc (_, v) -> SS.union acc (deep_taint v)) SS.empty vals
  in
  (match positional vals with
  | [ _rng; count; arr; off ] -> (
      match arr.sh with
      | Field_arr f -> (
          add_edge ctx srcs f;
          match
            (count.ie, off.ie, Hashtbl.find_opt ctx.model.Model.field_elements f)
          with
          | Const n, Const 0, Some elems when n >= elems -> kill_field ctx f
          | _ -> ())
      | Local_arr cell -> cell_join ctx cell (scalar srcs)
      | _ -> ())
  | _ -> ());
  opaque

(* ---- entry ----------------------------------------------------------- *)

type outcome = {
  o_status : (string * feffect) list;
  o_reaches : SS.t;  (** fields with a may-dependence path to output *)
  o_edges : (string * SS.t) list;
      (** the raw dependence graph: destination -> sources, including
          the synthetic "@output" sink — consumers (the discover pass)
          re-run closures over it *)
  o_footprints : (string * footprint) list;
  o_notes : string list;
}

let reaches_of ctx =
  let visited = Hashtbl.create 16 in
  let rec go dst =
    if not (Hashtbl.mem visited dst) then begin
      Hashtbl.add visited dst ();
      match Hashtbl.find_opt ctx.edges dst with
      | Some srcs -> SS.iter go !srcs
      | None -> ()
    end
  in
  go "@output";
  Hashtbl.fold
    (fun f _ acc -> if Model.is_state_field ctx.model f then SS.add f acc else acc)
    visited SS.empty

let analyze (model : Model.t) : outcome =
  let run =
    match Model.find_fn model "run" with
    | Some fn -> fn
    | None -> raise (Incomplete "no run function found")
  in
  let output =
    match Model.find_fn model "output" with
    | Some fn -> fn
    | None -> raise (Incomplete "no output function found")
  in
  let status0 =
    Hashtbl.fold
      (fun f _ acc -> SM.add f Untouched acc)
      model.Model.fields SM.empty
  in
  let ctx =
    {
      model;
      status = status0;
      edges = Hashtbl.create 32;
      ranges = Hashtbl.create 32;
      sites = Hashtbl.create 8;
      tops = Hashtbl.create 8;
      notes = [];
      fuel = 50_000_000;
      depth = 0;
      next_id = 0;
    }
  in
  let bind_params params =
    (* First parameter is the state; the window bounds are opaque. *)
    List.fold_left
      (fun (env, first) (label, pat) ->
        let v =
          if first then { taint = SS.empty; sh = State_sh; ie = Iunknown }
          else opaque
        in
        ignore label;
        (bind_pattern env pat v, false))
      (SM.empty, true) params
    |> fst
  in
  ignore (interp ctx (bind_params run.Model.fn_params) run.Model.fn_body);
  let out_v =
    interp ctx (bind_params output.Model.fn_params) output.Model.fn_body
  in
  add_edge ctx (deep_taint out_v) "@output";
  let reaches = reaches_of ctx in
  let footprints =
    Hashtbl.fold
      (fun f _ acc ->
        if Hashtbl.mem ctx.tops f then (f, Top) :: acc
        else
          match Hashtbl.find_opt ctx.sites f with
          | Some sites -> (f, Sites !sites) :: acc
          | None -> (f, Sites []) :: acc)
      model.Model.fields []
  in
  let edges =
    Hashtbl.fold (fun dst srcs acc -> (dst, !srcs) :: acc) ctx.edges []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    o_status = SM.bindings ctx.status;
    o_reaches = reaches;
    o_edges = edges;
    o_footprints = footprints;
    o_notes = ctx.notes;
  }
