(** The analysis model extracted from one NPB kernel source: function
    table (functors unwrapped, first definition wins, so kernel bodies
    shadow their [App.Make] aliases), the [state] record fields, folded
    integer constants, and the checkpoint-variable declarations parsed
    from the same [float_vars]/[int_vars] the dynamic engine consumes. *)

type fn = {
  fn_params : (Asttypes.arg_label * Parsetree.pattern) list;
  fn_body : Parsetree.expression;
}

type var_decl = {
  v_name : string;  (** checkpoint variable name (Table I) *)
  v_field : string option;  (** backing state field, when unambiguous *)
  v_kind : Verdict.kind;
  v_elements : int option;  (** element count, when statically known *)
  v_spe : int;
  v_declared_critical : string option;
      (** [Always_critical] justification, for declared-critical ints *)
  v_line : int;  (** declaration site, for pragma anchoring *)
}

type t = {
  file : string;
  mutable app_name : string option;  (** [App.name], e.g. ["ep"] *)
  consts : Constfold.env;
  funcs : (string, fn) Hashtbl.t;
  fields : (string, bool) Hashtbl.t;  (** state field -> is_array *)
  field_elements : (string, int) Hashtbl.t;
      (** backing field -> element count, from the var declarations *)
  local_modules : (string, unit) Hashtbl.t;
      (** module names bound in this file (callee paths through them
          resolve locally) *)
  pure_modules : (string, unit) Hashtbl.t;
      (** functor parameters constrained to [Scalar.S]: their operations
          are treated as pure scalar functions *)
  param_modules : (string, unit) Hashtbl.t;
      (** other functor parameters (e.g. IS's [O : INT_OPS]): calls
          through them may be resolvable against a sibling in-file
          implementation of the same signature *)
  mutable vars : var_decl list;
  mutable notes : string list;  (** extraction imprecision notes *)
}

val note : t -> string -> unit
val find_fn : t -> string -> fn option
val is_state_field : t -> string -> bool

(** Flattened [Longident.t] segments. *)
val flatten : Longident.t -> string list

val last_segment : Longident.t -> string
val line_of : Location.t -> int

(** Name bound by a simple [Ppat_var] (possibly constrained) pattern. *)
val binding_name_of : Parsetree.pattern -> string option

(** Build the model of a parsed implementation. *)
val of_structure : file:string -> Parsetree.structure -> t
