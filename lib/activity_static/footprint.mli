(** Interval refinement: elements provably never read, as the
    complement of the enumerated affine read footprint. *)

(** [None] when the footprint is [Top], the element count is unknown
    or nonpositive, or enumeration would exceed the 2^24-point cap. *)
val inactive_spans :
  elements:int -> Absint.footprint -> Scvad_checkpoint.Regions.t option
