(** Per-file [(* activity: assume <class> <var> — <reason> *)] pragmas.

    Class words are the short forms [inactive] / [active] / [unknown];
    the justification after the separator ([—], [--] or [:]) is
    mandatory.  A pragma overrides the computed verdict of [<var>] when
    it spans or directly precedes the variable's declaration line — and
    assumed-inactive claims remain subject to the dynamic soundness
    gate, so a wrong assumption fails [@activity-check] rather than
    silently corrupting checkpoints. *)

type tag = { a_class : Verdict.class_; a_var : string }
type t = tag Scvad_lint.Pragma.Generic.t

(** Extract the pragma table and any malformed pragmas as findings. *)
val scan : file:string -> string -> t * Scvad_lint.Finding.t list

(** Assumption whose range covers [line] for [var], if any; marks the
    pragma used and returns its class and justification. *)
val assume :
  t -> var:string -> line:int -> (Verdict.class_ * string) option

(** Warning findings for pragmas {!assume} never consumed. *)
val unused : t -> Scvad_lint.Finding.t list
