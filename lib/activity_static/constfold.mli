(** Integer constant folding over Parsetree expressions, against the
    file's top-level [let name = <int expr>] bindings.  Resolves the
    NPB sizing arithmetic (products, shifts, bitmasks); anything
    outside that fragment folds to [None]. *)

type env = (string, int) Hashtbl.t

val create_env : unit -> env

(** [eval env e] is the statically-known integer value of [e], if any. *)
val eval : env -> Parsetree.expression -> int option

(** [add_binding env name rhs] records [name] in [env] when [rhs]
    folds; no-op otherwise. *)
val add_binding : env -> string -> Parsetree.expression -> unit
