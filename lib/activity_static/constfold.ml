(* Constant folding of integer Parsetree expressions against an
   environment of top-level [let name = <int>] bindings.  The activity
   pass only needs enough arithmetic to resolve NPB sizing expressions
   (EP's [2 * nk], FT's [n3 * n2 * xpad], shift-built powers of two) —
   anything else folds to [None] and the caller stays conservative. *)

open Parsetree

type env = (string, int) Hashtbl.t

let create_env () : env = Hashtbl.create 32

(* Integer literal, rejecting width suffixes (1L, 1n).  int_of_string
   accepts underscores and 0x/0o/0b prefixes directly. *)
let literal (c : constant) =
  match c with
  | Pconst_integer (text, None) -> int_of_string_opt text
  | _ -> None

let rec eval (env : env) (e : expression) : int option =
  match e.pexp_desc with
  | Pexp_constant c -> literal c
  | Pexp_ident { txt = Longident.Lident name; _ } -> Hashtbl.find_opt env name
  | Pexp_constraint (e, _) -> eval env e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = op; _ }; _ }, args) -> (
      let name =
        match op with
        | Longident.Lident n -> Some n
        | Longident.Ldot (Longident.Lident "Stdlib", n) -> Some n
        | _ -> None
      in
      match (name, args) with
      | Some "~-", [ (Asttypes.Nolabel, a) ] ->
          Option.map (fun v -> -v) (eval env a)
      | Some "~+", [ (Asttypes.Nolabel, a) ] -> eval env a
      | Some op, [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] -> (
          match (eval env a, eval env b) with
          | Some x, Some y -> apply2 op x y
          | _ -> None)
      | _ -> None)
  | _ -> None

and apply2 op x y =
  match op with
  | "+" -> Some (x + y)
  | "-" -> Some (x - y)
  | "*" -> Some (x * y)
  | "/" -> if y = 0 then None else Some (x / y)
  | "mod" -> if y = 0 then None else Some (x mod y)
  | "lsl" -> if y < 0 || y > 62 then None else Some (x lsl y)
  | "lsr" -> if y < 0 || y > 62 then None else Some (x lsr y)
  | "asr" -> if y < 0 || y > 62 then None else Some (x asr y)
  | "land" -> Some (x land y)
  | "lor" -> Some (x lor y)
  | "lxor" -> Some (x lxor y)
  | "min" -> Some (min x y)
  | "max" -> Some (max x y)
  | _ -> None

(* Record a top-level binding if its right-hand side folds. *)
let add_binding (env : env) name rhs =
  match eval env rhs with
  | Some v -> Hashtbl.replace env name v
  | None -> ()
