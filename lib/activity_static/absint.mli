(** Conservative abstract interpretation of a kernel's post-checkpoint
    cone ([run] then [output]) over the extracted {!Model}.  Produces,
    per state field:

    - a first-effect status — [Untouched] / [Killed] (fully overwritten
      before any possible read) / [Mayread].  The first two are proofs
      that the checkpointed value is never consumed: branch joins are
      pessimistic and loop bodies are conservative about zero-trip
      execution;
    - membership in the may-influence set of the output (backward
      closure of a flow-insensitive dependence edge graph seeded at the
      synthetic [@output] sink);
    - a read footprint: the affine read sites with constant loop
      ranges, or [Top] as soon as any read is unresolvable.

    Unrecognized constructs always degrade toward
    [Mayread]/[Top]/more edges; {!Incomplete} aborts the app to a
    fully-Unknown verdict. *)

module SS : Set.S with type elt = string

exception Incomplete of string

type feffect = Untouched | Killed | Mayread

val feffect_name : feffect -> string

(** base + Σ coeff·v, each v ranging over an inclusive [lo, hi]. *)
type site = { s_base : int; s_terms : (int * int * int) list }

type footprint = Sites of site list | Top

type outcome = {
  o_status : (string * feffect) list;
  o_reaches : SS.t;
  o_edges : (string * SS.t) list;
      (** flow-insensitive may-dependence edges, destination to sources,
          sorted by destination and including the synthetic ["@output"]
          sink.  Sources mix state fields with local temporaries; filter
          on {!Model.is_state_field} when only fields matter.  The
          discover pass runs its recomputability fixpoint over these. *)
  o_footprints : (string * footprint) list;
  o_notes : string list;
}

(** Raises {!Incomplete} when the cone cannot be interpreted at all
    (missing [run]/[output], fuel exhaustion). *)
val analyze : Model.t -> outcome
