(* Sub-variable interval refinement: turn the affine read sites of one
   array into the element spans provably never read — the complement of
   the enumerated footprint.  Reads are over-approximated upstream
   (guards ignored, [Top] on anything unresolved), so the complement
   only shrinks: every claimed span is genuinely unread. *)

(* Points a site contributes: the product of its term ranges (an empty
   range means the enclosing loop never executes). *)
let site_points (s : Absint.site) =
  List.fold_left
    (fun acc (_, lo, hi) -> if hi < lo then 0 else acc * (hi - lo + 1))
    1 s.Absint.s_terms

let enumeration_cap = 1 lsl 24

let mark_site read elements (s : Absint.site) =
  let n = Array.length read in
  let rec go base terms =
    match terms with
    | [] -> if base >= 0 && base < n && base < elements then read.(base) <- true
    | (coeff, lo, hi) :: rest ->
        for v = lo to hi do
          go (base + (coeff * v)) rest
        done
  in
  if site_points s > 0 then go s.Absint.s_base s.Absint.s_terms

(* [inactive_spans ~elements fp] is the region set of elements provably
   never read, or [None] when the footprint is [Top] or too large to
   enumerate. *)
let inactive_spans ~elements (fp : Absint.footprint) =
  match fp with
  | Absint.Top -> None
  | Absint.Sites sites ->
      if elements <= 0 then None
      else
        (* Loop re-interpretation records the same site once per pass;
           dedupe before costing the enumeration. *)
        let sites = List.sort_uniq compare sites in
        let total = List.fold_left (fun acc s -> acc + site_points s) 0 sites in
        if total > enumeration_cap then None
        else begin
          let read = Array.make elements false in
          List.iter (mark_site read elements) sites;
          let covered = Scvad_checkpoint.Regions.of_mask read in
          Some (Scvad_checkpoint.Regions.complement ~total:elements covered)
        end
