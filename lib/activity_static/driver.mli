(** The static activity driver: parse NPB kernel sources, run the
    abstract interpreter, assemble per-variable {!Verdict.t}s, apply
    [(* activity: assume … *)] pragmas, and render the report. *)

(** [None] when the file declares no NPB app (shared helpers); pragma
    and syntax problems are returned as findings either way. *)
val analyze_source :
  file:string ->
  string ->
  Verdict.app_verdicts option * Scvad_lint.Finding.t list

val analyze_file :
  string -> Verdict.app_verdicts option * Scvad_lint.Finding.t list

(** Deterministic: apps appear in the order of the given files. *)
val analyze_files :
  string list -> Verdict.verdicts * Scvad_lint.Finding.t list

(** Analyze every [.ml] file in [dir], sorted by name. *)
val analyze_dir : string -> Verdict.verdicts * Scvad_lint.Finding.t list

(** The repo's [lib/npb] directory, found by walking up from [cwd]
    (default: the current directory) to the [dune-project] root. *)
val locate_npb_dir : ?cwd:string -> unit -> string option

(** Check every inactivity claim of one app against dynamic criticality
    masks ([true] = critical), keyed by variable name.  Returns, per
    offending variable, the number of contradicted elements and up to 8
    sample indices.  Empty list = the claims are sound on this run. *)
val unsound_claims :
  Verdict.app_verdicts ->
  masks:(string * bool array) list ->
  (string * (int * int list)) list

val render_text : Verdict.verdicts -> Scvad_lint.Finding.t list -> string
val render_json : Verdict.verdicts -> Scvad_lint.Finding.t list -> string

(** Parse the [apps] array out of {!render_json} output — the test
    suite asserts this round-trips.  Raises [Failure] on malformed
    input. *)
val verdicts_of_json : string -> Verdict.verdicts
