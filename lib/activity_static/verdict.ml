(* The three-valued static activity lattice (paper §III-A read
   statically; AutoCheck's data-dependency criterion).

   A verdict is a *claim* about one checkpoint variable:

   - [Statically_inactive]: every element provably has zero derivative
     d output / d element — the checkpointed value is either never
     consumed by the post-checkpoint window (killed by a full overwrite
     before any read, or never read at all) or its reads provably never
     flow into the output.  This is the only claim with soundness
     obligations: the dynamic engine must never find a critical element
     inside it (the @activity-check gate).
   - [Statically_active]: a data-dependence path from the checkpointed
     value to the benchmark output exists (may-analysis; a path can
     still carry an exactly-zero partial, so this claim is not gated).
   - [Unknown]: the pass could not resolve the kernel far enough —
     functor-opaque operations (IS), data-dependent loop bounds (CG),
     or constructs outside the modeled fragment. *)

type class_ = Statically_inactive | Statically_active | Unknown

let class_name = function
  | Statically_inactive -> "statically-inactive"
  | Statically_active -> "statically-active"
  | Unknown -> "unknown"

let class_of_name = function
  | "statically-inactive" | "inactive" -> Some Statically_inactive
  | "statically-active" | "active" -> Some Statically_active
  | "unknown" -> Some Unknown
  | _ -> None

(* Join of independent approximations: agreement keeps the claim, any
   disagreement or doubt decays to Unknown.  (Inactive/Active conflict
   would mean a bug in one side; never silently pick one.) *)
let join a b =
  match (a, b) with
  | Statically_inactive, Statically_inactive -> Statically_inactive
  | Statically_active, Statically_active -> Statically_active
  | _ -> Unknown

type kind = Float_var | Int_var

let kind_name = function Float_var -> "float" | Int_var -> "int"

(* One checkpoint variable's verdict.  [inactive] holds the element
   spans proven inactive: the whole variable when [class_] is
   [Statically_inactive], a refinement subset (e.g. FT's padding plane)
   when an active variable has provably-dead intervals. *)
type var_verdict = {
  var : string;
  kind : kind;
  class_ : class_;
  elements : int option;  (** element count when statically known *)
  inactive : Scvad_checkpoint.Regions.t;
      (** element spans proven zero-derivative *)
  reason : string;  (** proof sketch or why the pass gave up *)
  assumed : bool;  (** forced by an [(* activity: assume … *)] pragma *)
}

let inactive_elements v = Scvad_checkpoint.Regions.cardinal v.inactive

(* Everything the pass decided about one benchmark. *)
type app_verdicts = {
  app : string;
  source : string;  (** the kernel file the verdicts were derived from *)
  resolved : bool;
      (** false when extraction failed and every verdict is [Unknown] *)
  vars : var_verdict list;
  notes : string list;  (** imprecision notes (what forced [Unknown]) *)
}

type verdicts = app_verdicts list

let find_app (vs : verdicts) ~app =
  List.find_opt (fun (a : app_verdicts) -> a.app = app) vs

let find_var (a : app_verdicts) ~var =
  List.find_opt (fun (v : var_verdict) -> v.var = var) a.vars

let find (vs : verdicts) ~app ~var =
  Option.bind (find_app vs ~app) (fun a -> find_var a ~var)

(* The analyzer fast path: float variables whose whole value is proven
   inactive can skip tape lifting entirely. *)
let skippable_float_vars (a : app_verdicts) =
  List.filter_map
    (fun v ->
      if v.kind = Float_var && v.class_ = Statically_inactive then Some v.var
      else None)
    a.vars

(* Total statically-inactive claims (whole variables and refinement
   intervals) across a suite — the gate requires this to be nonzero. *)
let total_inactive_claims (vs : verdicts) =
  List.fold_left
    (fun acc a ->
      List.fold_left (fun acc v -> acc + inactive_elements v) acc a.vars)
    0 vs
