(* [(* activity: assume <class> <var> — <reason> *)] pragmas, one
   instantiation of the shared assume-pragma functor
   ({!Scvad_lint.Pragma.Assume}).  Class words are the short forms —
   [inactive], [active], [unknown] — because the tag grammar cannot
   contain dashes without swallowing the [--] reason separator.  An
   assumption only overrides the verdict of the named variable when the
   pragma sits on or directly above its declaration line;
   assumed-inactive claims are still checked by the dynamic gate. *)

module Pragma = Scvad_lint.Pragma

type tag = { a_class : Verdict.class_; a_var : string }

let class_of_word = function
  | "inactive" -> Some Verdict.Statically_inactive
  | "active" -> Some Verdict.Statically_active
  | "unknown" -> Some Verdict.Unknown
  | _ -> None

module A = Pragma.Assume (struct
  type nonrec tag = tag

  let keyword = "activity"
  let subject_of t = t.a_var

  let parse_words = function
    | [ cls; var ] -> (
        match class_of_word cls with
        | Some a_class -> Ok { a_class; a_var = var }
        | None ->
            Error
              (Printf.sprintf
                 "unknown class %S in activity pragma (expected inactive, \
                  active or unknown)"
                 cls))
    | words ->
        Error
          (Printf.sprintf
             "malformed activity pragma tag %S (expected \"<class> <var>\")"
             (String.concat " " words))
end)

type t = A.t

let scan = A.scan

(* Assumption covering the declaration at [line], if any; marks it
   used.  Returns the class and the stated justification. *)
let assume t ~var ~line =
  Option.map
    (fun (tag, reason) -> (tag.a_class, reason))
    (A.assume t ~subject:var ~line)

let unused = A.unused
