(* [(* activity: assume <class> <var> — <reason> *)] pragmas, built on
   the lint scanner.  Class words are the short forms — [inactive],
   [active], [unknown] — because the tag grammar cannot contain dashes
   without swallowing the [--] reason separator.  An assumption only
   overrides the verdict of the named variable when the pragma sits on
   or directly above its declaration line; assumed-inactive claims are
   still checked by the dynamic gate. *)

module Pragma = Scvad_lint.Pragma
module Finding = Scvad_lint.Finding

type tag = { a_class : Verdict.class_; a_var : string }
type t = tag Pragma.Generic.t

(* Concatenated so the scanner never matches its own source. *)
let marker = "activity: " ^ "assume"

let is_tag_char = function
  | 'a' .. 'z' | '0' .. '9' | '_' | '\'' | ' ' -> true
  | _ -> false

let class_of_word = function
  | "inactive" -> Some Verdict.Statically_inactive
  | "active" -> Some Verdict.Statically_active
  | "unknown" -> Some Verdict.Unknown
  | _ -> None

let parse_tag text =
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' text)
  in
  match words with
  | [ cls; var ] -> (
      match class_of_word cls with
      | Some a_class -> Ok { a_class; a_var = var }
      | None ->
          Error
            (Printf.sprintf
               "unknown class %S in activity pragma (expected inactive, \
                active or unknown)"
               cls))
  | _ ->
      Error
        (Printf.sprintf
           "malformed activity pragma tag %S (expected \"<class> <var>\")"
           text)

let scan ~file source =
  Pragma.Generic.scan ~marker ~tag_char:is_tag_char ~parse_tag ~file source

(* Assumption covering the declaration at [line], if any; marks it
   used.  Returns the class and the stated justification. *)
let assume t ~var ~line =
  match
    Pragma.Generic.find t (fun tag first last ->
        tag.a_var = var && first <= line && line <= last)
  with
  | Some e -> Some (e.Pragma.Generic.g_tag.a_class, e.Pragma.Generic.g_reason)
  | None -> None

let unused t =
  Pragma.Generic.unused t ~describe:(fun tag first last reason ->
      Printf.sprintf
        "unused activity pragma: no declaration of %S on lines %d-%d \
         (reason given: %s)"
        tag.a_var first last reason)
