(* Extraction of the analysis model from one NPB kernel source: the
   function table (functors unwrapped), the [state] record fields, the
   integer constants, and the checkpoint-variable declarations parsed
   out of [float_vars]/[int_vars] — the same declarations the dynamic
   engine consumes at run time, so the two sides analyze the same
   metadata by construction. *)

open Parsetree

let rec flatten (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten l @ [ s ]
  | Lapply (a, b) -> flatten a @ flatten b

let last_segment lid =
  match List.rev (flatten lid) with s :: _ -> s | [] -> ""

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

type fn = {
  fn_params : (Asttypes.arg_label * pattern) list;
  fn_body : expression;
}

type var_decl = {
  v_name : string;
  v_field : string option;  (* backing state field, when unambiguous *)
  v_kind : Verdict.kind;
  v_elements : int option;
  v_spe : int;
  v_declared_critical : string option;  (* Always_critical justification *)
  v_line : int;
}

type t = {
  file : string;
  mutable app_name : string option;
  consts : Constfold.env;
  funcs : (string, fn) Hashtbl.t;  (* first definition wins *)
  fields : (string, bool) Hashtbl.t;  (* state field -> is_array *)
  field_elements : (string, int) Hashtbl.t;  (* from var declarations *)
  local_modules : (string, unit) Hashtbl.t;
  pure_modules : (string, unit) Hashtbl.t;  (* Scalar.S functor params *)
  param_modules : (string, unit) Hashtbl.t;  (* other functor params *)
  mutable vars : var_decl list;
  mutable notes : string list;
}

let note t msg = if not (List.mem msg t.notes) then t.notes <- t.notes @ [ msg ]
let find_fn t name = Hashtbl.find_opt t.funcs name
let is_state_field t name = Hashtbl.mem t.fields name

(* ---- function collection -------------------------------------------- *)

let rec split_fun params (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (label, _, pat, body) -> split_fun ((label, pat) :: params) body
  | Pexp_newtype (_, body) -> split_fun params body
  | Pexp_constraint (inner, _) when params = [] -> split_fun params inner
  | _ -> (List.rev params, e)

let string_const (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Is this module type Scvad_ad.Scalar.S (whose operations are pure in
   the primal sense the pass needs)? *)
let is_scalar_sig (mty : module_type) =
  match mty.pmty_desc with
  | Pmty_ident { txt; _ } -> (
      match List.rev (flatten txt) with
      | "S" :: "Scalar" :: _ -> true
      | _ -> false)
  | _ -> false

let rec collect_structure t items = List.iter (collect_item t) items

and collect_item t item =
  match item.pstr_desc with
  | Pstr_value (_, vbs) -> List.iter (collect_binding t) vbs
  | Pstr_type (_, decls) -> List.iter (collect_type t) decls
  | Pstr_module mb ->
      let name =
        match mb.pmb_name.Location.txt with Some n -> n | None -> "_"
      in
      if module_is_internal t mb.pmb_expr then
        Hashtbl.replace t.local_modules name ();
      if name = "App" && t.app_name = None then
        t.app_name <- app_name_of t mb.pmb_expr;
      collect_module_expr t mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.iter
        (fun mb ->
          (match mb.pmb_name.Location.txt with
          | Some n when module_is_internal t mb.pmb_expr ->
              Hashtbl.replace t.local_modules n ()
          | _ -> ());
          collect_module_expr t mb.pmb_expr)
        mbs
  | Pstr_include incl -> collect_module_expr t incl.pincl_mod
  | _ -> ()

and collect_binding t vb =
  match binding_name vb.pvb_pat with
  | None -> ()
  | Some name -> (
      match split_fun [] vb.pvb_expr with
      | [], _ -> Constfold.add_binding t.consts name vb.pvb_expr
      | params, body ->
          if not (Hashtbl.mem t.funcs name) then
            Hashtbl.add t.funcs name { fn_params = params; fn_body = body })

and binding_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (inner, _) -> binding_name inner
  | _ -> None

(* A module binding is "internal" when calls through it resolve to
   functions defined in this file: a structure literal, a functor whose
   body is one, or an application of an internal module ([Plain =
   Kernel (Plain_ops)]).  [C = Adi_common.Make_sized (G) (S)] is
   external — calls through it stay conservative. *)
and module_is_internal t (me : module_expr) =
  match me.pmod_desc with
  | Pmod_structure _ | Pmod_functor _ -> true
  | Pmod_constraint (inner, _) -> module_is_internal t inner
  | Pmod_apply (f, _) | Pmod_apply_unit f -> module_is_internal t f
  | Pmod_ident { txt; _ } -> (
      match flatten txt with
      | head :: _ -> Hashtbl.mem t.local_modules head
      | [] -> false)
  | Pmod_unpack _ | Pmod_extension _ -> false

and collect_type t decl =
  if decl.ptype_name.Location.txt = "state" then
    match decl.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun ld ->
            let is_array =
              match ld.pld_type.ptyp_desc with
              | Ptyp_constr ({ txt; _ }, _) -> last_segment txt = "array"
              | _ -> false
            in
            Hashtbl.replace t.fields ld.pld_name.Location.txt is_array)
          labels
    | _ -> ()

and collect_module_expr t (me : module_expr) =
  match me.pmod_desc with
  | Pmod_structure items -> collect_structure t items
  | Pmod_functor (param, body) ->
      (match param with
      | Named ({ Location.txt = Some pname; _ }, mty) ->
          if is_scalar_sig mty then Hashtbl.replace t.pure_modules pname ()
          else Hashtbl.replace t.param_modules pname ()
      | _ -> ());
      collect_module_expr t body
  | Pmod_constraint (inner, _) -> collect_module_expr t inner
  | Pmod_apply (f, arg) ->
      collect_module_expr t f;
      collect_module_expr t arg
  | Pmod_apply_unit f -> collect_module_expr t f
  | Pmod_ident _ | Pmod_unpack _ | Pmod_extension _ -> ()

and app_name_of t (me : module_expr) =
  match me.pmod_desc with
  | Pmod_constraint (inner, _) -> app_name_of t inner
  | Pmod_structure items ->
      List.fold_left
        (fun acc item ->
          match (acc, item.pstr_desc) with
          | Some _, _ -> acc
          | None, Pstr_value (_, vbs) ->
              List.fold_left
                (fun acc vb ->
                  match (acc, binding_name vb.pvb_pat) with
                  | None, Some "name" -> string_const vb.pvb_expr
                  | _ -> acc)
                None vbs
          | None, _ -> None)
        None items
  | _ -> None

(* ---- checkpoint-variable declarations ------------------------------- *)

(* All state-field names mentioned through the declaration expression
   ([st.f] reads in get/set closures, [st.f <- v] writes, positional
   array arguments). *)
let fields_mentioned t (e : expression) =
  let acc = ref [] in
  let add name =
    if is_state_field t name && not (List.mem name !acc) then
      acc := name :: !acc
  in
  let it = Ast_iterator.default_iterator in
  let expr it' (e : expression) =
    (match e.pexp_desc with
    | Pexp_field (_, { txt; _ }) -> add (last_segment txt)
    | Pexp_setfield (_, { txt; _ }, _) -> add (last_segment txt)
    | _ -> ());
    it.expr it' e
  in
  let it = { it with expr } in
  it.expr it e;
  !acc

(* Element count of a [Shape] expression: [Shape.scalar],
   [Shape.create [dims]], or a let-bound alias of either. *)
let rec elements_of_shape t locals (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) -> elements_of_shape t locals inner
  | Pexp_ident { txt; _ } -> (
      match last_segment txt with
      | "scalar" -> Some 1
      | name -> (
          match List.assoc_opt name locals with
          | Some alias -> elements_of_shape t locals alias
          | None -> None))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when last_segment txt = "create" -> (
      match args with
      | [ (Asttypes.Nolabel, dims) ] ->
          let rec product (e : expression) =
            match e.pexp_desc with
            | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> Some 1
            | Pexp_construct
                ( { txt = Lident "::"; _ },
                  Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ) -> (
                match (Constfold.eval t.consts hd, product tl) with
                | Some d, Some rest when d >= 0 -> Some (d * rest)
                | _ -> None)
            | _ -> None
          in
          product dims
      | _ -> None)
  | _ -> None

let labelled name args =
  List.find_map
    (fun (label, e) ->
      match label with
      | Asttypes.Labelled l when l = name -> Some e
      | Asttypes.Optional l when l = name -> Some e
      | _ -> None)
    args

let positional args =
  List.filter_map
    (fun (label, e) ->
      match label with Asttypes.Nolabel -> Some e | _ -> None)
    args

(* Unique backing field of a declaration, from the fields its get/set
   closures (or positional array argument) mention. *)
let field_of_decl t exprs =
  match List.concat_map (fields_mentioned t) exprs with
  | [] -> None
  | first :: rest ->
      if List.for_all (fun f -> f = first) rest then Some first else None

let crit_of_construct (e : expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, arg) -> (
      match (last_segment txt, arg) with
      | "Always_critical", Some reason -> (
          match string_const reason with
          | Some s -> Some (Some s)
          | None -> Some (Some "declared"))
      | "By_taint", _ -> Some None
      | _ -> None)
  | _ -> None

let decl_of_element t ~kind locals (e : expression) =
  let line = line_of e.pexp_loc in
  let mk ~name ~field ~elements ~spe ~declared =
    (match (field, elements) with
    | Some f, Some n -> Hashtbl.replace t.field_elements f n
    | _ -> ());
    Some
      {
        v_name = name;
        v_field = field;
        v_kind = kind;
        v_elements = elements;
        v_spe = spe;
        v_declared_critical = declared;
        v_line = line;
      }
  in
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let pos = positional args in
      match last_segment txt with
      | "make" -> (
          match Option.bind (labelled "name" args) string_const with
          | None -> None
          | Some name ->
              let spe =
                match
                  Option.bind (labelled "spe" args)
                    (Constfold.eval t.consts)
                with
                | Some s -> s
                | None -> 1
              in
              let elements =
                Option.bind (labelled "shape" args)
                  (elements_of_shape t locals)
              in
              let accessors =
                List.filter_map (fun l -> labelled l args) [ "get"; "set" ]
              in
              mk ~name ~field:(field_of_decl t accessors) ~elements ~spe
                ~declared:None)
      | "of_array" | "int_of_array" -> (
          match Option.bind (labelled "name" args) string_const with
          | None -> None
          | Some name ->
              let elements =
                match pos with
                | shape :: _ -> elements_of_shape t locals shape
                | [] -> None
              in
              let field =
                match pos with
                | [ _; arr ] -> field_of_decl t [ arr ]
                | _ -> None
              in
              let declared =
                match
                  Option.bind (labelled "crit" args) crit_of_construct
                with
                | Some d -> d
                | None -> None
              in
              mk ~name ~field ~elements ~spe:1 ~declared)
      | "of_ref" | "int_of_ref" -> (
          match Option.bind (labelled "name" args) string_const with
          | None -> None
          | Some name ->
              let declared =
                match
                  Option.bind (labelled "crit" args) crit_of_construct
                with
                | Some d -> d
                | None -> None
              in
              mk ~name ~field:(field_of_decl t pos) ~elements:(Some 1) ~spe:1
                ~declared)
      | _ -> None)
  | Pexp_record (record_fields, None) ->
      let get label =
        List.find_map
          (fun (({ Location.txt; _ } : Longident.t Location.loc), v) ->
            if last_segment txt = label then Some v else None)
          record_fields
      in
      Option.bind (Option.bind (get "iname") string_const) (fun name ->
          let accessors = List.filter_map get [ "iget"; "iset" ] in
          let elements =
            Option.bind (get "ishape") (elements_of_shape t locals)
          in
          let declared =
            match Option.bind (get "icrit") crit_of_construct with
            | Some d -> d
            | None -> None
          in
          mk ~name ~field:(field_of_decl t accessors) ~elements ~spe:1
            ~declared)
  | _ -> None

(* Walk a [float_vars]/[int_vars] body down to its list literal,
   accumulating let-bound shape aliases on the way. *)
let rec decls_of_body t ~kind locals (e : expression) =
  match e.pexp_desc with
  | Pexp_open (_, body) | Pexp_constraint (body, _) ->
      decls_of_body t ~kind locals body
  | Pexp_let (_, vbs, body) ->
      let locals =
        List.fold_left
          (fun locals vb ->
            match binding_name vb.pvb_pat with
            | Some n -> (n, vb.pvb_expr) :: locals
            | None -> locals)
          locals vbs
      in
      decls_of_body t ~kind locals body
  | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> []
  | Pexp_construct
      ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
    -> (
      let rest = decls_of_body t ~kind locals tl in
      match decl_of_element t ~kind locals hd with
      | Some d -> d :: rest
      | None ->
          note t
            (Printf.sprintf
               "unrecognized %s declaration at line %d (verdict Unknown)"
               (Verdict.kind_name kind) (line_of hd.pexp_loc));
          rest)
  | _ ->
      note t
        (Printf.sprintf "could not resolve %s list at line %d"
           (Verdict.kind_name kind) (line_of e.pexp_loc));
      []

let collect_vars t =
  let of_fn name kind =
    match find_fn t name with
    | Some fn -> decls_of_body t ~kind [] fn.fn_body
    | None -> []
  in
  t.vars <-
    of_fn "float_vars" Verdict.Float_var @ of_fn "int_vars" Verdict.Int_var

let binding_name_of = binding_name

(* ---- entry ----------------------------------------------------------- *)

let of_structure ~file (items : structure) =
  let t =
    {
      file;
      app_name = None;
      consts = Constfold.create_env ();
      funcs = Hashtbl.create 64;
      fields = Hashtbl.create 16;
      field_elements = Hashtbl.create 16;
      local_modules = Hashtbl.create 16;
      pure_modules = Hashtbl.create 8;
      param_modules = Hashtbl.create 8;
      vars = [];
      notes = [];
    }
  in
  collect_structure t items;
  collect_vars t;
  t
