(* Classification of callee paths the abstract interpreter understands.
   Everything outside this table is an unknown call and handled with
   full conservatism (arguments read, array arguments also written,
   result tainted by every argument). *)

type hof =
  | Iter  (** f applied to each element; unit result *)
  | Iteri  (** f applied to index and element *)
  | Map  (** like iter but the results form a new array *)
  | Fold  (** accumulator threaded through the elements *)

type t =
  | Pure  (** result depends on the arguments, nothing else touched *)
  | Array_get
  | Array_set
  | Array_length
  | Array_alloc  (** make / copy / append / sub / init / of_list / concat *)
  | Array_init
  | Array_hof of hof
  | Array_fill
  | Array_blit
  | Array_sort
  | Deref
  | Assign
  | Incr  (** incr / decr *)
  | Ref_make
  | Ignore
  | Raise  (** raise / failwith / invalid_arg: no data flow out *)
  | Vranlc  (** Nprand.vranlc — the one modeled full-kill primitive *)
  | Unknown_call

(* Pure by (unqualified) name: Stdlib arithmetic, comparisons, math,
   conversions — and the Scalar.S vocabulary, which reaches here
   unqualified inside [S.(...)] opens. *)
let pure_names =
  [
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "~-"; "~+"; "+."; "-."; "*."; "/."; "**"; "~-."; "~+."; "abs";
    "abs_float"; "sqrt"; "exp"; "log"; "log10"; "sin"; "cos"; "tan"; "atan";
    "atan2"; "floor"; "ceil"; "min"; "max"; "float_of_int"; "int_of_float";
    "truncate"; "float"; "of_int"; "to_int"; "of_float"; "to_float"; "succ";
    "pred"; "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare"; "&&";
    "||"; "not"; "fst"; "snd"; "mod_float"; "copysign"; "is_nan"; "pow";
    "one"; "zero"; "of_floats"; "to_floats";
  ]

let is_pure_name name = List.mem name pure_names

(* Stdlib container modules whose higher-order functions we model.
   List/Seq traffic never aliases a state array, so sharing the Array
   classification is sound (the handler degrades to Pure-ish taint when
   the argument is not an array handle). *)
let is_seq_module m = m = "Array" || m = "List" || m = "Seq"

(* Pure scalar-ish modules: every function is a value computation. *)
let is_pure_module m =
  m = "Float" || m = "Int" || m = "Bool" || m = "Char" || m = "String"

(* Classify a callee path (flattened segments, [Stdlib] prefix
   dropped).  [pure_module] says whether a module name is a Scalar.S
   functor parameter. *)
let classify ~pure_module path =
  let path =
    match path with "Stdlib" :: rest when rest <> [] -> rest | p -> p
  in
  match path with
  | [ m; f ] when is_seq_module m -> (
      match f with
      | "get" | "unsafe_get" -> Array_get
      | "set" | "unsafe_set" -> Array_set
      | "length" -> Array_length
      | "make" | "create_float" | "copy" | "append" | "sub" | "of_list"
      | "concat" | "to_list" ->
          Array_alloc
      | "init" -> Array_init
      | "iter" -> Array_hof Iter
      | "iteri" -> Array_hof Iteri
      | "map" | "mapi" | "map2" | "iter2" | "for_all" | "exists" | "mem"
      | "find_opt" | "filter" ->
          Array_hof Map
      | "fold_left" | "fold_right" -> Array_hof Fold
      | "fill" -> Array_fill
      | "blit" -> Array_blit
      | "sort" | "stable_sort" | "fast_sort" -> Array_sort
      | _ -> Unknown_call)
  | [ m; _ ] when pure_module m || is_pure_module m -> Pure
  | [ "Nprand"; f ] | [ _; "Nprand"; f ] -> (
      match f with
      | "vranlc" -> Vranlc
      | "create" | "next" | "randlc" | "ipow46" -> Pure
      | _ -> Unknown_call)
  | [ f ] -> (
      match f with
      | "!" -> Deref
      | ":=" -> Assign
      | "incr" | "decr" -> Incr
      | "ignore" -> Ignore
      | "ref" -> Ref_make
      | "raise" | "raise_notrace" | "failwith" | "invalid_arg" -> Raise
      | _ when is_pure_name f -> Pure
      | _ -> Unknown_call)
  | _ -> Unknown_call
