(** Minimal JSON values — just enough to emit the lint report and parse
    it back (the fixture suite asserts the round-trip).  No third-party
    JSON dependency: the repo policy is stdlib + compiler-libs only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact, deterministic serialization (object fields in the order
    given; strings escaped per RFC 8259). *)
val to_string : t -> string

(** Parse a value.  Numbers are restricted to (optionally signed)
    integers — all the report ever emits.  Raises [Failure] with a
    byte-offset diagnostic on malformed input. *)
val of_string : string -> t

(** Object field lookup; [None] on non-objects and absent keys. *)
val member : string -> t -> t option
