type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int n -> Buffer.add_string b (string_of_int n)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go x)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* Recursive-descent parser over a cursor into the string. *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Ljson.of_string: %s at byte %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected a digit";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Int v
    | None -> fail "malformed integer"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 ->
                  pos := !pos + 4;
                  Buffer.add_char b (Char.chr code)
              | Some _ -> fail "non-ASCII \\u escape unsupported"
              | None -> fail "malformed \\u escape");
              go ()
          | _ -> fail "unknown escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Str (Buffer.contents b)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> parse_string ()
    | Some ('-' | '0' .. '9') -> parse_int ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            match parse_string () with
            | Str k ->
                skip_ws ();
                expect ':';
                (k, parse_value ())
            | _ -> fail "expected a field name"
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
