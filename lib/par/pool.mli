(** Fixed-size domain pool.

    A pool owns [jobs - 1] worker domains (the submitting domain is the
    remaining unit of parallelism: it blocks in {!map} while workers
    drain the queue, so [jobs] bounds the number of domains the pool
    ever keeps busy).  Built on plain [Domain] + [Mutex]/[Condition] —
    no dependencies beyond the standard library.

    The scrutiny engine threads one pool through every fan-out point
    (per-benchmark analyses, forward-probe element shards, per-variable
    mask extraction); nested {!map} calls issued from inside a worker
    run sequentially in that worker, so arbitrary nesting is safe and
    cannot deadlock the fixed-size pool. *)

type t

(** [create ~jobs] spawns the worker domains.  [jobs = 1] spawns none:
    every {!map} then degenerates to [List.map].  Raises
    [Invalid_argument] if [jobs < 1]. *)
val create : jobs:int -> t

(** Parallelism bound the pool was created with. *)
val jobs : t -> int

(** The CPU budget actually available to this process: the cgroup CPU
    quota (v2 [cpu.max], else v1 [cpu.cfs_quota_us]/[cpu.cfs_period_us],
    rounded up) when one is set, else
    [Domain.recommended_domain_count ()].  Always at least 1. *)
val hardware_threads : unit -> int

(** The default pool width:
    [min (Domain.recommended_domain_count ()) (hardware_threads ())] —
    the advertised core count clamped to the container's CPU quota, so a
    capped container never oversubscribes its budget. *)
val default_jobs : unit -> int

(** [map pool f xs] applies [f] to every element of [xs] on the pool and
    returns the results {e in input order}, whatever order the workers
    finished in.  [f] must therefore be safe to call from any domain.

    If any application raised, the first exception in input-index order
    is re-raised (with its original backtrace) after every task has
    settled — no task of the batch is abandoned mid-flight.

    [~sanitize:true] records the write set of every shard through the
    instrumented mutation points and checks cross-shard disjointness
    when the batch joins, folding any witness into the ambient
    {!Scvad_sanitize.Sanitize} session; while a session is armed
    ({!Scvad_sanitize.Sanitize.arm}) every batch is sanitized, with or
    without the flag.  Sequential fallbacks (empty/singleton input,
    [jobs = 1], nested in-worker maps) run unsanitized: one shard cannot
    race with itself. *)
val map : ?sanitize:bool -> t -> ('a -> 'b) -> 'a list -> 'b list

(** Like {!map} over [0 .. n-1]; returns an array. *)
val init : ?sanitize:bool -> t -> int -> (int -> 'a) -> 'a array

(** Shut the workers down and join them.  Idempotent.  Calling {!map}
    afterwards raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f pool] and shuts the pool down on every
    exit path. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
