(* Fixed-size domain pool on Domain + Mutex/Condition.

   One mutex guards both the task queue and the per-batch completion
   counters; workers drop it while running user code.  The submitting
   domain participates: while its batch is outstanding it pops and runs
   queued tasks itself, so [jobs] domains (workers + submitter) stay
   busy and a pool of width 1 never context-switches at all.

   Nested [map] calls from inside a worker run sequentially in that
   worker (detected with a domain-local flag) — the fixed-size pool can
   therefore never deadlock on its own tasks. *)

module Sanitize = Scvad_sanitize.Sanitize

type t = {
  mu : Mutex.t;
  work : Condition.t; (* signaled when the queue gains tasks or on close *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  jobs : int;
  mutable workers : unit Domain.t list;
}

(* True inside a pool worker: nested maps must not re-enter the pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Container CPU budget.  [Domain.recommended_domain_count] reports the
   host's core count even when a cgroup quota caps the process well
   below it; oversubscribing a capped container just adds scheduler
   churn.  Read the quota directly (cgroup v2, then v1) and clamp. *)

let read_first_line path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      line

let quota_of ~quota ~period =
  match (int_of_string_opt quota, int_of_string_opt period) with
  | Some q, Some p when q > 0 && p > 0 -> Some ((q + p - 1) / p)
  | _ -> None (* -1 / "max" / garbage: unlimited *)

let cgroup_quota () =
  match read_first_line "/sys/fs/cgroup/cpu.max" with
  | Some line -> (
      (* v2: one file holding "<quota|max> <period>". *)
      match String.split_on_char ' ' (String.trim line) with
      | [ quota; period ] -> quota_of ~quota ~period
      | _ -> None)
  | None -> (
      (* v1: split quota/period files; quota -1 means unlimited. *)
      match
        ( read_first_line "/sys/fs/cgroup/cpu/cpu.cfs_quota_us",
          read_first_line "/sys/fs/cgroup/cpu/cpu.cfs_period_us" )
      with
      | Some quota, Some period ->
          quota_of ~quota:(String.trim quota) ~period:(String.trim period)
      | _ -> None)

let hardware_threads () =
  match cgroup_quota () with
  | Some n -> max 1 n
  | None -> Domain.recommended_domain_count ()

let default_jobs () =
  min (Domain.recommended_domain_count ()) (hardware_threads ())

let jobs t = t.jobs

let worker_loop pool () =
  Domain.DLS.set in_worker true;
  Mutex.lock pool.mu;
  let rec loop () =
    if not (Queue.is_empty pool.queue) then begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mu;
      task ();
      Mutex.lock pool.mu;
      loop ()
    end
    else if pool.closed then Mutex.unlock pool.mu
    else begin
      Condition.wait pool.work pool.mu;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf "Pool.create: jobs must be >= 1 (got %d)" jobs);
  let pool =
    {
      mu = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closed = false;
      jobs;
      workers = [];
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let shutdown t =
  Mutex.lock t.mu;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  if not was_closed then List.iter Domain.join t.workers

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* One outstanding [map] call: results slot-addressed by input index, so
   ordering is deterministic no matter which domain ran what. *)
type 'b batch = {
  results : ('b, exn * Printexc.raw_backtrace) result option array;
  mutable pending : int;
  done_ : Condition.t; (* broadcast (under the pool mutex) at pending = 0 *)
}

let settle pool batch i outcome =
  Mutex.lock pool.mu;
  batch.results.(i) <- Some outcome;
  batch.pending <- batch.pending - 1;
  if batch.pending = 0 then Condition.broadcast batch.done_;
  Mutex.unlock pool.mu

let run_map ?(sanitize = false) ?(label = "pool.map") pool f (xs : 'a array) =
  let n = Array.length xs in
  let batch = { results = Array.make n None; pending = n; done_ = Condition.create () } in
  (* Sanitized batches record per-shard write sets and check cross-shard
     disjointness at join (DESIGN.md §17): explicitly via [~sanitize], or
     for every batch while a [Sanitize] session is armed. *)
  let sbatch =
    if sanitize || Sanitize.armed () then
      Some (Sanitize.batch_start ~label n)
    else None
  in
  let task i () =
    let outcome =
      try
        Ok
          (match sbatch with
          | None -> f xs.(i)
          | Some b -> Sanitize.in_shard b i (fun () -> f xs.(i)))
      with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    settle pool batch i outcome
  in
  Mutex.lock pool.mu;
  if pool.closed then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.map: pool is shut down"
  end;
  for i = 0 to n - 1 do
    Queue.push (task i) pool.queue
  done;
  Condition.broadcast pool.work;
  (* Participate until the batch settles. *)
  while batch.pending > 0 do
    if not (Queue.is_empty pool.queue) then begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mu;
      task ();
      Mutex.lock pool.mu
    end
    else Condition.wait batch.done_ pool.mu
  done;
  Mutex.unlock pool.mu;
  (* Every task has settled: fold the write sets before any re-raise so
     a failing batch still reports its witnesses. *)
  Option.iter Sanitize.batch_join sbatch;
  (* First failure in input order wins; later slots stay settled. *)
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    batch.results

let map ?sanitize pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      if pool.jobs = 1 || Domain.DLS.get in_worker then List.map f xs
      else
        Array.to_list
          (run_map ?sanitize ~label:"pool.map" pool f (Array.of_list xs))

let init ?sanitize pool n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  if n = 0 then [||]
  else if n = 1 || pool.jobs = 1 || Domain.DLS.get in_worker then
    Array.init n f
  else run_map ?sanitize ~label:"pool.init" pool f (Array.init n Fun.id)
