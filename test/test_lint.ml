(* Fixture suite for scvad_lint: each rule against a known-bad and a
   known-good snippet, pragma semantics, allowlist accounting, report
   ordering, and the JSON round-trip. *)

module Driver = Scvad_lint.Driver
module Finding = Scvad_lint.Finding

(* dune runtest runs in test/, dune exec from the workspace root —
   resolve the fixture tree from either. *)
let root =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let p name = Filename.concat root name

(* The fixture tree stands in for the real source roots: the
   domain-safety rule is scoped to it, and no allowlist applies unless a
   test says so. *)
let fixture_config =
  {
    Driver.domain_dirs = [ root ];
    (* No pool runtime in the fixture tree: the spawn rule applies to
       every fixture unless a test says otherwise. *)
    pool_dirs = [];
    unsafe_allow = [];
    float_allow = [];
  }

let lint path = Driver.lint_paths ~config:fixture_config [ path ]

let lines_of rule (r : Driver.result) =
  List.filter_map
    (fun (f : Finding.t) ->
      if f.Finding.rule = rule then Some f.Finding.line else None)
    r.Driver.findings

let check_lines name rule path expected =
  let r = lint path in
  Alcotest.(check (list int)) name expected (lines_of rule r)

let check_clean name path =
  let r = lint path in
  Alcotest.(check (list string))
    name []
    (List.map Finding.to_text r.Driver.findings)

(* ------------------------------------------------------------------ *)
(* One known-bad / known-good pair per rule                            *)
(* ------------------------------------------------------------------ *)

let test_domain_bad () =
  check_lines "domain-safety findings" Finding.Domain_safety
    (p "domain_bad.ml")
    [ 4; 5; 6; 7; 8; 12; 13; 17; 23; 27 ]

let test_domain_good () = check_clean "no findings" (p "domain_good.ml")

let test_domain_out_of_scope () =
  (* The same known-bad file is clean when the rule's scope excludes it. *)
  let config = { fixture_config with Driver.domain_dirs = [ "lib" ] } in
  let r = Driver.lint_paths ~config [ (p "domain_bad.ml") ] in
  Alcotest.(check int) "domain rule out of scope" 0 (List.length r.Driver.findings)

let test_domain_spawn_bad () =
  check_lines "domain-spawn-outside-pool findings"
    Finding.Domain_spawn_outside_pool
    (p "domain_spawn_bad.ml")
    [ 4; 5; 8; 9 ]

let test_domain_spawn_good () =
  (* Domain.self/cpu_relax and pool-mediated fan-out are benign; the
     one raw spawn carries a justified pragma. *)
  check_clean "no findings" (p "domain_spawn_good.ml")

let test_domain_spawn_pool_scope () =
  (* The same known-bad file is the trusted pool runtime when the
     config says so — the rule must not fire on lib/par itself. *)
  let config = { fixture_config with Driver.pool_dirs = [ root ] } in
  let r = Driver.lint_paths ~config [ (p "domain_spawn_bad.ml") ] in
  Alcotest.(check int)
    "spawn rule exempt in pool dirs" 0
    (List.length r.Driver.findings)

let test_unsafe_bad () =
  check_lines "unsafe-access findings" Finding.Unsafe_access
    (p "unsafe_bad.ml") [ 3; 4; 6 ]

let test_unsafe_good () = check_clean "no findings" (p "unsafe_good.ml")

let test_floateq_bad () =
  check_lines "float-equality findings" Finding.Float_equality
    (p "floateq_bad.ml") [ 3; 4; 5; 6; 7 ]

let test_floateq_good () = check_clean "no findings" (p "floateq_good.ml")

let test_swallow_bad () =
  check_lines "swallowed-exception findings" Finding.Swallowed_exception
    (p "swallow_bad.ml") [ 4; 5; 7 ]

let test_swallow_good () = check_clean "no findings" (p "swallow_good.ml")

let test_deprecated_bad () =
  check_lines "deprecated-entrypoint findings" Finding.Deprecated_entrypoint
    (p "deprecated_bad.ml") [ 5; 6; 7; 10 ]

let test_deprecated_good () = check_clean "no findings" (p "deprecated_good.ml")

let test_bigarray_bad () =
  check_lines "bigarray-generic-access findings" Finding.Bigarray_generic_access
    (p "bigarray_bad.ml") [ 6; 12; 18; 25 ]

let test_bigarray_good () = check_clean "no findings" (p "bigarray_good.ml")

(* ------------------------------------------------------------------ *)
(* Pragmas                                                             *)
(* ------------------------------------------------------------------ *)

let test_pragma_suppresses () =
  let r = lint (p "pragma_ok.ml") in
  Alcotest.(check (list string))
    "all findings suppressed" []
    (List.map Finding.to_text r.Driver.findings);
  Alcotest.(check int) "three pragmas consumed" 3 r.Driver.suppressed

let test_pragma_malformed () =
  let r = lint (p "pragma_bad.ml") in
  let tagged severity =
    List.filter (fun (f : Finding.t) -> f.Finding.severity = severity)
      r.Driver.findings
  in
  (* A justification-less pragma and an unknown rule are errors; the
     unsuppressed float-equality stays; the stale pragma is a warning. *)
  Alcotest.(check (list int))
    "error lines" [ 4; 5; 7 ]
    (List.map (fun (f : Finding.t) -> f.Finding.line) (tagged Finding.Error));
  Alcotest.(check (list int))
    "warning lines (stale pragma)" [ 10 ]
    (List.map (fun (f : Finding.t) -> f.Finding.line) (tagged Finding.Warning));
  Alcotest.(check int) "nothing suppressed" 0 r.Driver.suppressed;
  Alcotest.(check bool) "errors fail the run" true (Driver.has_errors r)

let test_unused_pragma_warns_only () =
  let r = lint (p "unused_pragma.ml") in
  Alcotest.(check int) "one finding" 1 (List.length r.Driver.findings);
  Alcotest.(check bool) "warnings alone do not fail" false (Driver.has_errors r)

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)
(* ------------------------------------------------------------------ *)

let test_allowlist_silences_and_reports () =
  let config =
    {
      fixture_config with
      Driver.unsafe_allow =
        [ ((p "unsafe_bad.ml"), "fixture justification") ];
    }
  in
  let r = Driver.lint_paths ~config [ (p "unsafe_bad.ml") ] in
  Alcotest.(check int) "no findings" 0 (List.length r.Driver.findings);
  match r.Driver.allow_notes with
  | [ note ] ->
      Alcotest.(check string)
        "justification carried" "fixture justification"
        note.Driver.a_justification;
      Alcotest.(check int) "uses counted" 3 note.Driver.a_uses
  | notes ->
      Alcotest.failf "expected exactly one allowlist note, got %d"
        (List.length notes)

(* ------------------------------------------------------------------ *)
(* Report ordering and JSON round-trip                                 *)
(* ------------------------------------------------------------------ *)

let whole_tree () = Driver.lint_paths ~config:fixture_config [ root ]

let test_sorted_by_file_line () =
  let r = whole_tree () in
  Alcotest.(check bool) "the tree exercises multiple files" true
    (List.length
       (List.sort_uniq String.compare
          (List.map (fun (f : Finding.t) -> f.Finding.file) r.Driver.findings))
    > 3);
  Alcotest.(check (list string))
    "findings sorted by (file, line)"
    (List.map Finding.to_text (List.sort Finding.compare r.Driver.findings))
    (List.map Finding.to_text r.Driver.findings)

let test_json_roundtrip () =
  let r = whole_tree () in
  let parsed = Driver.findings_of_json (Driver.render_json r) in
  Alcotest.(check int)
    "same cardinality" (List.length r.Driver.findings) (List.length parsed);
  List.iter2
    (fun (a : Finding.t) (b : Finding.t) ->
      Alcotest.(check string) "finding round-trips" (Finding.to_text a)
        (Finding.to_text b);
      Alcotest.(check bool) "record equality" true (a = b))
    r.Driver.findings parsed

let test_json_rejects_garbage () =
  Alcotest.(check bool) "malformed JSON raises" true
    (match Driver.findings_of_json "{\"findings\": [42" with
    | exception Failure _ -> true
    | _ -> false)

let suites =
  [ ( "lint.rules",
      [ Alcotest.test_case "domain-safety: known bad" `Quick test_domain_bad;
        Alcotest.test_case "domain-safety: known good" `Quick test_domain_good;
        Alcotest.test_case "domain-safety: scope" `Quick test_domain_out_of_scope;
        Alcotest.test_case "domain-spawn-outside-pool: known bad" `Quick
          test_domain_spawn_bad;
        Alcotest.test_case "domain-spawn-outside-pool: known good" `Quick
          test_domain_spawn_good;
        Alcotest.test_case "domain-spawn-outside-pool: pool scope" `Quick
          test_domain_spawn_pool_scope;
        Alcotest.test_case "unsafe-access: known bad" `Quick test_unsafe_bad;
        Alcotest.test_case "unsafe-access: known good" `Quick test_unsafe_good;
        Alcotest.test_case "float-equality: known bad" `Quick test_floateq_bad;
        Alcotest.test_case "float-equality: known good" `Quick test_floateq_good;
        Alcotest.test_case "swallowed-exception: known bad" `Quick
          test_swallow_bad;
        Alcotest.test_case "swallowed-exception: known good" `Quick
          test_swallow_good;
        Alcotest.test_case "deprecated-entrypoint: known bad" `Quick
          test_deprecated_bad;
        Alcotest.test_case "deprecated-entrypoint: known good" `Quick
          test_deprecated_good;
        Alcotest.test_case "bigarray-generic-access: known bad" `Quick
          test_bigarray_bad;
        Alcotest.test_case "bigarray-generic-access: known good" `Quick
          test_bigarray_good ] );
    ( "lint.driver",
      [ Alcotest.test_case "pragmas suppress with justification" `Quick
          test_pragma_suppresses;
        Alcotest.test_case "malformed pragmas are errors" `Quick
          test_pragma_malformed;
        Alcotest.test_case "stale pragma is a warning only" `Quick
          test_unused_pragma_warns_only;
        Alcotest.test_case "allowlist silences and reports uses" `Quick
          test_allowlist_silences_and_reports;
        Alcotest.test_case "findings sorted by (file, line)" `Quick
          test_sorted_by_file_line;
        Alcotest.test_case "JSON round-trips" `Quick test_json_roundtrip;
        Alcotest.test_case "JSON parser rejects garbage" `Quick
          test_json_rejects_garbage ] ) ]
