(* End-to-end tests of the core pipeline on a synthetic application with
   a known criticality pattern, before the NPB kernels exercise it at
   scale.

   Toy app: a 10-element array where only elements 0..7 participate in
   the computation (elements 8..9 model the over-allocation the paper
   attributes to "imperfect coding"), plus a scalar accumulator and a
   main-loop index. *)

open Scvad_core
open Scvad_ad

module Toy : App.S = struct
  let name = "toy"
  let description = "stencil on a[0..7] of a 10-element array"
  let default_niter = 6
  let analysis_niter = 2
  let tape_nodes_hint = 1 lsl 12
  let int_taint_masks = None

  module Make (S : Scvad_ad.Scalar.S) = struct
    type scalar = S.t

    type state = {
      a : S.t array;
      mutable acc : S.t;
      mutable iter_done : int;
    }

    let create () =
      {
        a = Array.init 10 (fun i -> S.of_float (1. +. (0.1 *. float i)));
        acc = S.zero;
        iter_done = 0;
      }

    let step st =
      for i = 0 to 6 do
        st.a.(i) <- S.(st.a.(i) +. (of_float 0.1 *. st.a.(i + 1)))
      done;
      let sum = ref S.zero in
      for i = 0 to 7 do
        sum := S.(!sum +. st.a.(i))
      done;
      st.acc <- S.(st.acc +. !sum)

    let run st ~from ~until =
      for _ = from to until - 1 do
        step st;
        st.iter_done <- st.iter_done + 1
      done

    let iterations_done st = st.iter_done
    let output st = st.acc

    let float_vars st =
      [ Variable.of_array ~name:"a" ~doc:"stencil state"
          (Scvad_nd.Shape.create [ 10 ])
          st.a;
        Variable.make ~name:"acc" ~doc:"running reduction"
          ~shape:Scvad_nd.Shape.scalar ~spe:1
          ~get:(fun _ _ -> st.acc)
          ~set:(fun _ _ x -> st.acc <- x)
          () ]

    let int_vars st =
      [ {
          Variable.iname = "it";
          ishape = Scvad_nd.Shape.scalar;
          iget = (fun _ -> st.iter_done);
          iset = (fun _ x -> st.iter_done <- x);
          icrit = Variable.Always_critical "main loop index";
          idoc = "main loop index";
        } ]
  end
end

let expected_mask = Array.init 10 (fun i -> i <= 7)

let mask_of_report report vname =
  (Criticality.find report vname).Criticality.mask

let test_reverse_toy () =
  let r = Analyzer.run (module Toy) in
  Alcotest.(check (array bool)) "a mask" expected_mask (mask_of_report r "a");
  Alcotest.(check (array bool)) "acc mask" [| true |] (mask_of_report r "acc");
  Alcotest.(check (array bool)) "it mask" [| true |] (mask_of_report r "it");
  let va = Criticality.find r "a" in
  Alcotest.(check int) "uncritical count" 2 (Criticality.uncritical va);
  Alcotest.(check int) "total" 10 (Criticality.total va);
  Alcotest.(check string) "regions" "0-8"
    (Scvad_checkpoint.Regions.to_string va.Criticality.regions);
  Alcotest.(check bool) "tape recorded" true (r.Criticality.tape_nodes > 0)

let test_modes_agree_on_toy () =
  let by_mode m =
    Analyzer.run ~config:Analyzer.Config.(default |> with_mode m) (module Toy)
  in
  let reverse = by_mode Criticality.Reverse_gradient in
  let forward = by_mode Criticality.Forward_probe in
  let activity = by_mode Criticality.Activity_dependence in
  List.iter
    (fun name ->
      Alcotest.(check (array bool))
        (name ^ ": forward = reverse")
        (mask_of_report reverse name)
        (mask_of_report forward name);
      Alcotest.(check (array bool))
        (name ^ ": activity = reverse")
        (mask_of_report reverse name)
        (mask_of_report activity name))
    [ "a"; "acc" ]

let test_analyze_mid_run () =
  (* Lifting at a later checkpoint boundary must not change the
     pattern (access patterns are iteration-invariant). *)
  let r =
    Analyzer.run
      ~config:Analyzer.Config.(default |> with_at_iter 3 |> with_niter 5)
      (module Toy)
  in
  Alcotest.(check (array bool)) "a mask at t=3" expected_mask
    (mask_of_report r "a")

let test_analyze_bad_args () =
  match
    Analyzer.run
      ~config:Analyzer.Config.(default |> with_at_iter 5 |> with_niter 2)
      (module Toy)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let with_store f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scvad_core_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  let store = Scvad_checkpoint.Store.create dir in
  Fun.protect
    ~finally:(fun () ->
      Scvad_checkpoint.Store.wipe store;
      Unix.rmdir dir)
    (fun () -> f store)

let test_crash_restart_full () =
  with_store (fun store ->
      let e =
        Harness.crash_restart_experiment ~store ~every:2 ~crash_at:4
          (module Toy)
      in
      Alcotest.(check bool) "verified" true e.Harness.verified;
      Alcotest.(check int) "iterations" e.Harness.golden.Harness.iterations
        e.Harness.restarted.Harness.iterations)

let test_crash_restart_pruned_poisoned () =
  with_store (fun store ->
      let report = Analyzer.run (module Toy) in
      let e =
        Harness.crash_restart_experiment ~report ~store ~every:2 ~crash_at:5
          ~poison:Scvad_checkpoint.Failure.Nan (module Toy)
      in
      Alcotest.(check bool) "verified with NaN-poisoned uncritical" true
        e.Harness.verified)

let test_pruned_restore_poisons_uncritical () =
  let module I = Toy.Make (Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:3;
  let report = Analyzer.run (module Toy) in
  let file =
    Pruned.snapshot ~report ~app:"toy" ~iteration:3
      ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ()
  in
  let st2 = I.create () in
  let from =
    Pruned.restore file ~float_vars:(I.float_vars st2)
      ~int_vars:(I.int_vars st2)
  in
  Alcotest.(check int) "restored iteration" 3 from;
  let module V = Variable in
  let a2 = List.hd (I.float_vars st2) in
  for e = 0 to 7 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "critical a[%d] restored" e)
      ((List.hd (I.float_vars st)).V.get e 0)
      (a2.V.get e 0)
  done;
  Alcotest.(check bool) "a[8] poisoned" true (Float.is_nan (a2.V.get 8 0));
  Alcotest.(check bool) "a[9] poisoned" true (Float.is_nan (a2.V.get 9 0))

let test_storage_accounting () =
  let report = Analyzer.run (module Toy) in
  let row = Report.table3_row (module Toy) report in
  (* full: a (10) + acc (1) + it (1) = 12 scalars *)
  Alcotest.(check int) "original bytes" (12 * 8) row.Report.original_bytes;
  (* pruned payload: a keeps 8 of 10 elements; acc and it stay full *)
  Alcotest.(check int) "optimized bytes" (10 * 8) row.Report.optimized_bytes;
  (* one region of a: two 8-byte bounds in the auxiliary file *)
  Alcotest.(check int) "aux bytes" 16 row.Report.aux_bytes;
  Alcotest.(check (float 1e-9)) "saved rate" (2. /. 12.)
    (Report.saved_rate row)

let test_report_rendering () =
  let report = Analyzer.run (module Toy) in
  let t1 = Report.table1 [ (module Toy) ] in
  Alcotest.(check bool) "table1 lists a" true
    (Astring.String.is_infix ~affix:"double a[10]" t1);
  Alcotest.(check bool) "table1 lists it" true
    (Astring.String.is_infix ~affix:"int it" t1);
  let t2 = Report.table2 [ report ] in
  Alcotest.(check bool) "table2 row" true
    (Astring.String.is_infix ~affix:"TOY(a)" t2);
  Alcotest.(check bool) "table2 rate" true
    (Astring.String.is_infix ~affix:"20.0%" t2);
  let t3 = Report.table3 [ Report.table3_row (module Toy) report ] in
  Alcotest.(check bool) "table3 row" true
    (Astring.String.is_infix ~affix:"TOY" t3)

let suites =
  [ ( "core.analyzer",
      [ Alcotest.test_case "reverse on toy app" `Quick test_reverse_toy;
        Alcotest.test_case "three modes agree" `Quick test_modes_agree_on_toy;
        Alcotest.test_case "mid-run checkpoint boundary" `Quick
          test_analyze_mid_run;
        Alcotest.test_case "bad arguments" `Quick test_analyze_bad_args ] );
    ( "core.harness",
      [ Alcotest.test_case "crash/restart full checkpoint" `Quick
          test_crash_restart_full;
        Alcotest.test_case "crash/restart pruned + poisoned" `Quick
          test_crash_restart_pruned_poisoned;
        Alcotest.test_case "pruned restore poisons uncritical" `Quick
          test_pruned_restore_poisons_uncritical ] );
    ( "core.report",
      [ Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
        Alcotest.test_case "table rendering" `Quick test_report_rendering ] ) ]
