(* Aggregated alcotest runner for all scvad libraries. *)

let () =
  Alcotest.run "scvad"
    (Test_ad.suites @ Test_nd.suites @ Test_nprand.suites
   @ Test_solvers.suites @ Test_checkpoint.suites @ Test_core.suites @ Test_npb.suites @ Test_viz.suites @ Test_mixed.suites @ Test_extras.suites @ Test_corruption.suites @ Test_incremental.suites @ Test_resilience.suites @ Test_par.suites @ Test_lint.suites @ Test_activity.suites
   @ Test_guard.suites @ Test_discover.suites @ Test_segtape.suites @ Test_budget.suites
   @ Test_sparse.suites @ Test_cost.suites @ Test_racefree.suites)
