(* Guard tests: the golden certificate table for the eight NPB kernels,
   escape detection and pragma handling on a synthetic kernel, the IS
   falsifier golden witnesses (elements the reverse/taint criterion has
   nothing to say about but perturbation proves critical), the
   Smooth-never-falsified property at random boundaries, mask
   hardening, and the certificate JSON round-trip. *)

open Scvad_core
module Guard = Scvad_guard
module Cert = Guard.Cert
module Driver = Guard.Driver
module Finding = Scvad_lint.Finding

let npb_dir () =
  match Driver.locate_npb_dir () with
  | Some d -> d
  | None -> Alcotest.fail "lib/npb not found above the test cwd"

(* One static pass for the whole suite. *)
let certs_cache = ref None

let certs () =
  match !certs_cache with
  | Some v -> v
  | None ->
      let v = Driver.analyze_dir (npb_dir ()) in
      certs_cache := Some v;
      v

let find_app name =
  match Scvad_npb.Suite.find name with
  | Some a -> a
  | None -> Alcotest.failf "no %s app" name

(* ------------------------------------------------------------------ *)
(* Golden certificate table                                            *)
(* ------------------------------------------------------------------ *)

(* (app, var, class, assumed).  The assumed entries are the solver
   kernels whose flow leaks into Scvad_solvers and is vouched for by a
   guard pragma — exactly the variables the falsifier must keep
   honest. *)
let golden =
  [
    ("bt", "u", "smooth", true);
    ("bt", "step", "control-tainted", false);
    ("cg", "x", "smooth", false);
    ("cg", "it", "control-tainted", false);
    ("ep", "sx", "smooth", false);
    ("ep", "sy", "smooth", false);
    ("ep", "q", "smooth", false);
    ("ep", "buffer", "smooth", false);
    ("ep", "k", "control-tainted", false);
    ("ft", "y", "smooth", true);
    ("ft", "sums", "smooth", true);
    ("ft", "kt", "control-tainted", false);
    ("is", "passed_verification", "control-tainted", false);
    ("is", "key_array", "control-tainted", false);
    ("is", "bucket_ptrs", "control-tainted", false);
    ("is", "iteration", "control-tainted", false);
    ("lu", "u", "smooth", true);
    ("lu", "rho_i", "smooth", true);
    ("lu", "qs", "smooth", true);
    ("lu", "rsd", "smooth", true);
    ("lu", "istep", "control-tainted", false);
    ("mg", "u", "smooth", false);
    ("mg", "r", "smooth", false);
    ("mg", "it", "control-tainted", false);
    ("sp", "u", "smooth", true);
    ("sp", "step", "control-tainted", false);
  ]

let test_golden_table () =
  let cs, findings = certs () in
  List.iter
    (fun (f : Finding.t) ->
      if f.Finding.severity = Finding.Error then
        Alcotest.failf "unexpected error finding: %s" (Finding.to_text f))
    findings;
  Alcotest.(check int) "eight apps" 8 (List.length cs);
  List.iter
    (fun (a : Cert.app_certs) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s resolved" a.Cert.app)
        true a.Cert.resolved)
    cs;
  List.iter
    (fun (app, var, cls, assumed) ->
      match Cert.find cs ~app ~var with
      | None -> Alcotest.failf "no certificate for %s.%s" app var
      | Some v ->
          Alcotest.(check string)
            (Printf.sprintf "%s.%s class" app var)
            cls
            (Cert.class_name v.Cert.class_);
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s assumed" app var)
            assumed v.Cert.assumed)
    golden;
  (* And nothing beyond the table. *)
  List.iter
    (fun (a : Cert.app_certs) ->
      List.iter
        (fun (v : Cert.var_cert) ->
          if
            not
              (List.exists
                 (fun (app, var, _, _) -> app = a.Cert.app && var = v.Cert.var)
                 golden)
          then Alcotest.failf "unexpected certificate %s.%s" a.Cert.app
              v.Cert.var)
        a.Cert.certs)
    cs

(* IS is the paper-relevant witness: its escape sites must include both
   the data-dependent subscripts of the distribution loop and the
   verification branches. *)
let test_is_escape_sites () =
  let cs, _ = certs () in
  let kinds var =
    match Cert.find cs ~app:"is" ~var with
    | None -> Alcotest.failf "no is.%s certificate" var
    | Some v ->
        List.sort_uniq compare
          (List.map (fun s -> s.Cert.s_kind) v.Cert.sites)
  in
  let has k var = List.mem k (kinds var) in
  Alcotest.(check bool) "key_array subscript escape" true
    (has Cert.Subscript "key_array");
  Alcotest.(check bool) "key_array branch escape" true
    (has Cert.Branch "key_array");
  Alcotest.(check bool) "key_array compare escape" true
    (has Cert.Compare "key_array");
  Alcotest.(check bool) "bucket_ptrs subscript escape" true
    (has Cert.Subscript "bucket_ptrs")

(* ------------------------------------------------------------------ *)
(* Escape detection on a synthetic kernel                              *)
(* ------------------------------------------------------------------ *)

let toy_source ~body ~pragma =
  Printf.sprintf
    {|
let n = 4

module Make_generic (S : Scvad_ad.Scalar.S) = struct
  type state = {
    mutable acc : S.t;
    scratch : S.t array;
    mutable iter_done : int;
  }

  let create () =
    { acc = S.zero; scratch = Array.make n S.zero; iter_done = 0 }

  let run st ~from ~until =
    for _ = from to until - 1 do
      %s
      st.iter_done <- st.iter_done + 1
    done

  let output st = st.acc

  let float_vars st =
    let open Scvad_core.Variable in
    [ %s
      make ~name:"acc" ~shape:Scvad_nd.Shape.scalar ~spe:1
        ~get:(fun _ _ -> st.acc)
        ~set:(fun _ _ v -> st.acc <- v)
        ();
      of_array ~name:"scratch" (Scvad_nd.Shape.create [ n ]) st.scratch ]
end

module App = struct
  let name = "toy"
end
|}
    body pragma

let toy_certs ?(pragma = "") body =
  Driver.analyze_source ~file:"toy.ml" (toy_source ~body ~pragma)

let toy_cert ?pragma body var =
  match toy_certs ?pragma body with
  | None, _ -> Alcotest.fail "toy kernel not recognized as an app"
  | Some ac, findings -> (
      match Cert.find_var ac ~var with
      | Some v -> (v, findings)
      | None -> Alcotest.failf "no certificate for toy.%s" var)

let smooth_body = "for i = 0 to n - 1 do st.acc <- S.(st.acc +. st.scratch.(i)) done;"

let test_toy_smooth () =
  let acc, findings = toy_cert smooth_body "acc" in
  Alcotest.(check string) "acc smooth" "smooth" (Cert.class_name acc.Cert.class_);
  Alcotest.(check int) "no sites" 0 (List.length acc.Cert.sites);
  let scratch, _ = toy_cert smooth_body "scratch" in
  Alcotest.(check string) "scratch smooth" "smooth"
    (Cert.class_name scratch.Cert.class_);
  Alcotest.(check int) "no findings" 0 (List.length findings)

let test_toy_branch_escape () =
  let body = "if st.acc > S.zero then st.acc <- S.(st.acc +. st.acc);" in
  let acc, _ = toy_cert body "acc" in
  Alcotest.(check string) "acc control-tainted" "control-tainted"
    (Cert.class_name acc.Cert.class_);
  let kinds = List.map (fun s -> s.Cert.s_kind) acc.Cert.sites in
  Alcotest.(check bool) "branch site" true (List.mem Cert.Branch kinds);
  Alcotest.(check bool) "compare site" true (List.mem Cert.Compare kinds);
  (* The untouched variable stays smooth. *)
  let scratch, _ = toy_cert body "scratch" in
  Alcotest.(check string) "scratch smooth" "smooth"
    (Cert.class_name scratch.Cert.class_)

let test_toy_conversion_escape () =
  let body = "st.acc <- st.scratch.(int_of_float (S.to_float st.acc));" in
  let acc, _ = toy_cert body "acc" in
  Alcotest.(check string) "acc control-tainted" "control-tainted"
    (Cert.class_name acc.Cert.class_);
  let kinds = List.map (fun s -> s.Cert.s_kind) acc.Cert.sites in
  Alcotest.(check bool) "int-conversion site" true
    (List.mem Cert.Int_conversion kinds);
  Alcotest.(check bool) "subscript site" true (List.mem Cert.Subscript kinds)

let test_toy_kink_escape () =
  let body = "st.acc <- max st.acc st.scratch.(0);" in
  let acc, _ = toy_cert body "acc" in
  Alcotest.(check string) "acc control-tainted" "control-tainted"
    (Cert.class_name acc.Cert.class_);
  let kinds = List.map (fun s -> s.Cert.s_kind) acc.Cert.sites in
  Alcotest.(check bool) "kink site" true (List.mem Cert.Kink kinds)

(* Taint laundering: field-tainted data written into another field and
   branched on there must still name the source field at the escape. *)
let test_toy_laundered_taint () =
  let body =
    "st.scratch.(0) <- st.acc;\n\
    \      if st.scratch.(0) > S.zero then st.acc <- S.(st.acc +. st.acc);"
  in
  let acc, _ = toy_cert body "acc" in
  Alcotest.(check string) "acc control-tainted via scratch" "control-tainted"
    (Cert.class_name acc.Cert.class_)

(* ------------------------------------------------------------------ *)
(* Leaks and pragmas                                                   *)
(* ------------------------------------------------------------------ *)

let leak_body = "st.acc <- Mystery.blend st.acc st.scratch.(0);"

let test_toy_leak_is_unknown () =
  let acc, _ = toy_cert leak_body "acc" in
  Alcotest.(check string) "acc unknown" "unknown"
    (Cert.class_name acc.Cert.class_);
  let scratch, _ = toy_cert leak_body "scratch" in
  Alcotest.(check string) "scratch unknown" "unknown"
    (Cert.class_name scratch.Cert.class_)

let test_toy_pragma_rescues_leak () =
  let pragma =
    "(* guard: assume smooth acc — Mystery.blend is plain arithmetic *)"
  in
  let acc, findings = toy_cert ~pragma leak_body "acc" in
  Alcotest.(check string) "acc assumed smooth" "smooth"
    (Cert.class_name acc.Cert.class_);
  Alcotest.(check bool) "marked assumed" true acc.Cert.assumed;
  Alcotest.(check int) "pragma consumed: no findings" 0
    (List.length findings);
  (* The pragma names acc only; scratch keeps its honest Unknown. *)
  let scratch, _ = toy_cert ~pragma leak_body "scratch" in
  Alcotest.(check string) "scratch still unknown" "unknown"
    (Cert.class_name scratch.Cert.class_)

let test_toy_pragma_unknown_class () =
  let pragma = "(* guard: assume rough acc — only smooth is assumable *)" in
  match toy_certs ~pragma leak_body with
  | _, [ f ] ->
      Alcotest.(check string) "error severity" "error"
        (Finding.severity_name f.Finding.severity)
  | _, fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_toy_pragma_unused_warns () =
  let pragma =
    "(* guard: assume smooth nonexistent — covers no declaration *)"
  in
  match toy_certs ~pragma leak_body with
  | _, [ f ] ->
      Alcotest.(check string) "warning severity" "warning"
        (Finding.severity_name f.Finding.severity)
  | _, fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* IS falsifier golden witnesses                                       *)
(* ------------------------------------------------------------------ *)

(* The bucket ranks: perturbing bucket_ptrs just before full_verify
   must change the verification sum — the concrete element class the
   certificate's Subscript/Compare sites predict. *)
let test_is_bucket_ptrs_witness () =
  let (module A) = find_app "is" in
  let targets =
    [
      {
        Falsifier.t_var = "bucket_ptrs";
        t_kind = Criticality.Int_var;
        t_candidates = Array.init 512 Fun.id;
      };
    ]
  in
  let o =
    Falsifier.run ~boundary:A.analysis_niter ~niter:A.analysis_niter
      ~trials:40 ~seed:11 ~targets
      (module A : App.S)
  in
  Alcotest.(check bool) "continuation stable" true o.Falsifier.f_stable;
  Alcotest.(check bool) "bucket_ptrs falsified" true
    (o.Falsifier.f_witnesses <> []);
  List.iter
    (fun (w : Falsifier.witness) ->
      Alcotest.(check string) "witness names bucket_ptrs" "bucket_ptrs"
        w.Falsifier.w_var)
    o.Falsifier.f_witnesses

(* iter_done gates full_verify: every perturbation at the final
   boundary skips the verification and diverges. *)
let test_is_iteration_witness () =
  let (module A) = find_app "is" in
  let targets =
    [
      {
        Falsifier.t_var = "iteration";
        t_kind = Criticality.Int_var;
        t_candidates = [| 0 |];
      };
    ]
  in
  let o =
    Falsifier.run ~boundary:A.analysis_niter ~niter:A.analysis_niter ~trials:6
      ~seed:5 ~targets
      (module A : App.S)
  in
  Alcotest.(check bool) "continuation stable" true o.Falsifier.f_stable;
  Alcotest.(check int) "every trial a witness" 6
    (List.length o.Falsifier.f_witnesses)

(* key_array from a cold boundary is the other face of the coin:
   [Control_tainted] certifies that the criterion is unsound, not that
   every element is critical.  Perturbing a mid-range key merely
   re-buckets it — the distribution is recomputed from the perturbed
   key and every verification check stays self-consistent, so
   passed_verification does not move.  The falsifier must report
   exactly that (no manufactured witnesses), which is what lets the
   gate's Smooth-validation phase trust an empty witness list. *)
let test_is_key_array_no_junk_witness () =
  let (module A) = find_app "is" in
  let targets =
    [
      {
        Falsifier.t_var = "key_array";
        t_kind = Criticality.Int_var;
        (* Skip the first elements: ranks replant indices 1..20. *)
        t_candidates = Array.init 100 (fun i -> 4096 + i);
      };
    ]
  in
  let o =
    Falsifier.run ~boundary:0 ~niter:A.analysis_niter ~trials:25 ~seed:3
      ~targets
      (module A : App.S)
  in
  Alcotest.(check bool) "continuation stable" true o.Falsifier.f_stable;
  Alcotest.(check int) "trials ran" 25 o.Falsifier.f_trials;
  Alcotest.(check (list string))
    "re-bucketing is self-consistent: no witnesses" []
    (List.map (fun w -> w.Falsifier.w_var) o.Falsifier.f_witnesses)

(* ------------------------------------------------------------------ *)
(* Smooth certificates are never falsified (qcheck, random boundary)   *)
(* ------------------------------------------------------------------ *)

let report_cache : (string, Criticality.report) Hashtbl.t = Hashtbl.create 4

let report_of name (module A : App.S) =
  match Hashtbl.find_opt report_cache name with
  | Some r -> r
  | None ->
      let r = Analyzer.run (module A : App.S) in
      Hashtbl.add report_cache name r;
      r

let prop_smooth_never_falsified =
  QCheck.Test.make ~count:6 ~name:"Smooth variables never falsified"
    QCheck.(pair (oneofl [ "cg"; "mg"; "ep" ]) (pair (int_bound 1) small_nat))
    (fun (name, (boundary, seed)) ->
      let (module A) = find_app name in
      let cs, _ = certs () in
      let smooth =
        match Cert.find_app cs ~app:name with
        | Some ac -> Cert.smooth_vars ac
        | None -> []
      in
      let report = report_of name (module A : App.S) in
      let targets =
        List.filter
          (fun t -> List.mem t.Falsifier.t_var smooth)
          (Falsifier.targets_of_report report)
      in
      let o =
        Falsifier.run ~boundary ~niter:A.analysis_niter ~trials:12 ~seed
          ~targets
          (module A : App.S)
      in
      (not o.Falsifier.f_stable) || o.Falsifier.f_witnesses = [])

(* ------------------------------------------------------------------ *)
(* Mask hardening                                                      *)
(* ------------------------------------------------------------------ *)

let test_harden_promotes_witnesses () =
  let shape = Scvad_nd.Shape.create [ 4 ] in
  let report =
    {
      Criticality.app = "toy";
      at_iteration = 0;
      analyzed_until = 1;
      mode = Criticality.Reverse_gradient;
      tape_nodes = 0;
      tape_profile = None;
      sweep_profile = None;
      vars =
        [
          Criticality.of_mask ~name:"a" ~shape ~spe:1
            ~kind:Criticality.Float_var
            [| true; false; false; false |];
        ];
    }
  in
  let w =
    {
      Falsifier.w_var = "a";
      w_kind = Criticality.Float_var;
      w_element = 2;
      w_boundary = 0;
      w_delta = 1e-6;
      w_fd = None;
      w_golden = 0.;
      w_perturbed = 1.;
    }
  in
  let hardened = Falsifier.harden report [ w ] in
  let a = Criticality.find hardened "a" in
  Alcotest.(check (list bool))
    "element 2 promoted"
    [ true; false; true; false ]
    (Array.to_list a.Criticality.mask);
  (* The input report is untouched. *)
  let orig = Criticality.find report "a" in
  Alcotest.(check (list bool))
    "input masks unchanged"
    [ true; false; false; false ]
    (Array.to_list orig.Criticality.mask)

(* Analyzer ?guard plumbs the same promotion end to end: guarding IS
   with its Control_tainted certificates must never lose a critical
   element (the production masks are already all-critical, so the
   guarded report is identical). *)
let test_analyze_guard_is_monotone () =
  let (module A) = find_app "is" in
  let cs, _ = certs () in
  let plain = Analyzer.run (module A : App.S) in
  let guarded =
    Analyzer.run
      ~config:
        Analyzer.Config.(
          default
          |> with_guard { Analyzer.g_certs = cs; g_trials = 30; g_seed = 1 })
      (module A : App.S)
  in
  List.iter
    (fun (v : Criticality.var_report) ->
      let g = Criticality.find guarded v.Criticality.name in
      Array.iteri
        (fun i critical ->
          if critical then
            Alcotest.(check bool)
              (Printf.sprintf "%s[%d] stays critical" v.Criticality.name i)
              true g.Criticality.mask.(i))
        v.Criticality.mask)
    plain.Criticality.vars

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cs, findings = certs () in
  let json = Driver.render_json cs findings in
  let back = Driver.certs_of_json json in
  Alcotest.(check bool) "certificates survive the round-trip" true (back = cs)

let test_json_rejects_garbage () =
  match Driver.certs_of_json "{\"apps\": [{\"app\": 3}]}" with
  | _ -> Alcotest.fail "garbage accepted"
  | exception Failure _ -> ()

let suites =
  [
    ( "guard.static",
      [
        Alcotest.test_case "golden certificate table (8 apps)" `Quick
          test_golden_table;
        Alcotest.test_case "IS escape sites" `Quick test_is_escape_sites;
        Alcotest.test_case "smooth toy kernel" `Quick test_toy_smooth;
        Alcotest.test_case "branch escape" `Quick test_toy_branch_escape;
        Alcotest.test_case "int-conversion escape" `Quick
          test_toy_conversion_escape;
        Alcotest.test_case "kink escape" `Quick test_toy_kink_escape;
        Alcotest.test_case "laundered taint still escapes" `Quick
          test_toy_laundered_taint;
        Alcotest.test_case "leak is unknown" `Quick test_toy_leak_is_unknown;
        Alcotest.test_case "pragma rescues a leak" `Quick
          test_toy_pragma_rescues_leak;
        Alcotest.test_case "pragma rejects unknown class" `Quick
          test_toy_pragma_unknown_class;
        Alcotest.test_case "unused pragma warns" `Quick
          test_toy_pragma_unused_warns;
        Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "JSON parser rejects garbage" `Quick
          test_json_rejects_garbage;
      ] );
    ( "guard.falsifier",
      [
        Alcotest.test_case "IS bucket ranks falsified at the last boundary"
          `Quick test_is_bucket_ptrs_witness;
        Alcotest.test_case "IS iteration gate falsified" `Quick
          test_is_iteration_witness;
        Alcotest.test_case "IS key_array re-bucketing yields no junk witness"
          `Quick test_is_key_array_no_junk_witness;
        Alcotest.test_case "harden promotes witnesses" `Quick
          test_harden_promotes_witnesses;
        Alcotest.test_case "analyze ?guard is monotone on IS" `Slow
          test_analyze_guard_is_monotone;
        QCheck_alcotest.to_alcotest prop_smooth_never_falsified;
      ] );
  ]
