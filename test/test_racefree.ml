(* Tests for the race-freedom certification: golden verdicts on fixture
   trees (disjoint proofs, shared-write witnesses, obligations, assume
   pragmas), the real-tree gate the CI @race-check alias enforces, the
   JSON report round-trip, and the dynamic write-set sanitizer in both
   the witness-producing and the clean configuration. *)

module Driver = Scvad_racefree.Driver
module Verdict = Scvad_racefree.Verdict
module Disjoint = Scvad_racefree.Disjoint
module Finding = Scvad_lint.Finding
module Sanitize = Scvad_sanitize.Sanitize
module Pool = Scvad_par.Pool

(* dune runtest runs in test/, dune exec from the workspace root —
   resolve the fixture trees from either. *)
let root =
  if Sys.file_exists "racefree_fixtures" then "racefree_fixtures"
  else Filename.concat "test" "racefree_fixtures"

let fixture name = Filename.concat root name

let site_named report context =
  match
    List.find_opt
      (fun (c : Verdict.classified) ->
        c.Verdict.c_site.Verdict.st_context = context)
      report.Driver.r_sites
  with
  | Some c -> c
  | None -> Alcotest.failf "no fan-out site in context %S" context

(* ------------------------------------------------------------------ *)
(* Golden verdicts on the fixture trees                                *)
(* ------------------------------------------------------------------ *)

let test_good_tree () =
  let report = Driver.certify ~root:(fixture "good") in
  Alcotest.(check int) "two sites" 2 (List.length report.Driver.r_sites);
  Alcotest.(check int) "no findings" 0 (List.length report.Driver.r_findings);
  (match (site_named report "bump").Verdict.c_verdict with
  | Verdict.Race_free p ->
      Alcotest.(check bool) "bump writes the shard's own datum" true
        (p.Verdict.p_shard >= 1)
  | v -> Alcotest.failf "bump: expected race-free, got %s" (Verdict.verdict_name v));
  match (site_named report "stripe").Verdict.c_verdict with
  | Verdict.Race_free p -> (
      match p.Verdict.p_affine with
      | [ (_, Disjoint.Disjoint { scale; lo_offset; hi_offset }) ] ->
          Alcotest.(check int) "stride" 2 scale;
          Alcotest.(check int) "low offset" 0 lo_offset;
          Alcotest.(check int) "high offset" 1 hi_offset
      | _ -> Alcotest.fail "stripe: expected one disjoint affine lane")
  | v -> Alcotest.failf "stripe: expected race-free, got %s" (Verdict.verdict_name v)

let test_bad_tree () =
  let report = Driver.certify ~root:(fixture "bad") in
  Alcotest.(check int) "two sites" 2 (List.length report.Driver.r_sites);
  Alcotest.(check int) "both fail the gate" 2
    (List.length (Driver.gate_violations report));
  (match (site_named report "clobber").Verdict.c_verdict with
  | Verdict.Shared_write (w :: _) ->
      Alcotest.(check bool) "witness names the captured accumulator" true
        (Astring.String.is_infix ~affix:"acc" w.Verdict.sh_what)
  | v ->
      Alcotest.failf "clobber: expected shared-write, got %s"
        (Verdict.verdict_name v));
  match (site_named report "mystery").Verdict.c_verdict with
  | Verdict.Unknown obs ->
      Alcotest.(check bool) "obligation names the unresolved callee" true
        (List.exists (Astring.String.is_infix ~affix:"Mystery") obs)
  | v ->
      Alcotest.failf "mystery: expected unknown, got %s"
        (Verdict.verdict_name v)

let test_assumed_tree () =
  let report = Driver.certify ~root:(fixture "assumed") in
  (match (site_named report "histogram").Verdict.c_verdict with
  | Verdict.Assumed why ->
      Alcotest.(check bool) "justification carried" true
        (Astring.String.is_infix ~affix:"binning" why)
  | v ->
      Alcotest.failf "histogram: expected assumed, got %s"
        (Verdict.verdict_name v));
  Alcotest.(check bool) "assumed sites pass the gate" true
    (Driver.gate_violations report = []);
  (* The pragma whose context no longer exists is a staleness warning,
     never silently dropped. *)
  match
    List.filter
      (fun (f : Finding.t) -> f.Finding.severity = Finding.Warning)
      report.Driver.r_findings
  with
  | [ f ] ->
      Alcotest.(check bool) "warning names the stale subject" true
        (Astring.String.is_infix ~affix:"vanished" f.Finding.message)
  | fs -> Alcotest.failf "expected one stale-pragma warning, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* The real tree: the acceptance gate the CI alias enforces            *)
(* ------------------------------------------------------------------ *)

let test_real_tree_certified () =
  match Driver.locate_lib_dir () with
  | None -> Alcotest.fail "cannot locate lib/ above the test cwd"
  | Some lib ->
      let report = Driver.certify ~root:lib in
      Alcotest.(check bool) "all four engine fan-outs discovered" true
        (List.length report.Driver.r_sites >= 4);
      Alcotest.(check int) "zero gate violations" 0
        (List.length (Driver.gate_violations report));
      List.iter
        (fun (c : Verdict.classified) ->
          match c.Verdict.c_verdict with
          | Verdict.Race_free _ -> ()
          | v ->
              Alcotest.failf "%s: expected race-free, got %s"
                (Verdict.site_to_text c.Verdict.c_site)
                (Verdict.verdict_name v))
        report.Driver.r_sites

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let report = Driver.certify ~root:(fixture "bad") in
  let rows = Driver.sites_of_json (Driver.render_json report) in
  Alcotest.(check int) "same cardinality"
    (List.length report.Driver.r_sites)
    (List.length rows);
  List.iter2
    (fun (c : Verdict.classified) (row : Driver.site_row) ->
      let s = c.Verdict.c_site in
      Alcotest.(check string) "file" s.Verdict.st_file row.Driver.j_file;
      Alcotest.(check int) "line" s.Verdict.st_line row.Driver.j_line;
      Alcotest.(check string) "kind"
        (Verdict.site_kind_name s.Verdict.st_kind)
        (Verdict.site_kind_name row.Driver.j_kind);
      Alcotest.(check string) "context" s.Verdict.st_context row.Driver.j_context;
      Alcotest.(check string) "verdict"
        (Verdict.verdict_name c.Verdict.c_verdict)
        row.Driver.j_verdict)
    report.Driver.r_sites rows

let test_json_rejects_garbage () =
  Alcotest.(check bool) "malformed JSON raises" true
    (match Driver.sites_of_json "{\"sites\": [{" with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Dynamic write-set sanitizer                                         *)
(* ------------------------------------------------------------------ *)

(* Plant a real overlap: every shard records the same span of one
   object, so any two shards of the batch form a witness. *)
let test_sanitizer_catches_planted_race () =
  Sanitize.arm ();
  let stats =
    Fun.protect
      ~finally:(fun () -> if Sanitize.armed () then ignore (Sanitize.disarm ()))
      (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            let obj = Sanitize.fresh_id () in
            ignore
              (Pool.map ~sanitize:true pool
                 (fun _ -> Sanitize.record ~obj ~lo:0 ~hi:8 ~tag:"planted")
                 [ 1; 2; 3; 4 ]));
        Sanitize.disarm ())
  in
  Alcotest.(check bool) "at least one witness" true
    (stats.Sanitize.witnesses <> []);
  match stats.Sanitize.witnesses with
  | w :: _ ->
      Alcotest.(check bool) "distinct shards" true
        (w.Sanitize.w_shard_a <> w.Sanitize.w_shard_b);
      Alcotest.(check (pair int int)) "overlap interval" (0, 8)
        (w.Sanitize.w_lo, w.Sanitize.w_hi)
  | [] -> ()

let test_sanitizer_clean_on_disjoint_spans () =
  Sanitize.arm ();
  let stats =
    Fun.protect
      ~finally:(fun () -> if Sanitize.armed () then ignore (Sanitize.disarm ()))
      (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            let obj = Sanitize.fresh_id () in
            ignore
              (Pool.map ~sanitize:true pool
                 (fun i ->
                   Sanitize.record ~obj ~lo:(8 * i) ~hi:(8 * (i + 1))
                     ~tag:"lane")
                 [ 0; 1; 2; 3 ]));
        Sanitize.disarm ())
  in
  Alcotest.(check int) "spans recorded" 4 stats.Sanitize.spans;
  Alcotest.(check (list string)) "no witnesses" []
    (List.map Sanitize.witness_to_text stats.Sanitize.witnesses)

let suites =
  [ ( "racefree.verdicts",
      [ Alcotest.test_case "good tree: shard + affine proofs" `Quick
          test_good_tree;
        Alcotest.test_case "bad tree: shared-write and unknown" `Quick
          test_bad_tree;
        Alcotest.test_case "assume pragma downgrades, stale warns" `Quick
          test_assumed_tree;
        Alcotest.test_case "real tree: every fan-out race-free" `Quick
          test_real_tree_certified ] );
    ( "racefree.report",
      [ Alcotest.test_case "JSON round-trips" `Quick test_json_roundtrip;
        Alcotest.test_case "JSON parser rejects garbage" `Quick
          test_json_rejects_garbage ] );
    ( "racefree.sanitizer",
      [ Alcotest.test_case "planted overlap yields a witness" `Quick
          test_sanitizer_catches_planted_race;
        Alcotest.test_case "disjoint lanes stay clean" `Quick
          test_sanitizer_clean_on_disjoint_spans ] ) ]
