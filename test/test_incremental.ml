(* Tests for the incremental-checkpointing baseline and its combination
   with criticality pruning. *)

open Scvad_core
module Inc = Incremental
module Npb = Scvad_npb

let bt_report = lazy (Analyzer.run (module Npb.Bt.App))

let test_delta_shrinks_after_base () =
  let c =
    Inc.storage_comparison ~checkpoints:3 (module Npb.Bt.App)
      (Lazy.force bt_report)
  in
  (match c.Inc.incremental with
  | base :: deltas ->
      Alcotest.(check bool) "base is full-sized" true
        (base = List.hd c.Inc.full);
      List.iter
        (fun d ->
          Alcotest.(check bool) "delta smaller than full" true
            (d < List.hd c.Inc.full))
        deltas
  | [] -> Alcotest.fail "no checkpoints");
  (* BT: only the 10^3 interior changes per step -> delta = 5000
     elements + the step counter. *)
  Alcotest.(check int) "BT delta bytes" ((5000 * 8) + 8)
    (List.nth c.Inc.incremental 1)

let test_combined_never_worse () =
  List.iter
    (fun name ->
      let (module A : App.S) = Option.get (Npb.Suite.find name) in
      let report = Analyzer.run (module A) in
      let c = Inc.storage_comparison ~checkpoints:3 (module A) report in
      List.iteri
        (fun i comb ->
          Alcotest.(check bool)
            (Printf.sprintf "%s ckpt %d: combined <= pruned" name i)
            true
            (comb <= List.nth c.Inc.pruned i);
          Alcotest.(check bool)
            (Printf.sprintf "%s ckpt %d: combined <= incremental" name i)
            true
            (comb <= List.nth c.Inc.incremental i))
        c.Inc.combined)
    [ "bt"; "mg"; "cg" ]

(* Full crash/restart through a base + delta chain, with pruning. *)
let test_incremental_restart_verifies () =
  let (module A : App.S) = (module Npb.Bt.App) in
  let report = Lazy.force bt_report in
  let niter = 6 in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  (* Golden. *)
  let golden =
    let st = I.create () in
    I.run st ~from:0 ~until:niter;
    I.output st
  in
  (* Protected run: checkpoint after iterations 2, 3, 4 (base at 2),
     then "crash" before 5 finishes. *)
  let st = I.create () in
  let tracker = Inc.create_tracker () in
  let files = ref [] in
  I.run st ~from:0 ~until:2;
  for it = 2 to 4 do
    if it > 2 then I.run st ~from:(it - 1) ~until:it;
    files :=
      !files
      @ [ Inc.snapshot tracker ~mode:(Inc.Combined_with report) ~app:A.name
            ~iteration:it ~float_vars:(I.float_vars st)
            ~int_vars:(I.int_vars st) () ]
  done;
  (* Restart from the chain; uncritical slots poisoned. *)
  let st2 = I.create () in
  let from =
    Inc.restore ~files:!files ~float_vars:(I.float_vars st2)
      ~int_vars:(I.int_vars st2) ()
  in
  Alcotest.(check int) "restored at newest checkpoint" 4 from;
  I.run st2 ~from ~until:niter;
  Alcotest.(check bool) "bitwise verification" true
    (Int64.bits_of_float golden = Int64.bits_of_float (I.output st2))

let test_restore_chain_semantics () =
  (* Values present only in the base must survive deltas; uncritical
     slots must stay poisoned. *)
  let (module A : App.S) = (module Npb.Bt.App) in
  let report = Lazy.force bt_report in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:1;
  let tracker = Inc.create_tracker () in
  let f1 =
    Inc.snapshot tracker ~mode:(Inc.Combined_with report) ~app:A.name
      ~iteration:1 ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ()
  in
  let boundary_value = (List.hd (I.float_vars st)).Variable.get 0 0 in
  I.run st ~from:1 ~until:2;
  let f2 =
    Inc.snapshot tracker ~mode:(Inc.Combined_with report) ~app:A.name
      ~iteration:2 ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ()
  in
  let st2 = I.create () in
  let _ =
    Inc.restore ~files:[ f1; f2 ] ~float_vars:(I.float_vars st2)
      ~int_vars:(I.int_vars st2) ()
  in
  let v2 = List.hd (I.float_vars st2) in
  (* element 0 = u[0][0][0][0]: boundary, critical, never changes after
     the base. *)
  Alcotest.(check (float 0.)) "base value survives the delta"
    boundary_value (v2.Variable.get 0 0);
  (* a padded (uncritical) element stays poisoned *)
  let pad = ((((0 * 13) + 12) * 13) + 0) * 5 in
  Alcotest.(check bool) "uncritical slot poisoned" true
    (Float.is_nan (v2.Variable.get pad 0));
  (* empty chain rejected *)
  match
    Inc.restore ~files:[] ~float_vars:(I.float_vars st2)
      ~int_vars:(I.int_vars st2) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty chain accepted"

let test_mg_story () =
  (* The complementary-techniques result: on MG, incremental barely
     helps (comm3 rewrites nearly everything every V-cycle) while
     pruning saves ~19%; combined equals pruned. *)
  let (module A : App.S) = (module Npb.Mg.App) in
  let report = Analyzer.run (module A) in
  let c = Inc.storage_comparison ~checkpoints:3 (module A) report in
  let full = List.hd c.Inc.full in
  let delta = List.nth c.Inc.incremental 1 in
  Alcotest.(check bool) "incremental saves < 2% on MG" true
    (float_of_int delta > 0.98 *. float_of_int full);
  Alcotest.(check bool) "pruning saves ~19% on MG" true
    (float_of_int (List.hd c.Inc.pruned) < 0.82 *. float_of_int full)

let suites =
  [ ( "incremental",
      [ Alcotest.test_case "delta shrinks after base (BT)" `Quick
          test_delta_shrinks_after_base;
        Alcotest.test_case "combined never worse" `Quick
          test_combined_never_worse;
        Alcotest.test_case "restart through delta chain verifies" `Quick
          test_incremental_restart_verifies;
        Alcotest.test_case "chain semantics + poison" `Quick
          test_restore_chain_semantics;
        Alcotest.test_case "MG: pruning and dirty-tracking are \
                            complementary" `Quick test_mg_story ] ) ]
