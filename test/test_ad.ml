(* Tests for the AD substrate: reverse tape, forward duals, activity,
   integer taint, finite differences, and cross-engine agreement. *)

open Scvad_ad

let close ?(eps = 1e-9) msg expected got =
  let scale = Stdlib.max 1. (Stdlib.abs_float expected) in
  if Stdlib.abs_float (expected -. got) > eps *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected got

(* ------------------------------------------------------------------ *)
(* Reverse mode: closed-form derivative checks                         *)
(* ------------------------------------------------------------------ *)

let with_reverse f =
  let tape = Tape.create () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  f tape (module S : Scalar.S with type t = Reverse.t)

let test_reverse_square () =
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 3. in
      let y = S.(x *. x) in
      let g = Reverse.backward tape y in
      close "value" 9. (Reverse.value y);
      close "d(x^2)/dx" 6. (Reverse.grad g x))

let test_reverse_two_vars () =
  with_reverse (fun tape (module S) ->
      (* f = (x + y) * a * x  with a constant, as in the paper's Fig. 1 *)
      let a = S.of_float 2.5 in
      let x = Reverse.var tape 3. in
      let y = Reverse.var tape 4. in
      let f = S.((x +. y) *. a *. x) in
      let g = Reverse.backward tape f in
      close "f" (7. *. 2.5 *. 3.) (Reverse.value f);
      (* df/dx = a*(2x + y), df/dy = a*x *)
      close "df/dx" (2.5 *. 10.) (Reverse.grad g x);
      close "df/dy" (2.5 *. 3.) (Reverse.grad g y))

let test_reverse_division_chain () =
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 2. in
      let y = Reverse.var tape 5. in
      let f = S.(x /. y +. (y /. x)) in
      let g = Reverse.backward tape f in
      (* df/dx = 1/y - y/x^2 ; df/dy = -x/y^2 + 1/x *)
      close "df/dx" ((1. /. 5.) -. (5. /. 4.)) (Reverse.grad g x);
      close "df/dy" ((-2. /. 25.) +. 0.5) (Reverse.grad g y))

let test_reverse_transcendental () =
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 0.7 in
      let f = S.(exp (sin x) +. log (sqrt x)) in
      let g = Reverse.backward tape f in
      let expected = (cos 0.7 *. exp (sin 0.7)) +. (0.5 /. 0.7) in
      close "df/dx" expected (Reverse.grad g x))

let test_reverse_fanout () =
  (* One variable used many times: adjoints must accumulate. *)
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 1.5 in
      let acc = ref S.zero in
      for _ = 1 to 10 do
        acc := S.(!acc +. (x *. x))
      done;
      let g = Reverse.backward tape !acc in
      close "d(10 x^2)/dx" 30. (Reverse.grad g x))

let test_constant_folding () =
  let tape = Tape.create () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  (* A pure-constant computation must record nothing. *)
  let acc = ref S.zero in
  for i = 1 to 1000 do
    acc := S.(!acc +. (of_int i *. of_float 0.5) /. of_float 3.)
  done;
  Alcotest.(check int) "tape stays empty" 0 (Tape.length tape);
  (* Lifting one variable starts recording. *)
  let x = Reverse.var tape 1. in
  let _ = S.(x +. !acc) in
  Alcotest.(check bool) "tape grows after lift" true (Tape.length tape > 1)

let test_reverse_zero_partial () =
  (* Multiplication by literal zero: connected in the graph, but the
     paper's criterion (derivative = 0) marks it uncritical. *)
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 7. in
      let y = Reverse.var tape 8. in
      let f = S.((x *. zero) +. y) in
      let g = Reverse.backward tape f in
      close "df/dx = 0 through *0" 0. (Reverse.grad g x);
      close "df/dy" 1. (Reverse.grad g y))

let test_reverse_constant_output () =
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 7. in
      ignore x;
      let out = S.(of_float 2. *. of_float 3.) in
      let g = Reverse.backward tape out in
      close "grad w.r.t. unused var" 0. (Reverse.grad g x))

let test_reverse_node_after_output () =
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 2. in
      let out = S.(x *. x) in
      let late = Reverse.var tape 9. in
      let _ = S.(late *. late) in
      let g = Reverse.backward tape out in
      close "late node grad" 0. (Reverse.grad g late);
      close "df/dx" 4. (Reverse.grad g x))

let test_reverse_max_min_abs () =
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 3. in
      let y = Reverse.var tape (-2.) in
      let f = S.(max x y +. min x y +. abs y) in
      let g = Reverse.backward tape f in
      (* max picks x, min picks y, d|y|/dy = -1 at y<0: df/dx=1, df/dy=0 *)
      close "df/dx" 1. (Reverse.grad g x);
      close "df/dy" 0. (Reverse.grad g y))

let test_reverse_branching_on_primal () =
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 2. in
      let f = if S.(x > zero) then S.(x *. x) else S.(~-.x) in
      let g = Reverse.backward tape f in
      close "branch taken by primal" 4. (Reverse.grad g x))

let test_tape_growth () =
  let tape = Tape.create ~capacity_hint:16 () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let x = Reverse.var tape 1.000001 in
  let acc = ref x in
  for _ = 1 to 100_000 do
    acc := S.(!acc +. (x *. x))
  done;
  let g = Reverse.backward tape !acc in
  close ~eps:1e-6 "grad after growth" 200_001. (Reverse.grad g x);
  Alcotest.(check bool) "tape grew" true (Tape.length tape > 16);
  Tape.clear tape;
  Alcotest.(check int) "clear resets" 0 (Tape.length tape)

(* Chunked storage: pushes landing exactly on slab edges must keep ids
   continuous and never copy; capacity grows by whole slabs. *)
let test_tape_slab_edges () =
  let tape = Tape.create ~capacity_hint:16 () in
  Alcotest.(check int) "slab size" 16 (Tape.slab_nodes tape);
  Alcotest.(check int) "one slab reserved" 16 (Tape.capacity tape);
  (* Fill slab 0 exactly. *)
  let ids = Array.init 16 (fun _ -> Tape.fresh_var tape) in
  Array.iteri
    (fun i id -> Alcotest.(check int) "id dense in slab 0" i id)
    ids;
  Alcotest.(check int) "slab 0 full, not grown yet" 16 (Tape.capacity tape);
  (* The 17th push crosses into slab 1. *)
  let id16 = Tape.fresh_var tape in
  Alcotest.(check int) "first id of slab 1" 16 id16;
  Alcotest.(check int) "two slabs reserved" 32 (Tape.capacity tape);
  (* Land a push exactly on the next edge too. *)
  for i = 17 to 32 do
    Alcotest.(check int) "ids continuous across edges" i (Tape.fresh_var tape)
  done;
  Alcotest.(check int) "three slabs reserved" 48 (Tape.capacity tape);
  Alcotest.(check int) "length counts every slab" 33 (Tape.length tape)

let test_tape_multi_slab_backward () =
  (* A gradient with known closed form across many slabs: f = sum of
     x^2 repeated m times, recorded on 16-node slabs.  Parents of the
     first nodes of a slab live in earlier slabs, so the sweep exercises
     cross-slab adjoint propagation. *)
  let tape = Tape.create ~capacity_hint:16 () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let x = Reverse.var tape 1.5 in
  let m = 1000 in
  let acc = ref S.zero in
  for _ = 1 to m do
    acc := S.(!acc +. (x *. x))
  done;
  Alcotest.(check bool) "spans many slabs" true
    (Tape.length tape > 50 * Tape.slab_nodes tape);
  let g = Reverse.backward tape !acc in
  close "f" (float_of_int m *. 2.25) (Reverse.value !acc);
  close "df/dx across slabs" (float_of_int m *. 3.) (Reverse.grad g x)

let test_tape_clear_reuses_slabs () =
  let tape = Tape.create ~capacity_hint:16 () in
  for _ = 1 to 100 do
    ignore (Tape.fresh_var tape)
  done;
  let reserved = Tape.capacity tape in
  Tape.clear tape;
  Alcotest.(check int) "clear resets length" 0 (Tape.length tape);
  Alcotest.(check int) "clear keeps storage" reserved (Tape.capacity tape);
  for _ = 1 to 100 do
    ignore (Tape.fresh_var tape)
  done;
  Alcotest.(check int) "refill reuses slabs" reserved (Tape.capacity tape);
  (* The refilled tape must still differentiate correctly. *)
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let x = Reverse.var tape 3. in
  let y = S.(x *. x) in
  let g = Reverse.backward tape y in
  close "gradient after clear+reuse" 6. (Reverse.grad g x)

let test_tape_second_backward () =
  (* Two backward sweeps over the same tape.  The sweeps share the
     cached accumulator, so each gradient must be read before the next
     sweep runs (a new [backward] invalidates the previous result). *)
  with_reverse (fun tape (module S) ->
      let x = Reverse.var tape 2. in
      let y1 = S.(x *. x) in
      let y2 = S.(y1 *. x) in
      let g1 = Reverse.backward tape y1 in
      close "dy1/dx" 4. (Reverse.grad g1 x);
      let g2 = Reverse.backward tape y2 in
      close "dy2/dx" 12. (Reverse.grad g2 x);
      (* The second sweep reused the buffer: the frontier reset must
         have cleared the first sweep's entries, not kept them. *)
      (match Tape.last_sweep tape with
      | None -> Alcotest.fail "no sweep stats after backward"
      | Some st ->
          Alcotest.(check int)
            "swept covers the output prefix"
            (Reverse.node_id y2 + 1)
            st.Scvad_ad.Tape_intf.swept_nodes;
          Alcotest.(check bool)
            "visited <= swept" true
            Scvad_ad.Tape_intf.(st.visited_nodes <= st.swept_nodes)))

(* ------------------------------------------------------------------ *)
(* Forward mode                                                        *)
(* ------------------------------------------------------------------ *)

let test_dual_basic () =
  let module S = Dual.Scalar in
  let x = Dual.var 3. in
  let y = Dual.const 4. in
  let f = S.((x +. y) *. x) in
  close "value" 21. (Dual.value f);
  close "df/dx" 10. (Dual.tangent f)

let test_dual_transcendental () =
  let module S = Dual.Scalar in
  let x = Dual.var 0.7 in
  let f = S.(exp (sin x) +. log (sqrt x)) in
  let expected = (cos 0.7 *. exp (sin 0.7)) +. (0.5 /. 0.7) in
  close "df/dx" expected (Dual.tangent f)

let test_dual_division () =
  let module S = Dual.Scalar in
  let x = Dual.var 2. in
  let f = S.(one /. x) in
  close "d(1/x)/dx" (-0.25) (Dual.tangent f)

(* ------------------------------------------------------------------ *)
(* Activity (dependence-only) mode                                     *)
(* ------------------------------------------------------------------ *)

let test_activity_vs_gradient_on_zero_mul () =
  (* The documented over-approximation: x*0 is active but has zero
     gradient. *)
  let dtape = Dep_tape.create () in
  let module A = Activity.Scalar_of (struct
    let tape = dtape
  end) in
  let x = Activity.var dtape 7. in
  let y = Activity.var dtape 8. in
  let f = A.((x *. zero) +. y) in
  let r = Activity.backward dtape f in
  Alcotest.(check bool) "x active through *0" true (Activity.active r x);
  Alcotest.(check bool) "y active" true (Activity.active r y)

let test_activity_unused () =
  let dtape = Dep_tape.create () in
  let module A = Activity.Scalar_of (struct
    let tape = dtape
  end) in
  let x = Activity.var dtape 7. in
  let y = Activity.var dtape 8. in
  let f = A.(y *. y) in
  let r = Activity.backward dtape f in
  Alcotest.(check bool) "x inactive" false (Activity.active r x);
  Alcotest.(check bool) "y active" true (Activity.active r y)

let test_dep_tape_bitset_edges () =
  (* Chains long enough to cross byte boundaries in the bitset. *)
  let t = Dep_tape.create ~capacity:4 () in
  let v0 = Dep_tape.fresh_var t in
  let last = ref v0 in
  for _ = 1 to 100 do
    last := Dep_tape.push1 t !last
  done;
  let r = Dep_tape.backward t ~output:!last in
  Alcotest.(check bool) "root reachable" true (Dep_tape.reachable r v0);
  for _ = 1 to 3 do
    ignore (Dep_tape.fresh_var t)
  done;
  let r2 = Dep_tape.backward t ~output:!last in
  Alcotest.(check bool) "fresh var not reachable" false
    (Dep_tape.reachable r2 (Dep_tape.length t - 1))

(* Backward on an empty tape must refuse with a diagnostic naming the
   offending node and the tape length, not crash or mis-index. *)
let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_dep_tape_empty_backward () =
  let t = Dep_tape.create () in
  let expect_invalid output =
    match Dep_tape.backward t ~output with
    | _ -> Alcotest.failf "backward %d on empty tape did not raise" output
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (Printf.sprintf "message %S names node %d" msg output)
          true
          (contains_sub msg (string_of_int output))
  in
  expect_invalid 0;
  expect_invalid (-1);
  expect_invalid 7

(* An output that is a fresh variable with no pushed dependencies
   reaches exactly itself. *)
let test_dep_tape_fresh_output () =
  let t = Dep_tape.create () in
  let a = Dep_tape.fresh_var t in
  let b = Dep_tape.fresh_var t in
  let r = Dep_tape.backward t ~output:a in
  Alcotest.(check bool) "output reaches itself" true (Dep_tape.reachable r a);
  Alcotest.(check bool) "sibling var unreachable" false
    (Dep_tape.reachable r b);
  Alcotest.(check bool) "id past the sweep unreachable" false
    (Dep_tape.reachable r (b + 1))

(* A reach outlives [clear]: it is a snapshot, so reusing the tape for
   a second recording must not corrupt answers about the first. *)
let test_dep_tape_clear_then_reuse () =
  let t = Dep_tape.create ~capacity:4 () in
  let v0 = Dep_tape.fresh_var t in
  let n1 = Dep_tape.push1 t v0 in
  let r1 = Dep_tape.backward t ~output:n1 in
  Dep_tape.clear t;
  Alcotest.(check int) "cleared tape is empty" 0 (Dep_tape.length t);
  (* Second, disjoint recording on the reused storage. *)
  let w0 = Dep_tape.fresh_var t in
  let w1 = Dep_tape.fresh_var t in
  let m = Dep_tape.push2 t w0 w1 in
  let r2 = Dep_tape.backward t ~output:m in
  Alcotest.(check bool) "old reach still answers" true
    (Dep_tape.reachable r1 v0);
  Alcotest.(check bool) "new reach covers both vars" true
    (Dep_tape.reachable r2 w0 && Dep_tape.reachable r2 w1);
  Alcotest.(check bool) "old reach rejects ids beyond its sweep" false
    (Dep_tape.reachable r1 m)

(* ------------------------------------------------------------------ *)
(* Integer taint                                                       *)
(* ------------------------------------------------------------------ *)

let test_itaint_arith () =
  let t = Dep_tape.create () in
  let a = Itaint.var t 3 in
  let b = Itaint.var t 4 in
  let c = Itaint.var t 10 in
  let s = Itaint.add t (Itaint.mul t a b) (Itaint.const 5) in
  Alcotest.(check int) "value" 17 (Itaint.value s);
  let r = Itaint.backward t s in
  Alcotest.(check bool) "a critical" true (Itaint.critical r a);
  Alcotest.(check bool) "b critical" true (Itaint.critical r b);
  Alcotest.(check bool) "c not critical" false (Itaint.critical r c)

let test_itaint_index_dependence () =
  (* Bucket-sort shape: a counter incremented at a key-derived index must
     depend on the key. *)
  let t = Dep_tape.create () in
  let key = Itaint.var t 13 in
  let counts = Array.init 4 (fun _ -> Itaint.const 0) in
  let bucket = Itaint.shift_right t key 2 (* 13 asr 2 = 3 *) in
  let old = Itaint.get t counts bucket in
  Itaint.set t counts bucket (Itaint.add t old (Itaint.const 1));
  Alcotest.(check int) "count value" 1 (Itaint.value counts.(3));
  let r = Itaint.backward t counts.(3) in
  Alcotest.(check bool) "count depends on key" true (Itaint.critical r key)

let test_itaint_comparison_control_dep () =
  (* passed_verification-style counter under a data-dependent branch. *)
  let t = Dep_tape.create () in
  let a = Itaint.var t 3 in
  let b = Itaint.var t 7 in
  let passed = Itaint.add t (Itaint.const 0) (Itaint.le t a b) in
  Alcotest.(check int) "passed" 1 (Itaint.value passed);
  let r = Itaint.backward t passed in
  Alcotest.(check bool) "depends on a" true (Itaint.critical r a);
  Alcotest.(check bool) "depends on b" true (Itaint.critical r b)

let test_itaint_untraced_subscript () =
  let t = Dep_tape.create () in
  let arr = Array.init 4 (fun i -> Itaint.var t (i * i)) in
  let x = Itaint.get t arr (Itaint.const 2) in
  Alcotest.(check int) "plain subscript read" 4 (Itaint.value x);
  let r = Itaint.backward t x in
  Alcotest.(check bool) "cell critical" true (Itaint.critical r arr.(2));
  Alcotest.(check bool) "other cell not critical" false
    (Itaint.critical r arr.(1))

(* ------------------------------------------------------------------ *)
(* Finite differences                                                  *)
(* ------------------------------------------------------------------ *)

let test_finite_diff_polynomial () =
  let f x = (x.(0) *. x.(0) *. x.(1)) +. (3. *. x.(1)) in
  let x = [| 2.; 5. |] in
  close ~eps:1e-5 "df/dx0" 20. (Finite_diff.derivative f x 0);
  close ~eps:1e-5 "df/dx1" 7. (Finite_diff.derivative f x 1);
  let g = Finite_diff.gradient f x in
  close ~eps:1e-5 "gradient.(0)" 20. g.(0);
  Alcotest.(check (float 1e-12)) "x restored" 2. x.(0)

(* The effective step is relative to the coordinate's magnitude:
   absolute below |x| = 1, scaled by |x| above it. *)
let test_finite_diff_relative_step () =
  Alcotest.(check (float 0.)) "absolute step for |x| <= 1" 1e-6
    (Finite_diff.step 0.5);
  Alcotest.(check (float 0.)) "absolute step at zero" 1e-6
    (Finite_diff.step 0.);
  Alcotest.(check (float 0.)) "relative step for large x" 1e6
    (Finite_diff.step 1e12);
  Alcotest.(check (float 0.)) "sign ignored" 1e6 (Finite_diff.step (-1e12));
  Alcotest.(check (float 0.)) "?h override" 1e-2
    (Finite_diff.step ~h:1e-2 0.5)

(* At |x| = 1e8 an absolute 1e-6 step is below ulp(x): x +. h = x and
   the central difference collapses to 0/0-grade cancellation.  The
   relative step keeps the quotient accurate. *)
let test_finite_diff_large_magnitude () =
  let f x = x.(0) *. x.(0) in
  let x = [| 1e8 |] in
  close ~eps:1e2 "d(x^2)/dx at 1e8" 2e8 (Finite_diff.derivative f x 0);
  Alcotest.(check (float 0.)) "x restored" 1e8 x.(0)

(* ------------------------------------------------------------------ *)
(* Cross-engine agreement on random expression trees (qcheck)          *)
(* ------------------------------------------------------------------ *)

type expr =
  | X of int
  | Const of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Safe_div of expr * expr (* a / (2 + b^2): never singular *)
  | Sqrt1p of expr (* sqrt (1 + e^2) *)
  | Sin of expr
  | Cos of expr
  | Explin of expr (* exp (e / 8): bounded growth for small trees *)

module Eval (S : Scalar.S) = struct
  let rec eval (env : S.t array) = function
    | X i -> env.(i mod Array.length env)
    | Const c -> S.of_float c
    | Add (a, b) -> S.(eval env a +. eval env b)
    | Sub (a, b) -> S.(eval env a -. eval env b)
    | Mul (a, b) -> S.(eval env a *. eval env b)
    | Safe_div (a, b) ->
        let d = eval env b in
        S.(eval env a /. (of_float 2. +. (d *. d)))
    | Sqrt1p a ->
        let e = eval env a in
        S.(sqrt (one +. (e *. e)))
    | Sin a -> S.sin (eval env a)
    | Cos a -> S.cos (eval env a)
    | Explin a -> S.(exp (eval env a /. of_float 8.))
end

let expr_gen_sized =
  let open QCheck.Gen in
  fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun i -> X i) (int_bound 3);
            map (fun c -> Const c) (float_bound_inclusive 2.) ]
      else
        let sub = self (n / 2) in
        frequency
          [ (3, map2 (fun a b -> Add (a, b)) sub sub);
            (2, map2 (fun a b -> Sub (a, b)) sub sub);
            (3, map2 (fun a b -> Mul (a, b)) sub sub);
            (1, map2 (fun a b -> Safe_div (a, b)) sub sub);
            (1, map (fun a -> Sqrt1p a) sub);
            (1, map (fun a -> Sin a) sub);
            (1, map (fun a -> Cos a) sub);
            (1, map (fun a -> Explin a) sub) ])

let rec expr_print = function
  | X i -> Printf.sprintf "x%d" i
  | Const c -> Printf.sprintf "%g" c
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (expr_print a) (expr_print b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr_print a) (expr_print b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr_print a) (expr_print b)
  | Safe_div (a, b) ->
      Printf.sprintf "(%s / (2 + %s^2))" (expr_print a) (expr_print b)
  | Sqrt1p a -> Printf.sprintf "sqrt(1 + %s^2)" (expr_print a)
  | Sin a -> Printf.sprintf "sin(%s)" (expr_print a)
  | Cos a -> Printf.sprintf "cos(%s)" (expr_print a)
  | Explin a -> Printf.sprintf "exp(%s / 8)" (expr_print a)

let expr_arb = QCheck.make ~print:expr_print (QCheck.Gen.sized expr_gen_sized)

(* Finite differences lose accuracy on deeply nested expressions
   (truncation error compounds), so that oracle only sees small trees. *)
let small_expr_arb =
  let open QCheck.Gen in
  QCheck.make ~print:expr_print (int_bound 10 >>= expr_gen_sized)

let inputs = [| 0.3; -1.2; 0.9; 2.1 |]

let reverse_gradient expr =
  let tape = Tape.create () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let env = Array.map (Reverse.var tape) inputs in
  let module E = Eval (S) in
  let out = E.eval env expr in
  let g = Reverse.backward tape out in
  (Reverse.value out, Array.map (Reverse.grad g) env)

let dual_gradient expr =
  Array.mapi
    (fun i _ ->
      let env =
        Array.mapi
          (fun j v -> if i = j then Dual.var v else Dual.const v)
          inputs
      in
      let module E = Eval (Dual.Scalar) in
      Dual.tangent (E.eval env expr))
    inputs

let float_eval expr (x : float array) =
  let module E = Eval (Float_scalar) in
  E.eval x expr

let agree ?(eps = 1e-7) a b =
  let scale = Stdlib.max 1. (Stdlib.max (abs_float a) (abs_float b)) in
  abs_float (a -. b) <= eps *. scale

(* Deep random expressions can overflow (exp towers); once a value is
   non-finite the two engines may disagree as inf vs nan, which says
   nothing about AD correctness — skip those cases. *)
let finite_case expr =
  let v = float_eval expr (Array.copy inputs) in
  Float.is_finite v

let all_finite arr = Array.for_all Float.is_finite arr

let prop_reverse_eq_dual =
  QCheck.Test.make ~count:300 ~name:"reverse gradient = forward gradient"
    expr_arb (fun e ->
      if not (finite_case e) then true
      else begin
        let _, gr = reverse_gradient e in
        let gd = dual_gradient e in
        if not (all_finite gr && all_finite gd) then true
        else Array.for_all2 (fun a b -> agree a b) gr gd
      end)

let prop_reverse_primal_eq_float =
  QCheck.Test.make ~count:300 ~name:"reverse primal = float run" expr_arb
    (fun e ->
      if not (finite_case e) then true
      else
        let v, _ = reverse_gradient e in
        agree v (float_eval e (Array.copy inputs)))

let prop_reverse_eq_finite_diff =
  QCheck.Test.make ~count:150 ~name:"reverse gradient ≈ finite difference"
    small_expr_arb (fun e ->
      if not (finite_case e) then true
      else begin
      let _, gr = reverse_gradient e in
      let x = Array.copy inputs in
      let ok = ref true in
      Array.iteri
        (fun i g ->
          let fd = Finite_diff.derivative (float_eval e) x i in
          (* finite differences are noisy: loose tolerance *)
          if Float.is_finite g && Float.is_finite fd
             && not (agree ~eps:1e-3 g fd)
          then ok := false)
        gr;
      !ok
      end)

let prop_activity_superset_of_nonzero_grad =
  QCheck.Test.make ~count:300
    ~name:"activity ⊇ {nonzero gradient}" expr_arb (fun e ->
      if not (finite_case e) then true
      else
      let _, gr = reverse_gradient e in
      let dtape = Dep_tape.create () in
      let module A = Activity.Scalar_of (struct
        let tape = dtape
      end) in
      let env = Array.map (Activity.var dtape) inputs in
      let module E = Eval (A) in
      let out = E.eval env e in
      let r = Activity.backward dtape out in
      Array.for_all2
        (fun g v -> (not (g <> 0.)) || Activity.active r v)
        gr env)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_reverse_eq_dual;
      prop_reverse_primal_eq_float;
      prop_reverse_eq_finite_diff;
      prop_activity_superset_of_nonzero_grad ]

let suites =
  [ ( "ad.reverse",
      [ Alcotest.test_case "square" `Quick test_reverse_square;
        Alcotest.test_case "two vars (Fig 1 shape)" `Quick
          test_reverse_two_vars;
        Alcotest.test_case "division chain" `Quick test_reverse_division_chain;
        Alcotest.test_case "transcendental" `Quick test_reverse_transcendental;
        Alcotest.test_case "fan-out accumulation" `Quick test_reverse_fanout;
        Alcotest.test_case "constant folding" `Quick test_constant_folding;
        Alcotest.test_case "zero partial ≠ zero dependence" `Quick
          test_reverse_zero_partial;
        Alcotest.test_case "constant output" `Quick
          test_reverse_constant_output;
        Alcotest.test_case "node after output" `Quick
          test_reverse_node_after_output;
        Alcotest.test_case "max/min/abs subgradients" `Quick
          test_reverse_max_min_abs;
        Alcotest.test_case "branch on primal" `Quick
          test_reverse_branching_on_primal;
        Alcotest.test_case "tape growth + clear" `Quick test_tape_growth;
        Alcotest.test_case "push at slab edges" `Quick test_tape_slab_edges;
        Alcotest.test_case "backward over multi-slab tape" `Quick
          test_tape_multi_slab_backward;
        Alcotest.test_case "clear retains and reuses slabs" `Quick
          test_tape_clear_reuses_slabs;
        Alcotest.test_case "two backward sweeps" `Quick
          test_tape_second_backward ] );
    ( "ad.dual",
      [ Alcotest.test_case "basic" `Quick test_dual_basic;
        Alcotest.test_case "transcendental" `Quick test_dual_transcendental;
        Alcotest.test_case "division" `Quick test_dual_division ] );
    ( "ad.activity",
      [ Alcotest.test_case "active through *0" `Quick
          test_activity_vs_gradient_on_zero_mul;
        Alcotest.test_case "unused var inactive" `Quick test_activity_unused;
        Alcotest.test_case "bitset edges" `Quick test_dep_tape_bitset_edges;
        Alcotest.test_case "empty-tape backward refuses" `Quick
          test_dep_tape_empty_backward;
        Alcotest.test_case "fresh output reaches itself" `Quick
          test_dep_tape_fresh_output;
        Alcotest.test_case "clear then reuse" `Quick
          test_dep_tape_clear_then_reuse ] );
    ( "ad.itaint",
      [ Alcotest.test_case "arithmetic joins" `Quick test_itaint_arith;
        Alcotest.test_case "index dependence" `Quick
          test_itaint_index_dependence;
        Alcotest.test_case "comparison control dep" `Quick
          test_itaint_comparison_control_dep;
        Alcotest.test_case "untraced subscript" `Quick
          test_itaint_untraced_subscript ] );
    ( "ad.finite_diff",
      [ Alcotest.test_case "polynomial" `Quick test_finite_diff_polynomial;
        Alcotest.test_case "relative step" `Quick
          test_finite_diff_relative_step;
        Alcotest.test_case "large-magnitude coordinate" `Quick
          test_finite_diff_large_magnitude ] );
    ("ad.properties", qcheck_cases) ]

(* Structural calculus properties: linearity of the derivative and the
   chain rule, on random expression pairs. *)

let prop_gradient_linearity =
  QCheck.Test.make ~count:200 ~name:"d(a·f + b·g) = a·df + b·dg"
    QCheck.(triple small_expr_arb small_expr_arb (pair (float_range (-2.) 2.) (float_range (-2.) 2.)))
    (fun (f, g, (a, b)) ->
      if not (finite_case f && finite_case g) then true
      else begin
        let grad_of expr =
          let tape = Tape.create () in
          let module S = Reverse.Scalar_of (struct
            let tape = tape
          end) in
          let env = Array.map (Reverse.var tape) inputs in
          let module E = Eval (S) in
          let out = E.eval env expr in
          let gr = Reverse.backward tape out in
          Array.map (Reverse.grad gr) env
        in
        let combined =
          let tape = Tape.create () in
          let module S = Reverse.Scalar_of (struct
            let tape = tape
          end) in
          let env = Array.map (Reverse.var tape) inputs in
          let module E = Eval (S) in
          let out =
            S.((of_float a *. E.eval env f) +. (of_float b *. E.eval env g))
          in
          let gr = Reverse.backward tape out in
          Array.map (Reverse.grad gr) env
        in
        let gf = grad_of f and gg = grad_of g in
        let ok = ref true in
        Array.iteri
          (fun i c ->
            let expected = (a *. gf.(i)) +. (b *. gg.(i)) in
            if Float.is_finite expected && Float.is_finite c
               && not (agree ~eps:1e-7 expected c)
            then ok := false)
          combined;
        !ok
      end)

let prop_chain_rule_scale =
  QCheck.Test.make ~count:200 ~name:"d f(k·x) / dx = k · f'(k·x)"
    QCheck.(pair small_expr_arb (float_range 0.25 2.))
    (fun (f, k) ->
      (* Evaluate f over scaled inputs and compare the gradient with the
         gradient of f at the scaled point times k. *)
      let scaled = Array.map (fun v -> k *. v) inputs in
      if
        not
          (Float.is_finite
             (let module E = Eval (Float_scalar) in
              E.eval scaled f))
      then true
      else begin
        let tape = Tape.create () in
        let module S = Reverse.Scalar_of (struct
          let tape = tape
        end) in
        let env = Array.map (Reverse.var tape) inputs in
        let module E = Eval (S) in
        let out = E.eval (Array.map (fun x -> S.(of_float k *. x)) env) f in
        let gr = Reverse.backward tape out in
        (* reference: gradient of f at the scaled point *)
        let tape2 = Tape.create () in
        let module S2 = Reverse.Scalar_of (struct
          let tape = tape2
        end) in
        let env2 = Array.map (Reverse.var tape2) scaled in
        let module E2 = Eval (S2) in
        let out2 = E2.eval env2 f in
        let gr2 = Reverse.backward tape2 out2 in
        let ok = ref true in
        Array.iteri
          (fun i x ->
            let got = Reverse.grad gr x in
            let expected = k *. Reverse.grad gr2 env2.(i) in
            if Float.is_finite got && Float.is_finite expected
               && not (agree ~eps:1e-7 expected got)
            then ok := false)
          env;
        !ok
      end)

let suites =
  suites
  @ [ ( "ad.calculus",
        List.map QCheck_alcotest.to_alcotest
          [ prop_gradient_linearity; prop_chain_rule_scale ] ) ]
