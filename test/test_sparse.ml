(* Frontier (sparse) backward sweep: the worklist sweep — dense,
   segmented, and segment-parallel — must be bitwise identical to the
   plain sequential dense sweep, for any schedule, budget, and job
   count.

   The "sparse" suite pins the engine down on random register-machine
   programs (harness shared with Test_segtape) plus the IS degenerate
   case (an integer-sorting kernel whose reverse tape records zero
   float nodes: the frontier is empty, every float mask all-false).

   The "sparse-gate" suite is the CI gate: across the full NPB suite,
   masks from the frontier sweep at jobs=4 — and from the
   segment-parallel budgeted sweep — are bitwise identical to the
   dense jobs=1 baseline, and the visited-node counts are
   jobs-invariant. *)

open Scvad_ad
module Crit = Scvad_core.Criticality
module Analyzer = Scvad_core.Analyzer
module Npb = Scvad_npb
module Pool = Scvad_par.Pool

let fan_of pool =
  { Tape_intf.fan_run = (fun f xs -> Pool.map pool f xs) }

(* Long-lived pools shared by all property cases (spawning domains per
   qcheck case would dominate the suite's runtime); joined at exit. *)
let pool_of jobs =
  lazy
    (let p = Pool.create ~jobs in
     at_exit (fun () -> Pool.shutdown p);
     p)

let pool1 = pool_of 1
let pool4 = pool_of 4

(* Dense run with an optional fan; returns the output value, the tape
   length, the per-node adjoint, and the sweep stats. *)
let run_dense ?fan prog =
  let tape = Tape.create ~capacity_hint:64 () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let regs = Test_segtape.init_regs (Reverse.var tape) prog in
  let input_nodes = Array.sub regs 0 prog.Test_segtape.ninputs in
  Array.iter (Test_segtape.exec (module S) regs) prog.Test_segtape.segs;
  let out = Test_segtape.sum_regs (module S) regs input_nodes in
  let adj = Tape.backward ?fan tape ~output:(Reverse.node_id out) in
  (Reverse.value out, Tape.length tape, Tape.adjoint adj, Tape.last_sweep tape)

(* Segmented run with an optional fan (Test_segtape.run_segmented with
   the pool threaded through to the window sweeps). *)
let run_seg ?fan ?slab_nodes ?snapshot_slots ?schedule ~budget_nodes prog =
  let module T = Tape.Segmented in
  let tape = T.create ?slab_nodes ?snapshot_slots ?schedule ~budget_nodes () in
  let module R = Reverse.Segmented in
  let module S = R.Scalar_of (struct
    let tape = tape
  end) in
  let nseg = Array.length prog.Test_segtape.segs in
  let regs = Array.make prog.Test_segtape.nregs (Reverse.const 0.) in
  let input_nodes = ref [||] in
  let out = ref (Reverse.const 0.) in
  let step s =
    Test_segtape.exec (module S) regs prog.Test_segtape.segs.(s);
    if s = nseg - 1 then
      out := Test_segtape.sum_regs (module S) regs !input_nodes
  in
  T.set_program tape
    ~capture:(fun () ->
      let snap = Array.copy regs in
      fun () -> Array.blit snap 0 regs 0 (Array.length snap))
    ~replay_step:step;
  Array.blit
    (Test_segtape.init_regs (R.var tape) prog)
    0 regs 0 prog.Test_segtape.nregs;
  input_nodes := Array.sub regs 0 prog.Test_segtape.ninputs;
  for s = 0 to nseg - 1 do
    T.start_segment tape;
    step s
  done;
  let adj = T.backward ?fan tape ~output:(Reverse.node_id !out) in
  (Reverse.value !out, T.adjoint adj, T.last_sweep tape)

(* ------------------------------------------------------------------ *)
(* Random programs: every frontier variant equals the dense sweep      *)
(* ------------------------------------------------------------------ *)

let prop_sparse_equals_dense =
  QCheck.Test.make ~count:150
    ~name:
      "frontier backward bitwise equals dense (any jobs, schedule, budget)"
    (QCheck.make ~print:Test_segtape.setup_print Test_segtape.setup_gen)
    (fun (prog, budget, slots, sched) ->
      let dv, total, dadj, dstats = run_dense prog in
      let check what v adj =
        if not (Test_segtape.same_float dv v) then
          QCheck.Test.fail_reportf "%s output: %.17g <> dense %.17g" what v
            dv;
        for id = 0 to total - 1 do
          if not (Test_segtape.same_float (dadj id) (adj id)) then
            QCheck.Test.fail_reportf
              "%s adjoint of node %d: %.17g <> dense %.17g" what id (adj id)
              (dadj id)
        done
      in
      let v1, _, a1, s1 = run_dense ~fan:(fan_of (Lazy.force pool1)) prog in
      check "dense fan jobs=1" v1 a1;
      let v4, _, a4, s4 = run_dense ~fan:(fan_of (Lazy.force pool4)) prog in
      check "dense fan jobs=4" v4 a4;
      (* Visited-node counts are jobs-invariant on the dense tape. *)
      (match (dstats, s1, s4) with
      | Some d, Some x1, Some x4 ->
          if not (d = x1 && d = x4) then
            QCheck.Test.fail_reportf
              "sweep stats differ across jobs: (%d,%d) (%d,%d) (%d,%d)"
              d.Tape_intf.visited_nodes d.Tape_intf.swept_nodes
              x1.Tape_intf.visited_nodes x1.Tape_intf.swept_nodes
              x4.Tape_intf.visited_nodes x4.Tape_intf.swept_nodes
      | _ -> QCheck.Test.fail_reportf "a dense sweep recorded no stats");
      let sv, sadj, _ =
        run_seg ~slab_nodes:16 ~snapshot_slots:slots ~schedule:sched
          ~budget_nodes:budget prog
      in
      check "segmented" sv sadj;
      let pv, padj, pstats =
        run_seg
          ~fan:(fan_of (Lazy.force pool4))
          ~slab_nodes:16 ~snapshot_slots:slots ~schedule:sched
          ~budget_nodes:budget prog
      in
      check "segment-parallel jobs=4" pv padj;
      (match pstats with
      | Some st ->
          if st.Tape_intf.visited_nodes > st.Tape_intf.swept_nodes then
            QCheck.Test.fail_reportf "visited %d > swept %d"
              st.Tape_intf.visited_nodes st.Tape_intf.swept_nodes
      | None ->
          QCheck.Test.fail_reportf "segment-parallel sweep recorded no stats");
      true)

(* ------------------------------------------------------------------ *)
(* Sweep-stats surface                                                 *)
(* ------------------------------------------------------------------ *)

(* The dense analyzer report exposes what backward visited; the
   frontier never inspects more than the sweep range. *)
let test_sweep_profile () =
  let d = Analyzer.run (module Npb.Cg.App) in
  match d.Crit.sweep_profile with
  | None -> Alcotest.fail "cg dense report has no sweep profile"
  | Some w ->
      Alcotest.(check bool) "visited > 0" true (w.Crit.w_visited_nodes > 0);
      Alcotest.(check bool)
        "visited <= swept" true
        (w.Crit.w_visited_nodes <= w.Crit.w_swept_nodes);
      Alcotest.(check bool)
        "active fraction in (0, 1]" true
        (w.Crit.w_active_fraction > 0. && w.Crit.w_active_fraction <= 1.)

(* ------------------------------------------------------------------ *)
(* IS: the degenerate all-zero frontier                                *)
(* ------------------------------------------------------------------ *)

(* IS is integer sorting: its reverse tape records zero float nodes, so
   no backward sweep ever runs and the frontier machinery must cope
   with the empty case — all-false float masks, no sweep profile, no
   crash — through the sequential, pooled, and segment-parallel
   paths alike. *)
let test_is_degenerate () =
  let d = Analyzer.run (module Npb.Is.App) in
  Alcotest.(check int) "is records no float nodes" 0 d.Crit.tape_nodes;
  Alcotest.(check bool) "no sweep profile" true (d.Crit.sweep_profile = None);
  List.iter
    (fun (v : Crit.var_report) ->
      match v.Crit.kind with
      | Crit.Float_var ->
          Alcotest.(check bool)
            (Printf.sprintf "is.%s: all-false float mask" v.Crit.name)
            true
            (Array.for_all (fun b -> not b) v.Crit.mask)
      | Crit.Int_var -> ())
    d.Crit.vars;
  let p4 =
    Analyzer.run
      ~config:Analyzer.Config.(default |> with_jobs 4)
      (module Npb.Is.App)
  in
  Test_budget.check_identical "is jobs=4" d p4;
  let s4 =
    Analyzer.run
      ~config:
        Analyzer.Config.(default |> with_memory_budget 1 |> with_jobs 4)
      (module Npb.Is.App)
  in
  Test_budget.check_identical "is segmented jobs=4" d s4;
  Alcotest.(check bool)
    "segmented is: no sweep profile" true
    (s4.Crit.sweep_profile = None)

(* ------------------------------------------------------------------ *)
(* CI gate: full NPB suite, sparse and segment-parallel vs dense       *)
(* ------------------------------------------------------------------ *)

(* Per app (one tape live at a time): the report with the backward
   sweep fanned over a 4-wide pool must match the jobs=1 report
   bitwise, including the visited-node count. *)
let gate_dense (module A : Scvad_core.App.S) () =
  let d = Analyzer.run (module A) in
  let p =
    Analyzer.run ~config:Analyzer.Config.(default |> with_jobs 4) (module A)
  in
  Test_budget.check_identical (A.name ^ ": jobs=4 vs jobs=1") d p;
  Alcotest.(check bool)
    (A.name ^ ": sweep stats jobs-invariant")
    true
    (d.Crit.sweep_profile = p.Crit.sweep_profile)

let gate_segmented name (module A : Scvad_core.App.S) () =
  let d = Analyzer.run (module A) in
  let budget = max 1 (d.Crit.tape_nodes / 4) in
  let seg j =
    Analyzer.run
      ~config:
        Analyzer.Config.(default |> with_memory_budget budget |> with_jobs j)
      (module A)
  in
  let s1 = seg 1 and s4 = seg 4 in
  Test_budget.check_identical (name ^ ": segmented jobs=1 vs dense") d s1;
  Test_budget.check_identical (name ^ ": segmented jobs=4 vs dense") d s4;
  Alcotest.(check bool)
    (name ^ ": segmented sweep stats jobs-invariant")
    true
    (s1.Crit.sweep_profile = s4.Crit.sweep_profile)

let gate_tests =
  List.map
    (fun ((module A : Scvad_core.App.S) as app) ->
      Alcotest.test_case
        (A.name ^ ": dense masks, jobs=4 vs jobs=1")
        `Quick (gate_dense app))
    Npb.Suite.all
  @ [
      Alcotest.test_case "cg: segment-parallel masks vs dense" `Quick
        (gate_segmented "cg" (module Npb.Cg.App));
      Alcotest.test_case "ft class S: segment-parallel masks vs dense" `Slow
        (fun () ->
          Gc.full_major ();
          gate_segmented "ft" (module Npb.Ft.App) ();
          Gc.full_major ());
    ]

let suites =
  [
    ( "sparse",
      [
        QCheck_alcotest.to_alcotest prop_sparse_equals_dense;
        Alcotest.test_case "cg: dense report exposes sweep profile" `Quick
          test_sweep_profile;
        Alcotest.test_case "is: empty frontier, all paths" `Quick
          test_is_degenerate;
      ] );
    ("sparse-gate", gate_tests);
  ]
