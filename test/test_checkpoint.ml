(* Tests for the checkpoint library: CRC, region codec, file format,
   store, failure injection. *)

open Scvad_checkpoint

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc_known_vectors () =
  Alcotest.(check int32) "check value" 0xCBF43926l
    (Crc32.of_string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.of_string "");
  Alcotest.(check int32) "single byte" 0xD202EF8Dl (Crc32.of_string "\x00")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Crc32.of_string s in
  let b = Bytes.of_string s in
  let half = Bytes.length b / 2 in
  let inc = Crc32.update 0l b 0 half in
  let inc = Crc32.update inc b half (Bytes.length b - half) in
  Alcotest.(check int32) "incremental = whole" whole inc

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)
(* ------------------------------------------------------------------ *)

let test_regions_of_mask_basic () =
  let r = Regions.of_mask [| true; true; false; true; false; false; true |] in
  Alcotest.(check string) "spans" "0-2,3-4,6-7" (Regions.to_string r);
  Alcotest.(check int) "cardinal" 4 (Regions.cardinal r);
  Alcotest.(check int) "regions" 3 (Regions.count_regions r);
  Alcotest.(check bool) "well formed" true (Regions.is_well_formed r);
  Alcotest.(check bool) "mem 3" true (Regions.mem r 3);
  Alcotest.(check bool) "mem 2" false (Regions.mem r 2)

let test_regions_empty_and_full () =
  let none = Regions.of_mask (Array.make 5 false) in
  Alcotest.(check int) "empty cardinal" 0 (Regions.cardinal none);
  let all = Regions.of_mask (Array.make 5 true) in
  Alcotest.(check string) "single span" "0-5" (Regions.to_string all);
  Alcotest.(check int) "aux bytes" 16 (Regions.aux_bytes all);
  Alcotest.(check int) "aux bytes empty" 0 (Regions.aux_bytes none)

let test_regions_complement () =
  let r = Regions.of_mask [| false; true; true; false; false; true |] in
  let c = Regions.complement ~total:6 r in
  Alcotest.(check string) "complement" "0-1,3-5" (Regions.to_string c);
  Alcotest.(check int) "partition" 6 (Regions.cardinal r + Regions.cardinal c)

let test_regions_iter_order () =
  let r = Regions.of_mask [| true; false; true; true |] in
  let seen = ref [] in
  Regions.iter_elements r (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "visits critical in order" [ 0; 2; 3 ]
    (List.rev !seen)

let test_regions_ill_formed () =
  let bad = [ { Regions.start = 0; stop = 2 }; { Regions.start = 2; stop = 4 } ] in
  Alcotest.(check bool) "adjacent spans rejected" false
    (Regions.is_well_formed bad);
  let bad2 = [ { Regions.start = 3; stop = 3 } ] in
  Alcotest.(check bool) "empty span rejected" false
    (Regions.is_well_formed bad2);
  let bad3 = [ { Regions.start = 4; stop = 6 }; { Regions.start = 0; stop = 1 } ] in
  Alcotest.(check bool) "unsorted rejected" false (Regions.is_well_formed bad3)

let mask_arb =
  QCheck.(
    make
      ~print:(fun m ->
        String.concat ""
          (List.map (fun b -> if b then "#" else ".") (Array.to_list m)))
      Gen.(map Array.of_list (list_size (int_range 0 200) bool)))

let prop_regions_roundtrip =
  QCheck.Test.make ~count:500 ~name:"regions mask roundtrip" mask_arb
    (fun mask ->
      let r = Regions.of_mask mask in
      Regions.is_well_formed r
      && Regions.to_mask ~total:(Array.length mask) r = mask)

let prop_regions_complement_partitions =
  QCheck.Test.make ~count:500 ~name:"complement partitions the index space"
    mask_arb (fun mask ->
      let total = Array.length mask in
      let r = Regions.of_mask mask in
      let c = Regions.complement ~total r in
      Regions.is_well_formed c
      && Regions.cardinal r + Regions.cardinal c = total
      && Array.for_all (fun b -> b)
           (Array.init total (fun i -> Regions.mem r i <> Regions.mem c i)))

(* ------------------------------------------------------------------ *)
(* Format                                                              *)
(* ------------------------------------------------------------------ *)

let f64_section ?regions ~name ~dims ~spe data =
  { Ckpt_format.name; dims; spe; regions; payload = Ckpt_format.F64 data }

let test_format_roundtrip_full () =
  let data = Array.init 60 (fun i -> float i *. 1.5) in
  let ints = Array.init 7 (fun i -> (i * i) - 3) in
  let file =
    {
      Ckpt_format.app = "bt";
      iteration = 42;
      sections =
        [ f64_section ~name:"u" ~dims:[| 3; 4; 5 |] ~spe:1 data;
          {
            Ckpt_format.name = "key_array";
            dims = [| 7 |];
            spe = 1;
            regions = None;
            payload = Ckpt_format.I64 ints;
          } ];
    }
  in
  let file' = Ckpt_format.decode (Ckpt_format.encode file) in
  Alcotest.(check string) "app" "bt" file'.Ckpt_format.app;
  Alcotest.(check int) "iteration" 42 file'.Ckpt_format.iteration;
  match file'.Ckpt_format.sections with
  | [ s1; s2 ] ->
      Alcotest.(check string) "name" "u" s1.Ckpt_format.name;
      (match s1.Ckpt_format.payload with
      | Ckpt_format.F64 d -> Alcotest.(check bool) "floats" true (d = data)
      | _ -> Alcotest.fail "wrong payload kind");
      (match s2.Ckpt_format.payload with
      | Ckpt_format.I64 d -> Alcotest.(check bool) "ints" true (d = ints)
      | _ -> Alcotest.fail "wrong payload kind")
  | _ -> Alcotest.fail "wrong section count"

let test_format_roundtrip_pruned () =
  let total = 10 in
  let full = Array.init total (fun i -> float i) in
  let mask = Array.init total (fun i -> i <> 3 && i <> 7 && i <> 8) in
  let regions = Regions.of_mask mask in
  let packed = Ckpt_format.gather_f64 ~data:full ~spe:1 regions in
  Alcotest.(check int) "packed size" 7 (Array.length packed);
  let s = f64_section ~regions ~name:"x" ~dims:[| total |] ~spe:1 packed in
  let file = { Ckpt_format.app = "cg"; iteration = 1; sections = [ s ] } in
  let file' = Ckpt_format.decode (Ckpt_format.encode file) in
  let s' = List.hd file'.Ckpt_format.sections in
  let restored = Ckpt_format.scatter_f64 s' ~poison:Float.nan in
  Array.iteri
    (fun i v ->
      if mask.(i) then Alcotest.(check (float 0.)) "critical restored" full.(i) v
      else Alcotest.(check bool) "uncritical poisoned" true (Float.is_nan v))
    restored

let test_format_spe2 () =
  (* dcomplex-style: 2 scalars per element. *)
  let elements = 6 in
  let full = Array.init (elements * 2) (fun i -> float i) in
  let mask = [| true; true; false; true; false; true |] in
  let regions = Regions.of_mask mask in
  let packed = Ckpt_format.gather_f64 ~data:full ~spe:2 regions in
  Alcotest.(check int) "packed scalars" 8 (Array.length packed);
  let s = f64_section ~regions ~name:"y" ~dims:[| elements |] ~spe:2 packed in
  let restored = Ckpt_format.scatter_f64 s ~poison:(-1.) in
  Alcotest.(check (float 0.)) "elem 1 re" 2. restored.(2);
  Alcotest.(check (float 0.)) "elem 1 im" 3. restored.(3);
  Alcotest.(check (float 0.)) "elem 2 re poisoned" (-1.) restored.(4);
  Alcotest.(check (float 0.)) "elem 3 re" 6. restored.(6)

let test_format_crc_detects_corruption () =
  let data = Array.init 16 (fun i -> float i) in
  let file =
    {
      Ckpt_format.app = "mg";
      iteration = 3;
      sections = [ f64_section ~name:"u" ~dims:[| 16 |] ~spe:1 data ];
    }
  in
  let s = Bytes.of_string (Ckpt_format.encode file) in
  Bytes.set s 40 (Char.chr (Char.code (Bytes.get s 40) lxor 0x01));
  (match Ckpt_format.decode (Bytes.to_string s) with
  | exception Ckpt_format.Corrupt _ -> ()
  | _ -> Alcotest.fail "corruption not detected");
  match Ckpt_format.decode "short" with
  | exception Ckpt_format.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncation not detected"

let test_format_payload_mismatch_rejected () =
  let s = f64_section ~name:"u" ~dims:[| 4 |] ~spe:1 [| 1.; 2. |] in
  match
    Ckpt_format.encode { Ckpt_format.app = "x"; iteration = 0; sections = [ s ] }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch not rejected"

let test_format_aux_file () =
  let mask = [| true; true; false; true |] in
  let regions = Regions.of_mask mask in
  let packed = Ckpt_format.gather_f64 ~data:[| 0.; 1.; 2.; 3. |] ~spe:1 regions in
  let s = f64_section ~regions ~name:"x" ~dims:[| 4 |] ~spe:1 packed in
  let full = f64_section ~name:"w" ~dims:[| 2 |] ~spe:1 [| 5.; 6. |] in
  let file =
    { Ckpt_format.app = "demo"; iteration = 0; sections = [ s; full ] }
  in
  Alcotest.(check string) "aux sidecar" "x 0-2,3-4\n"
    (Ckpt_format.aux_file_string file);
  Alcotest.(check int) "aux bytes" 32 (Ckpt_format.aux_bytes s);
  Alcotest.(check int) "aux bytes full" 0 (Ckpt_format.aux_bytes full);
  Alcotest.(check int) "payload bytes" 24 (Ckpt_format.payload_bytes s)

let payload_gen =
  QCheck.Gen.(
    let* elements = int_range 1 40 in
    let* spe = int_range 1 3 in
    let* mask = array_size (return elements) bool in
    let* values =
      array_size (return (elements * spe)) (float_bound_inclusive 1e6)
    in
    return (elements, spe, mask, values))

let prop_format_pruned_roundtrip =
  QCheck.Test.make ~count:300 ~name:"pruned section roundtrip"
    (QCheck.make payload_gen) (fun (elements, spe, mask, values) ->
      let regions = Regions.of_mask mask in
      let packed = Ckpt_format.gather_f64 ~data:values ~spe regions in
      let s =
        {
          Ckpt_format.name = "v";
          dims = [| elements |];
          spe;
          regions = Some regions;
          payload = Ckpt_format.F64 packed;
        }
      in
      let file = { Ckpt_format.app = "p"; iteration = 9; sections = [ s ] } in
      let file' = Ckpt_format.decode (Ckpt_format.encode file) in
      let s' = List.hd file'.Ckpt_format.sections in
      let restored = Ckpt_format.scatter_f64 s' ~poison:Float.nan in
      Array.for_all
        (fun e ->
          Array.for_all
            (fun k ->
              let i = (e * spe) + k in
              if mask.(e) then restored.(i) = values.(i)
              else Float.is_nan restored.(i))
            (Array.init spe (fun k -> k)))
        (Array.init elements (fun e -> e)))

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scvad_test_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let trivial_file iteration =
  {
    Ckpt_format.app = "demo";
    iteration;
    sections =
      [ f64_section ~name:"v" ~dims:[| 3 |] ~spe:1
          [| float iteration; 1.; 2. |] ];
  }

let test_store_save_load_latest () =
  with_tmp_dir (fun dir ->
      let store = Store.create dir in
      Alcotest.(check (option reject)) "empty store" None
        (Option.map ignore (Store.latest store));
      ignore (Store.save store (trivial_file 5));
      ignore (Store.save store (trivial_file 12));
      Alcotest.(check (list int)) "iterations" [ 5; 12 ]
        (Store.list_iterations store);
      (match Store.latest store with
      | Some f -> Alcotest.(check int) "latest" 12 f.Ckpt_format.iteration
      | None -> Alcotest.fail "latest missing");
      (match Store.load store 5 with
      | Ok f5 -> Alcotest.(check int) "load 5" 5 f5.Ckpt_format.iteration
      | Error e -> Alcotest.failf "load 5: %s" (Store.describe_error e));
      Alcotest.(check bool) "disk bytes positive" true
        (Store.disk_bytes store 5 > 0))

let test_store_rotation () =
  with_tmp_dir (fun dir ->
      let store =
        Store.create
          ~retention:{ Store.keep_last = Some 2; keep_every = None }
          dir
      in
      List.iter (fun i -> ignore (Store.save store (trivial_file i))) [ 1; 2; 3; 4 ];
      Alcotest.(check (list int)) "rotated" [ 3; 4 ]
        (Store.list_iterations store))

let test_store_no_tmp_left () =
  with_tmp_dir (fun dir ->
      let store = Store.create dir in
      ignore (Store.save store (trivial_file 7));
      let leftovers =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n -> Filename.check_suffix n ".tmp")
      in
      Alcotest.(check (list string)) "no temp files" [] leftovers)

let test_store_sidecar () =
  with_tmp_dir (fun dir ->
      let store = Store.create dir in
      let regions = Regions.of_mask [| true; false; true |] in
      let packed = Ckpt_format.gather_f64 ~data:[| 1.; 2.; 3. |] ~spe:1 regions in
      let file =
        {
          Ckpt_format.app = "demo";
          iteration = 1;
          sections = [ f64_section ~regions ~name:"v" ~dims:[| 3 |] ~spe:1 packed ];
        }
      in
      let path = Store.save ~sidecar_aux:true store file in
      Alcotest.(check bool) "aux exists" true (Sys.file_exists (path ^ ".aux"));
      Store.wipe store;
      Alcotest.(check (list int)) "wiped" [] (Store.list_iterations store))

let test_failure_helpers () =
  (match Failure.crash_if ~at:3 ~iteration:2 with
  | () -> ()
  | exception _ -> Alcotest.fail "should not crash");
  (match Failure.crash_if ~at:3 ~iteration:3 with
  | exception Failure.Crash { iteration = 3 } -> ()
  | _ -> Alcotest.fail "expected crash");
  Alcotest.(check bool) "nan poison" true
    (Float.is_nan (Failure.poison_value Failure.Nan));
  Alcotest.(check (float 0.)) "garbage poison" 7.5
    (Failure.poison_value (Failure.Garbage 7.5));
  Alcotest.(check int) "int poison" 0 (Failure.int_poison_value Failure.Zero)

let suites =
  [ ( "checkpoint.crc32",
      [ Alcotest.test_case "known vectors" `Quick test_crc_known_vectors;
        Alcotest.test_case "incremental" `Quick test_crc_incremental ] );
    ( "checkpoint.regions",
      [ Alcotest.test_case "of_mask basics" `Quick test_regions_of_mask_basic;
        Alcotest.test_case "empty and full" `Quick test_regions_empty_and_full;
        Alcotest.test_case "complement" `Quick test_regions_complement;
        Alcotest.test_case "iter order" `Quick test_regions_iter_order;
        Alcotest.test_case "ill-formed rejected" `Quick test_regions_ill_formed;
        QCheck_alcotest.to_alcotest prop_regions_roundtrip;
        QCheck_alcotest.to_alcotest prop_regions_complement_partitions ] );
    ( "checkpoint.format",
      [ Alcotest.test_case "full roundtrip" `Quick test_format_roundtrip_full;
        Alcotest.test_case "pruned roundtrip" `Quick
          test_format_roundtrip_pruned;
        Alcotest.test_case "two scalars per element" `Quick test_format_spe2;
        Alcotest.test_case "CRC detects corruption" `Quick
          test_format_crc_detects_corruption;
        Alcotest.test_case "payload mismatch rejected" `Quick
          test_format_payload_mismatch_rejected;
        Alcotest.test_case "auxiliary file" `Quick test_format_aux_file;
        QCheck_alcotest.to_alcotest prop_format_pruned_roundtrip ] );
    ( "checkpoint.store",
      [ Alcotest.test_case "save/load/latest" `Quick test_store_save_load_latest;
        Alcotest.test_case "rotation" `Quick test_store_rotation;
        Alcotest.test_case "atomic (no temp left)" `Quick test_store_no_tmp_left;
        Alcotest.test_case "sidecar + wipe" `Quick test_store_sidecar ] );
    ( "checkpoint.failure",
      [ Alcotest.test_case "helpers" `Quick test_failure_helpers ] ) ]
