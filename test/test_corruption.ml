(* Silent-data-corruption tests: flipping a bit in an uncritical element
   never changes the output; flipping a high bit of a critical element
   does.  This is the paper's §IV-C argument run both ways. *)

open Scvad_core
module Npb = Scvad_npb
module F = Scvad_checkpoint.Failure

let test_flip_bit_primitives () =
  let x = 1.5 in
  Alcotest.(check (float 0.)) "sign flip" (-1.5) (F.flip_bit x ~bit:63);
  Alcotest.(check (float 0.)) "double flip restores" x
    (F.flip_bit (F.flip_bit x ~bit:17) ~bit:17);
  Alcotest.(check bool) "mantissa flip changes value" true
    (F.flip_bit x ~bit:0 <> x);
  Alcotest.(check int) "int flip" 5 (F.flip_int_bit 4 ~bit:0);
  Alcotest.check_raises "bad bit"
    (Invalid_argument "Failure.flip_bit: bit in 0..63") (fun () ->
      ignore (F.flip_bit 1. ~bit:64))

(* (app, variable, an uncritical element, a critical element) *)
let idx4 k j i m = ((((k * 13) + j) * 13) + i) * 5 + m

let cases =
  [ ((module Npb.Bt.App : App.S), "u", idx4 3 12 5 0, idx4 3 5 5 0, 6);
    ((module Npb.Cg.App : App.S), "x", 0, 700, 4);
    ((module Npb.Mg.App : App.S), "u", 46_450, 17 * 34 * 34, 3);
    ((module Npb.Lu.App : App.S), "rho_i", (3 * 13 * 13) + (12 * 13) + 5,
     (3 * 13 * 13) + (5 * 13) + 5, 4) ]

let test_uncritical_corruption_harmless () =
  List.iter
    (fun ((module A : App.S), var, uncritical, _, niter) ->
      let e =
        Harness.corrupt_element_experiment ~niter ~at_iter:1 ~var
          ~element:uncritical (module A)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s(%s)[%d] uncritical corruption harmless" A.name var
           uncritical)
        true e.Harness.verified)
    cases

let test_critical_corruption_detected () =
  List.iter
    (fun ((module A : App.S), var, _, critical, niter) ->
      let e =
        Harness.corrupt_element_experiment ~niter ~bit:51 ~at_iter:1 ~var
          ~element:critical (module A)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s(%s)[%d] critical corruption changes output" A.name
           var critical)
        false e.Harness.verified)
    cases

(* Every element the analysis calls uncritical is corruption-immune:
   exhaustive check on CG (only 2 such elements) and sampled on BT. *)
let test_cg_all_uncritical_immune () =
  let report = Analyzer.run (module Npb.Cg.App) in
  let mask = (Criticality.find report "x").Criticality.mask in
  Array.iteri
    (fun e critical ->
      if not critical then begin
        let r =
          Harness.corrupt_element_experiment ~niter:4 ~bit:51 ~at_iter:1
            ~var:"x" ~element:e (module Npb.Cg.App)
        in
        Alcotest.(check bool)
          (Printf.sprintf "x[%d] immune" e)
          true r.Harness.verified
      end)
    mask

let test_bt_sampled_uncritical_immune () =
  let report = Analyzer.run (module Npb.Bt.App) in
  let mask = (Criticality.find report "u").Criticality.mask in
  let uncritical =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun (e, c) -> if c then None else Some e)
            (Array.to_seqi mask)))
  in
  (* Deterministic sample of 10 uncritical elements across the list. *)
  let n = List.length uncritical in
  Alcotest.(check int) "uncritical population" 1500 n;
  List.iter
    (fun k ->
      let e = List.nth uncritical (k * n / 10) in
      let r =
        Harness.corrupt_element_experiment ~niter:4 ~bit:51 ~at_iter:2 ~var:"u"
          ~element:e (module Npb.Bt.App)
      in
      Alcotest.(check bool) (Printf.sprintf "u[%d] immune" e) true
        r.Harness.verified)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let suites =
  [ ( "corruption",
      [ Alcotest.test_case "bit-flip primitives" `Quick
          test_flip_bit_primitives;
        Alcotest.test_case "uncritical flips are harmless" `Quick
          test_uncritical_corruption_harmless;
        Alcotest.test_case "critical flips change the output" `Quick
          test_critical_corruption_detected;
        Alcotest.test_case "CG: every uncritical element immune" `Quick
          test_cg_all_uncritical_immune;
        Alcotest.test_case "BT: sampled uncritical elements immune" `Slow
          test_bt_sampled_uncritical_immune ] ) ]
