(* NPB kernel tests: Table II reproduction, the figure patterns, NPB
   reference values, and per-kernel crash/restart with pruned, poisoned
   checkpoints (paper §IV-C). *)

open Scvad_core
module Npb = Scvad_npb

let run_cfg config app = Analyzer.run ~config app

(* Cache: one analysis per app for the whole suite. *)
let report_cache : (string, Criticality.report) Hashtbl.t = Hashtbl.create 8

let report_of (module A : App.S) =
  match Hashtbl.find_opt report_cache A.name with
  | Some r -> r
  | None ->
      let r = Analyzer.run (module A) in
      Hashtbl.add report_cache A.name r;
      r

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

let test_table2 () =
  List.iter
    (fun (app_name, var, uncritical, total) ->
      match Npb.Suite.find app_name with
      | None -> Alcotest.failf "unknown app %s" app_name
      | Some (module A) ->
          let r = report_of (module A) in
          let v = Criticality.find r var in
          Alcotest.(check int)
            (Printf.sprintf "%s(%s) total" app_name var)
            total (Criticality.total v);
          Alcotest.(check int)
            (Printf.sprintf "%s(%s) uncritical" app_name var)
            uncritical (Criticality.uncritical v))
    Npb.Suite.paper_table2

(* EP and IS have no partially-critical variable: everything is fully
   critical except EP's [buffer], the per-batch scratch that every
   batch regenerates in full before reading — fully uncritical, and the
   static activity pass's showcase claim. *)
let test_ep_is_all_critical () =
  List.iter
    (fun name ->
      match Npb.Suite.find name with
      | None -> Alcotest.failf "unknown app %s" name
      | Some (module A) ->
          let r = report_of (module A) in
          List.iter
            (fun v ->
              if name = "ep" && v.Criticality.name = "buffer" then
                Alcotest.(check int) "ep(buffer) fully uncritical" 0
                  (Criticality.critical v)
              else
                Alcotest.(check int)
                  (Printf.sprintf "%s(%s) fully critical" name
                     v.Criticality.name)
                  0 (Criticality.uncritical v))
            r.Criticality.vars)
    [ "ep"; "is" ]

let test_int_vars_critical_everywhere () =
  List.iter
    (fun (module A : App.S) ->
      let r = report_of (module A) in
      List.iter
        (fun v ->
          if v.Criticality.kind = Criticality.Int_var then
            Alcotest.(check int)
              (Printf.sprintf "%s(%s) int critical" A.name v.Criticality.name)
              0 (Criticality.uncritical v))
        r.Criticality.vars)
    Npb.Suite.all

(* ------------------------------------------------------------------ *)
(* Figure patterns                                                     *)
(* ------------------------------------------------------------------ *)

let idx4 k j i m = ((((k * 13) + j) * 13) + i) * 5 + m

let test_fig3_bt_pattern () =
  (* Fig. 3: uncritical exactly on the padded planes j = 12, i = 12. *)
  let r = report_of (module Npb.Bt.App) in
  let mask = (Criticality.find r "u").Criticality.mask in
  for k = 0 to 11 do
    for j = 0 to 12 do
      for i = 0 to 12 do
        for m = 0 to 4 do
          let expected = j < 12 && i < 12 in
          if mask.(idx4 k j i m) <> expected then
            Alcotest.failf "bt u[%d][%d][%d][%d]: expected %b" k j i m expected
        done
      done
    done
  done

let test_fig3_lu_components_0_3 () =
  let r = report_of (module Npb.Lu.App) in
  let mask = (Criticality.find r "u").Criticality.mask in
  for k = 0 to 11 do
    for j = 0 to 12 do
      for i = 0 to 12 do
        for m = 0 to 3 do
          let expected = j < 12 && i < 12 in
          if mask.(idx4 k j i m) <> expected then
            Alcotest.failf "lu u[%d][%d][%d][%d]: expected %b" k j i m expected
        done
      done
    done
  done

let test_fig7_lu_energy_component () =
  (* Fig. 7: u[.][4] critical iff in the union of the three directional
     sweep ranges. *)
  let r = report_of (module Npb.Lu.App) in
  let mask = (Criticality.find r "u").Criticality.mask in
  let in_range lo hi x = x >= lo && x <= hi in
  let critical = ref 0 in
  for k = 0 to 11 do
    for j = 0 to 12 do
      for i = 0 to 12 do
        let expected =
          (in_range 1 10 k && in_range 1 10 j && in_range 0 11 i)
          || (in_range 1 10 k && in_range 0 11 j && in_range 1 10 i)
          || (in_range 0 11 k && in_range 1 10 j && in_range 1 10 i)
        in
        if mask.(idx4 k j i 4) <> expected then
          Alcotest.failf "lu u[%d][%d][%d][4]: expected %b" k j i expected;
        if expected then incr critical
      done
    done
  done;
  Alcotest.(check int) "union cardinality" 1600 !critical

let test_fig4_mg_u_single_span () =
  let r = report_of (module Npb.Mg.App) in
  let v = Criticality.find r "u" in
  Alcotest.(check string) "one contiguous critical run then uncritical tail"
    "0-39304"
    (Scvad_checkpoint.Regions.to_string v.Criticality.regions)

let test_fig5_mg_r_restriction_read_set () =
  (* Fig. 5: finest-level r critical exactly at indices 1..33 per
     dimension (the full-weighting read set); coarse levels and slack
     uncritical. *)
  let r = report_of (module Npb.Mg.App) in
  let mask = (Criticality.find r "r").Criticality.mask in
  let n = 34 in
  Array.iteri
    (fun off critical ->
      let expected =
        if off >= n * n * n then false
        else
          let i1 = off mod n and i2 = off / n mod n and i3 = off / (n * n) in
          i1 >= 1 && i2 >= 1 && i3 >= 1
      in
      if critical <> expected then
        Alcotest.failf "mg r[%d]: expected %b" off expected)
    mask

let test_fig6_cg_x_strip () =
  let r = report_of (module Npb.Cg.App) in
  let v = Criticality.find r "x" in
  Alcotest.(check string) "first and last element unused" "1-1401"
    (Scvad_checkpoint.Regions.to_string v.Criticality.regions)

let test_fig8_ft_padding_plane () =
  let r = report_of (module Npb.Ft.App) in
  let mask = (Criticality.find r "y").Criticality.mask in
  Array.iteri
    (fun off critical ->
      let x = off mod 65 in
      if critical <> (x < 64) then
        Alcotest.failf "ft y[%d] (x=%d): expected %b" off x (x < 64))
    mask

(* ------------------------------------------------------------------ *)
(* Checkpoint-boundary invariance                                      *)
(* ------------------------------------------------------------------ *)

let test_bt_boundary_invariance () =
  let r0 = report_of (module Npb.Bt.App) in
  let r2 =
    run_cfg
      Analyzer.Config.(default |> with_at_iter 2 |> with_niter 3)
      (module Npb.Bt.App)
  in
  Alcotest.(check (array bool)) "same mask at t=0 and t=2"
    (Criticality.find r0 "u").Criticality.mask
    (Criticality.find r2 "u").Criticality.mask

(* ------------------------------------------------------------------ *)
(* Analysis modes agree (reduced-size CG: forward probe is O(N) runs)  *)
(* ------------------------------------------------------------------ *)

let test_modes_agree_cg_tiny () =
  let by_mode m =
    run_cfg
      Analyzer.Config.(default |> with_mode m)
      (module Npb.Cg.Tiny_app : App.S)
  in
  let reverse = by_mode Criticality.Reverse_gradient in
  let forward = by_mode Criticality.Forward_probe in
  let activity = by_mode Criticality.Activity_dependence
  in
  let mask r = (Criticality.find r "x").Criticality.mask in
  Alcotest.(check (array bool)) "forward = reverse" (mask reverse) (mask forward);
  Alcotest.(check (array bool)) "activity = reverse" (mask reverse)
    (mask activity);
  Alcotest.(check int) "tiny CG pattern" 2
    (Criticality.uncritical (Criticality.find reverse "x"))

(* ------------------------------------------------------------------ *)
(* NPB reference value                                                 *)
(* ------------------------------------------------------------------ *)

let test_cg_matches_npb_reference () =
  (* Our makea/conj_grad port reproduces NPB's official class-S
     verification value zeta = 8.5971775078648. *)
  let g = Harness.golden_run (module Npb.Cg.App) in
  let zeta_ref = 8.5971775078648 in
  if Float.abs (g.Harness.output -. zeta_ref) > 1e-6 then
    Alcotest.failf "zeta %.13f does not match NPB reference %.13f"
      g.Harness.output zeta_ref

(* ------------------------------------------------------------------ *)
(* Crash / restart with pruned, NaN-poisoned checkpoints (§IV-C)       *)
(* ------------------------------------------------------------------ *)

let with_store f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scvad_npb_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  let store = Scvad_checkpoint.Store.create dir in
  Fun.protect
    ~finally:(fun () ->
      Scvad_checkpoint.Store.wipe store;
      Unix.rmdir dir)
    (fun () -> f store)

let crash_restart ?niter (module A : App.S) ~every ~crash_at () =
  with_store (fun store ->
      let report = report_of (module A) in
      let e =
        Harness.crash_restart_experiment ~report ~store ~every ~crash_at
          ?niter
          ~poison:Scvad_checkpoint.Failure.Nan (module A)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s verified after pruned+poisoned restart" A.name)
        true e.Harness.verified;
      Alcotest.(check int) "same iteration count"
        e.Harness.golden.Harness.iterations
        e.Harness.restarted.Harness.iterations)

let test_crash_restart_bt () =
  crash_restart (module Npb.Bt.App) ~niter:6 ~every:2 ~crash_at:5 ()

let test_crash_restart_sp () =
  crash_restart (module Npb.Sp.App) ~niter:6 ~every:2 ~crash_at:5 ()

let test_crash_restart_lu () =
  crash_restart (module Npb.Lu.App) ~niter:8 ~every:3 ~crash_at:7 ()

let test_crash_restart_mg () =
  crash_restart (module Npb.Mg.App) ~every:1 ~crash_at:3 ()

let test_crash_restart_cg () =
  crash_restart (module Npb.Cg.App) ~niter:6 ~every:2 ~crash_at:5 ()

let test_crash_restart_ft () =
  crash_restart (module Npb.Ft.App) ~niter:4 ~every:1 ~crash_at:2 ()

let test_crash_restart_ep () =
  crash_restart (module Npb.Ep.App) ~niter:8 ~every:3 ~crash_at:7 ()

let test_crash_restart_is () =
  crash_restart (module Npb.Is.App) ~every:3 ~crash_at:8 ()

(* Full (unpruned) checkpoints must also roundtrip. *)
let test_crash_restart_full_checkpoint_bt () =
  with_store (fun store ->
      let e =
        Harness.crash_restart_experiment ~store ~every:2 ~crash_at:5 ~niter:6
          (module Npb.Bt.App)
      in
      Alcotest.(check bool) "bt full-checkpoint restart verified" true
        e.Harness.verified;
      Alcotest.(check int) "iterations" 6 e.Harness.golden.Harness.iterations)

(* ------------------------------------------------------------------ *)
(* Registry / Table I                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  Alcotest.(check (list string)) "paper order"
    [ "bt"; "sp"; "mg"; "cg"; "lu"; "ft"; "ep"; "is" ]
    Npb.Suite.names;
  let t1 = Report.table1 Npb.Suite.all in
  List.iter
    (fun decl ->
      if not (Astring.String.is_infix ~affix:decl t1) then
        Alcotest.failf "Table I misses %S" decl)
    [ "double u[12][13][13][5]";
      "double u[46480]";
      "double r[46480]";
      "double x[1402]";
      "double rho_i[12][13][13]";
      "double qs[12][13][13]";
      "double rsd[12][13][13][5]";
      "dcomplex y[64][64][65]";
      "dcomplex sums[6]";
      "double q[10]";
      "int key_array[65536]";
      "int bucket_ptrs[512]";
      "int passed_verification";
      "int iteration";
      "int step";
      "int istep";
      "int kt" ]

let suites =
  [ ( "npb.table2",
      [ Alcotest.test_case "paper Table II, exact" `Slow test_table2;
        Alcotest.test_case "EP and IS fully critical" `Quick
          test_ep_is_all_critical;
        Alcotest.test_case "integer variables critical" `Slow
          test_int_vars_critical_everywhere ] );
    ( "npb.figures",
      [ Alcotest.test_case "Fig 3: BT cube pattern" `Quick test_fig3_bt_pattern;
        Alcotest.test_case "Fig 3: LU components 0-3" `Quick
          test_fig3_lu_components_0_3;
        Alcotest.test_case "Fig 7: LU energy component" `Quick
          test_fig7_lu_energy_component;
        Alcotest.test_case "Fig 4: MG u single span" `Quick
          test_fig4_mg_u_single_span;
        Alcotest.test_case "Fig 5: MG r restriction read set" `Quick
          test_fig5_mg_r_restriction_read_set;
        Alcotest.test_case "Fig 6: CG x strip" `Quick test_fig6_cg_x_strip;
        Alcotest.test_case "Fig 8: FT padding plane" `Slow
          test_fig8_ft_padding_plane ] );
    ( "npb.analysis",
      [ Alcotest.test_case "checkpoint-boundary invariance (BT)" `Quick
          test_bt_boundary_invariance;
        Alcotest.test_case "three modes agree (tiny CG)" `Slow
          test_modes_agree_cg_tiny;
        Alcotest.test_case "CG matches NPB reference zeta" `Quick
          test_cg_matches_npb_reference ] );
    ( "npb.crash_restart",
      [ Alcotest.test_case "bt" `Quick test_crash_restart_bt;
        Alcotest.test_case "sp" `Quick test_crash_restart_sp;
        Alcotest.test_case "lu" `Quick test_crash_restart_lu;
        Alcotest.test_case "mg" `Quick test_crash_restart_mg;
        Alcotest.test_case "cg" `Quick test_crash_restart_cg;
        Alcotest.test_case "ft" `Slow test_crash_restart_ft;
        Alcotest.test_case "ep" `Quick test_crash_restart_ep;
        Alcotest.test_case "is" `Quick test_crash_restart_is;
        Alcotest.test_case "bt (full checkpoint)" `Quick
          test_crash_restart_full_checkpoint_bt ] );
    ("npb.registry", [ Alcotest.test_case "Table I" `Quick test_registry ]) ]
