(* Static activity analysis tests: the golden verdict table for the
   eight NPB kernels, the soundness property the @activity-check gate
   enforces (statically-inactive ⇒ dynamically uncritical, at random
   checkpoint windows), the analyzer fast path, pragma handling on a
   synthetic kernel, and the JSON round-trip. *)

open Scvad_core
module Activity = Scvad_activity
module Verdict = Activity.Verdict
module Driver = Activity.Driver
module Finding = Scvad_lint.Finding

let npb_dir () =
  match Driver.locate_npb_dir () with
  | Some d -> d
  | None -> Alcotest.fail "lib/npb not found above the test cwd"

(* One static pass for the whole suite. *)
let verdicts_cache = ref None

let verdicts () =
  match !verdicts_cache with
  | Some v -> v
  | None ->
      let v = Driver.analyze_dir (npb_dir ()) in
      verdicts_cache := Some v;
      v

(* ------------------------------------------------------------------ *)
(* Golden verdict table                                                *)
(* ------------------------------------------------------------------ *)

(* (app, var, class, inactive elements).  The two nonzero inactive
   counts are the pass's substantive claims: EP's whole regenerated
   scratch buffer and FT's padding plane (the paper's Fig. 8). *)
let golden =
  [
    ("bt", "u", "statically-active", 0);
    ("bt", "step", "statically-active", 0);
    ("cg", "x", "statically-active", 0);
    ("cg", "it", "statically-active", 0);
    ("ep", "sx", "statically-active", 0);
    ("ep", "sy", "statically-active", 0);
    ("ep", "q", "statically-active", 0);
    ("ep", "buffer", "statically-inactive", 131072);
    ("ep", "k", "statically-active", 0);
    ("ft", "y", "statically-active", 4096);
    ("ft", "sums", "statically-active", 0);
    ("ft", "kt", "statically-active", 0);
    ("is", "passed_verification", "statically-active", 0);
    ("is", "key_array", "statically-active", 0);
    ("is", "bucket_ptrs", "statically-active", 0);
    ("is", "iteration", "statically-active", 0);
    ("lu", "u", "statically-active", 0);
    ("lu", "rho_i", "statically-active", 0);
    ("lu", "qs", "statically-active", 0);
    ("lu", "rsd", "statically-active", 0);
    ("lu", "istep", "statically-active", 0);
    ("mg", "u", "statically-active", 0);
    ("mg", "r", "statically-active", 0);
    ("mg", "it", "statically-active", 0);
    ("sp", "u", "statically-active", 0);
    ("sp", "step", "statically-active", 0);
  ]

let test_golden_table () =
  let vs, findings = verdicts () in
  List.iter
    (fun (f : Finding.t) ->
      if f.Finding.severity = Finding.Error then
        Alcotest.failf "unexpected error finding: %s" (Finding.to_text f))
    findings;
  Alcotest.(check int) "eight apps" 8 (List.length vs);
  List.iter
    (fun (a : Verdict.app_verdicts) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s resolved" a.Verdict.app)
        true a.Verdict.resolved)
    vs;
  List.iter
    (fun (app, var, cls, inactive) ->
      match Verdict.find vs ~app ~var with
      | None -> Alcotest.failf "no verdict for %s.%s" app var
      | Some v ->
          Alcotest.(check string)
            (Printf.sprintf "%s.%s class" app var)
            cls
            (Verdict.class_name v.Verdict.class_);
          Alcotest.(check int)
            (Printf.sprintf "%s.%s inactive elements" app var)
            inactive
            (Verdict.inactive_elements v))
    golden;
  (* And nothing beyond the table: every verdict is in golden. *)
  List.iter
    (fun (a : Verdict.app_verdicts) ->
      List.iter
        (fun (v : Verdict.var_verdict) ->
          if
            not
              (List.exists
                 (fun (app, var, _, _) ->
                   app = a.Verdict.app && var = v.Verdict.var)
                 golden)
          then Alcotest.failf "unexpected verdict %s.%s" a.Verdict.app
              v.Verdict.var)
        a.Verdict.vars)
    vs

(* ------------------------------------------------------------------ *)
(* FT refinement shape: exactly the padding plane x = 64               *)
(* ------------------------------------------------------------------ *)

let test_ft_refinement_is_padding_plane () =
  let vs, _ = verdicts () in
  match Verdict.find vs ~app:"ft" ~var:"y" with
  | None -> Alcotest.fail "no ft.y verdict"
  | Some v ->
      let xpad = 65 in
      Scvad_checkpoint.Regions.iter_elements v.Verdict.inactive (fun e ->
          Alcotest.(check int)
            (Printf.sprintf "element %d is on the padding plane" e)
            (xpad - 1) (e mod xpad))

(* ------------------------------------------------------------------ *)
(* The gate property, as a qcheck: Statically_inactive ⇒ dynamically   *)
(* uncritical at random checkpoint windows                             *)
(* ------------------------------------------------------------------ *)

let ep_app () =
  match Scvad_npb.Suite.find "ep" with
  | Some a -> a
  | None -> Alcotest.fail "no ep app"

let prop_ep_buffer_uncritical =
  QCheck.Test.make ~count:6 ~name:"EP buffer uncritical at random windows"
    QCheck.(pair (int_bound 6) (int_range 1 2))
    (fun (at_iter, window) ->
      let (module A) = ep_app () in
      let niter = at_iter + window in
      let r =
        Analyzer.run
          ~config:
            Analyzer.Config.(default |> with_at_iter at_iter |> with_niter niter)
          (module A)
      in
      let buffer = Criticality.find r "buffer" in
      (* The static claim must hold at every boundary, not just the
         default analysis window. *)
      Criticality.critical buffer = 0)

let prop_ep_fast_path_equal =
  QCheck.Test.make ~count:4 ~name:"EP fast path: identical masks"
    QCheck.(int_bound 6)
    (fun at_iter ->
      let (module A) = ep_app () in
      let vs, _ = verdicts () in
      let niter = at_iter + 1 in
      let cfg =
        Analyzer.Config.(default |> with_at_iter at_iter |> with_niter niter)
      in
      let full = Analyzer.run ~config:cfg (module A) in
      let fast =
        Analyzer.run ~config:(Analyzer.Config.with_static vs cfg) (module A)
      in
      List.for_all
        (fun (v : Criticality.var_report) ->
          (Criticality.find fast v.Criticality.name).Criticality.mask
          = v.Criticality.mask)
        full.Criticality.vars)

(* ------------------------------------------------------------------ *)
(* Fast path: tape-node reduction is exactly the skipped lift          *)
(* ------------------------------------------------------------------ *)

let test_fast_path_tape_reduction () =
  let vs, _ = verdicts () in
  let (module A) = ep_app () in
  let full = Analyzer.run (module A) in
  let fast =
    Analyzer.run ~config:Analyzer.Config.(default |> with_static vs) (module A)
  in
  (* buffer has 2*2^16 elements; skipping its lift removes exactly that
     many variable nodes from the tape. *)
  Alcotest.(check int) "tape nodes saved" 131072
    (full.Criticality.tape_nodes - fast.Criticality.tape_nodes);
  let buffer = Criticality.find fast "buffer" in
  Alcotest.(check int) "skipped buffer reported uncritical" 0
    (Criticality.critical buffer)

(* ------------------------------------------------------------------ *)
(* unsound_claims: the gate's contradiction detector                   *)
(* ------------------------------------------------------------------ *)

let test_unsound_claims () =
  let av =
    {
      Verdict.app = "toy";
      source = "toy.ml";
      resolved = true;
      notes = [];
      vars =
        [
          {
            Verdict.var = "a";
            kind = Verdict.Float_var;
            class_ = Verdict.Statically_inactive;
            elements = Some 4;
            inactive = [ { Scvad_checkpoint.Regions.start = 0; stop = 4 } ];
            reason = "test";
            assumed = false;
          };
          {
            Verdict.var = "b";
            kind = Verdict.Float_var;
            class_ = Verdict.Statically_active;
            elements = Some 4;
            inactive = [ { Scvad_checkpoint.Regions.start = 2; stop = 4 } ];
            reason = "test";
            assumed = false;
          };
        ];
    }
  in
  (* Sound masks: nothing critical inside any claim. *)
  let sound =
    [ ("a", Array.make 4 false); ("b", [| true; true; false; false |]) ]
  in
  Alcotest.(check int) "sound masks: no violations" 0
    (List.length (Driver.unsound_claims av ~masks:sound));
  (* a.2 critical contradicts the whole-variable claim; b.3 critical
     contradicts the refinement span. *)
  let unsound =
    [
      ("a", [| false; false; true; false |]);
      ("b", [| true; true; false; true |]);
    ]
  in
  let bad = Driver.unsound_claims av ~masks:unsound in
  Alcotest.(check int) "two offending variables" 2 (List.length bad);
  (match List.assoc_opt "a" bad with
  | Some (n, samples) ->
      Alcotest.(check int) "a: one contradiction" 1 n;
      Alcotest.(check (list int)) "a: element 2" [ 2 ] samples
  | None -> Alcotest.fail "a not reported");
  match List.assoc_opt "b" bad with
  | Some (n, samples) ->
      Alcotest.(check int) "b: one contradiction" 1 n;
      Alcotest.(check (list int)) "b: element 3" [ 3 ] samples
  | None -> Alcotest.fail "b not reported"

(* ------------------------------------------------------------------ *)
(* Pragmas, on a synthetic kernel                                      *)
(* ------------------------------------------------------------------ *)

let toy_source ~pragma =
  Printf.sprintf
    {|
let n = 4

module Make_generic (S : Scvad_ad.Scalar.S) = struct
  type state = {
    mutable acc : S.t;
    scratch : S.t array;
    mutable iter_done : int;
  }

  let create () =
    { acc = S.zero; scratch = Array.make n S.zero; iter_done = 0 }

  let run st ~from ~until =
    for _ = from to until - 1 do
      Array.fill st.scratch 0 n (S.of_float 1.);
      for i = 0 to n - 1 do
        st.acc <- S.(st.acc +. st.scratch.(i))
      done;
      st.iter_done <- st.iter_done + 1
    done

  let output st = st.acc

  let float_vars st =
    let open Scvad_core.Variable in
    [ make ~name:"acc" ~shape:Scvad_nd.Shape.scalar ~spe:1
        ~get:(fun _ _ -> st.acc)
        ~set:(fun _ _ v -> st.acc <- v)
        ();
      %s
      of_array ~name:"scratch" (Scvad_nd.Shape.create [ n ]) st.scratch ]
end

module App = struct
  let name = "toy"
end
|}
    pragma

let analyze_toy ~pragma =
  Driver.analyze_source ~file:"toy.ml" (toy_source ~pragma)

let toy_verdict ~pragma var =
  match analyze_toy ~pragma with
  | None, _ -> Alcotest.fail "toy kernel not recognized as an app"
  | Some av, findings -> (
      match Verdict.find_var av ~var with
      | Some v -> (v, findings)
      | None -> Alcotest.failf "no verdict for toy.%s" var)

let test_toy_kill_is_inactive () =
  let v, findings = toy_verdict ~pragma:"" "scratch" in
  Alcotest.(check string) "scratch class" "statically-inactive"
    (Verdict.class_name v.Verdict.class_);
  Alcotest.(check int) "whole variable" 4 (Verdict.inactive_elements v);
  Alcotest.(check bool) "not assumed" false v.Verdict.assumed;
  Alcotest.(check int) "no findings" 0 (List.length findings)

let test_toy_pragma_overrides () =
  (* An assume-pragma on the declaration line forces the class and is
     flagged as an assumption. *)
  let v, findings =
    toy_verdict
      ~pragma:
        "(* activity: assume active scratch -- exercised by restart paths \
         the model misses *)"
      "scratch"
  in
  Alcotest.(check string) "overridden class" "statically-active"
    (Verdict.class_name v.Verdict.class_);
  Alcotest.(check bool) "marked assumed" true v.Verdict.assumed;
  Alcotest.(check int) "pragma consumed: no findings" 0
    (List.length findings)

let test_toy_pragma_needs_reason () =
  let _, findings =
    toy_verdict ~pragma:"(* activity: assume active scratch *)" "scratch"
  in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "error severity" "error"
        (Finding.severity_name f.Finding.severity)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_toy_unused_pragma_warns () =
  let _, findings =
    toy_verdict
      ~pragma:
        "(* activity: assume inactive nonexistent -- covers no declaration \
         *)"
      "scratch"
  in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "warning severity" "warning"
        (Finding.severity_name f.Finding.severity)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let vs, findings = verdicts () in
  let json = Driver.render_json vs findings in
  let back = Driver.verdicts_of_json json in
  Alcotest.(check bool) "verdicts survive the round-trip" true (back = vs)

let test_json_rejects_garbage () =
  match Driver.verdicts_of_json "{\"apps\": [{\"app\": 3}]}" with
  | _ -> Alcotest.fail "garbage accepted"
  | exception Failure _ -> ()

let suites =
  [
    ( "activity.static",
      [
        Alcotest.test_case "golden verdict table (8 apps)" `Quick
          test_golden_table;
        Alcotest.test_case "FT refinement = padding plane" `Quick
          test_ft_refinement_is_padding_plane;
        Alcotest.test_case "unsound_claims detector" `Quick
          test_unsound_claims;
        Alcotest.test_case "kill-before-read is inactive (toy)" `Quick
          test_toy_kill_is_inactive;
        Alcotest.test_case "pragma overrides verdict" `Quick
          test_toy_pragma_overrides;
        Alcotest.test_case "pragma needs a reason" `Quick
          test_toy_pragma_needs_reason;
        Alcotest.test_case "unused pragma warns" `Quick
          test_toy_unused_pragma_warns;
        Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "JSON parser rejects garbage" `Quick
          test_json_rejects_garbage;
      ] );
    ( "activity.gate",
      [
        Alcotest.test_case "fast path: tape-node reduction" `Slow
          test_fast_path_tape_reduction;
        QCheck_alcotest.to_alcotest prop_ep_buffer_uncritical;
        QCheck_alcotest.to_alcotest prop_ep_fast_path_equal;
      ] );
  ]
