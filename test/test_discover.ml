(* Checkpoint-set discovery tests: the golden discovered-set table for
   the eight NPB kernels (proposed vs declared), the containment
   property the @discover-check gate enforces (every dynamically
   critical variable lives in a discovered field, at random apps and
   boundaries), the analyzer's discovered mode, pragma handling on a
   synthetic kernel, and the JSON round-trip. *)

open Scvad_core
module Rank = Scvad_discover.Rank
module Driver = Scvad_discover.Driver
module Finding = Scvad_lint.Finding

let npb_dir () =
  match Driver.locate_npb_dir () with
  | Some d -> d
  | None -> Alcotest.fail "lib/npb not found above the test cwd"

(* One discovery pass for the whole suite. *)
let proposals_cache = ref None

let proposals () =
  match !proposals_cache with
  | Some v -> v
  | None ->
      let v = Driver.analyze_dir (npb_dir ()) in
      proposals_cache := Some v;
      v

let app_ranks name =
  let ps, _ = proposals () in
  match Rank.find_app ps ~app:name with
  | Some a -> a
  | None -> Alcotest.failf "no proposal for app %s" name

(* ------------------------------------------------------------------ *)
(* Golden discovered-set table                                         *)
(* ------------------------------------------------------------------ *)

(* (app, proposed checkpoint set, pruned declared vars, added
   undeclared fields).  The substantive rows: EP's regenerated scratch
   buffer is pruned from the declaration, and every app whose model
   carries more mutable state than its declaration (CG most of all)
   has the extra fields surfaced as required. *)
let golden =
  [
    ("bt", [ "iter_done"; "rhs"; "u" ], [], [ "rhs" ]);
    ( "cg",
      [
        "iter_done"; "matrix"; "p"; "q"; "r"; "rnorm"; "x"; "z"; "zeta";
      ],
      [],
      [ "matrix"; "p"; "q"; "r"; "rnorm"; "z"; "zeta" ] );
    ("ep", [ "iter_done"; "q"; "sx"; "sy" ], [ "buffer" ], []);
    ( "ft",
      [ "iter_done"; "pencil"; "sums"; "twiddle"; "w"; "y" ],
      [],
      [ "pencil"; "twiddle"; "w" ] );
    ( "is",
      [
        "bucket_ptrs"; "iter_done"; "key_array"; "key_buff2";
        "passed_verification";
      ],
      [],
      [ "key_buff2" ] );
    ( "lu",
      [ "iter_done"; "qs"; "rho_i"; "rsd"; "tmp"; "u" ],
      [],
      [ "tmp" ] );
    ("mg", [ "iter_done"; "r"; "u"; "v" ], [], [ "v" ]);
    ("sp", [ "iter_done"; "rhs"; "u" ], [], [ "rhs" ]);
  ]

let test_golden_table () =
  let ps, findings = proposals () in
  Alcotest.(check int) "eight apps ranked" 8 (List.length ps);
  Alcotest.(check (list string))
    "no findings" []
    (List.map Finding.to_text findings);
  List.iter
    (fun (app, proposed, pruned, added) ->
      let a = app_ranks app in
      Alcotest.(check bool) (app ^ " resolved") true a.Rank.r_resolved;
      Alcotest.(check (list string))
        (app ^ " proposed set") proposed
        (Rank.discovered_fields a);
      Alcotest.(check (list string))
        (app ^ " pruned declared vars") pruned
        (List.filter_map (fun f -> f.Rank.f_var) (Rank.pruned_vars a));
      Alcotest.(check (list string))
        (app ^ " added undeclared fields") added
        (List.map (fun f -> f.Rank.f_field) (Rank.added_fields a)))
    golden

(* The discovery dividend on EP: the declaration over-approximates —
   buffer is regenerated every iteration and never read across the
   boundary, so discovery drops it from the proposed set. *)
let test_ep_prunes_buffer () =
  let a = app_ranks "ep" in
  match Rank.find_field a ~field:"buffer" with
  | None -> Alcotest.fail "ep.buffer not ranked"
  | Some f ->
      Alcotest.(check string)
        "verdict" "prunable-dead"
        (Rank.verdict_name f.Rank.f_verdict);
      Alcotest.(check bool) "backed by a declared var" true
        (f.Rank.f_var = Some "buffer");
      Alcotest.(check bool) "not live across the boundary" false
        f.Rank.f_live

(* The other direction on IS: the declaration misses a field — the
   scratch ranking array key_buff2 is live across the boundary with an
   output path, so discovery adds it as required. *)
let test_is_adds_key_buff2 () =
  let a = app_ranks "is" in
  match Rank.find_field a ~field:"key_buff2" with
  | None -> Alcotest.fail "is.key_buff2 not ranked"
  | Some f ->
      Alcotest.(check string)
        "verdict" "required"
        (Rank.verdict_name f.Rank.f_verdict);
      Alcotest.(check bool) "undeclared" true (f.Rank.f_var = None);
      Alcotest.(check bool) "live and output-reaching" true
        (f.Rank.f_live && f.Rank.f_reaches)

let test_verdict_totals () =
  let ps, _ = proposals () in
  Alcotest.(check int) "required" 40 (Rank.count_verdict ps Rank.Required);
  Alcotest.(check int) "prunable-dead" 1
    (Rank.count_verdict ps Rank.Prunable_dead);
  Alcotest.(check int) "unknown" 0 (Rank.count_verdict ps Rank.Unknown)

(* ------------------------------------------------------------------ *)
(* The gate property, as a qcheck: every dynamically critical variable *)
(* lives in a discovered field, at random apps and boundaries          *)
(* ------------------------------------------------------------------ *)

let suite_apps = [| "ep"; "is"; "mg"; "cg" |]

let prop_critical_vars_are_discovered =
  QCheck.Test.make ~count:8
    ~name:"dynamically critical => in the discovered set"
    QCheck.(pair (int_bound (Array.length suite_apps - 1)) (int_bound 3))
    (fun (app_idx, at_iter) ->
      let name = suite_apps.(app_idx) in
      let (module A) =
        match Scvad_npb.Suite.find name with
        | Some a -> a
        | None -> QCheck.Test.fail_reportf "no %s app" name
      in
      let a = app_ranks name in
      let r =
        Analyzer.run
          ~config:
            Analyzer.Config.(
              default |> with_at_iter at_iter |> with_niter (at_iter + 1))
          (module A)
      in
      List.for_all
        (fun (v : Criticality.var_report) ->
          Criticality.critical v = 0
          ||
          match
            List.find_opt
              (fun (f : Rank.field_rank) ->
                f.Rank.f_var = Some v.Criticality.name)
              a.Rank.r_fields
          with
          | Some f -> not (Rank.is_prunable f.Rank.f_verdict)
          | None -> true)
        r.Criticality.vars)

(* The analyzer's discovered mode: scrutinizing the proposed set must
   leave every mask bitwise identical to the unfiltered analysis
   (EP's pruned buffer is all-false either way), with fewer tape
   nodes. *)
let test_discovered_mode_masks_identical () =
  let ps, _ = proposals () in
  let (module A) =
    match Scvad_npb.Suite.find "ep" with
    | Some a -> a
    | None -> Alcotest.fail "no ep app"
  in
  let full = Analyzer.run (module A) in
  let disc =
    Analyzer.run
      ~config:Analyzer.Config.(default |> with_discovered ps)
      (module A)
  in
  List.iter
    (fun (v : Criticality.var_report) ->
      Alcotest.(check bool)
        (v.Criticality.name ^ " mask identical")
        true
        ((Criticality.find disc v.Criticality.name).Criticality.mask
        = v.Criticality.mask))
    full.Criticality.vars;
  Alcotest.(check bool) "fewer tape nodes under the discovered set" true
    (disc.Criticality.tape_nodes < full.Criticality.tape_nodes)

(* ------------------------------------------------------------------ *)
(* Pragmas, on a synthetic kernel                                      *)
(* ------------------------------------------------------------------ *)

let toy_source ~pragma =
  Printf.sprintf
    {|
let n = 4
%s

module Make_generic (S : Scvad_ad.Scalar.S) = struct
  type state = {
    mutable acc : S.t;
    scratch : S.t array;
    mutable iter_done : int;
  }

  let create () =
    { acc = S.zero; scratch = Array.make n S.zero; iter_done = 0 }

  let run st ~from ~until =
    Array.fill st.scratch 0 n (S.of_float 1.);
    for _ = from to until - 1 do
      for i = 0 to n - 1 do
        st.acc <- S.(st.acc +. st.scratch.(i))
      done;
      st.iter_done <- st.iter_done + 1
    done

  let output st = st.acc

  let float_vars st =
    let open Scvad_core.Variable in
    [ make ~name:"acc" ~shape:Scvad_nd.Shape.scalar ~spe:1
        ~get:(fun _ _ -> st.acc)
        ~set:(fun _ _ v -> st.acc <- v)
        ();
      of_array ~name:"scratch" (Scvad_nd.Shape.create [ n ]) st.scratch ]
end

module App = struct
  let name = "toy"
end
|}
    pragma

let analyze_toy ~pragma =
  Driver.analyze_source ~file:"toy.ml" (toy_source ~pragma)

let toy_field ~pragma field =
  match analyze_toy ~pragma with
  | None, _ -> Alcotest.fail "toy kernel not recognized as an app"
  | Some a, findings -> (
      match Rank.find_field a ~field with
      | Some f -> (f, findings)
      | None -> Alcotest.failf "no rank for toy.%s" field)

let test_toy_killed_is_recomputable () =
  (* scratch is regenerated from a constant every iteration: killed
     before read, sources all kept-or-constant, so the prune carries
     AutoCheck's recomputability justification. *)
  let f, findings = toy_field ~pragma:"" "scratch" in
  Alcotest.(check string)
    "verdict" "prunable-recomputable"
    (Rank.verdict_name f.Rank.f_verdict);
  Alcotest.(check bool) "recomputable axis" true f.Rank.f_recomputable;
  Alcotest.(check bool) "not assumed" false f.Rank.f_assumed;
  Alcotest.(check int) "no findings" 0 (List.length findings)

let test_toy_pragma_overrides () =
  let f, findings =
    toy_field
      ~pragma:
        "(* discover: assume required scratch -- restart paths refill it \
         from checkpointed state *)"
      "scratch"
  in
  Alcotest.(check string)
    "overridden verdict" "required"
    (Rank.verdict_name f.Rank.f_verdict);
  Alcotest.(check bool) "marked assumed" true f.Rank.f_assumed;
  Alcotest.(check int) "pragma consumed: no findings" 0
    (List.length findings)

let test_toy_pragma_needs_reason () =
  let _, findings = toy_field ~pragma:"(* discover: assume dead scratch *)" "scratch" in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "error severity" "error"
        (Finding.severity_name f.Finding.severity)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_toy_pragma_bad_verdict () =
  let _, findings =
    toy_field
      ~pragma:
        "(* discover: assume critical scratch -- not a verdict word *)"
      "scratch"
  in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "error severity" "error"
        (Finding.severity_name f.Finding.severity)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_toy_unused_pragma_warns () =
  let _, findings =
    toy_field
      ~pragma:
        "(* discover: assume dead nonexistent -- names no state field *)"
      "scratch"
  in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "warning severity" "warning"
        (Finding.severity_name f.Finding.severity)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let ps, findings = proposals () in
  let json = Driver.render_json ps findings in
  let back = Driver.proposals_of_json json in
  Alcotest.(check bool) "proposals survive the round-trip" true (back = ps)

let test_json_rejects_garbage () =
  match Driver.proposals_of_json "{\"apps\": [{\"app\": 3}]}" with
  | _ -> Alcotest.fail "garbage accepted"
  | exception Failure _ -> ()

let suites =
  [
    ( "discover.static",
      [
        Alcotest.test_case "golden discovered-set table (8 apps)" `Quick
          test_golden_table;
        Alcotest.test_case "EP: declared buffer pruned" `Quick
          test_ep_prunes_buffer;
        Alcotest.test_case "IS: undeclared key_buff2 added" `Quick
          test_is_adds_key_buff2;
        Alcotest.test_case "verdict totals" `Quick test_verdict_totals;
        Alcotest.test_case "kill+regenerate is recomputable (toy)" `Quick
          test_toy_killed_is_recomputable;
        Alcotest.test_case "pragma overrides verdict" `Quick
          test_toy_pragma_overrides;
        Alcotest.test_case "pragma needs a reason" `Quick
          test_toy_pragma_needs_reason;
        Alcotest.test_case "pragma rejects unknown verdict" `Quick
          test_toy_pragma_bad_verdict;
        Alcotest.test_case "unused pragma warns" `Quick
          test_toy_unused_pragma_warns;
        Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "JSON parser rejects garbage" `Quick
          test_json_rejects_garbage;
      ] );
    ( "discover.gate",
      [
        Alcotest.test_case "discovered mode: identical masks, fewer nodes"
          `Slow test_discovered_mode_masks_identical;
        QCheck_alcotest.to_alcotest prop_critical_vars_are_discovered;
      ] );
  ]
