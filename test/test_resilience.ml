(* Resilience tests: the checkpoint substrate under real failures.

   - CRC-mismatch detection: a flipped byte on disk surfaces as a typed
     [Corrupt] load error, never a successful load;
   - graceful-degradation restart: with the newest checkpoints
     corrupted, [Harness.restart_resilient] falls back to the newest
     valid one — or a cold start — and the §IV-C experiment still
     verifies bit for bit (BT, CG, IS per the acceptance criteria);
   - multi-level retention GC: dense recent + sparse older survivors;
   - deterministic fault injection: same seed ⇒ same faults, transient
     failures recover via bounded retries, verified writes keep
     corrupted attempts off the final path. *)

open Scvad_core
open Scvad_checkpoint
module Npb = Scvad_npb

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scvad_resil_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let f64_section ~name ~dims data =
  { Ckpt_format.name; dims; spe = 1; regions = None;
    payload = Ckpt_format.F64 data }

let trivial_file iteration =
  {
    Ckpt_format.app = "demo";
    iteration;
    sections =
      [ f64_section ~name:"v" ~dims:[| 3 |] [| float iteration; 1.; 2. |] ];
  }

(* Flip one byte in the middle of a checkpoint file on disk. *)
let corrupt_on_disk store iteration =
  let path = Store.path_of_iteration store iteration in
  let ic = open_in_bin path in
  let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let pos = Bytes.length data / 2 in
  Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0x10));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

(* Truncate a checkpoint file on disk to half its length. *)
let truncate_on_disk store iteration =
  let path = Store.path_of_iteration store iteration in
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic / 2) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Typed load errors                                                   *)
(* ------------------------------------------------------------------ *)

let test_load_detects_corruption () =
  with_tmp_dir (fun dir ->
      let store = Store.create dir in
      ignore (Store.save store (trivial_file 3));
      corrupt_on_disk store 3;
      (match Store.load store 3 with
      | Error (Store.Corrupt _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Store.describe_error e)
      | Ok _ -> Alcotest.fail "bit flip not detected");
      ignore (Store.save store (trivial_file 4));
      truncate_on_disk store 4;
      (match Store.load store 4 with
      | Error (Store.Corrupt _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Store.describe_error e)
      | Ok _ -> Alcotest.fail "truncation not detected");
      match Store.load store 99 with
      | Error Store.Missing -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Store.describe_error e)
      | Ok _ -> Alcotest.fail "missing checkpoint loaded")

let test_latest_valid_walks_back () =
  with_tmp_dir (fun dir ->
      let store = Store.create dir in
      List.iter (fun i -> ignore (Store.save store (trivial_file i))) [ 1; 2; 3 ];
      corrupt_on_disk store 3;
      corrupt_on_disk store 2;
      let best, skipped = Store.latest_valid store in
      (match best with
      | Some (it, file) ->
          Alcotest.(check int) "newest valid" 1 it;
          Alcotest.(check int) "file iteration" 1 file.Ckpt_format.iteration
      | None -> Alcotest.fail "no valid checkpoint found");
      Alcotest.(check (list int)) "skipped newest first" [ 3; 2 ]
        (List.map fst skipped);
      (* All corrupt: nothing valid, everything skipped. *)
      corrupt_on_disk store 1;
      let best, skipped = Store.latest_valid store in
      Alcotest.(check bool) "none valid" true (best = None);
      Alcotest.(check int) "all skipped" 3 (List.length skipped))

(* ------------------------------------------------------------------ *)
(* Multi-level retention                                               *)
(* ------------------------------------------------------------------ *)

let test_retention_two_levels () =
  with_tmp_dir (fun dir ->
      let store =
        Store.create
          ~retention:{ Store.keep_last = Some 2; keep_every = Some 4 }
          dir
      in
      List.iter
        (fun i -> ignore (Store.save store (trivial_file i)))
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
      (* Dense level: 9, 10.  Sparse level: 4, 8. *)
      Alcotest.(check (list int)) "two-level survivors" [ 4; 8; 9; 10 ]
        (Store.list_iterations store))

let test_retention_gc_removes_sidecars () =
  with_tmp_dir (fun dir ->
      let store =
        Store.create
          ~retention:{ Store.keep_last = Some 1; keep_every = None }
          dir
      in
      let regions = Regions.of_mask [| true; false; true |] in
      let pruned_file iteration =
        {
          Ckpt_format.app = "demo";
          iteration;
          sections =
            [ { Ckpt_format.name = "v"; dims = [| 3 |]; spe = 1;
                regions = Some regions;
                payload =
                  Ckpt_format.F64
                    (Ckpt_format.gather_f64 ~data:[| 0.; 1.; 2. |] ~spe:1
                       regions) } ];
        }
      in
      ignore (Store.save ~sidecar_aux:true store (pruned_file 1));
      ignore (Store.save ~sidecar_aux:true store (pruned_file 2));
      Alcotest.(check (list int)) "only newest kept" [ 2 ]
        (Store.list_iterations store);
      Alcotest.(check bool) "old sidecar removed" false
        (Sys.file_exists (Store.path_of_iteration store 1 ^ ".aux")))

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)
(* ------------------------------------------------------------------ *)

let heavy_plan seed =
  Io_fault.plan ~torn_write_rate:0.2 ~truncation_rate:0.2 ~bit_flip_rate:0.2
    ~transient_rate:0.2 ~seed ()

let event_signature e =
  Printf.sprintf "%d:%s:%s" e.Io_fault.op (Io_fault.kind_name e.Io_fault.kind)
    e.Io_fault.detail

let test_fault_injection_deterministic () =
  let run seed =
    with_tmp_dir (fun dir ->
        let plan = heavy_plan seed in
        let contents =
          List.map
            (fun i ->
              let path = Filename.concat dir (Printf.sprintf "f%d" i) in
              Io_fault.write_file ~faults:plan path
                (String.init 256 (fun j -> Char.chr ((i + j) land 0xFF)));
              match Io_fault.read_file path with
              | Ok data -> data
              | Error m -> Alcotest.failf "read back: %s" m)
            [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
        in
        (List.map event_signature (Io_fault.events plan), contents))
  in
  let events_a, contents_a = run 42 in
  let events_b, contents_b = run 42 in
  Alcotest.(check (list string)) "same seed, same faults" events_a events_b;
  Alcotest.(check bool) "same seed, same landed bytes" true
    (contents_a = contents_b);
  Alcotest.(check bool) "faults actually injected" true (events_a <> []);
  let events_c, _ = run 43 in
  Alcotest.(check bool) "different seed, different faults" true
    (events_a <> events_c)

let test_transient_faults_recover () =
  with_tmp_dir (fun dir ->
      (* Every operation suffers a transient failure; bounded retries
         must still land every write and read. *)
      let plan = Io_fault.plan ~transient_rate:1.0 ~seed:7 () in
      let path = Filename.concat dir "t" in
      Io_fault.write_file ~faults:plan path "payload";
      (match Io_fault.read_file ~faults:plan path with
      | Ok data -> Alcotest.(check string) "read through transients" "payload" data
      | Error m -> Alcotest.failf "transient not recovered: %s" m);
      let kinds =
        List.map (fun e -> Io_fault.kind_name e.Io_fault.kind)
          (Io_fault.events plan)
      in
      Alcotest.(check (list string)) "both ops injected transients"
        [ "transient"; "transient" ] kinds)

let test_verified_writes_survive_faults () =
  with_tmp_dir (fun dir ->
      (* A store whose writes are frequently mangled: verification must
         keep every checkpoint that lands on the final path decodable. *)
      let store =
        Store.create
          ~faults:
            (Io_fault.plan ~torn_write_rate:0.15 ~truncation_rate:0.15
               ~bit_flip_rate:0.15 ~seed:11 ())
          ~verify_writes:true dir
      in
      List.iter
        (fun i -> ignore (Store.save store (trivial_file i)))
        [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      List.iter
        (fun it ->
          match Store.load store it with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "verified write left a bad checkpoint %d: %s" it
                (Store.describe_error e))
        (Store.list_iterations store);
      Alcotest.(check int) "all checkpoints present" 8
        (List.length (Store.list_iterations store)))

(* ------------------------------------------------------------------ *)
(* Graceful-degradation restart (acceptance: BT, CG, IS)               *)
(* ------------------------------------------------------------------ *)

let corrupt_newest n store =
  let iters = List.rev (Store.list_iterations store) in
  List.iteri (fun i it -> if i < n then corrupt_on_disk store it) iters

let resilient_case ?niter (module A : App.S) ~every ~crash_at () =
  with_tmp_dir (fun dir ->
      let store = Store.create dir in
      let before = ref [] in
      let r =
        Harness.crash_restart_resilient_experiment ~store ~every ~crash_at
          ?niter
          ~sabotage:(fun s ->
            before := Store.list_iterations s;
            corrupt_newest 2 s)
          (module A)
      in
      let iters = List.rev !before in
      (match iters with
      | newest :: next :: rest ->
          Alcotest.(check (list int))
            (A.name ^ ": skipped the two corrupted newest")
            [ newest; next ] (List.map fst r.Harness.skipped);
          let expected_restore = match rest with it :: _ -> it | [] -> 0 in
          Alcotest.(check int) (A.name ^ ": restored newest valid")
            expected_restore r.Harness.restored_iteration
      | _ -> Alcotest.failf "%s: expected >= 2 checkpoints before sabotage"
               A.name);
      Alcotest.(check bool)
        (A.name ^ ": verified bit-for-bit after fallback restart") true
        r.Harness.experiment.Harness.verified)

let test_resilient_bt () =
  resilient_case (module Npb.Bt.App) ~niter:6 ~every:1 ~crash_at:5 ()

let test_resilient_cg () =
  resilient_case (module Npb.Cg.App) ~niter:6 ~every:1 ~crash_at:5 ()

let test_resilient_is () =
  resilient_case (module Npb.Is.App) ~every:2 ~crash_at:9 ()

let test_resilient_cold_restart () =
  (* Every checkpoint corrupted: the resilient restart must degrade all
     the way to a cold start and still verify. *)
  with_tmp_dir (fun dir ->
      let store = Store.create dir in
      let r =
        Harness.crash_restart_resilient_experiment ~store ~every:1 ~crash_at:5
          ~niter:6
          ~sabotage:(fun s -> corrupt_newest max_int s)
          (module Npb.Cg.App)
      in
      Alcotest.(check int) "cold restart" 0 r.Harness.restored_iteration;
      Alcotest.(check int) "all checkpoints skipped" 5
        (List.length r.Harness.skipped);
      Alcotest.(check bool) "still verifies" true
        r.Harness.experiment.Harness.verified)

let test_resilient_pruned_restart () =
  (* The fallback path composes with pruning: corrupted newest, pruned
     NaN-poisoned restore from an older checkpoint, bitwise verify. *)
  with_tmp_dir (fun dir ->
      let store = Store.create dir in
      let report = Analyzer.run (module Npb.Cg.App) in
      let r =
        Harness.crash_restart_resilient_experiment ~report ~store ~every:1
          ~crash_at:5 ~niter:6
          ~poison:Failure.Nan
          ~sabotage:(corrupt_newest 2)
          (module Npb.Cg.App)
      in
      (* every=1, crash at 5 ⇒ checkpoints 1..5 on disk; the newest two
         (5, 4) are corrupted, so the fallback restores 3. *)
      Alcotest.(check int) "restored 3" 3 r.Harness.restored_iteration;
      Alcotest.(check bool) "verified" true r.Harness.experiment.Harness.verified)

let suites =
  [ ( "resilience.store",
      [ Alcotest.test_case "typed load errors" `Quick
          test_load_detects_corruption;
        Alcotest.test_case "latest_valid walks backward" `Quick
          test_latest_valid_walks_back;
        Alcotest.test_case "two-level retention GC" `Quick
          test_retention_two_levels;
        Alcotest.test_case "GC removes sidecars" `Quick
          test_retention_gc_removes_sidecars ] );
    ( "resilience.faults",
      [ Alcotest.test_case "deterministic replay" `Quick
          test_fault_injection_deterministic;
        Alcotest.test_case "transient failures recover" `Quick
          test_transient_faults_recover;
        Alcotest.test_case "verified writes survive faults" `Quick
          test_verified_writes_survive_faults ] );
    ( "resilience.restart",
      [ Alcotest.test_case "BT: 2 corrupted newest, fallback verifies" `Quick
          test_resilient_bt;
        Alcotest.test_case "CG: 2 corrupted newest, fallback verifies" `Quick
          test_resilient_cg;
        Alcotest.test_case "IS: 2 corrupted newest, fallback verifies" `Quick
          test_resilient_is;
        Alcotest.test_case "all corrupted: cold restart verifies" `Quick
          test_resilient_cold_restart;
        Alcotest.test_case "pruned + poisoned fallback verifies" `Quick
          test_resilient_pruned_restart ] ) ]
