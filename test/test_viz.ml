(* Tests for the visualization library. *)

open Scvad_viz

let test_ascii_grid () =
  let g = Ascii.grid ~rows:2 ~cols:3 [| true; false; true; false; true; false |] in
  Alcotest.(check string) "grid" "#.#\n.#.\n" g;
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Ascii.grid: mask size does not match rows*cols")
    (fun () -> ignore (Ascii.grid ~rows:2 ~cols:2 [| true |]))

let test_ascii_grid_color () =
  let g = Ascii.grid ~color:true ~rows:1 ~cols:2 [| true; false |] in
  Alcotest.(check bool) "contains red escape" true
    (Astring.String.is_infix ~affix:"\x1b[31m" g);
  Alcotest.(check bool) "contains blue escape" true
    (Astring.String.is_infix ~affix:"\x1b[34m" g)

let test_ascii_bar () =
  let mask = Array.init 100 (fun i -> i < 50) in
  let bar = Ascii.bar ~width:10 mask in
  Alcotest.(check string) "half and half" "#####....." bar;
  let mixed = Ascii.bar ~width:1 [| true; false |] in
  Alcotest.(check string) "mixed bucket" "+" mixed;
  Alcotest.(check string) "empty" "" (Ascii.bar [||])

let test_ascii_density () =
  let mask = Array.init 20 (fun i -> i mod 2 = 0) in
  let d = Ascii.density ~buckets:2 mask in
  match d with
  | [ (0, 10, c1, 10); (10, 20, c2, 10) ] ->
      Alcotest.(check int) "bucket 1" 5 c1;
      Alcotest.(check int) "bucket 2" 5 c2
  | _ -> Alcotest.fail "unexpected density shape"

let test_ppm_roundtrip () =
  let img = Ppm.of_grid ~scale:2 ~rows:2 ~cols:2 [| true; false; false; true |] in
  let path = Filename.temp_file "scvad_viz" ".ppm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ppm.write path img;
      let ic = open_in_bin path in
      let header = really_input_string ic 11 in
      close_in ic;
      Alcotest.(check string) "ppm header" "P6\n4 4\n255\n" header;
      Alcotest.(check int) "file size" (11 + (3 * 16))
        (Unix.stat path).Unix.st_size)

let test_ppm_montage () =
  let s = [| true; false; false; true |] in
  let img = Ppm.montage ~scale:1 ~rows:2 ~cols:2 [ s; s; s ] in
  (* 3 slices of width 2 plus 2 gutters of width 1 = 8 pixels wide *)
  let path = Filename.temp_file "scvad_viz" ".ppm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ppm.write path img;
      let ic = open_in_bin path in
      let header = really_input_string ic 11 in
      close_in ic;
      Alcotest.(check string) "montage header" "P6\n8 2\n255\n" header)

(* A synthetic BT-style cube: 4x5x5 with uncritical planes j=4, i=4. *)
let synthetic_cube () =
  let d0 = 4 and d1 = 5 and d2 = 5 in
  let mask =
    Array.init (d0 * d1 * d2) (fun off ->
        let i = off mod d2 and j = off / d2 mod d1 in
        j < 4 && i < 4)
  in
  Cube.of_mask ~dims:[| d0; d1; d2 |] mask

let test_cube_planes () =
  let cube = synthetic_cube () in
  Alcotest.(check (list string)) "uncritical planes" [ "axis1=4"; "axis2=4" ]
    (Cube.uncritical_planes cube);
  let crit, unc = Cube.counts cube in
  Alcotest.(check int) "critical" (4 * 4 * 4) crit;
  Alcotest.(check int) "uncritical" ((4 * 5 * 5) - 64) unc;
  Alcotest.(check int) "slices" 4 (List.length (Cube.slices cube))

let test_cube_component () =
  (* 2x2x2x3 4-D mask in which only component 1 is critical. *)
  let mask = Array.init (2 * 2 * 2 * 3) (fun off -> off mod 3 = 1) in
  let c1 = Cube.component ~dims4:[| 2; 2; 2; 3 |] mask ~m:1 in
  let crit, unc = Cube.counts c1 in
  Alcotest.(check int) "component 1 critical" 8 crit;
  Alcotest.(check int) "component 1 uncritical" 0 unc;
  let c0 = Cube.component ~dims4:[| 2; 2; 2; 3 |] mask ~m:0 in
  Alcotest.(check int) "component 0 critical" 0 (fst (Cube.counts c0))

let test_strip () =
  let strip = Strip.of_mask ~name:"x" (Array.init 10 (fun i -> i < 8)) in
  Alcotest.(check string) "run length" "0-8" (Strip.run_length strip);
  let text = Strip.to_ascii ~width:10 strip in
  Alcotest.(check bool) "counts present" true
    (Astring.String.is_infix ~affix:"8 critical, 2 uncritical" text);
  Alcotest.(check string) "window" "##" (Strip.window ~width:2 strip ~lo:0 ~hi:4);
  Alcotest.check_raises "bad window"
    (Invalid_argument "Strip.window: bad bounds") (fun () ->
      ignore (Strip.window strip ~lo:5 ~hi:3))

let test_figures_on_bt_and_cg () =
  let bt = Scvad_core.Analyzer.run (module Scvad_npb.Bt.App) in
  let fig = Figures.fig3 (Scvad_core.Criticality.find bt "u") in
  Alcotest.(check bool) "fig3 names the pad planes" true
    (Astring.String.is_infix ~affix:"axis1=12, axis2=12" fig.Figures.text);
  Alcotest.(check int) "fig3 has an image" 1 (List.length fig.Figures.images);
  let cg = Scvad_core.Analyzer.run (module Scvad_npb.Cg.App) in
  let fig6 = Figures.fig6 (Scvad_core.Criticality.find cg "x") in
  Alcotest.(check bool) "fig6 spans" true
    (Astring.String.is_infix ~affix:"1-1401" fig6.Figures.text)

let test_figures_write_images () =
  let bt = Scvad_core.Analyzer.run (module Scvad_npb.Bt.App) in
  let fig = Figures.fig3 (Scvad_core.Criticality.find bt "u") in
  let dir = Filename.get_temp_dir_name () in
  let paths = Figures.write_images ~dir fig in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " exists") true (Sys.file_exists p);
      Sys.remove p)
    paths

let suites =
  [ ( "viz.ascii",
      [ Alcotest.test_case "grid" `Quick test_ascii_grid;
        Alcotest.test_case "grid color" `Quick test_ascii_grid_color;
        Alcotest.test_case "bar" `Quick test_ascii_bar;
        Alcotest.test_case "density" `Quick test_ascii_density ] );
    ( "viz.ppm",
      [ Alcotest.test_case "roundtrip" `Quick test_ppm_roundtrip;
        Alcotest.test_case "montage" `Quick test_ppm_montage ] );
    ( "viz.cube",
      [ Alcotest.test_case "plane summary" `Quick test_cube_planes;
        Alcotest.test_case "component extraction" `Quick test_cube_component ] );
    ("viz.strip", [ Alcotest.test_case "strip" `Quick test_strip ]);
    ( "viz.figures",
      [ Alcotest.test_case "fig3/fig6 content" `Quick test_figures_on_bt_and_cg;
        Alcotest.test_case "image writing" `Quick test_figures_write_images ] ) ]
