(* Memory-budgeted (segmented) reverse analysis vs the dense tape.

   The checkpointing premise the whole tool rests on — restoring the
   checkpoint variables at a boundary and re-running reproduces the
   continuation bitwise — is exactly what makes segment replay
   deterministic, so a segmented analysis at ANY budget must produce
   the same report as the dense one: same criticality masks, same
   regions, same recorded node count.  These tests pin that down on
   real NPB kernels, and the FT case doubles as the acceptance check:
   class-S FT under a budget of a quarter of its dense tape must stay
   within budget, replay, and still match bitwise. *)

module Crit = Scvad_core.Criticality
module Analyzer = Scvad_core.Analyzer
module Npb = Scvad_npb

let dense (module A : Scvad_core.App.S) = Analyzer.run (module A)

let segmented ?(schedule = Scvad_ad.Tape.Segmented.Binomial) ~budget
    (module A : Scvad_core.App.S) =
  Analyzer.run
    ~config:
      Analyzer.Config.(
        default |> with_memory_budget budget |> with_schedule schedule)
    (module A)

(* Bitwise-identical analysis: every var report (name, shape, kind,
   mask, regions) and the recorded node count.  [tape_nodes] of the
   segmented report counts recording pushes only — replays re-push the
   same slots and are tallied separately in the profile. *)
let check_identical name (d : Crit.report) (s : Crit.report) =
  Alcotest.(check int)
    (name ^ ": recorded tape nodes")
    d.Crit.tape_nodes s.Crit.tape_nodes;
  Alcotest.(check int)
    (name ^ ": var count")
    (List.length d.Crit.vars) (List.length s.Crit.vars);
  List.iter2
    (fun (dv : Crit.var_report) (sv : Crit.var_report) ->
      Alcotest.(check string) (name ^ ": var name") dv.Crit.name sv.Crit.name;
      Alcotest.(check bool)
        (name ^ "." ^ dv.Crit.name ^ ": mask bitwise")
        true
        (dv.Crit.mask = sv.Crit.mask);
      Alcotest.(check bool)
        (name ^ "." ^ dv.Crit.name ^ ": regions")
        true
        (dv.Crit.regions = sv.Crit.regions))
    d.Crit.vars s.Crit.vars

let profile name (s : Crit.report) =
  match s.Crit.tape_profile with
  | Some p -> p
  | None -> Alcotest.failf "%s: segmented run reported no tape profile" name

(* Dense runs report no profile; segmented runs always do. *)
let test_profile_presence () =
  let d = dense (module Npb.Cg.App) in
  Alcotest.(check bool) "dense has no profile" true (d.Crit.tape_profile = None);
  let s = segmented ~budget:(max 1 (d.Crit.tape_nodes / 4)) (module Npb.Cg.App) in
  let p = profile "cg" s in
  Alcotest.(check string) "binomial by default" "binomial" p.Crit.t_schedule

let quarter_budget_matches name (module A : Scvad_core.App.S) () =
  let d = dense (module A) in
  let budget = max 1 (d.Crit.tape_nodes / 4) in
  let s = segmented ~budget (module A) in
  check_identical name d s;
  let p = profile name s in
  Alcotest.(check int) (name ^ ": budget echoed") budget p.Crit.t_budget_nodes;
  Alcotest.(check bool)
    (name ^ ": peak live within budget")
    true
    (p.Crit.t_peak_live_nodes <= budget);
  Alcotest.(check bool)
    (name ^ ": replay happened under quarter budget")
    true (p.Crit.t_replays > 0)

let test_cg_quarter = quarter_budget_matches "cg" (module Npb.Cg.App)
let test_lu_quarter = quarter_budget_matches "lu" (module Npb.Lu.App)

(* IS is integer sorting: its reverse tape records zero float nodes.
   The budget clamps to the one-slab minimum and there is nothing to
   replay — the report must still match the dense one exactly. *)
let test_is_degenerate () =
  let d = dense (module Npb.Is.App) in
  Alcotest.(check int) "is records no float nodes" 0 d.Crit.tape_nodes;
  let s = segmented ~budget:1 (module Npb.Is.App) in
  check_identical "is" d s;
  Alcotest.(check int)
    "nothing to replay" 0
    (profile "is" s).Crit.t_replays

(* Acceptance: FT class S (the paper's headline kernel — one pass
   records ~tens of millions of nodes) under a quarter budget. *)
let test_ft_quarter () =
  Gc.full_major ();
  quarter_budget_matches "ft" (module Npb.Ft.App) ();
  Gc.full_major ()

(* Every schedule reproduces the dense report; all-store ignores the
   budget and never replays. *)
let test_schedules_agree () =
  let d = dense (module Npb.Cg.App) in
  let budget = max 1 (d.Crit.tape_nodes / 4) in
  let ls =
    segmented ~schedule:Scvad_ad.Tape.Segmented.Log_stride ~budget
      (module Npb.Cg.App)
  in
  check_identical "cg/log-stride" d ls;
  Alcotest.(check string)
    "log-stride reported" "log-stride"
    (profile "cg/log-stride" ls).Crit.t_schedule;
  let als =
    segmented ~schedule:Scvad_ad.Tape.Segmented.All_store ~budget
      (module Npb.Cg.App)
  in
  check_identical "cg/all-store" d als;
  Alcotest.(check int)
    "all-store never replays" 0
    (profile "cg/all-store" als).Crit.t_replays

(* A budget at or above the dense size needs no replays at all. *)
let test_ample_budget_no_replay () =
  let d = dense (module Npb.Cg.App) in
  let s = segmented ~budget:(d.Crit.tape_nodes * 2) (module Npb.Cg.App) in
  check_identical "cg/ample" d s;
  Alcotest.(check int)
    "no replay with ample budget" 0
    (profile "cg/ample" s).Crit.t_replays

let suites =
  [
    ( "budget",
      [
        Alcotest.test_case "profile present iff budgeted" `Quick
          test_profile_presence;
        Alcotest.test_case "cg: quarter budget, bitwise-identical" `Quick
          test_cg_quarter;
        Alcotest.test_case "is: zero-activity tape under budget" `Quick
          test_is_degenerate;
        Alcotest.test_case "lu: quarter budget, bitwise-identical" `Quick
          test_lu_quarter;
        Alcotest.test_case "ft class S: quarter budget, bitwise-identical"
          `Slow test_ft_quarter;
        Alcotest.test_case "schedules agree with dense" `Quick
          test_schedules_agree;
        Alcotest.test_case "ample budget never replays" `Quick
          test_ample_budget_no_replay;
      ] );
  ]
