(* Known-bad float-equality fixture. *)

let is_zero x = x = 0.0
let nonzero x = x <> 0.
let cmp a b = compare (a : float) b
let negated x = x = -1.0
let stdlib_cmp a b = Stdlib.compare a (b : float)
