(* Known-good swallowed-exception fixture: specific matches, re-raises,
   and handlers that capture the exception for later use. *)

let lookup tbl k = try Some (Hashtbl.find tbl k) with Not_found -> None

let logged f =
  try f ()
  with e ->
    prerr_endline (Printexc.to_string e);
    raise e

let captured f =
  try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())

let guarded f =
  try f () with e when e = Exit -> 0
