(* Known-good bigarray-generic-access fixture: concrete annotations,
   concrete aliases, and out-of-loop access. *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let sum_concrete
    (a : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) n
    =
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. Bigarray.Array1.get a i
  done;
  !s

let sum_alias (a : f64) n =
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. a.{i}
  done;
  !s

(* A single out-of-loop access is not a hot path. *)
let first a = Bigarray.Array1.get a 0

(* A local binding is not a parameter: its type is visible at the
   allocation site. *)
let local_sum n =
  let a = Bigarray.(Array1.create float64 c_layout n) in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. a.{i}
  done;
  !s
