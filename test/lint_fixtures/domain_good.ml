(* Known-good domain-safety fixture: allocation only inside function
   bodies (per-call state), plus immutable top-level values. *)

let make_counter () = ref 0
let make_cache () = Hashtbl.create 16
let squares n = Array.init n (fun i -> i * i)

type cell = { mutable hits : int; name : string }

let fresh_cell name = { hits = 0; name }

let pi = 4.0 *. atan 1.0
let banner = "scvad"
let limits = (16, 32)

let fold_squares n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + (i * i)
  done;
  !acc

let use () = (make_counter, make_cache, squares, fresh_cell, pi, banner, limits, fold_squares)
