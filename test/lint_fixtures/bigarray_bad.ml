(* Known-bad bigarray-generic-access fixture. *)

let sum_bare a n =
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. Bigarray.Array1.get a i
  done;
  !s

let scale_poly (a : ('a, 'b, 'c) Bigarray.Array1.t) k n =
  for i = 0 to n - 1 do
    Bigarray.Array1.set a i k
  done

let fill_sugar buf v n =
  let i = ref 0 in
  while !i < n do
    buf.{!i} <- v;
    incr i
  done

let peek_hole (w : (float, _, _) Bigarray.Array1.t) n =
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. Bigarray.Array1.unsafe_get w i (* lint: allow unsafe-access — fixture exercises the bigarray rule, not bounds checking *)
  done;
  !s
