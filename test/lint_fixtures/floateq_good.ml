(* Known-good float-equality fixture: tolerances, deliberate
   Float.compare, and non-float structural equality. *)

let close ?(eps = 1e-12) a b = Float.abs (a -. b) <= eps
let is_small x = Float.abs x < epsilon_float
let ordered a b = Float.compare a b <= 0
let same_int (a : int) b = a = b
let same_name (a : string) b = String.equal a b
