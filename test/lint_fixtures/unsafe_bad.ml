(* Known-bad unsafe-access fixture. *)

let third (a : int array) = Array.unsafe_get a 2
let clobber (b : Bytes.t) = Bytes.unsafe_set b 0 'x'
let peek (big : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) =
  Bigarray.Array1.unsafe_get big 0
