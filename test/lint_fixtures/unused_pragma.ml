(* lint: allow float-equality — nothing below actually compares floats *)
let x = 1

let use () = x
