(* Known-good fixture for the deprecated-entrypoint rule: the
   Config-based entry points, the non-deprecated impact pass, and
   similarly-named functions outside the Analyzer module. *)

let _report app = Scvad_core.Analyzer.run app

let _suite apps =
  Scvad_core.Analyzer.run_suite
    ~config:Scvad_core.Analyzer.Config.(default |> with_jobs 2)
    apps

let _impact app = Scvad_core.Analyzer.analyze_impact app
let _other x = Profiler.analyze x
