(* Known-bad domain-spawn fixture: raw Domain spawn/join outside the
   pool runtime.  Never compiled — parsed by the lint tests. *)

let worker f = Domain.spawn f
let wait d = Domain.join d

let fan_raw fs =
  let ds = List.map Domain.spawn fs in
  List.map Domain.join ds
