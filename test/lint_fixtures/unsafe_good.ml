(* Known-good unsafe-access fixture: bounds-checked access only. *)

let third (a : int array) = a.(2)
let clobber (b : Bytes.t) = Bytes.set b 0 'x'
let safe_name _ = "unsafe_get mentioned in a string literal is fine"
