(* Known-bad swallowed-exception fixture: catch-alls that silently eat
   every failure, including Pool re-raises and Store.Write_failed. *)

let quietly f = try f () with _ -> ()
let default d f = try f () with _e -> d

let bound_but_ignored f = try f () with err -> 0
