(* Fixture: malformed pragmas are errors and do not suppress anything;
   a pragma that suppresses nothing is a warning. *)

(* lint: allow float-equality *)
let is_sentinel x = x = 0.0

(* lint: allow no-such-rule — because reasons *)
let unrelated = 1

(* lint: allow unsafe-access — there is no unsafe access below *)
let stale = 2

let use () = (is_sentinel, unrelated, stale)
