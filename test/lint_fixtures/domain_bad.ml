(* Known-bad domain-safety fixture: every flavor of top-level mutable
   state the rule covers.  Never compiled — parsed by the lint tests. *)

let counter = ref 0
let cache = Hashtbl.create 16
let scratch = Buffer.create 256
let workspace = Array.make 8 0
let slab = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 4

type cell = { mutable hits : int; name : string }

let stats = { hits = 0; name = "top" }
let lookup_table = [| 1; 2; 3 |]

(* Closure over module-init state: the ref outlives every call. *)
let tally =
  let seen = ref [] in
  fun x ->
    seen := x :: !seen;
    List.length !seen

module Nested = struct
  let inner_queue = Queue.create ()
end

module Applied (S : sig val n : int end) = struct
  let functor_state = Array.make S.n 0
end

let use () =
  ( counter, cache, scratch, workspace, slab, stats, lookup_table, tally,
    Nested.inner_queue )
