(* Known-bad fixture for the deprecated-entrypoint rule: every
   reference to a deprecated Analyzer wrapper, qualified or nested,
   must fire. *)

let _report app = Scvad_core.Analyzer.analyze ~at_iter:1 app
let _suite apps = Analyzer.analyze_suite ~jobs:2 apps
let _union app = Analyzer.analyze_boundaries ~boundaries:[ 0; 1 ] app

(* A bare reference (no application) is still a use. *)
let _alias = Scvad_core.Analyzer.analyze_suite
