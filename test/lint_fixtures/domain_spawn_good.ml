(* Known-good domain-spawn fixture: pool-mediated parallelism and the
   benign (non-spawning) Domain operations do not fire; a justified
   pragma covers the one deliberate escape hatch. *)

let id () = Domain.self ()
let pause () = Domain.cpu_relax ()
let fan pool f xs = Scvad_par.Pool.map pool f xs

(* lint: allow domain-spawn-outside-pool — fixture: a deliberate raw
   spawn with its justification on record *)
let escape f = Domain.spawn f

let use () = (id, pause, fan, escape)
