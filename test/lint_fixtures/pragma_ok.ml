(* Fixture: justified pragmas suppress findings — trailing, own-line and
   multi-line placements. *)

let is_sentinel x = x = 0.0 (* lint: allow float-equality — exact zero is the sentinel this format reserves *)

(* lint: allow swallowed-exception — probe helper: any failure just means
   "feature not supported here" *)
let probe f = try f () with _ -> false

(* lint: allow domain-safety — write-once table, frozen before any read *)
let table = Array.make 4 0

let use () = (is_sentinel, probe, table)
