(* Segmented tape: bitwise equivalence with the dense tape under random
   programs, budgets, and schedules, plus the budget/replay edge cases.

   The harness is a tiny register machine whose step replays are
   deterministic by construction — exactly the property the analyzer
   relies on (checkpoint variables are complete restart state). *)

open Scvad_ad

(* ------------------------------------------------------------------ *)
(* Register-machine programs                                           *)
(* ------------------------------------------------------------------ *)

type instr = { op : int; a : int; b : int; dst : int }

type prog = {
  ninputs : int;
  nregs : int;
  inputs : float array;
  segs : instr list array;
}

let exec (module S : Scalar.S with type t = Reverse.t) regs ins =
  List.iter
    (fun { op; a; b; dst } ->
      let x = regs.(a) and y = regs.(b) in
      let r =
        match op mod 7 with
        | 0 -> S.(x +. y)
        | 1 -> S.(x -. y)
        | 2 -> S.(x *. y)
        | 3 -> S.(sin x +. y)
        | 4 -> S.max x y
        | 5 -> S.((x *. of_float 0.5) +. cos y)
        | _ -> S.(min x y -. of_float 0.25)
      in
      regs.(dst) <- r)
    ins

(* Final output: the sum of the register file plus the original input
   nodes (so the output can never const-fold away even when every input
   register was overwritten), recorded after the last instruction of the
   last segment — it belongs to that segment's replay, like the
   verification reduction in the real apps. *)
let sum_regs (module S : Scalar.S with type t = Reverse.t) regs input_nodes =
  let acc = ref regs.(0) in
  for i = 1 to Array.length regs - 1 do
    acc := S.(!acc +. regs.(i))
  done;
  Array.iter (fun x -> acc := S.(!acc +. x)) input_nodes;
  !acc

let init_regs var_of prog =
  Array.init prog.nregs (fun i ->
      if i < prog.ninputs then var_of prog.inputs.(i)
      else Reverse.const (0.125 *. float_of_int (i + 1)))

(* Dense reference run: output value and the adjoint of every input. *)
let run_dense prog =
  let tape = Tape.create ~capacity_hint:64 () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let regs = init_regs (Reverse.var tape) prog in
  let input_nodes = Array.sub regs 0 prog.ninputs in
  Array.iter (exec (module S) regs) prog.segs;
  let out = sum_regs (module S) regs input_nodes in
  let adj = Tape.backward tape ~output:(Reverse.node_id out) in
  ( Reverse.value out,
    Array.init prog.ninputs (Tape.adjoint adj),
    Tape.length tape,
    Tape.adjoint adj )

let run_segmented ?slab_nodes ?snapshot_slots ?schedule ~budget_nodes prog =
  let module T = Tape.Segmented in
  let tape = T.create ?slab_nodes ?snapshot_slots ?schedule ~budget_nodes () in
  let module R = Reverse.Segmented in
  let module S = R.Scalar_of (struct
    let tape = tape
  end) in
  let nseg = Array.length prog.segs in
  let regs = Array.make prog.nregs (Reverse.const 0.) in
  let input_nodes = ref [||] in
  let out = ref (Reverse.const 0.) in
  let step s =
    exec (module S) regs prog.segs.(s);
    if s = nseg - 1 then out := sum_regs (module S) regs !input_nodes
  in
  T.set_program tape
    ~capture:(fun () ->
      let snap = Array.copy regs in
      fun () -> Array.blit snap 0 regs 0 (Array.length snap))
    ~replay_step:step;
  Array.blit (init_regs (R.var tape) prog) 0 regs 0 prog.nregs;
  input_nodes := Array.sub regs 0 prog.ninputs;
  for s = 0 to nseg - 1 do
    T.start_segment tape;
    step s
  done;
  let adj = T.backward tape ~output:(Reverse.node_id !out) in
  ( Reverse.value !out,
    Array.init prog.ninputs (T.adjoint adj),
    T.stats tape,
    tape,
    T.adjoint adj )

let bits = Int64.bits_of_float

(* Bitwise equality, except that any NaN equals any NaN: random
   programs overflow to inf and breed NaNs, and IEEE leaves the sign
   and payload of a propagated NaN unspecified — two separately
   compiled but mathematically identical sweeps may legitimately pick
   different NaN bits (x86 mulsd keeps whichever operand the register
   allocator put first).  Criticality is unaffected: NaN magnitudes
   count as critical whatever their bits. *)
let same_float d s = bits d = bits s || (Float.is_nan d && Float.is_nan s)

let check_bitwise ~what dense seg =
  Array.iteri
    (fun i d ->
      if not (same_float d seg.(i)) then
        Alcotest.failf "%s: input %d: dense %.17g <> segmented %.17g" what i d
          seg.(i))
    dense

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)
(* ------------------------------------------------------------------ *)

let prog_gen =
  let open QCheck.Gen in
  let* nregs = int_range 2 6 in
  let* ninputs = int_range 1 nregs in
  let* inputs = array_size (return ninputs) (float_bound_exclusive 4.0) in
  let* nseg = int_range 1 8 in
  let instr =
    let* op = int_bound 1000 in
    let* a = int_bound (nregs - 1) in
    let* b = int_bound (nregs - 1) in
    let* dst = int_bound (nregs - 1) in
    return { op; a; b; dst }
  in
  let* segs = array_size (return nseg) (list_size (int_range 0 40) instr) in
  return { ninputs; nregs; inputs; segs }

let prog_print p =
  Printf.sprintf "{ninputs=%d; nregs=%d; segs=[|%s|]}" p.ninputs p.nregs
    (String.concat "; "
       (Array.to_list
          (Array.map (fun s -> string_of_int (List.length s)) p.segs)))

let setup_gen =
  let open QCheck.Gen in
  let* prog = prog_gen in
  let* budget = int_range 16 600 in
  let* slots = int_range 1 8 in
  let* sched =
    oneofl Tape.Segmented.[ All_store; Log_stride; Binomial ]
  in
  return (prog, budget, slots, sched)

let setup_print (p, budget, slots, sched) =
  Printf.sprintf "%s budget=%d slots=%d sched=%s" (prog_print p) budget slots
    (Tape.Segmented.schedule_to_string sched)

let prop_seg_equals_dense =
  QCheck.Test.make ~count:300
    ~name:"segmented backward bitwise equals dense (random programs)"
    (QCheck.make ~print:setup_print setup_gen)
    (fun (prog, budget, slots, sched) ->
      let dv, dg, total, dadj = run_dense prog in
      let sv, sg, stats, _, sadj =
        run_segmented ~slab_nodes:16 ~snapshot_slots:slots ~schedule:sched
          ~budget_nodes:budget prog
      in
      if not (same_float dv sv) then
        QCheck.Test.fail_reportf "output: dense %.17g <> segmented %.17g" dv
          sv;
      (* Every node's adjoint, not just the inputs'. *)
      for id = 0 to total - 1 do
        if not (same_float (dadj id) (sadj id)) then
          QCheck.Test.fail_reportf "adjoint of node %d: dense %.17g <> %.17g"
            id (dadj id) (sadj id)
      done;
      check_bitwise ~what:"adjoints" dg sg;
      if stats.Tape.Segmented.s_total_nodes <> total then
        QCheck.Test.fail_reportf "total nodes: dense %d <> segmented %d" total
          stats.Tape.Segmented.s_total_nodes;
      (* The budget is enforced at slab granularity (at least one
         slab), except under All_store which deliberately ignores it. *)
      (match sched with
      | Tape.Segmented.All_store -> ()
      | _ ->
          let cap =
            Stdlib.max stats.Tape.Segmented.s_slab_nodes
              (budget / stats.Tape.Segmented.s_slab_nodes
              * stats.Tape.Segmented.s_slab_nodes)
          in
          if stats.Tape.Segmented.s_peak_live_nodes > cap then
            QCheck.Test.fail_reportf "peak live %d > budget cap %d"
              stats.Tape.Segmented.s_peak_live_nodes cap);
      true)

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)
(* ------------------------------------------------------------------ *)

let fixed_prog =
  {
    ninputs = 3;
    nregs = 4;
    inputs = [| 1.5; -0.75; 2.25 |];
    segs =
      Array.init 5 (fun s ->
          List.init 30 (fun i ->
              {
                op = (s * 31) + i;
                a = i mod 4;
                b = (i + s) mod 4;
                dst = (i + 1) mod 4;
              }));
  }

let test_budget_ge_total_degenerates () =
  let dv, dg, total, _ = run_dense fixed_prog in
  let sv, sg, stats, _, _ =
    run_segmented ~slab_nodes:16 ~budget_nodes:(2 * total) fixed_prog
  in
  Alcotest.(check int) "no replays" 0 stats.Tape.Segmented.s_replays;
  Alcotest.(check int) "no replayed nodes" 0
    stats.Tape.Segmented.s_replayed_nodes;
  Alcotest.(check bool) "output bitwise" true (same_float dv sv);
  check_bitwise ~what:"adjoints" dg sg

let test_budget_below_one_segment () =
  (* One slab of live storage against ~120-node segments: every window
     but the last needs a replay pass, including windows inside a single
     segment. *)
  let dv, dg, _, _ = run_dense fixed_prog in
  let sv, sg, stats, _, _ =
    run_segmented ~slab_nodes:16 ~budget_nodes:16 fixed_prog
  in
  Alcotest.(check bool) "replays happened" true
    (stats.Tape.Segmented.s_replays > 0);
  Alcotest.(check bool) "output bitwise" true (same_float dv sv);
  check_bitwise ~what:"adjoints" dg sg;
  Alcotest.(check int) "peak live = one slab" 16
    stats.Tape.Segmented.s_peak_live_nodes

let test_replay_after_clear () =
  let dv, dg, _, _ = run_dense fixed_prog in
  let _, _, _, tape, _ =
    run_segmented ~slab_nodes:16 ~budget_nodes:64 fixed_prog
  in
  (* Re-record on the same tape after a clear; storage is reused and
     the second backward must still match dense bitwise. *)
  Tape.Segmented.clear tape;
  let module T = Tape.Segmented in
  let module R = Reverse.Segmented in
  let module S = R.Scalar_of (struct
    let tape = tape
  end) in
  let prog = fixed_prog in
  let nseg = Array.length prog.segs in
  let regs = Array.make prog.nregs (Reverse.const 0.) in
  Array.blit (init_regs (R.var tape) prog) 0 regs 0 prog.nregs;
  let input_nodes = Array.sub regs 0 prog.ninputs in
  let out = ref (Reverse.const 0.) in
  for s = 0 to nseg - 1 do
    T.start_segment tape;
    exec (module S) regs prog.segs.(s);
    if s = nseg - 1 then out := sum_regs (module S) regs input_nodes
  done;
  let adj = T.backward tape ~output:(Reverse.node_id !out) in
  Alcotest.(check bool) "output bitwise" true (same_float dv (Reverse.value !out));
  check_bitwise ~what:"adjoints" dg
    (Array.init prog.ninputs (T.adjoint adj))

let test_all_store_never_replays () =
  let dv, dg, _, _ = run_dense fixed_prog in
  let sv, sg, stats, _, _ =
    run_segmented ~slab_nodes:16 ~schedule:Tape.Segmented.All_store
      ~budget_nodes:16 fixed_prog
  in
  Alcotest.(check int) "no replays" 0 stats.Tape.Segmented.s_replays;
  Alcotest.(check int) "no snapshots" 0 stats.Tape.Segmented.s_snapshots;
  Alcotest.(check bool) "output bitwise" true (same_float dv sv);
  check_bitwise ~what:"adjoints" dg sg

let test_create_validation () =
  Alcotest.check_raises "negative capacity_hint"
    (Invalid_argument "Tape.create: capacity_hint must be >= 0 (got -1)")
    (fun () -> ignore (Tape.create ~capacity_hint:(-1) ()));
  Alcotest.check_raises "non-positive budget"
    (Invalid_argument
       "Tape.Segmented.create: budget_nodes must be >= 1 (got 0)") (fun () ->
      ignore (Tape.Segmented.create ~budget_nodes:0 ()));
  Alcotest.check_raises "tiny slab_nodes"
    (Invalid_argument
       "Tape.Segmented.create: slab_nodes must be >= 16 (got 8)") (fun () ->
      ignore (Tape.Segmented.create ~slab_nodes:8 ~budget_nodes:64 ()));
  (* Small hints clamp up to one 16-node slab rather than failing. *)
  let t = Tape.create ~capacity_hint:3 () in
  Alcotest.(check int) "clamped slab" 16 (Tape.slab_nodes t)

let test_prelude_must_be_parentless () =
  let module T = Tape.Segmented in
  let tape = T.create ~budget_nodes:64 () in
  T.set_program tape
    ~capture:(fun () -> fun () -> ())
    ~replay_step:(fun _ -> ());
  let x = T.fresh_var tape in
  Alcotest.(check bool) "raises before first boundary" true
    (try
       ignore (T.push1 tape x 1.);
       false
     with Invalid_argument _ -> true);
  T.start_segment tape;
  ignore (T.push1 tape x 1.)

let suites =
  [
    ( "segtape",
      [
        Alcotest.test_case "budget >= total degenerates to dense" `Quick
          test_budget_ge_total_degenerates;
        Alcotest.test_case "budget below one segment" `Quick
          test_budget_below_one_segment;
        Alcotest.test_case "replay after clear" `Quick test_replay_after_clear;
        Alcotest.test_case "all-store never replays" `Quick
          test_all_store_never_replays;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "prelude must be parentless" `Quick
          test_prelude_must_be_parentless;
        QCheck_alcotest.to_alcotest prop_seg_equals_dense;
      ] );
  ]
