(* Tests for the impact analysis and mixed-precision checkpointing
   extension (paper §VII future work). *)

open Scvad_core
module Npb = Scvad_npb

(* ------------------------------------------------------------------ *)
(* Impact analysis                                                     *)
(* ------------------------------------------------------------------ *)

let test_impact_generalizes_criticality () =
  (* magnitude != 0 must coincide with the criticality mask. *)
  List.iter
    (fun name ->
      let (module A : App.S) = Option.get (Npb.Suite.find name) in
      let crit = Analyzer.run (module A) in
      let imp = Analyzer.analyze_impact (module A) in
      List.iter
        (fun (vi : Impact.var_impact) ->
          let c = Criticality.find crit vi.Impact.name in
          Alcotest.(check (array bool))
            (Printf.sprintf "%s(%s)" name vi.Impact.name)
            c.Criticality.mask
            (Impact.to_criticality_mask vi))
        imp.Impact.vars)
    [ "bt"; "cg"; "mg" ]

let test_impact_stats () =
  let imp = Analyzer.analyze_impact (module Npb.Cg.App) in
  let x = Impact.find imp "x" in
  Alcotest.(check bool) "max positive" true (Impact.max_magnitude x > 0.);
  Alcotest.(check bool) "min nonzero <= max" true
    (Impact.min_nonzero x <= Impact.max_magnitude x);
  let p10 = Impact.percentile x ~p:10. in
  let p90 = Impact.percentile x ~p:90. in
  Alcotest.(check bool) "percentiles ordered" true (p10 <= p90);
  let hist = Impact.log_histogram x in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  Alcotest.(check int) "histogram covers nonzero elements" 1400 total

let test_impact_classify () =
  let vi =
    Impact.of_magnitudes ~name:"v"
      ~shape:(Scvad_nd.Shape.create [ 5 ])
      ~spe:1
      [| 0.; 1e-9; 1e-3; 5.; 0.1 |]
  in
  let classes = Impact.classify vi ~threshold:0.1 in
  Alcotest.(check bool) "uncritical" true (classes.(0) = Impact.Uncritical);
  Alcotest.(check bool) "low" true (classes.(1) = Impact.Low_impact);
  Alcotest.(check bool) "low 2" true (classes.(2) = Impact.Low_impact);
  Alcotest.(check bool) "high" true (classes.(3) = Impact.High_impact);
  Alcotest.(check bool) "boundary is high" true
    (classes.(4) = Impact.High_impact);
  let u, l, h = Impact.class_counts classes in
  Alcotest.(check (list int)) "counts" [ 1; 2; 2 ] [ u; l; h ]

(* ------------------------------------------------------------------ *)
(* F32 payload roundtrip                                               *)
(* ------------------------------------------------------------------ *)

let test_f32_section_roundtrip () =
  let values = [| 1.0; Float.pi; -2.5e-7; 1e30 |] in
  let s =
    {
      Scvad_checkpoint.Ckpt_format.name = "v";
      dims = [| 4 |];
      spe = 1;
      regions = None;
      payload = Scvad_checkpoint.Ckpt_format.F32 values;
    }
  in
  let file =
    { Scvad_checkpoint.Ckpt_format.app = "t"; iteration = 0; sections = [ s ] }
  in
  Alcotest.(check int) "f32 payload bytes" 16
    (Scvad_checkpoint.Ckpt_format.payload_bytes s);
  let file' =
    Scvad_checkpoint.Ckpt_format.decode
      (Scvad_checkpoint.Ckpt_format.encode file)
  in
  match (List.hd file'.Scvad_checkpoint.Ckpt_format.sections).payload with
  | Scvad_checkpoint.Ckpt_format.F32 got ->
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "value %d survives as f32" i)
            (Scvad_core.Mixed.to_f32 values.(i))
            v)
        got
  | _ -> Alcotest.fail "wrong payload kind"

(* ------------------------------------------------------------------ *)
(* Mixed-precision snapshot / restore                                  *)
(* ------------------------------------------------------------------ *)

let test_mixed_plan_partition () =
  let imp = Analyzer.analyze_impact (module Npb.Cg.App) in
  let x = Impact.find imp "x" in
  let threshold = Impact.percentile x ~p:50. in
  let plan = Mixed.plan_of_impact ~threshold x in
  let module R = Scvad_checkpoint.Regions in
  (* high + low + uncritical partitions the variable *)
  Alcotest.(check int) "partition" 1402
    (R.cardinal plan.Mixed.high + R.cardinal plan.Mixed.low + 2);
  (* disjoint *)
  for i = 0 to 1401 do
    if R.mem plan.Mixed.high i && R.mem plan.Mixed.low i then
      Alcotest.failf "element %d in both classes" i
  done

let test_mixed_experiment_cg () =
  let e = Mixed.experiment ~at_iter:1 ~niter:4 ~threshold:1e-3 (module Npb.Cg.App) in
  Alcotest.(check bool) "storage shrinks" true
    (e.Mixed.mixed_bytes < e.Mixed.full_bytes);
  Alcotest.(check int) "uncritical dropped" 2 e.Mixed.dropped_elements;
  (* measured error within the first-order bound (plus float slack) *)
  Alcotest.(check bool) "error within predicted bound" true
    (e.Mixed.abs_error <= e.Mixed.predicted_error +. 1e-12)

let test_mixed_experiment_ep () =
  (* EP accumulates: the f32 rounding of sx/sy persists to the output
     untouched, so the measured error is nonzero and the first-order
     prediction is nearly exact. *)
  let e = Mixed.experiment ~at_iter:2 ~niter:6 ~threshold:infinity (module Npb.Ep.App) in
  Alcotest.(check bool) "nonzero measured error" true (e.Mixed.abs_error > 0.);
  Alcotest.(check bool) "within bound" true
    (e.Mixed.abs_error <= e.Mixed.predicted_error *. (1. +. 1e-6) +. 1e-15);
  Alcotest.(check bool) "prediction tight for accumulators" true
    (e.Mixed.abs_error >= 0.2 *. e.Mixed.predicted_error)

let test_mixed_threshold_zero_is_lossless () =
  let e = Mixed.experiment ~at_iter:1 ~niter:4 ~threshold:0. (module Npb.Cg.App) in
  Alcotest.(check int) "no low-impact class at threshold 0" 0
    e.Mixed.low_elements;
  Alcotest.(check (float 0.)) "bitwise equal" 0. e.Mixed.abs_error

let test_mixed_restore_roundtrip () =
  (* Snapshot and restore the quickstart-style demo app by hand. *)
  let (module A : App.S) = (module Npb.Cg.Tiny_app) in
  let imp = Analyzer.analyze_impact (module A) in
  let plans = Mixed.plans_of_report ~threshold:infinity imp in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:2;
  let file =
    Mixed.snapshot ~plans ~app:A.name ~iteration:2
      ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ()
  in
  let st2 = I.create () in
  let from =
    Mixed.restore file ~float_vars:(I.float_vars st2) ~int_vars:(I.int_vars st2)
  in
  Alcotest.(check int) "iteration restored" 2 from;
  (* Critical values must round-trip through f32 exactly. *)
  let v1 = List.hd (I.float_vars st) and v2 = List.hd (I.float_vars st2) in
  for e = 1 to 60 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "x[%d] restored as f32" e)
      (Mixed.to_f32 (v1.Variable.get e 0))
      (v2.Variable.get e 0)
  done;
  (* Uncritical slots are poisoned. *)
  Alcotest.(check bool) "x[0] poisoned" true (Float.is_nan (v2.Variable.get 0 0))

let suites =
  [ ( "mixed.impact",
      [ Alcotest.test_case "impact generalizes criticality" `Slow
          test_impact_generalizes_criticality;
        Alcotest.test_case "statistics" `Quick test_impact_stats;
        Alcotest.test_case "classification" `Quick test_impact_classify ] );
    ( "mixed.format",
      [ Alcotest.test_case "f32 roundtrip" `Quick test_f32_section_roundtrip ] );
    ( "mixed.checkpoint",
      [ Alcotest.test_case "plan partitions" `Quick test_mixed_plan_partition;
        Alcotest.test_case "experiment on CG" `Quick test_mixed_experiment_cg;
        Alcotest.test_case "experiment on EP (accumulator)" `Quick
          test_mixed_experiment_ep;
        Alcotest.test_case "threshold 0 lossless" `Quick
          test_mixed_threshold_zero_is_lossless;
        Alcotest.test_case "restore roundtrip + poison" `Quick
          test_mixed_restore_roundtrip ] ) ]
