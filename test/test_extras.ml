(* Additional suites: checkpoint interval theory, union-over-boundaries
   analysis, golden-output regression pins, and harness robustness
   properties. *)

open Scvad_core
module Interval = Scvad_checkpoint.Interval

(* ------------------------------------------------------------------ *)
(* Interval theory (Young / Daly)                                      *)
(* ------------------------------------------------------------------ *)

let base = { Interval.checkpoint_cost = 30.; mtbf = 86400.; restart_cost = 120. }

let test_young_formula () =
  let tau = Interval.young base in
  Alcotest.(check (float 1e-9)) "sqrt(2CM)" (sqrt (2. *. 30. *. 86400.)) tau

let test_daly_close_to_young_for_small_c () =
  let y = Interval.young base and d = Interval.daly base in
  Alcotest.(check bool) "daly positive" true (d > 0.);
  Alcotest.(check bool) "within 10% of young for C << M" true
    (abs_float (d -. y) /. y < 0.1)

let test_daly_degrades_to_mtbf () =
  let p = { base with Interval.checkpoint_cost = 3. *. base.Interval.mtbf } in
  Alcotest.(check (float 0.)) "tau = M for huge C" base.Interval.mtbf
    (Interval.daly p)

let test_young_minimizes_overhead () =
  let tau = Interval.young base in
  let at t = Interval.expected_overhead base ~tau:t in
  Alcotest.(check bool) "optimum beats half" true (at tau <= at (tau /. 2.));
  Alcotest.(check bool) "optimum beats double" true (at tau <= at (tau *. 2.))

let test_compare_pruning () =
  (* MG's measured saving: 19.1% -> kept fraction 0.809. *)
  let c = Interval.compare_pruning base ~kept_fraction:0.809 in
  Alcotest.(check bool) "pruned interval shorter" true
    (c.Interval.pruned_tau < c.Interval.full_tau);
  Alcotest.(check bool) "pruned overhead lower" true
    (c.Interval.pruned_overhead < c.Interval.full_overhead);
  (* overhead at the optimum scales as sqrt(C): ratio ~ sqrt(0.809) *)
  let ratio = c.Interval.pruned_overhead /. c.Interval.full_overhead in
  Alcotest.(check bool) "sqrt scaling" true
    (abs_float (ratio -. sqrt 0.809) < 0.02)

let test_interval_validation () =
  Alcotest.check_raises "bad C" (Invalid_argument "Interval: need C > 0, M > 0, R >= 0")
    (fun () -> ignore (Interval.young { base with Interval.checkpoint_cost = 0. }));
  Alcotest.check_raises "bad tau"
    (Invalid_argument "Interval.expected_overhead: tau <= 0") (fun () ->
      ignore (Interval.expected_overhead base ~tau:0.));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Interval.compare_pruning: kept_fraction in (0, 1]")
    (fun () -> ignore (Interval.compare_pruning base ~kept_fraction:1.5))

let prop_young_optimal =
  QCheck.Test.make ~count:200 ~name:"young's tau minimizes the overhead model"
    QCheck.(triple (float_range 1. 1000.) (float_range 1e3 1e7) (float_range 0. 1e3))
    (fun (c, m, r) ->
      let p = { Interval.checkpoint_cost = c; mtbf = m; restart_cost = r } in
      let tau = Interval.young p in
      let best = Interval.expected_overhead p ~tau in
      List.for_all
        (fun f -> best <= Interval.expected_overhead p ~tau:(tau *. f) +. 1e-12)
        [ 0.25; 0.5; 0.9; 1.1; 2.; 4. ])

(* ------------------------------------------------------------------ *)
(* Union over checkpoint boundaries                                    *)
(* ------------------------------------------------------------------ *)

let test_union_invariant_app () =
  (* On a boundary-invariant app the union equals any single boundary. *)
  let single = Analyzer.run (module Scvad_npb.Bt.App) in
  let union =
    Analyzer.run_boundaries
      ~config:Analyzer.Config.(default |> with_niter 2)
      ~boundaries:[ 0; 1 ]
      (module Scvad_npb.Bt.App)
  in
  Alcotest.(check (array bool)) "same mask"
    (Criticality.find single "u").Criticality.mask
    (Criticality.find union "u").Criticality.mask;
  Alcotest.(check bool) "tape nodes accumulated" true
    (union.Criticality.tape_nodes > single.Criticality.tape_nodes)

let test_union_empty_rejected () =
  match
    Analyzer.run_boundaries ~boundaries:[] (module Scvad_npb.Bt.App)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Golden-output regression pins                                       *)
(* ------------------------------------------------------------------ *)

(* Deterministic outputs at reduced iteration counts; any change to a
   kernel's numerics shows up here first. *)
let regression_values =
  [ ("bt", 6, 0.0065646188991682081);
    ("sp", 6, 0.0091474311025762263);
    ("mg", 4, 0.001408108223876016);
    ("cg", 6, 8.5971744311607825);
    ("lu", 6, 1.5381629442827509);
    ("ft", 6, 6118.2323158404288);
    ("ep", 6, 307924.08826291235);
    ("is", 6, 30.) ]

let test_golden_regression () =
  List.iter
    (fun (name, niter, expected) ->
      let (module A : App.S) = Option.get (Scvad_npb.Suite.find name) in
      let g = Harness.golden_run ~niter (module A) in
      let scale = Float.max 1. (abs_float expected) in
      if abs_float (g.Harness.output -. expected) > 1e-12 *. scale then
        Alcotest.failf "%s: output %.17g, pinned %.17g" name g.Harness.output
          expected)
    regression_values

(* ------------------------------------------------------------------ *)
(* Harness robustness: any crash point restarts and verifies           *)
(* ------------------------------------------------------------------ *)

let with_store f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scvad_extras_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  let store = Scvad_checkpoint.Store.create dir in
  Fun.protect
    ~finally:(fun () ->
      Scvad_checkpoint.Store.wipe store;
      Unix.rmdir dir)
    (fun () -> f store)

let cg_report = lazy (Analyzer.run (module Scvad_npb.Cg.App))

let prop_crash_anywhere_verifies =
  QCheck.Test.make ~count:12
    ~name:"CG crash/restart verifies at any crash point and interval"
    QCheck.(pair (int_range 1 5) (int_range 2 5))
    (fun (every, crash_at) ->
      QCheck.assume (crash_at >= every);
      with_store (fun store ->
          let e =
            Harness.crash_restart_experiment ~report:(Lazy.force cg_report)
              ~store ~every ~crash_at ~niter:6 (module Scvad_npb.Cg.App)
          in
          e.Harness.verified))

let suites =
  [ ( "extras.interval",
      [ Alcotest.test_case "Young's formula" `Quick test_young_formula;
        Alcotest.test_case "Daly ~ Young for small C" `Quick
          test_daly_close_to_young_for_small_c;
        Alcotest.test_case "Daly degrades to MTBF" `Quick
          test_daly_degrades_to_mtbf;
        Alcotest.test_case "Young minimizes overhead" `Quick
          test_young_minimizes_overhead;
        Alcotest.test_case "pruning comparison (MG rates)" `Quick
          test_compare_pruning;
        Alcotest.test_case "validation" `Quick test_interval_validation;
        QCheck_alcotest.to_alcotest prop_young_optimal ] );
    ( "extras.union",
      [ Alcotest.test_case "union on invariant app" `Quick
          test_union_invariant_app;
        Alcotest.test_case "empty boundaries rejected" `Quick
          test_union_empty_rejected ] );
    ( "extras.regression",
      [ Alcotest.test_case "golden outputs pinned" `Slow test_golden_regression ] );
    ( "extras.harness",
      [ QCheck_alcotest.to_alcotest prop_crash_anywhere_verifies ] ) ]

(* ------------------------------------------------------------------ *)
(* Scaling study: class W                                              *)
(* ------------------------------------------------------------------ *)

(* The criticality patterns are properties of the algorithms, so they
   must scale with the problem: at class W (64^3 finest grid) MG keeps
   exactly the finest level of u (66^3) and the restriction read set of
   r (65^3). *)
let test_mg_class_w_pattern () =
  let r = Analyzer.run (module Scvad_npb.Mg.App_w) in
  let u = Criticality.find r "u" and rr = Criticality.find r "r" in
  Alcotest.(check int) "u total" 334_408 (Criticality.total u);
  Alcotest.(check int) "u critical = 66^3" (66 * 66 * 66)
    (Criticality.critical u);
  Alcotest.(check int) "r critical = 65^3" (65 * 65 * 65)
    (Criticality.critical rr)

let test_cg_class_w_reference () =
  let r = Analyzer.run (module Scvad_npb.Cg.App_w) in
  Alcotest.(check int) "2 uncritical at any size" 2
    (Criticality.uncritical (Criticality.find r "x"));
  let g = Harness.golden_run (module Scvad_npb.Cg.App_w) in
  (* NPB's official class-W verification value. *)
  if Float.abs (g.Harness.output -. 10.362595087124) > 1e-6 then
    Alcotest.failf "class-W zeta %.13f off the NPB reference" g.Harness.output

let scaling_suite =
  ( "extras.scaling",
    [ Alcotest.test_case "MG class W pattern" `Slow test_mg_class_w_pattern;
      Alcotest.test_case "CG class W NPB reference" `Slow
        test_cg_class_w_reference ] )

let suites = suites @ [ scaling_suite ]

(* The ADI family obeys closed-form scaling laws.  With grid g (arrays
   padded to g+1 in j and i):
   - the Fig. 3 pattern leaves 5 * g * (2g+1) elements uncritical
     (two padded planes minus their shared edge, per component);
   - LU's coefficient fields leave g(g+1)^2 - g^3 uncritical;
   - LU's energy component leaves (g(g+1)^2 - (3(g-2)^2 g - 2(g-2)^3))
     uncritical (complement of the union of the three sweep ranges). *)
let fig3_uncritical g = 5 * g * ((2 * g) + 1)
let coeff_uncritical g = (g * (g + 1) * (g + 1)) - (g * g * g)

let lu_u_uncritical g =
  let inner = g - 2 in
  let union = (3 * inner * inner * g) - (2 * inner * inner * inner) in
  (4 * g * ((2 * g) + 1)) + (g * (g + 1) * (g + 1)) - union

let test_adi_class_w_scaling_laws () =
  let count name var =
    let (module A : App.S) = Option.get (Scvad_npb.Suite.find name) in
    let r = Analyzer.run (module A) in
    Criticality.uncritical (Criticality.find r var)
  in
  Alcotest.(check int) "SP class W (g=36)" (fig3_uncritical 36)
    (count "sp-w" "u");
  Alcotest.(check int) "LU class W u (g=33)" (lu_u_uncritical 33)
    (count "lu-w" "u");
  Alcotest.(check int) "LU class W rho_i" (coeff_uncritical 33)
    (count "lu-w" "rho_i")

let test_bt_class_w_scaling_law () =
  let (module A : App.S) = Option.get (Scvad_npb.Suite.find "bt-w") in
  let r = Analyzer.run (module A) in
  Alcotest.(check int) "BT class W (g=24)" (fig3_uncritical 24)
    (Criticality.uncritical (Criticality.find r "u"));
  (* sanity: the same law reproduces the paper's class-S 1500 *)
  Alcotest.(check int) "law at g=12 = paper's 1500" 1500 (fig3_uncritical 12)

let adi_scaling_suite =
  ( "extras.scaling_adi",
    [ Alcotest.test_case "SP/LU class W laws" `Slow
        test_adi_class_w_scaling_laws;
      Alcotest.test_case "BT class W law" `Slow test_bt_class_w_scaling_law ] )

let suites = suites @ [ adi_scaling_suite ]
