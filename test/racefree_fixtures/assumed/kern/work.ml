(* Pragma fixture: a shared-write site downgraded to an on-record
   assumption, plus one stale assumption that must surface as a
   warning.  Never compiled — parsed by the racefree tests. *)

(* racefree: assume disjoint histogram — fixture: the caller's binning
   invariant keeps shard buckets disjoint *)
let histogram pool n acc =
  Pool.init pool n (fun i -> Array.set acc 0 (float_of_int i))

(* racefree: assume disjoint vanished — fixture: this context no
   longer exists *)
let unrelated x = x + 1
