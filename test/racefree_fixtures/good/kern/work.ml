(* Known-good fan-out fixture: the two shapes the static pass proves
   race-free.  Never compiled — parsed by the racefree tests. *)

type cell = { mutable v : float }

(* Per-shard datum mutation: every write lands on the shard's own
   element. *)
let bump pool cells = Pool.map pool (fun c -> c.v <- c.v +. 1.0) cells

(* Index-affine sharding of a captured array: stride 2, offsets 0 and
   1, so distinct shards write disjoint lanes. *)
let stripe pool n out =
  Pool.init pool n (fun i ->
      Array.set out (2 * i) 0.0;
      Array.set out ((2 * i) + 1) 1.0)
