(* Known-bad fan-out fixture: a scale-0 write every shard repeats, and
   a call the interpreter cannot resolve.  Never compiled — parsed by
   the racefree tests. *)

(* Every shard writes element 0 of the captured accumulator. *)
let clobber pool n acc =
  Pool.init pool n (fun i -> Array.set acc 0 (float_of_int i))

(* An unresolvable callee is an unmet obligation, never a guess. *)
let mystery pool xs = Pool.map pool (fun x -> Mystery.poke x) xs
