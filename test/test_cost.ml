(* Static cost model: the golden per-app node-count table at class S,
   the IS zero-node theorem, the hint-drift bound the @cost-check gate
   enforces, and the Planned-schedule property against the
   register-machine harness (test_segtape.ml).

   The golden numbers are load-bearing: cost.exe --check proves each
   equals the dynamically recorded dense tape length exactly, so a
   change here must come with a matching change in the recording (or a
   kernel edit that justifies both). *)

open Scvad_ad
module World = Scvad_cost.World
module Predict = Scvad_cost.Predict
module Plan = Scvad_cost.Plan
module Cost_driver = Scvad_cost.Driver

let npb_dir () =
  match Scvad_activity.Driver.locate_npb_dir () with
  | Some d -> d
  | None -> Alcotest.fail "lib/npb not found above the test cwd"

(* One interpreter pass for the whole suite: the shadow walk over FT
   dominates the cost, and every test below only reads the results. *)
let costs_cache = ref None

let costs () =
  match !costs_cache with
  | Some c -> c
  | None ->
      let world = World.load ~npb_dir:(npb_dir ()) () in
      let c = Cost_driver.analyze world in
      costs_cache := Some c;
      c

let find_cost app =
  match
    List.find_opt (fun c -> c.Cost_driver.c_app = app) (costs ())
  with
  | Some c -> c
  | None -> Alcotest.failf "no cost entry for %s" app

(* ------------------------------------------------------------------ *)
(* Golden predictions                                                  *)
(* ------------------------------------------------------------------ *)

let golden_totals =
  [
    ("bt", 3_568_446);
    ("sp", 601_446);
    ("mg", 2_357_624);
    ("cg", 4_429_154);
    ("lu", 640_637);
    ("ft", 24_530_844);
    ("ep", 284_950);
    ("is", 0);
    ("cg-tiny", 21_648);
  ]

let test_golden_totals () =
  List.iter
    (fun (app, nodes) ->
      let c = find_cost app in
      Alcotest.(check int)
        (app ^ " predicted nodes") nodes c.Cost_driver.c_p.Predict.p_total)
    golden_totals

(* The model's total is its own parts: lift + segments + output. *)
let test_totals_decompose () =
  List.iter
    (fun (c : Cost_driver.app_cost) ->
      let p = c.Cost_driver.c_p in
      Alcotest.(check int)
        (c.Cost_driver.c_app ^ " decomposition")
        p.Predict.p_total
        (p.Predict.p_lift
        + Array.fold_left ( + ) 0 p.Predict.p_segments
        + p.Predict.p_output))
    (costs ())

(* IS is the paper's motivating observation: an integer sort has no
   float dataflow, so its reverse tape is empty — exactly zero, in
   every phase, not merely small. *)
let test_is_zero () =
  let p = (find_cost "is").Cost_driver.c_p in
  Alcotest.(check int) "is: lift nodes" 0 p.Predict.p_lift;
  Alcotest.(check int) "is: output nodes" 0 p.Predict.p_output;
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "is: segment %d" i) 0 n)
    p.Predict.p_segments;
  Alcotest.(check int) "is: total" 0 p.Predict.p_total

(* Every committed tape_nodes_hint must sit within 10% of the static
   prediction (the drift that motivated this pass: cg-tiny once sat 51%
   above the truth).  IS predicts zero, where a relative bound is
   meaningless — its hint is a pure preallocation floor. *)
let test_hints_within_10pct () =
  List.iter
    (fun (c : Cost_driver.app_cost) ->
      let predicted = c.Cost_driver.c_p.Predict.p_total in
      if predicted = 0 then
        Alcotest.(check bool)
          (c.Cost_driver.c_app ^ " hint is a positive floor")
          true
          (c.Cost_driver.c_hint > 0)
      else
        let drift =
          Float.abs (float_of_int (c.Cost_driver.c_hint - predicted))
          /. float_of_int predicted
        in
        if drift > 0.10 then
          Alcotest.failf "%s: hint %d drifts %.0f%% from predicted %d"
            c.Cost_driver.c_app c.Cost_driver.c_hint (100. *. drift) predicted)
    (costs ())

(* ------------------------------------------------------------------ *)
(* Planner vs. the register machine                                    *)
(* ------------------------------------------------------------------ *)

(* The plan's slab sizing must mirror the tape's own default — the
   planner simulates slab-granular retention, so a disagreement here
   would skew every predicted bound. *)
let test_default_slab_nodes_matches_tape () =
  List.iter
    (fun budget_nodes ->
      let t = Tape.Segmented.create ~budget_nodes () in
      Alcotest.(check int)
        (Printf.sprintf "budget %d" budget_nodes)
        (Plan.default_slab_nodes ~budget_nodes)
        (Tape.Segmented.slab_nodes t))
    [ 1; 100; 128; 5_000; 65_536; 524_288; 10_000_000 ]

(* Per-segment node costs of a register-machine program, measured on an
   All_store segmented recording (which never discards, so the running
   length at each boundary is exact). *)
let measure_segments (prog : Test_segtape.prog) =
  let module T = Tape.Segmented in
  let tape =
    T.create ~slab_nodes:16 ~schedule:T.All_store ~budget_nodes:1_000_000 ()
  in
  let module R = Reverse.Segmented in
  let module S = R.Scalar_of (struct
    let tape = tape
  end) in
  let nseg = Array.length prog.Test_segtape.segs in
  let regs = Array.make prog.Test_segtape.nregs (Reverse.const 0.) in
  T.set_program tape
    ~capture:(fun () -> fun () -> ())
    ~replay_step:(fun _ -> ());
  Array.blit
    (Test_segtape.init_regs (R.var tape) prog)
    0 regs 0 prog.Test_segtape.nregs;
  let input_nodes = Array.sub regs 0 prog.Test_segtape.ninputs in
  let len () = (T.stats tape).T.s_total_nodes in
  let prelude = len () in
  let segments =
    Array.init nseg (fun s ->
        let before = len () in
        T.start_segment tape;
        Test_segtape.exec (module S) regs prog.Test_segtape.segs.(s);
        if s = nseg - 1 then
          ignore (Test_segtape.sum_regs (module S) regs input_nodes);
        len () - before)
  in
  (prelude, segments)

let planned_gen =
  let open QCheck.Gen in
  let* prog = Test_segtape.prog_gen in
  let* budget = int_range 16 600 in
  let* slots = int_range 1 8 in
  return (prog, budget, slots)

let planned_print (p, budget, slots) =
  Printf.sprintf "%s budget=%d slots=%d" (Test_segtape.prog_print p) budget
    slots

(* The PR's planning contract on random programs: a plan computed from
   the measured per-segment costs alone must (a) validate as a Planned
   schedule, (b) reproduce the dense adjoints bitwise, (c) keep peak
   live storage within the slab-granular budget cap AND within the
   plan's own predicted peak, and (d) never exceed the simulator's
   dense-sweep replay bounds — the simulator re-enacts the exact
   retention discipline, so its counts are upper bounds by
   construction. *)
let prop_planned_equals_dense =
  QCheck.Test.make ~count:200
    ~name:"planned schedule bitwise equals dense within the plan's bounds"
    (QCheck.make ~print:planned_print planned_gen)
    (fun (prog, budget, slots) ->
      let dv, dg, _total, _ = Test_segtape.run_dense prog in
      let prelude, segments = measure_segments prog in
      let plan =
        Plan.make ~slab_nodes:16 ~snapshot_slots:slots ~prelude ~segments
          ~budget_nodes:budget ()
      in
      let sv, sg, stats, _, _ =
        Test_segtape.run_segmented ~slab_nodes:16 ~snapshot_slots:slots
          ~schedule:(Tape.Segmented.Planned plan.Plan.boundaries)
          ~budget_nodes:budget prog
      in
      if not (Test_segtape.same_float dv sv) then
        QCheck.Test.fail_reportf "output: dense %.17g <> planned %.17g" dv sv;
      Array.iteri
        (fun i d ->
          if not (Test_segtape.same_float d sg.(i)) then
            QCheck.Test.fail_reportf
              "adjoint of input %d: dense %.17g <> planned %.17g" i d sg.(i))
        dg;
      if stats.Tape.Segmented.s_total_nodes <> plan.Plan.total_nodes then
        QCheck.Test.fail_reportf "total nodes: recorded %d <> planned %d"
          stats.Tape.Segmented.s_total_nodes plan.Plan.total_nodes;
      let cap =
        Stdlib.max stats.Tape.Segmented.s_slab_nodes
          (budget / stats.Tape.Segmented.s_slab_nodes
          * stats.Tape.Segmented.s_slab_nodes)
      in
      if stats.Tape.Segmented.s_peak_live_nodes > cap then
        QCheck.Test.fail_reportf "peak live %d > budget cap %d"
          stats.Tape.Segmented.s_peak_live_nodes cap;
      if stats.Tape.Segmented.s_peak_live_nodes > plan.Plan.peak_live_nodes
      then
        QCheck.Test.fail_reportf "peak live %d > planned peak %d"
          stats.Tape.Segmented.s_peak_live_nodes plan.Plan.peak_live_nodes;
      if stats.Tape.Segmented.s_replays > plan.Plan.replays then
        QCheck.Test.fail_reportf "%d replays > planned bound %d"
          stats.Tape.Segmented.s_replays plan.Plan.replays;
      if stats.Tape.Segmented.s_replayed_nodes > plan.Plan.replayed_nodes then
        QCheck.Test.fail_reportf "%d replayed nodes > planned bound %d"
          stats.Tape.Segmented.s_replayed_nodes plan.Plan.replayed_nodes;
      true)

(* Planned-schedule validation at create time. *)
let test_planned_validation () =
  let module T = Tape.Segmented in
  let mk bs = ignore (T.create ~schedule:(T.Planned bs) ~budget_nodes:64 ()) in
  let rejects bs =
    match mk bs with
    | () -> Alcotest.failf "schedule accepted"
    | exception Invalid_argument _ -> ()
  in
  rejects [];
  rejects [ 1; 2 ];
  (* must start at 0 *)
  rejects [ 0; 3; 3 ];
  (* strictly increasing *)
  rejects [ 0; 5; 2 ];
  mk [ 0 ];
  mk [ 0; 1; 2; 7 ]

let suites =
  [
    ( "cost",
      [
        Alcotest.test_case "golden predicted totals (class S)" `Slow
          test_golden_totals;
        Alcotest.test_case "totals decompose into phases" `Slow
          test_totals_decompose;
        Alcotest.test_case "IS records exactly zero float nodes" `Slow
          test_is_zero;
        Alcotest.test_case "every hint within 10% of prediction" `Slow
          test_hints_within_10pct;
        Alcotest.test_case "plan slab sizing matches the tape" `Quick
          test_default_slab_nodes_matches_tape;
        Alcotest.test_case "planned schedule validation" `Quick
          test_planned_validation;
        QCheck_alcotest.to_alcotest prop_planned_equals_dense;
      ] );
  ]
