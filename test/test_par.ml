(* Tests for the domain pool and the parallel scrutiny engine:
   ordering, exception propagation, nesting, and the acceptance
   criterion that [analyze_suite ~jobs:4] is bit-identical to
   [~jobs:1] on every NPB benchmark. *)

module Pool = Scvad_par.Pool
module Crit = Scvad_core.Criticality

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let with_pool4 f = Pool.with_pool ~jobs:4 f

let test_map_ordering () =
  with_pool4 (fun pool ->
      let xs = List.init 500 Fun.id in
      let got = Pool.map pool (fun x -> x * x) xs in
      Alcotest.(check (list int)) "results in input order"
        (List.map (fun x -> x * x) xs)
        got)

let test_map_jobs1_sequential () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int)) "jobs=1 degenerates to List.map"
        [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_map_empty_and_singleton () =
  with_pool4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map pool succ [ 7 ]))

exception Boom of int

let test_map_exception () =
  with_pool4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool
               (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
               (List.init 20 succ));
          None
        with Boom x -> Some x
      in
      (* First failure in input-index order: 3. *)
      Alcotest.(check (option int)) "first exception wins" (Some 3) raised)

(* A named frame for the backtrace to carry across the domain
   boundary. *)
let[@inline never] planted_failure x = raise (Boom x)

let test_exception_backtrace_survives () =
  (* The pool re-raises with [Printexc.raise_with_backtrace], so the
     caller sees the worker's original raise site, not the pool's
     re-raise site. *)
  let was = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was)
    (fun () ->
      with_pool4 (fun pool ->
          let bt =
            try
              ignore
                (Pool.map pool
                   (fun x -> if x = 3 then planted_failure x else x)
                   [ 1; 2; 3; 4; 5 ]);
              ""
            with Boom _ -> Printexc.get_backtrace ()
          in
          Alcotest.(check bool)
            "backtrace names the worker's raise site" true
            (Astring.String.is_infix ~affix:"test_par" bt)))

let test_nested_map_exception () =
  (* A failure inside an in-worker nested map must surface as the outer
     shard's failure, and the outer map still picks the first failing
     shard in input order (row 2, not row 3). *)
  with_pool4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool
               (fun row ->
                 Pool.map pool
                   (fun x -> if x = row then raise (Boom (10 * row)) else x)
                   [ 1; 2; 3 ])
               [ 2; 3; 5 ]);
          None
        with Boom x -> Some x
      in
      Alcotest.(check (option int)) "first outer shard's nested failure"
        (Some 20) raised)

let test_map_after_shutdown () =
  let pool = Pool.create ~jobs:4 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map on closed pool"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool succ [ 1; 2 ]))

let test_nested_map () =
  with_pool4 (fun pool ->
      let got =
        Pool.map pool
          (fun row -> Pool.map pool (fun x -> (10 * row) + x) [ 1; 2; 3 ])
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list (list int)))
        "nested maps compute correctly"
        [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ]; [ 41; 42; 43 ] ]
        got)

let test_init () =
  with_pool4 (fun pool ->
      let got = Pool.init pool 100 (fun i -> i * 3) in
      Alcotest.(check (array int)) "init slots" (Array.init 100 (fun i -> i * 3)) got)

let test_map_actually_parallel () =
  (* All four workers must be in flight at once for the rendezvous to
     complete; a sequential pool would deadlock, so guard with a
     generous timeout via a counter spin instead of a barrier wait. *)
  with_pool4 (fun pool ->
      let arrived = Atomic.make 0 in
      let got =
        Pool.map pool
          (fun i ->
            Atomic.incr arrived;
            (* Wait (bounded) until at least 2 tasks overlap. *)
            let spins = ref 0 in
            while Atomic.get arrived < 2 && !spins < 100_000_000 do
              incr spins
            done;
            i)
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "parallel rendezvous" [ 1; 2; 3; 4 ] got;
      Alcotest.(check bool) "at least two tasks overlapped" true
        (Atomic.get arrived >= 2))

(* ------------------------------------------------------------------ *)
(* Determinism: parallel suite analysis is bit-identical               *)
(* ------------------------------------------------------------------ *)

let check_var_report_equal app (a : Crit.var_report) (b : Crit.var_report) =
  Alcotest.(check string)
    (Printf.sprintf "%s: variable name" app)
    a.Crit.name b.Crit.name;
  Alcotest.(check (array bool))
    (Printf.sprintf "%s/%s: mask" app a.Crit.name)
    a.Crit.mask b.Crit.mask;
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s: regions" app a.Crit.name)
    true
    (a.Crit.regions = b.Crit.regions)

let test_suite_determinism () =
  let apps = Scvad_npb.Suite.all in
  let cfg j = Scvad_core.Analyzer.Config.(default |> with_jobs j) in
  let seq = Scvad_core.Analyzer.run_suite ~config:(cfg 1) apps in
  let par = Scvad_core.Analyzer.run_suite ~config:(cfg 4) apps in
  List.iter2
    (fun (s : Crit.report) (p : Crit.report) ->
      Alcotest.(check string) "app order" s.Crit.app p.Crit.app;
      Alcotest.(check int)
        (Printf.sprintf "%s: tape nodes" s.Crit.app)
        s.Crit.tape_nodes p.Crit.tape_nodes;
      Alcotest.(check int)
        (Printf.sprintf "%s: variable count" s.Crit.app)
        (List.length s.Crit.vars)
        (List.length p.Crit.vars);
      List.iter2 (check_var_report_equal s.Crit.app) s.Crit.vars p.Crit.vars)
    seq par

let test_forward_probe_parallel_determinism () =
  (* Forward probes shard per element; compare against sequential on the
     reduced CG (full benchmarks are O(elements) runs in this mode). *)
  let app = (module Scvad_npb.Cg.Tiny_app : Scvad_core.App.S) in
  let cfg j =
    Scvad_core.Analyzer.Config.(
      default |> with_mode Crit.Forward_probe |> with_jobs j)
  in
  let seq = Scvad_core.Analyzer.run ~config:(cfg 1) app in
  let par = Scvad_core.Analyzer.run ~config:(cfg 4) app in
  List.iter2 (check_var_report_equal "cg-tiny") seq.Crit.vars par.Crit.vars

let test_activity_parallel_determinism () =
  let app = (module Scvad_npb.Cg.Tiny_app : Scvad_core.App.S) in
  let cfg j =
    Scvad_core.Analyzer.Config.(
      default |> with_mode Crit.Activity_dependence |> with_jobs j)
  in
  let seq = Scvad_core.Analyzer.run ~config:(cfg 1) app in
  let par = Scvad_core.Analyzer.run ~config:(cfg 4) app in
  List.iter2 (check_var_report_equal "cg-tiny") seq.Crit.vars par.Crit.vars

(* A non-positive job count is a caller bug, rejected loudly at every
   entry point rather than hanging a pool with zero workers. *)
let test_jobs_validated () =
  Alcotest.check_raises "Pool.create ~jobs:0"
    (Invalid_argument "Pool.create: jobs must be >= 1 (got 0)") (fun () ->
      ignore (Pool.create ~jobs:0));
  Alcotest.check_raises "Pool.with_pool ~jobs:(-3)"
    (Invalid_argument "Pool.create: jobs must be >= 1 (got -3)") (fun () ->
      Pool.with_pool ~jobs:(-3) (fun _ -> ()));
  let app =
    match Scvad_npb.Suite.find "is" with
    | Some a -> a
    | None -> Alcotest.fail "no is app"
  in
  Alcotest.check_raises "Analyzer.run ~jobs:0"
    (Invalid_argument "Analyzer.run: jobs must be >= 1 (got 0)")
    (fun () ->
      ignore
        (Scvad_core.Analyzer.run
           ~config:Scvad_core.Analyzer.Config.(default |> with_jobs 0)
           app));
  Alcotest.check_raises "Analyzer.run_suite ~jobs:(-2)"
    (Invalid_argument "Analyzer.run_suite: jobs must be >= 1 (got -2)")
    (fun () ->
      ignore
        (Scvad_core.Analyzer.run_suite
           ~config:Scvad_core.Analyzer.Config.(default |> with_jobs (-2))
           [ app ]))

let test_default_jobs_clamped () =
  let hw = Pool.hardware_threads () in
  let dj = Pool.default_jobs () in
  Alcotest.(check bool) "hardware_threads >= 1" true (hw >= 1);
  Alcotest.(check bool) "default_jobs >= 1" true (dj >= 1);
  Alcotest.(check bool) "default_jobs <= recommended" true
    (dj <= Domain.recommended_domain_count ());
  Alcotest.(check bool) "default_jobs <= hardware budget" true (dj <= hw)

(* Criticality.report is plain data (strings, bool arrays, span lists),
   so Marshal gives a bit-exact comparison of whole analysis records. *)
let prop_suite_determinism =
  QCheck.Test.make ~count:2
    ~name:"run_suite bit-identical across random jobs"
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (j1, j2) ->
      let run j =
        Marshal.to_string
          (Scvad_core.Analyzer.run_suite
             ~config:Scvad_core.Analyzer.Config.(default |> with_jobs j)
             Scvad_npb.Suite.all)
          []
      in
      String.equal (run j1) (run j2))

exception Planted of int

(* The exception contract, falsified at random: whatever the job count,
   a randomly-raising workload — including raises from nested in-worker
   maps — re-raises exactly the exception a sequential run picks. *)
let prop_first_exception_deterministic =
  QCheck.Test.make ~count:20
    ~name:"exception choice identical for jobs=1..4 (incl. nested maps)"
    QCheck.(pair (int_range 2 4) (small_list (int_bound 30)))
    (fun (jobs, xs) ->
      let outcome j =
        Pool.with_pool ~jobs:j (fun pool ->
            match
              Pool.map pool
                (fun x ->
                  if x mod 2 = 1 then
                    (* Three consecutive ints contain a multiple of 3,
                       so every odd shard fails inside its nested map. *)
                    List.fold_left ( + ) 0
                      (Pool.map pool
                         (fun y ->
                           if y mod 3 = 0 then raise (Planted y) else y)
                         [ x; x + 1; x + 2 ])
                  else if x mod 3 = 0 then raise (Planted x)
                  else x)
                xs
            with
            | r -> Ok r
            | exception Planted y -> Error y)
      in
      outcome 1 = outcome jobs)

let suites =
  [ ( "par.pool",
      [ Alcotest.test_case "map preserves input order" `Quick test_map_ordering;
        Alcotest.test_case "jobs=1 sequential" `Quick test_map_jobs1_sequential;
        Alcotest.test_case "empty and singleton" `Quick
          test_map_empty_and_singleton;
        Alcotest.test_case "first exception re-raised" `Quick
          test_map_exception;
        Alcotest.test_case "worker backtrace survives re-raise" `Quick
          test_exception_backtrace_survives;
        Alcotest.test_case "nested failure re-raised in outer order" `Quick
          test_nested_map_exception;
        Alcotest.test_case "shutdown idempotent, map raises" `Quick
          test_map_after_shutdown;
        Alcotest.test_case "nested map" `Quick test_nested_map;
        Alcotest.test_case "init" `Quick test_init;
        Alcotest.test_case "tasks overlap" `Quick test_map_actually_parallel;
        Alcotest.test_case "non-positive jobs rejected everywhere" `Quick
          test_jobs_validated;
        Alcotest.test_case "default jobs clamped to CPU budget" `Quick
          test_default_jobs_clamped ] );
    ( "par.determinism",
      [ Alcotest.test_case "analyze_suite jobs=1 = jobs=4 (all NPB)" `Quick
          test_suite_determinism;
        Alcotest.test_case "forward probe jobs=1 = jobs=4 (cg-tiny)" `Quick
          test_forward_probe_parallel_determinism;
        Alcotest.test_case "activity jobs=1 = jobs=4 (cg-tiny)" `Quick
          test_activity_parallel_determinism;
        QCheck_alcotest.to_alcotest prop_suite_determinism;
        QCheck_alcotest.to_alcotest prop_first_exception_deterministic ] ) ]
